GO ?= go

.PHONY: all build vet locusvet vet-stats test race invariants bench benchsmoke benchjson benchdiff workloadsmoke profile chaos ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# locus-vet is this repository's own analyzer suite (cmd/locus-vet),
# three tiers: syntactic (simclock, uncheckedcall, lockorder, rawcall,
# panicdiscipline), intraprocedural dataflow (pageleak, inodealias,
# goroutinejoin, rpcconsistency, blockinglock), and interprocedural
# summaries (maporder, sentinelerr, vvmutation, atomiccounter), plus
# the suppression audits (vet-allow reasons, staleallow). The -cache
# stamp skips the whole-program load when neither the sources nor the
# analyzer registry changed since the last clean run; delete
# .locusvet.cache to force a full run.
locusvet:
	$(GO) run ./cmd/locus-vet -cache .locusvet.cache ./...

# vet-stats prints the analyzer-suite telemetry: findings and audited
# suppressions per analyzer plus the interprocedural summary-cache hit
# rate (one table build shared by maporder/sentinelerr/atomiccounter).
vet-stats:
	$(GO) run ./cmd/locus-vet -stats ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# invariants runs the suite with the runtime assertion layer compiled
# in (internal/lint/invariant): version-vector dominance on propagation
# and shadow-page commit/free checks in storage.
invariants:
	$(GO) test -tags locusinvariants ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# benchsmoke is the cheap CI gate: runs the cache/readahead experiment
# (E11) end to end and validates the BENCH_locus.json encoding.
benchsmoke:
	$(GO) test -run TestBenchSmoke -count=1 .

# benchjson regenerates the committed perf baseline artifacts.
benchjson:
	$(GO) run ./cmd/locus-bench -json BENCH_locus.json > experiments_output.txt

# benchdiff is the perf-regression gate: re-run the full experiment
# suite (including the million-op E16 workload) and diff the
# deterministic message/byte counters against the committed
# BENCH_locus.json, failing on >10% regression in any pinned
# experiment. It then runs the wall-clock throughput gate: the E16
# workload at a moderate fixed op budget must sustain the ops/sec
# floor committed in BENCH_throughput.json (25% tolerance).
# Regenerate the counter baseline with `make benchjson` when a
# protocol change is intended; re-measure the throughput floor with
# `go run ./cmd/locus-bench -workload -workload-ops 20000`.
benchdiff:
	$(GO) run ./cmd/benchdiff

# workloadsmoke runs the workload engine's own tests — histogram math,
# Zipf determinism, engine schedule determinism — plus the sized E16
# shape/determinism assertions, under the race detector with the
# runtime invariant layer (including page-pool poison-on-put) compiled
# in.
workloadsmoke:
	$(GO) test -race -tags locusinvariants -count=1 ./internal/workload ./internal/bench
	$(GO) test -race -tags locusinvariants -run 'TestExperimentTables|TestBenchSmoke' -count=1 .

# profile captures CPU and heap pprof data for a 60k-op workload run:
# the workflow that found the directory-decode hot path documented in
# DESIGN.md. Inspect with `go tool pprof cpu.prof` / `mem.prof`.
profile:
	$(GO) run ./cmd/locus-bench -workload -workload-ops 20000 -cpuprofile cpu.prof -memprofile mem.prof

# chaos runs the seeded chaos harness (internal/chaos) on its pinned
# seeds — the workload-only regimes plus TestChaosProcSeeds, which adds
# the process-level adversarial plane (remote run, cross-site signals,
# pipes, migration, nested transactions) — with the race detector and
# the runtime invariant layer both enabled. Any violation prints a
# one-line replay command (copy-paste it to reproduce byte-identically);
# set CHAOS_ARTIFACT_DIR to also write the failing op log to a file.
chaos:
	$(GO) test -run TestChaos -race -tags locusinvariants -count=1 ./internal/chaos

ci: build vet locusvet test race invariants benchsmoke workloadsmoke benchdiff chaos
