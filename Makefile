GO ?= go

.PHONY: all build vet locusvet test race invariants bench ci

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# locus-vet is this repository's own analyzer suite (cmd/locus-vet):
# simclock, uncheckedcall, lockorder, panicdiscipline.
locusvet:
	$(GO) run ./cmd/locus-vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# invariants runs the suite with the runtime assertion layer compiled
# in (internal/lint/invariant): version-vector dominance on propagation
# and shadow-page commit/free checks in storage.
invariants:
	$(GO) test -tags locusinvariants ./...

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet locusvet test race invariants
