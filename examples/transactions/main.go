// Nested transactions ([MEUL83], §1): bind a set of file updates
// together so they commit or abort as a unit, run subtransactions that
// can fail independently, and watch a partition abort the affected
// transaction subtree (§5.6).
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/txn"
	"repro/locus"
)

func main() {
	c, err := locus.Simple(3)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	teller := c.Site(1).Login("teller")
	must(teller.Mkdir("/bank"))
	must(teller.WriteFile("/bank/alice", []byte("100")))
	must(teller.WriteFile("/bank/bob", []byte("50")))
	must(teller.WriteFile("/bank/audit.log", []byte("")))
	c.Settle()

	// --- A transfer that commits atomically across three files.
	fmt.Println("== transfer 30 alice->bob inside a transaction ==")
	tx := teller.Begin()
	must(tx.WriteFile("/bank/alice", []byte("70")))
	must(tx.WriteFile("/bank/bob", []byte("80")))
	must(tx.AppendFile("/bank/audit.log", []byte("xfer 30 alice->bob\n")))
	// Nothing is visible outside until commit.
	outside, _ := c.Site(2).Login("aud").ReadFile("/bank/alice")
	fmt.Printf("during txn, site 2 still sees alice=%s\n", outside)
	must(tx.Commit())
	c.Settle()
	a, _ := c.Site(2).Login("aud").ReadFile("/bank/alice")
	b, _ := c.Site(2).Login("aud").ReadFile("/bank/bob")
	fmt.Printf("after commit: alice=%s bob=%s\n", a, b)

	// --- Nested subtransactions: the failed leg rolls back alone.
	fmt.Println("== batch with a failing subtransaction ==")
	batch := teller.Begin()
	must(batch.AppendFile("/bank/audit.log", []byte("batch start\n")))

	ok, err := batch.Begin()
	must(err)
	must(ok.WriteFile("/bank/alice", []byte("60"))) // fee: 10
	must(ok.Commit())

	bad, err := batch.Begin()
	must(err)
	must(bad.WriteFile("/bank/bob", []byte("-999"))) // invalid!
	fmt.Println("validation fails; aborting only the bad subtransaction")
	must(bad.Abort())

	must(batch.Commit())
	c.Settle()
	a, _ = teller.ReadFile("/bank/alice")
	b, _ = teller.ReadFile("/bank/bob")
	fmt.Printf("after batch: alice=%s (fee applied) bob=%s (bad leg undone)\n", a, b)

	// --- Partition aborts transactions touching lost storage sites.
	fmt.Println("== partition aborts a transaction whose storage site is lost ==")
	must(teller.WriteFile("/bank/remote", []byte("remote data")))
	must(teller.SetReplication("/bank/remote", 3))
	c.Settle()

	doomed := c.Site(1).Login("teller2").Begin()
	must(doomed.WriteFile("/bank/remote", []byte("never committed")))
	c.Partition([]locus.SiteID{1, 2}, []locus.SiteID{3})
	fmt.Printf("transaction state after partition: %v\n", doomed.State())
	if err := doomed.Commit(); errors.Is(err, txn.ErrDone) || errors.Is(err, txn.ErrAborted) {
		fmt.Println("commit refused:", err)
	}
	rep, err := c.Merge()
	must(err)
	_ = rep
	v, _ := teller.ReadFile("/bank/remote")
	fmt.Printf("after merge, /bank/remote = %q (uncommitted update discarded)\n", v)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
