// Quickstart: boot a three-site LOCUS network, exercise the single
// tree-structured, location-transparent filesystem, and watch
// replication keep every site's copy current.
package main

import (
	"fmt"
	"log"

	"repro/locus"
)

func main() {
	// Three VAX-750s on one Ethernet, one filegroup replicated at all
	// three sites and mounted at "/".
	c, err := locus.Simple(3)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Println("booted:", c)

	// Log in at site 1 and build a small tree. Pathnames carry no
	// location information (§2.1: "it is not possible from the name of
	// a resource to discern its location in the network").
	alice := c.Site(1).Login("alice")
	must(alice.Mkdir("/docs"))
	must(alice.WriteFile("/docs/paper.txt", []byte("LOCUS is a Unix compatible, distributed operating system.\n")))
	must(alice.WriteFile("/docs/notes.txt", []byte("transparency: naming, location, semantics\n")))

	// Propagation runs in the background; settle the cluster so all
	// replicas are current.
	pulls := c.Settle()
	fmt.Printf("replication settled: %d propagation pulls\n", pulls)

	// Any other site reads the same files with the same calls.
	bob := c.Site(3).Login("bob")
	data, err := bob.ReadFile("/docs/paper.txt")
	must(err)
	fmt.Printf("site 3 reads /docs/paper.txt: %q\n", data)

	ents, err := bob.ReadDir("/docs")
	must(err)
	fmt.Print("site 3 lists /docs:")
	for _, e := range ents {
		fmt.Printf(" %s", e.Name)
	}
	fmt.Println()

	// Updates made anywhere become the single visible version
	// everywhere ("the latest version of a file is the only one that
	// is visible" — §2.3.1).
	must(bob.WriteFile("/docs/notes.txt", []byte("updated from site 3\n")))
	c.Settle()
	data, err = alice.ReadFile("/docs/notes.txt")
	must(err)
	fmt.Printf("site 1 reads the update: %q\n", data)

	// Inspect replication state.
	ino, err := alice.Stat("/docs/notes.txt")
	must(err)
	fmt.Printf("/docs/notes.txt: stored at sites %v, version vector %v\n", ino.Sites, ino.VV)

	st := c.Stats()
	fmt.Printf("network totals: %d messages, %d bytes, %d sim-CPU-us\n", st.Msgs, st.Bytes, st.CPUUs)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
