// Partition & merge: the paper's recovery story (§4, §5) end to end.
//
// A six-site network splits into two halves. Both halves keep reading
// and writing replicated files (§4.1: availability must go *up* with
// replication, so update in all partitions is allowed). When the
// network heals, the merge protocol reassembles the partition and
// reconciliation merges the naming catalog automatically, undoes a
// delete that raced a modification, renames a name conflict apart, and
// reports the one irreconcilable file conflict to its owner by mail.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/locus"
)

func main() {
	c, err := locus.Simple(6)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	a := c.Site(1).Login("alice")
	b := c.Site(4).Login("bob")

	// Shared state before the failure.
	must(a.Mkdir("/proj"))
	must(a.WriteFile("/proj/design.txt", []byte("v1: one CSS per filegroup")))
	must(a.WriteFile("/proj/todo.txt", []byte("todo: merge protocol")))
	must(a.WriteFile("/proj/scratch.txt", []byte("scratch")))
	c.Settle()
	fmt.Println("== before partition: 6 sites, /proj replicated everywhere ==")

	// The Ethernet loses a cable terminator: {1,2,3} / {4,5,6}.
	c.Partition([]locus.SiteID{1, 2, 3}, []locus.SiteID{4, 5, 6})
	fmt.Println("== partitioned: {1,2,3} | {4,5,6}; both halves keep working ==")
	fmt.Println("site 1 view:", c.Site(1).Topo.Partition())
	fmt.Println("site 4 view:", c.Site(4).Topo.Partition())

	// Independent activity in each half (merges cleanly):
	must(a.WriteFile("/proj/a-report.txt", []byte("written in partition A")))
	must(b.WriteFile("/proj/b-report.txt", []byte("written in partition B")))

	// A delete/modify race (§4.4 rule d — the modified file is saved):
	must(a.Unlink("/proj/todo.txt"))
	must(b.WriteFile("/proj/todo.txt", []byte("todo: KEEP ME, modified after the delete")))

	// A name conflict (same new name, different files):
	must(a.WriteFile("/proj/minutes.txt", []byte("minutes by alice")))
	must(b.WriteFile("/proj/minutes.txt", []byte("minutes by bob")))

	// A true content conflict on an untyped file:
	must(a.WriteFile("/proj/design.txt", []byte("v2a: alice's redesign")))
	must(b.WriteFile("/proj/design.txt", []byte("v2b: bob's redesign")))

	// The cable is fixed: merge protocol + reconciliation.
	rep, err := c.Merge()
	must(err)
	fmt.Println("== merged; reconciliation report ==")
	fmt.Printf("  directories merged:   %d\n", rep.DirsMerged)
	fmt.Printf("  propagated (stale):   %d\n", rep.Propagated)
	fmt.Printf("  deletes undone:       %d\n", rep.DeletesUndone)
	fmt.Printf("  name conflicts:       %d\n", rep.NameConflicts)
	fmt.Printf("  conflicts reported:   %d\n", rep.ConflictsReported)

	// Everyone sees both halves' work.
	for _, site := range []locus.SiteID{2, 5} {
		s := c.Site(site).Login("check")
		ra, _ := s.ReadFile("/proj/a-report.txt")
		rb, _ := s.ReadFile("/proj/b-report.txt")
		fmt.Printf("site %d: a-report=%q b-report=%q\n", site, ra, rb)
	}

	// The delete/modify race saved the modified file.
	todo, err := a.ReadFile("/proj/todo.txt")
	must(err)
	fmt.Printf("todo.txt survived the delete: %q\n", todo)

	// The name conflict was renamed apart.
	ents, _ := a.ReadDir("/proj")
	fmt.Print("directory after merge:")
	for _, e := range ents {
		fmt.Printf(" %s", e.Name)
	}
	fmt.Println()

	// The content conflict blocks access and was mailed to the owner.
	if _, err := a.ReadFile("/proj/design.txt"); errors.Is(err, locus.ErrConflict) {
		fmt.Println("design.txt is in conflict; normal opens fail until resolved")
	}
	mail, _ := a.ReadMail()
	for _, m := range mail {
		fmt.Printf("mail for alice from %s: %.70s...\n", m.From, m.Body)
	}

	// Resolve interactively: keep bob's version.
	confs := c.Site(1).Recon.ListConflicts()
	for _, cf := range confs {
		fmt.Printf("conflict %v: copies %v\n", cf.ID, cf.Copies)
		must(c.Site(1).Recon.ResolveKeep(cf.ID, 4))
	}
	c.Settle()
	final, err := a.ReadFile("/proj/design.txt")
	must(err)
	fmt.Printf("after resolution, design.txt = %q\n", final)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
