// Remote execution: transparent process creation on any site (§3),
// heterogeneous load modules through hidden directories (§2.4.1),
// cross-network signals, named pipes, and simple load balancing — the
// paper's "primary motivation for remote execution was load balancing"
// (§6).
package main

import (
	"fmt"
	"io"
	"log"
	"sync/atomic"

	"repro/internal/proc"
	"repro/locus"
)

func main() {
	// A mixed machine room: two VAXes and two PDP-11s (the UCLA
	// configuration before the 11s were decommissioned).
	c, err := locus.NewCluster(locus.ClusterSpec{
		Sites: []locus.SiteSpec{
			{ID: 1, MachineType: "vax"},
			{ID: 2, MachineType: "vax"},
			{ID: 3, MachineType: "pdp11"},
			{ID: 4, MachineType: "pdp11"},
		},
		Filegroups: []locus.FilegroupSpec{
			{ID: 1, MountPath: "/", Replicas: []locus.SiteID{1, 2, 3, 4}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	sess := c.Site(1).Login("operator")

	// /bin/crunch is a hidden directory holding one load module per
	// machine type; the same command name works on every machine.
	must(sess.Mkdir("/bin"))
	must(c.Site(1).FS.MkHidden(sess.Cred(), "/bin/crunch", 0755))
	must(sess.WriteFile("/bin/crunch@@/vax", []byte("go:crunch-vax\n")))
	must(sess.WriteFile("/bin/crunch@@/pdp11", []byte("go:crunch-pdp11\n")))
	must(sess.Mkfifo("/results"))
	c.Settle()

	// Register the "binaries": each machine type has its own build,
	// both writing results into the network-wide named pipe.
	var vaxRuns, pdpRuns atomic.Int64
	for _, id := range c.Sites() {
		site := c.Site(id)
		mt := site.Proc.MachineType()
		register := func(name string, counter *atomic.Int64) {
			site.Proc.Register(name, func(ctx *proc.Ctx) int {
				counter.Add(1)
				pipe, err := ctx.M.OpenPipe(ctx.Self, "/results", true)
				if err != nil {
					return 1
				}
				defer pipe.Close() // error unchecked by design: example: process exit reclaims the pipe
				msg := fmt.Sprintf("crunched on site %d (%s)\n", ctx.M.Site(), ctx.M.MachineType())
				if err := pipe.Write([]byte(msg)); err != nil {
					return 1
				}
				return 0
			})
		}
		if mt == "vax" {
			register("crunch-vax", &vaxRuns)
		} else {
			register("crunch-pdp11", &pdpRuns)
		}
	}

	// A reader collects results from the pipe (running at site 2).
	reader := c.Site(2).Login("collector")
	rp, err := reader.OpenPipe("/results", false)
	must(err)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			b, err := rp.Read(256)
			if err == io.EOF {
				return
			}
			if err != nil {
				log.Printf("pipe read: %v", err)
				return
			}
			fmt.Print("  result: ", string(b))
		}
	}()

	// Hold a writer end open for the whole batch so the pipe does not
	// deliver EOF between jobs (the usual Unix idiom).
	holder, err := sess.OpenPipe("/results", true)
	must(err)

	// Round-robin "load balancer": run eight jobs across all four
	// machines by setting the advice list before each run.
	fmt.Println("== dispatching 8 jobs round-robin across 4 heterogeneous sites ==")
	sites := c.Sites()
	var pids []proc.PID
	for i := 0; i < 8; i++ {
		target := sites[i%len(sites)]
		sess.SetExecSite(target)
		pid, err := sess.Run("/bin/crunch")
		must(err)
		fmt.Printf("job %d -> process %v\n", i, pid)
		pids = append(pids, pid)
	}
	for _, pid := range pids {
		if st := sess.Wait(pid); st.Code != 0 {
			log.Fatalf("job %v failed: %+v", pid, st)
		}
	}
	// Closing the last writer delivers EOF to the reader.
	must(holder.Close())
	<-done

	fmt.Printf("== done: %d jobs on VAXes, %d on PDP-11s — same command name everywhere ==\n",
		vaxRuns.Load(), pdpRuns.Load())

	// Cross-network signal demo: park a service remotely, then stop it.
	c.Site(4).Proc.Register("service", func(ctx *proc.Ctx) int {
		sig := <-ctx.Signals()
		fmt.Printf("service on site 4 got signal %d; shutting down\n", sig)
		return 0
	})
	must(sess.WriteFile("/bin/service", []byte("go:service\n")))
	c.Settle()
	sess.SetExecSite(4)
	pid, err := sess.Run("/bin/service")
	must(err)
	must(sess.Signal(pid, proc.SIGTERM))
	st := sess.Wait(pid)
	fmt.Printf("service exited with status %d\n", st.Code)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
