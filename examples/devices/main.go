// Devices & operations: transparent remote devices (§2.4.2),
// sequential readahead (§2.3.3), pathname shipping (§2.3.4's
// investigated optimization), and demand recovery (§4.4) — the
// operational machinery around the core filesystem.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"

	"repro/internal/storage"
	"repro/locus"
)

// console is a character device driver: a write-only operator console.
type console struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (c *console) DevRead(max int) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.buf.String()
	c.buf.Reset()
	if max > 0 && max < len(out) {
		out = out[:max]
	}
	return []byte(out), nil
}

func (c *console) DevWrite(data []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.Write(data)
}

func main() {
	c, err := locus.Simple(3)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	op := c.Site(1).Login("operator")

	// --- Transparent remote devices: the operator console is wired to
	// site 3, but any site writes to it by name.
	fmt.Println("== remote devices ==")
	cons := &console{}
	c.Site(3).Proc.RegisterDevice("console", cons)
	must(op.Mknod("/dev-console", 3, "console"))
	c.Settle()
	for _, s := range c.Sites() {
		sess := c.Site(s).Login("svc")
		dev, err := sess.OpenDevice("/dev-console")
		must(err)
		_, err = dev.Write([]byte(fmt.Sprintf("message from site %d\n", s)))
		must(err)
	}
	out, err := cons.DevRead(0)
	must(err)
	fmt.Print(string(out))

	// --- Sequential readahead: half the message count for a scan.
	fmt.Println("== sequential readahead ==")
	big := make([]byte, 16*storage.PageSize)
	must(op.WriteFile("/big.dat", big))
	must(op.SetReplication("/big.dat", 1))
	c.Settle()
	reader := c.Site(2).Login("reader")
	scan := func(ra bool) int64 {
		f, err := reader.Open("/big.dat", locus.Read)
		must(err)
		defer f.Close() //locus:vet-allow uncheckedcall example: read-only handle, nothing to lose
		f.SetReadahead(ra)
		before := c.Stats().Msgs
		buf := make([]byte, storage.PageSize)
		for pn := 0; pn < 16; pn++ {
			_, err := f.ReadAt(buf, int64(pn)*storage.PageSize)
			must(err)
		}
		return c.Stats().Msgs - before
	}
	fmt.Printf("16-page remote scan: %d msgs without readahead, %d with\n", scan(false), scan(true))

	// --- Pathname shipping: deep remote trees resolve in one exchange.
	fmt.Println("== pathname shipping ==")
	must(op.Mkdir("/deep"))
	must(op.Mkdir("/deep/er"))
	must(op.Mkdir("/deep/er/est"))
	must(op.WriteFile("/deep/er/est/leaf", []byte("found")))
	for _, p := range []string{"/deep", "/deep/er", "/deep/er/est", "/deep/er/est/leaf"} {
		must(op.SetReplication(p, 1))
	}
	c.Settle()
	k2 := c.Site(2).FS
	before := c.Stats().Msgs
	_, err = k2.Resolve(reader.Cred(), "/deep/er/est/leaf")
	must(err)
	plain := c.Stats().Msgs - before
	k2.SetPathShipping(true)
	before = c.Stats().Msgs
	_, err = k2.Resolve(reader.Cred(), "/deep/er/est/leaf")
	must(err)
	shipped := c.Stats().Msgs - before
	fmt.Printf("resolving a 4-deep remote path: %d msgs walking, %d msgs shipping the pathname\n", plain, shipped)

	// --- Demand recovery: reconcile one hot directory immediately.
	fmt.Println("== demand recovery ==")
	must(op.Mkdir("/hot"))
	c.Settle()
	c.Partition([]locus.SiteID{1}, []locus.SiteID{2, 3})
	must(op.WriteFile("/hot/a", []byte("a")))
	must(c.Site(2).Login("x").WriteFile("/hot/b", []byte("b")))
	// Heal the wire without the full reconciliation sweep, then pull
	// just /hot forward on demand.
	c.Network().HealAll()
	c.Network().Quiesce()
	c.Site(1).Topo.RunMergeProtocol() // error unchecked by design: example: merge outcome is shown by the reads below
	c.Network().Quiesce()
	c.Settle()
	rep, err := c.Site(1).Recon.DemandReconcilePath(op.Cred(), "/hot")
	must(err)
	c.Settle()
	ents, err := op.ReadDir("/hot")
	must(err)
	fmt.Printf("after demand recovery (%d dir merged): /hot has %d entries\n", rep.DirsMerged, len(ents))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
