package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/recon"
	"repro/internal/storage"
	"repro/internal/vclock"
	"repro/locus"
)

// The benchmarks below regenerate the paper's evaluation artifacts:
// one benchmark per experiment of DESIGN.md's per-experiment index
// (E1..E10), reporting wall time plus the simulated-cost metrics the
// paper reasons in (messages/op, sim-CPU-us/op). The companion
// experiment *tables* — the exact rows the paper reports — come from
// internal/bench (run `go run ./cmd/locus-bench` or the
// TestExperimentTables test).

func mustSimple(b *testing.B, n int) *locus.Cluster {
	b.Helper()
	c, err := locus.Simple(n)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	return c
}

func mustWrite(b *testing.B, se *locus.Session, path string, data []byte) {
	b.Helper()
	if err := se.WriteFile(path, data); err != nil {
		b.Fatal(err)
	}
}

func pageOf(ch byte) []byte {
	p := make([]byte, storage.PageSize)
	for i := range p {
		p[i] = ch
	}
	return p
}

// reportSim attaches simulated-cost metrics to a benchmark.
func reportSim(b *testing.B, c *locus.Cluster, before, ops int64) {
	d := c.Stats()
	b.ReportMetric(float64(d.Msgs-before)/float64(ops), "msgs/op")
}

// BenchmarkE1_RemoteSyscallFlow measures the Figure-1 flow: a complete
// open/read/close of a remotely stored file.
func BenchmarkE1_RemoteSyscallFlow(b *testing.B) {
	c := mustSimple(b, 2)
	u1 := c.Site(1).Login("u")
	mustWrite(b, u1, "/f", pageOf('x'))
	if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", []locus.SiteID{1}); err != nil {
		b.Fatal(err)
	}
	c.Settle()
	r, err := c.Site(2).FS.Resolve(u1.Cred(), "/f")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, storage.PageSize)
	start := c.Stats().Msgs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := c.Site(2).FS.OpenID(r.ID, fs.ModeRead)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSim(b, c, start, int64(b.N))
}

// BenchmarkE2_ProtocolMessageCounts measures the fully general open
// protocol (US, CSS, SS all distinct): 4 messages for the open.
func BenchmarkE2_ProtocolMessageCounts(b *testing.B) {
	c := mustSimple(b, 3)
	u1 := c.Site(1).Login("u")
	mustWrite(b, u1, "/a", pageOf('a'))
	if err := c.Site(1).FS.SetReplication(u1.Cred(), "/a", []locus.SiteID{3}); err != nil {
		b.Fatal(err)
	}
	c.Settle()
	r, err := c.Site(1).FS.Resolve(u1.Cred(), "/a")
	if err != nil {
		b.Fatal(err)
	}
	start := c.Stats().Msgs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := c.Site(2).FS.OpenID(r.ID, fs.ModeRead)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSim(b, c, start, int64(b.N)) // expect 8: open(4) + close(4)
}

// BenchmarkE3_LocalVsRemoteAccess compares page-read cost when the
// storage site is local vs remote (the paper's 2x CPU claim).
func BenchmarkE3_LocalVsRemoteAccess(b *testing.B) {
	for _, mode := range []string{"local", "remote"} {
		b.Run(mode, func(b *testing.B) {
			c := mustSimple(b, 2)
			u1 := c.Site(1).Login("u")
			mustWrite(b, u1, "/f", pageOf('x'))
			if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", []locus.SiteID{1}); err != nil {
				b.Fatal(err)
			}
			c.Settle()
			us := locus.SiteID(1)
			if mode == "remote" {
				us = 2
			}
			r, err := c.Site(us).FS.Resolve(u1.Cred(), "/f")
			if err != nil {
				b.Fatal(err)
			}
			f, err := c.Site(us).FS.OpenID(r.ID, fs.ModeRead)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close() //nolint:errcheck
			buf := make([]byte, storage.PageSize)
			startCPU := c.Stats().CPUUs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.ReadAt(buf, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Stats().CPUUs-startCPU)/float64(b.N), "simCPUus/op")
		})
	}
}

// BenchmarkE4_CleanupCycle measures one partition/cleanup/merge cycle
// with open files and an active transaction to clean up.
func BenchmarkE4_CleanupCycle(b *testing.B) {
	c := mustSimple(b, 4)
	u1 := c.Site(1).Login("u")
	mustWrite(b, u1, "/f", []byte("x"))
	c.Settle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Site(2).Login("u").Open("/f", fs.ModeRead)
		if err != nil {
			b.Fatal(err)
		}
		c.Partition([]locus.SiteID{1, 2}, []locus.SiteID{3, 4})
		r.Close() //nolint:errcheck
		if _, err := c.Merge(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_ReconfigurationScaling runs the partition+merge protocol
// pair at several network sizes (sub-benchmark per size).
func BenchmarkE5_ReconfigurationScaling(b *testing.B) {
	for _, n := range []int{4, 8, 17, 32} {
		b.Run(fmt.Sprintf("sites-%d", n), func(b *testing.B) {
			c := mustSimple(b, n)
			var a2, b2 []locus.SiteID
			for i := 1; i <= n; i++ {
				if i <= n/2 {
					a2 = append(a2, locus.SiteID(i))
				} else {
					b2 = append(b2, locus.SiteID(i))
				}
			}
			start := c.Stats().Msgs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Network().PartitionGroups(a2, b2)
				c.Network().Quiesce()
				c.Site(a2[0]).Topo.RunPartitionProtocol()
				c.Site(b2[0]).Topo.RunPartitionProtocol()
				c.Network().HealAll()
				c.Network().Quiesce()
				if _, err := c.Site(a2[0]).Topo.RunMergeProtocol(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportSim(b, c, start, int64(b.N))
		})
	}
}

// BenchmarkE6_DirectoryMerge reconciles a root directory with 2×16
// divergent entries per iteration.
func BenchmarkE6_DirectoryMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := locus.Simple(2)
		if err != nil {
			b.Fatal(err)
		}
		a := c.Site(1).Login("u")
		bb := c.Site(2).Login("u")
		c.Partition([]locus.SiteID{1}, []locus.SiteID{2})
		for j := 0; j < 16; j++ {
			mustWrite(b, a, fmt.Sprintf("/a%02d", j), []byte("x"))
			mustWrite(b, bb, fmt.Sprintf("/b%02d", j), []byte("y"))
		}
		b.StartTimer()
		if _, err := c.Merge(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
}

// BenchmarkE7_ReplicationSweep measures update+propagation cost per
// replication degree.
func BenchmarkE7_ReplicationSweep(b *testing.B) {
	for _, copies := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("copies-%d", copies), func(b *testing.B) {
			c := mustSimple(b, 6)
			u1 := c.Site(1).Login("u")
			mustWrite(b, u1, "/f", pageOf('r'))
			var sites []locus.SiteID
			for i := 1; i <= copies; i++ {
				sites = append(sites, locus.SiteID(i))
			}
			if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", sites); err != nil {
				b.Fatal(err)
			}
			c.Settle()
			r, err := c.Site(1).FS.Resolve(u1.Cred(), "/f")
			if err != nil {
				b.Fatal(err)
			}
			start := c.Stats().Msgs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w, err := c.Site(1).FS.OpenID(r.ID, fs.ModeModify)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := w.WriteAt(pageOf(byte('a'+i%20)), 0); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				c.Settle()
			}
			b.StopTimer()
			reportSim(b, c, start, int64(b.N))
		})
	}
}

// BenchmarkE8_TokenThrash measures the shared-descriptor token flip
// cost: alternating reads from two sites.
func BenchmarkE8_TokenThrash(b *testing.B) {
	c := mustSimple(b, 2)
	u1 := c.Site(1).Login("u")
	mustWrite(b, u1, "/log", make([]byte, 1<<20))
	c.Settle()
	p1 := c.Site(1).Proc.InitProcess(u1.Cred())
	p2 := c.Site(2).Proc.InitProcess(c.Site(2).Login("u").Cred())
	fd1, _, err := c.Site(1).Proc.OpenShared(p1, "/log", fs.ModeRead)
	if err != nil {
		b.Fatal(err)
	}
	home, id := fd1.HomeID()
	fd2, _, err := c.Site(2).Proc.AttachShared(p2, home, id, "/log", fs.ModeRead)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	start := c.Stats().Msgs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fd1.Read(buf); err != nil {
			b.Fatal(err)
		}
		if _, err := fd2.Read(buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSim(b, c, start, int64(2*b.N))
}

// BenchmarkE9_MailboxMerge reconciles a mailbox with 2×8 partitioned
// deliveries per iteration.
func BenchmarkE9_MailboxMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := locus.Simple(2)
		if err != nil {
			b.Fatal(err)
		}
		ra := recon.New(c.Site(1).FS)
		rb := recon.New(c.Site(2).FS)
		if err := ra.DeliverMail("bob", "seed", "seed"); err != nil {
			b.Fatal(err)
		}
		c.Settle()
		c.Partition([]locus.SiteID{1}, []locus.SiteID{2})
		for j := 0; j < 8; j++ {
			ra.DeliverMail("bob", "a", "a") //nolint:errcheck
			rb.DeliverMail("bob", "b", "b") //nolint:errcheck
		}
		b.StartTimer()
		if _, err := c.Merge(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
}

// BenchmarkE10_LocalOverhead compares the local LOCUS open/read/close
// path against the bare storage substrate.
func BenchmarkE10_LocalOverhead(b *testing.B) {
	b.Run("locus-local", func(b *testing.B) {
		c := mustSimple(b, 1)
		u := c.Site(1).Login("u")
		mustWrite(b, u, "/f", pageOf('x'))
		r, err := c.Site(1).FS.Resolve(u.Cred(), "/f")
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, storage.PageSize)
		startCPU := c.Stats().CPUUs
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f, err := c.Site(1).FS.OpenID(r.ID, fs.ModeRead)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.ReadAt(buf, 0); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(c.Stats().CPUUs-startCPU)/float64(b.N), "simCPUus/op")
	})
	b.Run("bare-local-fs", func(b *testing.B) {
		cont := storage.MustContainer(1, 1, 1, 1000, nil, storage.Costs{})
		num, _ := cont.AllocInode()
		pp, _ := cont.WritePage(pageOf('x'))
		if err := cont.CommitInode(&storage.Inode{Num: num, Size: storage.PageSize,
			Pages: []storage.PhysPage{pp}, VV: vclock.New()}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cont.GetInode(num); err != nil {
				b.Fatal(err)
			}
			if _, err := cont.ReadLogicalPage(num, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11_SequentialRemoteScan measures the 16-page sequential
// remote read under the three cache regimes of the E11 table.
func BenchmarkE11_SequentialRemoteScan(b *testing.B) {
	setup := func(b *testing.B) (*locus.Cluster, *fs.Kernel, storage.FileID) {
		b.Helper()
		c := mustSimple(b, 2)
		u1 := c.Site(1).Login("u")
		mustWrite(b, u1, "/seq", make([]byte, 16*storage.PageSize))
		if err := c.Site(1).FS.SetReplication(u1.Cred(), "/seq", []fs.SiteID{1}); err != nil {
			b.Fatal(err)
		}
		c.Settle()
		r, err := c.Site(1).FS.Resolve(u1.Cred(), "/seq")
		if err != nil {
			b.Fatal(err)
		}
		return c, c.Site(2).FS, r.ID
	}
	scan := func(b *testing.B, k *fs.Kernel, id storage.FileID, ra bool) {
		b.Helper()
		f, err := k.OpenID(id, fs.ModeRead)
		if err != nil {
			b.Fatal(err)
		}
		f.SetReadahead(ra)
		if _, err := f.ReadAll(); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("no-cache", func(b *testing.B) {
		c, k, id := setup(b)
		k.SetPageCache(false)
		start := c.Stats().Msgs
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scan(b, k, id, false)
		}
		b.StopTimer()
		reportSim(b, c, start, int64(b.N))
	})
	b.Run("cold-cache-readahead", func(b *testing.B) {
		c, k, id := setup(b)
		start := c.Stats().Msgs
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			k.SetPageCache(false) // flush so every iteration starts cold
			k.SetPageCache(true)
			b.StartTimer()
			scan(b, k, id, true)
		}
		b.StopTimer()
		reportSim(b, c, start, int64(b.N))
	})
	b.Run("warm-cache", func(b *testing.B) {
		c, k, id := setup(b)
		scan(b, k, id, true) // warm the using-site cache
		start := c.Stats().Msgs
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scan(b, k, id, false)
		}
		b.StopTimer()
		reportSim(b, c, start, int64(b.N))
	})
}

// BenchmarkE14_HotFileOpenStorm measures the repeat open+read+close
// cycle of a hot remotely stored file with and without the lease/intent
// layer: without leases every cycle pays the CSS round trip; under a
// read delegation every cycle after the first is served site-locally
// with zero wire messages.
func BenchmarkE14_HotFileOpenStorm(b *testing.B) {
	setup := func(b *testing.B, leases bool) (*locus.Cluster, *fs.Kernel, storage.FileID) {
		b.Helper()
		c := mustSimple(b, 3)
		if leases {
			for _, id := range c.Sites() {
				c.Site(id).FS.SetLeases(true)
			}
		}
		u := c.Site(1).Login("u")
		mustWrite(b, u, "/hot", pageOf('h'))
		if err := c.Site(1).FS.SetReplication(u.Cred(), "/hot", []fs.SiteID{1}); err != nil {
			b.Fatal(err)
		}
		c.Settle()
		r, err := c.Site(1).FS.Resolve(u.Cred(), "/hot")
		if err != nil {
			b.Fatal(err)
		}
		return c, c.Site(2).FS, r.ID
	}
	cycle := func(b *testing.B, k *fs.Kernel, id storage.FileID, buf []byte) {
		b.Helper()
		f, err := k.OpenID(id, fs.ModeRead)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
	}
	for _, leases := range []bool{false, true} {
		name := "no-leases"
		if leases {
			name = "delegated"
		}
		b.Run(name, func(b *testing.B) {
			c, k, id := setup(b, leases)
			buf := make([]byte, storage.PageSize)
			cycle(b, k, id, buf) // first open: grants the delegation
			start := c.Stats().Msgs
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cycle(b, k, id, buf)
			}
			b.StopTimer()
			reportSim(b, c, start, int64(b.N))
		})
	}
}

// TestExperimentTables runs the experiment suite and asserts the
// headline shapes the paper reports. E16's registry entry is the full
// million-op workload (run by locus-bench/benchdiff, not here); the
// test exercises the same engine and configuration through
// bench.E16Sized at a small op budget, including the byte-identical
// determinism the full run relies on.
func TestExperimentTables(t *testing.T) {
	exps := bench.Experiments()
	if len(exps) != 16 {
		t.Fatalf("expected 16 experiments in the registry, got %d", len(exps))
	}
	var tables []*bench.Table
	for _, e := range exps {
		if e.ID == "E16" {
			continue // sized variant asserted below
		}
		tables = append(tables, e.Run())
	}
	byID := map[string]*bench.Table{}
	for _, tb := range tables {
		byID[tb.ID] = tb
	}

	// E2: the protocol message counts match the paper exactly.
	for _, row := range byID["E2"].Rows {
		op, got, want := row[0], row[2], row[3]
		if strings.Contains(want, "+") {
			continue // commit row: count depends on replica set
		}
		if got != want {
			t.Errorf("E2 %s (%s): %s messages, paper says %s", op, row[1], got, want)
		}
	}

	// E3: remote page ≈ 2× local (allow 1.5–3×), remote open ≫ local.
	e3 := byID["E3"]
	pageRatio := parseRatio(t, e3.Rows[0][3])
	if pageRatio < 1.5 || pageRatio > 3.0 {
		t.Errorf("E3 page ratio %.2f outside [1.5,3.0] (paper ≈2x)", pageRatio)
	}
	openRatio := parseRatio(t, e3.Rows[1][3])
	if openRatio < 3 {
		t.Errorf("E3 open ratio %.2f: remote open should be significantly more", openRatio)
	}

	// E4: every row observes the paper's action.
	for _, row := range byID["E4"].Rows {
		if strings.Contains(row[2], "no action") || strings.Contains(row[2], "no error") ||
			strings.Contains(row[2], "still active") || strings.Contains(row[2], "lost") && !strings.Contains(row[0], "lost") {
			t.Errorf("E4 %q: observed %q", row[0], row[2])
		}
	}

	// E5: every size converges, and message cost grows with N.
	var prevPart int64 = -1
	for _, row := range byID["E5"].Rows {
		if row[4] != "true" {
			t.Errorf("E5 %s sites: did not converge", row[0])
		}
		p, _ := strconv.ParseInt(row[2], 10, 64)
		if p < prevPart {
			t.Errorf("E5: partition messages decreased with size: %v", row)
		}
		prevPart = p
	}

	// E7: read availability jumps to 6/6 once each half holds a copy
	// (copies >= 4 under a 3/3 split), and update cost grows with
	// copies.
	e7 := byID["E7"]
	if e7.Rows[0][3] != "3/6 sites" {
		t.Errorf("E7 copies=1 read availability = %s, want 3/6", e7.Rows[0][3])
	}
	if e7.Rows[5][3] != "6/6 sites" {
		t.Errorf("E7 copies=6 read availability = %s, want 6/6", e7.Rows[5][3])
	}
	if e7.Rows[0][4] != "1/2 partitions" || e7.Rows[5][4] != "2/2 partitions" {
		t.Errorf("E7 update availability: %v / %v", e7.Rows[0][4], e7.Rows[5][4])
	}

	// E8: thrash costs dramatically more messages than batching.
	e8 := byID["E8"]
	thrash, _ := strconv.ParseFloat(e8.Rows[0][1], 64)
	batch, _ := strconv.ParseFloat(e8.Rows[1][1], 64)
	if thrash < 10*batch {
		t.Errorf("E8 thrash %.2f vs batch %.2f msgs/op: expected >10x gap", thrash, batch)
	}

	// E9: both mailbox formats converge to 10 messages.
	for _, row := range byID["E9"].Rows {
		if !strings.HasPrefix(row[3], "10") {
			t.Errorf("E9 %s: after merge %q, want 10", row[0], row[3])
		}
	}

	// E10: local overhead within 25% of the bare filesystem.
	e10 := byID["E10"]
	lc, _ := strconv.ParseInt(e10.Rows[0][1], 10, 64)
	bc, _ := strconv.ParseInt(e10.Rows[1][1], 10, 64)
	if float64(lc) > 1.25*float64(bc) {
		t.Errorf("E10: LOCUS local %d vs bare %d CPU us (paper: ≈equal)", lc, bc)
	}

	// E11: the using-site cache + streaming readahead cut the 16-page
	// sequential scan's mRead traffic by at least 2x cold, and the warm
	// re-read needs zero network reads.
	e11 := byID["E11"]
	baseReads, _ := strconv.ParseInt(e11.Rows[0][2], 10, 64)
	coldReads, _ := strconv.ParseInt(e11.Rows[1][2], 10, 64)
	warmReads, _ := strconv.ParseInt(e11.Rows[2][2], 10, 64)
	if baseReads != 32 {
		t.Errorf("E11 baseline = %d fs.read msgs, want 32 (2 per page)", baseReads)
	}
	if coldReads == 0 || baseReads < 2*coldReads {
		t.Errorf("E11 cold readahead %d -> %d fs.read msgs: want >= 2x reduction", baseReads, coldReads)
	}
	if warmReads != 0 {
		t.Errorf("E11 warm re-read = %d fs.read msgs, want 0 (US cache)", warmReads)
	}

	// E12: the at-most-once RPC layer absorbs message loss below the
	// application — zero operation-level retries at every drop rate —
	// and 5% loss costs well under 2x the lossless message bill.
	e12 := byID["E12"]
	if len(e12.Rows) != 3 {
		t.Fatalf("E12: %d rows, want 3 (drop rates)", len(e12.Rows))
	}
	for _, row := range e12.Rows {
		if row[2] != "0" {
			t.Errorf("E12 drop=%s: %s operation-level retries leaked past the RPC layer", row[0], row[2])
		}
	}
	lossless, _ := strconv.ParseFloat(e12.Rows[0][1], 64)
	lossy, _ := strconv.ParseFloat(e12.Rows[2][1], 64)
	if lossless <= 0 || lossy < lossless || lossy > 2*lossless {
		t.Errorf("E12 msgs/op %.1f (0%%) -> %.1f (5%%): want modest growth under 2x", lossless, lossy)
	}
	dropped, _ := strconv.ParseInt(e12.Rows[2][3], 10, 64)
	if dropped == 0 {
		t.Errorf("E12 drop=%s injected no faults; the fault plane never fired", e12.Rows[2][0])
	}

	// E13: bulk pipelined propagation must bring the 2 stale replicas
	// of the 32-page file current with ≥4x fewer messages than the
	// serial per-page pull, and the parallel worker pool must not
	// change the deterministic message counts.
	e13 := byID["E13"]
	if len(e13.Rows) != 3 {
		t.Fatalf("E13: %d rows, want 3 (regimes)", len(e13.Rows))
	}
	serialMsgs, _ := strconv.ParseInt(e13.Rows[0][2], 10, 64)
	bulkMsgs, _ := strconv.ParseInt(e13.Rows[1][2], 10, 64)
	parMsgs, _ := strconv.ParseInt(e13.Rows[2][2], 10, 64)
	if serialMsgs != 2*66 {
		t.Errorf("E13 serial pull = %d msgs, want 132 (2 replicas x (1+32) exchanges): the ablation no longer reproduces the per-page protocol", serialMsgs)
	}
	if parMsgs == 0 || serialMsgs < 4*parMsgs {
		t.Errorf("E13 bulk+parallel = %d msgs vs serial %d: want >= 4x fewer", parMsgs, serialMsgs)
	}
	if bulkMsgs != parMsgs {
		t.Errorf("E13 parallel drain changed message counts: bulk=%d parallel=%d", bulkMsgs, parMsgs)
	}
	serialWins := e13.Rows[0][4]
	parPages, _ := strconv.ParseInt(e13.Rows[2][5], 10, 64)
	if serialWins != "0" || parPages != 2*32 {
		t.Errorf("E13 window counters: serial windows=%s (want 0), parallel pages=%d (want 64)", serialWins, parPages)
	}

	// E14: under read delegations the 28 reopens of the hot file must
	// cost exactly zero wire messages (the ablation pays per open), the
	// four reader sites must each have been granted a lease, and the
	// writer transition must recall all four delegations in exactly one
	// batched revoke round while closing more cheaply than the legacy
	// close protocol.
	e14 := byID["E14"]
	if len(e14.Rows) != 2 {
		t.Fatalf("E14: %d rows, want 2 (regimes)", len(e14.Rows))
	}
	offRow, onRow := e14.Rows[0], e14.Rows[1]
	if onRow[2] != "0" {
		t.Errorf("E14 delegated reopens = %s msgs, want 0 (the lease fast path regressed)", onRow[2])
	}
	offReopen, _ := strconv.ParseInt(offRow[2], 10, 64)
	if offReopen == 0 {
		t.Errorf("E14 ablation reopens = 0 msgs: the no-lease regime is not exercising the wire protocol")
	}
	if onRow[4] != "4" {
		t.Errorf("E14 leases granted = %s, want 4 (one read delegation per reader site)", onRow[4])
	}
	if onRow[6] != "1" {
		t.Errorf("E14 revoke rounds = %s, want 1 (batched recall per writer transition)", onRow[6])
	}
	onClose, _ := strconv.ParseInt(onRow[7], 10, 64)
	offClose, _ := strconv.ParseInt(offRow[7], 10, 64)
	if onClose >= offClose {
		t.Errorf("E14 leased writer commit+close = %d msgs vs legacy %d: the writer lease no longer skips the wire close", onClose, offClose)
	}

	// E15: killing the executing site must fire every §5.6 failure
	// action — orphan notices for the processes whose parents died,
	// exactly one pipe endpoint torn down, the partitioned transaction
	// aborted, all three signals to dead processes queued then expired
	// at merge, and the cross-partition signal to a live process
	// queued then replayed.
	e15 := byID["E15"]
	if len(e15.Rows) != 5 {
		t.Fatalf("E15: %d rows, want 5 (stages)", len(e15.Rows))
	}
	e15At := func(row, col int) int64 {
		v, err := strconv.ParseInt(e15.Rows[row][col], 10, 64)
		if err != nil {
			t.Fatalf("E15 row %d col %d = %q: %v", row, col, e15.Rows[row][col], err)
		}
		return v
	}
	if n := e15At(1, 2); n != 3 {
		t.Errorf("E15 crash stage delivered %d orphan notices, want 3 (one per orphaned sitter)", n)
	}
	if n := e15At(1, 3); n != 1 {
		t.Errorf("E15 crash stage tore down %d pipe endpoints, want 1 (the dead writer end)", n)
	}
	if n := e15At(1, 4); n != 1 {
		t.Errorf("E15 crash stage aborted %d transactions, want 1 (the lock on the dead site's file)", n)
	}
	if q, x := e15At(2, 5), e15At(3, 7); q != 3 || x != 3 {
		t.Errorf("E15 dead-target signals: %d queued, %d expired at merge — want 3 and 3", q, x)
	}
	if q, r := e15At(4, 5), e15At(4, 6); q != 1 || r != 1 {
		t.Errorf("E15 live-target signal: %d queued, %d replayed at merge — want 1 and 1", q, r)
	}
	for _, note := range e15.Notes {
		if strings.Contains(note, "eof=false") {
			t.Errorf("E15: the pipe reader never reached io.EOF: %s", note)
		}
	}

	// E16 (sized): the workload engine behind the million-op registry
	// entry, at a small op budget but the full 2,100-actor fleet. The
	// table must report every pinned metric with zero errors, and two
	// runs with the same seed must produce byte-identical rows — the
	// property the full run's BENCH_locus.json counters depend on.
	e16 := bench.E16Sized(300)
	e16Vals := map[string]string{}
	for _, row := range e16.Rows {
		e16Vals[row[0]] = row[1]
	}
	if e16Vals["ops"] != "900" || e16Vals["errors"] != "0" {
		t.Errorf("E16 sized: ops=%s errors=%s, want 900/0", e16Vals["ops"], e16Vals["errors"])
	}
	for _, metric := range []string{"sim_cost_us", "ops/sim-sec", "op read", "op write",
		"op build", "op readdir", "op stat", "tenant scan", "tenant edit", "tenant build",
		"lat_us p50", "lat_us p95", "lat_us p99", "lat_us max", "msgs", "msgs/op"} {
		if e16Vals[metric] == "" {
			t.Errorf("E16 sized: metric %q missing from table", metric)
		}
	}
	for _, tenant := range []string{"scan", "edit", "build"} {
		if got := e16Vals["tenant "+tenant]; !strings.HasPrefix(got, "300 ops") {
			t.Errorf("E16 sized: tenant %s = %q, want 300 ops", tenant, got)
		}
	}
	e16again := bench.E16Sized(300)
	if fmt.Sprint(e16.Rows) != fmt.Sprint(e16again.Rows) {
		t.Errorf("E16 sized is nondeterministic across runs with the same seed:\n%v\nvs\n%v",
			e16.Rows, e16again.Rows)
	}
}

// TestBenchSmoke is the CI smoke entry point: it runs the cache/
// readahead experiment end to end with metrics aggregation and checks
// the BENCH_locus.json encoding round-trips.
func TestBenchSmoke(t *testing.T) {
	tbl, res := bench.RunWithMetrics(bench.Experiment{ID: "E11", Run: bench.E11})
	if tbl == nil || len(tbl.Rows) != 3 {
		t.Fatalf("E11 table malformed: %+v", tbl)
	}
	if res.ID != "E11" || res.Msgs == 0 || res.Bytes == 0 || res.CPUUs == 0 {
		t.Fatalf("metrics not aggregated: %+v", res)
	}
	if res.CacheHits == 0 || res.CacheHitRate <= 0 || res.RAPagesSent == 0 {
		t.Fatalf("cache/readahead counters missing: %+v", res)
	}
	tbl14, res14 := bench.RunWithMetrics(bench.Experiment{ID: "E14", Run: bench.E14})
	if tbl14 == nil || len(tbl14.Rows) != 2 {
		t.Fatalf("E14 table malformed: %+v", tbl14)
	}
	if res14.LeasesGranted == 0 || res14.LeasesRevoked == 0 || res14.BatchedRevokes == 0 {
		t.Fatalf("lease counters not aggregated: %+v", res14)
	}
	tbl15, res15 := bench.RunWithMetrics(bench.Experiment{ID: "E15", Run: bench.E15})
	if tbl15 == nil || len(tbl15.Rows) != 5 {
		t.Fatalf("E15 table malformed: %+v", tbl15)
	}
	if res15.OrphanNotices == 0 || res15.PipeTeardowns == 0 || res15.TxnPartitionAborts == 0 ||
		res15.SignalsQueued == 0 || res15.SignalsReplayed == 0 || res15.SignalsExpired == 0 {
		t.Fatalf("§5.6 failure-action counters not aggregated: %+v", res15)
	}
	var buf bytes.Buffer
	if err := bench.WriteJSON(&buf, []bench.Result{res}); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Schema  string         `json:"schema"`
		Results []bench.Result `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("BENCH_locus.json output is not valid JSON: %v", err)
	}
	if decoded.Schema != "locus-bench/v1" || len(decoded.Results) != 1 || decoded.Results[0] != res {
		t.Fatalf("JSON round-trip mismatch: %+v", decoded)
	}
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio %q: %v", s, err)
	}
	return v
}

// TestExampleProgramsCompile ensures the examples keep building by
// exercising their core flows through the public API (quick versions).
func TestExampleFlows(t *testing.T) {
	c, err := locus.Simple(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s := c.Site(1).Login("u")
	if err := s.WriteFile("/x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	c.Site(2).Proc.Register("noop", func(*proc.Ctx) int { return 0 })
	if err := s.WriteFile("/noop", []byte("go:noop\n")); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	s.SetExecSite(2)
	pid, err := s.Run("/noop")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Wait(pid); st.Code != 0 {
		t.Fatalf("status %+v", st)
	}
}
