// Package repro is a from-scratch Go reproduction of the LOCUS
// distributed operating system (Walker, Popek, English, Kline, Thiel —
// SOSP 1983). The public API lives in package repro/locus; the kernel
// subsystems are under internal/ (see DESIGN.md for the inventory);
// bench_test.go regenerates every figure/table in the paper (see
// EXPERIMENTS.md for paper-vs-measured results).
package repro
