// Command benchdiff is the perf-regression gate: it re-runs the full
// experiment suite and diffs the deterministic message and byte
// counters against the committed BENCH_locus.json baseline, failing
// when any pinned experiment regresses by more than the tolerance.
//
// Only simulated, scheduling-invariant counters are compared (wire
// messages and wire bytes): they are exact across machines and across
// the parallel drain pool, so any drift is a real protocol change —
// either commit a regenerated baseline with the PR that explains it,
// or fix the regression.
//
// benchdiff also gates wall-clock throughput: it runs the E16
// multi-tenant workload at a moderate fixed op budget, measures real
// ops/sec, and fails if the machine falls more than the throughput
// tolerance (default 25%) below the committed floor in
// BENCH_throughput.json. The floor is deliberately conservative —
// well under a healthy run on modest hardware — so the gate is stable
// across CI machines while still catching order-of-magnitude
// simulator regressions (the class of bug it exists for: an O(n²)
// directory decode once cut throughput ~20×). Re-measure with
// `go run ./cmd/locus-bench -workload -workload-ops 20000` and edit
// the floor only with a PR that explains the change.
//
// Usage:
//
//	benchdiff                         # compare against BENCH_locus.json
//	benchdiff -baseline FILE          # compare against FILE
//	benchdiff -tolerance 0.10         # allowed relative growth (default 10%)
//	benchdiff -no-throughput          # skip the wall-clock throughput gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

// throughputBaseline is the committed BENCH_throughput.json schema.
type throughputBaseline struct {
	Schema        string  `json:"schema"`
	OpsPerTenant  int     `json:"ops_per_tenant"`
	FloorOpsPerWS float64 `json:"floor_ops_per_wall_sec"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_locus.json", "committed baseline to diff against")
	tolerance := flag.Float64("tolerance", 0.10, "maximum allowed relative regression per counter")
	tpBaseline := flag.String("throughput-baseline", "BENCH_throughput.json", "committed wall-clock throughput floor")
	tpTolerance := flag.Float64("throughput-tolerance", 0.25, "allowed relative shortfall below the throughput floor")
	noThroughput := flag.Bool("no-throughput", false, "skip the wall-clock throughput gate")
	flag.Parse()

	f, err := os.Open(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	base, err := bench.ReadJSON(f)
	f.Close() // error unchecked by design: read-only baseline file
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	baseByID := make(map[string]bench.Result, len(base))
	for _, r := range base {
		baseByID[r.ID] = r
	}

	_, current := bench.AllWithMetrics()
	failures := 0
	check := func(id, counter string, baseV, curV int64) {
		if baseV == 0 {
			if curV != 0 {
				fmt.Printf("FAIL %-4s %-6s %8d -> %8d (baseline was zero)\n", id, counter, baseV, curV)
				failures++
			}
			return
		}
		growth := float64(curV-baseV) / float64(baseV)
		mark := "ok  "
		if growth > *tolerance {
			mark = "FAIL"
			failures++
		}
		fmt.Printf("%s %-4s %-6s %8d -> %8d (%+.1f%%)\n", mark, id, counter, baseV, curV, growth*100)
	}
	for _, cur := range current {
		b, ok := baseByID[cur.ID]
		if !ok {
			// A new experiment has no baseline yet: report, don't fail —
			// committing the regenerated baseline is part of adding it.
			fmt.Printf("new  %-4s msgs=%d bytes=%d (no baseline entry)\n", cur.ID, cur.Msgs, cur.Bytes)
			continue
		}
		delete(baseByID, cur.ID)
		check(cur.ID, "msgs", b.Msgs, cur.Msgs)
		check(cur.ID, "bytes", b.Bytes, cur.Bytes)
	}
	// An experiment present in the baseline but gone from the suite is
	// a silent loss of coverage: fail so the baseline gets regenerated
	// deliberately.
	for id := range baseByID {
		fmt.Printf("FAIL %-4s missing from current suite (baseline entry orphaned)\n", id)
		failures++
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d counter(s) regressed beyond %.0f%% (regenerate BENCH_locus.json via `make benchjson` if the change is intended and explained)\n",
			failures, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d experiments within %.0f%% of baseline\n", len(current), *tolerance*100)

	if !*noThroughput {
		if err := gateThroughput(*tpBaseline, *tpTolerance); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
	}
}

// gateThroughput runs the fixed moderate workload and enforces the
// committed wall-clock ops/sec floor.
func gateThroughput(path string, tolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tb throughputBaseline
	if err := json.Unmarshal(raw, &tb); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if tb.Schema != "locus-throughput/v1" {
		return fmt.Errorf("%s: unknown schema %q", path, tb.Schema)
	}
	if tb.OpsPerTenant <= 0 || tb.FloorOpsPerWS <= 0 {
		return fmt.Errorf("%s: non-positive workload size or floor", path)
	}
	start := time.Now()
	res, err := bench.E16Workload(tb.OpsPerTenant)
	if err != nil {
		return fmt.Errorf("throughput workload: %v", err)
	}
	wall := time.Since(start)
	got := float64(res.Ops) / wall.Seconds()
	min := tb.FloorOpsPerWS * (1 - tolerance)
	if res.Errors != 0 {
		return fmt.Errorf("throughput workload: %d operation errors", res.Errors)
	}
	if got < min {
		return fmt.Errorf("throughput gate: %.0f ops/wall-sec < %.0f (floor %.0f - %.0f%%); the simulator hot path regressed, or this machine is far below the committed floor — re-measure with `locus-bench -workload -workload-ops %d` and justify any floor change",
			got, min, tb.FloorOpsPerWS, tolerance*100, tb.OpsPerTenant)
	}
	fmt.Printf("throughput: %d ops in %s = %.0f ops/wall-sec (floor %.0f, tolerance %.0f%%)\n",
		res.Ops, wall.Round(time.Millisecond), got, tb.FloorOpsPerWS, tolerance*100)
	return nil
}
