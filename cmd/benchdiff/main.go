// Command benchdiff is the perf-regression gate: it re-runs the full
// experiment suite and diffs the deterministic message and byte
// counters against the committed BENCH_locus.json baseline, failing
// when any pinned experiment regresses by more than the tolerance.
//
// Only simulated, scheduling-invariant counters are compared (wire
// messages and wire bytes): they are exact across machines and across
// the parallel drain pool, so any drift is a real protocol change —
// either commit a regenerated baseline with the PR that explains it,
// or fix the regression.
//
// Usage:
//
//	benchdiff                         # compare against BENCH_locus.json
//	benchdiff -baseline FILE          # compare against FILE
//	benchdiff -tolerance 0.10         # allowed relative growth (default 10%)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_locus.json", "committed baseline to diff against")
	tolerance := flag.Float64("tolerance", 0.10, "maximum allowed relative regression per counter")
	flag.Parse()

	f, err := os.Open(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	base, err := bench.ReadJSON(f)
	f.Close() // error unchecked by design: read-only baseline file
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	baseByID := make(map[string]bench.Result, len(base))
	for _, r := range base {
		baseByID[r.ID] = r
	}

	_, current := bench.AllWithMetrics()
	failures := 0
	check := func(id, counter string, baseV, curV int64) {
		if baseV == 0 {
			if curV != 0 {
				fmt.Printf("FAIL %-4s %-6s %8d -> %8d (baseline was zero)\n", id, counter, baseV, curV)
				failures++
			}
			return
		}
		growth := float64(curV-baseV) / float64(baseV)
		mark := "ok  "
		if growth > *tolerance {
			mark = "FAIL"
			failures++
		}
		fmt.Printf("%s %-4s %-6s %8d -> %8d (%+.1f%%)\n", mark, id, counter, baseV, curV, growth*100)
	}
	for _, cur := range current {
		b, ok := baseByID[cur.ID]
		if !ok {
			// A new experiment has no baseline yet: report, don't fail —
			// committing the regenerated baseline is part of adding it.
			fmt.Printf("new  %-4s msgs=%d bytes=%d (no baseline entry)\n", cur.ID, cur.Msgs, cur.Bytes)
			continue
		}
		delete(baseByID, cur.ID)
		check(cur.ID, "msgs", b.Msgs, cur.Msgs)
		check(cur.ID, "bytes", b.Bytes, cur.Bytes)
	}
	// An experiment present in the baseline but gone from the suite is
	// a silent loss of coverage: fail so the baseline gets regenerated
	// deliberately.
	for id := range baseByID {
		fmt.Printf("FAIL %-4s missing from current suite (baseline entry orphaned)\n", id)
		failures++
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d counter(s) regressed beyond %.0f%% (regenerate BENCH_locus.json via `make benchjson` if the change is intended and explained)\n",
			failures, *tolerance*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d experiments within %.0f%% of baseline\n", len(current), *tolerance*100)
}
