// Command locus-shell is an interactive shell onto a simulated LOCUS
// network: a REPL of Unix-flavoured commands executed against the
// single-system-image filesystem, plus operator commands for
// partitioning, merging, and inspecting the network.
//
// Usage:
//
//	locus-shell [-sites N] [-user NAME]
//
// Commands (try `help` inside the shell):
//
//	ls [path]            cat <path>           write <path> <text...>
//	mkdir <path>         rm <path>            mv <old> <new>
//	ln <old> <new>       stat <path>          replicate <path> <site...>
//	site <n>             sites                partition <a,b|c,d>
//	merge                settle               conflicts
//	resolve <id> <site>  mail                 send <user> <text...>
//	stats                help                 exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/locus"
)

type shell struct {
	c        *locus.Cluster
	sessions map[locus.SiteID]*locus.Session
	cur      locus.SiteID
	user     string
}

func main() {
	nSites := flag.Int("sites", 3, "number of simulated sites")
	user := flag.String("user", "operator", "login user")
	flag.Parse()

	c, err := locus.Simple(*nSites)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locus-shell:", err)
		os.Exit(1)
	}
	defer c.Close()

	sh := &shell{c: c, sessions: map[locus.SiteID]*locus.Session{}, cur: 1, user: *user}
	fmt.Printf("LOCUS shell: %d sites, logged in as %s at site 1. Type 'help'.\n", *nSites, *user)

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("site%d:%s$ ", sh.cur, sh.user)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		if args[0] == "exit" || args[0] == "quit" {
			return
		}
		if err := sh.run(args); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func (sh *shell) sess() *locus.Session {
	s := sh.sessions[sh.cur]
	if s == nil {
		s = sh.c.Site(sh.cur).Login(sh.user)
		sh.sessions[sh.cur] = s
	}
	return s
}

func (sh *shell) run(args []string) error {
	se := sh.sess()
	switch args[0] {
	case "help":
		fmt.Println("filesystem: ls cat write mkdir rm mv ln stat replicate")
		fmt.Println("operations: site sites partition merge settle conflicts resolve stats")
		fmt.Println("mail:       mail send")
	case "ls":
		path := "/"
		if len(args) > 1 {
			path = args[1]
		}
		ents, err := se.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			fmt.Printf("%s\t(inode %d)\n", e.Name, e.Inode)
		}
	case "cat":
		if len(args) != 2 {
			return fmt.Errorf("usage: cat <path>")
		}
		d, err := se.ReadFile(args[1])
		if err != nil {
			return err
		}
		fmt.Println(string(d))
	case "write":
		if len(args) < 3 {
			return fmt.Errorf("usage: write <path> <text...>")
		}
		return se.WriteFile(args[1], []byte(strings.Join(args[2:], " ")))
	case "mkdir":
		if len(args) != 2 {
			return fmt.Errorf("usage: mkdir <path>")
		}
		return se.Mkdir(args[1])
	case "rm":
		if len(args) != 2 {
			return fmt.Errorf("usage: rm <path>")
		}
		return se.Unlink(args[1])
	case "mv":
		if len(args) != 3 {
			return fmt.Errorf("usage: mv <old> <new>")
		}
		return se.Rename(args[1], args[2])
	case "ln":
		if len(args) != 3 {
			return fmt.Errorf("usage: ln <old> <new>")
		}
		return se.Link(args[1], args[2])
	case "stat":
		if len(args) != 2 {
			return fmt.Errorf("usage: stat <path>")
		}
		ino, err := se.Stat(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("inode %d  type %v  size %d  mode %o  links %d  owner %s\n",
			ino.Num, ino.Type, ino.Size, ino.Mode, ino.Nlink, ino.Owner)
		fmt.Printf("stored at sites %v  version %v\n", ino.Sites, ino.VV)
	case "replicate":
		if len(args) < 3 {
			return fmt.Errorf("usage: replicate <path> <site...>")
		}
		var sites []locus.SiteID
		for _, a := range args[2:] {
			n, err := strconv.Atoi(a)
			if err != nil {
				return err
			}
			sites = append(sites, locus.SiteID(n))
		}
		if err := se.SetReplication(args[1], sites...); err != nil {
			return err
		}
		sh.c.Settle()
	case "site":
		if len(args) != 2 {
			return fmt.Errorf("usage: site <n>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || sh.c.Site(locus.SiteID(n)) == nil {
			return fmt.Errorf("no such site %q", args[1])
		}
		sh.cur = locus.SiteID(n)
	case "sites":
		for _, s := range sh.c.Sites() {
			up := "up"
			if !sh.c.Network().Up(s) {
				up = "DOWN"
			}
			fmt.Printf("site %d: %s, partition %v\n", s, up, sh.c.Site(s).Topo.Partition())
		}
	case "partition":
		if len(args) != 2 {
			return fmt.Errorf("usage: partition 1,2|3  (groups separated by |)")
		}
		var groups [][]locus.SiteID
		for _, g := range strings.Split(args[1], "|") {
			var grp []locus.SiteID
			for _, a := range strings.Split(g, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(a))
				if err != nil {
					return err
				}
				grp = append(grp, locus.SiteID(n))
			}
			groups = append(groups, grp)
		}
		sh.c.Partition(groups...)
		fmt.Println("partitioned")
	case "merge":
		rep, err := sh.c.Merge()
		if err != nil {
			return err
		}
		fmt.Printf("merged: %d dirs merged, %d propagated, %d conflicts, %d deletes undone, %d renames\n",
			rep.DirsMerged, rep.Propagated, rep.ConflictsReported, rep.DeletesUndone, rep.NameConflicts)
	case "settle":
		fmt.Printf("%d propagation pulls\n", sh.c.Settle())
	case "conflicts":
		confs := sh.c.Site(sh.cur).Recon.ListConflicts()
		if len(confs) == 0 {
			fmt.Println("no conflicts")
		}
		for _, cf := range confs {
			fmt.Printf("%v owner=%s copies=%v\n", cf.ID, cf.Owner, cf.Copies)
		}
	case "resolve":
		if len(args) != 3 {
			return fmt.Errorf("usage: resolve <inode> <winner-site>")
		}
		ino, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		win, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		for _, cf := range sh.c.Site(sh.cur).Recon.ListConflicts() {
			if int(cf.ID.Inode) == ino {
				if err := sh.c.Site(sh.cur).Recon.ResolveKeep(cf.ID, locus.SiteID(win)); err != nil {
					return err
				}
				sh.c.Settle()
				fmt.Println("resolved")
				return nil
			}
		}
		return fmt.Errorf("no conflict with inode %d", ino)
	case "mail":
		msgs, err := se.ReadMail()
		if err != nil {
			return err
		}
		if len(msgs) == 0 {
			fmt.Println("no mail")
		}
		for _, m := range msgs {
			fmt.Printf("[%s] from %s: %s\n", m.ID, m.From, m.Body)
		}
	case "send":
		if len(args) < 3 {
			return fmt.Errorf("usage: send <user> <text...>")
		}
		return se.SendMail(args[1], strings.Join(args[2:], " "))
	case "stats":
		st := sh.c.Stats()
		fmt.Printf("messages %d  bytes %d  sim-CPU %dus  sim-disk %dus\n",
			st.Msgs, st.Bytes, st.CPUUs, st.DiskUs)
	default:
		return fmt.Errorf("unknown command %q (try help)", args[0])
	}
	return nil
}
