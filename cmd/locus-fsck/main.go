// Command locus-fsck demonstrates the conflict inspection and
// resolution tools of §4.6 on a scripted scenario: it builds a cluster,
// manufactures a replication conflict through partitioned updates,
// lists the conflicted files the way an operator would, and resolves
// them with both tools (keep-one and split-into-copies).
//
// Usage:
//
//	locus-fsck [-resolve keep|split]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/locus"
)

func main() {
	mode := flag.String("resolve", "keep", "resolution strategy: keep | split")
	flag.Parse()

	c, err := locus.Simple(2)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	owner := c.Site(1).Login("owner")
	must(owner.WriteFile("/data.bin", []byte("base version")))
	c.Settle()

	fmt.Println("partitioning and updating both copies of /data.bin ...")
	c.Partition([]locus.SiteID{1}, []locus.SiteID{2})
	must(owner.WriteFile("/data.bin", []byte("updated in partition 1")))
	must(c.Site(2).Login("owner").WriteFile("/data.bin", []byte("updated in partition 2")))

	rep, err := c.Merge()
	must(err)
	fmt.Printf("merge report: %d conflict(s) detected\n", rep.ConflictsReported)

	conflicts := c.Site(1).Recon.ListConflicts()
	if len(conflicts) == 0 {
		fmt.Println("fsck: no conflicts")
		return
	}
	fmt.Println("conflicted files:")
	for _, cf := range conflicts {
		fmt.Printf("  %v type=%v owner=%s\n", cf.ID, cf.Type, cf.Owner)
		for site, vv := range cf.Copies {
			fmt.Printf("    site %d holds version %v\n", site, vv)
		}
	}
	mail, _ := owner.ReadMail()
	for _, m := range mail {
		fmt.Printf("  owner mail: %.70s\n", m.Body)
	}

	switch *mode {
	case "keep":
		for _, cf := range conflicts {
			fmt.Printf("resolving %v: keeping site 2's copy\n", cf.ID)
			must(c.Site(1).Recon.ResolveKeep(cf.ID, 2))
		}
		c.Settle()
		d, err := owner.ReadFile("/data.bin")
		must(err)
		fmt.Printf("resolved: /data.bin = %q\n", d)
	case "split":
		names, err := c.Site(1).Recon.ResolveSplit(owner.Cred(), "/data.bin")
		must(err)
		c.Settle()
		fmt.Println("split into:")
		for _, n := range names {
			d, err := owner.ReadFile(n)
			must(err)
			fmt.Printf("  %s = %q\n", n, d)
		}
	default:
		log.Fatalf("locus-fsck: unknown -resolve mode %q", *mode)
	}

	if left := c.Site(1).Recon.ListConflicts(); len(left) != 0 {
		log.Fatalf("fsck: %d conflicts remain", len(left))
	}
	fmt.Println("fsck: clean")

	// Deep check: cross-site structural invariants (shadow-page leaks,
	// orphan inodes, dangling entries) plus copy convergence, the same
	// pass the chaos harness asserts after every run.
	if findings := c.Fsck(true); len(findings) != 0 {
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
		}
		log.Fatalf("deep fsck: %d violation(s)", len(findings))
	}
	fmt.Println("deep fsck: clean")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
