// Command locus-bench regenerates the LOCUS paper's figures, tables,
// and quantitative claims on the simulated substrate and prints them.
//
// Usage:
//
//	locus-bench                       # run every experiment
//	locus-bench -exp E2               # run one experiment (E1..E16)
//	locus-bench -list                 # list experiments
//	locus-bench -json BENCH_locus.json  # also write machine-readable results
//	locus-bench -workload             # run the E16 workload standalone
//	locus-bench -workload -workload-ops 20000   # ...at a smaller op budget
//	locus-bench -workload -cpuprofile cpu.prof -memprofile mem.prof
//
// -workload drives the multi-tenant workload engine directly (no
// experiment table, no metrics harness): it prints the deterministic
// counter table to stdout and the wall-clock throughput — the one
// number that is machine-dependent by design — to stderr. The profile
// flags capture pprof data for exactly that run, which is how the
// simulator hot paths in DESIGN.md were found.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment (E1..E16)")
	list := flag.Bool("list", false, "list experiments")
	jsonPath := flag.String("json", "", "write per-experiment results to FILE (BENCH_locus.json schema)")
	workloadRun := flag.Bool("workload", false, "run the E16 multi-tenant workload standalone")
	workloadOps := flag.Int("workload-ops", bench.E16OpsPerTenant, "ops per tenant for -workload (x3 tenants)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to FILE")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to FILE")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("%v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatalf("%v", err)
			}
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatalf("%v", err)
			}
			if err := f.Close(); err != nil {
				fatalf("%v", err)
			}
		}()
	}

	if *workloadRun {
		start := time.Now()
		res, err := bench.E16Workload(*workloadOps)
		if err != nil {
			fatalf("workload: %v", err)
		}
		wall := time.Since(start)
		fmt.Print(res.CounterTable())
		fmt.Fprintf(os.Stderr, "wall=%s ops/wall-sec=%.0f ops/sim-sec=%.0f\n",
			wall.Round(time.Millisecond), float64(res.Ops)/wall.Seconds(), res.OpsPerSimSec())
		return
	}

	registry := bench.Experiments()
	if *list {
		for _, e := range registry {
			// E16 is the million-op run; listing must not pay for it.
			if e.ID == "E16" {
				fmt.Printf("%-4s %s\n", e.ID, bench.E16Sized(1).Title)
				continue
			}
			t, _ := bench.RunWithMetrics(e)
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}

	var run []bench.Experiment
	if *exp != "" {
		id := strings.ToUpper(*exp)
		for _, e := range registry {
			if e.ID == id {
				run = append(run, e)
			}
		}
		if len(run) == 0 {
			fatalf("unknown experiment %q (E1..E%d)", *exp, len(registry))
		}
	} else {
		run = registry
	}

	var results []bench.Result
	for _, e := range run {
		t, res := bench.RunWithMetrics(e)
		t.Fprint(os.Stdout)
		results = append(results, res)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatalf("%v", err)
		}
		if err := bench.WriteJSON(f, results); err != nil {
			f.Close() // error unchecked by design: the write error is the one to report
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", *jsonPath, len(results))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "locus-bench: "+format+"\n", args...)
	os.Exit(2)
}
