// Command locus-bench regenerates the LOCUS paper's figures, tables,
// and quantitative claims on the simulated substrate and prints them.
//
// Usage:
//
//	locus-bench            # run every experiment
//	locus-bench -exp E2    # run one experiment (E1..E10)
//	locus-bench -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

var experiments = map[string]func() *bench.Table{
	"E1":  bench.E1,
	"E2":  bench.E2,
	"E3":  bench.E3,
	"E4":  bench.E4,
	"E5":  bench.E5,
	"E6":  bench.E6,
	"E7":  bench.E7,
	"E8":  bench.E8,
	"E9":  bench.E9,
	"E10": bench.E10,
}

var order = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10"}

func main() {
	exp := flag.String("exp", "", "run a single experiment (E1..E10)")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	if *list {
		for _, id := range order {
			t := experiments[id]()
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}
	if *exp != "" {
		f, ok := experiments[strings.ToUpper(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "locus-bench: unknown experiment %q (E1..E10)\n", *exp)
			os.Exit(2)
		}
		f().Fprint(os.Stdout)
		return
	}
	for _, id := range order {
		experiments[id]().Fprint(os.Stdout)
	}
}
