// Command locus-bench regenerates the LOCUS paper's figures, tables,
// and quantitative claims on the simulated substrate and prints them.
//
// Usage:
//
//	locus-bench                       # run every experiment
//	locus-bench -exp E2               # run one experiment (E1..E15)
//	locus-bench -list                 # list experiments
//	locus-bench -json BENCH_locus.json  # also write machine-readable results
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment (E1..E15)")
	list := flag.Bool("list", false, "list experiments")
	jsonPath := flag.String("json", "", "write per-experiment results to FILE (BENCH_locus.json schema)")
	flag.Parse()

	registry := bench.Experiments()
	if *list {
		for _, e := range registry {
			t, _ := bench.RunWithMetrics(e)
			fmt.Printf("%-4s %s\n", t.ID, t.Title)
		}
		return
	}

	var run []bench.Experiment
	if *exp != "" {
		id := strings.ToUpper(*exp)
		for _, e := range registry {
			if e.ID == id {
				run = append(run, e)
			}
		}
		if len(run) == 0 {
			fmt.Fprintf(os.Stderr, "locus-bench: unknown experiment %q (E1..E%d)\n", *exp, len(registry))
			os.Exit(2)
		}
	} else {
		run = registry
	}

	var results []bench.Result
	for _, e := range run {
		t, res := bench.RunWithMetrics(e)
		t.Fprint(os.Stdout)
		results = append(results, res)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "locus-bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f, results); err != nil {
			f.Close() // error unchecked by design: warm-up handle; a real failure resurfaces in the measured run
			fmt.Fprintf(os.Stderr, "locus-bench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "locus-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d experiments)\n", *jsonPath, len(results))
	}
}
