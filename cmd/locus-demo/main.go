// Command locus-demo runs a guided tour of the LOCUS reproduction: it
// boots a simulated network, demonstrates network transparency,
// replication, partitioned operation, dynamic merge, and automatic
// reconciliation, narrating each step.
//
// Usage:
//
//	locus-demo [-sites N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	"repro/locus"
)

func main() {
	nSites := flag.Int("sites", 6, "number of simulated sites")
	flag.Parse()
	if *nSites < 2 {
		log.Fatal("locus-demo: need at least 2 sites")
	}

	step("Booting a %d-site LOCUS network (one filegroup replicated everywhere)", *nSites)
	c, err := locus.Simple(*nSites)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	a := c.Site(1).Login("alice")
	last := locus.SiteID(*nSites)
	b := c.Site(last).Login("bob")

	step("Network transparency: alice@site1 writes, bob@site%d reads the same name", last)
	must(a.Mkdir("/demo"))
	must(a.WriteFile("/demo/file", []byte("written at site 1")))
	c.Settle()
	data, err := b.ReadFile("/demo/file")
	must(err)
	fmt.Printf("   bob reads: %q\n", data)
	ino, err := b.Stat("/demo/file")
	must(err)
	fmt.Printf("   copies at sites %v, version vector %v\n", ino.Sites, ino.VV)

	half := *nSites / 2
	var g1, g2 []locus.SiteID
	for i := 1; i <= *nSites; i++ {
		if i <= half {
			g1 = append(g1, locus.SiteID(i))
		} else {
			g2 = append(g2, locus.SiteID(i))
		}
	}
	step("Partitioning the network: %v | %v (both halves keep working)", g1, g2)
	c.Partition(g1, g2)
	must(a.WriteFile("/demo/from-a", []byte("partition A work")))
	must(b.WriteFile("/demo/from-b", []byte("partition B work")))
	must(a.WriteFile("/demo/file", []byte("A's version")))
	must(b.WriteFile("/demo/file", []byte("B's version")))
	fmt.Printf("   site 1 partition view: %v\n", c.Site(1).Topo.Partition())
	fmt.Printf("   site %d partition view: %v\n", last, c.Site(last).Topo.Partition())

	step("Healing the network: merge protocol + automatic reconciliation")
	rep, err := c.Merge()
	must(err)
	fmt.Printf("   directories merged: %d, conflicts reported: %d, propagated: %d\n",
		rep.DirsMerged, rep.ConflictsReported, rep.Propagated)

	step("Both halves' independent files are visible everywhere")
	fa, _ := b.ReadFile("/demo/from-a")
	fb, _ := a.ReadFile("/demo/from-b")
	fmt.Printf("   bob sees %q; alice sees %q\n", fa, fb)

	step("The conflicting file is blocked and reported")
	if _, err := a.ReadFile("/demo/file"); errors.Is(err, locus.ErrConflict) {
		fmt.Println("   open(/demo/file) -> version conflict; owner mailed")
	}
	mail, _ := a.ReadMail()
	for _, m := range mail {
		fmt.Printf("   mail: %.72s\n", m.Body)
	}

	step("Resolving: keep B's version")
	for _, cf := range c.Site(1).Recon.ListConflicts() {
		must(c.Site(1).Recon.ResolveKeep(cf.ID, g2[0]))
	}
	c.Settle()
	final, err := a.ReadFile("/demo/file")
	must(err)
	fmt.Printf("   /demo/file = %q\n", final)

	st := c.Stats()
	step("Done. Totals: %d messages, %d KB, %d ms simulated CPU",
		st.Msgs, st.Bytes/1024, st.CPUUs/1000)
}

var stepN int

func step(format string, args ...any) {
	stepN++
	fmt.Printf("\n[%d] %s\n", stepN, fmt.Sprintf(format, args...))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
