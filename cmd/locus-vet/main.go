// Command locus-vet runs the repository's custom static analyzers (see
// internal/lint): the syntactic tier (simclock, uncheckedcall,
// lockorder, panicdiscipline, rawcall), the intraprocedural dataflow
// tier (pageleak, inodealias, goroutinejoin, rpcconsistency,
// blockinglock), and the interprocedural summary tier (maporder,
// sentinelerr, vvmutation, atomiccounter), plus the allow-directive
// audits: every suppression must carry a reason, and a suppression that
// hides no finding is itself reported (staleallow).
//
// Usage:
//
//	go run ./cmd/locus-vet [-json] [-allows] [-stats] [-cache FILE] ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the whole module containing the working directory —
// several analyses are whole-program fixpoints and partial runs would
// under-report. For the same reason -cache is a whole-module stamp: the
// digest covers every non-test .go file plus go.mod and the analyzer
// registry fingerprint, and only a clean run writes it, so a hit can
// only ever mean "unchanged since last clean run with this analyzer
// set".
//
// -allows prints the audited suppression inventory (per-analyzer counts
// plus every directive's position and reason) instead of running the
// analyzers. -stats appends run telemetry to a normal run: findings and
// allows per analyzer and the interprocedural summary-cache hit rate.
//
// Exit status: 0 clean, 1 findings, 2 load failure (any package that
// fails to parse or type-check).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// summaryStats is the interprocedural summary-cache telemetry.
type summaryStats struct {
	Builds int `json:"builds"`
	Hits   int `json:"hits"`
}

// report is the -json output shape; CI uploads it as an artifact.
type report struct {
	Findings   []jsonFinding       `json:"findings"`
	ByAnalyzer map[string]int      `json:"findings_by_analyzer"`
	Allows     []lint.Allow        `json:"allows"`
	AllowedBy  map[string]int      `json:"allows_by_analyzer"`
	Summary    *summaryStats       `json:"summary_cache,omitempty"`
	LoadErrors []lint.PackageError `json:"load_errors,omitempty"`
	Cached     bool                `json:"cached,omitempty"`
}

// options are the parsed command-line flags.
type options struct {
	jsonOut   bool
	allowsOut bool
	statsOut  bool
	cachePath string
}

func main() {
	var opts options
	flag.BoolVar(&opts.jsonOut, "json", false, "emit findings, allow directives, and load errors as JSON on stdout")
	flag.BoolVar(&opts.allowsOut, "allows", false, "print the audited suppression inventory (per-analyzer counts and every directive) instead of findings")
	flag.BoolVar(&opts.statsOut, "stats", false, "append run telemetry: findings and allows per analyzer plus the summary-cache hit rate")
	flag.StringVar(&opts.cachePath, "cache", "", "whole-module content-hash stamp file; skip the run when unchanged since the last clean run")
	flag.Parse()
	os.Exit(run(opts, os.Stdout))
}

func run(opts options, stdout io.Writer) int {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return loadFailure(opts.jsonOut, stdout, []lint.PackageError{{Path: "(module)", Err: err.Error()}})
	}

	var digest string
	if opts.cachePath != "" && !opts.allowsOut && !opts.statsOut {
		if digest, err = moduleDigest(root); err != nil {
			fmt.Fprintln(os.Stderr, "locus-vet: cache digest:", err)
			digest = "" // fall through to a full run, never a stale hit
		} else if prev, rerr := os.ReadFile(opts.cachePath); rerr == nil && strings.TrimSpace(string(prev)) == digest {
			if opts.jsonOut {
				emit(stdout, report{
					Findings: []jsonFinding{}, ByAnalyzer: map[string]int{},
					Allows: []lint.Allow{}, AllowedBy: map[string]int{}, Cached: true,
				})
			} else {
				fmt.Fprintln(os.Stderr, "locus-vet: module unchanged since last clean run (cache hit)")
			}
			return 0
		}
	} else if opts.cachePath != "" {
		digest, _ = moduleDigest(root) // stamp a clean -stats run too
	}

	prog, err := lint.LoadAll(root, nil)
	if err != nil {
		var le *lint.LoadError
		if errors.As(err, &le) {
			return loadFailure(opts.jsonOut, stdout, le.Packages)
		}
		return loadFailure(opts.jsonOut, stdout, []lint.PackageError{{Path: "(module)", Err: err.Error()}})
	}

	allows := lint.CollectAllows(prog)
	if opts.allowsOut {
		printAllowInventory(stdout, allows)
		return 0
	}

	cfg := lint.DefaultConfig()
	findings := lint.Run(prog, cfg, lint.Analyzers())
	findings = append(findings, lint.AllowPolicyFindings(prog)...)
	// The stale-suppression audit must run last: it reads the ledger of
	// directives that fired during the analyzer runs above.
	findings = append(findings, lint.StaleAllowFindings(prog, cfg)...)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos.Filename != findings[j].Pos.Filename {
			return findings[i].Pos.Filename < findings[j].Pos.Filename
		}
		if findings[i].Pos.Line != findings[j].Pos.Line {
			return findings[i].Pos.Line < findings[j].Pos.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})

	if opts.jsonOut {
		builds, hits := cfg.SummaryCacheStats()
		r := report{
			Findings:   []jsonFinding{},
			ByAnalyzer: map[string]int{},
			Allows:     allows,
			AllowedBy:  map[string]int{},
			Summary:    &summaryStats{Builds: builds, Hits: hits},
		}
		for _, f := range findings {
			r.Findings = append(r.Findings, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
			r.ByAnalyzer[f.Analyzer]++
		}
		for _, a := range allows {
			for _, name := range a.Analyzers {
				r.AllowedBy[name]++
			}
		}
		emit(stdout, r)
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if opts.statsOut {
		printStats(stdout, cfg, findings, allows)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "locus-vet: %d finding(s)\n", len(findings))
		return 1
	}
	if opts.cachePath != "" && digest != "" {
		if werr := os.WriteFile(opts.cachePath, []byte(digest+"\n"), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "locus-vet: writing cache:", werr)
		}
	}
	return 0
}

// printAllowInventory lists every audited suppression with per-analyzer
// counts, so reviewers can read the repository's exception surface in
// one screen.
func printAllowInventory(w io.Writer, allows []lint.Allow) {
	counts := map[string]int{}
	for _, a := range allows {
		for _, name := range a.Analyzers {
			counts[name]++
		}
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%d allow directive(s)\n", len(allows))
	for _, name := range names {
		fmt.Fprintf(w, "  %-16s %d\n", name, counts[name])
	}
	for _, a := range allows {
		tag := ""
		if a.Legacy {
			tag = " [legacy //nolint]"
		}
		fmt.Fprintf(w, "%s:%d: %s%s: %s\n",
			a.Pos.Filename, a.Pos.Line, strings.Join(a.Analyzers, ","), tag, a.Reason)
	}
}

// printStats summarizes a run: findings and allows per analyzer plus
// the interprocedural summary-cache hit rate (`make vet-stats`).
func printStats(w io.Writer, cfg *lint.Config, findings []lint.Finding, allows []lint.Allow) {
	byAnalyzer := map[string]int{}
	for _, f := range findings {
		byAnalyzer[f.Analyzer]++
	}
	allowedBy := map[string]int{}
	for _, a := range allows {
		for _, name := range a.Analyzers {
			allowedBy[name]++
		}
	}
	fmt.Fprintf(w, "findings: %d\n", len(findings))
	for _, name := range sortedKeys(byAnalyzer) {
		fmt.Fprintf(w, "  %-16s %d\n", name, byAnalyzer[name])
	}
	fmt.Fprintf(w, "allows: %d\n", len(allows))
	for _, name := range sortedKeys(allowedBy) {
		fmt.Fprintf(w, "  %-16s %d\n", name, allowedBy[name])
	}
	builds, hits := cfg.SummaryCacheStats()
	fmt.Fprintf(w, "summary cache: %d build(s), %d hit(s)\n", builds, hits)
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func loadFailure(jsonOut bool, stdout io.Writer, pkgErrs []lint.PackageError) int {
	if jsonOut {
		emit(stdout, report{
			Findings: []jsonFinding{}, ByAnalyzer: map[string]int{},
			Allows: []lint.Allow{}, AllowedBy: map[string]int{}, LoadErrors: pkgErrs,
		})
	}
	for _, pe := range pkgErrs {
		fmt.Fprintf(os.Stderr, "locus-vet: load: %s: %s\n", pe.Path, pe.Err)
	}
	return 2
}

func emit(w io.Writer, r report) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, "locus-vet: encoding report:", err)
	}
}

// moduleDigest hashes the analyzer registry fingerprint plus every
// non-test .go file under root and go.mod, keyed by repo-relative path,
// so the stamp changes whenever any input to the analysis — the
// sources, the analyzers' own sources, or the set of enabled analyzers
// — changes.
func moduleDigest(root string) (string, error) {
	return moduleDigestWith(root, lint.RegistryFingerprint())
}

// moduleDigestWith is moduleDigest with the registry fingerprint
// injected (separated so the cache-staleness regression test can prove
// the fingerprint participates in the stamp).
func moduleDigestWith(root, registry string) (string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if name == "go.mod" || (strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")) {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(paths)
	h := sha256.New()
	fmt.Fprintf(h, "registry %s\n", registry)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}
