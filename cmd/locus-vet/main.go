// Command locus-vet runs the repository's custom static analyzers (see
// internal/lint): simclock, uncheckedcall, lockorder, panicdiscipline.
//
// Usage:
//
//	go run ./cmd/locus-vet ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the whole module containing the working directory —
// the lock-order analysis is a whole-program fixpoint and partial runs
// would under-report. Exit status: 0 clean, 1 findings, 2 load failure.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "locus-vet:", err)
		os.Exit(2)
	}
	prog, err := lint.LoadAll(root, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "locus-vet:", err)
		os.Exit(2)
	}
	findings := lint.Run(prog, lint.DefaultConfig(), lint.Analyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "locus-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
