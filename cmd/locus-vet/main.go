// Command locus-vet runs the repository's custom static analyzers (see
// internal/lint): simclock, uncheckedcall, lockorder, panicdiscipline,
// rawcall, pageleak, inodealias, goroutinejoin, rpcconsistency, and
// blockinglock, plus the allow-directive audit (every suppression must
// carry a reason).
//
// Usage:
//
//	go run ./cmd/locus-vet [-json] [-cache FILE] ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the whole module containing the working directory —
// several analyses are whole-program fixpoints and partial runs would
// under-report. For the same reason -cache is a whole-module stamp: the
// digest covers every non-test .go file plus go.mod, and only a clean
// run writes it, so a hit can only ever mean "unchanged since last
// clean run".
//
// Exit status: 0 clean, 1 findings, 2 load failure (any package that
// fails to parse or type-check).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report is the -json output shape; CI uploads it as an artifact.
type report struct {
	Findings   []jsonFinding       `json:"findings"`
	ByAnalyzer map[string]int      `json:"findings_by_analyzer"`
	Allows     []lint.Allow        `json:"allows"`
	AllowedBy  map[string]int      `json:"allows_by_analyzer"`
	LoadErrors []lint.PackageError `json:"load_errors,omitempty"`
	Cached     bool                `json:"cached,omitempty"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings, allow directives, and load errors as JSON on stdout")
	cachePath := flag.String("cache", "", "whole-module content-hash stamp file; skip the run when unchanged since the last clean run")
	flag.Parse()
	os.Exit(run(*jsonOut, *cachePath, os.Stdout))
}

func run(jsonOut bool, cachePath string, stdout io.Writer) int {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return loadFailure(jsonOut, stdout, []lint.PackageError{{Path: "(module)", Err: err.Error()}})
	}

	var digest string
	if cachePath != "" {
		if digest, err = moduleDigest(root); err != nil {
			fmt.Fprintln(os.Stderr, "locus-vet: cache digest:", err)
			digest = "" // fall through to a full run, never a stale hit
		} else if prev, rerr := os.ReadFile(cachePath); rerr == nil && strings.TrimSpace(string(prev)) == digest {
			if jsonOut {
				emit(stdout, report{
					Findings: []jsonFinding{}, ByAnalyzer: map[string]int{},
					Allows: []lint.Allow{}, AllowedBy: map[string]int{}, Cached: true,
				})
			} else {
				fmt.Fprintln(os.Stderr, "locus-vet: module unchanged since last clean run (cache hit)")
			}
			return 0
		}
	}

	prog, err := lint.LoadAll(root, nil)
	if err != nil {
		var le *lint.LoadError
		if errors.As(err, &le) {
			return loadFailure(jsonOut, stdout, le.Packages)
		}
		return loadFailure(jsonOut, stdout, []lint.PackageError{{Path: "(module)", Err: err.Error()}})
	}

	findings := lint.Run(prog, lint.DefaultConfig(), lint.Analyzers())
	findings = append(findings, lint.AllowPolicyFindings(prog)...)
	allows := lint.CollectAllows(prog)

	if jsonOut {
		r := report{
			Findings:   []jsonFinding{},
			ByAnalyzer: map[string]int{},
			Allows:     allows,
			AllowedBy:  map[string]int{},
		}
		for _, f := range findings {
			r.Findings = append(r.Findings, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
			})
			r.ByAnalyzer[f.Analyzer]++
		}
		for _, a := range allows {
			for _, name := range a.Analyzers {
				r.AllowedBy[name]++
			}
		}
		emit(stdout, r)
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "locus-vet: %d finding(s)\n", len(findings))
		return 1
	}
	if cachePath != "" && digest != "" {
		if werr := os.WriteFile(cachePath, []byte(digest+"\n"), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "locus-vet: writing cache:", werr)
		}
	}
	return 0
}

func loadFailure(jsonOut bool, stdout io.Writer, pkgErrs []lint.PackageError) int {
	if jsonOut {
		emit(stdout, report{
			Findings: []jsonFinding{}, ByAnalyzer: map[string]int{},
			Allows: []lint.Allow{}, AllowedBy: map[string]int{}, LoadErrors: pkgErrs,
		})
	}
	for _, pe := range pkgErrs {
		fmt.Fprintf(os.Stderr, "locus-vet: load: %s: %s\n", pe.Path, pe.Err)
	}
	return 2
}

func emit(w io.Writer, r report) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, "locus-vet: encoding report:", err)
	}
}

// moduleDigest hashes every non-test .go file under root plus go.mod,
// keyed by repo-relative path, so the stamp changes whenever any input
// to the analysis (including the analyzers' own sources) changes.
func moduleDigest(root string) (string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if name == "go.mod" || (strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")) {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %d\n", filepath.ToSlash(rel), len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}
