package main

import (
	"testing"

	"repro/internal/lint"
)

// TestCacheStampIncludesRegistryFingerprint pins the cache-staleness
// fix: the .locusvet.cache stamp must change when the analyzer registry
// changes, even with every source file untouched. A stamp written by a
// locus-vet with fewer analyzers must never satisfy one with more.
func TestCacheStampIncludesRegistryFingerprint(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	current, err := moduleDigest(root)
	if err != nil {
		t.Fatal(err)
	}
	same, err := moduleDigestWith(root, lint.RegistryFingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if current != same {
		t.Error("moduleDigest does not use the live registry fingerprint")
	}
	older, err := moduleDigestWith(root, "registry-without-the-summary-tier")
	if err != nil {
		t.Fatal(err)
	}
	if older == current {
		t.Error("stamp unchanged across a registry change: a stale cache would mask new analyzers")
	}
}

// TestRegistryFingerprintCoversAllAnalyzers guards the fingerprint's
// inputs: every registered analyzer name and both policy audits
// participate, and the digest is deterministic.
func TestRegistryFingerprintCoversAllAnalyzers(t *testing.T) {
	if lint.RegistryFingerprint() != lint.RegistryFingerprint() {
		t.Fatal("registry fingerprint is not deterministic")
	}
	if n := len(lint.Analyzers()); n < 14 {
		t.Fatalf("analyzer registry lists %d analyzers, want >= 14 (did a registration go missing?)", n)
	}
}
