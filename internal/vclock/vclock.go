// Package vclock implements the version vectors LOCUS uses to detect
// mutual inconsistency among replicated file copies, following Parker,
// Popek et al., "Detection of Mutual Inconsistency in Distributed
// Systems" (IEEE TSE, 1983), cited as [PARK83] in the LOCUS paper.
//
// Each copy of a replicated object carries a vector counting, per
// originating site, how many updates that copy reflects. Comparing two
// vectors classifies the copies as identical, ancestor/descendant
// (one dominates), or in conflict (concurrent).
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// SiteID identifies a site (node) in the network. Site numbering starts
// at 1; 0 is reserved as "no site".
type SiteID int

// NoSite is the zero SiteID, used where a site is not applicable.
const NoSite SiteID = 0

// Ordering is the result of comparing two version vectors.
type Ordering int

const (
	// Equal means the two vectors are identical: the copies reflect
	// exactly the same set of updates.
	Equal Ordering = iota
	// Dominates means the receiver reflects a superset of the updates
	// in the argument; the receiver's copy is strictly newer.
	Dominates
	// Dominated means the argument reflects a superset of the updates
	// in the receiver; the receiver's copy is strictly older.
	Dominated
	// Concurrent means each vector has updates the other lacks: the
	// copies were modified in different partitions and are in conflict.
	Concurrent
)

// String returns a short human-readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Equal:
		return "equal"
	case Dominates:
		return "dominates"
	case Dominated:
		return "dominated"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

// VV is a version vector: a map from site to the count of updates
// originated at that site which this copy reflects. A nil VV is a valid
// empty vector (no updates anywhere).
type VV map[SiteID]uint64

// New returns an empty version vector.
func New() VV { return VV{} }

// Copy returns an independent deep copy of v.
func (v VV) Copy() VV {
	c := make(VV, len(v))
	for s, n := range v {
		c[s] = n
	}
	return c
}

// Get returns the update count recorded for site s (zero if absent).
func (v VV) Get(s SiteID) uint64 { return v[s] }

// Bump records one more update originated at site s and returns v for
// chaining. Bump mutates the receiver; callers sharing a vector must
// Copy first.
func (v VV) Bump(s SiteID) VV {
	v[s]++
	return v
}

// Compare classifies the relationship between v and o.
func (v VV) Compare(o VV) Ordering {
	greater, less := false, false
	for s, n := range v {
		m := o[s]
		if n > m {
			greater = true
		} else if n < m {
			less = true
		}
	}
	for s, m := range o {
		if _, ok := v[s]; !ok && m > 0 {
			less = true
		}
	}
	switch {
	case greater && less:
		return Concurrent
	case greater:
		return Dominates
	case less:
		return Dominated
	default:
		return Equal
	}
}

// Equal reports whether v and o record identical update histories.
func (v VV) Equal(o VV) bool { return v.Compare(o) == Equal }

// DominatesOrEqual reports whether v reflects every update o does.
// This is the "is at least as new" test used when a site offers to act
// as storage site for an open: it may serve only if its copy's vector
// dominates or equals the latest known vector.
func (v VV) DominatesOrEqual(o VV) bool {
	c := v.Compare(o)
	return c == Equal || c == Dominates
}

// Concurrent reports whether v and o are in conflict.
func (v VV) Concurrent(o VV) bool { return v.Compare(o) == Concurrent }

// Merge returns the least upper bound of v and o: the element-wise
// maximum. The result is a fresh vector; neither input is mutated.
// Reconciliation stamps the surviving copy with the merge of the
// conflicting vectors (optionally bumped at the reconciling site) so
// that the conflict is not re-detected.
func (v VV) Merge(o VV) VV {
	m := v.Copy()
	for s, n := range o {
		if n > m[s] {
			m[s] = n
		}
	}
	return m
}

// Sites returns the sites with a nonzero entry, in ascending order.
func (v VV) Sites() []SiteID {
	out := make([]SiteID, 0, len(v))
	for s, n := range v {
		if n > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total returns the total number of updates recorded across all sites.
func (v VV) Total() uint64 {
	var t uint64
	for _, n := range v {
		t += n
	}
	return t
}

// String renders the vector as "{s1:n1 s2:n2}" with sites ascending.
func (v VV) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, s := range v.Sites() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", s, v[s])
	}
	b.WriteByte('}')
	return b.String()
}
