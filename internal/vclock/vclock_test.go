package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyVectorsEqual(t *testing.T) {
	t.Parallel()
	a, b := New(), New()
	if got := a.Compare(b); got != Equal {
		t.Fatalf("Compare(empty, empty) = %v, want Equal", got)
	}
	var nilVV VV
	if got := nilVV.Compare(b); got != Equal {
		t.Fatalf("Compare(nil, empty) = %v, want Equal", got)
	}
}

func TestBumpDominates(t *testing.T) {
	t.Parallel()
	a := New()
	b := a.Copy().Bump(1)
	if got := b.Compare(a); got != Dominates {
		t.Fatalf("bumped.Compare(orig) = %v, want Dominates", got)
	}
	if got := a.Compare(b); got != Dominated {
		t.Fatalf("orig.Compare(bumped) = %v, want Dominated", got)
	}
}

func TestConcurrentDetection(t *testing.T) {
	t.Parallel()
	// The paper's scenario (§4.2): f replicated at S1 and S2, partition,
	// each modifies its copy -> conflict at merge.
	base := New().Bump(1)
	f1 := base.Copy().Bump(1) // modified at S1 during partition
	f2 := base.Copy().Bump(2) // modified at S2 during partition
	if !f1.Concurrent(f2) {
		t.Fatalf("f1=%v f2=%v: want concurrent", f1, f2)
	}
	// One-sided modification is NOT a conflict, just staleness.
	if got := f1.Compare(base); got != Dominates {
		t.Fatalf("f1 vs base = %v, want Dominates", got)
	}
}

func TestCompareTable(t *testing.T) {
	t.Parallel()
	mk := func(pairs ...uint64) VV {
		v := New()
		for i := 0; i+1 < len(pairs); i += 2 {
			if pairs[i+1] > 0 {
				v[SiteID(pairs[i])] = pairs[i+1]
			}
		}
		return v
	}
	cases := []struct {
		name string
		a, b VV
		want Ordering
	}{
		{"identical", mk(1, 2, 2, 3), mk(1, 2, 2, 3), Equal},
		{"superset-count", mk(1, 3, 2, 3), mk(1, 2, 2, 3), Dominates},
		{"subset-count", mk(1, 2), mk(1, 5), Dominated},
		{"extra-site", mk(1, 1, 2, 1), mk(1, 1), Dominates},
		{"missing-site", mk(1, 1), mk(1, 1, 3, 4), Dominated},
		{"cross", mk(1, 2, 2, 1), mk(1, 1, 2, 2), Concurrent},
		{"disjoint-sites", mk(1, 1), mk(2, 1), Concurrent},
		{"zero-entries-ignored", VV{1: 1, 2: 0}, mk(1, 1), Equal},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Compare(c.b); got != c.want {
				t.Errorf("%v.Compare(%v) = %v, want %v", c.a, c.b, got, c.want)
			}
		})
	}
}

func TestMergeUpperBound(t *testing.T) {
	t.Parallel()
	a := VV{1: 3, 2: 1}
	b := VV{2: 4, 3: 2}
	m := a.Merge(b)
	want := VV{1: 3, 2: 4, 3: 2}
	if !m.Equal(want) {
		t.Fatalf("Merge = %v, want %v", m, want)
	}
	if !m.DominatesOrEqual(a) || !m.DominatesOrEqual(b) {
		t.Fatalf("merge %v must dominate both inputs %v %v", m, a, b)
	}
	// Inputs unchanged.
	if a[3] != 0 || b[1] != 0 {
		t.Fatalf("Merge mutated inputs: a=%v b=%v", a, b)
	}
}

func TestCopyIndependence(t *testing.T) {
	t.Parallel()
	a := VV{1: 1}
	b := a.Copy()
	b.Bump(1)
	if a[1] != 1 {
		t.Fatalf("Copy not independent: a=%v after bumping copy", a)
	}
}

func TestSitesAndTotalAndString(t *testing.T) {
	t.Parallel()
	v := VV{3: 2, 1: 1, 7: 5}
	sites := v.Sites()
	if len(sites) != 3 || sites[0] != 1 || sites[1] != 3 || sites[2] != 7 {
		t.Fatalf("Sites = %v, want [1 3 7]", sites)
	}
	if v.Total() != 8 {
		t.Fatalf("Total = %d, want 8", v.Total())
	}
	if got, want := v.String(), "{1:1 3:2 7:5}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// randomVV builds a bounded random vector for property tests.
func randomVV(r *rand.Rand) VV {
	v := New()
	n := r.Intn(5)
	for i := 0; i < n; i++ {
		v[SiteID(1+r.Intn(4))] = uint64(r.Intn(4))
	}
	return v
}

func TestPropertyMergeIsLUB(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVV(r), randomVV(r)
		m := a.Merge(b)
		if !m.DominatesOrEqual(a) || !m.DominatesOrEqual(b) {
			return false
		}
		// Least: any vector dominating both must dominate the merge.
		c := a.Merge(b).Merge(randomVV(r))
		return c.DominatesOrEqual(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMergeCommutativeAssociativeIdempotent(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomVV(r), randomVV(r), randomVV(r)
		if !a.Merge(b).Equal(b.Merge(a)) {
			return false
		}
		if !a.Merge(b).Merge(c).Equal(a.Merge(b.Merge(c))) {
			return false
		}
		return a.Merge(a).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompareAntisymmetry(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomVV(r), randomVV(r)
		switch a.Compare(b) {
		case Equal:
			return b.Compare(a) == Equal
		case Dominates:
			return b.Compare(a) == Dominated
		case Dominated:
			return b.Compare(a) == Dominates
		case Concurrent:
			return b.Compare(a) == Concurrent
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDominancePartialOrder(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomVV(r), randomVV(r), randomVV(r)
		// Reflexive.
		if !a.DominatesOrEqual(a) {
			return false
		}
		// Transitive.
		if a.DominatesOrEqual(b) && b.DominatesOrEqual(c) && !a.DominatesOrEqual(c) {
			return false
		}
		// Antisymmetric.
		if a.DominatesOrEqual(b) && b.DominatesOrEqual(a) && !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBumpStrictlyIncreases(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVV(r)
		b := a.Copy().Bump(SiteID(1 + r.Intn(4)))
		return b.Compare(a) == Dominates
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
