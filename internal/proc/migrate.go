package proc

// Process migration (§3.1: "LOCUS permits processes to migrate during
// execution"). The model is restart-style: the origin ships the
// process's credential, environment, and load-module name to the target
// site, which re-resolves the program from its own registry and runs it
// under the SAME network-wide PID. The origin site remains the name
// authority for the PID: it keeps a forwarding record so signals and
// waits addressed to the PID chase the process to its current host, and
// the record is retired when the migrant exits. If the origin site is
// lost, the migrant dies with it — with the name authority gone no
// signal or wait could ever reach that incarnation again.

import (
	"fmt"

	"repro/internal/fs"
)

// migrateReq ships everything needed to re-instantiate the process at
// the target site.
type migrateReq struct {
	PID    PID
	Parent PID
	Cred   fs.Cred
	Env    map[string]string
	Prog   string
	Args   []string
}

type migrateGoneMsg struct {
	PID PID
}

// Migrate moves a running process to target. It must be invoked at the
// process's origin site (the PID's name authority). On success the old
// incarnation receives SIGMIGRATE and winds down as a handoff (its exit
// does not notify the parent); the new incarnation at target owns the
// exit notification.
func (m *Manager) Migrate(p *Process, target SiteID) error {
	if p.pid.Site != m.site {
		return fmt.Errorf("proc: migrate of %v must run at origin site %d", p.pid, p.pid.Site)
	}
	if target == m.site {
		return nil
	}
	p.mu.Lock()
	if p.exited || p.migrated {
		p.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrNoProcess, p.pid)
	}
	if !p.started || p.progName == "" {
		p.mu.Unlock()
		return fmt.Errorf("%w: %v has no re-runnable load module", ErrNotExecutable, p.pid)
	}
	// Mark the handoff before shipping state: if the body exits during
	// the transfer, its exit is treated as part of the handoff rather
	// than a death racing the new incarnation. Rolled back on failure.
	p.migrated = true
	req := &migrateReq{
		PID: p.pid, Parent: p.parent, Cred: *p.cred,
		Env: copyEnv(p.env), Prog: p.progName,
		Args: append([]string(nil), p.args...),
	}
	p.mu.Unlock()
	if _, err := m.call(target, mMigrate, req); err != nil {
		m.rollbackMigrate(p)
		// §5.6: target site failed mid-migration -> error to caller; the
		// process keeps running at the origin.
		return wrapSiteErr(err, target)
	}
	m.mu.Lock()
	delete(m.procs, p.pid.Num)
	m.migratedTo[p.pid.Num] = migrRecord{host: target, parent: p.parent}
	m.mu.Unlock()
	select {
	case p.sigCh <- SIGMIGRATE:
	default:
	}
	return nil
}

// rollbackMigrate undoes the pre-transfer handoff mark after a failed
// Migrate call. If the body exited during the transfer its exit was
// banked as a handoff; replay it as a real local death.
func (m *Manager) rollbackMigrate(p *Process) {
	p.mu.Lock()
	p.migrated = false
	exited := p.exited
	p.mu.Unlock()
	if !exited {
		return
	}
	select {
	case st := <-p.done:
		st.Err = nil
		p.done <- st
		if p.parent != (PID{}) && p.parent.Site != m.site {
			m.cast(p.parent.Site, mChildExit, &childExitMsg{ //locus:vet-allow uncheckedcall parent site failure handled by its own cleanup
				Child: p.pid, Parent: p.parent, Code: st.Code,
			})
			m.mu.Lock()
			delete(m.procs, p.pid.Num)
			m.mu.Unlock()
		}
	default:
	}
}

// handleMigrate re-instantiates the process at the target site under
// its unchanged network-wide PID.
func (m *Manager) handleMigrate(_ SiteID, pl any) (any, error) {
	req := pl.(*migrateReq)
	m.mu.Lock()
	prog, ok := m.registry[req.Prog]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q at site %d (%s)", ErrNoProgram, req.Prog, m.site, m.machineType)
	}
	if _, dup := m.migrants[req.PID]; dup {
		// A retried transfer already landed; at-most-once.
		m.mu.Unlock()
		return nil, nil
	}
	c := req.Cred
	if len(c.HiddenCtx) == 0 {
		c.HiddenCtx = []string{m.machineType}
	}
	np := &Process{
		pid:      req.PID,
		mgr:      m,
		cred:     &c,
		env:      copyEnv(req.Env),
		parent:   req.Parent,
		sigCh:    make(chan Signal, 16),
		done:     make(chan ExitStatus, 1),
		fds:      make(map[int]*FD),
		progName: req.Prog,
	}
	m.migrants[req.PID] = np
	m.mu.Unlock()
	m.start(np, prog, req.Args)
	return nil, nil
}

// handleMigrateGone retires the origin-side forwarding record after the
// migrant exits at its host.
func (m *Manager) handleMigrateGone(_ SiteID, pl any) (any, error) {
	msg := pl.(*migrateGoneMsg)
	m.mu.Lock()
	delete(m.migratedTo, msg.PID.Num)
	m.mu.Unlock()
	return nil, nil
}
