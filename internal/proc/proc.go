// Package proc implements LOCUS transparent remote processes (§3 of
// the paper): process creation on any site with the same semantics as
// local creation (fork, exec, and the combined run call), network-wide
// Unix IPC (signals and named pipes), shared open-file descriptors
// maintained with a token scheme, and the error reflection rules for
// site failures (§3.3, §5.6).
//
// Load modules are simulated: a program is a Go function registered by
// name in each site's program registry (a site only registers the
// programs its "machine type" can execute), and an executable file's
// content is the interpreter line "go:<program-name>". Exec resolves
// the pathname through the filesystem — including hidden directories,
// so /bin/who transparently picks the right load module per machine
// type (§2.4.1) — reads the module, and runs the registered function.
package proc

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// SiteID aliases the shared site identifier.
type SiteID = vclock.SiteID

// Errors returned by process operations.
var (
	// ErrNoProgram: the load module names a program this site's
	// machine type cannot execute.
	ErrNoProgram = errors.New("proc: program not available on this machine type")
	// ErrNoProcess: no such process.
	ErrNoProcess = errors.New("proc: no such process")
	// ErrSiteFailed: the remote site involved in fork/exec/run failed
	// (§3.3: "the new error types primarily concern cases where either
	// the calling or called machine fails").
	ErrSiteFailed = errors.New("proc: remote site failed")
	// ErrNotExecutable: the file is not a valid load module.
	ErrNotExecutable = errors.New("proc: not an executable load module")
)

// Signal numbers (Unix-compatible subset).
type Signal int

// Signals supported across the network (§2.4.2: "Unix named pipes and
// signals are supported across the network").
const (
	SIGHUP  Signal = 1
	SIGINT  Signal = 2
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
	SIGTERM Signal = 15
	// SIGCHILDERR is the LOCUS error signal delivered to a parent when
	// the child's machine fails (§3.3).
	SIGCHILDERR Signal = 33
	// SIGPARENTERR notifies a child that its parent's machine failed.
	SIGPARENTERR Signal = 34
)

// PID is a network-wide process identifier: creation site + local
// number.
type PID struct {
	Site SiteID
	Num  int
}

func (p PID) String() string { return fmt.Sprintf("%d.%d", p.Site, p.Num) }

// ExitStatus is the result of a completed process.
type ExitStatus struct {
	Code int
	// Err carries the failure when the process could not run or its
	// site failed.
	Err error
}

// Program is a simulated load module body. It runs with a process
// context giving access to the filesystem and process services.
type Program func(ctx *Ctx) int

// Ctx is the execution context handed to a running program.
type Ctx struct {
	M    *Manager
	Self *Process
	Args []string
	Env  map[string]string
}

// K returns the filesystem kernel of the executing site.
func (c *Ctx) K() *fs.Kernel { return c.M.kernel }

// Cred returns the process credential.
func (c *Ctx) Cred() *fs.Cred { return c.Self.cred }

// Signals returns the process's signal channel.
func (c *Ctx) Signals() <-chan Signal { return c.Self.sigCh }

// Process is one process table entry.
type Process struct {
	pid    PID
	mgr    *Manager
	cred   *fs.Cred
	env    map[string]string
	parent PID
	// advice is the "structured advice list" controlling where new
	// processes execute (§3.1); empty means local.
	advice []SiteID

	sigCh chan Signal
	done  chan ExitStatus

	mu sync.Mutex
	// errInfo holds additional information about cross-machine errors,
	// "deposited in the parent's process structure, which can be
	// interrogated via a new system call" (§3.3).
	errInfo string
	fds     map[int]*FD
	nextFD  int
	exited  bool
	// waitFor registers channels for exit notifications of remote
	// children.
	waitFor map[PID]chan ExitStatus
	// earlyExits banks exit notifications that arrive before the parent
	// calls Wait, so the status is not lost when the child finishes
	// first.
	earlyExits map[PID]ExitStatus
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// ErrSignals exposes the process's signal channel to non-program
// holders of the process (e.g. a shell object in tests and tools).
func (p *Process) ErrSignals() <-chan Signal { return p.sigCh }

// ErrInfo interrogates the deposited cross-machine error information.
func (p *Process) ErrInfo() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.errInfo
}

// SetAdvice sets the execution-site advice list consulted by Fork,
// Exec and Run ("That information, currently a structured advice list,
// can be set dynamically" — §3.1).
func (p *Process) SetAdvice(sites ...SiteID) {
	p.mu.Lock()
	p.advice = append([]SiteID(nil), sites...)
	p.mu.Unlock()
}

func (p *Process) adviceSite() SiteID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.advice) == 0 {
		return p.mgr.site
	}
	return p.advice[0]
}

// Manager is the process-management half of one site's kernel.
type Manager struct {
	site   SiteID
	node   *netsim.Node
	kernel *fs.Kernel

	// machineType names this site's CPU type; it seeds the hidden
	// directory context so heterogeneous load modules resolve
	// transparently.
	machineType string

	mu       sync.Mutex
	procs    map[int]*Process
	nextPid  int
	registry map[string]Program
	pipes    map[storage.FileID]*pipeState
	fdHomes  map[int]*fdHome
	nextFDID int
	// localFDStates indexes this site's shared-descriptor states for
	// token yanks.
	localFDStates []*fdState
	// devices holds this site's character device drivers.
	devMu   sync.Mutex
	devices map[string]DeviceDriver

	// programs joins every spawned program goroutine (start); a test or
	// teardown path calls DrainPrograms so no program body races past
	// the site's shutdown.
	programs sync.WaitGroup
}

// Protocol method names.
const (
	mRun       = "proc.run"
	mSignal    = "proc.signal"
	mChildExit = "proc.childexit"
	mFDToken   = "proc.fdtoken"
	mFDYank    = "proc.fdyank"
	mPipeRead  = "proc.piperead"
	mPipeWrite = "proc.pipewrite"
	mPipeClose = "proc.pipeclose"
)

// NewManager creates the process manager for a site.
func NewManager(node *netsim.Node, kernel *fs.Kernel, machineType string) *Manager {
	m := &Manager{
		site:        node.ID(),
		node:        node,
		kernel:      kernel,
		machineType: machineType,
		procs:       make(map[int]*Process),
		registry:    make(map[string]Program),
		pipes:       make(map[storage.FileID]*pipeState),
		fdHomes:     make(map[int]*fdHome),
	}
	node.Handle(mRun, m.handleRun)
	node.Handle(mSignal, m.handleSignal)
	node.Handle(mChildExit, m.handleChildExit)
	node.Handle(mFDToken, m.handleFDToken)
	node.Handle(mFDYank, m.handleFDYank)
	node.Handle(mPipeRead, m.handlePipeRead)
	node.Handle(mPipeWrite, m.handlePipeWrite)
	node.Handle(mPipeClose, m.handlePipeClose)
	node.Handle(mDevRead, m.handleDevRead)
	node.Handle(mDevWrite, m.handleDevWrite)
	return m
}

// Site returns the manager's site.
func (m *Manager) Site() SiteID { return m.site }

// Kernel returns the site's filesystem kernel.
func (m *Manager) Kernel() *fs.Kernel { return m.kernel }

// MachineType returns the site's CPU type name.
func (m *Manager) MachineType() string { return m.machineType }

// Register installs a program in this site's registry (the set of load
// modules this machine type can run).
func (m *Manager) Register(name string, prog Program) {
	m.mu.Lock()
	m.registry[name] = prog
	m.mu.Unlock()
}

// InitProcess creates a root process (a login shell) at this site.
func (m *Manager) InitProcess(cred *fs.Cred) *Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.newProcessLocked(cred, nil, PID{})
}

func (m *Manager) newProcessLocked(cred *fs.Cred, env map[string]string, parent PID) *Process {
	m.nextPid++
	c := *cred
	if len(c.HiddenCtx) == 0 {
		c.HiddenCtx = []string{m.machineType}
	}
	p := &Process{
		pid:    PID{Site: m.site, Num: m.nextPid},
		mgr:    m,
		cred:   &c,
		env:    copyEnv(env),
		parent: parent,
		sigCh:  make(chan Signal, 16),
		done:   make(chan ExitStatus, 1),
		fds:    make(map[int]*FD),
	}
	m.procs[p.pid.Num] = p
	return p
}

func copyEnv(env map[string]string) map[string]string {
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// Process looks up a local process by number.
func (m *Manager) Process(num int) (*Process, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[num]
	return p, ok
}

// runReq ships everything needed to initialize the new process's
// environment at the destination (§3.1: "it is necessary to initialize
// the new process' environment correctly").
type runReq struct {
	Parent PID
	Cred   fs.Cred
	Env    map[string]string
	Path   string
	Args   []string
}

type runResp struct {
	PID PID
}

// Run implements the LOCUS run call: the effect of a fork followed by
// an exec, without copying the parent image (§3.1). The execution site
// comes from the process's advice list; run "is transparent as to
// where it executes". It returns the child's network-wide PID.
func (m *Manager) Run(parent *Process, path string, args []string) (PID, error) {
	target := parent.adviceSite()
	req := &runReq{Parent: parent.pid, Cred: *parent.cred, Env: parent.env, Path: path, Args: args}
	if target == m.site {
		r, err := m.handleRun(m.site, req)
		if err != nil {
			return PID{}, err
		}
		return r.(*runResp).PID, nil
	}
	resp, err := m.call(target, mRun, req)
	if err != nil {
		// §5.6: "Remote Fork/Exec, remote site fails -> return error to
		// caller". Application-level failures (no such program, no such
		// file) pass through unchanged.
		if errors.Is(err, netsim.ErrUnreachable) || errors.Is(err, netsim.ErrCircuitClosed) {
			return PID{}, fmt.Errorf("%w: site %d: %v", ErrSiteFailed, target, err)
		}
		return PID{}, err
	}
	return resp.(*runResp).PID, nil
}

// handleRun allocates and starts the process at the destination site.
func (m *Manager) handleRun(_ SiteID, p any) (any, error) {
	req := p.(*runReq)
	prog, args, err := m.loadModule(&req.Cred, req.Path, req.Args)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	child := m.newProcessLocked(&req.Cred, req.Env, req.Parent)
	m.mu.Unlock()
	m.start(child, prog, args)
	return &runResp{PID: child.pid}, nil
}

// loadModule resolves a pathname to an executable load module and the
// registered program it names. Hidden directories make the same
// command name resolve to the right per-machine-type module.
func (m *Manager) loadModule(cred *fs.Cred, path string, args []string) (Program, []string, error) {
	// "To get the proper load modules executed when the user types a
	// command ... requires using the context of which machine the user
	// is executing on" (§2.4.1): hidden directories resolve with the
	// executing site's machine type, whatever context the caller came
	// with.
	execCred := *cred
	execCred.HiddenCtx = append([]string{m.machineType}, cred.HiddenCtx...)
	f, err := m.kernel.Open(&execCred, path, fs.ModeRead)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //locus:vet-allow uncheckedcall read-only
	content, err := f.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	line := strings.TrimSpace(strings.SplitN(string(content), "\n", 2)[0])
	if !strings.HasPrefix(line, "go:") {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotExecutable, path)
	}
	name := strings.TrimPrefix(line, "go:")
	m.mu.Lock()
	prog, ok := m.registry[name]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q at site %d (%s)", ErrNoProgram, name, m.site, m.machineType)
	}
	return prog, append([]string{path}, args...), nil
}

// start runs a program in the process. The goroutine is registered
// with m.programs before it spawns; DrainPrograms joins it after the
// program body and its exit processing have completed.
func (m *Manager) start(p *Process, prog Program, args []string) {
	m.programs.Add(1)
	go func() {
		defer m.programs.Done()
		code := prog(&Ctx{M: m, Self: p, Args: args, Env: p.env})
		m.exit(p, ExitStatus{Code: code})
	}()
}

// DrainPrograms blocks until every spawned program goroutine — the
// program body plus its exit processing — has finished. Tests and
// teardown paths call this so a program cannot keep mutating process
// or kernel state after the site is torn down; without the join,
// drain order under the chaos harness is nondeterministic.
func (m *Manager) DrainPrograms() {
	m.programs.Wait()
}

// Exec replaces the process's program: resolve the load module (through
// hidden directories) and run it to completion in the calling process.
// Unlike Unix this simulation returns the program's exit status rather
// than never returning.
func (m *Manager) Exec(p *Process, path string, args []string) (int, error) {
	prog, argv, err := m.loadModule(p.cred, path, args)
	if err != nil {
		return -1, err
	}
	code := prog(&Ctx{M: m, Self: p, Args: argv, Env: p.env})
	return code, nil
}

// Fork creates a child process at the advice site. The child runs fn —
// standing in for "continue from the fork point with a copy of the
// parent image"; for a remote fork the relevant state (credentials,
// environment, shared descriptors) is shipped, and fn must be a
// registered program name on heterogeneous sites. Local forks may pass
// any closure via RegisterLocal-style helpers.
func (m *Manager) Fork(parent *Process, fn Program) (*Process, error) {
	target := parent.adviceSite()
	if target != m.site {
		return nil, fmt.Errorf("proc: remote fork requires a registered program; use Run (site %d)", target)
	}
	m.mu.Lock()
	child := m.newProcessLocked(parent.cred, parent.env, parent.pid)
	// Unix fork shares open file descriptors with the parent (§3.1);
	// the shared-offset token scheme keeps the file position
	// consistent.
	for n, fd := range parent.fds {
		child.fds[n] = fd.share()
	}
	child.nextFD = parent.nextFD
	m.mu.Unlock()
	m.start(child, fn, nil)
	return child, nil
}

// exit completes a process and notifies its parent.
func (m *Manager) exit(p *Process, st ExitStatus) {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	fds := p.fds
	p.fds = map[int]*FD{}
	p.mu.Unlock()
	for _, fd := range fds {
		fd.Close() //locus:vet-allow uncheckedcall releasing on exit
	}
	// The process stays in the table as a zombie until reaped by Wait.
	p.done <- st
	// Notify the parent's site so Wait unblocks across machines; a
	// remotely-parented process has no local waiter, so reap it here.
	if p.parent != (PID{}) && p.parent.Site != m.site {
		m.cast(p.parent.Site, mChildExit, &childExitMsg{ //locus:vet-allow uncheckedcall parent site failure handled by its own cleanup
			Child: p.pid, Parent: p.parent, Code: st.Code,
		})
		m.mu.Lock()
		delete(m.procs, p.pid.Num)
		m.mu.Unlock()
	}
}

type childExitMsg struct {
	Child  PID
	Parent PID
	Code   int
}

func (m *Manager) handleChildExit(_ SiteID, p any) (any, error) {
	msg := p.(*childExitMsg)
	m.mu.Lock()
	parent := m.procs[msg.Parent.Num]
	var ch chan ExitStatus
	if parent != nil {
		parent.mu.Lock()
		ch = parent.waitFor[msg.Child]
		delete(parent.waitFor, msg.Child)
		if ch == nil {
			// The child beat the parent's Wait; bank the status.
			if parent.earlyExits == nil {
				parent.earlyExits = make(map[PID]ExitStatus)
			}
			parent.earlyExits[msg.Child] = ExitStatus{Code: msg.Code}
		}
		parent.mu.Unlock()
	}
	m.mu.Unlock()
	if ch != nil {
		ch <- ExitStatus{Code: msg.Code}
	}
	return nil, nil
}

// Wait blocks until the identified child exits and returns its status.
// For a local child it waits on the process directly; for a remote
// child it registers for the exit notification message.
func (m *Manager) Wait(parent *Process, child PID) ExitStatus {
	if child.Site == m.site {
		m.mu.Lock()
		cp := m.procs[child.Num]
		m.mu.Unlock()
		if cp == nil {
			return ExitStatus{Code: -1, Err: ErrNoProcess}
		}
		st := <-cp.done
		m.mu.Lock()
		delete(m.procs, child.Num) // reap the zombie
		m.mu.Unlock()
		return st
	}
	ch := make(chan ExitStatus, 1)
	parent.mu.Lock()
	if st, ok := parent.earlyExits[child]; ok {
		delete(parent.earlyExits, child)
		parent.mu.Unlock()
		return st
	}
	if parent.waitFor == nil {
		parent.waitFor = make(map[PID]chan ExitStatus)
	}
	parent.waitFor[child] = ch
	parent.mu.Unlock()
	return <-ch
}

type signalMsg struct {
	Target PID
	Sig    Signal
	Info   string
}

// Signal delivers a signal to any process in the network; "process
// interaction is the same, independent of location" (§1).
func (m *Manager) Signal(target PID, sig Signal) error {
	return m.signalInfo(target, sig, "")
}

func (m *Manager) signalInfo(target PID, sig Signal, info string) error {
	msg := &signalMsg{Target: target, Sig: sig, Info: info}
	if target.Site == m.site {
		_, err := m.handleSignal(m.site, msg)
		return err
	}
	_, err := m.call(target.Site, mSignal, msg)
	return err
}

func (m *Manager) handleSignal(_ SiteID, p any) (any, error) {
	msg := p.(*signalMsg)
	m.mu.Lock()
	proc := m.procs[msg.Target.Num]
	m.mu.Unlock()
	if proc == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoProcess, msg.Target)
	}
	if msg.Info != "" {
		proc.mu.Lock()
		proc.errInfo = msg.Info
		proc.mu.Unlock()
	}
	if msg.Sig == SIGKILL {
		m.exit(proc, ExitStatus{Code: -int(SIGKILL)})
		return nil, nil
	}
	select {
	case proc.sigCh <- msg.Sig:
	default: // queue full: drop, like Unix pending-signal collapse
	}
	return nil, nil
}

// CleanupAfterPartitionChange reflects site failures into process state
// (§3.3, §5.6): parents waiting on children at lost sites receive the
// error signal with information deposited in the process structure;
// children whose parent site was lost are notified likewise.
func (m *Manager) CleanupAfterPartitionChange(newPartition []SiteID) {
	in := make(map[SiteID]bool, len(newPartition))
	for _, s := range newPartition {
		in[s] = true
	}
	m.mu.Lock()
	var procs []*Process
	for _, p := range m.procs {
		procs = append(procs, p)
	}
	m.mu.Unlock()
	for _, p := range procs {
		// Children at lost sites: fail pending waits and signal the
		// parent.
		p.mu.Lock()
		var lostChildren []PID
		for child, ch := range p.waitFor {
			if !in[child.Site] {
				ch <- ExitStatus{Code: -1, Err: fmt.Errorf("%w: child %v", ErrSiteFailed, child)}
				delete(p.waitFor, child)
				lostChildren = append(lostChildren, child)
			}
		}
		parentLost := p.parent != (PID{}) && p.parent.Site != m.site && !in[p.parent.Site]
		p.mu.Unlock()
		for _, child := range lostChildren {
			m.signalInfo(p.pid, SIGCHILDERR, fmt.Sprintf("child %v lost: site failed", child)) //locus:vet-allow uncheckedcall local delivery
		}
		if parentLost {
			m.signalInfo(p.pid, SIGPARENTERR, fmt.Sprintf("parent %v lost: site failed", p.parent)) //locus:vet-allow uncheckedcall local delivery
		}
	}
}
