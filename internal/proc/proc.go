// Package proc implements LOCUS transparent remote processes (§3 of
// the paper): process creation on any site with the same semantics as
// local creation (fork, exec, and the combined run call), network-wide
// Unix IPC (signals and named pipes), shared open-file descriptors
// maintained with a token scheme, and the error reflection rules for
// site failures (§3.3, §5.6).
//
// Load modules are simulated: a program is a Go function registered by
// name in each site's program registry (a site only registers the
// programs its "machine type" can execute), and an executable file's
// content is the interpreter line "go:<program-name>". Exec resolves
// the pathname through the filesystem — including hidden directories,
// so /bin/who transparently picks the right load module per machine
// type (§2.4.1) — reads the module, and runs the registered function.
package proc

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// SiteID aliases the shared site identifier.
type SiteID = vclock.SiteID

// Errors returned by process operations.
var (
	// ErrNoProgram: the load module names a program this site's
	// machine type cannot execute.
	ErrNoProgram = errors.New("proc: program not available on this machine type")
	// ErrNoProcess: no such process.
	ErrNoProcess = errors.New("proc: no such process")
	// ErrSiteFailed: the remote site involved in fork/exec/run failed
	// (§3.3: "the new error types primarily concern cases where either
	// the calling or called machine fails").
	ErrSiteFailed = errors.New("proc: remote site failed")
	// ErrNotExecutable: the file is not a valid load module.
	ErrNotExecutable = errors.New("proc: not an executable load module")
	// ErrPipeBroken: write to a pipe whose readers are all gone (closed
	// or lost with their site) — the network EPIPE of §2.4.2.
	ErrPipeBroken = errors.New("proc: pipe broken (no readers)")
	// ErrMigrated: this incarnation of the process handed off to another
	// site; the caller should retry against the new location. Surfaced
	// only through ExitStatus during the migration handoff.
	ErrMigrated = errors.New("proc: process migrated")
)

// wrapSiteErr converts a transport-level failure (unreachable,
// circuit closed, or a retry budget exhausted by message loss) into the
// §5.6 ErrSiteFailed sentinel: every "remote site fails -> return error
// to caller" row of the failure-action table reports through it.
// Application-level errors pass through unchanged.
func wrapSiteErr(err error, site SiteID) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, netsim.ErrUnreachable) || errors.Is(err, netsim.ErrCircuitClosed) ||
		errors.Is(err, netsim.ErrTimeout) || errors.Is(err, netsim.ErrSiteDown) ||
		errors.Is(err, netsim.ErrNoHandler) {
		// ErrNoHandler: the site answers but its proc subsystem is gone —
		// from the caller's §5.6 viewpoint that site has failed.
		return fmt.Errorf("%w: site %d: %v", ErrSiteFailed, site, err)
	}
	return err
}

// wrapFsSiteErr converts a filesystem error that was itself caused by a
// site failure — the fs layer's own remote exchange failing mid-call, or
// every storage/synchronization site for the file being unreachable —
// into the §5.6 ErrSiteFailed sentinel. A local run call whose load
// module lives on a crashed site fails exactly like a remote run to that
// site. Genuine application errors (no such file, not executable, no
// such program) pass through unchanged.
func wrapFsSiteErr(err error) error {
	if err == nil || errors.Is(err, ErrSiteFailed) {
		return err
	}
	if isSiteFailure(err) || errors.Is(err, fs.ErrNoCSS) || errors.Is(err, fs.ErrNoStorageSite) {
		return fmt.Errorf("%w: %v", ErrSiteFailed, err)
	}
	return err
}

// Signal numbers (Unix-compatible subset).
type Signal int

// Signals supported across the network (§2.4.2: "Unix named pipes and
// signals are supported across the network").
const (
	SIGHUP  Signal = 1
	SIGINT  Signal = 2
	SIGKILL Signal = 9
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
	SIGTERM Signal = 15
	// SIGCHILDERR is the LOCUS error signal delivered to a parent when
	// the child's machine fails (§3.3).
	SIGCHILDERR Signal = 33
	// SIGPARENTERR notifies a child that its parent's machine failed.
	SIGPARENTERR Signal = 34
	// SIGMIGRATE asks the old incarnation of a migrated process to wind
	// down; cooperative program bodies return when they receive it.
	SIGMIGRATE Signal = 35
)

// PID is a network-wide process identifier: creation site + local
// number.
type PID struct {
	Site SiteID
	Num  int
}

func (p PID) String() string { return fmt.Sprintf("%d.%d", p.Site, p.Num) }

// pidLess orders PIDs by (site, number); cleanup and teardown loops
// iterate in this order so their wire effects replay deterministically.
func pidLess(a, b PID) bool {
	if a.Site != b.Site {
		return a.Site < b.Site
	}
	return a.Num < b.Num
}

// ExitStatus is the result of a completed process.
type ExitStatus struct {
	Code int
	// Err carries the failure when the process could not run or its
	// site failed.
	Err error
}

// Program is a simulated load module body. It runs with a process
// context giving access to the filesystem and process services.
type Program func(ctx *Ctx) int

// Ctx is the execution context handed to a running program.
type Ctx struct {
	M    *Manager
	Self *Process
	Args []string
	Env  map[string]string
}

// K returns the filesystem kernel of the executing site.
func (c *Ctx) K() *fs.Kernel { return c.M.kernel }

// Cred returns the process credential.
func (c *Ctx) Cred() *fs.Cred { return c.Self.cred }

// Signals returns the process's signal channel.
func (c *Ctx) Signals() <-chan Signal { return c.Self.sigCh }

// Process is one process table entry.
type Process struct {
	pid    PID
	mgr    *Manager
	cred   *fs.Cred
	env    map[string]string
	parent PID
	// advice is the "structured advice list" controlling where new
	// processes execute (§3.1); empty means local.
	advice []SiteID

	sigCh chan Signal
	done  chan ExitStatus

	mu sync.Mutex
	// errInfo holds additional information about cross-machine errors,
	// "deposited in the parent's process structure, which can be
	// interrogated via a new system call" (§3.3).
	errInfo string
	fds     map[int]*FD
	nextFD  int
	exited  bool
	// prog/progName/args record the running load module so the process
	// can be re-instantiated at another site by Migrate; started marks a
	// process whose program body was actually spawned (shells are not).
	prog     Program
	progName string
	args     []string
	started  bool
	// migrated marks the old incarnation after a migration handoff: its
	// exit is a handoff, not a death, and must not notify the parent.
	migrated bool
	// waitFor registers channels for exit notifications of remote
	// children.
	waitFor map[PID]chan ExitStatus
	// earlyExits banks exit notifications that arrive before the parent
	// calls Wait, so the status is not lost when the child finishes
	// first.
	earlyExits map[PID]ExitStatus
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// ErrSignals exposes the process's signal channel to non-program
// holders of the process (e.g. a shell object in tests and tools).
func (p *Process) ErrSignals() <-chan Signal { return p.sigCh }

// ErrInfo interrogates the deposited cross-machine error information.
func (p *Process) ErrInfo() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.errInfo
}

// SetAdvice sets the execution-site advice list consulted by Fork,
// Exec and Run ("That information, currently a structured advice list,
// can be set dynamically" — §3.1).
func (p *Process) SetAdvice(sites ...SiteID) {
	p.mu.Lock()
	p.advice = append([]SiteID(nil), sites...)
	p.mu.Unlock()
}

func (p *Process) adviceSite() SiteID {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.advice) == 0 {
		return p.mgr.site
	}
	return p.advice[0]
}

// Manager is the process-management half of one site's kernel.
type Manager struct {
	site   SiteID
	node   *netsim.Node
	kernel *fs.Kernel

	// machineType names this site's CPU type; it seeds the hidden
	// directory context so heterogeneous load modules resolve
	// transparently.
	machineType string

	mu       sync.Mutex
	procs    map[int]*Process
	nextPid  int
	registry map[string]Program
	pipes    map[storage.FileID]*pipeState
	fdHomes  map[int]*fdHome
	nextFDID int
	// migratedTo is the origin-site forwarding table for migrated
	// processes: local process number -> current host (plus the parent,
	// so losing the host can still notify it). The origin site remains
	// the network-wide name authority for the PID (§3.1).
	migratedTo map[int]migrRecord
	// migrants are foreign processes hosted here after migration, keyed
	// by their unchanged network-wide PID.
	migrants map[PID]*Process
	// localFDStates indexes this site's shared-descriptor states for
	// token yanks.
	localFDStates []*fdState
	// devices holds this site's character device drivers.
	devMu   sync.Mutex
	devices map[string]DeviceDriver

	// programs joins every spawned program goroutine (start); a test or
	// teardown path calls DrainPrograms so no program body races past
	// the site's shutdown.
	programs sync.WaitGroup

	// sigMu guards sigQueue: cross-partition signals held at the sender
	// for delivery after merge (§2.4.2: signals are supported across the
	// network; a partition only defers them).
	sigMu    sync.Mutex
	sigQueue []*signalMsg
}

// migrRecord is one origin-side forwarding entry for a migrated
// process.
type migrRecord struct {
	host   SiteID
	parent PID
}

// Protocol method names.
const (
	mRun         = "proc.run"
	mSignal      = "proc.signal"
	mChildExit   = "proc.childexit"
	mFDToken     = "proc.fdtoken"
	mFDYank      = "proc.fdyank"
	mPipeOpen    = "proc.pipeopen"
	mPipeRead    = "proc.piperead"
	mPipeWrite   = "proc.pipewrite"
	mPipeClose   = "proc.pipeclose"
	mMigrate     = "proc.migrate"
	mMigrateGone = "proc.migrategone"
)

// NewManager creates the process manager for a site.
func NewManager(node *netsim.Node, kernel *fs.Kernel, machineType string) *Manager {
	m := &Manager{
		site:        node.ID(),
		node:        node,
		kernel:      kernel,
		machineType: machineType,
		procs:       make(map[int]*Process),
		registry:    make(map[string]Program),
		pipes:       make(map[storage.FileID]*pipeState),
		fdHomes:     make(map[int]*fdHome),
		migratedTo:  make(map[int]migrRecord),
		migrants:    make(map[PID]*Process),
	}
	node.Handle(mRun, m.handleRun)
	node.Handle(mSignal, m.handleSignal)
	node.Handle(mChildExit, m.handleChildExit)
	node.Handle(mFDToken, m.handleFDToken)
	node.Handle(mFDYank, m.handleFDYank)
	node.Handle(mPipeOpen, m.handlePipeOpen)
	node.Handle(mPipeRead, m.handlePipeRead)
	node.Handle(mPipeWrite, m.handlePipeWrite)
	node.Handle(mPipeClose, m.handlePipeClose)
	node.Handle(mMigrate, m.handleMigrate)
	node.Handle(mMigrateGone, m.handleMigrateGone)
	node.Handle(mDevRead, m.handleDevRead)
	node.Handle(mDevWrite, m.handleDevWrite)
	// A crash loses every volatile process-table structure (§5.6):
	// processes, pipe buffers, descriptor tokens, queued signals.
	node.OnCrash(m.crashLocal)
	return m
}

// Site returns the manager's site.
func (m *Manager) Site() SiteID { return m.site }

// Kernel returns the site's filesystem kernel.
func (m *Manager) Kernel() *fs.Kernel { return m.kernel }

// MachineType returns the site's CPU type name.
func (m *Manager) MachineType() string { return m.machineType }

// Register installs a program in this site's registry (the set of load
// modules this machine type can run).
func (m *Manager) Register(name string, prog Program) {
	m.mu.Lock()
	m.registry[name] = prog
	m.mu.Unlock()
}

// InitProcess creates a root process (a login shell) at this site.
func (m *Manager) InitProcess(cred *fs.Cred) *Process {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.newProcessLocked(cred, nil, PID{})
}

func (m *Manager) newProcessLocked(cred *fs.Cred, env map[string]string, parent PID) *Process {
	m.nextPid++
	c := *cred
	if len(c.HiddenCtx) == 0 {
		c.HiddenCtx = []string{m.machineType}
	}
	p := &Process{
		pid:    PID{Site: m.site, Num: m.nextPid},
		mgr:    m,
		cred:   &c,
		env:    copyEnv(env),
		parent: parent,
		sigCh:  make(chan Signal, 16),
		done:   make(chan ExitStatus, 1),
		fds:    make(map[int]*FD),
	}
	m.procs[p.pid.Num] = p
	return p
}

func copyEnv(env map[string]string) map[string]string {
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// Process looks up a local process by number.
func (m *Manager) Process(num int) (*Process, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.procs[num]
	return p, ok
}

// runReq ships everything needed to initialize the new process's
// environment at the destination (§3.1: "it is necessary to initialize
// the new process' environment correctly").
type runReq struct {
	Parent PID
	Cred   fs.Cred
	Env    map[string]string
	Path   string
	Args   []string
}

type runResp struct {
	PID PID
}

// Run implements the LOCUS run call: the effect of a fork followed by
// an exec, without copying the parent image (§3.1). The execution site
// comes from the process's advice list; run "is transparent as to
// where it executes". It returns the child's network-wide PID.
func (m *Manager) Run(parent *Process, path string, args []string) (PID, error) {
	target := parent.adviceSite()
	req := &runReq{Parent: parent.pid, Cred: *parent.cred, Env: parent.env, Path: path, Args: args}
	if target == m.site {
		r, err := m.handleRun(m.site, req)
		if err != nil {
			// Even a local run can fail because a site died: the load
			// module's storage site or CSS may be gone (wrapFsSiteErr).
			return PID{}, wrapFsSiteErr(err)
		}
		return r.(*runResp).PID, nil
	}
	resp, err := m.call(target, mRun, req)
	if err != nil {
		// §5.6: "Remote Fork/Exec, remote site fails -> return error to
		// caller". wrapSiteErr also covers the retry budget exhausted by
		// message loss (ErrTimeout), which previously leaked the raw
		// transport error and lost the sentinel. Application-level
		// failures (no such program, no such file) pass through
		// unchanged — unless they are themselves a site failure the
		// destination hit while resolving the load module.
		return PID{}, wrapFsSiteErr(wrapSiteErr(err, target))
	}
	return resp.(*runResp).PID, nil
}

// handleRun allocates and starts the process at the destination site.
func (m *Manager) handleRun(_ SiteID, p any) (any, error) {
	req := p.(*runReq)
	prog, name, args, err := m.loadModule(&req.Cred, req.Path, req.Args)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	child := m.newProcessLocked(&req.Cred, req.Env, req.Parent)
	m.mu.Unlock()
	child.mu.Lock()
	child.progName = name
	child.mu.Unlock()
	m.start(child, prog, args)
	return &runResp{PID: child.pid}, nil
}

// loadModule resolves a pathname to an executable load module and the
// registered program it names (returned by name so migration can
// re-resolve it at the target site). Hidden directories make the same
// command name resolve to the right per-machine-type module.
func (m *Manager) loadModule(cred *fs.Cred, path string, args []string) (Program, string, []string, error) {
	// "To get the proper load modules executed when the user types a
	// command ... requires using the context of which machine the user
	// is executing on" (§2.4.1): hidden directories resolve with the
	// executing site's machine type, whatever context the caller came
	// with.
	execCred := *cred
	execCred.HiddenCtx = append([]string{m.machineType}, cred.HiddenCtx...)
	f, err := m.kernel.Open(&execCred, path, fs.ModeRead)
	if err != nil {
		return nil, "", nil, err
	}
	defer f.Close() //locus:vet-allow uncheckedcall read-only
	content, err := f.ReadAll()
	if err != nil {
		return nil, "", nil, err
	}
	line := strings.TrimSpace(strings.SplitN(string(content), "\n", 2)[0])
	if !strings.HasPrefix(line, "go:") {
		return nil, "", nil, fmt.Errorf("%w: %s", ErrNotExecutable, path)
	}
	name := strings.TrimPrefix(line, "go:")
	m.mu.Lock()
	prog, ok := m.registry[name]
	m.mu.Unlock()
	if !ok {
		return nil, "", nil, fmt.Errorf("%w: %q at site %d (%s)", ErrNoProgram, name, m.site, m.machineType)
	}
	return prog, name, append([]string{path}, args...), nil
}

// start runs a program in the process. The goroutine is registered
// with m.programs before it spawns; DrainPrograms joins it after the
// program body and its exit processing have completed.
func (m *Manager) start(p *Process, prog Program, args []string) {
	p.mu.Lock()
	p.prog = prog
	p.args = append([]string(nil), args...)
	p.started = true
	p.mu.Unlock()
	m.programs.Add(1)
	go func() {
		defer m.programs.Done()
		code := prog(&Ctx{M: m, Self: p, Args: args, Env: p.env})
		m.exit(p, ExitStatus{Code: code})
	}()
}

// DrainPrograms blocks until every spawned program goroutine — the
// program body plus its exit processing — has finished. Tests and
// teardown paths call this so a program cannot keep mutating process
// or kernel state after the site is torn down; without the join,
// drain order under the chaos harness is nondeterministic.
func (m *Manager) DrainPrograms() {
	m.programs.Wait()
}

// Exec replaces the process's program: resolve the load module (through
// hidden directories) and run it to completion in the calling process.
// Unlike Unix this simulation returns the program's exit status rather
// than never returning.
func (m *Manager) Exec(p *Process, path string, args []string) (int, error) {
	prog, _, argv, err := m.loadModule(p.cred, path, args)
	if err != nil {
		return -1, wrapFsSiteErr(err)
	}
	code := prog(&Ctx{M: m, Self: p, Args: argv, Env: p.env})
	return code, nil
}

// Fork creates a child process at the advice site. The child runs fn —
// standing in for "continue from the fork point with a copy of the
// parent image"; for a remote fork the relevant state (credentials,
// environment, shared descriptors) is shipped, and fn must be a
// registered program name on heterogeneous sites. Local forks may pass
// any closure via RegisterLocal-style helpers.
func (m *Manager) Fork(parent *Process, fn Program) (*Process, error) {
	target := parent.adviceSite()
	if target != m.site {
		return nil, fmt.Errorf("proc: remote fork requires a registered program; use Run (site %d)", target)
	}
	m.mu.Lock()
	child := m.newProcessLocked(parent.cred, parent.env, parent.pid)
	// Unix fork shares open file descriptors with the parent (§3.1);
	// the shared-offset token scheme keeps the file position
	// consistent.
	for n, fd := range parent.fds {
		child.fds[n] = fd.share()
	}
	child.nextFD = parent.nextFD
	m.mu.Unlock()
	m.start(child, fn, nil)
	return child, nil
}

// exit completes a process and notifies its parent.
func (m *Manager) exit(p *Process, st ExitStatus) {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	migrated := p.migrated
	fds := p.fds
	p.fds = map[int]*FD{}
	p.mu.Unlock()
	// Close in descriptor order: a close can cross the network (token
	// yank, remote storage), and wire-send order is part of the
	// deterministic schedule seed replay pins.
	nums := make([]int, 0, len(fds))
	for num := range fds {
		nums = append(nums, num)
	}
	sort.Ints(nums)
	for _, num := range nums {
		fds[num].Close() // error unchecked by design: releasing on exit
	}
	if migrated {
		// Handoff, not death: the new incarnation owns the parent
		// notification. Wait's local path sees ErrMigrated and chases the
		// forwarding record instead of reaping.
		p.done <- ExitStatus{Code: st.Code, Err: ErrMigrated}
		return
	}
	// The process stays in the table as a zombie until reaped by Wait.
	p.done <- st
	if p.pid.Site != m.site {
		// Migrant hosted here: retire it from the migrant table, tell the
		// origin to drop its forwarding record, and notify the parent
		// directly (the origin only forwards while the process lives).
		m.mu.Lock()
		delete(m.migrants, p.pid)
		m.mu.Unlock()
		if p.parent != (PID{}) {
			msg := &childExitMsg{
				Child: p.pid, Parent: p.parent, Code: st.Code,
				SiteFailed: st.Err != nil && errors.Is(st.Err, ErrSiteFailed),
			}
			if p.parent.Site == m.site {
				m.handleChildExit(m.site, msg) // error unchecked by design: local delivery
			} else {
				m.cast(p.parent.Site, mChildExit, msg) //locus:vet-allow uncheckedcall parent site failure handled by its own cleanup
			}
		}
		m.cast(p.pid.Site, mMigrateGone, &migrateGoneMsg{PID: p.pid}) //locus:vet-allow uncheckedcall origin failure handled by partition cleanup
		return
	}
	// Notify the parent's site so Wait unblocks across machines; a
	// remotely-parented process has no local waiter, so reap it here.
	if p.parent != (PID{}) && p.parent.Site != m.site {
		m.cast(p.parent.Site, mChildExit, &childExitMsg{ //locus:vet-allow uncheckedcall parent site failure handled by its own cleanup
			Child: p.pid, Parent: p.parent, Code: st.Code,
			SiteFailed: st.Err != nil && errors.Is(st.Err, ErrSiteFailed),
		})
		m.mu.Lock()
		delete(m.procs, p.pid.Num)
		m.mu.Unlock()
	}
}

type childExitMsg struct {
	Child  PID
	Parent PID
	Code   int
	// SiteFailed marks an exit forced by a site failure rather than a
	// normal return; the parent's ExitStatus carries ErrSiteFailed (§5.6).
	SiteFailed bool
}

func (m *Manager) handleChildExit(_ SiteID, p any) (any, error) {
	msg := p.(*childExitMsg)
	st := ExitStatus{Code: msg.Code}
	if msg.SiteFailed {
		st.Err = fmt.Errorf("%w: child %v lost with its executing site", ErrSiteFailed, msg.Child)
	}
	m.mu.Lock()
	var parent *Process
	if msg.Parent.Site == m.site {
		parent = m.procs[msg.Parent.Num]
		if parent == nil {
			if rec, ok := m.migratedTo[msg.Parent.Num]; ok {
				// The parent itself migrated; chase it.
				m.mu.Unlock()
				m.cast(rec.host, mChildExit, msg) //locus:vet-allow uncheckedcall host failure handled by partition cleanup
				return nil, nil
			}
		}
	} else {
		parent = m.migrants[msg.Parent]
	}
	var ch chan ExitStatus
	if parent != nil {
		parent.mu.Lock()
		ch = parent.waitFor[msg.Child]
		delete(parent.waitFor, msg.Child)
		if ch == nil {
			// The child beat the parent's Wait; bank the status.
			if parent.earlyExits == nil {
				parent.earlyExits = make(map[PID]ExitStatus)
			}
			parent.earlyExits[msg.Child] = st
		}
		parent.mu.Unlock()
	}
	m.mu.Unlock()
	if ch != nil {
		ch <- st
	}
	return nil, nil
}

// Wait blocks until the identified child exits and returns its status.
// For a local child it waits on the process directly; for a remote or
// migrated child it registers for the exit notification message.
func (m *Manager) Wait(parent *Process, child PID) ExitStatus {
	if child.Site == m.site {
		m.mu.Lock()
		cp := m.procs[child.Num]
		_, forwarded := m.migratedTo[child.Num]
		m.mu.Unlock()
		if cp != nil {
			st := <-cp.done
			if errors.Is(st.Err, ErrMigrated) {
				// Handoff: the live incarnation runs elsewhere now; wait
				// on it through the exit-notification machinery.
				return m.waitRemote(parent, child)
			}
			m.mu.Lock()
			delete(m.procs, child.Num) // reap the zombie
			m.mu.Unlock()
			return st
		}
		if !forwarded {
			return ExitStatus{Code: -1, Err: ErrNoProcess}
		}
	}
	return m.waitRemote(parent, child)
}

// waitRemote registers for the child's exit notification, then rechecks
// reachability. The register-then-recheck order closes the race with
// CleanupAfterPartitionChange: if the child's site died before we
// registered, the cleanup scan that fails pending waits has already
// run, so without the recheck this wait would hang forever (§5.6:
// "return error to caller", never hang).
func (m *Manager) waitRemote(parent *Process, child PID) ExitStatus {
	ch := make(chan ExitStatus, 1)
	parent.mu.Lock()
	if parent.exited {
		// The caller's own process is dead — its site crashed beneath it
		// (crashLocal marks every resident process exited and drains the
		// waits registered so far). Registering now would strand this
		// wait forever: nothing sweeps a table added to a swept-away
		// process.
		parent.mu.Unlock()
		return ExitStatus{Code: -1, Err: fmt.Errorf("%w: waiting process %v died with its site", ErrSiteFailed, parent.pid)}
	}
	if st, ok := parent.earlyExits[child]; ok {
		delete(parent.earlyExits, child)
		parent.mu.Unlock()
		return st
	}
	if parent.waitFor == nil {
		parent.waitFor = make(map[PID]chan ExitStatus)
	}
	parent.waitFor[child] = ch
	parent.mu.Unlock()
	host := child.Site
	m.mu.Lock()
	if rec, ok := m.migratedTo[child.Num]; ok && child.Site == m.site {
		host = rec.host
	}
	m.mu.Unlock()
	if host != m.site && !m.node.Network().Connected(m.site, host) {
		parent.mu.Lock()
		if parent.waitFor[child] == ch {
			delete(parent.waitFor, child)
			parent.mu.Unlock()
			return ExitStatus{Code: -1, Err: fmt.Errorf("%w: child %v at site %d unreachable", ErrSiteFailed, child, host)}
		}
		// Cleanup or the exit notification claimed the channel between
		// our registration and the recheck; honor its answer.
		parent.mu.Unlock()
	}
	return <-ch
}

type signalMsg struct {
	Target PID
	Sig    Signal
	Info   string
}

// Signal delivers a signal to any process in the network; "process
// interaction is the same, independent of location" (§1).
func (m *Manager) Signal(target PID, sig Signal) error {
	return m.signalInfo(target, sig, "")
}

// isSiteFailure reports whether err is (or wraps) any of the
// site-failure sentinels — transport-level or the proc-layer
// ErrSiteFailed, whose wrapping flattens the transport chain.
func isSiteFailure(err error) bool {
	return errors.Is(err, ErrSiteFailed) || errors.Is(err, netsim.ErrUnreachable) ||
		errors.Is(err, netsim.ErrCircuitClosed) || errors.Is(err, netsim.ErrTimeout) ||
		errors.Is(err, netsim.ErrSiteDown) || errors.Is(err, netsim.ErrNoHandler)
}

func (m *Manager) signalInfo(target PID, sig Signal, info string) error {
	msg := &signalMsg{Target: target, Sig: sig, Info: info}
	var err error
	if target.Site == m.site {
		_, err = m.handleSignal(m.site, msg)
	} else {
		_, err = m.call(target.Site, mSignal, msg)
	}
	if err != nil && isSiteFailure(err) {
		// §2.4.2: signals are supported across the network; a partition
		// only defers them. Queue at the sender and replay after merge.
		m.sigMu.Lock()
		m.sigQueue = append(m.sigQueue, msg)
		m.sigMu.Unlock()
		m.node.Network().Meter().AddSignalsQueued()
		return fmt.Errorf("%w: signal %d to %v queued for delivery after merge: %v", ErrSiteFailed, sig, target, err)
	}
	// Anything the queue predicate let through is either an application
	// error (no such process) or a transport sentinel a future predicate
	// misses; the funnel keeps the §5.6 classification airtight either
	// way (sentinelerr pins this).
	return wrapSiteErr(err, target.Site)
}

// QueuedSignals reports the number of cross-partition signals queued at
// this site awaiting replay after merge.
func (m *Manager) QueuedSignals() int {
	m.sigMu.Lock()
	defer m.sigMu.Unlock()
	return len(m.sigQueue)
}

func (m *Manager) handleSignal(_ SiteID, p any) (any, error) {
	msg := p.(*signalMsg)
	m.mu.Lock()
	var proc *Process
	if msg.Target.Site == m.site {
		proc = m.procs[msg.Target.Num]
		if proc == nil {
			if rec, ok := m.migratedTo[msg.Target.Num]; ok {
				// The origin stays the network-wide name authority for the
				// PID (§3.1); forward to the current host.
				m.mu.Unlock()
				_, err := m.call(rec.host, mSignal, msg)
				return nil, wrapSiteErr(err, rec.host)
			}
		}
	} else {
		proc = m.migrants[msg.Target]
	}
	m.mu.Unlock()
	if proc == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoProcess, msg.Target)
	}
	if msg.Info != "" {
		proc.mu.Lock()
		proc.errInfo = msg.Info
		proc.mu.Unlock()
	}
	if msg.Sig == SIGKILL {
		// Nudge the signal channel first so a cooperative program body
		// blocked on <-ctx.Signals() returns and DrainPrograms can join
		// it; exit() is idempotent when the body then exits on its own.
		select {
		case proc.sigCh <- SIGKILL:
		default:
		}
		m.exit(proc, ExitStatus{Code: -int(SIGKILL)})
		return nil, nil
	}
	select {
	case proc.sigCh <- msg.Sig:
	default: // queue full: drop, like Unix pending-signal collapse
	}
	return nil, nil
}

// CleanupAfterPartitionChange reflects site failures into process state
// (§3.3, §5.6): parents waiting on children at lost sites receive the
// error signal with information deposited in the process structure;
// children whose parent site was lost are notified likewise; migrants
// whose origin (name authority) was lost die; forwarding records whose
// host was lost synthesize the child's death to the parent; pipe
// endpoints at lost sites tear down so readers see EOF and writers see
// an error instead of hanging; and queued cross-partition signals are
// replayed to every site now back in the partition.
func (m *Manager) CleanupAfterPartitionChange(newPartition []SiteID) {
	in := make(map[SiteID]bool, len(newPartition))
	for _, s := range newPartition {
		in[s] = true
	}
	meter := m.node.Network().Meter()
	// Every collection below is sorted before it drives signals, exits,
	// or pipe teardown: those actions send on the wire and wake blocked
	// goroutines, and their order is part of the deterministic schedule
	// a pinned chaos seed replays (maporder pins this).
	m.mu.Lock()
	var procs []*Process
	for _, p := range m.procs {
		procs = append(procs, p)
	}
	for _, p := range m.migrants {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return pidLess(procs[i].pid, procs[j].pid) })
	var doomedMigrants []*Process
	for pid, p := range m.migrants {
		if !in[pid.Site] {
			doomedMigrants = append(doomedMigrants, p)
		}
	}
	sort.Slice(doomedMigrants, func(i, j int) bool { return pidLess(doomedMigrants[i].pid, doomedMigrants[j].pid) })
	type lostFwd struct {
		num int
		rec migrRecord
	}
	var lostFwds []lostFwd
	for num, rec := range m.migratedTo {
		if !in[rec.host] {
			lostFwds = append(lostFwds, lostFwd{num, rec})
			delete(m.migratedTo, num)
		}
	}
	sort.Slice(lostFwds, func(i, j int) bool { return lostFwds[i].num < lostFwds[j].num })
	pipeIDs := make([]storage.FileID, 0, len(m.pipes))
	for id := range m.pipes {
		pipeIDs = append(pipeIDs, id)
	}
	sort.Slice(pipeIDs, func(i, j int) bool {
		if pipeIDs[i].FG != pipeIDs[j].FG {
			return pipeIDs[i].FG < pipeIDs[j].FG
		}
		return pipeIDs[i].Inode < pipeIDs[j].Inode
	})
	pipes := make([]*pipeState, 0, len(pipeIDs))
	for _, id := range pipeIDs {
		pipes = append(pipes, m.pipes[id])
	}
	m.mu.Unlock()
	for _, p := range procs {
		// Children at lost sites: fail pending waits and signal the
		// parent.
		p.mu.Lock()
		var lostChildren []PID
		for child := range p.waitFor {
			if !in[child.Site] {
				lostChildren = append(lostChildren, child)
			}
		}
		sort.Slice(lostChildren, func(i, j int) bool { return pidLess(lostChildren[i], lostChildren[j]) })
		for _, child := range lostChildren {
			p.waitFor[child] <- ExitStatus{Code: -1, Err: fmt.Errorf("%w: child %v", ErrSiteFailed, child)}
			delete(p.waitFor, child)
		}
		parentLost := p.parent != (PID{}) && p.parent.Site != m.site && !in[p.parent.Site]
		p.mu.Unlock()
		for _, child := range lostChildren {
			m.signalInfo(p.pid, SIGCHILDERR, fmt.Sprintf("child %v lost: site failed", child)) // error unchecked by design: local delivery
			meter.AddOrphanNotices(1)
		}
		if parentLost {
			m.signalInfo(p.pid, SIGPARENTERR, fmt.Sprintf("parent %v lost: site failed", p.parent)) // error unchecked by design: local delivery
			meter.AddOrphanNotices(1)
		}
	}
	for _, p := range doomedMigrants {
		// Home-site failure kills the migrant: with the name authority
		// gone, no signal or wait can ever reach this incarnation again.
		select {
		case p.sigCh <- SIGKILL:
		default:
		}
		m.exit(p, ExitStatus{Code: -1, Err: fmt.Errorf("%w: origin site %d lost", ErrSiteFailed, p.pid.Site)})
		meter.AddOrphanNotices(1)
	}
	for _, lf := range lostFwds {
		// The migrated process died with its host; tell the parent as if
		// an exit notification with the site-failure flag had arrived.
		msg := &childExitMsg{
			Child: PID{Site: m.site, Num: lf.num}, Parent: lf.rec.parent,
			Code: -1, SiteFailed: true,
		}
		if lf.rec.parent != (PID{}) {
			if lf.rec.parent.Site == m.site {
				m.handleChildExit(m.site, msg) // error unchecked by design: local delivery
				m.signalInfo(lf.rec.parent, SIGCHILDERR, fmt.Sprintf("migrated child %d.%d lost: host site %d failed", m.site, lf.num, lf.rec.host)) // error unchecked by design: local delivery
			} else if in[lf.rec.parent.Site] {
				m.cast(lf.rec.parent.Site, mChildExit, msg) //locus:vet-allow uncheckedcall parent site failure handled by its own cleanup
			}
		}
		meter.AddOrphanNotices(1)
	}
	torn := 0
	for _, ps := range pipes {
		torn += ps.dropSites(in, m.site)
	}
	if torn > 0 {
		meter.AddPipeTeardowns(torn)
	}
	m.replaySignals(in, meter)
}

// replaySignals redelivers queued cross-partition signals whose target
// site is back in the partition. A definitive ErrNoProcess answer means
// the target is dead — the signal expires; a fresh site failure keeps
// it queued for the next merge.
func (m *Manager) replaySignals(in map[SiteID]bool, meter *netsim.Stats) {
	m.sigMu.Lock()
	pend := m.sigQueue
	m.sigQueue = nil
	m.sigMu.Unlock()
	var keep []*signalMsg
	for _, msg := range pend {
		if !in[msg.Target.Site] {
			keep = append(keep, msg)
			continue
		}
		var err error
		if msg.Target.Site == m.site {
			_, err = m.handleSignal(m.site, msg)
		} else {
			_, err = m.call(msg.Target.Site, mSignal, msg)
		}
		switch {
		case err == nil:
			meter.AddSignalsReplayed(1)
		case isSiteFailure(err):
			keep = append(keep, msg)
		default:
			// ErrNoProcess or another definitive answer: the target is
			// dead, the signal dies with it.
			meter.AddSignalsExpired(1)
		}
	}
	m.sigMu.Lock()
	m.sigQueue = append(m.sigQueue, keep...)
	m.sigMu.Unlock()
}

// crashLocal discards every volatile process-table structure when this
// site crashes (§5.6): processes die, pipe buffers vanish, descriptor
// tokens and queued signals are lost. Registered via netsim.OnCrash.
func (m *Manager) crashLocal() {
	m.mu.Lock()
	procs := m.procs
	migrants := m.migrants
	pipes := m.pipes
	m.procs = make(map[int]*Process)
	m.migrants = make(map[PID]*Process)
	m.migratedTo = make(map[int]migrRecord)
	m.pipes = make(map[storage.FileID]*pipeState)
	m.fdHomes = make(map[int]*fdHome)
	m.localFDStates = nil
	m.mu.Unlock()
	m.sigMu.Lock()
	m.sigQueue = nil
	m.sigMu.Unlock()
	crashErr := fmt.Errorf("%w: site %d crashed", ErrSiteFailed, m.site)
	kill := func(p *Process) {
		// Unblock a cooperative body stuck on <-ctx.Signals() so
		// DrainPrograms can join it, then mark the process dead and fail
		// any local waiters (harness goroutines survive the simulated
		// crash even though "processes" do not).
		select {
		case p.sigCh <- SIGKILL:
		default:
		}
		p.mu.Lock()
		already := p.exited
		p.exited = true
		waiters := p.waitFor
		p.waitFor = nil
		p.earlyExits = nil
		p.mu.Unlock()
		if !already {
			select {
			case p.done <- ExitStatus{Code: -1, Err: crashErr}:
			default:
			}
		}
		for _, ch := range waiters {
			ch <- ExitStatus{Code: -1, Err: crashErr}
		}
	}
	for _, p := range procs {
		kill(p)
	}
	for _, p := range migrants {
		kill(p)
	}
	for _, ps := range pipes {
		ps.poison()
	}
}

// LivePIDs returns the network-wide PIDs of every started program
// process currently hosted at this site (local and migrant), excluding
// shells (never started) and zombies. The chaos harness sweeps these at
// final heal to assert nothing leaked.
func (m *Manager) LivePIDs() []PID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []PID
	collect := func(p *Process) {
		p.mu.Lock()
		if p.started && !p.exited {
			out = append(out, p.pid)
		}
		p.mu.Unlock()
	}
	for _, p := range m.procs {
		collect(p)
	}
	for _, p := range m.migrants {
		collect(p)
	}
	return out
}

// KillLocal force-terminates a process hosted at this site (local or
// migrant) without any remote exchange, reporting whether it was found.
// The chaos harness uses it to sweep strays — e.g. the far half of a
// migration whose reply was lost — after the final heal.
func (m *Manager) KillLocal(pid PID) bool {
	m.mu.Lock()
	var p *Process
	if pid.Site == m.site {
		p = m.procs[pid.Num]
	} else {
		p = m.migrants[pid]
	}
	m.mu.Unlock()
	if p == nil {
		return false
	}
	select {
	case p.sigCh <- SIGKILL:
	default:
	}
	m.exit(p, ExitStatus{Code: -9})
	return true
}
