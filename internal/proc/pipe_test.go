package proc_test

// Deterministic regression tests for the §5.6 pipe rows: losing the
// far endpoint's site must convert into EOF (reader side) or an error
// (writer side) — never a hang.

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/proc"
)

// pipeFixture creates /fifo, opens a probe end to learn the server
// site, and returns the surviving-site helpers.
func pipeFixture(t *testing.T) (*harness, proc.SiteID) {
	t.Helper()
	h := newHarness(t, 3)
	if err := h.c.K(1).Mkfifo(cred(), "/fifo", 0644); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	probe := h.mgrs[1].InitProcess(cred())
	pe, err := h.mgrs[1].OpenPipe(probe, "/fifo", true)
	if err != nil {
		t.Fatal(err)
	}
	server := pe.Server()
	if err := pe.Close(); err != nil {
		t.Fatal(err)
	}
	return h, server
}

// otherSite returns a site different from every argument.
func otherSite(t *testing.T, h *harness, not ...proc.SiteID) proc.SiteID {
	t.Helper()
	for _, s := range h.c.Sites() {
		excluded := false
		for _, n := range not {
			if s == n {
				excluded = true
			}
		}
		if !excluded {
			return s
		}
	}
	t.Fatal("no site left")
	return 0
}

// procCleanup runs the proc-layer §5.6 cleanup at every surviving site
// (cluster.Crash only drives the fs kernels; proc tests own their
// managers).
func procCleanup(h *harness, up []proc.SiteID) {
	for _, s := range up {
		h.mgrs[s].CleanupAfterPartitionChange(up)
	}
}

func survivors(h *harness, dead proc.SiteID) []proc.SiteID {
	var up []proc.SiteID
	for _, s := range h.c.Sites() {
		if s != dead {
			up = append(up, s)
		}
	}
	return up
}

func TestPipeWriterSiteCrashDeliversEOF(t *testing.T) {
	h, server := pipeFixture(t)
	wsite := otherSite(t, h, server, 1)

	pr := h.mgrs[1].InitProcess(cred())
	r, err := h.mgrs[1].OpenPipe(pr, "/fifo", false)
	if err != nil {
		t.Fatal(err)
	}
	pw := h.mgrs[wsite].InitProcess(cred())
	w, err := h.mgrs[wsite].OpenPipe(pw, "/fifo", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if b, err := r.Read(16); err != nil || string(b) != "pre" {
		t.Fatalf("read %q, %v", b, err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := r.Read(16)
		done <- err
	}()
	// Let the read block at the server, then kill the writer's site.
	time.Sleep(10 * time.Millisecond)
	h.c.Crash(wsite)
	procCleanup(h, survivors(h, wsite))

	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("blocked read returned %v, want io.EOF", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reader hung after writer-site crash; §5.6 requires EOF")
	}
}

func TestPipeReaderSiteCrashBreaksWriter(t *testing.T) {
	h, server := pipeFixture(t)
	rsite := otherSite(t, h, server, 1)

	pw := h.mgrs[1].InitProcess(cred())
	w, err := h.mgrs[1].OpenPipe(pw, "/fifo", true)
	if err != nil {
		t.Fatal(err)
	}
	pr := h.mgrs[rsite].InitProcess(cred())
	if _, err := h.mgrs[rsite].OpenPipe(pr, "/fifo", false); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]byte("alive")); err != nil {
		t.Fatal(err)
	}

	h.c.Crash(rsite)
	procCleanup(h, survivors(h, rsite))

	if err := w.Write([]byte("dead")); !errors.Is(err, proc.ErrPipeBroken) {
		t.Fatalf("write after reader-site crash = %v, want ErrPipeBroken", err)
	}
}

func TestPipeServerSiteCrashFailsBothEnds(t *testing.T) {
	h, server := pipeFixture(t)
	wsite := otherSite(t, h, server)
	rsite := otherSite(t, h, server, wsite)

	pw := h.mgrs[wsite].InitProcess(cred())
	w, err := h.mgrs[wsite].OpenPipe(pw, "/fifo", true)
	if err != nil {
		t.Fatal(err)
	}
	pr := h.mgrs[rsite].InitProcess(cred())
	r, err := h.mgrs[rsite].OpenPipe(pr, "/fifo", false)
	if err != nil {
		t.Fatal(err)
	}

	h.c.Crash(server)
	procCleanup(h, survivors(h, server))

	if err := w.Write([]byte("x")); !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("write to crashed server = %v, want ErrSiteFailed", err)
	}
	if _, err := r.Read(1); !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("read from crashed server = %v, want ErrSiteFailed", err)
	}
}
