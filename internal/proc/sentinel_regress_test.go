package proc_test

// Regression tests for the sentinel-discipline holes the interprocedural
// locus-vet pass (sentinelerr) surfaced: device I/O, shared-descriptor
// token traffic, and signal dispatch all used to leak raw netsim
// sentinels to callers on some failure paths. Each case pins the §5.6
// contract — site-failure errors surface as errors.Is(err, ErrSiteFailed)
// no matter which transport sentinel the wire produced. The last test
// pins the exit-time descriptor teardown schedule, the proc-side half of
// the maporder fixes.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/storage"
)

// TestDeviceIOAfterHostCrashWrapsErrSiteFailed: the device handle's
// Read/Write funnels used to pass netsim.ErrUnreachable through raw.
func TestDeviceIOAfterHostCrashWrapsErrSiteFailed(t *testing.T) {
	h := newHarness(t, 3)
	h.mgrs[3].RegisterDevice("lp0", &printer{tape: []byte("ready")})
	if err := h.c.K(1).Mknod(cred(), "/dev-lp", 3, "lp0", 0666); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	p1 := h.mgrs[1].InitProcess(cred())
	dev, err := h.mgrs[1].OpenDevice(p1, "/dev-lp")
	if err != nil {
		t.Fatal(err)
	}
	h.c.Crash(3)
	if _, err := dev.Read(8); !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("device read from crashed host = %v, want ErrSiteFailed", err)
	}
	if _, err := dev.Write([]byte("x")); !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("device write to crashed host = %v, want ErrSiteFailed", err)
	}
}

// TestSharedFDTokenFetchAcrossPartitionWrapsErrSiteFailed: the token
// negotiation crossing a partition must classify, not leak, the
// transport error.
func TestSharedFDTokenFetchAcrossPartitionWrapsErrSiteFailed(t *testing.T) {
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/shared", "unused")
	h.c.Settle()

	// The descriptor is homed (and its token held) at site 2; site 1
	// attaches.
	p2 := h.mgrs[2].InitProcess(cred())
	fd2, _, err := h.mgrs[2].OpenShared(p2, "/shared", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer fd2.Close() //nolint:errcheck
	home, id := fd2.HomeID()
	p1 := h.mgrs[1].InitProcess(cred())
	fd1, _, err := h.mgrs[1].AttachShared(p1, home, id, "/shared", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer fd1.Close() //nolint:errcheck

	h.c.Partition([]proc.SiteID{1}, []proc.SiteID{2})
	h.mgrs[1].CleanupAfterPartitionChange([]proc.SiteID{1})
	h.mgrs[2].CleanupAfterPartitionChange([]proc.SiteID{2})

	buf := make([]byte, 4)
	if _, err := fd1.Read(buf); !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("token fetch across partition = %v, want ErrSiteFailed", err)
	}
}

// TestSignalToSiteWithoutManagerWrapsErrSiteFailed pins the
// classification fix sentinelerr forced: a site that is up on the wire
// but runs no process manager answers proc.signal with
// netsim.ErrNoHandler, which must read as a site failure (and queue the
// signal for replay) rather than leak the transport sentinel.
func TestSignalToSiteWithoutManagerWrapsErrSiteFailed(t *testing.T) {
	c := cluster.Simple(2)
	t.Cleanup(c.Close)
	m1 := proc.NewManager(c.Net.Node(1), c.K(1), "vax")
	// Site 2 boots fs but no proc.Manager: no proc.* handlers exist.
	err := m1.Signal(proc.PID{Site: 2, Num: 7}, proc.SIGTERM)
	if !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("signal to manager-less site = %v, want ErrSiteFailed", err)
	}
	if n := m1.QueuedSignals(); n != 1 {
		t.Fatalf("QueuedSignals = %d, want 1 (no-handler failures must queue like partitions)", n)
	}
}

// runExitCloseSchedule runs a program at site 2 that opens three
// remote-served descriptors and exits without closing them, capturing
// the wire schedule of the whole run. Every send comes from one
// goroutine at a time (the Run call, then the program and its exit
// teardown), so the capture is deterministic iff the exit path closes
// descriptors in a fixed order.
func runExitCloseSchedule(t *testing.T) []string {
	t.Helper()
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/opener", "opener")
	h.c.Settle()
	// Data files created after the settle have no replica at site 2 yet:
	// the program's opens are served remotely, so its exit-time closes
	// cross the wire.
	for i := 0; i < 3; i++ {
		f, err := h.c.K(1).Create(cred(), fmt.Sprintf("/d%d", i), storage.TypeRegular, 0644)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteAll([]byte("payload")); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range h.c.Sites() {
		h.mgrs[s].Register("opener", func(ctx *proc.Ctx) int {
			for i := 0; i < 3; i++ {
				if _, _, err := ctx.M.OpenShared(ctx.Self, fmt.Sprintf("/d%d", i), fs.ModeRead); err != nil {
					return 1
				}
			}
			return 0
		})
	}

	var sched []string
	h.c.Net.SetTrace(func(from, to proc.SiteID, method string) {
		sched = append(sched, fmt.Sprintf("%d->%d %s", from, to, method))
	})
	shell := h.mgrs[1].InitProcess(cred())
	shell.SetAdvice(2)
	pid, err := h.mgrs[1].Run(shell, "/opener", nil)
	if err != nil {
		t.Fatal(err)
	}
	h.mgrs[2].DrainPrograms()
	h.c.Net.SetTrace(nil)
	if st := h.mgrs[1].Wait(shell, pid); st.Code != 0 {
		t.Fatalf("opener exited %d (err %v)", st.Code, st.Err)
	}
	return sched
}

// TestExitCloseScheduleDeterministic is the proc-side double-run check:
// exit() tears down the descriptor table in descriptor order, so the
// close RPCs hit the wire identically on every replay. Before the
// maporder fix this iterated p.fds raw and flaked with the map seed.
func TestExitCloseScheduleDeterministic(t *testing.T) {
	a := runExitCloseSchedule(t)
	b := runExitCloseSchedule(t)
	if len(a) == 0 {
		t.Fatal("run produced no wire sends; the schedule assertion is vacuous")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("exit teardown wire schedules differ across identical runs:\nrun 1:\n  %s\nrun 2:\n  %s",
			strings.Join(a, "\n  "), strings.Join(b, "\n  "))
	}
}
