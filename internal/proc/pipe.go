package proc

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/fs"
	"repro/internal/storage"
)

// Named pipes with network-wide Unix semantics (§2.4.2): the pipe is
// named in the catalog (a TypePipe file created with Mkfifo); its byte
// stream lives at a server site — the lowest pack site of the pipe's
// filegroup in the partition — and readers/writers anywhere in the
// network exchange data through it with the same semantics as on a
// single machine.

// pipeState is the server-site buffer for one pipe.
type pipeState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []byte
	writers int
	closed  bool
}

func newPipeState() *pipeState {
	ps := &pipeState{}
	ps.cond = sync.NewCond(&ps.mu)
	return ps
}

// PipeEnd is a process's handle on a named pipe.
type PipeEnd struct {
	m      *Manager
	id     storage.FileID
	server SiteID
	write  bool
	closed bool
}

type pipeOpenMsg struct {
	ID    storage.FileID
	Write bool
}

type pipeReadReq struct {
	ID  storage.FileID
	Max int
}

type pipeReadResp struct {
	Data []byte
	EOF  bool
}

// WireSize charges the moved bytes.
func (r *pipeReadResp) WireSize() int { return len(r.Data) + 16 }

type pipeWriteReq struct {
	ID   storage.FileID
	Data []byte
}

// WireSize charges the moved bytes.
func (r *pipeWriteReq) WireSize() int { return len(r.Data) + 16 }

type pipeCloseReq struct {
	ID    storage.FileID
	Write bool
}

// OpenPipe opens a named pipe created with Kernel.Mkfifo for reading or
// writing.
func (m *Manager) OpenPipe(p *Process, path string, write bool) (*PipeEnd, error) {
	r, err := m.kernel.Resolve(p.cred, path)
	if err != nil {
		return nil, err
	}
	if r.Type != storage.TypePipe {
		return nil, fmt.Errorf("proc: %s is not a pipe", path)
	}
	server, err := m.kernel.CSSOf(r.ID.FG)
	if err != nil {
		return nil, err
	}
	pe := &PipeEnd{m: m, id: r.ID, server: server, write: write}
	if write {
		// A nil-data write registers the writer at the server so EOF is
		// delivered only after the last writer closes.
		if err := m.pipeCall(server, mPipeWrite, &pipeWriteReq{ID: r.ID, Data: nil}); err != nil {
			return nil, err
		}
	}
	return pe, nil
}

func (m *Manager) pipeCall(server SiteID, method string, req any) error {
	if server == m.site {
		var err error
		switch method {
		case mPipeWrite:
			_, err = m.handlePipeWrite(m.site, req)
		case mPipeClose:
			_, err = m.handlePipeClose(m.site, req)
		}
		return err
	}
	_, err := m.call(server, method, req)
	return err
}

func (m *Manager) pipe(id storage.FileID) *pipeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.pipes[id]
	if ps == nil {
		ps = newPipeState()
		m.pipes[id] = ps
	}
	return ps
}

// Read blocks until data is available or every writer has closed (then
// io.EOF), matching single-machine pipe semantics.
func (pe *PipeEnd) Read(max int) ([]byte, error) {
	if pe.closed {
		return nil, fs.ErrClosed
	}
	if pe.write {
		return nil, fmt.Errorf("proc: pipe opened for writing")
	}
	req := &pipeReadReq{ID: pe.id, Max: max}
	var resp any
	var err error
	if pe.server == pe.m.site {
		resp, err = pe.m.handlePipeRead(pe.m.site, req)
	} else {
		resp, err = pe.m.call(pe.server, mPipeRead, req)
	}
	if err != nil {
		return nil, err
	}
	r := resp.(*pipeReadResp)
	if r.EOF {
		return nil, io.EOF
	}
	return r.Data, nil
}

// Write appends to the pipe stream.
func (pe *PipeEnd) Write(data []byte) error {
	if pe.closed {
		return fs.ErrClosed
	}
	if !pe.write {
		return fmt.Errorf("proc: pipe opened for reading")
	}
	return pe.m.pipeCall(pe.server, mPipeWrite, &pipeWriteReq{ID: pe.id, Data: append([]byte(nil), data...)})
}

// Close closes this end; the last writer's close delivers EOF to
// blocked readers.
func (pe *PipeEnd) Close() error {
	if pe.closed {
		return nil
	}
	pe.closed = true
	if pe.write {
		return pe.m.pipeCall(pe.server, mPipeClose, &pipeCloseReq{ID: pe.id, Write: true})
	}
	return nil
}

func (m *Manager) handlePipeRead(_ SiteID, p any) (any, error) {
	req := p.(*pipeReadReq)
	ps := m.pipe(req.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for len(ps.buf) == 0 && !ps.closed {
		ps.cond.Wait()
	}
	if len(ps.buf) == 0 && ps.closed {
		return &pipeReadResp{EOF: true}, nil
	}
	n := req.Max
	if n <= 0 || n > len(ps.buf) {
		n = len(ps.buf)
	}
	out := append([]byte(nil), ps.buf[:n]...)
	ps.buf = ps.buf[n:]
	return &pipeReadResp{Data: out}, nil
}

func (m *Manager) handlePipeWrite(_ SiteID, p any) (any, error) {
	req := p.(*pipeWriteReq)
	ps := m.pipe(req.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if req.Data == nil {
		// Writer-open marker.
		ps.writers++
		ps.closed = false
		return nil, nil
	}
	ps.buf = append(ps.buf, req.Data...)
	ps.cond.Broadcast()
	return nil, nil
}

func (m *Manager) handlePipeClose(_ SiteID, p any) (any, error) {
	req := p.(*pipeCloseReq)
	ps := m.pipe(req.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if req.Write && ps.writers > 0 {
		ps.writers--
	}
	if ps.writers == 0 {
		ps.closed = true
		ps.cond.Broadcast()
	}
	return nil, nil
}
