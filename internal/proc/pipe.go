package proc

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/fs"
	"repro/internal/storage"
)

// Named pipes with network-wide Unix semantics (§2.4.2): the pipe is
// named in the catalog (a TypePipe file created with Mkfifo); its byte
// stream lives at a server site — the lowest pack site of the pipe's
// filegroup in the partition — and readers/writers anywhere in the
// network exchange data through it with the same semantics as on a
// single machine. The server tracks which site each endpoint lives on
// so a partition or crash tears the endpoint down per the §5.6
// failure-action table: losing the last writer's site delivers EOF to
// readers (never a hang); losing the last reader's site breaks the pipe
// for writers (ErrPipeBroken, the network EPIPE).

// pipeState is the server-site buffer for one pipe.
type pipeState struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
	// writerSites/readerSites count open endpoints per site so a lost
	// site retires exactly its own endpoints.
	writerSites map[SiteID]int
	readerSites map[SiteID]int
	writers     int
	readers     int
	// everReaders distinguishes "no reader yet" (writers may buffer
	// ahead) from "all readers gone" (pipe broken).
	everReaders bool
	// closed: all writers gone — drained reads return EOF.
	closed bool
	// broken: all readers gone — writes fail with ErrPipeBroken.
	broken bool
	// poisoned: the server site itself crashed and lost the buffer.
	poisoned bool
}

func newPipeState() *pipeState {
	ps := &pipeState{
		writerSites: make(map[SiteID]int),
		readerSites: make(map[SiteID]int),
	}
	ps.cond = sync.NewCond(&ps.mu)
	return ps
}

// dropSites retires every endpoint whose site left the partition
// (server side of the §5.6 pipe rows). Returns the number of endpoint
// registrations torn down. self is the server's own site, always kept.
func (ps *pipeState) dropSites(in map[SiteID]bool, self SiteID) int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	torn := 0
	for s, n := range ps.writerSites {
		if s != self && !in[s] {
			delete(ps.writerSites, s)
			ps.writers -= n
			torn += n
		}
	}
	for s, n := range ps.readerSites {
		if s != self && !in[s] {
			delete(ps.readerSites, s)
			ps.readers -= n
			torn += n
		}
	}
	if torn == 0 {
		return 0
	}
	if ps.writers <= 0 {
		ps.writers = 0
		ps.closed = true
	}
	if ps.readers <= 0 && ps.everReaders {
		ps.readers = 0
		ps.broken = true
	}
	ps.cond.Broadcast()
	return torn
}

// poison marks the buffer as lost with the server's crash; every
// blocked or future operation fails over to the catalog's surviving
// semantics (readers: EOF; writers: error).
func (ps *pipeState) poison() {
	ps.mu.Lock()
	ps.poisoned = true
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// PipeEnd is a process's handle on a named pipe.
type PipeEnd struct {
	m      *Manager
	id     storage.FileID
	server SiteID
	write  bool
	closed bool
}

// Server returns the site hosting the pipe's byte stream.
func (pe *PipeEnd) Server() SiteID { return pe.server }

type pipeOpenMsg struct {
	ID    storage.FileID
	Write bool
}

type pipeReadReq struct {
	ID  storage.FileID
	Max int
}

type pipeReadResp struct {
	Data []byte
	EOF  bool
}

// WireSize charges the moved bytes.
func (r *pipeReadResp) WireSize() int { return len(r.Data) + 16 }

type pipeWriteReq struct {
	ID   storage.FileID
	Data []byte
}

// WireSize charges the moved bytes.
func (r *pipeWriteReq) WireSize() int { return len(r.Data) + 16 }

type pipeCloseReq struct {
	ID    storage.FileID
	Write bool
}

// OpenPipe opens a named pipe created with Kernel.Mkfifo for reading or
// writing. Both endpoint kinds register at the server site so the §5.6
// teardown knows which sites hold which ends.
func (m *Manager) OpenPipe(p *Process, path string, write bool) (*PipeEnd, error) {
	r, err := m.kernel.Resolve(p.cred, path)
	if err != nil {
		// Resolution can fail because the name's CSS or storage site is
		// gone — a §5.6 site failure, not a bad pathname.
		return nil, wrapFsSiteErr(err)
	}
	if r.Type != storage.TypePipe {
		return nil, fmt.Errorf("proc: %s is not a pipe", path)
	}
	server, err := m.kernel.CSSOf(r.ID.FG)
	if err != nil {
		return nil, wrapFsSiteErr(err)
	}
	pe := &PipeEnd{m: m, id: r.ID, server: server, write: write}
	if err := m.pipeCall(server, mPipeOpen, &pipeOpenMsg{ID: r.ID, Write: write}); err != nil {
		return nil, wrapSiteErr(err, server)
	}
	return pe, nil
}

func (m *Manager) pipeCall(server SiteID, method string, req any) error {
	if server == m.site {
		var err error
		switch method {
		case mPipeOpen:
			_, err = m.handlePipeOpen(m.site, req)
		case mPipeWrite:
			_, err = m.handlePipeWrite(m.site, req)
		case mPipeClose:
			_, err = m.handlePipeClose(m.site, req)
		}
		return err
	}
	_, err := m.call(server, method, req)
	return err
}

func (m *Manager) pipe(id storage.FileID) *pipeState {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.pipes[id]
	if ps == nil {
		ps = newPipeState()
		m.pipes[id] = ps
	}
	return ps
}

// Read blocks until data is available or every writer has closed (then
// io.EOF), matching single-machine pipe semantics. If the server site
// failed, the error wraps ErrSiteFailed rather than hanging.
func (pe *PipeEnd) Read(max int) ([]byte, error) {
	if pe.closed {
		return nil, fs.ErrClosed
	}
	if pe.write {
		return nil, fmt.Errorf("proc: pipe opened for writing")
	}
	req := &pipeReadReq{ID: pe.id, Max: max}
	var resp any
	var err error
	if pe.server == pe.m.site {
		resp, err = pe.m.handlePipeRead(pe.m.site, req)
	} else {
		resp, err = pe.m.call(pe.server, mPipeRead, req)
	}
	if err != nil {
		return nil, wrapSiteErr(err, pe.server)
	}
	r := resp.(*pipeReadResp)
	if r.EOF {
		return nil, io.EOF
	}
	return r.Data, nil
}

// Write appends to the pipe stream. A pipe whose readers are all gone
// (closed, or lost with their site) fails with ErrPipeBroken; a failed
// server site fails with ErrSiteFailed.
func (pe *PipeEnd) Write(data []byte) error {
	if pe.closed {
		return fs.ErrClosed
	}
	if !pe.write {
		return fmt.Errorf("proc: pipe opened for reading")
	}
	err := pe.m.pipeCall(pe.server, mPipeWrite, &pipeWriteReq{ID: pe.id, Data: append([]byte(nil), data...)})
	return wrapSiteErr(err, pe.server)
}

// Close closes this end; the last writer's close delivers EOF to
// blocked readers, the last reader's close breaks the pipe for writers.
func (pe *PipeEnd) Close() error {
	if pe.closed {
		return nil
	}
	pe.closed = true
	err := pe.m.pipeCall(pe.server, mPipeClose, &pipeCloseReq{ID: pe.id, Write: pe.write})
	return wrapSiteErr(err, pe.server)
}

func (m *Manager) handlePipeOpen(from SiteID, p any) (any, error) {
	msg := p.(*pipeOpenMsg)
	ps := m.pipe(msg.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.poisoned {
		// The server restarted after a crash; the catalog name survives,
		// so a fresh generation of endpoints starts clean.
		ps.poisoned = false
		ps.buf = nil
		ps.closed = false
		ps.broken = false
	}
	if msg.Write {
		ps.writers++
		ps.writerSites[from]++
		ps.closed = false
	} else {
		ps.readers++
		ps.readerSites[from]++
		ps.everReaders = true
		ps.broken = false
	}
	return nil, nil
}

func (m *Manager) handlePipeRead(from SiteID, p any) (any, error) {
	req := p.(*pipeReadReq)
	ps := m.pipe(req.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for len(ps.buf) == 0 && !ps.closed && !ps.poisoned {
		// A remote reader blocked here while its own site left the
		// partition could never receive the reply; fail the exchange so
		// the server goroutine does not strand (§5.6: never hang).
		if from != m.site && !m.node.Network().Connected(m.site, from) {
			return nil, fmt.Errorf("%w: reader site %d unreachable from pipe server", ErrSiteFailed, from)
		}
		ps.cond.Wait()
	}
	if ps.poisoned {
		return &pipeReadResp{EOF: true}, nil
	}
	if len(ps.buf) == 0 && ps.closed {
		return &pipeReadResp{EOF: true}, nil
	}
	n := req.Max
	if n <= 0 || n > len(ps.buf) {
		n = len(ps.buf)
	}
	out := append([]byte(nil), ps.buf[:n]...)
	ps.buf = ps.buf[n:]
	return &pipeReadResp{Data: out}, nil
}

func (m *Manager) handlePipeWrite(_ SiteID, p any) (any, error) {
	req := p.(*pipeWriteReq)
	ps := m.pipe(req.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.broken {
		return nil, fmt.Errorf("%w: %v", ErrPipeBroken, req.ID)
	}
	if ps.poisoned {
		return nil, fmt.Errorf("%w: pipe server crashed, buffer lost", ErrSiteFailed)
	}
	ps.buf = append(ps.buf, req.Data...)
	ps.cond.Broadcast()
	return nil, nil
}

func (m *Manager) handlePipeClose(from SiteID, p any) (any, error) {
	req := p.(*pipeCloseReq)
	ps := m.pipe(req.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if req.Write {
		if ps.writers > 0 {
			ps.writers--
			if ps.writerSites[from] > 1 {
				ps.writerSites[from]--
			} else {
				delete(ps.writerSites, from)
			}
		}
		if ps.writers == 0 {
			ps.closed = true
			ps.cond.Broadcast()
		}
	} else {
		if ps.readers > 0 {
			ps.readers--
			if ps.readerSites[from] > 1 {
				ps.readerSites[from]--
			} else {
				delete(ps.readerSites, from)
			}
		}
		if ps.readers == 0 && ps.everReaders {
			ps.broken = true
			ps.cond.Broadcast()
		}
	}
	return nil, nil
}
