package proc_test

// The §5.6 error-wrapping audit: every "remote site fails -> return
// error to caller" path must return an error wrapping ErrSiteFailed so
// callers can dispatch on errors.Is without knowing the transport
// details. The table covers crash, partition, and — the regression the
// chaos checker found — retry-budget exhaustion under total message
// loss, which used to leak the raw netsim.ErrTimeout.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/proc"
)

func TestSiteFailurePathsWrapErrSiteFailed(t *testing.T) {
	registerSitter := func(h *harness) {
		for _, s := range h.c.Sites() {
			h.mgrs[s].Register("sit", func(ctx *proc.Ctx) int {
				<-ctx.Signals()
				return 0
			})
		}
	}

	cases := []struct {
		name string
		err  func(t *testing.T) error
	}{
		{
			name: "run to crashed site",
			err: func(t *testing.T) error {
				h := newHarness(t, 2)
				installModule(t, h.c.K(1), "/sit", "sit")
				h.c.Settle()
				registerSitter(h)
				h.c.Crash(2)
				shell := h.mgrs[1].InitProcess(cred())
				shell.SetAdvice(2)
				_, err := h.mgrs[1].Run(shell, "/sit", nil)
				return err
			},
		},
		{
			name: "run under total message loss (retry budget exhausted)",
			err: func(t *testing.T) error {
				h := newHarness(t, 2)
				installModule(t, h.c.K(1), "/sit", "sit")
				h.c.Settle()
				registerSitter(h)
				// Both sites are up; the wire eats every proc.run
				// exchange. The retry budget runs out with ErrTimeout,
				// which must still surface as ErrSiteFailed.
				h.c.Net.EnableFaults(netsim.FaultConfig{
					Seed: 1,
					Links: map[[2]proc.SiteID]netsim.FaultRates{
						{1, 2}: {Drop: 1.0},
					},
				})
				defer h.c.Net.DisableFaults()
				shell := h.mgrs[1].InitProcess(cred())
				shell.SetAdvice(2)
				_, err := h.mgrs[1].Run(shell, "/sit", nil)
				return err
			},
		},
		{
			name: "signal to partitioned site",
			err: func(t *testing.T) error {
				h := newHarness(t, 2)
				installModule(t, h.c.K(1), "/sit", "sit")
				h.c.Settle()
				registerSitter(h)
				shell := h.mgrs[1].InitProcess(cred())
				shell.SetAdvice(2)
				pid, err := h.mgrs[1].Run(shell, "/sit", nil)
				if err != nil {
					t.Fatal(err)
				}
				h.c.Partition([]proc.SiteID{1}, []proc.SiteID{2})
				h.mgrs[1].CleanupAfterPartitionChange([]proc.SiteID{1})
				h.mgrs[2].CleanupAfterPartitionChange([]proc.SiteID{2})
				return h.mgrs[1].Signal(pid, proc.SIGTERM)
			},
		},
		{
			name: "wait registered after child site already unreachable",
			err: func(t *testing.T) error {
				h := newHarness(t, 2)
				installModule(t, h.c.K(1), "/sit", "sit")
				h.c.Settle()
				registerSitter(h)
				shell := h.mgrs[1].InitProcess(cred())
				shell.SetAdvice(2)
				pid, err := h.mgrs[1].Run(shell, "/sit", nil)
				if err != nil {
					t.Fatal(err)
				}
				// The partition cleanup runs BEFORE Wait registers: the
				// register-then-recheck in waitRemote is what keeps this
				// from hanging forever.
				h.c.Partition([]proc.SiteID{1}, []proc.SiteID{2})
				h.mgrs[1].CleanupAfterPartitionChange([]proc.SiteID{1})
				h.mgrs[2].CleanupAfterPartitionChange([]proc.SiteID{2})
				stCh := make(chan proc.ExitStatus, 1)
				go func() { stCh <- h.mgrs[1].Wait(shell, pid) }()
				select {
				case st := <-stCh:
					return st.Err
				case <-time.After(5 * time.Second):
					t.Fatal("Wait hung on unreachable child site")
					return nil
				}
			},
		},
		{
			// The hole the chaos checker found (seed 27): the Wait caller's
			// own site crashes and restarts before the wait registers; the
			// registration lands on the swept-away process object, which
			// nothing will ever complete. waitRemote must notice the caller
			// died with its site instead of hanging.
			name: "wait registered by a process that died with its site",
			err: func(t *testing.T) error {
				h := newHarness(t, 2)
				installModule(t, h.c.K(1), "/sit", "sit")
				h.c.Settle()
				registerSitter(h)
				shell := h.mgrs[1].InitProcess(cred())
				shell.SetAdvice(2)
				pid, err := h.mgrs[1].Run(shell, "/sit", nil)
				if err != nil {
					t.Fatal(err)
				}
				h.c.Crash(1)
				h.c.Restart(1)
				// Site 1 is back and can reach the child's site, but the
				// stale shell is a corpse from before the crash.
				stCh := make(chan proc.ExitStatus, 1)
				go func() { stCh <- h.mgrs[1].Wait(shell, pid) }()
				select {
				case st := <-stCh:
					return st.Err
				case <-time.After(5 * time.Second):
					t.Fatal("Wait hung on a stale pre-crash process")
					return nil
				}
			},
		},
		{
			name: "migrate to crashed site",
			err: func(t *testing.T) error {
				h := newHarness(t, 3)
				installModule(t, h.c.K(1), "/sit", "sit")
				h.c.Settle()
				registerSitter(h)
				shell := h.mgrs[1].InitProcess(cred())
				pid, err := h.mgrs[1].Run(shell, "/sit", nil)
				if err != nil {
					t.Fatal(err)
				}
				p, ok := h.mgrs[1].Process(pid.Num)
				if !ok {
					t.Fatal("no process")
				}
				h.c.Crash(3)
				err = h.mgrs[1].Migrate(p, 3)
				// The process must keep running at the origin.
				if sErr := h.mgrs[1].Signal(pid, proc.SIGTERM); sErr != nil {
					t.Fatalf("process gone after failed migrate: %v", sErr)
				}
				return err
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.err(t); !errors.Is(err, proc.ErrSiteFailed) {
				t.Fatalf("err = %v, want errors.Is(_, ErrSiteFailed)", err)
			}
		})
	}
}

func TestSignalQueuedAcrossPartitionReplaysAfterMerge(t *testing.T) {
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/sit", "sit")
	h.c.Settle()
	for _, s := range h.c.Sites() {
		h.mgrs[s].Register("sit", func(ctx *proc.Ctx) int {
			<-ctx.Signals()
			return 0
		})
	}
	shell := h.mgrs[1].InitProcess(cred())
	shell.SetAdvice(2)
	pid, err := h.mgrs[1].Run(shell, "/sit", nil)
	if err != nil {
		t.Fatal(err)
	}
	stCh := make(chan proc.ExitStatus, 1)
	go func() { stCh <- h.mgrs[1].Wait(shell, pid) }()
	time.Sleep(10 * time.Millisecond)

	h.c.Partition([]proc.SiteID{1}, []proc.SiteID{2})
	h.mgrs[1].CleanupAfterPartitionChange([]proc.SiteID{1})
	h.mgrs[2].CleanupAfterPartitionChange([]proc.SiteID{2})
	// The wait fails with the partition (§5.6)...
	select {
	case st := <-stCh:
		if !errors.Is(st.Err, proc.ErrSiteFailed) {
			t.Fatalf("wait across partition = %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait hung across partition")
	}
	// ...and the signal queues at the sender instead of vanishing.
	if err := h.mgrs[1].Signal(pid, proc.SIGTERM); !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("cross-partition signal = %v, want ErrSiteFailed", err)
	}
	if n := h.mgrs[1].QueuedSignals(); n != 1 {
		t.Fatalf("QueuedSignals = %d, want 1", n)
	}

	h.c.Heal()
	all := []proc.SiteID{1, 2}
	h.mgrs[1].CleanupAfterPartitionChange(all)
	h.mgrs[2].CleanupAfterPartitionChange(all)
	if n := h.mgrs[1].QueuedSignals(); n != 0 {
		t.Fatalf("QueuedSignals after merge = %d, want 0", n)
	}
	// The replayed SIGTERM lets the sitter exit.
	h.mgrs[2].DrainPrograms()
	snap := h.c.Net.Stats()
	if snap.SignalsQueued != 1 || snap.SignalsReplayed+snap.SignalsExpired != 1 {
		t.Fatalf("signal counters %+v, want 1 queued and 1 replayed-or-expired", snap)
	}
}
