package proc_test

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/storage"
)

type harness struct {
	c    *cluster.Cluster
	mgrs map[proc.SiteID]*proc.Manager
}

// newHarness builds an n-site cluster with process managers; odd sites
// are "vax", even sites "pdp11".
func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	c := cluster.Simple(n)
	t.Cleanup(c.Close)
	h := &harness{c: c, mgrs: make(map[proc.SiteID]*proc.Manager)}
	for _, s := range c.Sites() {
		mt := "vax"
		if s%2 == 0 {
			mt = "pdp11"
		}
		h.mgrs[s] = proc.NewManager(c.Net.Node(s), c.K(s), mt)
	}
	return h
}

func cred() *fs.Cred { return fs.DefaultCred("tester") }

// installModule writes an executable load module naming program `prog`.
func installModule(t *testing.T, k *fs.Kernel, path, prog string) {
	t.Helper()
	f, err := k.Create(cred(), path, storage.TypeRegular, 0755)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("go:" + prog + "\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunLocalAndRemote(t *testing.T) {
	h := newHarness(t, 3)
	installModule(t, h.c.K(1), "/bin-echo", "echo")
	h.c.Settle()

	for _, s := range h.c.Sites() {
		s := s
		h.mgrs[s].Register("echo", func(ctx *proc.Ctx) int {
			// Record where we executed by writing a file via the
			// transparent filesystem.
			f, err := ctx.K().Create(ctx.Cred(), fmt.Sprintf("/ran-at-%d", s), storage.TypeRegular, 0644)
			if err != nil {
				return 1
			}
			f.WriteAll([]byte("ok")) //nolint:errcheck
			f.Close()                //nolint:errcheck
			return 0
		})
	}

	shell := h.mgrs[1].InitProcess(cred())
	// Local run.
	pid, err := h.mgrs[1].Run(shell, "/bin-echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pid.Site != 1 {
		t.Fatalf("local run executed at site %d", pid.Site)
	}
	st := h.mgrs[1].Wait(shell, pid)
	if st.Code != 0 || st.Err != nil {
		t.Fatalf("status %+v", st)
	}

	// Remote run via the advice list: "one can dynamically, even just
	// before process invocation, select the execution site" (§3.1).
	shell.SetAdvice(3)
	pid, err = h.mgrs[1].Run(shell, "/bin-echo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pid.Site != 3 {
		t.Fatalf("remote run executed at site %d, want 3", pid.Site)
	}
	st = h.mgrs[1].Wait(shell, pid)
	if st.Code != 0 {
		t.Fatalf("remote status %+v", st)
	}
	h.c.Settle()
	if _, err := h.c.K(1).Stat(cred(), "/ran-at-3"); err != nil {
		t.Fatalf("remote execution left no trace: %v", err)
	}
}

func TestHeterogeneousExecViaHiddenDirectory(t *testing.T) {
	// §2.4.1 + §3.1: the same command name runs the right load module
	// for each machine type.
	h := newHarness(t, 2) // site 1 vax, site 2 pdp11
	k := h.c.K(1)
	if err := k.Mkdir(cred(), "/bin", 0755); err != nil {
		t.Fatal(err)
	}
	if err := k.MkHidden(cred(), "/bin/who", 0755); err != nil {
		t.Fatal(err)
	}
	installModule(t, k, "/bin/who@@/vax", "who-vax")
	installModule(t, k, "/bin/who@@/pdp11", "who-pdp11")
	h.c.Settle()

	ran := make(chan string, 2)
	h.mgrs[1].Register("who-vax", func(*proc.Ctx) int { ran <- "vax"; return 0 })
	h.mgrs[2].Register("who-pdp11", func(*proc.Ctx) int { ran <- "pdp11"; return 0 })

	// The same command name, typed on either machine.
	for _, s := range []proc.SiteID{1, 2} {
		shell := h.mgrs[s].InitProcess(fs.DefaultCred("u"))
		pid, err := h.mgrs[s].Run(shell, "/bin/who", nil)
		if err != nil {
			t.Fatalf("site %d: %v", s, err)
		}
		st := h.mgrs[s].Wait(shell, pid)
		if st.Code != 0 {
			t.Fatalf("site %d status %+v", s, st)
		}
	}
	got := map[string]bool{<-ran: true, <-ran: true}
	if !got["vax"] || !got["pdp11"] {
		t.Fatalf("executed modules: %v", got)
	}
}

func TestRunRemoteWithWrongMachineTypeFails(t *testing.T) {
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/vaxonly", "vax-prog")
	h.c.Settle()
	h.mgrs[1].Register("vax-prog", func(*proc.Ctx) int { return 0 })
	// Not registered at site 2 (pdp11).
	shell := h.mgrs[1].InitProcess(cred())
	shell.SetAdvice(2)
	if _, err := h.mgrs[1].Run(shell, "/vaxonly", nil); !errors.Is(err, proc.ErrNoProgram) {
		t.Fatalf("err = %v, want ErrNoProgram", err)
	}
}

func TestForkSharesDescriptors(t *testing.T) {
	h := newHarness(t, 1)
	k := h.c.K(1)
	f, err := k.Create(cred(), "/shared", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m := h.mgrs[1]
	parent := m.InitProcess(cred())
	fd, _, err := m.OpenShared(parent, "/shared", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	// Parent reads 3 bytes, then the forked child must continue at
	// offset 3 (§3.2: "the second process receives or alters the
	// character following the one touched by the first process").
	buf := make([]byte, 3)
	if _, err := fd.Read(buf); err != nil {
		t.Fatal(err)
	}
	childRead := make(chan string, 1)
	child, err := m.Fork(parent, func(ctx *proc.Ctx) int {
		cfd, ok := ctx.Self.FD(1)
		if !ok {
			return 1
		}
		b := make([]byte, 3)
		n, err := cfd.Read(b)
		if err != nil {
			return 1
		}
		childRead <- string(b[:n])
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Wait(parent, child.PID())
	if st.Code != 0 {
		t.Fatalf("child status %+v", st)
	}
	if got := <-childRead; got != "def" {
		t.Fatalf("child read %q, want def (shared offset)", got)
	}
	// And the parent continues after the child's read.
	if _, err := fd.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ghi" {
		t.Fatalf("parent read %q, want ghi", buf)
	}
}

func TestCrossSiteSharedOffsetToken(t *testing.T) {
	h := newHarness(t, 2)
	k := h.c.K(1)
	f, err := k.Create(cred(), "/log", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("0123456789ABCDEF")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()

	p1 := h.mgrs[1].InitProcess(cred())
	p2 := h.mgrs[2].InitProcess(cred())
	fd1, _, err := h.mgrs[1].OpenShared(p1, "/log", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	home, id := fd1.HomeID()
	fd2, _, err := h.mgrs[2].AttachShared(p2, home, id, "/log", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate reads across sites: each sees the next bytes.
	buf := make([]byte, 4)
	if _, err := fd1.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123" {
		t.Fatalf("fd1 first read %q", buf)
	}
	if _, err := fd2.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "4567" {
		t.Fatalf("fd2 read %q, want 4567 (token carries offset)", buf)
	}
	if _, err := fd1.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "89AB" {
		t.Fatalf("fd1 second read %q, want 89AB", buf)
	}
}

func TestSignalsAcrossNetwork(t *testing.T) {
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/waiter", "waiter")
	h.c.Settle()
	got := make(chan proc.Signal, 1)
	h.mgrs[2].Register("waiter", func(ctx *proc.Ctx) int {
		select {
		case s := <-ctx.Signals():
			got <- s
			return 0
		case <-time.After(5 * time.Second):
			return 1
		}
	})
	shell := h.mgrs[1].InitProcess(cred())
	shell.SetAdvice(2)
	pid, err := h.mgrs[1].Run(shell, "/waiter", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mgrs[1].Signal(pid, proc.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	st := h.mgrs[1].Wait(shell, pid)
	if st.Code != 0 {
		t.Fatalf("status %+v", st)
	}
	if s := <-got; s != proc.SIGUSR1 {
		t.Fatalf("signal %v", s)
	}
}

func TestKill(t *testing.T) {
	h := newHarness(t, 1)
	installModule(t, h.c.K(1), "/sleeper", "sleeper")
	h.mgrs[1].Register("sleeper", func(ctx *proc.Ctx) int {
		<-ctx.Signals() // blocks forever unless signalled
		return 0
	})
	shell := h.mgrs[1].InitProcess(cred())
	pid, err := h.mgrs[1].Run(shell, "/sleeper", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.mgrs[1].Signal(pid, proc.SIGKILL); err != nil {
		t.Fatal(err)
	}
	st := h.mgrs[1].Wait(shell, pid)
	if st.Code != -int(proc.SIGKILL) {
		t.Fatalf("status %+v", st)
	}
}

func TestNamedPipeAcrossSites(t *testing.T) {
	h := newHarness(t, 3)
	if err := h.c.K(1).Mkfifo(cred(), "/fifo", 0644); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()

	pw := h.mgrs[2].InitProcess(cred())
	pr := h.mgrs[3].InitProcess(cred())
	w, err := h.mgrs[2].OpenPipe(pw, "/fifo", true)
	if err != nil {
		t.Fatal(err)
	}
	r, err := h.mgrs[3].OpenPipe(pr, "/fifo", false)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan []byte, 1)
	go func() {
		var all []byte
		for {
			b, err := r.Read(64)
			if err == io.EOF {
				done <- all
				return
			}
			if err != nil {
				done <- nil
				return
			}
			all = append(all, b...)
		}
	}()
	if err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]byte("pipes")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case all := <-done:
		if string(all) != "hello pipes" {
			t.Fatalf("pipe delivered %q", all)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipe reader did not finish")
	}
}

func TestChildSiteFailureSignalsParent(t *testing.T) {
	// §3.3: "When the child's machine fails, the parent receives an
	// error signal" with information deposited in the process
	// structure.
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/forever", "forever")
	h.c.Settle()
	h.mgrs[2].Register("forever", func(ctx *proc.Ctx) int {
		<-ctx.Signals()
		return 0
	})
	shell := h.mgrs[1].InitProcess(cred())
	shell.SetAdvice(2)
	pid, err := h.mgrs[1].Run(shell, "/forever", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitDone := make(chan proc.ExitStatus, 1)
	go func() { waitDone <- h.mgrs[1].Wait(shell, pid) }()

	// Give the waiter a moment to register, then cut site 2 off.
	time.Sleep(10 * time.Millisecond)
	h.c.Net.PartitionGroups([]proc.SiteID{1}, []proc.SiteID{2})
	h.c.K(1).CleanupAfterPartitionChange([]proc.SiteID{1})
	h.mgrs[1].CleanupAfterPartitionChange([]proc.SiteID{1})

	select {
	case st := <-waitDone:
		if !errors.Is(st.Err, proc.ErrSiteFailed) {
			t.Fatalf("wait status %+v, want ErrSiteFailed", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait did not unblock after child site failure")
	}
	select {
	case sig := <-shell.ErrSignals():
		if sig != proc.SIGCHILDERR {
			t.Fatalf("signal %v, want SIGCHILDERR", sig)
		}
	case <-time.After(time.Second):
		t.Fatal("no error signal delivered to parent")
	}
	if !strings.Contains(shell.ErrInfo(), "site failed") {
		t.Fatalf("ErrInfo = %q", shell.ErrInfo())
	}
}

func TestRunToDownSiteReturnsError(t *testing.T) {
	// §5.6 table: "Remote Fork/Exec, remote site fails -> return error
	// to caller".
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/prog", "prog")
	h.c.Settle()
	h.mgrs[2].Register("prog", func(*proc.Ctx) int { return 0 })
	h.c.Crash(2)
	shell := h.mgrs[1].InitProcess(cred())
	shell.SetAdvice(2)
	if _, err := h.mgrs[1].Run(shell, "/prog", nil); !errors.Is(err, proc.ErrSiteFailed) {
		t.Fatalf("err = %v, want ErrSiteFailed", err)
	}
}

func TestExecNotExecutable(t *testing.T) {
	h := newHarness(t, 1)
	installModule(t, h.c.K(1), "/real", "real")
	f, err := h.c.K(1).Create(cred(), "/data.txt", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("just text")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	shell := h.mgrs[1].InitProcess(cred())
	if _, err := h.mgrs[1].Exec(shell, "/data.txt", nil); !errors.Is(err, proc.ErrNotExecutable) {
		t.Fatalf("err = %v, want ErrNotExecutable", err)
	}
	if _, err := h.mgrs[1].Exec(shell, "/missing", nil); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestDrainProgramsJoinsProgramBodies is the runtime regression test
// for the program-join fix: DrainPrograms must block until every
// spawned program body and its exit processing have completed, and
// must return promptly once they have. The goroutinejoin analyzer
// (TestRepositoryIsClean in internal/lint) guards the same
// m.programs wiring statically.
func TestDrainProgramsJoinsProgramBodies(t *testing.T) {
	h := newHarness(t, 1)
	installModule(t, h.c.K(1), "/blocker", "blocker")
	h.c.Settle()

	started := make(chan struct{})
	release := make(chan struct{})
	h.mgrs[1].Register("blocker", func(*proc.Ctx) int {
		close(started)
		<-release
		return 7
	})
	shell := h.mgrs[1].InitProcess(cred())
	pid, err := h.mgrs[1].Run(shell, "/blocker", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan struct{})
	go func() {
		h.mgrs[1].DrainPrograms()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("DrainPrograms returned while a program body was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("DrainPrograms did not return after the program exited")
	}
	// The join covers exit processing too: the status is already
	// recorded by the time DrainPrograms returns.
	if st := h.mgrs[1].Wait(shell, pid); st.Code != 7 {
		t.Fatalf("exit status %+v, want code 7", st)
	}
}
