package proc

// At-most-once RPC wrappers for the process layer, mirroring
// internal/fs/rpc.go. Every proc exchange mutates remote state (run
// spawns a process, signal delivers, fdtoken/fdyank move the offset
// token, piperead consumes buffered bytes), so all calls are tagged
// with a fresh at-most-once sequence number: a retried exchange whose
// first response was lost returns the cached outcome instead of
// spawning a second process or consuming the pipe twice.

import (
	"errors"

	"repro/internal/netsim"
)

// rpcRetryBudget bounds transmissions per logical request.
const rpcRetryBudget = 8

// call wraps Node.Call with retry-on-timeout and at-most-once dedup.
func (m *Manager) call(to SiteID, method string, payload any) (any, error) {
	seq := m.node.NextSeq()
	clk := m.node.Network().Clock()
	var err error
	for attempt := 0; attempt < rpcRetryBudget; attempt++ {
		var v any
		v, err = m.node.CallSeq(to, method, payload, seq) //locusvet:allow rawcall // the one legitimate raw transport use in proc
		if err == nil || !errors.Is(err, netsim.ErrTimeout) {
			return v, err
		}
		clk.Backoff(attempt)
	}
	return nil, err
}

// cast wraps Node.Cast with retry-on-timeout (proc one-ways carry
// absolute state and are idempotent).
func (m *Manager) cast(to SiteID, method string, payload any) error {
	clk := m.node.Network().Clock()
	var err error
	for attempt := 0; attempt < rpcRetryBudget; attempt++ {
		err = m.node.Cast(to, method, payload) //locusvet:allow rawcall // see call
		if err == nil || !errors.Is(err, netsim.ErrTimeout) {
			return err
		}
		clk.Backoff(attempt)
	}
	return err
}
