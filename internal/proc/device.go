package proc

import (
	"fmt"
	"strconv"

	"repro/internal/fs"
	"repro/internal/storage"
)

// Transparent remote devices (§2.4.2): "LOCUS provides for transparent
// use of remote devices in most cases. This functionality is
// exceedingly valuable." A device special file in the catalog names a
// hosting site and a driver; opening it from any site yields a handle
// whose reads and writes are serviced by the driver at the hosting
// site. (The paper's one exception — raw non-character devices — is
// an exception here too: only character-stream drivers exist.)

// DeviceDriver is a site-local character device implementation.
type DeviceDriver interface {
	// DevRead returns up to max bytes from the device.
	DevRead(max int) ([]byte, error)
	// DevWrite consumes data, returning the count accepted.
	DevWrite(data []byte) (int, error)
}

const (
	mDevRead  = "proc.devread"
	mDevWrite = "proc.devwrite"
)

type devReadReq struct {
	Name string
	Max  int
}

type devReadResp struct {
	Data []byte
}

// WireSize charges the moved bytes.
func (r *devReadResp) WireSize() int { return len(r.Data) + 16 }

type devWriteReq struct {
	Name string
	Data []byte
}

// WireSize charges the moved bytes.
func (r *devWriteReq) WireSize() int { return len(r.Data) + 16 }

type devWriteResp struct {
	N int
}

// RegisterDevice installs a driver at this site under a name referenced
// by Mknod device files.
func (m *Manager) RegisterDevice(name string, d DeviceDriver) {
	m.devMu.Lock()
	if m.devices == nil {
		m.devices = make(map[string]DeviceDriver)
	}
	m.devices[name] = d
	m.devMu.Unlock()
}

func (m *Manager) driver(name string) (DeviceDriver, bool) {
	m.devMu.Lock()
	defer m.devMu.Unlock()
	d, ok := m.devices[name]
	return d, ok
}

// DeviceHandle is a process's handle on a (possibly remote) device.
type DeviceHandle struct {
	m    *Manager
	host SiteID
	name string
}

// Host returns the device's hosting site.
func (d *DeviceHandle) Host() SiteID { return d.host }

// OpenDevice resolves a device special file and returns a handle
// routing I/O to the hosting site's driver.
func (m *Manager) OpenDevice(p *Process, path string) (*DeviceHandle, error) {
	r, err := m.kernel.Resolve(p.cred, path)
	if err != nil {
		// The name's CSS or storage site being gone is a §5.6 site
		// failure, not a bad pathname.
		return nil, wrapFsSiteErr(err)
	}
	if r.Type != storage.TypeDevice {
		return nil, fmt.Errorf("proc: %s is not a device", path)
	}
	f, err := m.kernel.OpenID(r.ID, fs.ModeInternal)
	if err != nil {
		return nil, wrapFsSiteErr(err)
	}
	ino := f.Inode()
	f.Close() //locus:vet-allow uncheckedcall internal close
	hostStr := ino.Annotations[fs.DevSiteAnnotation]
	name := ino.Annotations[fs.DevNameAnnotation]
	host, err := strconv.Atoi(hostStr)
	if err != nil || name == "" {
		return nil, fmt.Errorf("proc: %s has no device binding", path)
	}
	return &DeviceHandle{m: m, host: SiteID(host), name: name}, nil
}

// Read reads from the device; the request travels to the hosting site
// if the device is remote, with identical semantics either way.
func (d *DeviceHandle) Read(max int) ([]byte, error) {
	req := &devReadReq{Name: d.name, Max: max}
	var resp any
	var err error
	if d.host == d.m.site {
		resp, err = d.m.handleDevRead(d.m.site, req)
	} else {
		resp, err = d.m.call(d.host, mDevRead, req)
	}
	if err != nil {
		return nil, wrapSiteErr(err, d.host)
	}
	return resp.(*devReadResp).Data, nil
}

// Write writes to the device.
func (d *DeviceHandle) Write(data []byte) (int, error) {
	req := &devWriteReq{Name: d.name, Data: append([]byte(nil), data...)}
	var resp any
	var err error
	if d.host == d.m.site {
		resp, err = d.m.handleDevWrite(d.m.site, req)
	} else {
		resp, err = d.m.call(d.host, mDevWrite, req)
	}
	if err != nil {
		return 0, wrapSiteErr(err, d.host)
	}
	return resp.(*devWriteResp).N, nil
}

func (m *Manager) handleDevRead(_ SiteID, p any) (any, error) {
	req := p.(*devReadReq)
	d, ok := m.driver(req.Name)
	if !ok {
		return nil, fmt.Errorf("proc: no device %q at site %d", req.Name, m.site)
	}
	data, err := d.DevRead(req.Max)
	if err != nil {
		return nil, err
	}
	return &devReadResp{Data: data}, nil
}

func (m *Manager) handleDevWrite(_ SiteID, p any) (any, error) {
	req := p.(*devWriteReq)
	d, ok := m.driver(req.Name)
	if !ok {
		return nil, fmt.Errorf("proc: no device %q at site %d", req.Name, m.site)
	}
	n, err := d.DevWrite(req.Data)
	if err != nil {
		return nil, err
	}
	return &devWriteResp{N: n}, nil
}
