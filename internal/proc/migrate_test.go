package proc_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/proc"
)

// migrateFixture: shell at site 1, a sitter started at site 1, sitter
// registered everywhere.
func migrateFixture(t *testing.T) (*harness, *proc.Process, proc.PID) {
	t.Helper()
	h := newHarness(t, 3)
	installModule(t, h.c.K(1), "/sit", "sit")
	h.c.Settle()
	for _, s := range h.c.Sites() {
		h.mgrs[s].Register("sit", func(ctx *proc.Ctx) int {
			<-ctx.Signals()
			return 0
		})
	}
	shell := h.mgrs[1].InitProcess(cred())
	pid, err := h.mgrs[1].Run(shell, "/sit", nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, shell, pid
}

func TestMigrateSignalFollowsAndWaitGetsStatus(t *testing.T) {
	h, shell, pid := migrateFixture(t)
	stCh := make(chan proc.ExitStatus, 1)
	go func() { stCh <- h.mgrs[1].Wait(shell, pid) }()
	time.Sleep(10 * time.Millisecond)

	p, ok := h.mgrs[1].Process(pid.Num)
	if !ok {
		t.Fatal("no process")
	}
	if err := h.mgrs[1].Migrate(p, 2); err != nil {
		t.Fatal(err)
	}
	// The PID is unchanged and the origin forwards: a signal addressed
	// to the origin reaches the incarnation at site 2.
	if err := h.mgrs[3].Signal(pid, proc.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-stCh:
		if st.Code != 0 || st.Err != nil {
			t.Fatalf("wait after migrate = %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait never saw the migrant's exit")
	}
	h.mgrs[1].DrainPrograms()
	h.mgrs[2].DrainPrograms()
	if n := len(h.mgrs[2].LivePIDs()); n != 0 {
		t.Fatalf("migrant leaked at host: %d live", n)
	}
}

func TestMigrateHostCrashFailsWaitWithSiteFailed(t *testing.T) {
	h, shell, pid := migrateFixture(t)
	stCh := make(chan proc.ExitStatus, 1)
	go func() { stCh <- h.mgrs[1].Wait(shell, pid) }()
	time.Sleep(10 * time.Millisecond)

	p, _ := h.mgrs[1].Process(pid.Num)
	if err := h.mgrs[1].Migrate(p, 2); err != nil {
		t.Fatal(err)
	}
	h.c.Crash(2)
	up := []proc.SiteID{1, 3}
	for _, s := range up {
		h.mgrs[s].CleanupAfterPartitionChange(up)
	}
	select {
	case st := <-stCh:
		if !errors.Is(st.Err, proc.ErrSiteFailed) {
			t.Fatalf("wait after host crash = %+v, want ErrSiteFailed", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wait hung after the migrant's host crashed")
	}
}

func TestMigrateOriginCrashKillsMigrant(t *testing.T) {
	h := newHarness(t, 3)
	installModule(t, h.c.K(1), "/sit", "sit")
	h.c.Settle()
	for _, s := range h.c.Sites() {
		h.mgrs[s].Register("sit", func(ctx *proc.Ctx) int {
			<-ctx.Signals()
			return 0
		})
	}
	// Origin at site 2, so the shell's site survives.
	shell2 := h.mgrs[2].InitProcess(cred())
	pid, err := h.mgrs[2].Run(shell2, "/sit", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := h.mgrs[2].Process(pid.Num)
	if err := h.mgrs[2].Migrate(p, 3); err != nil {
		t.Fatal(err)
	}
	h.c.Crash(2)
	up := []proc.SiteID{1, 3}
	for _, s := range up {
		h.mgrs[s].CleanupAfterPartitionChange(up)
	}
	// Home-site failure kills the migrant: no incarnation may survive
	// the name authority.
	h.mgrs[3].DrainPrograms()
	if n := len(h.mgrs[3].LivePIDs()); n != 0 {
		t.Fatalf("migrant survived origin crash: %d live", n)
	}
}
