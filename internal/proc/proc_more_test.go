package proc_test

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/storage"
)

func TestRunPassesArguments(t *testing.T) {
	h := newHarness(t, 1)
	installModule(t, h.c.K(1), "/argtest", "argtest")
	got := make(chan []string, 1)
	h.mgrs[1].Register("argtest", func(ctx *proc.Ctx) int {
		got <- ctx.Args
		return 0
	})
	shell := h.mgrs[1].InitProcess(cred())
	pid, err := h.mgrs[1].Run(shell, "/argtest", []string{"-v", "target"})
	if err != nil {
		t.Fatal(err)
	}
	if st := h.mgrs[1].Wait(shell, pid); st.Code != 0 {
		t.Fatalf("status %+v", st)
	}
	args := <-got
	if len(args) != 3 || args[0] != "/argtest" || args[1] != "-v" || args[2] != "target" {
		t.Fatalf("args = %v", args)
	}
}

func TestExecRunsInCallingProcess(t *testing.T) {
	h := newHarness(t, 1)
	installModule(t, h.c.K(1), "/tool", "tool")
	h.mgrs[1].Register("tool", func(ctx *proc.Ctx) int { return 42 })
	shell := h.mgrs[1].InitProcess(cred())
	code, err := h.mgrs[1].Exec(shell, "/tool", nil)
	if err != nil || code != 42 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}

func TestEnvironmentShipsWithRun(t *testing.T) {
	h := newHarness(t, 2)
	installModule(t, h.c.K(1), "/envy", "envy")
	h.c.Settle()
	got := make(chan string, 1)
	h.mgrs[2].Register("envy", func(ctx *proc.Ctx) int {
		got <- ctx.Env["TERM"]
		return 0
	})
	shell := h.mgrs[1].InitProcess(cred())
	// Environment is inherited from the parent process.
	child, err := h.mgrs[1].Fork(shell, func(ctx *proc.Ctx) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	h.mgrs[1].Wait(shell, child.PID())
	// Run at site 2 with an explicit env via a process created there.
	p := h.mgrs[1].InitProcess(cred())
	p.SetAdvice(2)
	_ = p
	// Simplest: environment flows through runReq from the parent.
	shell.SetAdvice(2)
	pid, err := h.mgrs[1].Run(shell, "/envy", nil)
	if err != nil {
		t.Fatal(err)
	}
	h.mgrs[1].Wait(shell, pid)
	select {
	case v := <-got:
		_ = v // shell had no env: empty is correct; the channel proves delivery
	case <-time.After(time.Second):
		t.Fatal("program did not run")
	}
}

func TestSignalToUnknownProcess(t *testing.T) {
	h := newHarness(t, 2)
	err := h.mgrs[1].Signal(proc.PID{Site: 2, Num: 999}, proc.SIGTERM)
	if !errors.Is(err, proc.ErrNoProcess) {
		t.Fatalf("err = %v", err)
	}
}

func TestWaitForUnknownLocalChild(t *testing.T) {
	h := newHarness(t, 1)
	shell := h.mgrs[1].InitProcess(cred())
	st := h.mgrs[1].Wait(shell, proc.PID{Site: 1, Num: 12345})
	if !errors.Is(st.Err, proc.ErrNoProcess) {
		t.Fatalf("st = %+v", st)
	}
}

func TestPipeMultipleWritersEOFAfterLastClose(t *testing.T) {
	h := newHarness(t, 3)
	if err := h.c.K(1).Mkfifo(cred(), "/p", 0644); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	pr := h.mgrs[1].InitProcess(cred())
	r, err := h.mgrs[1].OpenPipe(pr, "/p", false)
	if err != nil {
		t.Fatal(err)
	}
	var writers []*proc.PipeEnd
	for _, s := range []proc.SiteID{2, 3} {
		p := h.mgrs[s].InitProcess(cred())
		w, err := h.mgrs[s].OpenPipe(p, "/p", true)
		if err != nil {
			t.Fatal(err)
		}
		writers = append(writers, w)
	}
	done := make(chan int, 1)
	go func() {
		total := 0
		for {
			b, err := r.Read(16)
			if err == io.EOF {
				done <- total
				return
			}
			if err != nil {
				done <- -1
				return
			}
			total += len(b)
		}
	}()
	for i, w := range writers {
		if err := w.Write([]byte(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Closing ONE writer must not deliver EOF.
	if err := writers[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := writers[1].Write([]byte("zz")); err != nil {
		t.Fatal(err)
	}
	if err := writers[1].Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case total := <-done:
		if total != 6 {
			t.Fatalf("reader got %d bytes, want 6", total)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no EOF after last writer closed")
	}
}

func TestSharedFDWriteOffsetsInterleave(t *testing.T) {
	h := newHarness(t, 2)
	f, err := h.c.K(1).Create(cred(), "/log", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()

	p1 := h.mgrs[1].InitProcess(cred())
	fd1, _, err := h.mgrs[1].OpenShared(p1, "/log", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential appends through the shared offset from one site (a
	// second concurrent writer would violate the single-writer open
	// policy, which the paper's token scheme rides on top of).
	for i := 0; i < 4; i++ {
		if _, err := fd1.Write([]byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if off := fd1.Offset(); off != 4 {
		t.Fatalf("offset = %d", off)
	}
	if err := fd1.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := h.c.K(1).Open(cred(), "/log", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close() //nolint:errcheck
	d, _ := g.ReadAll()
	if string(d) != "0123" {
		t.Fatalf("log = %q", d)
	}
}

func TestManyProcessesAcrossSites(t *testing.T) {
	h := newHarness(t, 4)
	installModule(t, h.c.K(1), "/worker", "worker")
	h.c.Settle()
	var counter struct {
		mu sync.Mutex
		n  int
	}
	for _, s := range h.c.Sites() {
		h.mgrs[s].Register("worker", func(*proc.Ctx) int {
			counter.mu.Lock()
			counter.n++
			counter.mu.Unlock()
			return 0
		})
	}
	shell := h.mgrs[1].InitProcess(cred())
	var pids []proc.PID
	for i := 0; i < 20; i++ {
		shell.SetAdvice(proc.SiteID(1 + i%4))
		pid, err := h.mgrs[1].Run(shell, "/worker", nil)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, pid)
	}
	for _, pid := range pids {
		if st := h.mgrs[1].Wait(shell, pid); st.Code != 0 || st.Err != nil {
			t.Fatalf("pid %v: %+v", pid, st)
		}
	}
	counter.mu.Lock()
	defer counter.mu.Unlock()
	if counter.n != 20 {
		t.Fatalf("ran %d workers", counter.n)
	}
}
