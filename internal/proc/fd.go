package proc

import (
	"fmt"
	"sync"

	"repro/internal/fs"
)

// Shared open-file descriptors (§3.1 footnote): "To implement this
// functionality across the network we keep a file descriptor at each
// site, with only one valid at any time, using a token scheme to
// determine which file descriptor is currently valid."
//
// Every shared descriptor has a home site (where it was first opened).
// The home tracks which site currently holds the token; the token
// travels with the authoritative file offset. A site reads or writes
// through the descriptor only while holding the token (§3.2: "access
// to a resource requires the token").

// fdHome is the home site's record of a shared descriptor.
type fdHome struct {
	id     int
	holder SiteID
}

// fdState is the per-site state of a shared descriptor; processes on
// one site sharing the descriptor (fork) share one fdState.
type fdState struct {
	mu       sync.Mutex
	m        *Manager
	homeSite SiteID
	homeID   int
	file     *fs.File
	offset   int64
	hasToken bool
	refs     int
	closed   bool
}

// FD is a process's handle on a shared descriptor.
type FD struct {
	s *fdState
}

type fdTokenReq struct {
	ID        int
	Requester SiteID
}

type fdTokenResp struct {
	Offset int64
}

type fdYankReq struct {
	ID int
}

type fdYankResp struct {
	Offset int64
}

// OpenShared opens path and wraps it in a shared-offset descriptor
// homed at this site. It is installed in the process's descriptor
// table.
func (m *Manager) OpenShared(p *Process, path string, mode fs.OpenMode) (*FD, int, error) {
	f, err := m.kernel.Open(p.cred, path, mode)
	if err != nil {
		// A lost CSS/storage site surfaces as a §5.6 site failure, not a
		// raw fs sentinel.
		return nil, 0, wrapFsSiteErr(err)
	}
	m.mu.Lock()
	m.nextFDID++
	id := m.nextFDID
	m.fdHomes[id] = &fdHome{id: id, holder: m.site}
	m.mu.Unlock()
	s := &fdState{
		m: m, homeSite: m.site, homeID: id,
		file: f, hasToken: true, refs: 1,
	}
	m.registerLocalState(s)
	fd := &FD{s: s}
	num := p.installFD(fd)
	return fd, num, nil
}

// AttachShared joins an existing shared descriptor from another site:
// this site opens its own file descriptor, valid only while it holds
// the token.
func (m *Manager) AttachShared(p *Process, homeSite SiteID, homeID int, path string, mode fs.OpenMode) (*FD, int, error) {
	f, err := m.kernel.Open(p.cred, path, mode)
	if err != nil {
		return nil, 0, wrapFsSiteErr(err)
	}
	s := &fdState{
		m: m, homeSite: homeSite, homeID: homeID,
		file: f, hasToken: false, refs: 1,
	}
	m.registerLocalState(s)
	fd := &FD{s: s}
	num := p.installFD(fd)
	return fd, num, nil
}

func (p *Process) installFD(fd *FD) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextFD++
	p.fds[p.nextFD] = fd
	return p.nextFD
}

// FD returns the process's descriptor by number.
func (p *Process) FD(num int) (*FD, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fd, ok := p.fds[num]
	return fd, ok
}

// HomeID returns the descriptor's home site and id (for AttachShared on
// another site).
func (fd *FD) HomeID() (SiteID, int) { return fd.s.homeSite, fd.s.homeID }

// share adds a reference (fork sharing on the same site).
func (fd *FD) share() *FD {
	fd.s.mu.Lock()
	fd.s.refs++
	fd.s.mu.Unlock()
	return &FD{s: fd.s}
}

// fetchToken obtains the token (and live offset) from the home site.
// Called without s.mu held — token negotiation crosses the network.
func (s *fdState) fetchToken() (int64, error) {
	m := s.m
	var resp any
	var err error
	req := &fdTokenReq{ID: s.homeID, Requester: m.site}
	if s.homeSite == m.site {
		resp, err = m.handleFDToken(m.site, req)
	} else {
		resp, err = m.call(s.homeSite, mFDToken, req)
	}
	if err != nil {
		// Token negotiation failing because the home site is gone is the
		// §5.6 "site failed" row, not a raw transport error.
		return 0, wrapSiteErr(err, s.homeSite)
	}
	return resp.(*fdTokenResp).Offset, nil
}

// handleFDToken runs at the home site: yank the token from the current
// holder (retrieving the live offset) and grant it to the requester.
func (m *Manager) handleFDToken(_ SiteID, p any) (any, error) {
	req := p.(*fdTokenReq)
	m.mu.Lock()
	home := m.fdHomes[req.ID]
	m.mu.Unlock()
	if home == nil {
		return nil, fmt.Errorf("proc: no shared descriptor %d at site %d", req.ID, m.site)
	}
	var offset int64
	holder := home.holder
	switch holder {
	case req.Requester:
		// Already the holder (re-request after a local race).
		return &fdTokenResp{Offset: 0}, fmt.Errorf("proc: site %d already holds token %d", req.Requester, req.ID)
	case m.site:
		// We hold it locally: release from our fdState.
		offset = m.yankLocal(req.ID)
	default:
		resp, err := m.call(holder, mFDYank, &fdYankReq{ID: req.ID})
		if err != nil {
			// Holder unreachable: the token is lost with it; regenerate
			// at the requester with the home's last-known offset (0 —
			// LOCUS regenerates tokens during cleanup).
			offset = 0
		} else {
			offset = resp.(*fdYankResp).Offset
		}
	}
	home.holder = req.Requester
	return &fdTokenResp{Offset: offset}, nil
}

// yankLocal strips the token from whatever local fdState holds it.
// TryLock skips states busy in their own token negotiation (they
// cannot be holding the token).
func (m *Manager) yankLocal(id int) int64 {
	m.mu.Lock()
	states := m.localFDStates
	m.mu.Unlock()
	for _, s := range states {
		if s.homeID != id {
			continue
		}
		if !s.mu.TryLock() {
			continue
		}
		off := s.offset
		had := s.hasToken
		s.hasToken = false
		s.mu.Unlock()
		if had {
			return off
		}
	}
	return 0
}

func (m *Manager) handleFDYank(_ SiteID, p any) (any, error) {
	req := p.(*fdYankReq)
	return &fdYankResp{Offset: m.yankLocal(req.ID)}, nil
}

// registerLocalState lets the manager find fdStates for token yanks.
func (m *Manager) registerLocalState(s *fdState) {
	m.mu.Lock()
	m.localFDStates = append(m.localFDStates, s)
	m.mu.Unlock()
}

// Read reads from the shared descriptor at the shared offset, advancing
// it. The token is acquired first; "in the worst case, performance is
// limited by the speed at which the tokens ... can be flipped back and
// forth" (§3.2).
func (fd *FD) Read(buf []byte) (int, error) {
	return fd.io(func(s *fdState) (int, error) {
		n, err := s.file.ReadAt(buf, s.offset)
		s.offset += int64(n)
		return n, err
	})
}

// Write writes at the shared offset, advancing it.
func (fd *FD) Write(data []byte) (int, error) {
	return fd.io(func(s *fdState) (int, error) {
		n, err := s.file.WriteAt(data, s.offset)
		s.offset += int64(n)
		return n, err
	})
}

// io performs one descriptor operation under the token.
func (fd *FD) io(op func(*fdState) (int, error)) (int, error) {
	s := fd.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, fs.ErrClosed
	}
	if s.hasToken {
		defer s.mu.Unlock()
		return op(s)
	}
	s.mu.Unlock()
	// Token negotiation happens without the state lock (the home may
	// need to yank from another descriptor on this very site).
	off, err := s.fetchToken()
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fs.ErrClosed
	}
	s.offset = off
	s.hasToken = true
	return op(s)
}

// Offset returns the descriptor's view of the shared offset (only
// authoritative while holding the token).
func (fd *FD) Offset() int64 {
	fd.s.mu.Lock()
	defer fd.s.mu.Unlock()
	return fd.s.offset
}

// Close drops a reference; the underlying file closes with the last
// one.
func (fd *FD) Close() error {
	s := fd.s
	s.mu.Lock()
	s.refs--
	last := s.refs == 0 && !s.closed
	if last {
		s.closed = true
	}
	s.mu.Unlock()
	if last {
		// The final close can cross the network (remote storage site);
		// classify its failure like every other proc-layer site error.
		return wrapFsSiteErr(s.file.Close())
	}
	return nil
}
