package proc_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// printer is a toy character device driver: writes accumulate, reads
// drain a preloaded tape.
type printer struct {
	mu   sync.Mutex
	out  bytes.Buffer
	tape []byte
}

func (p *printer) DevRead(max int) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if max <= 0 || max > len(p.tape) {
		max = len(p.tape)
	}
	out := p.tape[:max]
	p.tape = p.tape[max:]
	return append([]byte(nil), out...), nil
}

func (p *printer) DevWrite(data []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.Write(data)
}

func TestRemoteDeviceTransparentAccess(t *testing.T) {
	h := newHarness(t, 3)
	// The line printer hangs off site 3.
	lp := &printer{tape: []byte("status: ready")}
	h.mgrs[3].RegisterDevice("lp0", lp)
	if err := h.c.K(1).Mknod(cred(), "/dev-lp", 3, "lp0", 0666); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()

	// A process at site 2 opens and uses it with no knowledge of where
	// it is (§2.4.2).
	p2 := h.mgrs[2].InitProcess(cred())
	dev, err := h.mgrs[2].OpenDevice(p2, "/dev-lp")
	if err != nil {
		t.Fatal(err)
	}
	if dev.Host() != 3 {
		t.Fatalf("host = %d", dev.Host())
	}
	if n, err := dev.Write([]byte("hello printer\n")); err != nil || n != 14 {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	status, err := dev.Read(64)
	if err != nil || string(status) != "status: ready" {
		t.Fatalf("read: %q %v", status, err)
	}
	lp.mu.Lock()
	got := lp.out.String()
	lp.mu.Unlock()
	if got != "hello printer\n" {
		t.Fatalf("printer received %q", got)
	}

	// Local access uses the same path with zero messages.
	p3 := h.mgrs[3].InitProcess(cred())
	devLocal, err := h.mgrs[3].OpenDevice(p3, "/dev-lp")
	if err != nil {
		t.Fatal(err)
	}
	before := h.c.Net.Stats()
	if _, err := devLocal.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := h.c.Net.Stats().Sub(before); d.Msgs != 0 {
		t.Fatalf("local device write cost %d messages", d.Msgs)
	}
}

func TestDeviceErrors(t *testing.T) {
	h := newHarness(t, 2)
	p1 := h.mgrs[1].InitProcess(cred())
	// Not a device.
	installModule(t, h.c.K(1), "/file", "x")
	if _, err := h.mgrs[1].OpenDevice(p1, "/file"); err == nil {
		t.Fatal("OpenDevice of a regular file should fail")
	}
	// Device with no driver registered at the host.
	if err := h.c.K(1).Mknod(cred(), "/dev-ghost", 2, "ghost", 0666); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	dev, err := h.mgrs[1].OpenDevice(p1, "/dev-ghost")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Read(1); err == nil || !strings.Contains(err.Error(), "no device") {
		t.Fatalf("read from ghost device: %v", err)
	}
	// Device at a crashed site.
	h.mgrs[2].RegisterDevice("real", &printer{})
	if err := h.c.K(1).Mknod(cred(), "/dev-real", 2, "real", 0666); err != nil {
		t.Fatal(err)
	}
	h.c.Settle()
	dev2, err := h.mgrs[1].OpenDevice(p1, "/dev-real")
	if err != nil {
		t.Fatal(err)
	}
	h.c.Crash(2)
	if _, err := dev2.Write([]byte("x")); err == nil {
		t.Fatal("write to device at crashed site should fail")
	}
}
