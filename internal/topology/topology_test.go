package topology

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

type testNet struct {
	nw   *netsim.Network
	mgrs map[SiteID]*Manager
	all  []SiteID
}

func newNet(t *testing.T, n int) *testNet {
	t.Helper()
	nw := netsim.New(netsim.DefaultCosts())
	t.Cleanup(nw.Close)
	tn := &testNet{nw: nw, mgrs: make(map[SiteID]*Manager)}
	for i := 1; i <= n; i++ {
		tn.all = append(tn.all, SiteID(i))
	}
	for _, s := range tn.all {
		tn.mgrs[s] = New(nw.AddSite(s), tn.all)
	}
	return tn
}

func (tn *testNet) assertConverged(t *testing.T, want map[SiteID][]SiteID) {
	t.Helper()
	for s, p := range want {
		got := tn.mgrs[s].Partition()
		if !equalSets(got, sortedCopy(p)) {
			t.Errorf("site %d partition = %v, want %v", s, got, p)
		}
	}
}

func TestPartitionProtocolDetectsSplit(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 5)
	tn.nw.PartitionGroups([]SiteID{1, 2, 3}, []SiteID{4, 5})

	p := tn.mgrs[1].RunPartitionProtocol()
	if !equalSets(p, []SiteID{1, 2, 3}) {
		t.Fatalf("partition = %v, want [1 2 3]", p)
	}
	p = tn.mgrs[4].RunPartitionProtocol()
	if !equalSets(p, []SiteID{4, 5}) {
		t.Fatalf("partition = %v, want [4 5]", p)
	}
	tn.assertConverged(t, map[SiteID][]SiteID{
		1: {1, 2, 3}, 2: {1, 2, 3}, 3: {1, 2, 3},
		4: {4, 5}, 5: {4, 5},
	})
}

func TestPartitionProtocolSingleSite(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 3)
	tn.nw.PartitionGroups([]SiteID{1}, []SiteID{2, 3})
	p := tn.mgrs[1].RunPartitionProtocol()
	if !equalSets(p, []SiteID{1}) {
		t.Fatalf("partition = %v, want [1]", p)
	}
}

func TestPartitionProtocolAfterCrash(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 4)
	tn.nw.Crash(3)
	p := tn.mgrs[1].RunPartitionProtocol()
	if !equalSets(p, []SiteID{1, 2, 4}) {
		t.Fatalf("partition = %v, want [1 2 4]", p)
	}
	tn.assertConverged(t, map[SiteID][]SiteID{
		1: {1, 2, 4}, 2: {1, 2, 4}, 4: {1, 2, 4},
	})
}

func TestMergeProtocolJoinsPartitions(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 5)
	tn.nw.PartitionGroups([]SiteID{1, 2}, []SiteID{3, 4, 5})
	tn.mgrs[1].RunPartitionProtocol()
	tn.mgrs[3].RunPartitionProtocol()

	// Heal the wire and merge.
	tn.nw.HealAll()
	p, err := tn.mgrs[1].RunMergeProtocol()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(p, []SiteID{1, 2, 3, 4, 5}) {
		t.Fatalf("merged partition = %v", p)
	}
	tn.assertConverged(t, map[SiteID][]SiteID{
		1: {1, 2, 3, 4, 5}, 2: {1, 2, 3, 4, 5}, 3: {1, 2, 3, 4, 5},
		4: {1, 2, 3, 4, 5}, 5: {1, 2, 3, 4, 5},
	})
}

func TestMergeSkipsDownSites(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 4)
	tn.nw.Crash(4)
	p, err := tn.mgrs[2].RunMergeProtocol()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(p, []SiteID{1, 2, 3}) {
		t.Fatalf("merged partition = %v, want [1 2 3]", p)
	}
}

func TestMergeArbitrationLowerSiteWins(t *testing.T) {
	t.Parallel()
	// When two sites try to merge concurrently, the lower-numbered one
	// proceeds; the higher is declined.
	tn := newNet(t, 3)
	// Site 1 is mid-merge (simulate by setting its stage).
	tn.mgrs[1].mu.Lock()
	tn.mgrs[1].stage = StageMerge
	tn.mgrs[1].active = 1
	tn.mgrs[1].mu.Unlock()

	_, err := tn.mgrs[3].RunMergeProtocol()
	if !errors.Is(err, ErrDeclined) {
		t.Fatalf("higher-numbered merge: err = %v, want ErrDeclined", err)
	}
	// The lower-numbered site's merge succeeds and re-absorbs site 3.
	p, err := tn.mgrs[1].RunMergeProtocol()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(p, []SiteID{1, 2, 3}) {
		t.Fatalf("partition = %v", p)
	}
}

func TestMergeArbitrationYieldsToLowerInitiator(t *testing.T) {
	t.Parallel()
	// A merging active site polled by a LOWER-numbered initiator halts
	// its own merge and follows.
	tn := newNet(t, 3)
	tn.mgrs[3].mu.Lock()
	tn.mgrs[3].stage = StageMerge
	tn.mgrs[3].active = 3
	tn.mgrs[3].mu.Unlock()

	p, err := tn.mgrs[1].RunMergeProtocol()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(p, []SiteID{1, 2, 3}) {
		t.Fatalf("partition = %v", p)
	}
	st, active := tn.mgrs[3].Stage()
	if st != StageNormal || active != 0 {
		t.Fatalf("site 3 stage %v active %d after install", st, active)
	}
}

func TestOnChangeCallbackFires(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 3)
	var mu sync.Mutex
	calls := make(map[SiteID][][]SiteID)
	for s, m := range tn.mgrs {
		s := s
		m.OnChange(func(p []SiteID) {
			mu.Lock()
			calls[s] = append(calls[s], p)
			mu.Unlock()
		})
	}
	tn.nw.PartitionGroups([]SiteID{1, 2}, []SiteID{3})
	tn.mgrs[1].RunPartitionProtocol()
	mu.Lock()
	defer mu.Unlock()
	if len(calls[1]) == 0 || len(calls[2]) == 0 {
		t.Fatalf("callbacks: %v", calls)
	}
	last := calls[1][len(calls[1])-1]
	if !equalSets(last, []SiteID{1, 2}) {
		t.Fatalf("site 1 last change = %v", last)
	}
}

func TestCheckActiveRestartsOnActiveFailure(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 3)
	// Site 2 is passively following site 3 in a partition protocol.
	tn.mgrs[2].mu.Lock()
	tn.mgrs[2].stage = StagePartition
	tn.mgrs[2].active = 3
	tn.mgrs[2].mu.Unlock()
	tn.nw.Crash(3)

	if !tn.mgrs[2].CheckActive() {
		t.Fatal("CheckActive should have restarted the protocol")
	}
	p := tn.mgrs[2].Partition()
	if !equalSets(p, []SiteID{1, 2}) {
		t.Fatalf("partition after restart = %v, want [1 2]", p)
	}
	st, _ := tn.mgrs[2].Stage()
	if st != StageNormal {
		t.Fatalf("stage = %v, want normal", st)
	}
}

func TestCheckActiveNoRestartWhenHealthy(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 2)
	tn.mgrs[2].mu.Lock()
	tn.mgrs[2].stage = StagePartition
	tn.mgrs[2].active = 1
	tn.mgrs[2].mu.Unlock()
	tn.mgrs[1].mu.Lock()
	tn.mgrs[1].stage = StagePartition
	tn.mgrs[1].active = 1
	tn.mgrs[1].mu.Unlock()
	if tn.mgrs[2].CheckActive() {
		t.Fatal("CheckActive restarted despite healthy active site")
	}
}

func TestGenerationMonotonic(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 3)
	g0 := tn.mgrs[1].Generation()
	tn.nw.PartitionGroups([]SiteID{1, 2}, []SiteID{3})
	tn.mgrs[1].RunPartitionProtocol()
	g1 := tn.mgrs[1].Generation()
	if g1 <= g0 {
		t.Fatalf("generation did not advance: %d -> %d", g0, g1)
	}
	tn.nw.HealAll()
	if _, err := tn.mgrs[1].RunMergeProtocol(); err != nil {
		t.Fatal(err)
	}
	if g2 := tn.mgrs[1].Generation(); g2 <= g1 {
		t.Fatalf("generation did not advance on merge: %d -> %d", g1, g2)
	}
}

func TestRepeatedSplitMergeCycles(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 6)
	for cycle := 0; cycle < 5; cycle++ {
		tn.nw.PartitionGroups([]SiteID{1, 2, 3}, []SiteID{4, 5, 6})
		tn.mgrs[1].RunPartitionProtocol()
		tn.mgrs[4].RunPartitionProtocol()
		tn.assertConverged(t, map[SiteID][]SiteID{1: {1, 2, 3}, 4: {4, 5, 6}})
		tn.nw.HealAll()
		if _, err := tn.mgrs[1].RunMergeProtocol(); err != nil {
			t.Fatal(err)
		}
		tn.assertConverged(t, map[SiteID][]SiteID{
			1: {1, 2, 3, 4, 5, 6}, 6: {1, 2, 3, 4, 5, 6},
		})
	}
}

// Property: for any random transitive grouping, running the partition
// protocol at one site per group converges every site's table to its
// group ("all sites converge on the same answer in a rapid manner").
func TestPropertyPartitionConvergence(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nw := netsim.New(netsim.DefaultCosts())
		defer nw.Close()
		const n = 7
		var all []SiteID
		mgrs := make(map[SiteID]*Manager)
		for i := 1; i <= n; i++ {
			all = append(all, SiteID(i))
		}
		for _, s := range all {
			mgrs[s] = New(nw.AddSite(s), all)
		}
		// Random split into up to 3 groups.
		var groups [3][]SiteID
		for _, s := range all {
			g := r.Intn(3)
			groups[g] = append(groups[g], s)
		}
		var nonEmpty [][]SiteID
		for _, g := range groups {
			if len(g) > 0 {
				nonEmpty = append(nonEmpty, g)
			}
		}
		nw.PartitionGroups(nonEmpty...)
		for _, g := range nonEmpty {
			mgrs[g[0]].RunPartitionProtocol()
		}
		for _, g := range nonEmpty {
			want := sortedCopy(g)
			for _, s := range g {
				if !equalSets(mgrs[s].Partition(), want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the announced partition is always a clique of the physical
// connectivity (fully-connected subnetwork), even when the underlying
// links are not transitive.
func TestPropertyPartitionIsClique(t *testing.T) {
	t.Parallel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nw := netsim.New(netsim.DefaultCosts())
		defer nw.Close()
		const n = 6
		var all []SiteID
		mgrs := make(map[SiteID]*Manager)
		for i := 1; i <= n; i++ {
			all = append(all, SiteID(i))
		}
		for _, s := range all {
			mgrs[s] = New(nw.AddSite(s), all)
		}
		// Random, possibly non-transitive link failures.
		for i := 1; i <= n; i++ {
			for j := i + 1; j <= n; j++ {
				if r.Intn(3) == 0 {
					nw.SetLink(SiteID(i), SiteID(j), false)
				}
			}
		}
		nw.Quiesce() // let link-down observations land in the site tables
		initiator := SiteID(1 + r.Intn(n))
		p := mgrs[initiator].RunPartitionProtocol()
		for i, a := range p {
			for _, b := range p[i+1:] {
				if !nw.Connected(a, b) {
					return false
				}
			}
		}
		return contains(p, initiator)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
