package topology

import (
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestAutoReconfigurationOnLinkFailure(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 4)
	for _, m := range tn.mgrs {
		m.EnableAutoReconfiguration()
	}
	tn.nw.PartitionGroups([]SiteID{1, 2}, []SiteID{3, 4})
	// Auto mode: the link-down observations trigger the partition
	// protocol without any explicit call.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tn.nw.Quiesce()
		ok := equalSets(tn.mgrs[1].Partition(), []SiteID{1, 2}) &&
			equalSets(tn.mgrs[3].Partition(), []SiteID{3, 4})
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto reconfiguration did not converge: 1=%v 3=%v",
				tn.mgrs[1].Partition(), tn.mgrs[3].Partition())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAutoReconfigurationOnCrash(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 3)
	for _, m := range tn.mgrs {
		m.EnableAutoReconfiguration()
	}
	tn.nw.Crash(2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		tn.nw.Quiesce()
		if equalSets(tn.mgrs[1].Partition(), []SiteID{1, 3}) &&
			equalSets(tn.mgrs[3].Partition(), []SiteID{1, 3}) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("crash not detected: 1=%v 3=%v", tn.mgrs[1].Partition(), tn.mgrs[3].Partition())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConcurrentPartitionProtocolsConverge(t *testing.T) {
	t.Parallel()
	// Several sites run the protocol simultaneously; the site tables
	// still converge to the same clique.
	tn := newNet(t, 6)
	tn.nw.PartitionGroups([]SiteID{1, 2, 3}, []SiteID{4, 5, 6})
	tn.nw.Quiesce()
	var wg sync.WaitGroup
	for _, s := range []SiteID{1, 2, 3} {
		wg.Add(1)
		go func(s SiteID) {
			defer wg.Done()
			tn.mgrs[s].RunPartitionProtocol()
		}(s)
	}
	wg.Wait()
	tn.nw.Quiesce()
	// All of {1,2,3} agree after the dust settles (re-run once from the
	// lowest site to normalize any interleaving).
	tn.mgrs[1].RunPartitionProtocol()
	for _, s := range []SiteID{1, 2, 3} {
		if !equalSets(tn.mgrs[s].Partition(), []SiteID{1, 2, 3}) {
			t.Fatalf("site %d partition = %v", s, tn.mgrs[s].Partition())
		}
	}
}

func TestMergeAfterCrashAndRestart(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 4)
	tn.nw.Crash(3)
	tn.mgrs[1].RunPartitionProtocol()
	if !equalSets(tn.mgrs[1].Partition(), []SiteID{1, 2, 4}) {
		t.Fatalf("after crash: %v", tn.mgrs[1].Partition())
	}
	tn.nw.Restart(3)
	// The restarted site believes only in itself until merged.
	p, err := tn.mgrs[3].RunMergeProtocol()
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(p, []SiteID{1, 2, 3, 4}) {
		t.Fatalf("merge from restarted site = %v", p)
	}
	tn.assertConverged(t, map[SiteID][]SiteID{
		1: {1, 2, 3, 4}, 2: {1, 2, 3, 4}, 3: {1, 2, 3, 4}, 4: {1, 2, 3, 4},
	})
}

func TestPollMovesFollowerIntoPartitionStage(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 2)
	if _, err := tn.mgrs[2].handlePoll(1, nil); err != nil {
		t.Fatal(err)
	}
	st, active := tn.mgrs[2].Stage()
	if st != StagePartition || active != 1 {
		t.Fatalf("stage=%v active=%d", st, active)
	}
	// Announce returns it to normal.
	tn.mgrs[1].RunPartitionProtocol()
	st, _ = tn.mgrs[2].Stage()
	if st != StageNormal {
		t.Fatalf("stage after announce = %v", st)
	}
}

func TestAnnounceOlderGenerationStillInstallsNewSet(t *testing.T) {
	t.Parallel()
	// install() accepts a different set even at the same generation —
	// what matters is set content; generations only dedupe identical
	// announcements.
	tn := newNet(t, 3)
	m := tn.mgrs[1]
	m.install([]SiteID{1, 2}, 5)
	if got := m.Generation(); got != 5 {
		t.Fatalf("gen = %d", got)
	}
	m.install([]SiteID{1, 2}, 3) // same set, older gen: no-op
	if !equalSets(m.Partition(), []SiteID{1, 2}) {
		t.Fatalf("partition = %v", m.Partition())
	}
	if got := m.Generation(); got != 5 {
		t.Fatalf("gen after stale dup = %d", got)
	}
}

func TestLinkDownUpdatesBeliefWithoutProtocol(t *testing.T) {
	t.Parallel()
	tn := newNet(t, 3)
	tn.nw.SetLink(1, 3, false)
	tn.nw.Quiesce()
	if contains(tn.mgrs[1].Partition(), 3) {
		t.Fatalf("site 1 still believes 3 up: %v", tn.mgrs[1].Partition())
	}
	if contains(tn.mgrs[3].Partition(), 1) {
		t.Fatalf("site 3 still believes 1 up: %v", tn.mgrs[3].Partition())
	}
	// Site 2 is unaffected.
	if !equalSets(tn.mgrs[2].Partition(), []SiteID{1, 2, 3}) {
		t.Fatalf("site 2 belief: %v", tn.mgrs[2].Partition())
	}
}

func TestSeventeenSiteChurn(t *testing.T) {
	t.Parallel()
	// The paper's production configuration, through repeated random
	// splits and merges.
	tn := newNet(t, 17)
	splits := [][2][]SiteID{}
	for cut := 3; cut <= 14; cut += 4 {
		var a, b []SiteID
		for i := 1; i <= 17; i++ {
			if i <= cut {
				a = append(a, SiteID(i))
			} else {
				b = append(b, SiteID(i))
			}
		}
		splits = append(splits, [2][]SiteID{a, b})
	}
	for _, sp := range splits {
		tn.nw.PartitionGroups(sp[0], sp[1])
		tn.nw.Quiesce()
		tn.mgrs[sp[0][0]].RunPartitionProtocol()
		tn.mgrs[sp[1][0]].RunPartitionProtocol()
		for _, s := range sp[0] {
			if !equalSets(tn.mgrs[s].Partition(), sortedCopy(sp[0])) {
				t.Fatalf("split %v: site %d has %v", sp[0], s, tn.mgrs[s].Partition())
			}
		}
		tn.nw.HealAll()
		tn.nw.Quiesce()
		if _, err := tn.mgrs[1].RunMergeProtocol(); err != nil {
			t.Fatal(err)
		}
		var all []SiteID
		for i := 1; i <= 17; i++ {
			all = append(all, SiteID(i))
		}
		for s, m := range tn.mgrs {
			if !equalSets(m.Partition(), all) {
				t.Fatalf("after merge site %d has %v", s, m.Partition())
			}
		}
	}
}

func newNetBench(b *testing.B, n int) *testNetB {
	nw := netsim.New(netsim.DefaultCosts())
	b.Cleanup(nw.Close)
	tb := &testNetB{nw: nw, mgrs: make(map[SiteID]*Manager)}
	var all []SiteID
	for i := 1; i <= n; i++ {
		all = append(all, SiteID(i))
	}
	for _, s := range all {
		tb.mgrs[s] = New(nw.AddSite(s), all)
	}
	return tb
}

type testNetB struct {
	nw   *netsim.Network
	mgrs map[SiteID]*Manager
}

func BenchmarkPartitionProtocol17(b *testing.B) {
	tb := newNetBench(b, 17)
	for i := 0; i < b.N; i++ {
		tb.mgrs[1].RunPartitionProtocol()
	}
}

func BenchmarkMergeProtocol17(b *testing.B) {
	tb := newNetBench(b, 17)
	for i := 0; i < b.N; i++ {
		if _, err := tb.mgrs[1].RunMergeProtocol(); err != nil {
			b.Fatal(err)
		}
	}
}
