// Package topology implements the LOCUS dynamic reconfiguration
// protocols (§5 of the paper): the partition protocol, which shrinks a
// partition to a fully-connected subnetwork by iterative intersection
// of partition sets, and the merge protocol, which joins disjoint
// partitions by asynchronous polling, plus the protocol-synchronization
// rules (ordered stages, active-site failure detection) of §5.7.
//
// Each site runs a Manager. The manager owns the site's view of
// partition membership ("the site tables"); on every membership change
// it invokes the installed callback so the filesystem layer can run the
// cleanup procedure of §5.6 (lock-table rebuild, CSS re-election,
// failure handling for cross-partition resources) and the
// reconciliation layer can schedule directory merges.
package topology

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/netsim"
	"repro/internal/vclock"
)

// SiteID aliases the shared site identifier.
type SiteID = vclock.SiteID

// Stage orders the protocol phases for the synchronization rule of
// §5.7: "A site can wait only for those sites who are executing a
// portion of the protocol that precedes its own"; ties break by site
// number.
type Stage int

const (
	// StageNormal: no reconfiguration in progress.
	StageNormal Stage = iota
	// StagePartition: running or following the partition protocol.
	StagePartition
	// StageMerge: running or following the merge protocol.
	StageMerge
)

func (s Stage) String() string {
	switch s {
	case StageNormal:
		return "normal"
	case StagePartition:
		return "partition"
	case StageMerge:
		return "merge"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// ErrDeclined reports that a polled site refused to join a merge run by
// this initiator (it is running its own with a lower site number).
var ErrDeclined = errors.New("topology: merge declined")

const (
	mPoll      = "topo.poll"
	mAnnounce  = "topo.announce"
	mMergePoll = "topo.mergepoll"
	mStatus    = "topo.status"
)

type pollResp struct {
	P []SiteID // the polled site's current partition set
}

type announceReq struct {
	P    []SiteID
	Gen  uint64
	From SiteID
}

type mergePollReq struct {
	From SiteID
}

type mergePollResp struct {
	P []SiteID
}

type statusResp struct {
	Stage  Stage
	Active SiteID
	Gen    uint64
}

// Manager runs the reconfiguration protocols for one site.
type Manager struct {
	site SiteID
	node *netsim.Node
	// allSites is the full configured network membership, the set the
	// merge protocol polls ("the protocol must check all possible
	// sites, including, of course, those thought to be down" — §5.5).
	allSites []SiteID

	mu        sync.Mutex
	partition []SiteID // current partition set Pα, sorted
	gen       uint64   // lamport-style generation of the installed set
	stage     Stage
	active    SiteID // the active site this site is following

	// onChange is invoked (outside the lock) whenever a new partition
	// set is installed; wired to fs cleanup + recon scheduling.
	onChange func(p []SiteID)
	// auto makes circuit failures trigger the partition protocol.
	auto bool

	// protoMu serializes protocol runs at this site: "a site can only
	// participate in one protocol at a time".
	protoMu sync.Mutex
}

// New creates a manager. allSites is the configured network membership;
// the initial partition set is all sites.
func New(node *netsim.Node, allSites []SiteID) *Manager {
	m := &Manager{
		site:      node.ID(),
		node:      node,
		allSites:  sortedCopy(allSites),
		partition: sortedCopy(allSites),
	}
	node.Handle(mPoll, m.handlePoll)
	node.Handle(mAnnounce, m.handleAnnounce)
	node.Handle(mMergePoll, m.handleMergePoll)
	node.Handle(mStatus, m.handleStatus)
	// Circuit failures update this site's believed partition set: "Failure
	// of a virtual circuit ... does, however, remove a node from a
	// partition" (§5.1). The protocols' iterative intersection relies
	// on every site's table reflecting the failures it has observed.
	node.OnLinkDown(m.noteLinkDown)
	return m
}

// noteLinkDown records an observed circuit failure and, in auto mode,
// runs the partition protocol.
func (m *Manager) noteLinkDown(peer SiteID) {
	m.mu.Lock()
	was := contains(m.partition, peer)
	if was {
		m.partition = remove(m.partition, peer)
	}
	auto := m.auto
	m.mu.Unlock()
	if was && auto {
		m.RunPartitionProtocol()
	}
}

// OnChange installs the membership-change callback.
func (m *Manager) OnChange(f func(p []SiteID)) {
	m.mu.Lock()
	m.onChange = f
	m.mu.Unlock()
}

// Site returns the manager's site.
func (m *Manager) Site() SiteID { return m.site }

// Partition returns the current partition set (sorted copy).
func (m *Manager) Partition() []SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]SiteID(nil), m.partition...)
}

// Generation returns the generation of the installed partition set.
func (m *Manager) Generation() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen
}

// Stage returns the protocol stage and active site this site observes.
func (m *Manager) Stage() (Stage, SiteID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stage, m.active
}

func sortedCopy(s []SiteID) []SiteID {
	out := append([]SiteID(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func contains(set []SiteID, s SiteID) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

func intersect(a, b []SiteID) []SiteID {
	var out []SiteID
	for _, x := range a {
		if contains(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func remove(set []SiteID, s SiteID) []SiteID {
	var out []SiteID
	for _, x := range set {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}

// handlePoll answers a partition-protocol poll with this site's
// partition set and moves the site into the partition stage following
// the poller.
func (m *Manager) handlePoll(from SiteID, _ any) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stage == StageNormal {
		m.stage = StagePartition
		m.active = from
	}
	return &pollResp{P: append([]SiteID(nil), m.partition...)}, nil
}

// handleAnnounce installs an announced partition set if it is newer
// than the current one.
func (m *Manager) handleAnnounce(_ SiteID, p any) (any, error) {
	req := p.(*announceReq)
	m.install(req.P, req.Gen)
	return nil, nil
}

func (m *Manager) install(p []SiteID, gen uint64) {
	sorted := sortedCopy(p)
	m.mu.Lock()
	if gen <= m.gen && equalSets(sorted, m.partition) {
		m.stage = StageNormal
		m.active = vclock.NoSite
		m.mu.Unlock()
		return
	}
	if gen > m.gen {
		m.gen = gen
	}
	m.partition = sorted
	m.stage = StageNormal
	m.active = vclock.NoSite
	cb := m.onChange
	m.mu.Unlock()
	if cb != nil {
		cb(sorted)
	}
}

func equalSets(a, b []SiteID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// handleMergePoll implements the arbitration of §5.5: a site joins the
// merge of a lower-numbered initiator, declines otherwise.
func (m *Manager) handleMergePoll(from SiteID, _ any) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case m.stage == StageMerge && m.active == m.site && from < m.site:
		// A lower-numbered site is also merging: halt our merge and
		// follow it ("IF fsite < locsite THEN actsite := fsite; halt
		// active merge").
		m.active = from
	case m.stage == StageMerge && m.active == m.site:
		// We are the active merge site and outrank the poller.
		return nil, fmt.Errorf("%w: site %d is merging", ErrDeclined, m.site)
	default:
		m.stage = StageMerge
		m.active = from
	}
	return &mergePollResp{P: append([]SiteID(nil), m.partition...)}, nil
}

func (m *Manager) handleStatus(_ SiteID, _ any) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return &statusResp{Stage: m.stage, Active: m.active, Gen: m.gen}, nil
}

// RunPartitionProtocol runs the partition protocol of §5.4 with this
// site as the active site: starting from the sites believed up, poll
// each; a successful poll intersects the polled site's partition set
// into ours; a failed poll removes the site. The loop ends when every
// member of the working set has been polled and agrees — "for every
// α,β ∈ P, Pα = Pβ" — and the result is announced to the members.
// The announced set is returned.
func (m *Manager) RunPartitionProtocol() []SiteID {
	m.protoMu.Lock()
	defer m.protoMu.Unlock()

	m.mu.Lock()
	m.stage = StagePartition
	m.active = m.site
	p := append([]SiteID(nil), m.partition...)
	m.mu.Unlock()
	if !contains(p, m.site) {
		p = append(p, m.site)
	}

	pNew := []SiteID{m.site}
	for {
		// Pick the lowest unpolled member.
		var next SiteID
		for _, s := range p {
			if !contains(pNew, s) {
				next = s
				break
			}
		}
		if next == vclock.NoSite {
			break // consensus: P == P'
		}
		resp, err := m.node.Call(next, mPoll, &struct{}{})
		if err != nil {
			p = remove(p, next)
			continue
		}
		r := resp.(*pollResp)
		pNew = append(pNew, next)
		// P := P ∩ P_polled (self always stays).
		p = intersect(p, r.P)
		if !contains(p, m.site) {
			p = append(p, m.site)
		}
		// Drop polled sites that fell out of P.
		pNew = intersect(pNew, p)
		if !contains(pNew, m.site) {
			pNew = append(pNew, m.site)
		}
	}

	m.announce(p)
	return sortedCopy(p)
}

// RunMergeProtocol runs the merge protocol of §5.5 with this site as
// the initiating site: poll every configured site (including those
// thought to be down), build the union of the partition sets of the
// sites able to respond, declare the new partition, and broadcast it.
// Sites that decline (an active lower-numbered merger) abort this run,
// returning ErrDeclined.
func (m *Manager) RunMergeProtocol() ([]SiteID, error) {
	m.protoMu.Lock()
	defer m.protoMu.Unlock()

	m.mu.Lock()
	m.stage = StageMerge
	m.active = m.site
	m.mu.Unlock()

	newP := []SiteID{m.site}
	for _, s := range m.allSites {
		if s == m.site {
			continue
		}
		resp, err := m.node.Call(s, mMergePoll, &mergePollReq{From: m.site})
		if err != nil {
			if errors.Is(err, ErrDeclined) {
				// A lower-numbered site is running its own merge: halt.
				m.mu.Lock()
				m.stage = StageNormal
				m.active = vclock.NoSite
				m.mu.Unlock()
				return nil, err
			}
			continue // down or unreachable: not in the new partition
		}
		// The respondent joins the new partition. Its own partition-set
		// information (resp) is what a production system would use to
		// build global tables; membership itself is decided by direct
		// reachability, since a member of the respondent's set we could
		// not reach would violate the transitivity the low-level
		// protocols enforce — and every such site is polled directly in
		// this same loop anyway.
		if r := resp.(*mergePollResp); r != nil && !contains(newP, s) {
			newP = append(newP, s)
		}
	}

	m.announce(newP)
	return sortedCopy(newP), nil
}

// announce broadcasts and installs a new partition set.
func (m *Manager) announce(p []SiteID) {
	m.mu.Lock()
	gen := m.gen + 1
	m.mu.Unlock()
	req := &announceReq{P: sortedCopy(p), Gen: gen, From: m.site}
	for _, s := range p {
		if s == m.site {
			continue
		}
		m.node.Call(s, mAnnounce, req) //locus:vet-allow uncheckedcall a site lost here is caught by the next protocol round
	}
	m.install(req.P, gen)
}

// EnableAutoReconfiguration makes circuit failures trigger the
// partition protocol automatically, as in production LOCUS where "all
// changes in partitions invoke the protocols" (§5.1). Tests usually
// drive the protocols explicitly for determinism.
func (m *Manager) EnableAutoReconfiguration() {
	m.mu.Lock()
	m.auto = true
	m.mu.Unlock()
}

// CheckActive is the passive-site failure detection of §5.7: a site
// waiting in a protocol checks its active site; if the active site is
// unreachable, or is ordered after us (earlier stage, or same stage and
// higher number — which would be an illegal wait), this site restarts
// the protocol itself. Returns true if a restart was performed.
func (m *Manager) CheckActive() bool {
	m.mu.Lock()
	stage, active := m.stage, m.active
	m.mu.Unlock()
	if stage == StageNormal || active == m.site || active == vclock.NoSite {
		return false
	}
	resp, err := m.node.Call(active, mStatus, &struct{}{})
	restart := false
	if err != nil {
		restart = true // active site failed: restart
	} else {
		st := resp.(*statusResp)
		// Legal wait: the active site is in our stage or a later one,
		// or outranks us by site number within the same stage.
		if st.Stage < stage || (st.Stage == stage && st.Active != active && st.Active != m.site) {
			restart = true
		}
	}
	if !restart {
		return false
	}
	m.mu.Lock()
	m.stage = StageNormal
	m.active = vclock.NoSite
	m.mu.Unlock()
	m.RunPartitionProtocol()
	return true
}
