package bench

import (
	"repro/internal/workload"
	"repro/locus"
)

// E16 configuration: three canonical tenants (scan-heavy, edit-heavy,
// build-style) at equal scale. The full run issues just over one
// million operations across 2,100 concurrent actors; every counter in
// the table is a pure function of the seed.
const (
	e16Seed         = 1
	e16ActorsPerTen = 700
	e16FilesPerTen  = 64
	e16FullOps      = 334000 // per tenant; ×3 = 1,002,000 ops
)

// E16OpsPerTenant is the full-scale per-tenant op budget of the
// registry entry (×3 tenants = 1,002,000 ops) — exported so
// locus-bench -workload defaults to the same scale.
const E16OpsPerTenant = e16FullOps

// E16Workload runs the pinned E16 workload configuration standalone —
// no table, no metrics aggregation — and returns the engine result.
// locus-bench -workload and benchdiff's wall-clock throughput gate
// drive this entry point so their timing covers the engine alone.
func E16Workload(opsPerTenant int) (*workload.Result, error) {
	c, err := locus.Simple(3)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	eng, err := workload.New(c, workload.Config{
		Seed:    e16Seed,
		Tenants: workload.DefaultTenants(e16ActorsPerTen, opsPerTenant, e16FilesPerTen),
	})
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// E16 runs the full million-op multi-tenant workload (§4's evaluation
// scaled from hand-written scripts to sustained concurrent load). The
// registry and locus-bench run this full configuration; tests assert
// the same engine through E16Sized at a smaller op budget.
func E16() *Table { return E16Sized(e16FullOps) }

// E16Sized runs the E16 workload at opsPerTenant operations per tenant
// with the pinned E16 seed, tenant mixes, actor fleet, and file
// population. The counter table is deterministic at every size: same
// seed, same size ⇒ byte-identical rows.
func E16Sized(opsPerTenant int) *Table {
	t := &Table{
		ID:    "E16",
		Title: "multi-tenant workload engine — throughput and latency under sustained load",
		Paper: "the paper evaluates per-op message counts on fixed scripts; E16 holds those protocols " +
			"under a million-op seeded workload and reports throughput + latency percentiles",
		Headers: []string{"metric", "value"},
	}
	h := NewHarness(3, t)
	defer h.Close()

	eng, err := workload.New(h.C, workload.Config{
		Seed:    e16Seed,
		Tenants: workload.DefaultTenants(e16ActorsPerTen, opsPerTenant, e16FilesPerTen),
	})
	if err != nil {
		must(err)
	}
	var res *workload.Result
	d := h.Delta(func() {
		res, err = eng.Run()
		if err != nil {
			must(err)
		}
	})

	h.Row("ops", cell("%d", res.Ops))
	h.Row("errors", cell("%d", res.Errors))
	h.Row("sim_cost_us", cell("%d", res.SimUs))
	h.Row("ops/sim-sec", cell("%.0f", res.OpsPerSimSec()))
	for op := workload.OpRead; op <= workload.OpStat; op++ {
		h.Row("op "+op.String(), cell("%d (%d err)", res.OpCount[op], res.OpErrs[op]))
	}
	for _, tr := range res.Tenant {
		h.Row("tenant "+tr.Name, cell("%d ops (%d err)", tr.Ops, tr.Errs))
	}
	h.Row("lat_us p50", cell("%d", res.Lat.Quantile(0.50)))
	h.Row("lat_us p95", cell("%d", res.Lat.Quantile(0.95)))
	h.Row("lat_us p99", cell("%d", res.Lat.Quantile(0.99)))
	h.Row("lat_us max", cell("%d", res.Lat.Max()))
	h.Row("msgs", cell("%d", d.Msgs))
	h.Row("msgs/op", cell("%.2f", float64(d.Msgs)/float64(res.Ops)))

	h.Notef("%d actors (%d per tenant), %d files per tenant, seed %d; includes setup traffic in msgs",
		3*e16ActorsPerTen, e16ActorsPerTen, e16FilesPerTen, e16Seed)
	h.Notef("wall-clock ops/sec is deliberately absent here; cmd/benchdiff measures and gates it")
	return h.T
}
