package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/locus"
)

// Experiment names one runnable experiment.
type Experiment struct {
	ID  string
	Run func() *Table
}

// Experiments returns the full registry in run order.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4}, {"E5", E5},
		{"E6", E6}, {"E7", E7}, {"E8", E8}, {"E9", E9}, {"E10", E10},
		{"E11", E11}, {"E12", E12}, {"E13", E13}, {"E14", E14},
		{"E15", E15},
		{"E16", E16},
	}
}

// trackClusters, when set, receives every cluster mustCluster builds;
// RunWithMetrics uses it to aggregate an experiment's simulated costs.
// Experiments run one at a time (benchmarks are sequential by design).
var trackClusters func(*locus.Cluster)

// Result is one experiment's machine-readable cost summary — the
// per-experiment row of BENCH_locus.json. All values are simulated
// (message counts, bytes, virtual CPU/disk microseconds); nothing here
// depends on wall-clock time, so baselines diff cleanly across runs.
type Result struct {
	ID           string  `json:"id"`
	Title        string  `json:"title"`
	Msgs         int64   `json:"msgs"`
	Bytes        int64   `json:"bytes"`
	CPUUs        int64   `json:"cpu_us"`
	DiskUs       int64   `json:"disk_us"`
	Calls        int64   `json:"calls"`
	Casts        int64   `json:"casts"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheInvals  int64   `json:"cache_invals"`
	RAPagesSent  int64   `json:"ra_pages_sent"`
	RAPagesUsed  int64   `json:"ra_pages_used"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Bulk-propagation counters (nonzero once an experiment's workload
	// triggers windowed replica pulls).
	PullWindowsSent int64 `json:"pull_windows_sent"`
	PullPagesSent   int64 `json:"pull_pages_sent"`
	// Lease-layer counters (nonzero once an experiment's workload runs
	// with the lease/intent layer enabled, i.e. E14).
	LeasesGranted  int64 `json:"leases_granted"`
	LeasesRevoked  int64 `json:"leases_revoked"`
	BatchedRevokes int64 `json:"batched_revokes"`
	// Fault-plane counters (nonzero only for experiments that inject
	// faults, i.e. E12).
	MsgsDropped   int64 `json:"msgs_dropped"`
	MsgsDuped     int64 `json:"msgs_duped"`
	MsgsDelayed   int64 `json:"msgs_delayed"`
	CircuitResets int64 `json:"circuit_resets"`
	// §5.6 failure-action cleanup counters (nonzero only for
	// experiments that lose sites mid-workload, i.e. E15).
	OrphanNotices      int64 `json:"orphan_notices"`
	PipeTeardowns      int64 `json:"pipe_teardowns"`
	TxnPartitionAborts int64 `json:"txn_partition_aborts"`
	SignalsQueued      int64 `json:"signals_queued"`
	SignalsReplayed    int64 `json:"signals_replayed"`
	SignalsExpired     int64 `json:"signals_expired"`
}

// RunWithMetrics runs one experiment and aggregates the final traffic
// and cost counters of every cluster it built.
func RunWithMetrics(e Experiment) (*Table, Result) {
	var clusters []*locus.Cluster
	trackClusters = func(c *locus.Cluster) { clusters = append(clusters, c) }
	defer func() { trackClusters = nil }()
	tbl := e.Run()
	res := Result{ID: tbl.ID, Title: tbl.Title}
	for _, c := range clusters {
		s := c.Stats()
		res.Msgs += s.Msgs
		res.Bytes += s.Bytes
		res.CPUUs += s.CPUUs
		res.DiskUs += s.DiskUs
		res.Calls += s.Calls
		res.Casts += s.Casts
		res.CacheHits += s.CacheHits
		res.CacheMisses += s.CacheMisses
		res.CacheInvals += s.CacheInvals
		res.RAPagesSent += s.RAPagesSent
		res.RAPagesUsed += s.RAPagesUsed
		res.PullWindowsSent += s.PullWindowsSent
		res.PullPagesSent += s.PullPagesSent
		res.LeasesGranted += s.LeasesGranted
		res.LeasesRevoked += s.LeasesRevoked
		res.BatchedRevokes += s.BatchedRevokes
		res.MsgsDropped += s.MsgsDropped
		res.MsgsDuped += s.MsgsDuped
		res.MsgsDelayed += s.MsgsDelayed
		res.CircuitResets += s.CircuitResets
		res.OrphanNotices += s.OrphanNotices
		res.PipeTeardowns += s.PipeTeardowns
		res.TxnPartitionAborts += s.TxnPartitionAborts
		res.SignalsQueued += s.SignalsQueued
		res.SignalsReplayed += s.SignalsReplayed
		res.SignalsExpired += s.SignalsExpired
	}
	if lookups := res.CacheHits + res.CacheMisses; lookups > 0 {
		res.CacheHitRate = math.Round(float64(res.CacheHits)/float64(lookups)*1e4) / 1e4
	}
	return tbl, res
}

// AllWithMetrics runs every experiment, returning the printable tables
// and the machine-readable results in the same order.
func AllWithMetrics() ([]*Table, []Result) {
	var tables []*Table
	var results []Result
	for _, e := range Experiments() {
		tbl, res := RunWithMetrics(e)
		tables = append(tables, tbl)
		results = append(results, res)
	}
	return tables, results
}

// benchFile is the on-disk schema of BENCH_locus.json.
type benchFile struct {
	Schema  string   `json:"schema"`
	Results []Result `json:"results"`
}

// WriteJSON emits results in the BENCH_locus.json schema (stable field
// order, no timestamps: the file is a diffable perf baseline).
func WriteJSON(w io.Writer, results []Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(benchFile{Schema: "locus-bench/v1", Results: results})
}

// ReadJSON parses a BENCH_locus.json baseline written by WriteJSON.
func ReadJSON(r io.Reader) ([]Result, error) {
	var f benchFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	if f.Schema != "locus-bench/v1" {
		return nil, fmt.Errorf("bench: unknown baseline schema %q", f.Schema)
	}
	return f.Results, nil
}
