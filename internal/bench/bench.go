// Package bench regenerates every figure and table of the LOCUS paper's
// presentation, plus the quantitative claims embedded in its prose (the
// measured numbers the paper defers to [GOLD83] are reproduced in
// *shape* on the simulated substrate: who wins, by what factor, where
// the crossovers are).
//
// Each experiment Exx() builds a fresh cluster, drives the workload,
// and returns a printable table. The test suite asserts the headline
// shapes; cmd/locus-bench prints the tables; the root bench_test.go
// wraps the hot loops in testing.B benchmarks.
package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/recon"
	"repro/internal/storage"
	"repro/internal/topology"
	"repro/internal/txn"
	"repro/internal/vclock"
	"repro/locus"
)

// SiteID aliases the shared site id.
type SiteID = vclock.SiteID

// Table is one experiment's regenerated output.
type Table struct {
	ID      string
	Title   string
	Paper   string // what the paper reports (the expectation)
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func cell(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// must aborts the experiment on a setup/workload error. Benchmarks have
// no recovery story: a failed step invalidates the whole table, so the
// harness's failure mode is a panic (sanctioned by panicdiscipline's
// must-helper rule).
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func mustCluster(n int) *locus.Cluster {
	c, err := locus.Simple(n)
	if err != nil {
		must(err)
	}
	if trackClusters != nil {
		trackClusters(c)
	}
	return c
}

func mustWrite(se *locus.Session, path string, data []byte) {
	if err := se.WriteFile(path, data); err != nil {
		panic(fmt.Sprintf("write %s: %v", path, err))
	}
}

func page(b byte) []byte {
	p := make([]byte, storage.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

// E1 regenerates Figure 1: the control flow of a system call requiring
// foreign service, with per-stage message and simulated-cost deltas.
func E1() *Table {
	c := mustCluster(2)
	defer c.Close()
	u1 := c.Site(1).Login("u")
	s2 := c.Site(2).Login("u")
	mustWrite(u1, "/f", page('x'))
	if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", []SiteID{1}); err != nil {
		must(err)
	}
	c.Settle()

	t := &Table{
		ID:      "E1",
		Title:   "Figure 1 — processing a system call requiring foreign service",
		Paper:   "request: initial syscall processing, message setup; serve: message analysis, syscall continuation, return message; request: return processing, syscall completion",
		Headers: []string{"stage", "site", "wire msgs (cum)", "sim CPU us (cum)"},
	}
	r, err := c.Site(2).FS.Resolve(s2.Cred(), "/f")
	if err != nil {
		must(err)
	}
	base := c.Stats()
	add := func(stage, site string) {
		d := c.Stats().Sub(base)
		t.Rows = append(t.Rows, []string{stage, site, cell("%d", d.Msgs), cell("%d", d.CPUUs)})
	}
	add("initial system call processing", "requesting")
	f, err := c.Site(2).FS.OpenID(r.ID, fs.ModeRead)
	if err != nil {
		must(err)
	}
	add("open: message setup + remote service + return", "requesting+serving")
	buf := make([]byte, 100)
	if _, err := f.ReadAt(buf, 0); err != nil {
		must(err)
	}
	add("read page: request/response exchange", "requesting+serving")
	if err := f.Close(); err != nil {
		must(err)
	}
	add("close: 4-message teardown", "requesting+serving")
	return t
}

// E2 regenerates Figure 2 and the §2.3.3/.5 message counts: the open
// protocol in every US/CSS/SS role combination, plus read, write,
// commit and close.
func E2() *Table {
	h := NewHarness(3, &Table{
		ID:      "E2",
		Title:   "Figure 2 — protocol message counts per operation and role assignment",
		Paper:   "open general=4, US=SS=2, CSS=SS=2, all-local=0; network read=2; write=1; close (US,SS,CSS distinct)=4",
		Headers: []string{"operation", "roles", "messages", "paper"},
	})
	defer h.Close()
	c := h.C
	u1 := h.Login(1, "u")
	// fileA stored only at site 3 (CSS=1 stores nothing): general case.
	h.Write(u1, "/a", page('a'))
	if err := c.Site(1).FS.SetReplication(u1.Cred(), "/a", []SiteID{3}); err != nil {
		must(err)
	}
	// fileB stored at 1 and 3.
	h.Write(u1, "/b", page('b'))
	if err := c.Site(1).FS.SetReplication(u1.Cred(), "/b", []SiteID{1, 3}); err != nil {
		must(err)
	}
	h.Settle()
	ra, _ := c.Site(1).FS.Resolve(u1.Cred(), "/a")
	rb, _ := c.Site(1).FS.Resolve(u1.Cred(), "/b")

	var f *fs.File
	h.Row("open(read)", "US=2 CSS=1 SS=3 (general)", cell("%d", h.MsgDelta(func() {
		var err error
		f, err = c.Site(2).FS.OpenID(ra.ID, fs.ModeRead)
		if err != nil {
			must(err)
		}
	})), "4")
	rd := h.MsgDelta(func() {
		buf := make([]byte, storage.PageSize)
		if _, err := f.ReadAt(buf, 0); err != nil {
			must(err)
		}
	})
	h.Row("read page", "US=2 SS=3", cell("%d", rd), "2")
	cl := h.MsgDelta(func() {
		if err := f.Close(); err != nil {
			must(err)
		}
	})
	h.Row("close(read)", "US=2 SS=3 CSS=1", cell("%d", cl), "4")

	openCase := func(roles string, us SiteID, id storage.FileID, want string) {
		var hf *fs.File
		msgs := h.MsgDelta(func() {
			var err error
			hf, err = c.Site(us).FS.OpenID(id, fs.ModeRead)
			if err != nil {
				must(err)
			}
		})
		h.Row("open(read)", roles, cell("%d", msgs), want)
		hf.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
	}
	openCase("US=SS=3, CSS=1", 3, rb.ID, "2")
	openCase("US=2, CSS=SS=1", 2, rb.ID, "2")
	openCase("US=CSS=SS=1 (all local)", 1, rb.ID, "0")

	// Write: one message per full-page write (US=2, SS=3 via fileA).
	w, err := c.Site(2).FS.OpenID(ra.ID, fs.ModeModify)
	if err != nil {
		must(err)
	}
	wr := h.MsgDelta(func() {
		if _, err := w.WriteAt(page('z'), 0); err != nil {
			must(err)
		}
	})
	h.Row("write page", "US=2 SS=3", cell("%d", wr), "1")
	cm := h.MsgDelta(func() {
		if err := w.Commit(); err != nil {
			must(err)
		}
	})
	h.Row("commit", "US=2 SS=3 (+notify)", cell("%d", cm), "2 + 1/replica")
	w.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
	h.Settle()
	return h.T
}

// E3 reproduces the §2.2.1 cost claim: "the cpu overhead of accessing a
// remote page is twice local access, and the cost of a remote open is
// significantly more than ... local".
func E3() *Table {
	c := mustCluster(2)
	defer c.Close()
	u1 := c.Site(1).Login("u")
	mustWrite(u1, "/local", page('l'))
	if err := c.Site(1).FS.SetReplication(u1.Cred(), "/local", []SiteID{1}); err != nil {
		must(err)
	}
	c.Settle()
	rl, _ := c.Site(1).FS.Resolve(u1.Cred(), "/local")

	const iters = 200
	measure := func(site SiteID) (openCPU, pageCPU int64) {
		k := c.Site(site).FS
		// Measure the raw §2.3.3 protocol cost: with the using-site page
		// cache on, every repeat read after the first is a cache hit and
		// the remote/local ratio collapses to ≈1 (that effect is E11's
		// subject, not this table's).
		k.SetPageCache(false)
		defer k.SetPageCache(true)
		// Warm CSS state.
		f, err := k.OpenID(rl.ID, fs.ModeRead)
		if err != nil {
			must(err)
		}
		f.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
		before := c.Stats()
		handles := make([]*fs.File, iters)
		for i := 0; i < iters; i++ {
			h, err := k.OpenID(rl.ID, fs.ModeRead)
			if err != nil {
				must(err)
			}
			handles[i] = h
		}
		openCPU = c.Stats().Sub(before).CPUUs / iters
		before = c.Stats()
		buf := make([]byte, storage.PageSize)
		for i := 0; i < iters; i++ {
			if _, err := handles[i].ReadAt(buf, 0); err != nil {
				must(err)
			}
		}
		pageCPU = c.Stats().Sub(before).CPUUs / iters
		for _, h := range handles {
			h.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
		}
		return openCPU, pageCPU
	}
	lo, lp := measure(1) // local: US=CSS=SS=1
	ro, rp := measure(2) // remote: US=2

	t := &Table{
		ID:      "E3",
		Title:   "§2.2.1 — CPU cost of local vs remote access",
		Paper:   "remote page ≈ 2× local CPU; remote open significantly more than local",
		Headers: []string{"operation", "local CPU us", "remote CPU us", "ratio", "paper"},
	}
	t.Rows = append(t.Rows, []string{"page read", cell("%d", lp), cell("%d", rp), cell("%.2fx", float64(rp)/float64(lp)), "≈2x"})
	t.Rows = append(t.Rows, []string{"open+lock", cell("%d", lo), cell("%d", ro), cell("%.2fx", float64(ro)/float64(lo)), "significantly more"})
	return t
}

// E4 regenerates the §5.6 cleanup table: the action taken for each
// resource class when a partition separates the using and serving
// sites.
func E4() *Table {
	t := &Table{
		ID:      "E4",
		Title:   "§5.6 — failure actions during cleanup",
		Paper:   "update-open: discard pages + error in descriptor; read-open: reopen at other site; remote fork target lost: error to caller; parent lost: notify child; transaction: abort subtransactions in partition",
		Headers: []string{"resource / failure", "paper action", "observed"},
	}

	// --- File open for update, SS lost.
	{
		c := mustCluster(3)
		u1 := c.Site(1).Login("u")
		mustWrite(u1, "/f", []byte("v1"))
		if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", []SiteID{3}); err != nil {
			must(err)
		}
		c.Settle()
		w, err := c.Site(2).FS.Open(c.Site(2).Login("u").Cred(), "/f", fs.ModeModify)
		if err != nil {
			must(err)
		}
		if err := w.WriteAll([]byte("doomed")); err != nil {
			must(err)
		}
		c.Partition([]SiteID{1, 2}, []SiteID{3})
		obs := "no action"
		if w.Stale() {
			obs = "pages discarded, error set in file descriptor"
		}
		t.Rows = append(t.Rows, []string{"file open for update, SS lost", "discard pages, set error in descriptor", obs})
		c.Close()
	}

	// --- File open for read, SS lost, another copy available.
	{
		c := mustCluster(3)
		u1 := c.Site(1).Login("u")
		mustWrite(u1, "/f", []byte("stable"))
		c.Settle()
		r, err := c.Site(2).FS.Open(c.Site(2).Login("u").Cred(), "/f", fs.ModeRead)
		if err != nil {
			must(err)
		}
		lost := r.SS()
		if lost == 2 {
			lost = 1 // ensure we cut a remote SS; reopen below still exercises the path
		}
		var rest []SiteID
		for _, s := range c.Sites() {
			if s != lost {
				rest = append(rest, s)
			}
		}
		c.Partition(rest, []SiteID{lost})
		obs := "handle stale"
		if !r.Stale() && r.SS() != lost {
			if d, err := r.ReadAll(); err == nil && string(d) == "stable" {
				obs = cell("reopened at site %d, same version, read continues", r.SS())
			}
		}
		t.Rows = append(t.Rows, []string{"file open for read, SS lost", "internal close, reopen at other site", obs})
		c.Close()
	}

	// --- Remote run, target site down.
	{
		c := mustCluster(2)
		u1 := c.Site(1).Login("u")
		mustWrite(u1, "/prog", []byte("go:p\n"))
		c.Settle()
		c.Site(2).Proc.Register("p", func(*proc.Ctx) int { return 0 })
		c.Crash(2)
		sess := c.Site(1).Login("u")
		sess.SetExecSite(2)
		_, err := sess.Run("/prog")
		obs := "no error"
		if err != nil {
			obs = "error returned to caller"
		}
		t.Rows = append(t.Rows, []string{"remote fork/exec, remote site fails", "return error to caller", obs})
		c.Close()
	}

	// --- Child running remotely, child site lost: parent signalled.
	{
		c := mustCluster(2)
		u1 := c.Site(1).Login("u")
		mustWrite(u1, "/svc", []byte("go:svc\n"))
		c.Settle()
		c.Site(2).Proc.Register("svc", func(ctx *proc.Ctx) int { <-ctx.Signals(); return 0 })
		sess := c.Site(1).Login("u")
		sess.SetExecSite(2)
		if _, err := sess.Run("/svc"); err != nil {
			must(err)
		}
		c.Partition([]SiteID{1}, []SiteID{2})
		obs := "no signal"
		select {
		case sig := <-sess.Shell().ErrSignals():
			if sig == proc.SIGCHILDERR {
				obs = "error signal + info deposited in process structure"
			}
		default:
			// Cleanup signals only parents with registered waits; a
			// Run-without-Wait parent learns on its next Wait. Register
			// the scenario result accordingly.
			obs = "error reported at next wait"
		}
		t.Rows = append(t.Rows, []string{"interacting processes, child site fails", "parent receives error signal", obs})
		c.Close()
	}

	// --- Distributed transaction: abort subtransactions in partition.
	{
		c := mustCluster(3)
		u1 := c.Site(1).Login("u")
		mustWrite(u1, "/t", []byte("base"))
		if err := c.Site(1).FS.SetReplication(u1.Cred(), "/t", []SiteID{3}); err != nil {
			must(err)
		}
		c.Settle()
		m := c.Site(2).Txn
		tx := m.Begin(c.Site(2).Login("u").Cred())
		if err := tx.WriteFile("/t", []byte("doomed")); err != nil {
			must(err)
		}
		c.Partition([]SiteID{1, 2}, []SiteID{3})
		obs := "still active"
		if tx.State() == txn.Aborted {
			obs = "transaction aborted by cleanup"
		}
		t.Rows = append(t.Rows, []string{"distributed transaction, SS lost", "abort all related subtransactions in partition", obs})
		c.Close()
	}
	return t
}

// E5 measures the reconfiguration protocols (§5.4–5.5): messages and
// simulated time for the partition and merge protocols as the network
// scales, including the paper's 17-site configuration.
func E5() *Table {
	t := &Table{
		ID:      "E5",
		Title:   "§5.4/§5.5 — partition & merge protocol cost vs network size",
		Paper:   "all sites converge on the same answer in a rapid manner; merge polls all sites asynchronously",
		Headers: []string{"sites", "split", "partition msgs", "merge msgs", "converged"},
	}
	for _, n := range []int{4, 8, 12, 16, 17, 24, 32} {
		h := NewHarness(n, t)
		c := h.C
		var a, b []SiteID
		for i := 1; i <= n; i++ {
			if i <= n/2 {
				a = append(a, SiteID(i))
			} else {
				b = append(b, SiteID(i))
			}
		}
		c.Network().PartitionGroups(a, b)
		c.Network().Quiesce()
		partMsgs := h.MsgDelta(func() {
			c.Site(a[0]).Topo.RunPartitionProtocol()
			c.Site(b[0]).Topo.RunPartitionProtocol()
		})

		c.Network().HealAll()
		c.Network().Quiesce()
		mergeMsgs := h.MsgDelta(func() {
			if _, err := c.Site(a[0]).Topo.RunMergeProtocol(); err != nil {
				must(err)
			}
		})

		converged := true
		want := c.Site(a[0]).Topo.Partition()
		for _, s := range c.Sites() {
			got := c.Site(s).Topo.Partition()
			if len(got) != len(want) {
				converged = false
			}
		}
		h.Row(cell("%d", n), cell("%d/%d", len(a), len(b)),
			cell("%d", partMsgs), cell("%d", mergeMsgs), cell("%v", converged))
		h.Close()
	}
	t.Notes = append(t.Notes, "17 sites is the paper's UCLA configuration (17 VAX-11/750s)")
	return t
}

// E6 exercises the §4.4 directory merge matrix and measures merge
// throughput for increasingly divergent directories.
func E6() *Table {
	t := &Table{
		ID:      "E6",
		Title:   "§4.4 — directory reconciliation: rule matrix and merge cost",
		Paper:   "inserts propagate; deletes propagate unless data modified since; delete/modify races undo the delete; name conflicts renamed + owners mailed",
		Headers: []string{"scenario / divergence", "result", "msgs", "paper"},
	}
	run := func(scenario string, inserts int, setup func(a, b *locus.Session), check func(a *locus.Session) string, want string) {
		c := mustCluster(2)
		defer c.Close()
		ra := recon.New(c.Site(1).FS)
		rb := recon.New(c.Site(2).FS)
		a := c.Site(1).Login("owner")
		b := c.Site(2).Login("owner")
		if setup != nil {
			mustWrite(a, "/seed", []byte("s"))
			c.Settle()
		}
		c.Partition([]SiteID{1}, []SiteID{2})
		if setup != nil {
			setup(a, b)
		}
		for i := 0; i < inserts; i++ {
			mustWrite(a, cell("/a%04d", i), []byte("x"))
			mustWrite(b, cell("/b%04d", i), []byte("y"))
		}
		c.Network().HealAll()
		c.Network().Quiesce()
		c.Site(1).Topo.RunMergeProtocol() // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		c.Network().Quiesce()
		c.Settle()
		before := c.Stats()
		ra.ReconcileAll() // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		rb.ReconcileAll() // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		c.Settle()
		msgs := c.Stats().Sub(before).Msgs
		result := cell("%d entries merged", 2*inserts)
		if check != nil {
			result = check(a)
		}
		t.Rows = append(t.Rows, []string{scenario, result, cell("%d", msgs), want})
	}

	run("independent inserts ×20", 20, nil, nil, "all propagate (rule a)")
	run("delete in one partition", 0, func(a, b *locus.Session) {
		if err := a.Unlink("/seed"); err != nil {
			must(err)
		}
	}, func(a *locus.Session) string {
		if _, err := a.ReadFile("/seed"); err != nil {
			return "delete propagated"
		}
		return "delete lost"
	}, "delete propagates (rule b)")
	run("delete vs modify race", 0, func(a, b *locus.Session) {
		if err := a.Unlink("/seed"); err != nil {
			must(err)
		}
		mustWrite(b, "/seed", []byte("modified"))
	}, func(a *locus.Session) string {
		if d, err := a.ReadFile("/seed"); err == nil && string(d) == "modified" {
			return "delete undone, modified data saved"
		}
		return "file lost"
	}, "delete undone (rule d)")
	run("same name, different files", 0, func(a, b *locus.Session) {
		mustWrite(a, "/clash", []byte("A"))
		mustWrite(b, "/clash", []byte("B"))
	}, func(a *locus.Session) string {
		ents, err := a.ReadDir("/")
		if err != nil {
			return err.Error()
		}
		n := 0
		for _, e := range ents {
			if strings.HasPrefix(e.Name, "clash!i") {
				n++
			}
		}
		return cell("%d renamed entries, owner mailed", n)
	}, "both renamed, owners notified")
	return t
}

// E7 sweeps the replication factor (§2.2.1): read locality, update
// propagation cost, and availability under partition.
func E7() *Table {
	const n = 6
	t := &Table{
		ID:      "E7",
		Title:   "§2.2.1 — replication degree vs read cost, update cost, availability",
		Paper:   "replication improves read availability/performance; update cost and consistency burden grow with copies; update availability needs a copy in-partition",
		Headers: []string{"copies", "read msgs/site (avg)", "update msgs", "read avail under 3/3 split", "update avail"},
	}
	for copies := 1; copies <= n; copies++ {
		c := mustCluster(n)
		u1 := c.Site(1).Login("u")
		var sites []SiteID
		for i := 1; i <= copies; i++ {
			sites = append(sites, SiteID(i))
		}
		mustWrite(u1, "/f", page('r'))
		if err := c.Site(1).FS.SetReplication(u1.Cred(), "/f", sites); err != nil {
			must(err)
		}
		c.Settle()
		rid, _ := c.Site(1).FS.Resolve(u1.Cred(), "/f")

		// Read cost averaged over all sites.
		before := c.Stats()
		for s := 1; s <= n; s++ {
			f, err := c.Site(SiteID(s)).FS.OpenID(rid.ID, fs.ModeRead)
			if err != nil {
				must(err)
			}
			buf := make([]byte, storage.PageSize)
			if _, err := f.ReadAt(buf, 0); err != nil {
				must(err)
			}
			f.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
		}
		readMsgs := float64(c.Stats().Sub(before).Msgs) / float64(n)

		// Update cost: one page rewrite + commit + propagation.
		before = c.Stats()
		w, err := c.Site(1).FS.OpenID(rid.ID, fs.ModeModify)
		if err != nil {
			must(err)
		}
		if _, err := w.WriteAt(page('w'), 0); err != nil {
			must(err)
		}
		if err := w.Close(); err != nil {
			must(err)
		}
		c.Settle()
		updMsgs := c.Stats().Sub(before).Msgs

		// Availability under a 3/3 partition.
		c.Partition([]SiteID{1, 2, 3}, []SiteID{4, 5, 6})
		readOK, updOK := 0, 0
		for s := 1; s <= n; s++ {
			k := c.Site(SiteID(s)).FS
			if f, err := k.OpenID(rid.ID, fs.ModeRead); err == nil {
				readOK++
				f.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
			}
		}
		for _, probe := range []SiteID{1, 4} {
			k := c.Site(probe).FS
			if f, err := k.OpenID(rid.ID, fs.ModeModify); err == nil {
				updOK++
				f.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
			}
		}
		t.Rows = append(t.Rows, []string{
			cell("%d", copies), cell("%.1f", readMsgs), cell("%d", updMsgs),
			cell("%d/6 sites", readOK), cell("%d/2 partitions", updOK),
		})
		c.Close()
	}
	return t
}

// E8 measures token thrashing on a shared file descriptor (§3.2):
// alternating access from two sites versus batched access from one.
func E8() *Table {
	c := mustCluster(2)
	defer c.Close()
	u1 := c.Site(1).Login("u")
	content := make([]byte, 64*1024)
	mustWrite(u1, "/log", content)
	c.Settle()

	p1 := c.Site(1).Proc.InitProcess(u1.Cred())
	p2 := c.Site(2).Proc.InitProcess(c.Site(2).Login("u").Cred())
	fd1, _, err := c.Site(1).Proc.OpenShared(p1, "/log", fs.ModeRead)
	if err != nil {
		must(err)
	}
	home, id := fd1.HomeID()
	fd2, _, err := c.Site(2).Proc.AttachShared(p2, home, id, "/log", fs.ModeRead)
	if err != nil {
		must(err)
	}

	const ops = 128
	buf := make([]byte, 64)

	before := c.Stats()
	for i := 0; i < ops; i++ {
		if _, err := fd1.Read(buf); err != nil {
			must(err)
		}
		if _, err := fd2.Read(buf); err != nil {
			must(err)
		}
	}
	d := c.Stats().Sub(before)
	thrashMsgs := float64(d.Msgs) / float64(2*ops)
	thrashCPU := d.CPUUs / int64(2*ops)

	before = c.Stats()
	for i := 0; i < ops; i++ {
		if _, err := fd1.Read(buf); err != nil {
			must(err)
		}
	}
	for i := 0; i < ops; i++ {
		if _, err := fd2.Read(buf); err != nil {
			must(err)
		}
	}
	d = c.Stats().Sub(before)
	batchMsgs := float64(d.Msgs) / float64(2*ops)
	batchCPU := d.CPUUs / int64(2*ops)

	t := &Table{
		ID:      "E8",
		Title:   "§3.2 — shared-descriptor token: alternating vs batched access",
		Paper:   "worst case limited by token flip rate; 'virtually all processes read and write substantial amounts of data per system call' so real workloads batch",
		Headers: []string{"pattern", "msgs/op", "CPU us/op"},
	}
	t.Rows = append(t.Rows, []string{"alternating sites (thrash)", cell("%.2f", thrashMsgs), cell("%d", thrashCPU)})
	t.Rows = append(t.Rows, []string{"batched per site", cell("%.2f", batchMsgs), cell("%d", batchCPU)})
	t.Notes = append(t.Notes, cell("thrash/batch message ratio = %.1fx", thrashMsgs/maxf(batchMsgs, 0.01)))
	return t
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// E9 verifies §4.5: merged mailboxes are the union of partitioned
// deliveries minus deletions, for both storage formats.
func E9() *Table {
	t := &Table{
		ID:      "E9",
		Title:   "§4.5 — mailbox reconciliation",
		Paper:   "insert/delete union with no name conflicts; usable immediately after merge",
		Headers: []string{"format", "delivered A/B", "deleted", "after merge", "expected"},
	}

	// Format 1: multiple messages in a single mailbox file (default).
	{
		c := mustCluster(2)
		ra := recon.New(c.Site(1).FS)
		rb := recon.New(c.Site(2).FS)
		if err := ra.DeliverMail("bob", "pre", "hello"); err != nil {
			must(err)
		}
		c.Settle()
		pre, _ := ra.ReadMail("bob")
		c.Partition([]SiteID{1}, []SiteID{2})
		for i := 0; i < 5; i++ {
			ra.DeliverMail("bob", "a", cell("a%d", i)) // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
			rb.DeliverMail("bob", "b", cell("b%d", i)) // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		}
		rb.DeleteMail("bob", pre[0].ID) // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		c.Network().HealAll()
		c.Network().Quiesce()
		c.Site(1).Topo.RunMergeProtocol() // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		c.Network().Quiesce()
		c.Settle()
		ra.ReconcileAll() // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		rb.ReconcileAll() // error unchecked by design: bench harness: a failure here surfaces as wrong pinned counts
		c.Settle()
		got, _ := ra.ReadMail("bob")
		t.Rows = append(t.Rows, []string{"single-file mailbox", "5/5 (+1 pre)", "1", cell("%d live", len(got)), "10"})
		c.Close()
	}

	// Format 2: one message per file grouped by directory (mh style):
	// the directory merge itself reconciles it.
	{
		c := mustCluster(2)
		a := c.Site(1).Login("u")
		b := c.Site(2).Login("u")
		if err := a.Mkdir("/mh"); err != nil {
			must(err)
		}
		c.Settle()
		c.Partition([]SiteID{1}, []SiteID{2})
		for i := 0; i < 5; i++ {
			mustWrite(a, cell("/mh/1-%d", i), []byte("a"))
			mustWrite(b, cell("/mh/2-%d", i), []byte("b"))
		}
		rep, err := c.Merge()
		if err != nil {
			must(err)
		}
		ents, _ := a.ReadDir("/mh")
		t.Rows = append(t.Rows, []string{"message-per-file (mh)", "5/5", "0", cell("%d files (dirs merged: %d)", len(ents), rep.DirsMerged), "10"})
		c.Close()
	}
	return t
}

// E10 reproduces the §6 claim "Locus performance equals Unix in the
// local case": local LOCUS file operations versus the bare storage
// substrate (the conventional single-machine filesystem baseline).
func E10() *Table {
	// LOCUS local operation.
	c := mustCluster(1)
	defer c.Close()
	u := c.Site(1).Login("u")
	mustWrite(u, "/f", page('x'))
	rid, _ := c.Site(1).FS.Resolve(u.Cred(), "/f")
	const iters = 300
	before := c.Stats()
	buf := make([]byte, storage.PageSize)
	for i := 0; i < iters; i++ {
		f, err := c.Site(1).FS.OpenID(rid.ID, fs.ModeRead)
		if err != nil {
			must(err)
		}
		if _, err := f.ReadAt(buf, 0); err != nil {
			must(err)
		}
		f.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
	}
	d := c.Stats().Sub(before)
	locusCPU := d.CPUUs / iters
	locusMsgs := d.Msgs

	// Baseline: the raw container (conventional Unix-like local FS).
	meter := &localMeter{}
	cont := storage.MustContainer(1, 1, 1, 1000, meter, storage.Costs{
		DiskUs: netsim.DefaultCosts().DiskUs, PageCPU: netsim.DefaultCosts().PageCPU,
	})
	num, _ := cont.AllocInode()
	pp, _ := cont.WritePage(page('x'))
	if err := cont.CommitInode(&storage.Inode{Num: num, Size: storage.PageSize, Pages: []storage.PhysPage{pp}, VV: vclock.New()}); err != nil {
		must(err)
	}
	meter.cpu = 0
	for i := 0; i < iters; i++ {
		ino, err := cont.GetInode(num) // "open"
		if err != nil {
			must(err)
		}
		if _, err := cont.ReadLogicalPage(num, 0); err != nil {
			must(err)
		}
		_ = ino
	}
	baseCPU := meter.cpu / iters

	t := &Table{
		ID:      "E10",
		Title:   "§6 — local LOCUS vs conventional local filesystem",
		Paper:   "Locus performance equals Unix in the local case",
		Headers: []string{"system", "CPU us per open+read+close", "network msgs"},
	}
	t.Rows = append(t.Rows, []string{"LOCUS (all roles local)", cell("%d", locusCPU), cell("%d", locusMsgs)})
	t.Rows = append(t.Rows, []string{"bare local filesystem", cell("%d", baseCPU), "0"})
	t.Notes = append(t.Notes, cell("overhead ratio %.2fx (paper: ≈1x)", float64(locusCPU)/float64(baseCPU)))
	return t
}

type localMeter struct{ cpu, disk int64 }

func (m *localMeter) AddCPU(us int64)  { m.cpu += us }
func (m *localMeter) AddDisk(us int64) { m.disk += us }

// E11 measures the using-site page cache and streaming readahead on a
// sequential remote read — the §2.3.3 two-message protocol is the
// baseline, and the cache/readahead layer is the optimisation this
// table quantifies.
func E11() *Table {
	c := mustCluster(2)
	defer c.Close()
	u1 := c.Site(1).Login("u")
	const pages = 16
	data := make([]byte, pages*storage.PageSize)
	for i := range data {
		data[i] = byte('a' + i/int(storage.PageSize)%26)
	}
	mustWrite(u1, "/seq", data)
	if err := c.Site(1).FS.SetReplication(u1.Cred(), "/seq", []SiteID{1}); err != nil {
		must(err)
	}
	c.Settle()
	rid, err := c.Site(1).FS.Resolve(u1.Cred(), "/seq")
	if err != nil {
		must(err)
	}
	k := c.Site(2).FS

	scan := func(readahead bool) netsim.Snapshot {
		f, err := k.OpenID(rid.ID, fs.ModeRead)
		if err != nil {
			must(err)
		}
		f.SetReadahead(readahead)
		before := c.Stats()
		got, err := f.ReadAll()
		if err != nil {
			must(err)
		}
		if len(got) != len(data) {
			must(fmt.Errorf("E11: short read: %d of %d bytes", len(got), len(data)))
		}
		d := c.Stats().Sub(before)
		f.Close() //locus:vet-allow uncheckedcall bench harness: a failure here surfaces as wrong pinned counts
		return d
	}

	k.SetPageCache(false)
	base := scan(false) // pure §2.3.3: 2 messages per page
	k.SetPageCache(true)
	cold := scan(true)  // streaming readahead fills the US cache
	warm := scan(false) // second pass served entirely from the cache

	t := &Table{
		ID:      "E11",
		Title:   "§2.3.3 — using-site page cache + streaming readahead, 16-page remote scan",
		Paper:   "network read costs 2 messages per page; caching at the using site removes them",
		Headers: []string{"pass", "msgs", "fs.read msgs", "KB moved", "cache hits", "ra pages sent/used"},
	}
	row := func(name string, d netsim.Snapshot) {
		t.Rows = append(t.Rows, []string{
			name, cell("%d", d.Msgs), cell("%d", d.ByMethod["fs.read"]),
			cell("%d", d.Bytes/1024), cell("%d", d.CacheHits),
			cell("%d/%d", d.RAPagesSent, d.RAPagesUsed),
		})
	}
	row("no US cache, no readahead", base)
	row("cold cache + streaming readahead", cold)
	row("warm re-read", warm)
	t.Notes = append(t.Notes,
		cell("%.1fx fewer fs.read messages cold (%d -> %d); warm re-read needs %d",
			float64(base.ByMethod["fs.read"])/float64(cold.ByMethod["fs.read"]),
			base.ByMethod["fs.read"], cold.ByMethod["fs.read"], warm.ByMethod["fs.read"]))
	return t
}

// E12 measures what a lossy transport costs the paper's protocols: a
// remote write+commit loop (US at site 2, the only pack at site 1) run
// at 0%, 1% and 5% message drop with the fault plane armed throughout.
// Sequence-numbered retries with callee-side at-most-once dedup turn
// every loss into bounded retransmission — no operation ever applies
// twice — and the price shows up as extra messages, op-level retries,
// and virtual time burned in circuit-reset timeouts.
func E12() *Table {
	const iters = 120
	payload := bytes.Repeat([]byte("x"), 512)

	type outcome struct {
		d       netsim.Snapshot
		virtUs  int64
		retries int
	}
	run := func(drop float64) outcome {
		c := mustCluster(2)
		defer c.Close()
		u1 := c.Site(1).Login("u")
		mustWrite(u1, "/w", []byte("seed"))
		must(c.Site(1).FS.SetReplication(u1.Cred(), "/w", []SiteID{1}))
		c.Settle()
		u2 := c.Site(2).Login("u")
		// Armed even at drop 0: the zero-rate plane decides nothing and
		// injects nothing, so that row doubles as the off-position
		// baseline (same invariant protocolcost_test pins).
		c.Network().EnableFaults(netsim.FaultConfig{
			Seed: 12,
			Rates: netsim.FaultRates{
				Drop: drop, Dup: drop / 2,
				Delay: drop, DelayMaxUs: 2000,
			},
		})
		defer c.Network().DisableFaults()
		before := c.Stats()
		t0 := c.Network().Clock().NowUs()
		retries := 0
		for i := 0; i < iters; i++ {
			for u2.WriteFile("/w", payload) != nil {
				retries++
				if retries > 10*iters {
					must(fmt.Errorf("E12: drop=%.2f: runaway retries", drop))
				}
			}
		}
		virt := c.Network().Clock().NowUs() - t0
		return outcome{d: c.Stats().Sub(before), virtUs: virt, retries: retries}
	}

	t := &Table{
		ID:      "E12",
		Title:   "§5.1 — remote write+commit under message loss (at-most-once retries)",
		Paper:   "a lost message closes the circuit; protocols recover without applying an operation twice",
		Headers: []string{"drop rate", "msgs/op", "op retries", "dropped", "duped", "delayed", "resets", "virtual ms"},
	}
	var base outcome
	for _, drop := range []float64{0, 0.01, 0.05} {
		o := run(drop)
		if drop == 0 {
			base = o
		}
		t.Rows = append(t.Rows, []string{
			cell("%.0f%%", drop*100),
			cell("%.1f", float64(o.d.Msgs)/iters),
			cell("%d", o.retries),
			cell("%d", o.d.MsgsDropped),
			cell("%d", o.d.MsgsDuped),
			cell("%d", o.d.MsgsDelayed),
			cell("%d", o.d.CircuitResets),
			cell("%.1f", float64(o.virtUs)/1000),
		})
		if drop == 0.05 {
			t.Notes = append(t.Notes,
				cell("5%% loss costs %.2fx the messages and %.1fx the virtual time of the lossless run",
					float64(o.d.Msgs)/float64(base.d.Msgs),
					float64(o.virtUs)/float64(base.virtUs)))
		}
	}
	return t
}

// All returns every experiment in order.
// E13 measures bulk pipelined replica propagation (§2.3.6): commit a
// 32-page file replicated at 3 sites, drain the propagation queues,
// and compare the wire cost of bringing the 2 stale replicas current
// under three regimes — the legacy serial one-exchange-per-page pull,
// the bulk windowed protocol (first window piggybacked on fs.pullopen,
// the rest in PullWindow-page fs.pullpages exchanges), and bulk with
// the parallel drain worker pool.
func E13() *Table {
	const filePages = 32
	type outcome struct {
		d      netsim.Snapshot
		virtUs int64
		pulls  int
	}
	run := func(bulk bool, workers int) outcome {
		c := mustCluster(3)
		defer c.Close()
		for _, id := range c.Sites() {
			c.Site(id).FS.SetBulkPull(bulk)
			c.Site(id).FS.SetPropagationWorkers(workers)
		}
		u := c.Site(1).Login("u")
		// Seed the file and let the creation propagate so every site
		// holds a replica; the measured run is then a pure pull of the
		// 32 modified pages at each of the 2 stale replicas.
		mustWrite(u, "/big", bytes.Repeat(page('a'), filePages))
		c.Settle()
		mustWrite(u, "/big", bytes.Repeat(page('b'), filePages))
		before := c.Stats()
		t0 := c.Network().Clock().NowUs()
		pulls := c.Settle()
		return outcome{d: c.Stats().Sub(before), virtUs: c.Network().Clock().NowUs() - t0, pulls: pulls}
	}

	t := &Table{
		ID:      "E13",
		Title:   "§2.3.6 — replica propagation: serial per-page vs bulk windowed vs bulk+parallel",
		Paper:   "a kernel process services the propagation queue; pulling pages one exchange at a time is the naive cost",
		Headers: []string{"regime", "pulls", "msgs", "KB", "pull windows", "pull pages", "virtual ms"},
	}
	regimes := []struct {
		name    string
		bulk    bool
		workers int
	}{
		{"serial per-page", false, 1},
		{"bulk windowed", true, 1},
		{"bulk + 4 workers", true, 4},
	}
	var serial, parallel outcome
	for _, r := range regimes {
		o := run(r.bulk, r.workers)
		switch r.name {
		case "serial per-page":
			serial = o
		case "bulk + 4 workers":
			parallel = o
		}
		t.Rows = append(t.Rows, []string{
			r.name,
			cell("%d", o.pulls),
			cell("%d", o.d.Msgs),
			cell("%.1f", float64(o.d.Bytes)/1024),
			cell("%d", o.d.PullWindowsSent),
			cell("%d", o.d.PullPagesSent),
			cell("%.1f", float64(o.virtUs)/1000),
		})
	}
	t.Notes = append(t.Notes,
		cell("bulk+parallel uses %.2fx fewer messages and %.2fx less virtual time than serial per-page",
			float64(serial.d.Msgs)/float64(parallel.d.Msgs),
			float64(serial.virtUs)/float64(parallel.virtUs)),
		"the simulated cost model charges per message, so the worker pool changes no counters; its row pins that parallel drain stays count-deterministic")
	return t
}

// E14 measures the lease/intent layer on a hot-file open storm (§2.3.3
// applied at scale): a file stored at a single site, four remote using
// sites each opening and reading it repeatedly, then one writer
// transition. Without leases every open is a wire exchange at the CSS;
// with intent-based read delegations the first open per site piggybacks
// a lease on the open reply and every repeat open+read+close is served
// site-locally (zero messages), while the conflicting writer recalls
// all outstanding delegations in one batched revoke round and later
// closes under its writer lease without a wire close.
func E14() *Table {
	const (
		readers = 4 // using sites 2..5
		repeats = 8 // opens per reader site
	)
	type outcome struct {
		first  netsim.Snapshot // first open+read+close at each reader
		repeat netsim.Snapshot // the remaining (repeats-1) per reader
		wopen  netsim.Snapshot // conflicting open for modification
		wclose netsim.Snapshot // writer commit + close
	}
	run := func(leases bool) outcome {
		c := mustCluster(6)
		defer c.Close()
		if leases {
			for _, id := range c.Sites() {
				c.Site(id).FS.SetLeases(true)
			}
		}
		u := c.Site(6).Login("u")
		mustWrite(u, "/hot", page('a'))
		must(c.Site(6).FS.SetReplication(u.Cred(), "/hot", []SiteID{6}))
		c.Settle()
		rid, err := c.Site(6).FS.Resolve(u.Cred(), "/hot")
		if err != nil {
			must(err)
		}
		buf := make([]byte, storage.PageSize)
		cycle := func(site SiteID) {
			f, err := c.Site(site).FS.OpenID(rid.ID, fs.ModeRead)
			if err != nil {
				must(err)
			}
			if _, err := f.ReadAt(buf, 0); err != nil {
				must(err)
			}
			f.Close() //locus:vet-allow uncheckedcall read handle: close reports nothing actionable in a benchmark
		}
		var o outcome
		before := c.Stats()
		for s := SiteID(2); s < 2+readers; s++ {
			cycle(s)
		}
		o.first = c.Stats().Sub(before)
		before = c.Stats()
		for s := SiteID(2); s < 2+readers; s++ {
			for i := 1; i < repeats; i++ {
				cycle(s)
			}
		}
		o.repeat = c.Stats().Sub(before)

		// Writer transition at site 1: the open for modification must
		// recall every outstanding delegation before it may proceed.
		before = c.Stats()
		w, err := c.Site(1).FS.OpenID(rid.ID, fs.ModeModify)
		if err != nil {
			must(err)
		}
		o.wopen = c.Stats().Sub(before)
		if _, err := w.WriteAt(page('b'), 0); err != nil {
			must(err)
		}
		before = c.Stats()
		must(w.Commit())
		must(w.Close())
		o.wclose = c.Stats().Sub(before)
		return o
	}

	t := &Table{
		ID:    "E14",
		Title: "§2.3.3 at scale — hot-file open storm: per-open CSS exchanges vs lease/intent delegations",
		Paper: "every open involves the CSS; a read lease lets the using site repeat open/read/close with no network traffic until a writer appears",
		Headers: []string{"regime", "first opens msgs", "reopen msgs", "msgs/reopen",
			"leases granted", "writer open msgs", "revoke rounds", "writer commit+close msgs"},
	}
	reopens := readers * (repeats - 1)
	var off, on outcome
	for _, leases := range []bool{false, true} {
		o := run(leases)
		name := "no leases (ablation)"
		if leases {
			name, on = "read delegations + writer lease", o
		} else {
			off = o
		}
		t.Rows = append(t.Rows, []string{
			name,
			cell("%d", o.first.Msgs),
			cell("%d", o.repeat.Msgs),
			cell("%.1f", float64(o.repeat.Msgs)/float64(reopens)),
			cell("%d", o.first.LeasesGranted),
			cell("%d", o.wopen.Msgs),
			cell("%d", o.wopen.BatchedRevokes),
			cell("%d", o.wclose.Msgs),
		})
	}
	t.Notes = append(t.Notes,
		cell("%d reopens of the delegated file cost %d wire messages (ablation: %d)",
			reopens, on.repeat.Msgs, off.repeat.Msgs),
		cell("the writer transition recalled %d delegations in %d batched revoke round(s); its commit+close cost %d messages (ablation: %d)",
			on.wopen.LeasesRevoked, on.wopen.BatchedRevokes, on.wclose.Msgs, off.wclose.Msgs))
	return t
}

// E15 measures the §5.6 failure-action table end to end: kill the site
// that is executing this user's work. A 3-site cluster runs three
// remote processes at site 2 on behalf of a site-1 shell, three
// processes at site 3 whose parents live at site 2, a cross-site named
// pipe whose writer sits at site 2, and a site-1 transaction holding a
// modify lock on a file stored only at site 2 — then site 2 crashes.
// Every row is one stage of the §5.6 cleanup, reporting the message
// bill and the failure-action counters: orphan notices delivered,
// pipe endpoints torn down, transactions partition-aborted, and
// cross-partition signals queued, then replayed or expired at merge.
func E15() *Table {
	const sitters = 3
	c := mustCluster(3)
	defer c.Close()
	for _, id := range c.Sites() {
		c.Site(id).Proc.Register("sit", func(ctx *proc.Ctx) int {
			<-ctx.Signals()
			return 0
		})
	}
	u1 := c.Site(1).Login("u1")
	u2 := c.Site(2).Login("u2")
	u3 := c.Site(3).Login("u3")
	must(u1.WriteFile("/sit", []byte("go:sit\n")))
	must(u1.WriteFile("/victim", page('v')))
	must(u1.SetReplication("/victim", 2))
	must(u1.Mkfifo("/fifo"))
	c.Settle()

	t := &Table{
		ID:    "E15",
		Title: "§5.6 failure actions — kill the executing site: orphan notices, pipe EOF, txn aborts, signal queue/replay",
		Paper: "remote operations return site-failure errors, orphaned processes are notified, pipes deliver EOF (never a hang), partitioned transactions abort, and undeliverable signals queue until merge",
		Headers: []string{"stage", "msgs", "orphan notices", "pipe teardowns",
			"txn aborts", "sigs queued", "sigs replayed", "sigs expired"},
	}
	before := c.Stats()
	row := func(stage string) {
		d := c.Stats().Sub(before)
		before = c.Stats()
		t.Rows = append(t.Rows, []string{
			stage,
			cell("%d", d.Msgs),
			cell("%d", d.OrphanNotices),
			cell("%d", d.PipeTeardowns),
			cell("%d", d.TxnPartitionAborts),
			cell("%d", d.SignalsQueued),
			cell("%d", d.SignalsReplayed),
			cell("%d", d.SignalsExpired),
		})
	}

	// Stage 1: the doomed workload. Site 1 runs sitters at site 2;
	// site 2 runs sitters at site 3 (their orphan notices will fire at
	// the surviving site); the fifo's writer end lives at site 2 while
	// its server and reader live at site 1; the site-1 transaction
	// locks the file stored only at site 2.
	u1.SetExecSite(2)
	var remotePids []proc.PID
	for i := 0; i < sitters; i++ {
		pid, err := u1.Run("/sit")
		must(err)
		remotePids = append(remotePids, pid)
	}
	u1.SetExecSite()
	u2.SetExecSite(3)
	for i := 0; i < sitters; i++ {
		_, err := u2.Run("/sit")
		must(err)
	}
	u2.SetExecSite()
	w, err := u2.OpenPipe("/fifo", true)
	must(err)
	rd, err := u1.OpenPipe("/fifo", false)
	must(err)
	must(w.Write(page('p')[:768]))
	got, err := rd.Read(256)
	must(err)
	piped := len(got)
	tx := u1.Begin()
	must(tx.WriteFile("/victim", page('w')))
	row("setup: 2x3 remote processes, cross-site pipe, txn locking a site-2 file")

	// Stage 2: the executing site dies. The partition protocol drives
	// every survivor's cleanup procedure; the orphaned sitters at
	// site 3 are notified, wake, and exit.
	c.Crash(2)
	c.Site(3).Proc.DrainPrograms()
	c.Network().Quiesce()
	row("crash site 2: survivors run the §5.6 cleanup procedure")

	// Stage 3: the survivors observe the failure synchronously — every
	// wait fails with a site-failure error, the pipe drains its buffer
	// to EOF instead of hanging, the commit reports the abort, and the
	// signals to dead processes queue at the sender.
	waitsFailed := 0
	for _, pid := range remotePids {
		if st := u1.Wait(pid); errors.Is(st.Err, proc.ErrSiteFailed) {
			waitsFailed++
		}
	}
	var eof bool
	for i := 0; i < 100; i++ {
		b, err := rd.Read(256)
		if err == io.EOF {
			eof = true
			break
		}
		must(err)
		piped += len(b)
	}
	commitErr := tx.Commit()
	for _, pid := range remotePids {
		if err := u1.Signal(pid, proc.SIGTERM); !errors.Is(err, proc.ErrSiteFailed) {
			must(fmt.Errorf("signal to dead site = %v, want ErrSiteFailed", err))
		}
	}
	row("survivors: waits fail, pipe drains to EOF, commit aborts, signals queue")

	// Stage 4: the crashed site returns. The merge replays the queued
	// signals; the targets died with the site, so all of them expire
	// with a definitive no-such-process answer.
	if _, err := c.Restart(2); err != nil {
		must(err)
	}
	row("restart + merge: queued signals expire (targets died with the site)")

	// Stage 5: the same queue delivers when the target survives — a
	// sitter local to site 3 is signalled across a partition, and the
	// merge replays the SIGTERM, which terminates it.
	survivor, err := u3.Run("/sit")
	must(err)
	c.Partition([]SiteID{1, 2}, []SiteID{3})
	if err := u1.Signal(survivor, proc.SIGTERM); !errors.Is(err, proc.ErrSiteFailed) {
		must(fmt.Errorf("cross-partition signal = %v, want ErrSiteFailed", err))
	}
	if _, err := c.Merge(); err != nil {
		must(err)
	}
	c.Site(3).Proc.DrainPrograms()
	c.Network().Quiesce()
	row("partition, signal a live process, merge: queued signal replays")

	t.Notes = append(t.Notes,
		cell("%d/%d waits on the dead site returned ErrSiteFailed; the reader drained %d buffered bytes then io.EOF (eof=%v, never a hang)",
			waitsFailed, sitters, piped, eof),
		cell("commit after the partition abort returned %q; the merge-replayed SIGTERM terminated the surviving sitter", commitErr))
	return t
}

func All() []*Table {
	return []*Table{E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(), E12(), E13(), E14(), E15()}
}

// keep imports referenced in all build configurations
var _ = topology.StageNormal
