package bench

import (
	"fmt"

	"repro/internal/netsim"
	"repro/locus"
)

// Harness bundles the scaffolding every experiment repeats: a tracked
// cluster, the table under construction, and stats-delta measurement.
// The experiment functions stay focused on the protocol sequence they
// reproduce; the harness owns the bookkeeping. Failure mode is panic,
// like the rest of the bench package (see must).
type Harness struct {
	C *locus.Cluster
	T *Table
}

// NewHarness builds an n-site tracked cluster for table t. Callers must
// Close (deferred, normally) so the cluster's dispatch loops stop.
func NewHarness(n int, t *Table) *Harness {
	return &Harness{C: mustCluster(n), T: t}
}

// Close tears the cluster down.
func (h *Harness) Close() { h.C.Close() }

// Login opens a session for user at site.
func (h *Harness) Login(site SiteID, user string) *locus.Session {
	return h.C.Site(site).Login(user)
}

// Write seeds a file through se, panicking on error.
func (h *Harness) Write(se *locus.Session, path string, data []byte) {
	mustWrite(se, path, data)
}

// Settle drains in-flight traffic and pending propagation.
func (h *Harness) Settle() { h.C.Settle() }

// MsgDelta runs op and returns the cluster-wide message-count delta it
// caused — the measurement at the heart of every pinned-count table.
func (h *Harness) MsgDelta(op func()) int64 {
	return h.Delta(op).Msgs
}

// Delta runs op and returns the full simulated-cost delta.
func (h *Harness) Delta(op func()) netsim.Snapshot {
	before := h.C.Stats()
	op()
	return h.C.Stats().Sub(before)
}

// Row appends one row to the table.
func (h *Harness) Row(cells ...string) { h.T.Rows = append(h.T.Rows, cells) }

// Notef appends a formatted note to the table.
func (h *Harness) Notef(format string, args ...any) {
	h.T.Notes = append(h.T.Notes, fmt.Sprintf(format, args...))
}
