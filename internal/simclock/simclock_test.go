package simclock

import (
	"sync"
	"testing"
	"time"
)

func TestAdvanceAndNow(t *testing.T) {
	t.Parallel()
	c := New()
	if c.NowUs() != 0 {
		t.Fatalf("fresh clock reads %d, want 0", c.NowUs())
	}
	if got := c.Advance(1500); got != 1500 {
		t.Fatalf("Advance returned %d, want 1500", got)
	}
	if got := c.Now(); !got.Equal(Epoch.Add(1500 * time.Microsecond)) {
		t.Fatalf("Now = %v, want epoch+1500us", got)
	}
	if got := c.Elapsed(); got != 1500*time.Microsecond {
		t.Fatalf("Elapsed = %v, want 1.5ms", got)
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	t.Parallel()
	c := New()
	c.Advance(100)
	if got := c.Advance(-50); got != 100 {
		t.Fatalf("negative advance moved clock to %d, want 100", got)
	}
}

func TestAdvanceConcurrent(t *testing.T) {
	t.Parallel()
	c := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := c.NowUs(); got != 8000 {
		t.Fatalf("concurrent advances lost updates: %d, want 8000", got)
	}
}

func TestBackoffSpinsThenSleeps(t *testing.T) {
	t.Parallel()
	c := New()
	// Spin-range attempts must not advance virtual time.
	for i := 0; i < spinAttempts; i++ {
		c.Backoff(i)
	}
	if got := c.NowUs(); got != 0 {
		t.Fatalf("spin backoff advanced clock to %d, want 0", got)
	}
	// Escalated attempts charge the sleep to virtual time.
	c.Backoff(spinAttempts)
	if got := c.NowUs(); got != int64(backoffSleep/time.Microsecond) {
		t.Fatalf("escalated backoff advanced clock to %d, want %d", got, backoffSleep/time.Microsecond)
	}
}
