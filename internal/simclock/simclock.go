// Package simclock provides the simulated time source for the LOCUS
// simulation substrate.
//
// The paper's performance story is told in counted costs — messages,
// CPU microseconds, disk microseconds — not in wall-clock time
// ([GOLD83]; see DESIGN.md). The protocol packages therefore must not
// consult the machine's real clock: doing so makes tests flaky, couples
// benchmark results to host load, and breaks the determinism the
// partition/merge tests depend on. The `simclock` analyzer in
// internal/lint enforces that discipline; this package is the one
// audited place where simulated time meets the real scheduler.
//
// A Clock is a monotonic virtual-microsecond counter. The network
// substrate advances it as simulated cost is charged (per message, per
// disk transfer), so Now reflects the same cost model the benchmarks
// report. Backoff is the sanctioned replacement for ad-hoc
// spin/sleep loops in protocol code: it yields the Go scheduler and,
// for long waits, parks the OS thread briefly — charging the wait to
// virtual time so the clock keeps moving while the simulation idles.
package simclock

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Epoch is the fixed origin of simulated time. (The paper was presented
// at SOSP on 10 October 1983.)
var Epoch = time.Date(1983, time.October, 10, 0, 0, 0, 0, time.UTC)

// spinAttempts is the number of Backoff attempts serviced by a pure
// scheduler yield before escalating to a real sleep.
const spinAttempts = 100

// backoffSleep is the real (and charged virtual) duration of one
// escalated Backoff step.
const backoffSleep = 100 * time.Microsecond

// Clock is a monotonic simulated clock counting virtual microseconds.
// The zero value is ready to use. All methods are safe for concurrent
// use.
type Clock struct {
	us atomic.Int64
}

// New returns a clock at virtual time zero.
func New() *Clock { return &Clock{} }

// Advance moves the clock forward by us virtual microseconds and
// returns the new reading. Negative advances are ignored: simulated
// time never runs backwards.
func (c *Clock) Advance(us int64) int64 {
	if us <= 0 {
		return c.us.Load()
	}
	return c.us.Add(us)
}

// NowUs returns the current virtual time in microseconds since Epoch.
func (c *Clock) NowUs() int64 { return c.us.Load() }

// Now returns the current virtual time as an absolute time: Epoch plus
// the virtual microseconds elapsed. Protocol code that needs a
// timestamp (mtimes, mail headers, log lines) uses this instead of
// time.Now.
func (c *Clock) Now() time.Time {
	return Epoch.Add(time.Duration(c.us.Load()) * time.Microsecond)
}

// Elapsed returns the virtual time elapsed since Epoch as a Duration.
func (c *Clock) Elapsed() time.Duration {
	return time.Duration(c.us.Load()) * time.Microsecond
}

// Backoff yields while a caller waits for concurrent progress it cannot
// observe through a channel (lock retry loops, quiesce polls). Low
// attempt numbers cost only a scheduler yield; past spinAttempts each
// call sleeps briefly so a long wait does not burn a core. The sleep is
// charged to virtual time, keeping Now moving during idle waits.
//
// This is the single sanctioned wall-clock sleep in the simulation
// substrate; protocol packages are forbidden (by the simclock analyzer)
// from calling time.Sleep directly.
func (c *Clock) Backoff(attempt int) {
	if attempt < spinAttempts {
		runtime.Gosched()
		return
	}
	time.Sleep(backoffSleep)
	c.Advance(int64(backoffSleep / time.Microsecond))
}
