package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PanicDisciplineAnalyzer flags panic calls in library code that are
// not explicit invariant assertions.
//
// A panic in a protocol path takes down every simulated site at once —
// the exact opposite of the partition-tolerant failure model the paper
// describes. Library code must return typed errors for recoverable
// conditions and reserve panics for genuine invariant violations,
// marked so readers (and this analyzer) can tell the two apart.
//
// A panic is sanctioned when any of these hold:
//   - the enclosing function's name is "must" or starts with
//     "must"/"Must" (the conventional fail-on-setup-error helpers);
//   - the panic line, or one of the two lines above it, carries an
//     `// invariant:` comment stating the violated assumption;
//   - it is in a main package (top-level tooling may abort freely), a
//     _test.go file, or a configured invariant package.
func PanicDisciplineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "panicdiscipline",
		Doc:  "flag panic in library code that is not a marked invariant assertion",
		Run:  runPanicDiscipline,
	}
}

func runPanicDiscipline(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range prog.Targets {
		if pkg.Types.Name() == "main" || suffixMatchesAny(pkg.Path, cfg.InvariantPackages) {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			marks := invariantCommentLines(prog.Fset, file)
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				allowedFn := isMustFunc(fn.Name.Name)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						// Function literals inherit the enclosing
						// function's dispensation; no extra handling.
						_ = lit
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok || ident.Name != "panic" {
						return true
					}
					if _, isBuiltin := pkg.Info.Uses[ident].(*types.Builtin); !isBuiltin {
						return true
					}
					if allowedFn {
						return true
					}
					pos := prog.Fset.Position(call.Pos())
					if sup.allowed(pos, "panicdiscipline") {
						return true
					}
					if marks[pos.Line] || marks[pos.Line-1] || marks[pos.Line-2] {
						return true
					}
					out = append(out, Finding{
						Pos:      pos,
						Analyzer: "panicdiscipline",
						Message: "panic in library code: return a typed error, or mark the call " +
							"with an `// invariant:` comment naming the violated assumption",
					})
					return true
				})
			}
		}
	}
	return out
}

// isMustFunc reports whether a function name carries the must-helper
// dispensation: the helper's whole contract is "abort on error".
func isMustFunc(name string) bool {
	return name == "must" || strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must")
}

// invariantCommentLines collects the lines of `// invariant:` marker
// comments in a file.
func invariantCommentLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "invariant:") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}
