package lint

import (
	"go/ast"
	"go/types"
)

// callGraph is the shared call-graph summary layer: every analyzed
// function body in the loaded program, its statically resolved callees,
// and a name index for interface-method dispatch. lockorder built this
// machinery first; blockinglock and goroutinejoin reuse it so all
// whole-program analyzers agree on what a call can reach.
//
// Resolution is conservative in the same way lockorder always was:
// concrete functions resolve to themselves, interface methods resolve
// to every analyzed method with the same name, and function literals
// are not propagated (they are analyzed as separate roots by the
// analyzers that care).
type callGraph struct {
	prog *Program
	// bodies maps every analyzed function to its declaration body.
	bodies map[*types.Func]*funcBody
	// callees records each analyzed function's statically resolved calls.
	callees map[*types.Func][]*types.Func
	// methodsByName resolves interface-method calls: every analyzed
	// method with a given name may be the dynamic target.
	methodsByName map[string][]*types.Func
}

// buildCallGraph walks every target package once. onCall, if non-nil,
// is invoked for every call expression outside function literals and
// may claim the call (return true) so it is not recorded as a callee —
// lockorder uses this to divert mutex operations into its acquire sets.
func buildCallGraph(prog *Program, onCall func(pkg *Package, fn *types.Func, call *ast.CallExpr) bool) *callGraph {
	g := &callGraph{
		prog:          prog,
		bodies:        make(map[*types.Func]*funcBody),
		callees:       make(map[*types.Func][]*types.Func),
		methodsByName: make(map[string][]*types.Func),
	}
	for _, pkg := range prog.Targets {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				g.bodies[obj] = &funcBody{pkg: pkg, body: fn.Body, name: funcDisplayName(obj)}
				if fn.Recv != nil {
					g.methodsByName[fn.Name.Name] = append(g.methodsByName[fn.Name.Name], obj)
				}
				pkg := pkg
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if _, ok := n.(*ast.FuncLit); ok {
						return false
					}
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if onCall != nil && onCall(pkg, obj, call) {
						return true
					}
					if callee := funcFor(pkg.Info, call); callee != nil {
						g.callees[obj] = append(g.callees[obj], callee)
					}
					return true
				})
			}
		}
	}
	return g
}

// resolveTargets maps a statically resolved callee to the analyzed
// functions it may dispatch to.
func (g *callGraph) resolveTargets(callee *types.Func) []*types.Func {
	if _, ok := g.bodies[callee]; ok {
		return []*types.Func{callee}
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); !isIface {
		return nil
	}
	return g.methodsByName[callee.Name()]
}

// fixpointSets closes per-function summary sets over the call graph: a
// function's set absorbs every resolved callee's set until nothing
// changes. The caller seeds `sets` with direct facts (lockorder: lock
// classes acquired; blockinglock: a single "may block" bit).
func (g *callGraph) fixpointSets(sets map[*types.Func]map[int]bool) {
	for fn := range g.bodies {
		if sets[fn] == nil {
			sets[fn] = make(map[int]bool)
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, set := range sets {
			for _, callee := range g.callees[fn] {
				for _, target := range g.resolveTargets(callee) {
					for class := range sets[target] {
						if !set[class] {
							set[class] = true
							changed = true
						}
					}
				}
			}
		}
	}
}
