package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// GoroutineJoinAnalyzer requires every `go` statement in the protocol
// packages to be registered with a join its owner provably waits on.
//
// An unjoined goroutine in fs/proc/netsim is the lost-wakeup and
// drain-nondeterminism class: a propagation worker that outlives
// StopPropagationDaemon keeps mutating kernel state after the test
// tore the site down, and a program body racing past exit makes
// drain-order nondeterministic under the seeded chaos harness. The
// repository's two sanctioned idioms are:
//
//   - WaitGroup lane: `wg.Add(1)` dominates the go statement (CFG
//     dominance, so no path reaches the spawn without registering),
//     and the spawned literal's first statement is `defer wg.Done()`.
//     For a WaitGroup local to the function, a `wg.Wait()` must also
//     appear in the same function; a WaitGroup reached through a field
//     or free variable places the Wait obligation on the owning type
//     (its Stop/Drain method), which the analyzer accepts.
//   - Join counter: the first statement defers a negative Add on an
//     atomic counter field named in Config.JoinFields (netsim's
//     `active`, drained by Quiesce), with a positive Add dominating.
//
// Anything else — including `go f(x)` on a named function, where the
// first-statement convention cannot be checked — is a finding; truly
// fire-and-forget spawns take a `//locus:vet-allow goroutinejoin`
// with the reason the goroutine cannot outlive anyone who cares.
func GoroutineJoinAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutinejoin",
		Doc:  "every go statement must register with a WaitGroup or lane-join counter its owner waits on",
		Run:  runGoroutineJoin,
	}
}

func runGoroutineJoin(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range prog.Targets {
		if !pkgInScope(pkg, cfg.GoJoinPackages) {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				bodies := []*ast.BlockStmt{fn.Body}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						bodies = append(bodies, lit.Body)
					}
					return true
				})
				for _, body := range bodies {
					out = append(out, checkGoJoins(prog, cfg, pkg, sup, body)...)
				}
			}
		}
	}
	return out
}

// checkGoJoins validates the go statements whose immediately enclosing
// body is `body` (nested literals are handled as their own roots).
func checkGoJoins(prog *Program, cfg *Config, pkg *Package, sup *suppressions, body *ast.BlockStmt) []Finding {
	var gos []*ast.GoStmt
	inspectNoFuncLit(body, func(n ast.Node) {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
	})
	if len(gos) == 0 {
		return nil
	}
	var out []Finding
	var g *funcCFG
	var dom map[*cfgBlock]map[*cfgBlock]bool
	for _, gs := range gos {
		pos := prog.Fset.Position(gs.Pos())
		if sup.allowed(pos, "goroutinejoin") {
			continue
		}
		join, joinExpr := joinRegistration(pkg, cfg, gs)
		if join == joinWaitGroupLocal {
			// A WaitGroup reached through a field or a free variable
			// places the Wait obligation on the owning type's Stop/Drain
			// method; only a body-local WaitGroup must Wait here.
			if id, ok := ast.Unparen(joinExpr).(*ast.Ident); !ok {
				join = joinWaitGroupOwned
			} else if obj := pkg.Info.Uses[id]; obj == nil || obj.Pos() < body.Pos() || obj.Pos() > body.End() {
				join = joinWaitGroupOwned
			}
		}
		if join == joinNone {
			out = append(out, Finding{
				Pos:      pos,
				Analyzer: "goroutinejoin",
				Message:  "goroutine has no join registration: first statement must defer a WaitGroup Done or a negative join-counter Add",
			})
			continue
		}
		// The matching Add must dominate the spawn so no path launches
		// an unregistered goroutine.
		if g == nil {
			g = buildCFG(body, nil)
			dom = g.dominators()
		}
		if !addDominates(pkg, g, dom, gs, join, joinExpr) {
			out = append(out, Finding{
				Pos:      pos,
				Analyzer: "goroutinejoin",
				Message:  "goroutine's join registration (Add) does not dominate the go statement; a path can spawn without registering",
			})
			continue
		}
		if join == joinWaitGroupLocal && !waitsOn(pkg, body, joinExpr) {
			out = append(out, Finding{
				Pos:      pos,
				Analyzer: "goroutinejoin",
				Message:  "goroutine registers with a local WaitGroup the function never Waits on",
			})
		}
	}
	return out
}

type joinKind int

const (
	joinNone joinKind = iota
	joinWaitGroupLocal
	joinWaitGroupOwned // field / free variable: Wait lives on the owner
	joinCounter        // configured lane-join counter field
)

// joinRegistration classifies the spawned function's first statement.
// It returns the join kind and the expression denoting the join object
// (the WaitGroup or counter operand of the deferred call).
func joinRegistration(pkg *Package, cfg *Config, gs *ast.GoStmt) (joinKind, ast.Expr) {
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return joinNone, nil
	}
	if len(lit.Body.List) == 0 {
		return joinNone, nil
	}
	df, ok := lit.Body.List[0].(*ast.DeferStmt)
	if !ok {
		return joinNone, nil
	}
	sel, ok := ast.Unparen(df.Call.Fun).(*ast.SelectorExpr)
	if !ok {
		return joinNone, nil
	}
	switch sel.Sel.Name {
	case "Done":
		if !isWaitGroup(pkg.Info.TypeOf(sel.X)) {
			return joinNone, nil
		}
		// Locality (and therefore the Wait obligation) is decided by the
		// caller, which knows the analyzed body's extent.
		return joinWaitGroupLocal, sel.X
	case "Add":
		if len(df.Call.Args) != 1 || !negativeConst(pkg, df.Call.Args[0]) {
			return joinNone, nil
		}
		if fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			for _, name := range cfg.JoinFields {
				if fieldSel.Sel.Name == name {
					return joinCounter, sel.X
				}
			}
		}
		return joinNone, nil
	}
	return joinNone, nil
}

// addDominates reports whether a registration call — Add(positive) on
// the same join object — dominates the go statement's block.
func addDominates(pkg *Package, g *funcCFG, dom map[*cfgBlock]map[*cfgBlock]bool, gs *ast.GoStmt, kind joinKind, joinExpr ast.Expr) bool {
	goBlock := g.blockOf(gs)
	if goBlock == nil {
		return false
	}
	for _, blk := range g.blocks {
		if !dom[goBlock][blk] {
			continue
		}
		for _, atom := range blk.atoms {
			found := false
			ast.Inspect(atom, func(n ast.Node) bool {
				// The spawned literal's own statements do not register
				// the spawn; skip nested literals entirely.
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" {
					return true
				}
				if len(call.Args) != 1 || negativeConst(pkg, call.Args[0]) {
					return true
				}
				if sameJoinObject(pkg, sel.X, joinExpr) {
					found = true
				}
				return !found
			})
			if found {
				// A same-block Add counts only if it precedes the go
				// statement; atom order within the block is execution
				// order, so compare positions.
				if blk == goBlock {
					return addPrecedesInBlock(pkg, blk, gs, joinExpr)
				}
				return true
			}
		}
	}
	return false
}

// addPrecedesInBlock checks intra-block ordering of the Add and the go.
func addPrecedesInBlock(pkg *Package, blk *cfgBlock, gs *ast.GoStmt, joinExpr ast.Expr) bool {
	for _, atom := range blk.atoms {
		if atom == ast.Node(gs) {
			return false
		}
		ok := false
		ast.Inspect(atom, func(n ast.Node) bool {
			if n == ast.Node(gs) {
				return false
			}
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if isSel && sel.Sel.Name == "Add" && len(call.Args) == 1 &&
				!negativeConst(pkg, call.Args[0]) && sameJoinObject(pkg, sel.X, joinExpr) {
				ok = true
			}
			return !ok
		})
		if ok {
			return true
		}
	}
	return false
}

// waitsOn reports whether the body calls Wait() on the same local
// WaitGroup.
func waitsOn(pkg *Package, body *ast.BlockStmt, joinExpr ast.Expr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Wait" && sameJoinObject(pkg, sel.X, joinExpr) {
			found = true
		}
		return !found
	})
	return found
}

// sameJoinObject compares two join-object expressions: identical local
// identifiers, or selector chains with the same field path.
func sameJoinObject(pkg *Package, a, b ast.Expr) bool {
	return joinObjectKey(pkg, a) != "" && joinObjectKey(pkg, a) == joinObjectKey(pkg, b)
}

func joinObjectKey(pkg *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[x]; obj != nil {
			return fmt.Sprintf("%s@%d", x.Name, obj.Pos())
		}
		return x.Name
	case *ast.SelectorExpr:
		base := joinObjectKey(pkg, x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return joinObjectKey(pkg, x.X)
	}
	return ""
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	n := namedOrNil(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// negativeConst reports whether e is a negative integer constant.
func negativeConst(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v < 0
}
