package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrderAnalyzer enforces the declared lock hierarchy.
//
// The hierarchy (Config.LockHierarchy, outermost first) is total:
// while holding a class's mutex, code may only acquire mutexes of
// classes that come strictly later. Acquiring an earlier class — in
// the function itself or anywhere in its static call graph — is an
// inversion: two sites running the protocol concurrently can then
// reach the classic AB/BA deadlock, which in this simulation only
// manifests under partition churn when the replica-reconciliation and
// commit paths overlap.
//
// The analysis is conservative where it must be cheap: statements are
// walked in source order with a single held-set (a deferred Unlock
// keeps its class held to function end), and call effects are the
// fixpoint of each function's transitive may-acquire set. Calls to
// interface methods are resolved by name against every analyzed method.
// Function literals are analyzed as separate roots (they usually run
// as goroutines with no inherited locks).
func LockOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "lockorder",
		Doc:  "enforce the declared lock hierarchy (outermost to innermost)",
		Run:  runLockOrder,
	}
}

type lockAnalysis struct {
	prog *Program
	cfg  *Config
	// graph is the shared call-graph summary (bodies, callees, interface
	// dispatch by name); see callsummary.go.
	graph *callGraph
	// acquires is each analyzed function's transitive may-acquire set of
	// hierarchy class indices.
	acquires map[*types.Func]map[int]bool
}

type funcBody struct {
	pkg  *Package
	body *ast.BlockStmt
	name string
}

func runLockOrder(prog *Program, cfg *Config) []Finding {
	a := &lockAnalysis{
		prog:     prog,
		cfg:      cfg,
		acquires: make(map[*types.Func]map[int]bool),
	}
	// Direct acquire sets are seeded during the call-graph walk: mutex
	// operations are claimed here so they are not recorded as callees,
	// then fixpointSets closes the sets transitively. Function literals
	// are not propagated (they usually run as goroutines with no
	// inherited locks).
	a.graph = buildCallGraph(prog, func(pkg *Package, fn *types.Func, call *ast.CallExpr) bool {
		class, op, ok := a.lockOp(pkg, call)
		if !ok {
			return false
		}
		if op == "Lock" || op == "RLock" {
			if a.acquires[fn] == nil {
				a.acquires[fn] = make(map[int]bool)
			}
			a.acquires[fn][class] = true
		}
		return true
	})
	a.graph.fixpointSets(a.acquires)
	return a.report()
}

// resolveTargets maps a statically resolved callee to the analyzed
// functions it may dispatch to.
func (a *lockAnalysis) resolveTargets(callee *types.Func) []*types.Func {
	return a.graph.resolveTargets(callee)
}

// report walks every analyzed body in source order with a held-set and
// flags hierarchy inversions at acquire sites and call sites.
func (a *lockAnalysis) report() []Finding {
	var out []Finding
	sups := make(map[*Package]*suppressions)
	for fn, fb := range a.graph.bodies {
		sup := sups[fb.pkg]
		if sup == nil {
			sup = suppressionsFor(a.prog, fb.pkg, a.cfg)
			sups[fb.pkg] = sup
		}
		_ = fn
		held := make(map[int]token.Pos)   // class -> acquire position
		sticky := make(map[int]bool)      // classes whose Unlock is deferred
		pkg, fset := fb.pkg, a.prog.Fset
		ast.Inspect(fb.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// A deferred Unlock keeps the class held to function
				// end. Deferred Locks or protocol calls run at return
				// with an unknowable held-set; skip them.
				if class, op, ok := a.lockOp(pkg, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
					sticky[class] = true
				}
				return false
			case *ast.CallExpr:
				if class, op, ok := a.lockOp(pkg, st); ok {
					switch op {
					case "Lock", "RLock":
						for h, hpos := range held {
							if h > class {
								pos := fset.Position(st.Pos())
								if !sup.allowed(pos, "lockorder") {
									out = append(out, Finding{
										Pos:      pos,
										Analyzer: "lockorder",
										Message: fmt.Sprintf("acquires %s while holding %s (acquired at %s): inverts the declared lock hierarchy",
											a.className(class), a.className(h), fset.Position(hpos)),
									})
								}
							}
						}
						held[class] = st.Pos()
					case "Unlock", "RUnlock":
						if !sticky[class] {
							delete(held, class)
						}
					}
					return true
				}
				if len(held) == 0 {
					return true
				}
				callee := funcFor(pkg.Info, st)
				if callee == nil {
					return true
				}
				for _, target := range a.resolveTargets(callee) {
					for class := range a.acquires[target] {
						for h := range held {
							if h > class {
								pos := fset.Position(st.Pos())
								if !sup.allowed(pos, "lockorder") {
									out = append(out, Finding{
										Pos:      pos,
										Analyzer: "lockorder",
										Message: fmt.Sprintf("call to %s may acquire %s while holding %s: inverts the declared lock hierarchy",
											funcDisplayName(callee), a.className(class), a.className(h)),
									})
								}
							}
						}
					}
				}
				return true
			}
			return true
		})
	}
	return out
}

// lockOp recognizes Lock/RLock/Unlock/RUnlock calls on a mutex owned by
// a hierarchy class, returning the class index and operation name.
func (a *lockAnalysis) lockOp(pkg *Package, call *ast.CallExpr) (int, string, bool) {
	return lockOpOn(pkg, call, a.cfg.LockHierarchy)
}

// lockOpOn recognizes Lock/RLock/Unlock/RUnlock calls on a mutex owned
// by one of the given classes, returning the class index and operation
// name. Both the named-field form (owner.mu.Lock()) and the embedded
// form (owner.Lock()) are matched; mutexes not attached to a listed
// class are ignored. Shared by lockorder and blockinglock.
func lockOpOn(pkg *Package, call *ast.CallExpr, classes []LockClass) (int, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return 0, "", false
	}
	recvType := pkg.Info.TypeOf(sel.X)
	if recvType == nil {
		return 0, "", false
	}
	if isSyncLocker(recvType) {
		// owner.mu.Lock(): the class is the type owning the mutex field.
		owner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return 0, "", false
		}
		ownerType := pkg.Info.TypeOf(owner.X)
		if class, ok := classIndexIn(ownerType, classes); ok {
			return class, op, true
		}
		return 0, "", false
	}
	// owner.Lock() via an embedded mutex: the receiver itself is the class.
	if class, ok := classIndexIn(recvType, classes); ok {
		if f, ok := pkg.Info.Selections[sel]; ok {
			if m, ok := f.Obj().(*types.Func); ok && m.Pkg() != nil && m.Pkg().Path() == "sync" {
				return class, op, true
			}
		}
	}
	return 0, "", false
}

// classIndexIn finds the class of a (possibly pointer) type in a list.
func classIndexIn(t types.Type, classes []LockClass) (int, bool) {
	if t == nil {
		return 0, false
	}
	for i, c := range classes {
		if typeMatches(t, c.PkgSuffix, c.Type) {
			return i, true
		}
	}
	return 0, false
}

func isSyncLocker(t types.Type) bool {
	n := namedOrNil(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

func (a *lockAnalysis) className(i int) string {
	return a.cfg.LockHierarchy[i].String()
}

func funcDisplayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOrNil(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
