// Package lint is locus-vet: a repo-specific static analyzer for the
// LOCUS simulation substrate, built only on the standard library's
// go/ast, go/parser, and go/types.
//
// General-purpose linters cannot know this repository's protocol
// contracts; these analyzers encode them:
//
//   - simclock: protocol packages must use the simulated clock
//     (internal/simclock), never the wall clock. Wall-clock reads make
//     the deterministic partition/merge tests flaky and decouple
//     benchmark output from the counted cost model.
//   - uncheckedcall: an ignored error from a netsim exchange or a
//     storage commit/abort silently drops a protocol transition — the
//     failure modes (§2.3.6, §5) the paper's recovery machinery exists
//     to handle.
//   - lockorder: mutex acquisitions must follow the declared hierarchy
//     (cluster → fs kernel → storage → netsim); an inversion is a
//     latent deadlock that only manifests under partition churn.
//   - panicdiscipline: library code must fail through typed errors or
//     the internal/lint/invariant assertion layer; a bare panic in a
//     protocol path takes down the whole simulated network.
//   - rawcall: internal/fs and internal/proc must reach the transport
//     through their retrying at-most-once wrappers; a direct Node.Call
//     bypasses retry and dedup, so under message loss it fails
//     spuriously or replays a mutation.
//
// Findings are suppressed line-by-line with a trailing
// `//locus:vet-allow <analyzer> <reason>` comment (the original
// `//locusvet:allow` spelling is also recognized). Every suppression
// must carry a justification; the pre-history `//nolint:errcheck`
// convention no longer suppresses anything and is itself flagged by
// the allow-directive audit.
package lint

import (
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Finding is one analyzer diagnosis.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, cfg *Config) []Finding
}

// MethodSpec names a method whose error return must not be discarded.
type MethodSpec struct {
	// PkgSuffix matches the defining package by import-path suffix.
	PkgSuffix string
	// Recv is the receiver type name ("" for package-level functions).
	Recv string
	// Name is the method or function name.
	Name string
}

// LockClass names a mutex-owning struct participating in the declared
// lock hierarchy.
type LockClass struct {
	// PkgSuffix matches the defining package by import-path suffix.
	PkgSuffix string
	// Type is the struct type whose mutex fields this class covers.
	Type string
}

func (c LockClass) String() string { return c.PkgSuffix + "." + c.Type }

// TypeSpec names a type by defining-package suffix and type name.
type TypeSpec struct {
	PkgSuffix string
	Type      string
}

func (t TypeSpec) String() string { return t.PkgSuffix + "." + t.Type }

// VarSpec names a package-level variable (a sentinel error) by
// defining-package suffix and name.
type VarSpec struct {
	PkgSuffix string
	Name      string
}

func (v VarSpec) String() string { return v.PkgSuffix + "." + v.Name }

// Config parameterizes the analyzers. Production runs use
// DefaultConfig; fixture tests substitute fixture packages and types.
type Config struct {
	// ProtocolPackages are import-path suffixes of packages that must
	// use the simulated clock (simclock analyzer).
	ProtocolPackages []string
	// MustCheck lists calls whose error results must be consumed
	// (uncheckedcall analyzer).
	MustCheck []MethodSpec
	// LockHierarchy is the declared lock order, outermost first
	// (lockorder analyzer). Acquiring an earlier class while holding a
	// later one is an inversion.
	LockHierarchy []LockClass
	// InvariantPackages are import-path suffixes of packages whose
	// entire purpose is assertion (panic there is the mechanism, not a
	// violation).
	InvariantPackages []string
	// RawCallWrapped are import-path suffixes of packages that must
	// reach the transport through their retrying at-most-once wrapper
	// (rawcall analyzer).
	RawCallWrapped []string
	// RawCallTransport are the transport methods counted as raw uses
	// inside RawCallWrapped packages.
	RawCallTransport []MethodSpec

	// PageAlloc lists calls that hand the caller a storage resource
	// (shadow page, reserved inode number) that must be released,
	// committed, or staged on every path (pageleak analyzer).
	PageAlloc []MethodSpec
	// FreshFuncs are method names whose results are freshly owned
	// values; a local assigned from one is an "owned root" that page
	// facts may be parked in without counting as a release.
	FreshFuncs []string

	// AliasTypes are pointer types that must be Cloned before mutation
	// or escape when obtained from an RPC decode (inodealias analyzer).
	AliasTypes []TypeSpec
	// AliasCloneMethods are the methods that produce an owned copy of an
	// AliasTypes value ("Clone").
	AliasCloneMethods []string
	// AliasPackages scopes the inodealias analyzer.
	AliasPackages []string

	// GoJoinPackages scopes the goroutinejoin analyzer: every `go`
	// statement there must be registered with a join the function (or
	// the owning struct) provably waits on.
	GoJoinPackages []string
	// JoinFields are field names of lane-join counters (atomic counters
	// drained by a quiesce loop elsewhere); a goroutine whose first
	// statement defers a negative Add on one is considered joined.
	JoinFields []string

	// RPCMethodPrefixes identify protocol method-string constants by
	// value prefix ("fs.", "proc.") — rpcconsistency analyzer.
	RPCMethodPrefixes []string
	// RPCRegister are the handler-registration calls (Node.Handle).
	RPCRegister []MethodSpec
	// RPCInvoke are the transports and wrappers whose string argument
	// names a protocol method.
	RPCInvoke []MethodSpec
	// RPCTwoWay is the subset of RPCInvoke doing request/response
	// exchanges subject to at-most-once classification.
	RPCTwoWay []MethodSpec
	// RPCMutatingVar names the package-level set of deduplicated
	// (sequence-numbered) methods; two-way methods must appear there or
	// in RPCIdempotent.
	RPCMutatingVar string
	// RPCIdempotent lists method strings exempt from dedup because
	// replaying them is harmless.
	RPCIdempotent []string

	// BlockingCalls are primitives that block on concurrent progress
	// (network exchanges, simulated-clock backoff); the blockinglock
	// analyzer forbids reaching one while holding a BlockingGuard mutex.
	BlockingCalls []MethodSpec
	// BlockingGuard are the lock classes that must never be held across
	// a blocking call.
	BlockingGuard []LockClass

	// OrderEffects are the transport exchanges whose ORDER is part of
	// the deterministic schedule: every send bumps the per-
	// (from,to,method) occurrence counter the fault plane keys its
	// drop/dup/delay decisions on, so reordering a group of sends
	// changes what a pinned seed replays. The interprocedural summary
	// tier (summary.go) closes "may reach one" over the call graph; the
	// maporder analyzer flags raw map ranges whose bodies carry the
	// fact.
	OrderEffects []MethodSpec
	// MapOrderPackages scopes the maporder analyzer.
	MapOrderPackages []string

	// SentinelVars are the raw transport/fs-site sentinels that must
	// not escape an exported API without passing a wrap funnel
	// (sentinelerr analyzer; the §5.6 failure-action discipline).
	SentinelVars []VarSpec
	// SentinelFunnels are the designated wrap functions that launder a
	// raw sentinel into the classified form callers are promised
	// (proc.wrapSiteErr, proc.wrapFsSiteErr).
	SentinelFunnels []MethodSpec
	// SentinelSources are calls whose error result is presumed tainted
	// even without an analyzed body (fixtures use this; production
	// relies on the transitive summary instead).
	SentinelSources []MethodSpec
	// SentinelAPIPackages are the packages whose exported functions and
	// methods must never return a raw sentinel.
	SentinelAPIPackages []string

	// VVTypes are the version-vector map types that may only be mutated
	// through their own package's operations (vvmutation analyzer);
	// a direct indexed write or delete() elsewhere bypasses the
	// dominance rules §4.3's reconciliation depends on.
	VVTypes []TypeSpec
	// VVExemptPackages may mutate VVTypes directly (the defining
	// package itself).
	VVExemptPackages []string

	// AtomicPackages scopes the atomiccounter analyzer: within them, a
	// struct field accessed through sync/atomic anywhere must be
	// accessed that way everywhere, transitively through helpers the
	// field's address is forwarded to.
	AtomicPackages []string

	// mu guards the interprocedural summary cache and the used-allow
	// tracker below.
	mu sync.Mutex
	// summary/summaryProg cache the summary table built for a Program;
	// summaryBuilds/summaryHits count builds and cache hits.
	summary      *summaries
	summaryProg  *Program
	summaryBuilds int
	summaryHits   int
	// usedAllows records every suppression that actually fired under
	// this Config: filename -> line -> analyzer names suppressed there.
	// StaleAllowFindings reports directives that never fired.
	usedAllows map[string]map[int]map[string]bool
}

// noteAllowUsed records that a suppression fired at pos for analyzer.
func (cfg *Config) noteAllowUsed(pos token.Position, analyzer string) {
	cfg.mu.Lock()
	defer cfg.mu.Unlock()
	if cfg.usedAllows == nil {
		cfg.usedAllows = make(map[string]map[int]map[string]bool)
	}
	lineMap := cfg.usedAllows[pos.Filename]
	if lineMap == nil {
		lineMap = make(map[int]map[string]bool)
		cfg.usedAllows[pos.Filename] = lineMap
	}
	set := lineMap[pos.Line]
	if set == nil {
		set = make(map[string]bool)
		lineMap[pos.Line] = set
	}
	set[analyzer] = true
}

// allowUsed reports whether any suppression fired at (filename, line).
func (cfg *Config) allowUsed(filename string, line int) bool {
	cfg.mu.Lock()
	defer cfg.mu.Unlock()
	return len(cfg.usedAllows[filename][line]) > 0
}

// DefaultConfig is the production configuration for this repository.
func DefaultConfig() *Config {
	return &Config{
		ProtocolPackages: []string{
			"internal/netsim",
			"internal/fs",
			"internal/storage",
			"internal/txn",
			"internal/recon",
			"internal/topology",
		},
		MustCheck: []MethodSpec{
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Call"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "CallSeq"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Cast"},
			{PkgSuffix: "internal/fs", Recv: "Kernel", Name: "call"},
			{PkgSuffix: "internal/fs", Recv: "Kernel", Name: "cast"},
			{PkgSuffix: "internal/proc", Recv: "Manager", Name: "call"},
			{PkgSuffix: "internal/proc", Recv: "Manager", Name: "cast"},
			{PkgSuffix: "internal/storage", Recv: "Container", Name: "CommitInode"},
			{PkgSuffix: "internal/fs", Recv: "File", Name: "Commit"},
			{PkgSuffix: "internal/fs", Recv: "File", Name: "Abort"},
			{PkgSuffix: "internal/fs", Recv: "File", Name: "Close"},
		},
		// The declared lock hierarchy, outermost to innermost. See
		// DESIGN.md "Correctness tooling".
		LockHierarchy: []LockClass{
			{PkgSuffix: "internal/cluster", Type: "Cluster"},
			{PkgSuffix: "internal/fs", Type: "Kernel"},
			{PkgSuffix: "internal/storage", Type: "Store"},
			{PkgSuffix: "internal/storage", Type: "Container"},
			{PkgSuffix: "internal/netsim", Type: "Network"},
			{PkgSuffix: "internal/netsim", Type: "Node"},
			{PkgSuffix: "internal/netsim", Type: "Stats"},
		},
		InvariantPackages: []string{"internal/lint/invariant"},
		RawCallWrapped:    []string{"internal/fs", "internal/proc"},
		RawCallTransport: []MethodSpec{
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Call"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "CallSeq"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Cast"},
		},

		PageAlloc: []MethodSpec{
			{PkgSuffix: "internal/storage", Recv: "Container", Name: "WritePage"},
			{PkgSuffix: "internal/storage", Recv: "Container", Name: "AllocInode"},
		},
		FreshFuncs: []string{"Clone"},

		AliasTypes:        []TypeSpec{{PkgSuffix: "internal/storage", Type: "Inode"}},
		AliasCloneMethods: []string{"Clone"},
		AliasPackages:     []string{"internal/fs", "internal/proc"},

		GoJoinPackages: []string{"internal/fs", "internal/proc", "internal/netsim"},
		JoinFields:     []string{"active"},

		RPCMethodPrefixes: []string{"fs.", "proc."},
		RPCRegister: []MethodSpec{
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Handle"},
		},
		RPCInvoke: []MethodSpec{
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Call"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "CallSeq"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Cast"},
			{PkgSuffix: "internal/fs", Recv: "Kernel", Name: "call"},
			{PkgSuffix: "internal/fs", Recv: "Kernel", Name: "cast"},
			{PkgSuffix: "internal/proc", Recv: "Manager", Name: "call"},
			{PkgSuffix: "internal/proc", Recv: "Manager", Name: "cast"},
			{PkgSuffix: "internal/proc", Recv: "Manager", Name: "pipeCall"},
		},
		RPCTwoWay: []MethodSpec{
			{PkgSuffix: "internal/fs", Recv: "Kernel", Name: "call"},
		},
		RPCMutatingVar: "mutating",
		// Replaying these two-way methods is harmless: reads, version
		// probes, pull-protocol fetches, and the best-effort revoke
		// (revoking twice leaves the same state).
		RPCIdempotent: []string{
			"fs.read", "fs.getvv", "fs.pullopen", "fs.readphys",
			"fs.pullpages", "fs.listinodes", "fs.probeopen", "fs.revokeserve",
		},

		BlockingCalls: []MethodSpec{
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Call"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "CallSeq"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Cast"},
			{PkgSuffix: "internal/simclock", Recv: "Clock", Name: "Backoff"},
		},
		BlockingGuard: []LockClass{
			{PkgSuffix: "internal/fs", Type: "Kernel"},
			{PkgSuffix: "internal/proc", Type: "Manager"},
			{PkgSuffix: "internal/storage", Type: "Store"},
			{PkgSuffix: "internal/storage", Type: "Container"},
		},

		// The transport exchanges are the order-observable effects: the
		// fault plane's drop/dup/delay decisions key on the per-
		// (from,to,method) occurrence number of each send, so the order
		// of a group of sends is part of the seed-replay contract.
		// Wrappers (Kernel.call, Manager.cast, pipeCall...) inherit the
		// fact through the summary closure.
		OrderEffects: []MethodSpec{
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Call"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "CallSeq"},
			{PkgSuffix: "internal/netsim", Recv: "Node", Name: "Cast"},
		},
		MapOrderPackages: []string{
			"internal/fs", "internal/proc", "internal/netsim", "internal/chaos",
		},

		// §5.6 failure-action discipline: proc's exported API promises
		// ErrSiteFailed (or a classified proc error), never a raw
		// transport or fs-site sentinel. fs deliberately surfaces the
		// raw sentinels — proc is the layer that wraps them.
		SentinelVars: []VarSpec{
			{PkgSuffix: "internal/netsim", Name: "ErrUnreachable"},
			{PkgSuffix: "internal/netsim", Name: "ErrTimeout"},
			{PkgSuffix: "internal/netsim", Name: "ErrCircuitClosed"},
			{PkgSuffix: "internal/netsim", Name: "ErrSiteDown"},
			{PkgSuffix: "internal/netsim", Name: "ErrNoHandler"},
			{PkgSuffix: "internal/netsim", Name: "ErrCrashed"},
			{PkgSuffix: "internal/fs", Name: "ErrNoCSS"},
			{PkgSuffix: "internal/fs", Name: "ErrNoStorageSite"},
		},
		SentinelFunnels: []MethodSpec{
			{PkgSuffix: "internal/proc", Name: "wrapSiteErr"},
			{PkgSuffix: "internal/proc", Name: "wrapFsSiteErr"},
		},
		SentinelAPIPackages: []string{"internal/proc"},

		VVTypes:          []TypeSpec{{PkgSuffix: "internal/vclock", Type: "VV"}},
		VVExemptPackages: []string{"internal/vclock"},

		AtomicPackages: []string{
			"internal/fs", "internal/proc", "internal/netsim",
			"internal/storage", "internal/chaos",
		},
	}
}

// Analyzers returns all locus-vet analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimClockAnalyzer(),
		UncheckedCallAnalyzer(),
		LockOrderAnalyzer(),
		PanicDisciplineAnalyzer(),
		RawCallAnalyzer(),
		PageLeakAnalyzer(),
		InodeAliasAnalyzer(),
		GoroutineJoinAnalyzer(),
		RPCConsistencyAnalyzer(),
		BlockingLockAnalyzer(),
		MapOrderAnalyzer(),
		SentinelErrAnalyzer(),
		VVMutationAnalyzer(),
		AtomicCounterAnalyzer(),
	}
}

// RegistryFingerprint digests the analyzer registry: the registered
// analyzer names plus the policy audits every run performs. The
// locus-vet cache mixes it into the clean-run stamp so enabling,
// removing, or renaming an analyzer invalidates the stamp even when no
// analyzed source file changed — a run with more checks must never
// inherit an older registry's "clean".
func RegistryFingerprint() string {
	names := []string{"vet-allow", "staleallow"}
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	sum := sha256.Sum256([]byte(strings.Join(names, "\n")))
	return fmt.Sprintf("%x", sum[:8])
}

// Run executes the given analyzers and returns all findings sorted by
// position.
func Run(prog *Program, cfg *Config, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, a := range analyzers {
		out = append(out, a.Run(prog, cfg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// hasPathSuffix reports whether import path p ends in suffix at a path
// boundary ("internal/fs" matches "repro/internal/fs" but not
// "repro/internal/fsx").
func hasPathSuffix(p, suffix string) bool {
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// suppressions indexes `//locusvet:allow` (and `//nolint:`) comments by
// file and line.
type suppressions struct {
	// byLine maps filename -> line -> set of allowed analyzer names.
	byLine map[string]map[int]map[string]bool
	// cfg, when non-nil, records every suppression that fires so the
	// stale-allow audit can flag directives that never do.
	cfg *Config
}

// suppressionsFor scans a package's comments once.
func suppressionsFor(prog *Program, pkg *Package, cfg *Config) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int]map[string]bool), cfg: cfg}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := directiveNames(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				lineMap := s.byLine[pos.Filename]
				if lineMap == nil {
					lineMap = make(map[int]map[string]bool)
					s.byLine[pos.Filename] = lineMap
				}
				set := lineMap[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lineMap[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
	}
	return s
}

// directiveNames extracts analyzer names from a suppression comment.
// Only the locus directive spellings suppress; `//nolint:errcheck` was
// grandfathered once but is now inert (and flagged by the audit).
func directiveNames(text string) []string {
	names, _ := parseAllowDirective(text)
	return names
}

// allowMarkers are the recognized suppression directive spellings:
// the original `//locusvet:allow` and the auditable
// `//locus:vet-allow <analyzer> <reason>` form.
var allowMarkers = []string{"locus:vet-allow", "locusvet:allow"}

// parseAllowDirective splits a suppression comment into analyzer names
// and the trailing justification. The argument list ends at the first
// space; everything after is the reason. The marker must open the
// comment body — prose that merely mentions the directive syntax (an
// analyzer's doc comment, say) is not itself a directive.
func parseAllowDirective(text string) (names []string, reason string) {
	body := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/"))
	body = strings.TrimSpace(strings.TrimPrefix(body, "//"))
	for _, marker := range allowMarkers {
		rest, ok := strings.CutPrefix(body, marker)
		if !ok {
			continue
		}
		rest = strings.TrimLeft(rest, " \t")
		args := rest
		if j := strings.IndexAny(rest, " \t"); j >= 0 {
			args = rest[:j]
			reason = strings.TrimSpace(rest[j:])
		}
		for _, n := range strings.Split(args, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names, reason
	}
	return nil, ""
}

// Allow is one audited suppression directive found in the tree.
type Allow struct {
	Pos       token.Position `json:"pos"`
	Analyzers []string       `json:"analyzers"`
	Reason    string         `json:"reason"`
	// Legacy marks a `//nolint:errcheck` comment. Those no longer
	// suppress anything; CollectAllows still surfaces them so the
	// policy audit can point each one at the migration path.
	Legacy bool `json:"legacy,omitempty"`
}

// CollectAllows scans every target package for allow directives so the
// driver can count them and enforce that each carries a reason.
// `//nolint:errcheck` comments are collected (as Legacy) purely so the
// audit can flag them; they do not suppress findings.
func CollectAllows(prog *Program) []Allow {
	var out []Allow
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason := parseAllowDirective(c.Text)
					legacy := false
					if len(names) == 0 {
						// Like parseAllowDirective, the marker must open
						// the comment body: prose that merely mentions
						// the retired spelling is not a directive.
						body := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/"))
						body = strings.TrimSpace(strings.TrimPrefix(body, "//"))
						if rest, ok := strings.CutPrefix(body, "nolint:errcheck"); ok {
							names = []string{"uncheckedcall"}
							legacy = true
							reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), "//"))
						}
					}
					if len(names) == 0 {
						continue
					}
					out = append(out, Allow{
						Pos:       prog.Fset.Position(c.Pos()),
						Analyzers: names,
						Reason:    reason,
						Legacy:    legacy,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

// AllowPolicyFindings flags allow directives that carry no reason — a
// suppression without a justification is unauditable — and every
// remaining `//nolint:errcheck` comment, which no longer suppresses
// anything and must be migrated to the audited spelling.
func AllowPolicyFindings(prog *Program) []Finding {
	var out []Finding
	for _, a := range CollectAllows(prog) {
		switch {
		case a.Legacy:
			out = append(out, Finding{
				Pos:      a.Pos,
				Analyzer: "vet-allow",
				Message:  "legacy `//nolint:errcheck` directive suppresses nothing; migrate to `//locus:vet-allow uncheckedcall <reason>`",
			})
		case a.Reason == "":
			out = append(out, Finding{
				Pos:      a.Pos,
				Analyzer: "vet-allow",
				Message: fmt.Sprintf("allow directive for %s carries no reason; write `//locus:vet-allow %s <why>`",
					strings.Join(a.Analyzers, ","), strings.Join(a.Analyzers, ",")),
			})
		}
	}
	return out
}

// allowed reports whether a finding by analyzer at pos is suppressed,
// recording the hit for the stale-allow audit.
func (s *suppressions) allowed(pos token.Position, analyzer string) bool {
	set := s.byLine[pos.Filename][pos.Line]
	ok := set[analyzer] || set["all"]
	if ok && s.cfg != nil {
		s.cfg.noteAllowUsed(pos, analyzer)
	}
	return ok
}

// StaleAllowFindings flags `//locus:vet-allow` directives that
// suppressed zero findings under cfg — a suppression nothing hides is
// either obsolete (the code was fixed) or mislocated (the finding it
// meant to silence fires anyway, one line away). Call it only after
// every analyzer has run with cfg, so the usage ledger is complete.
// Legacy `//nolint` comments and reasonless directives are excluded:
// AllowPolicyFindings already flags those.
func StaleAllowFindings(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, a := range CollectAllows(prog) {
		if a.Legacy || a.Reason == "" {
			continue
		}
		if cfg.allowUsed(a.Pos.Filename, a.Pos.Line) {
			continue
		}
		out = append(out, Finding{
			Pos:      a.Pos,
			Analyzer: "staleallow",
			Message: fmt.Sprintf("allow directive for %s suppresses no finding on this run; remove it or re-anchor it to the line it meant to silence",
				strings.Join(a.Analyzers, ",")),
		})
	}
	return out
}

// namedOrNil unwraps pointers and returns the named type, or nil.
func namedOrNil(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeMatches reports whether t (possibly behind pointers) is the named
// type `name` defined in a package matching pkgSuffix.
func typeMatches(t types.Type, pkgSuffix, name string) bool {
	n := namedOrNil(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && hasPathSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// funcFor resolves the called function object for a call expression, if
// it is a static function or method call.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
