package lint

import (
	"go/ast"
)

// This file is the shared control-flow layer for the dataflow
// analyzers (pageleak, inodealias, goroutinejoin). It builds a basic-
// block CFG for one function body over the plain go/ast tree, then
// runs forward may-analyses and dominator queries on it.
//
// Design notes:
//
//   - Blocks hold "atoms": the straight-line statement and expression
//     nodes executed when control reaches the block, in execution
//     order. Composite statements contribute only their non-body parts
//     (an IfStmt contributes Init and Cond; the branches become
//     separate blocks), so a transfer function may ast.Inspect an atom
//     without ever seeing a nested body twice.
//   - Edges carry a kind (sequential, condition-true, condition-false)
//     and the condition expression, so an analyzer can refine facts on
//     branches such as `if err != nil`.
//   - Defer calls are both atoms (their arguments are evaluated in
//     place) and are collected separately in source order; analyzers
//     process the deferred calls at the exit block.
//   - A call to panic terminates its path: no edge leaves the block,
//     which keeps must-release analyses from flagging assertion
//     failures as leaks.
//
// The builder is deliberately conservative where Go control flow gets
// exotic: goto edges go straight to the exit block (the repository has
// none), and select-without-default still edges every clause to the
// join.

// edgeKind classifies a CFG edge.
type edgeKind int

const (
	edgeSeq edgeKind = iota
	edgeCondTrue
	edgeCondFalse
)

// cfgEdge is one directed control-flow edge.
type cfgEdge struct {
	to   *cfgBlock
	kind edgeKind
	// cond is the branch condition for edgeCondTrue/edgeCondFalse.
	cond ast.Expr
}

// cfgBlock is one basic block.
type cfgBlock struct {
	idx   int
	atoms []ast.Node
	succs []cfgEdge
	preds []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit is the single synthetic exit block; returns and the fallthrough
	// end of the body edge into it. Deferred calls conceptually run here.
	exit *cfgBlock
	// deferred lists every defer's call expression in source order.
	deferred []*ast.CallExpr
}

type cfgBuilder struct {
	g   *funcCFG
	cur *cfgBlock
	// breakTo / continueTo are stacks of jump targets for the innermost
	// enclosing loops/switches; labels maps label names to their targets.
	breakTo    []*cfgBlock
	continueTo []*cfgBlock
	labels     map[string]*labelTargets
	// pendingLabel is set between seeing a LabeledStmt and its loop.
	pendingLabel string
	// isPanic reports whether a call expression diverges (never returns).
	isPanic func(*ast.CallExpr) bool
}

type labelTargets struct {
	breakTo    *cfgBlock
	continueTo *cfgBlock
}

// buildCFG constructs the CFG for a function body. isPanic, if non-nil,
// marks call expressions that never return (panic and the invariant
// helpers); their blocks get no outgoing edges.
func buildCFG(body *ast.BlockStmt, isPanic func(*ast.CallExpr) bool) *funcCFG {
	if isPanic == nil {
		isPanic = func(*ast.CallExpr) bool { return false }
	}
	b := &cfgBuilder{
		g:       &funcCFG{},
		labels:  make(map[string]*labelTargets),
		isPanic: isPanic,
	}
	b.g.exit = b.newBlock() // idx 0; kept succ-less
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.exit, edgeSeq, nil)
	}
	for _, blk := range b.g.blocks {
		for _, e := range blk.succs {
			e.to.preds = append(e.to.preds, blk)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{idx: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock, kind edgeKind, cond ast.Expr) {
	from.succs = append(from.succs, cfgEdge{to: to, kind: kind, cond: cond})
}

// atom appends a node to the current block. A nil current block means
// the code is unreachable (after return/panic/branch); a fresh block
// with no predecessors is started so atoms are still visible to
// analyzers that scan blocks linearly.
func (b *cfgBuilder) atom(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.atoms = append(b.cur.atoms, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// seal ends the current path (return, panic, break, continue, goto).
func (b *cfgBuilder) seal() { b.cur = nil }

// ensure returns the current block, creating an unreachable one if the
// path was sealed.
func (b *cfgBuilder) ensure() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.IfStmt:
		if st.Init != nil {
			b.atom(st.Init)
		}
		b.atom(st.Cond)
		head := b.ensure()
		thenB := b.newBlock()
		join := b.newBlock()
		b.edge(head, thenB, edgeCondTrue, st.Cond)
		b.cur = thenB
		b.stmtList(st.Body.List)
		if b.cur != nil {
			b.edge(b.cur, join, edgeSeq, nil)
		}
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB, edgeCondFalse, st.Cond)
			b.cur = elseB
			b.stmt(st.Else)
			if b.cur != nil {
				b.edge(b.cur, join, edgeSeq, nil)
			}
		} else {
			b.edge(head, join, edgeCondFalse, st.Cond)
		}
		b.cur = join

	case *ast.ForStmt:
		if st.Init != nil {
			b.atom(st.Init)
		}
		head := b.newBlock()
		b.edge(b.ensure(), head, edgeSeq, nil)
		after := b.newBlock()
		body := b.newBlock()
		if st.Cond != nil {
			head.atoms = append(head.atoms, st.Cond)
			b.edge(head, body, edgeCondTrue, st.Cond)
			b.edge(head, after, edgeCondFalse, st.Cond)
		} else {
			// for {}: the only way to after is a break.
			b.edge(head, body, edgeSeq, nil)
		}
		post := b.newBlock() // continue target (runs Post, loops to head)
		if st.Post != nil {
			post.atoms = append(post.atoms, st.Post)
		}
		b.edge(post, head, edgeSeq, nil)
		b.pushLoop(after, post)
		b.cur = body
		b.stmtList(st.Body.List)
		if b.cur != nil {
			b.edge(b.cur, post, edgeSeq, nil)
		}
		b.popLoop()
		b.cur = after

	case *ast.RangeStmt:
		b.atom(st.X)
		head := b.newBlock()
		b.edge(b.ensure(), head, edgeSeq, nil)
		// The per-iteration key/value binding is modeled as a synthetic
		// assignment atom so analyzers see Key/Value as assigned from the
		// range operand.
		if st.Key != nil || st.Value != nil {
			assign := &ast.AssignStmt{Tok: st.Tok, Rhs: []ast.Expr{st.X}}
			if st.Key != nil {
				assign.Lhs = append(assign.Lhs, st.Key)
			}
			if st.Value != nil {
				assign.Lhs = append(assign.Lhs, st.Value)
			}
			if assign.TokPos == 0 {
				assign.TokPos = st.For
			}
			head.atoms = append(head.atoms, assign)
		}
		after := b.newBlock()
		body := b.newBlock()
		b.edge(head, body, edgeCondTrue, nil)
		b.edge(head, after, edgeCondFalse, nil)
		b.pushLoop(after, head)
		b.cur = body
		b.stmtList(st.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head, edgeSeq, nil)
		}
		b.popLoop()
		b.cur = after

	case *ast.SwitchStmt:
		if st.Init != nil {
			b.atom(st.Init)
		}
		if st.Tag != nil {
			b.atom(st.Tag)
		}
		b.caseClauses(st.Body.List, func(cc *ast.CaseClause, blk *cfgBlock) {
			for _, e := range cc.List {
				blk.atoms = append(blk.atoms, e)
			}
		})

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.atom(st.Init)
		}
		b.atom(st.Assign)
		b.caseClauses(st.Body.List, func(cc *ast.CaseClause, blk *cfgBlock) {})

	case *ast.SelectStmt:
		head := b.ensure()
		join := b.newBlock()
		hasDefault := false
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk, edgeSeq, nil)
			if cc.Comm != nil {
				blk.atoms = append(blk.atoms, cc.Comm)
			} else {
				hasDefault = true
			}
			b.pushBreak(join)
			b.cur = blk
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, join, edgeSeq, nil)
			}
			b.popBreak()
		}
		_ = hasDefault // a default-less select still reaches join via its clauses
		b.cur = join

	case *ast.ReturnStmt:
		b.atom(st)
		b.edge(b.ensure(), b.g.exit, edgeSeq, nil)
		b.seal()

	case *ast.BranchStmt:
		b.atom(st)
		switch st.Tok.String() {
		case "break":
			if t := b.branchTarget(st, true); t != nil {
				b.edge(b.ensure(), t, edgeSeq, nil)
			}
		case "continue":
			if t := b.branchTarget(st, false); t != nil {
				b.edge(b.ensure(), t, edgeSeq, nil)
			}
		case "goto":
			// Conservative: treat as leaving the function.
			b.edge(b.ensure(), b.g.exit, edgeSeq, nil)
		case "fallthrough":
			// Handled structurally by caseClauses; nothing extra here.
			return
		}
		b.seal()

	case *ast.LabeledStmt:
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
		b.pendingLabel = ""

	case *ast.DeferStmt:
		b.atom(st)
		b.g.deferred = append(b.g.deferred, st.Call)

	case *ast.ExprStmt:
		b.atom(st)
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && b.isPanic(call) {
			b.seal()
		}

	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line atoms.
		b.atom(st)
	}
}

// caseClauses builds the shared switch/type-switch shape: every clause
// is a successor of the head; a missing default adds a direct edge to
// the join; fallthrough edges each clause into the next.
func (b *cfgBuilder) caseClauses(list []ast.Stmt, seed func(*ast.CaseClause, *cfgBlock)) {
	head := b.ensure()
	join := b.newBlock()
	hasDefault := false
	blocks := make([]*cfgBlock, len(list))
	clauses := make([]*ast.CaseClause, len(list))
	for i, c := range list {
		cc := c.(*ast.CaseClause)
		clauses[i] = cc
		blocks[i] = b.newBlock()
		seed(cc, blocks[i])
		b.edge(head, blocks[i], edgeSeq, nil)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join, edgeSeq, nil)
	}
	for i, cc := range clauses {
		b.pushBreak(join)
		b.cur = blocks[i]
		// fallthrough must be the final statement; detect it so the edge
		// goes to the next clause instead of the join.
		fallsThrough := false
		body := cc.Body
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1], edgeSeq, nil)
			} else {
				b.edge(b.cur, join, edgeSeq, nil)
			}
		}
		b.popBreak()
	}
	b.cur = join
}

func (b *cfgBuilder) pushLoop(breakTo, continueTo *cfgBlock) {
	b.breakTo = append(b.breakTo, breakTo)
	b.continueTo = append(b.continueTo, continueTo)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = &labelTargets{breakTo: breakTo, continueTo: continueTo}
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *cfgBuilder) pushBreak(to *cfgBlock) {
	b.breakTo = append(b.breakTo, to)
	b.continueTo = append(b.continueTo, nil)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = &labelTargets{breakTo: to}
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

func (b *cfgBuilder) branchTarget(st *ast.BranchStmt, isBreak bool) *cfgBlock {
	if st.Label != nil {
		if lt := b.labels[st.Label.Name]; lt != nil {
			if isBreak {
				return lt.breakTo
			}
			return lt.continueTo
		}
		return b.g.exit // unknown label: conservative
	}
	stack := b.continueTo
	if isBreak {
		stack = b.breakTo
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != nil {
			return stack[i]
		}
	}
	return b.g.exit
}

// ---------------------------------------------------------------------
// Forward may-analysis.

// factKey identifies one dataflow fact; keys must be comparable.
type factKey any

// factSet is a set of live facts.
type factSet map[factKey]bool

func (f factSet) clone() factSet {
	out := make(factSet, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

// forwardMay runs a forward may-analysis to fixpoint and returns the
// fact set at the ENTRY of each block. transfer maps a block's entry
// facts to its exit facts (it must not mutate in). edgeFilter, if
// non-nil, can drop a fact on a specific edge — this is how `if err !=
// nil` branches kill the facts whose failure the branch handles.
func (g *funcCFG) forwardMay(
	transfer func(b *cfgBlock, in factSet) factSet,
	edgeFilter func(e cfgEdge, k factKey) bool,
) map[*cfgBlock]factSet {
	in := make(map[*cfgBlock]factSet, len(g.blocks))
	queued := make(map[*cfgBlock]bool, len(g.blocks))
	// Every block is processed at least once (facts are generated in
	// blocks whose predecessors carry none), then re-processed whenever
	// its entry set grows.
	work := make([]*cfgBlock, 0, len(g.blocks))
	for _, blk := range g.blocks {
		in[blk] = factSet{}
		work = append(work, blk)
		queued[blk] = true
	}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false
		out := transfer(blk, in[blk])
		for _, e := range blk.succs {
			dst := in[e.to]
			grew := false
			for k := range out {
				if edgeFilter != nil && !edgeFilter(e, k) {
					continue
				}
				if !dst[k] {
					dst[k] = true
					grew = true
				}
			}
			if grew && !queued[e.to] {
				queued[e.to] = true
				work = append(work, e.to)
			}
		}
	}
	return in
}

// ---------------------------------------------------------------------
// Dominators.

// dominators computes the dominator sets of every reachable block with
// the classic iterative algorithm; the graphs here are tiny. Blocks
// unreachable from entry get nil (treated as dominated by everything).
func (g *funcCFG) dominators() map[*cfgBlock]map[*cfgBlock]bool {
	all := make(map[*cfgBlock]bool, len(g.blocks))
	reach := map[*cfgBlock]bool{}
	var walk func(*cfgBlock)
	walk = func(blk *cfgBlock) {
		if reach[blk] {
			return
		}
		reach[blk] = true
		for _, e := range blk.succs {
			walk(e.to)
		}
	}
	walk(g.entry)
	for blk := range reach {
		all[blk] = true
	}
	dom := make(map[*cfgBlock]map[*cfgBlock]bool, len(g.blocks))
	for blk := range reach {
		if blk == g.entry {
			dom[blk] = map[*cfgBlock]bool{blk: true}
			continue
		}
		full := make(map[*cfgBlock]bool, len(all))
		for b := range all {
			full[b] = true
		}
		dom[blk] = full
	}
	for changed := true; changed; {
		changed = false
		for blk := range reach {
			if blk == g.entry {
				continue
			}
			var meet map[*cfgBlock]bool
			for _, p := range blk.preds {
				if !reach[p] {
					continue
				}
				if meet == nil {
					meet = make(map[*cfgBlock]bool, len(dom[p]))
					for d := range dom[p] {
						meet[d] = true
					}
					continue
				}
				for d := range meet {
					if !dom[p][d] {
						delete(meet, d)
					}
				}
			}
			if meet == nil {
				meet = map[*cfgBlock]bool{}
			}
			meet[blk] = true
			if len(meet) != len(dom[blk]) {
				dom[blk] = meet
				changed = true
				continue
			}
			for d := range meet {
				if !dom[blk][d] {
					dom[blk] = meet
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// blockOf returns the block whose atoms contain a node with the given
// position range, by linear scan over atom subtrees.
func (g *funcCFG) blockOf(target ast.Node) *cfgBlock {
	for _, blk := range g.blocks {
		for _, a := range blk.atoms {
			found := false
			ast.Inspect(a, func(n ast.Node) bool {
				if n == target {
					found = true
					return false
				}
				// Do not descend into nested function literals; their
				// statements belong to a different CFG.
				if _, ok := n.(*ast.FuncLit); ok && n != a {
					return false
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	return nil
}
