package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MapOrderAnalyzer flags `range` statements over maps whose iteration
// order becomes observable in the deterministic schedule.
//
// The chaos replay contract (`Result.ReplayCommand()`) promises that a
// seed replays byte-identically. Every wire send bumps the per-
// (from,to,method) occurrence counter the fault plane keys its
// drop/dup/delay decisions on, so the ORDER of a group of sends is part
// of the schedule — and Go randomizes map iteration order on purpose.
// A loop that ranges over a map and (transitively, through any callee;
// the interprocedural summary tier supplies the closure) performs a
// wire send therefore breaks seed replay silently: the test passes
// today and flakes when the hash seed changes.
//
// Two shapes are diagnosed:
//
//   - the loop body may reach a transport exchange (Config.OrderEffects,
//     closed over the call graph): always flagged — no later sort can
//     recover an order already sent;
//   - the loop body appends to a slice declared outside the loop and
//     the enclosing function never sorts that slice afterwards: the
//     random order escaped into a value whose consumers will observe
//     it. The repository's canonical fix — collect, sort.Slice, then
//     act — passes, because the sort follows the loop.
//
// Iterations whose effects are genuinely order-free (counter sums, set
// union) take a `//locus:vet-allow maporder <reason>`.
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag map iterations whose order reaches the wire or escapes unsorted",
		Run:  runMapOrder,
	}
}

func runMapOrder(prog *Program, cfg *Config) []Finding {
	if len(cfg.MapOrderPackages) == 0 {
		return nil
	}
	sum := cfg.summariesFor(prog)
	var out []Finding
	for _, pkg := range prog.Targets {
		if !pkgInScope(pkg, cfg.MapOrderPackages) {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// Each function literal is its own root: a sort inside the
				// literal cannot fix a loop outside it, and vice versa.
				for _, root := range funcRoots(fd.Body) {
					out = append(out, scanMapRanges(prog, pkg, cfg, sum, sup, root)...)
				}
			}
		}
	}
	return out
}

// funcRoots lists body and the bodies of every function literal nested
// inside it.
func funcRoots(body *ast.BlockStmt) []*ast.BlockStmt {
	roots := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			roots = append(roots, fl.Body)
		}
		return true
	})
	return roots
}

// scanMapRanges walks one function root (skipping nested literals) and
// classifies every map-typed range statement in it.
func scanMapRanges(prog *Program, pkg *Package, cfg *Config, sum *summaries, sup *suppressions, root *ast.BlockStmt) []Finding {
	var out []Finding
	inspectRoot(root, func(n ast.Node) bool {
		st, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pkg.Info.TypeOf(st.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		pos := prog.Fset.Position(st.For)
		if call := wireInBody(pkg, cfg, sum, st.Body); call != nil {
			if !sup.allowed(pos, "maporder") {
				out = append(out, Finding{
					Pos:      pos,
					Analyzer: "maporder",
					Message: fmt.Sprintf("map iteration over %s drives an order-observable wire send (%s) per iteration; iterate sorted keys — send order is part of the seed-replay schedule",
						exprString(st.X), callName(pkg, call)),
				})
			}
			return true
		}
		for _, esc := range unsortedEscapes(pkg, st, root) {
			if sup.allowed(pos, "maporder") {
				break
			}
			out = append(out, Finding{
				Pos:      pos,
				Analyzer: "maporder",
				Message: fmt.Sprintf("map iteration order over %s escapes into %s, which is never sorted afterwards; sort it before the order becomes observable",
					exprString(st.X), esc.Name()),
			})
		}
		return true
	})
	return out
}

// inspectRoot walks a function body without descending into nested
// function literals (they are separate roots).
func inspectRoot(root *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != root {
			return false
		}
		return fn(n)
	})
}

// wireInBody returns a call inside body (descending into literals and
// go statements: they still run per iteration) that may perform a wire
// send, or nil.
func wireInBody(pkg *Package, cfg *Config, sum *summaries, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := matchMustCheck(pkg.Info, call, cfg.OrderEffects); ok {
			found = call
			return false
		}
		if callee := funcFor(pkg.Info, call); callee != nil {
			for _, target := range sum.graph.resolveTargets(callee) {
				if sum.wire[target] {
					found = call
					return false
				}
			}
		}
		return true
	})
	return found
}

// unsortedEscapes lists slice variables declared outside the range
// statement that its body appends to and the enclosing root never
// sorts after the loop.
func unsortedEscapes(pkg *Package, st *ast.RangeStmt, root *ast.BlockStmt) []*types.Var {
	var escapes []*types.Var
	seen := make(map[*types.Var]bool)
	ast.Inspect(st.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pkg.Info, call) || len(call.Args) == 0 {
				continue
			}
			v := identVar(pkg, as.Lhs[i])
			if v == nil || seen[v] {
				continue
			}
			// Only out-of-loop slices carry the order anywhere; a slice
			// born inside the body dies with the iteration.
			if v.Pos() >= st.Pos() && v.Pos() <= st.End() {
				continue
			}
			seen[v] = true
			if !sortedAfter(pkg, root, st, v) {
				escapes = append(escapes, v)
			}
		}
		return true
	})
	return escapes
}

// sortedAfter reports whether root contains, lexically after the range
// statement, a sort/slices call taking v.
func sortedAfter(pkg *Package, root *ast.BlockStmt, st *ast.RangeStmt, v *types.Var) bool {
	sorted := false
	inspectRoot(root, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < st.End() {
			return true
		}
		fn := funcFor(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if identVar(pkg, arg) == v {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// identVar resolves e to the variable object it names, or nil.
func identVar(pkg *Package, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// exprString renders a short source form of e for messages.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	}
	return "map"
}

// callName renders the called function for messages.
func callName(pkg *Package, call *ast.CallExpr) string {
	if fn := funcFor(pkg.Info, call); fn != nil {
		return fn.Name()
	}
	return exprString(call.Fun)
}
