package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// VVMutationAnalyzer enforces that version-vector state is mutated only
// through the vclock package's operations, never by direct map writes
// elsewhere.
//
// A version vector's meaning rests on its update rules: Bump increments
// the owner's slot, Merge takes the element-wise max so dominance
// (§4.3's conflict predicate) is monotone. A stray `vv[site] = n`,
// `vv[site]++`, or `delete(vv, site)` outside internal/vclock can make
// a vector travel backwards — a replica that then "dominates" stale
// data and silently wins reconciliation. The type system cannot forbid
// it (VV is a map), so this analyzer does: any indexed write or delete
// on a Config.VVTypes value outside Config.VVExemptPackages is flagged.
func VVMutationAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "vvmutation",
		Doc:  "flag direct map writes to version-vector state outside the vclock package",
		Run:  runVVMutation,
	}
}

func runVVMutation(prog *Program, cfg *Config) []Finding {
	if len(cfg.VVTypes) == 0 {
		return nil
	}
	var out []Finding
	for _, pkg := range prog.Targets {
		if pkgInScope(pkg, cfg.VVExemptPackages) {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		report := func(n ast.Node, form string) {
			pos := prog.Fset.Position(n.Pos())
			if sup.allowed(pos, "vvmutation") {
				return
			}
			out = append(out, Finding{
				Pos:      pos,
				Analyzer: "vvmutation",
				Message: fmt.Sprintf("%s mutates a version vector directly; use the vclock operations (Bump/Merge) so dominance stays monotone",
					form),
			})
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						if idx := vvIndex(pkg, cfg, lhs); idx != nil {
							report(lhs, fmt.Sprintf("indexed write %s[...] %s", exprString(idx.X), st.Tok))
						}
					}
				case *ast.IncDecStmt:
					if idx := vvIndex(pkg, cfg, st.X); idx != nil {
						report(st, fmt.Sprintf("indexed %s on %s[...]", st.Tok, exprString(idx.X)))
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok {
						if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(st.Args) == 2 {
							if isVVType(pkg, cfg, pkg.Info.TypeOf(st.Args[0])) {
								report(st, fmt.Sprintf("delete on %s", exprString(st.Args[0])))
							}
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// vvIndex returns e as an index expression over a version-vector value,
// or nil.
func vvIndex(pkg *Package, cfg *Config, e ast.Expr) *ast.IndexExpr {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	if !isVVType(pkg, cfg, pkg.Info.TypeOf(idx.X)) {
		return nil
	}
	return idx
}

func isVVType(pkg *Package, cfg *Config, t types.Type) bool {
	if t == nil {
		return false
	}
	for _, spec := range cfg.VVTypes {
		if typeMatches(t, spec.PkgSuffix, spec.Type) {
			return true
		}
	}
	return false
}
