package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// UncheckedCallAnalyzer flags discarded error results from the protocol
// calls listed in Config.MustCheck.
//
// Dropping the error from a netsim Call/Cast or a storage commit/abort
// silently swallows a protocol transition failure: the message never
// arrived, the shadow pages never became the committed image. Those
// are precisely the conditions (§2.3.6, §5) LOCUS's recovery machinery
// is built around, so callers must observe them. Deliberate discards
// take a `//locus:vet-allow uncheckedcall <reason>` comment; the
// justification is mandatory (the allow audit enforces it).
func UncheckedCallAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "uncheckedcall",
		Doc:  "flag ignored error results from netsim exchanges and storage commit paths",
		Run:  runUncheckedCall,
	}
}

func runUncheckedCall(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range prog.Targets {
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var call *ast.CallExpr
				discarded := func(int) bool { return true }
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, _ = st.X.(*ast.CallExpr)
				case *ast.GoStmt:
					call = st.Call
				case *ast.DeferStmt:
					call = st.Call
				case *ast.AssignStmt:
					// Only the single-call form x, err := f() maps LHS
					// positions onto result positions.
					if len(st.Rhs) == 1 {
						if c, ok := st.Rhs[0].(*ast.CallExpr); ok && len(st.Lhs) > 1 {
							call = c
							discarded = func(i int) bool {
								if i >= len(st.Lhs) {
									return false
								}
								id, ok := st.Lhs[i].(*ast.Ident)
								return ok && id.Name == "_"
							}
						}
					}
				}
				if call == nil {
					return true
				}
				spec, ok := matchMustCheck(pkg.Info, call, cfg.MustCheck)
				if !ok {
					return true
				}
				fn := funcFor(pkg.Info, call)
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i := 0; i < sig.Results().Len(); i++ {
					if !isErrorType(sig.Results().At(i).Type()) || !discarded(i) {
						continue
					}
					pos := prog.Fset.Position(call.Pos())
					if sup.allowed(pos, "uncheckedcall") {
						break
					}
					recv := spec.Recv
					if recv != "" {
						recv += "."
					}
					out = append(out, Finding{
						Pos:      pos,
						Analyzer: "uncheckedcall",
						Message: fmt.Sprintf("error result of %s%s is discarded; a dropped %s failure loses a protocol transition",
							recv, spec.Name, spec.Name),
					})
					break
				}
				return true
			})
		}
	}
	return out
}

// matchMustCheck reports whether call resolves to one of the specs.
func matchMustCheck(info *types.Info, call *ast.CallExpr, specs []MethodSpec) (MethodSpec, bool) {
	fn := funcFor(info, call)
	if fn == nil || fn.Pkg() == nil {
		return MethodSpec{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return MethodSpec{}, false
	}
	for _, spec := range specs {
		if fn.Name() != spec.Name || !hasPathSuffix(fn.Pkg().Path(), spec.PkgSuffix) {
			continue
		}
		if spec.Recv == "" {
			if sig.Recv() == nil {
				return spec, true
			}
			continue
		}
		if sig.Recv() != nil && typeMatches(sig.Recv().Type(), spec.PkgSuffix, spec.Recv) {
			return spec, true
		}
	}
	return MethodSpec{}, false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
