package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// SentinelErrAnalyzer flags exported API functions that can return a
// raw transport sentinel without passing a designated wrap funnel.
//
// The §5.6 failure-action discipline promises callers of the proc
// layer a *classified* failure — ErrSiteFailed with the site attached —
// never the raw netsim/fs sentinels (ErrUnreachable, ErrTimeout, the
// crash variants, ErrNoCSS...) that leak which transport probe
// happened to fail first. PR 8's chaos checker found three such leaks
// by running the failure table; this analyzer generalizes those three
// hand-fixes into a standing guarantee, statically.
//
// The check is the interprocedural sentinel-taint summary (summary.go)
// re-run at reporting granularity over every exported function of
// Config.SentinelAPIPackages: a return statement is flagged when an
// error expression reaching it may carry a Config.SentinelVars value —
// through locals, fmt.Errorf %w-wrapping, and callees' summaries —
// without passing Config.SentinelFunnels (wrapSiteErr, wrapFsSiteErr).
// `err != nil` refinement keeps the nil paths quiet, and a funnel call
// anywhere on the value's path launders it.
func SentinelErrAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "sentinelerr",
		Doc:  "flag exported APIs that may return a raw transport sentinel unwrapped",
		Run:  runSentinelErr,
	}
}

func runSentinelErr(prog *Program, cfg *Config) []Finding {
	if len(cfg.SentinelAPIPackages) == 0 || len(cfg.SentinelVars) == 0 {
		return nil
	}
	sum := cfg.summariesFor(prog)
	var out []Finding
	for _, pkg := range prog.Targets {
		if !pkgInScope(pkg, cfg.SentinelAPIPackages) {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fb := sum.graph.bodies[obj]
				if fb == nil {
					continue
				}
				reported := make(map[*ast.ReturnStmt]bool)
				sum.sentinelReturns(fb, obj, cfg, func(ret *ast.ReturnStmt, _ ast.Expr) {
					if reported[ret] {
						return
					}
					reported[ret] = true
					pos := prog.Fset.Position(ret.Pos())
					if sup.allowed(pos, "sentinelerr") {
						return
					}
					out = append(out, Finding{
						Pos:      pos,
						Analyzer: "sentinelerr",
						Message: fmt.Sprintf("exported %s may return a raw transport sentinel unwrapped; route the error through a wrap funnel so callers see the classified §5.6 failure",
							funcDisplayName(obj)),
					})
				})
			}
		}
	}
	return out
}
