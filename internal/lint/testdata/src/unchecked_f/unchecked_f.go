// Package unchecked_f is a locus-vet fixture: the test config requires
// Conn.Call and Conn.Cast error results to be consumed.
package unchecked_f

import "errors"

type Conn struct{}

func (c *Conn) Call(op string) ([]byte, error) { return nil, errors.New(op) }
func (c *Conn) Cast(op string) error           { return errors.New(op) }

func badDropped(c *Conn) {
	c.Cast("hello") // want "error result of Conn.Cast is discarded"
}

func badBlank(c *Conn) []byte {
	reply, _ := c.Call("ping") // want "error result of Conn.Call is discarded"
	return reply
}

func badGo(c *Conn) {
	go c.Cast("fire") // want "error result of Conn.Cast is discarded"
}

func badDefer(c *Conn) {
	defer c.Cast("bye") // want "error result of Conn.Cast is discarded"
}

func okChecked(c *Conn) error {
	if err := c.Cast("hello"); err != nil {
		return err
	}
	_, err := c.Call("ping")
	return err
}

func badLegacySuppression(c *Conn) {
	// The retired //nolint:errcheck convention no longer suppresses
	// anything (and the allow audit flags it for migration).
	c.Cast("best-effort") //nolint:errcheck fixture: inert spelling // want "error result of Conn.Cast is discarded"
}

func okSuppressed(c *Conn) {
	c.Cast("best-effort") //locus:vet-allow uncheckedcall fixture: delivery is advisory here
	c.Cast("best-effort") //locusvet:allow uncheckedcall fixture: same, original spelling
}

// Unrelated methods with the same name on other types are not flagged.
type Other struct{}

func (Other) Cast(string) error { return nil }

func okOtherType(o Other) {
	o.Cast("x")
}
