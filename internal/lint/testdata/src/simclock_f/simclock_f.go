// Package simclock_f is a locus-vet fixture: the test config lists it
// as a protocol package, so wall-clock uses below must be flagged.
package simclock_f

import "time"

func badNow() time.Time {
	return time.Now() // want "wall-clock time.Now in protocol package"
}

func badSleep() {
	time.Sleep(10 * time.Millisecond) // want "wall-clock time.Sleep in protocol package"
}

func badAfter() <-chan time.Time {
	return time.After(time.Second) // want "wall-clock time.After in protocol package"
}

func badTick() <-chan time.Time {
	return time.Tick(time.Second) // want "wall-clock time.Tick in protocol package"
}

func badNewTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want "wall-clock time.NewTicker in protocol package"
}

func badNewTimer() *time.Timer {
	return time.NewTimer(time.Second) // want "wall-clock time.NewTimer in protocol package"
}

// Durations and conversions are fine: only clock reads and real-time
// scheduling are forbidden.
func okDuration(us int64) time.Duration {
	return time.Duration(us) * time.Microsecond
}

func okSuppressed() time.Time {
	return time.Now() //locusvet:allow simclock fixture: sanctioned wall-clock read
}
