// Package maporder_f is a locus-vet fixture for the maporder analyzer:
// map-range statements whose iteration order reaches the wire (directly
// or through the interprocedural wire summary) or escapes into a slice
// that is never sorted. The test config declares Node.Call and
// Node.Cast as the order-observable transport exchanges.
package maporder_f

import "sort"

type Node struct{}

func (n *Node) Call(to int, method string, payload any) (any, error) { return nil, nil }

func (n *Node) Cast(to int, method string, payload any) error { return nil }

type kernel struct {
	peers map[int]bool
	state map[string]int
}

// broadcast sends per iteration: the send order is the map order.
func (k *kernel) broadcast(n *Node) {
	for p := range k.peers { // want "order-observable wire send"
		_ = n.Cast(p, "mo.ping", nil)
	}
}

// notify reaches the wire one call deep; only the summary tier sees it.
func (k *kernel) notify(n *Node, p int) {
	_ = n.Cast(p, "mo.note", nil)
}

func (k *kernel) fanout(n *Node) {
	for p := range k.peers { // want "order-observable wire send"
		k.notify(n, p)
	}
}

// A send hidden in a goroutine still happens per iteration.
func (k *kernel) fanoutAsync(n *Node) {
	for p := range k.peers { // want "order-observable wire send"
		go func(p int) { _ = n.Cast(p, "mo.async", nil) }(p)
	}
}

// The random order escapes into the returned slice.
func (k *kernel) keysUnsorted() []string {
	var out []string
	for s := range k.state { // want "escapes into out"
		out = append(out, s)
	}
	return out
}

// The canonical fix: collect, sort, then act.
func (k *kernel) keysSorted() []string {
	var out []string
	for s := range k.state {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// A sort inside a nested literal runs in another function root and does
// not order the escaping slice.
func (k *kernel) sortElsewhere() []string {
	var out []string
	for s := range k.state { // want "escapes into out"
		out = append(out, s)
	}
	fix := func() { sort.Strings(out) }
	_ = fix
	return out
}

// Order-free effects (a counter sum) are not flagged.
func (k *kernel) count() int {
	total := 0
	for range k.state {
		total++
	}
	return total
}

// A slice born inside the loop body dies with the iteration.
func (k *kernel) perIteration() int {
	total := 0
	for s := range k.state {
		var parts []byte
		parts = append(parts, s...)
		total += len(parts)
	}
	return total
}

// The audited exception: shutdown fan-out where the receiver set is
// torn down and order is deliberately irrelevant.
func (k *kernel) drainAllowed(n *Node) {
	for p := range k.peers { //locus:vet-allow maporder fixture: deliberate allow exercises the suppression path
		_ = n.Cast(p, "mo.bye", nil)
	}
}
