// Package atomiccounter_f is a locus-vet fixture for the atomiccounter
// analyzer: a field accessed through sync/atomic anywhere must be
// accessed that way everywhere. The bump helper exercises the
// per-parameter summary — a field whose address is forwarded into a
// helper that uses sync/atomic counts as atomically accessed too.
package atomiccounter_f

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	plain  int64
}

func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) snapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

// bump forwards its pointer parameter to sync/atomic; the atomicParams
// summary marks parameter 0, so call sites passing a field address are
// sanctioned atomic accesses.
func bump(p *int64) {
	atomic.AddInt64(p, 1)
}

func (c *counters) miss() {
	bump(&c.misses)
}

// Plain write to an atomic field: a data race the race detector only
// sees when both paths run in one test.
func (c *counters) reset() {
	c.hits = 0 // want "accessed atomically"
}

// Plain read, same field.
func (c *counters) logHits() int64 {
	return c.hits // want "accessed atomically"
}

// The forwarded field is atomic transitively; a bare read races.
func (c *counters) logMisses() int64 {
	return c.misses // want "accessed atomically"
}

// A field never touched atomically stays plain without complaint.
func (c *counters) bumpPlain() {
	c.plain++
}

// The audited exception: initialization before any concurrency.
func (c *counters) initHits(n int64) {
	c.hits = n //locus:vet-allow atomiccounter fixture: constructor runs before any concurrency
}
