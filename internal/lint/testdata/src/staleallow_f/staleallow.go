// Package staleallow_f is the fixture for the stale-suppression audit:
// a //locus:vet-allow directive that suppressed zero findings on a run
// is itself reported (staleallow) — it is either obsolete (the code was
// fixed) or mislocated (the finding it meant to hide fires one line
// away) — while a directive that fires stays quiet.
package staleallow_f

type SiteID int

// VV mimics the version-vector map type the vvmutation analyzer
// guards; the audit test runs that analyzer over this package first to
// populate the usage ledger.
type VV map[SiteID]uint64

// liveAllow suppresses a real vvmutation finding; the audit must stay
// quiet about this directive.
func liveAllow(v VV, s SiteID) {
	v[s] = 1 //locus:vet-allow vvmutation fixture: suppresses a live finding
}

// staleAllow carries a directive on a line that produces no finding —
// reads are legal everywhere — so the audit flags it.
func staleAllow(v VV, s SiteID) uint64 {
	return v[s] //locus:vet-allow vvmutation fixture: suppresses nothing
}
