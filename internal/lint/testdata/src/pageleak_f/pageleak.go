// Package pageleak_f is a locus-vet fixture for the pageleak analyzer:
// the test config tracks Container.WritePage and Container.AllocInode
// as storage allocations. Every path out of the allocating function
// must free, commit, or hand off the result.
package pageleak_f

type PhysPage int

type Inode struct {
	Num   int
	Pages []PhysPage
}

func (i *Inode) Clone() *Inode {
	out := *i
	out.Pages = append([]PhysPage(nil), i.Pages...)
	return &out
}

type Container struct {
	pages map[PhysPage][]byte
	next  PhysPage
	incore *Inode
}

func (c *Container) WritePage(data []byte) (PhysPage, error) {
	c.next++
	c.pages[c.next] = data
	return c.next, nil
}

func (c *Container) AllocInode() (int, error) { return int(c.next), nil }

func (c *Container) FreePages(pages ...PhysPage) {
	for _, pp := range pages {
		delete(c.pages, pp)
	}
}

func (c *Container) CommitInode(ino *Inode) error {
	c.incore = ino
	return nil
}

// okCommitReleases parks the page in a fresh inode and commits it: the
// commit call takes over responsibility for the whole alias set.
func okCommitReleases(c *Container, data []byte) error {
	pp, err := c.WritePage(data)
	if err != nil {
		return err
	}
	ino := &Inode{}
	ino.Pages = append(ino.Pages, pp)
	return c.CommitInode(ino)
}

// okReturnsPage transfers ownership to the caller.
func okReturnsPage(c *Container, data []byte) (PhysPage, error) {
	pp, err := c.WritePage(data)
	if err != nil {
		return 0, err
	}
	return pp, nil
}

// okDeferFrees releases through a deferred call on every path.
func okDeferFrees(c *Container, data []byte) error {
	pp, err := c.WritePage(data)
	if err != nil {
		return err
	}
	defer c.FreePages(pp)
	if len(data) > 1 {
		return nil
	}
	return nil
}

// okLoopFreesOnError is the honest version of the classic loop shape:
// a mid-loop failure frees the pages already parked in the fresh inode.
func okLoopFreesOnError(c *Container, chunks [][]byte) error {
	ino := &Inode{}
	for _, chunk := range chunks {
		pp, err := c.WritePage(chunk)
		if err != nil {
			c.FreePages(ino.Pages...)
			return err
		}
		ino.Pages = append(ino.Pages, pp)
	}
	return c.CommitInode(ino)
}

// badDropsOnEarlyReturn leaks: the len(data) == 0 path returns without
// freeing the page.
func badDropsOnEarlyReturn(c *Container, data []byte) error {
	pp, err := c.WritePage(data) // want "result of Container.WritePage may leak"
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	c.FreePages(pp)
	return nil
}

// badLoopAbandons leaks: pages parked in the fresh inode are abandoned
// when a later iteration fails.
func badLoopAbandons(c *Container, chunks [][]byte) error {
	ino := &Inode{}
	for _, chunk := range chunks {
		pp, err := c.WritePage(chunk) // want "result of Container.WritePage may leak"
		if err != nil {
			return err
		}
		ino.Pages = append(ino.Pages, pp)
	}
	return c.CommitInode(ino)
}

// badInodeNumDropped leaks the reserved inode number on the refusal
// path.
func badInodeNumDropped(c *Container, takeIt bool) error {
	num, err := c.AllocInode() // want "result of Container.AllocInode may leak"
	if err != nil {
		return err
	}
	if !takeIt {
		return nil
	}
	ino := &Inode{Num: num}
	return c.CommitInode(ino)
}

// allowedLeak exercises the suppression path: the leak is the point of
// this case, so the directive must silence the finding.
func allowedLeak(c *Container, data []byte) error {
	pp, err := c.WritePage(data) //locus:vet-allow pageleak fixture: the leak is deliberate to test the allow path
	if err != nil {
		return err
	}
	if len(data) > 4 {
		return nil
	}
	c.FreePages(pp)
	return nil
}
