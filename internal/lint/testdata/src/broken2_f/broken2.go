// Package broken2_f deliberately fails to type-check with a different
// first error than broken_f. The aggregation test loads both and
// asserts the loader attempts and reports every broken target in one
// LoadError instead of stopping at the first.
package broken2_f

func Bang() string {
	return anotherMissingName
}
