// Package panic_f is a locus-vet fixture: bare panics in library code
// must be flagged unless sanctioned as must-helpers or marked invariant
// assertions.
package panic_f

import "errors"

func badBare(x int) {
	if x < 0 {
		panic("negative") // want "panic in library code"
	}
}

func badErr(err error) {
	if err != nil {
		panic(err) // want "panic in library code"
	}
}

// must is the conventional fail-on-setup-error helper.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func MustParse(s string) int {
	if s == "" {
		panic("empty")
	}
	return len(s)
}

func okMarkedSameLine(n int) {
	if n == 0 {
		panic("zero") // invariant: n was validated non-zero by the caller
	}
}

func okMarkedAbove(n int) {
	if n == 0 {
		// invariant: n was validated non-zero by the caller
		panic("zero")
	}
}

func okSuppressed() {
	panic("legacy") //locusvet:allow panicdiscipline fixture: grandfathered
}

var errSentinel = errors.New("sentinel")

func okTypedError(x int) error {
	if x < 0 {
		return errSentinel
	}
	return nil
}
