// Package vvmutation_f is a locus-vet fixture for the vvmutation
// analyzer: direct map writes, increments, and deletes on the VV type
// outside the sanctioned operations. In the real module the exempt
// vclock package holds the operations; here an audited allow plays that
// role.
package vvmutation_f

type SiteID int

// VV mirrors vclock.VV for the fixture config.
type VV map[SiteID]uint64

// Bump is the sanctioned update operation.
func (v VV) Bump(s SiteID) VV {
	v[s]++ //locus:vet-allow vvmutation fixture: stands in for the exempt vclock package
	return v
}

func merge(dst, src VV) {
	for s, c := range src {
		if c > dst[s] {
			dst[s] = c // want "indexed write dst"
		}
	}
}

func reset(v VV, s SiteID) {
	v[s] = 0 // want "indexed write v"
}

func tick(v VV, s SiteID) {
	v[s]++ // want "indexed .. on v"
}

func drop(v VV, s SiteID) {
	delete(v, s) // want "delete on v"
}

// Reads and the sanctioned operation are fine.
func dominates(a, b VV) bool {
	for s, c := range b {
		if a[s] < c {
			return false
		}
	}
	return true
}

func viaOp(v VV, s SiteID) {
	v.Bump(s)
}
