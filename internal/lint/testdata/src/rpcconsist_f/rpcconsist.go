// Package rpcconsist_f is a locus-vet fixture for the rpcconsistency
// analyzer: method constants (prefix "rpx."), handler registrations,
// wrapper invocations, and the dedup set must agree. The test config
// declares Node.Handle as the registration call, Conn.Call/Conn.Cast
// as invocations (Call two-way), and "rpx.ping" as idempotent.
package rpcconsist_f

type Node struct{}

func (n *Node) Handle(method string, h func(any) (any, error)) {}

type Conn struct{}

func (c *Conn) Call(method string, payload any) (any, error) { return nil, nil }

func (c *Conn) Cast(method string, payload any) error { return nil }

const (
	mPing   = "rpx.ping"   // registered, invoked two-way, idempotent: clean
	mWrite  = "rpx.write"  // registered, invoked two-way, deduplicated: clean
	mOrphan = "rpx.orphan" // want "has no registered handler"
	mDead   = "rpx.dead"   // want "is never invoked through a protocol wrapper"
	mDouble = "rpx.double" // want "is registered 2 times"
	mRisky  = "rpx.risky"  // want "neither in the dedup set nor declared idempotent"
	mGhost  = "rpx.ghost"  // want "rpx.ghost"
)

// mLoose exercises the suppression path: a deliberately unwired
// constant whose findings the directive must silence.
const mLoose = "rpx.loose" //locus:vet-allow rpcconsistency fixture: deliberately unwired constant tests the allow path

var mutating = map[string]bool{
	mWrite:    true,
	mGhost:    true,
	"rpx.raw": true, // want "keys .rpx.raw. with a raw string"
}

func registerAll(n *Node) {
	h := func(any) (any, error) { return nil, nil }
	n.Handle(mPing, h)
	n.Handle(mWrite, h)
	n.Handle(mDead, h)
	n.Handle(mDouble, h)
	n.Handle(mDouble, h)
	n.Handle(mRisky, h)
}

func invokeAll(c *Conn) {
	c.Call(mPing, nil)
	c.Call(mWrite, nil)
	c.Call(mRisky, nil)
	c.Cast(mOrphan, nil)
	c.Cast(mDouble, nil)
	c.Call("rpx.ping", nil) // want "uses raw method string"
}
