// Package rawcall_f is a locus-vet fixture: the test config declares
// this package wrapped (its RPCs must go through the retrying wrapper)
// and Node.Call/CallSeq/Cast as the raw transport methods.
package rawcall_f

import "errors"

type Node struct{}

func (n *Node) Call(to int, method string, payload any) (any, error) {
	return nil, errors.New(method)
}

func (n *Node) CallSeq(to int, method string, payload any, seq int64) (any, error) {
	return nil, errors.New(method)
}

func (n *Node) Cast(to int, method string, payload any) error {
	return errors.New(method)
}

type Kernel struct {
	node *Node
}

func badRawCall(k *Kernel) (any, error) {
	return k.node.Call(2, "fs.commit", nil) // want "direct Node.Call bypasses the retrying at-most-once RPC wrapper"
}

func badRawCallSeq(k *Kernel) (any, error) {
	return k.node.CallSeq(2, "fs.commit", nil, 7) // want "direct Node.CallSeq bypasses the retrying at-most-once RPC wrapper"
}

func badRawCast(k *Kernel) error {
	return k.node.Cast(2, "fs.write", nil) // want "direct Node.Cast bypasses the retrying at-most-once RPC wrapper"
}

// The wrapper itself is the one sanctioned raw use.
func (k *Kernel) call(to int, method string, payload any) (any, error) {
	return k.node.Call(to, method, payload) //locusvet:allow rawcall fixture: this is the wrapper
}

func okThroughWrapper(k *Kernel) (any, error) {
	return k.call(2, "fs.commit", nil)
}

// A same-named method on an unrelated type is not the transport.
type Other struct{}

func (Other) Call(to int, method string, payload any) (any, error) { return nil, nil }

func okOtherType(o Other) {
	o.Call(1, "x", nil) //nolint:errcheck fixture: not the transport type
}
