// Package broken_f deliberately fails to type-check. The load-error
// test asserts the failure is surfaced as a structured per-package
// load error rather than silently dropping the package from analysis.
package broken_f

func Boom() int {
	return undefinedIdentifier
}
