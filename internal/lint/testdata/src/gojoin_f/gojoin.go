// Package gojoin_f is a locus-vet fixture for the goroutinejoin
// analyzer: every go statement must register with a WaitGroup whose
// owner provably waits, or with a lane-join counter field ("active"),
// and the registration must dominate the spawn.
package gojoin_f

import "sync"

// okLocalWaitGroup: Add dominates the spawn, the first statement defers
// Done, and the function Waits.
func okLocalWaitGroup(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type Server struct {
	wg sync.WaitGroup
}

// okOwnedWaitGroup registers with a field WaitGroup; the Wait
// obligation lives on Stop, which the analyzer accepts for non-local
// WaitGroups.
func (s *Server) okOwnedWaitGroup(work func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		work()
	}()
}

func (s *Server) Stop() { s.wg.Wait() }

type counter struct{ n int64 }

func (c *counter) Add(d int64) { c.n += d }

type Pump struct {
	active counter
}

// okCounterLane: the netsim idiom — a positive Add on the lane counter
// before the spawn, a deferred negative Add first thing inside it.
func (p *Pump) okCounterLane(work func()) {
	p.active.Add(1)
	go func() {
		defer p.active.Add(-1)
		work()
	}()
}

func badUnregisteredNamed(work func()) {
	go work() // want "goroutine has no join registration"
}

func badUnregisteredLiteral(work func()) {
	go func() { work() }() // want "goroutine has no join registration"
}

func badNoWait(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "local WaitGroup the function never Waits on"
		defer wg.Done()
		work()
	}()
}

// badConditionalAdd: a path reaches the spawn without registering.
func badConditionalAdd(spawn bool, work func()) {
	var wg sync.WaitGroup
	if spawn {
		wg.Add(1)
	}
	go func() { // want "does not dominate the go statement"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// badCounterAddAfterSpawn: registering after the spawn races the
// drain loop.
func (p *Pump) badCounterAddAfterSpawn(work func()) {
	go func() { // want "does not dominate the go statement"
		defer p.active.Add(-1)
		work()
	}()
	p.active.Add(1)
}

// allowedFireAndForget exercises the suppression path.
func allowedFireAndForget(work func()) {
	go work() //locus:vet-allow goroutinejoin fixture: fire-and-forget spawn outlives nothing that cares
}
