// Package inodealias_f is a locus-vet fixture for the inodealias
// analyzer: an *Inode pulled out of a decoded RPC response aliases the
// sender's copy and must be Cloned before it is mutated or escapes.
package inodealias_f

type VV map[int]int

type Inode struct {
	Num  int
	Size int64
	VV   VV
}

func (i *Inode) Clone() *Inode {
	out := *i
	return &out
}

type openResp struct {
	Ino *Inode
}

var cache = map[int]*Inode{}

func use(*Inode) {}

// okReads: reading decoded metadata in place is legitimate; plain call
// arguments are not escapes either.
func okReads(resp any) int64 {
	ino := resp.(*openResp).Ino
	use(ino)
	return ino.Size
}

// okClones: a Clone result is an owned copy; mutation and return are
// fine.
func okClones(resp any) *Inode {
	ino := resp.(*openResp).Ino.Clone()
	ino.Size = 7
	return ino
}

// okCloneBeforeEscape: reassigning the identifier from Clone kills the
// taint before the mutation and the forward.
func okCloneBeforeEscape(resp any) *openResp {
	ino := resp.(*openResp).Ino
	ino = ino.Clone()
	ino.Size = 9
	return &openResp{Ino: ino}
}

func badMutates(resp any) {
	ino := resp.(*openResp).Ino
	ino.Size = 7 // want "mutates an RPC-decoded Inode without Clone"
}

func badMutatesInline(resp any) {
	resp.(*openResp).Ino.Size = 7 // want "mutates an RPC-decoded Inode without Clone"
}

// badTwoStepReturn: the decode-root shape — the type assertion is bound
// first and the field read happens later.
func badTwoStepReturn(resp any) *Inode {
	r := resp.(*openResp)
	return r.Ino // want "returns an RPC-decoded Inode without Clone"
}

func badStores(resp any) {
	ino := resp.(*openResp).Ino
	cache[ino.Num] = ino // want "stores an RPC-decoded Inode into shared state without Clone"
}

func badForwards(resp any) *openResp {
	ino := resp.(*openResp).Ino
	return &openResp{Ino: ino} // want "forwards an RPC-decoded Inode into a composite literal without Clone"
}

func badSends(resp any, ch chan *Inode) {
	ino := resp.(*openResp).Ino
	ch <- ino // want "sends an RPC-decoded Inode without Clone"
}

func badShares(resp any) {
	ino := resp.(*openResp).Ino
	go func() { cache[0] = ino }() // want "shares an RPC-decoded Inode with a goroutine without Clone"
}

// allowedReturn exercises the suppression path.
func allowedReturn(resp any) *Inode {
	ino := resp.(*openResp).Ino
	return ino //locus:vet-allow inodealias fixture: forwarding the alias is this case's point
}
