// Package lockorder_f is a locus-vet fixture: the test config declares
// the hierarchy Outer → Middle → Inner. Acquiring an earlier class
// while holding a later one must be flagged, directly or through the
// call graph.
package lockorder_f

import "sync"

type Outer struct{ mu sync.Mutex }

type Middle struct{ mu sync.RWMutex }

type Inner struct{ sync.Mutex }

func okNested(o *Outer, m *Middle, i *Inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	i.Lock()
	i.Unlock()
}

func badDirect(o *Outer, i *Inner) {
	i.Lock()
	defer i.Unlock()
	o.mu.Lock() // want "acquires lockorder_f.Outer while holding lockorder_f.Inner"
	o.mu.Unlock()
}

func badRLock(o *Outer, m *Middle) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o.mu.Lock() // want "acquires lockorder_f.Outer while holding lockorder_f.Middle"
	o.mu.Unlock()
}

// okSequential releases before acquiring the earlier class: no overlap,
// no inversion.
func okSequential(o *Outer, i *Inner) {
	i.Lock()
	i.Unlock()
	o.mu.Lock()
	o.mu.Unlock()
}

func lockMiddle(m *Middle) {
	m.mu.Lock()
	defer m.mu.Unlock()
}

// callsLockMiddle exists to force the inversion through two call-graph
// hops.
func callsLockMiddle(m *Middle) {
	lockMiddle(m)
}

func badViaCall(m *Middle, i *Inner) {
	i.Lock()
	defer i.Unlock()
	callsLockMiddle(m) // want "call to callsLockMiddle may acquire lockorder_f.Middle while holding lockorder_f.Inner"
}

func okViaCall(o *Outer, m *Middle) {
	o.mu.Lock()
	defer o.mu.Unlock()
	callsLockMiddle(m)
}

func okSuppressed(o *Outer, i *Inner) {
	i.Lock()
	defer i.Unlock()
	o.mu.Lock() //locusvet:allow lockorder fixture: documented exception
	o.mu.Unlock()
}
