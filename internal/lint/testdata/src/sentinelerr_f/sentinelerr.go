// Package sentinelerr_f is a locus-vet fixture for the sentinelerr
// analyzer: exported functions that may return the raw transport
// sentinel ErrGone without passing the wrapErr funnel. The taint flows
// through locals, callee summaries, and fmt.Errorf %w-wrapping; the
// `err != nil` and errors.Is refinements keep classified paths quiet.
package sentinelerr_f

import (
	"errors"
	"fmt"
)

// ErrGone is the raw transport sentinel (the test config's SentinelVars
// entry); ErrFailed is the classified failure callers are promised.
var (
	ErrGone   = errors.New("transport gone")
	ErrFailed = errors.New("site failed")
	ErrBusy   = errors.New("busy")
)

type Conn struct{}

// call is the transport primitive: its body is where the sentinel is
// born, so the summary tier marks it without any source configuration.
func (c *Conn) call(method string) (any, error) { return nil, ErrGone }

// wrapErr is the designated funnel (the test config's SentinelFunnels
// entry).
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrFailed, err)
}

// Probe leaks the sentinel raw.
func Probe(c *Conn) error {
	_, err := c.call("x")
	if err != nil {
		return err // want "raw transport sentinel"
	}
	return nil
}

// fetch returns the sentinel from an unexported helper; only the
// interprocedural summary makes Transitive's leak visible.
func fetch(c *Conn) error {
	_, err := c.call("y")
	return err
}

func Transitive(c *Conn) error {
	if err := fetch(c); err != nil {
		return err // want "raw transport sentinel"
	}
	return nil
}

// Rewrapped keeps the sentinel errors.Is-reachable through %w.
func Rewrapped(c *Conn) error {
	_, err := c.call("z")
	if err != nil {
		return fmt.Errorf("probe failed: %w", err) // want "raw transport sentinel"
	}
	return nil
}

// Flattened formats the sentinel with %v: it leaves the chain, and the
// %w operand is the classified error.
func Flattened(c *Conn) error {
	_, err := c.call("z")
	if err != nil {
		return fmt.Errorf("%w: probe failed: %v", ErrFailed, err)
	}
	return nil
}

// Classified routes every failure through the funnel.
func Classified(c *Conn) error {
	_, err := c.call("w")
	return wrapErr(err)
}

// NilGuarded returns err only on the err == nil edge, where the
// refinement has killed the taint.
func NilGuarded(c *Conn) (string, error) {
	_, err := c.call("u")
	if err == nil {
		return "ok", err
	}
	return "", wrapErr(err)
}

// IsRefined returns err only after errors.Is proved it is a classified
// application error, not a raw transport failure.
func IsRefined(c *Conn) error {
	_, err := c.call("t")
	if errors.Is(err, ErrBusy) {
		return err
	}
	return wrapErr(err)
}

// BareReturn leaks through a named result and a bare return.
func BareReturn(c *Conn) (err error) {
	_, err = c.call("s")
	return // want "raw transport sentinel"
}

// Audited is the deliberate leak with an audited reason.
func Audited(c *Conn) error {
	_, err := c.call("v")
	return err //locus:vet-allow sentinelerr fixture: deliberate leak exercises the allow path
}
