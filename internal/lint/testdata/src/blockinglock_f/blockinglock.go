// Package blockinglock_f is a locus-vet fixture for the blockinglock
// analyzer: no Node.Call exchange may run while a Kernel mutex is
// held, directly or through any statically resolvable callee.
package blockinglock_f

import "sync"

type Node struct{}

func (n *Node) Call(method string, payload any) (any, error) { return nil, nil }

type Kernel struct {
	mu   sync.Mutex
	node *Node
	size int
}

// okReleaseFirst snapshots under the mutex, releases, then exchanges.
func (k *Kernel) okReleaseFirst() (any, error) {
	k.mu.Lock()
	size := k.size
	k.mu.Unlock()
	return k.node.Call("probe", size)
}

// exchange blocks; callers holding the mutex inherit the violation
// through the call-graph fixpoint.
func (k *Kernel) exchange() {
	k.node.Call("probe", nil)
}

func (k *Kernel) badDirect() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.node.Call("probe", nil) // want "blocks on concurrent progress while holding blockinglock_f.Kernel"
}

func (k *Kernel) badTransitive() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.exchange() // want "may transitively block on concurrent progress while holding blockinglock_f.Kernel"
}

// allowedProbe exercises the suppression path.
func (k *Kernel) allowedProbe() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.node.Call("probe", nil) //locus:vet-allow blockinglock fixture: the held-lock probe is this case's point
}
