package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PageLeakAnalyzer proves that every storage allocation — a shadow page
// from Container.WritePage, a reserved inode number from
// Container.AllocInode — reaches a release, commit, or stage on every
// path out of the allocating function.
//
// This is the compile-time generalization of the fsck page-leak check:
// fsck finds a leaked page after a run has already lost it, while this
// analyzer finds the `return err` that skips the free. The bug class is
// real here — a page written into a shadow inode that is never
// committed or freed is invisible to every replica and survives until
// the next garbage collection, and the propagation task-death paths in
// prop.go are exactly where such early returns accumulate.
//
// The analysis runs on the CFG (cfg.go) as a forward may-analysis:
//
//   - gen: an assignment whose RHS is a single PageAlloc call with an
//     identifier LHS starts a "fresh" fact carrying the alloc site, the
//     result object, and the error object (if bound).
//   - error refinement: on the true edge of `if err != nil` (and the
//     false edge of `err == nil`) the fresh fact for that err is
//     killed — a failed allocation has nothing to leak.
//   - transfer: storing the value into an *owned root* (a local built
//     from a composite literal, new(), or a FreshFuncs call such as
//     Clone) parks the resource in a structure the function still owns;
//     the fact survives as a "held" fact that tracks the whole alias
//     set and no longer honors the error refinement. This is what keeps
//     the classic loop shape honest: pages appended to a fresh inode's
//     page list still leak if a later iteration fails.
//   - kill: passing any alias as a call argument (FreePages,
//     CommitInode, recordStaged, any helper), returning it, storing it
//     into a root the function does not own (the in-core inode, a
//     receiver field), sending it, or capturing it in a function
//     literal all transfer responsibility elsewhere.
//   - report: a fact still live at function exit — after applying
//     deferred calls — leaks on some path; the finding points at the
//     allocation.
//
// Function literals are analyzed as independent roots; their free
// variables are foreign roots, so storing into one counts as a release
// to the enclosing owner.
func PageLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "pageleak",
		Doc:  "every storage page/inode allocation must reach a free, commit, or stage on all paths",
		Run:  runPageLeak,
	}
}

// pageFact is one tracked allocation. Fact identity is the alloc site
// plus the generation: fresh facts honor the `if err != nil` edge
// refinement, held facts (parked in an owned structure) do not.
type pageFact struct {
	site *ast.CallExpr
	held bool
}

type pageLeak struct {
	prog *Program
	cfg  *Config
	pkg  *Package
	sup  *suppressions

	// aliases maps each alloc site to the closure of local objects its
	// value may flow into (flow-insensitive; liveness is flow-sensitive).
	aliases map[*ast.CallExpr]map[types.Object]bool
	// errs maps each alloc site to the error object bound at the
	// allocation, for the branch refinement.
	errs map[*ast.CallExpr]types.Object
	// bodyPos delimits the analyzed body; objects declared outside it
	// are foreign roots.
	bodyPos, bodyEnd token.Pos
	// owned marks locals assigned from composite literals, new(), or
	// FreshFuncs calls anywhere in the body.
	owned map[types.Object]bool
}

func runPageLeak(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range prog.Targets {
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				out = append(out, analyzePageLeakBody(prog, cfg, pkg, sup, fn.Body)...)
				// Nested literals are separate roots.
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						out = append(out, analyzePageLeakBody(prog, cfg, pkg, sup, lit.Body)...)
					}
					return true
				})
			}
		}
	}
	return out
}

func analyzePageLeakBody(prog *Program, cfg *Config, pkg *Package, sup *suppressions, body *ast.BlockStmt) []Finding {
	a := &pageLeak{
		prog:    prog,
		cfg:     cfg,
		pkg:     pkg,
		sup:     sup,
		aliases: make(map[*ast.CallExpr]map[types.Object]bool),
		errs:    make(map[*ast.CallExpr]types.Object),
		bodyPos: body.Pos(),
		bodyEnd: body.End(),
		owned:   make(map[types.Object]bool),
	}
	return a.run(body)
}

func (a *pageLeak) run(body *ast.BlockStmt) []Finding {
	a.collectAllocs(body)
	if len(a.aliases) == 0 {
		return nil
	}
	a.collectOwned(body)
	a.closeAliases(body)

	g := buildCFG(body, a.panicCall)
	in := g.forwardMay(a.transfer, a.edgeFilter)

	// Facts live at exit entry, minus those released by deferred calls,
	// leak on some path.
	live := in[g.exit]
	var out []Finding
	for k := range live {
		f := k.(pageFact)
		if a.deferReleases(g, f) {
			continue
		}
		pos := a.prog.Fset.Position(f.site.Pos())
		if a.sup.allowed(pos, "pageleak") {
			continue
		}
		out = append(out, Finding{
			Pos:      pos,
			Analyzer: "pageleak",
			Message: fmt.Sprintf("%s may leak: a path reaches function exit without freeing, committing, or staging the result",
				a.allocName(f.site)),
		})
	}
	return out
}

// collectAllocs finds PageAlloc call assignments and seeds alias sets.
func (a *pageLeak) collectAllocs(body *ast.BlockStmt) {
	inspectNoFuncLit(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		if _, ok := matchMustCheck(a.pkg.Info, call, a.cfg.PageAlloc); !ok {
			return
		}
		if len(as.Lhs) == 0 {
			return
		}
		resObj := a.identObj(as.Lhs[0])
		if resObj == nil {
			// Result discarded or stored straight into a structure; the
			// uncheckedcall analyzer covers discarded errors, and direct
			// stores are rare enough to leave to review.
			return
		}
		a.aliases[call] = map[types.Object]bool{resObj: true}
		if len(as.Lhs) > 1 {
			if eo := a.identObj(as.Lhs[1]); eo != nil {
				a.errs[call] = eo
			}
		}
	})
}

// collectOwned marks locals assigned from freshly-owned values.
func (a *pageLeak) collectOwned(body *ast.BlockStmt) {
	inspectNoFuncLit(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, lhs := range as.Lhs {
			obj := a.identObj(lhs)
			if obj == nil || !a.isLocal(obj) {
				continue
			}
			if a.freshExpr(as.Rhs[i]) {
				a.owned[obj] = true
			}
		}
	})
}

// freshExpr reports whether an expression produces a freshly-owned
// value: a composite literal, &literal, new(...), or a FreshFuncs call.
func (a *pageLeak) freshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := ast.Unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			for _, f := range a.cfg.FreshFuncs {
				if sel.Sel.Name == f {
					return true
				}
			}
		}
	}
	return false
}

// closeAliases grows each alloc's alias set: an assignment whose RHS
// mentions an alias and whose LHS roots a local adds that local.
func (a *pageLeak) closeAliases(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		inspectNoFuncLit(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return
			}
			for site, set := range a.aliases {
				if !a.mentionsAny(as.Rhs, set) {
					continue
				}
				for _, lhs := range as.Lhs {
					root := exprRoot(lhs)
					obj := a.identObj(root)
					if obj == nil || set[obj] {
						continue
					}
					if a.isLocal(obj) {
						set[obj] = true
						changed = true
					}
				}
				_ = site
			}
		})
	}
}

// transfer is the block transfer function of the forward may-analysis.
func (a *pageLeak) transfer(b *cfgBlock, in factSet) factSet {
	out := in.clone()
	for _, atom := range b.atoms {
		a.transferAtom(atom, out)
	}
	return out
}

func (a *pageLeak) transferAtom(atom ast.Node, out factSet) {
	// Gen: the alloc assignment itself.
	if as, ok := atom.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			if _, tracked := a.aliases[call]; tracked {
				// Re-allocation at the same site supersedes prior state
				// of the fresh generation only; held facts persist.
				out[pageFact{site: call, held: false}] = true
				return
			}
		}
	}

	for site, set := range a.aliases {
		fresh := pageFact{site: site, held: false}
		held := pageFact{site: site, held: true}
		if !out[fresh] && !out[held] {
			continue
		}
		kill, park := a.atomEffect(atom, site, set)
		if park && out[fresh] {
			delete(out, fresh)
			out[held] = true
		}
		if kill {
			delete(out, fresh)
			delete(out, held)
		}
	}
}

// atomEffect classifies one atom's effect on one allocation: kill
// (responsibility handed off) or park (stored into an owned root).
func (a *pageLeak) atomEffect(atom ast.Node, site *ast.CallExpr, set map[types.Object]bool) (kill, park bool) {
	switch st := atom.(type) {
	case *ast.AssignStmt:
		for i, lhs := range st.Lhs {
			var rhs ast.Expr
			if len(st.Rhs) == len(st.Lhs) {
				rhs = st.Rhs[i]
			} else if len(st.Rhs) == 1 {
				rhs = st.Rhs[0]
			}
			if rhs == nil || !a.mentionsAny([]ast.Expr{rhs}, set) {
				continue
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && call == site {
				continue // the alloc itself
			}
			root := exprRoot(lhs)
			obj := a.identObj(root)
			switch {
			case obj != nil && set[obj] && isPlainIdent(lhs):
				// pp = pp-ish rebinding: nothing changes.
			case obj != nil && a.isLocal(obj) && (a.owned[obj] || isPlainIdent(lhs)):
				// Stored into a structure rooted at an owned local, or
				// plain aliasing to a new local: the function still owns
				// the resource — park it.
				park = true
			default:
				// Stored into a foreign structure (receiver field,
				// package state, free variable) or into a local that
				// merely aliases one (ino := sv.incore): released to
				// the structure's owner.
				kill = true
			}
		}
		// An alias used as a bare call argument on the RHS also releases
		// (e.g. x := f(pp)); append is the parking idiom handled above.
		for _, rhs := range st.Rhs {
			if a.argHandoff(rhs, set) {
				kill = true
			}
		}
	case *ast.ExprStmt:
		if a.argHandoff(st.X, set) {
			kill = true
		}
	case *ast.ReturnStmt:
		if a.mentionsAny(st.Results, set) {
			kill = true
		}
	case *ast.SendStmt:
		if a.mentionsAny([]ast.Expr{st.Value}, set) {
			kill = true
		}
	case *ast.GoStmt:
		if a.nodeMentions(st, set) {
			kill = true
		}
	case *ast.DeferStmt:
		if a.nodeMentions(st, set) {
			kill = true
		}
	default:
		// Any atom that captures an alias in a function literal hands
		// the resource to the closure.
		ast.Inspect(atom, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok {
				if a.nodeMentions(lit, set) {
					kill = true
				}
				return false
			}
			return true
		})
	}
	return kill, park
}

// argHandoff reports whether expr contains a call passing an alias as
// an argument (not counting append results handled as parking).
func (a *pageLeak) argHandoff(expr ast.Expr, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			if a.nodeMentions(n, set) {
				found = true
			}
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			return true // parking idiom; the assignment handles it
		}
		for _, arg := range call.Args {
			if a.mentionsAny([]ast.Expr{arg}, set) {
				found = true
			}
		}
		return true
	})
	return found
}

// edgeFilter implements the error refinement: on the branch where the
// allocation's error is non-nil, the fresh fact dies.
func (a *pageLeak) edgeFilter(e cfgEdge, k factKey) bool {
	f, ok := k.(pageFact)
	if !ok || f.held || e.cond == nil {
		return true
	}
	eo := a.errs[f.site]
	if eo == nil {
		return true
	}
	op, operand := nilCheck(e.cond)
	if operand == nil || a.identObj(operand) != eo {
		return true
	}
	// err != nil: fact dies on true edge. err == nil: dies on false edge.
	if op == token.NEQ && e.kind == edgeCondTrue {
		return false
	}
	if op == token.EQL && e.kind == edgeCondFalse {
		return false
	}
	return true
}

// deferReleases reports whether any deferred call releases the fact.
func (a *pageLeak) deferReleases(g *funcCFG, f pageFact) bool {
	set := a.aliases[f.site]
	for _, call := range g.deferred {
		if a.nodeMentions(call, set) {
			return true
		}
	}
	return false
}

// panicCall marks calls that never return.
func (a *pageLeak) panicCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// helpers

func (a *pageLeak) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := a.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return a.pkg.Info.Uses[id]
}

func (a *pageLeak) isLocal(obj types.Object) bool {
	return obj.Pos() >= a.bodyPos && obj.Pos() <= a.bodyEnd
}

func (a *pageLeak) mentionsAny(exprs []ast.Expr, set map[types.Object]bool) bool {
	for _, e := range exprs {
		if e != nil && a.nodeMentions(e, set) {
			return true
		}
	}
	return false
}

func (a *pageLeak) nodeMentions(n ast.Node, set map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := a.identObj(id); obj != nil && set[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

func (a *pageLeak) allocName(site *ast.CallExpr) string {
	if fn := funcFor(a.pkg.Info, site); fn != nil {
		return "result of " + funcDisplayName(fn)
	}
	return "allocation"
}

// exprRoot peels selectors, indexes, and stars down to the base
// expression (x.F[i] -> x).
func exprRoot(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ast.Unparen(e)
		}
	}
}

func isPlainIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// nilCheck recognizes `x != nil` / `x == nil` (either operand order)
// and returns the comparison operator and the non-nil operand.
func nilCheck(cond ast.Expr) (token.Token, ast.Expr) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return 0, nil
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(be.Y):
		return be.Op, be.X
	case isNil(be.X):
		return be.Op, be.Y
	}
	return 0, nil
}

// inspectNoFuncLit walks a body's nodes without descending into nested
// function literals (they are separate analysis roots).
func inspectNoFuncLit(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
