package lint

import (
	"fmt"
	"go/ast"
)

// RawCallAnalyzer flags direct uses of the netsim transport
// (Node.Call/CallSeq/Cast) inside packages that own a retrying
// at-most-once wrapper (internal/fs, internal/proc).
//
// The wrappers (Kernel.call/cast, Manager.call/cast) are what make
// protocol exchanges survive message loss: they tag mutating requests
// with dedup sequence numbers and retry timeouts under the simulated
// clock's backoff. A raw Node.Call bypasses all of that — under the
// fault plane it turns one lost message into a spurious operation
// failure, and a raw retry without a sequence number re-runs the
// mutation (the double-commit/double-create bugs the dedup tables
// exist to prevent). The wrapper implementations themselves carry a
// `//locusvet:allow rawcall` justification.
func RawCallAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rawcall",
		Doc:  "flag direct netsim transport calls that bypass the retrying at-most-once RPC wrappers",
		Run:  runRawCall,
	}
}

func runRawCall(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range prog.Targets {
		wrapped := false
		for _, suffix := range cfg.RawCallWrapped {
			if hasPathSuffix(pkg.Path, suffix) {
				wrapped = true
				break
			}
		}
		if !wrapped {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				spec, ok := matchMustCheck(pkg.Info, call, cfg.RawCallTransport)
				if !ok {
					return true
				}
				pos := prog.Fset.Position(call.Pos())
				if sup.allowed(pos, "rawcall") {
					return true
				}
				out = append(out, Finding{
					Pos:      pos,
					Analyzer: "rawcall",
					Message: fmt.Sprintf("direct %s.%s bypasses the retrying at-most-once RPC wrapper; use the package's call/cast wrapper",
						spec.Recv, spec.Name),
				})
				return true
			})
		}
	}
	return out
}
