package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the directory holding the package's sources.
	Dir string
	// Files are the package's non-test source files, in file-name order,
	// after build-constraint filtering.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's per-node results for Files.
	Info *types.Info
}

// Program is a loaded module: every analysis-target package plus any
// module-internal dependencies, all sharing one FileSet.
type Program struct {
	Fset   *token.FileSet
	Module string
	Root   string
	// Targets are the packages analyzers report findings in, in import
	// path order.
	Targets []*Package
	// ByPath indexes every loaded module package (targets and
	// dependencies) by import path.
	ByPath map[string]*Package
}

// PackageError describes one package that failed to load: the first
// parse or type error the checker reported for it.
type PackageError struct {
	Path string `json:"path"`
	Err  string `json:"error"`
}

// LoadError aggregates every target package that failed to parse or
// type-check. Broken packages are never silently dropped from the
// analysis set: the caller gets the full failure list (first error per
// package) and must treat the run as a load failure, not a clean one.
type LoadError struct {
	Packages []PackageError
}

func (e *LoadError) Error() string {
	if len(e.Packages) == 1 {
		return fmt.Sprintf("lint: loading %s: %s", e.Packages[0].Path, e.Packages[0].Err)
	}
	return fmt.Sprintf("lint: %d packages failed to load (first: %s: %s)",
		len(e.Packages), e.Packages[0].Path, e.Packages[0].Err)
}

// loader resolves imports: module-local packages are parsed and
// type-checked from source (recursively), everything else is delegated
// to the stdlib source importer. It implements types.Importer.
type loader struct {
	fset    *token.FileSet
	root    string
	module  string
	std     types.Importer
	tags    map[string]bool
	pkgs    map[string]*Package
	loading map[string]bool
	// failed caches module-local load failures so every dependent sees
	// the same first error and broken packages are parsed only once.
	failed map[string]error
}

// LoadAll loads every package of the module rooted at root (skipping
// testdata and hidden directories), plus the extra import paths given
// (fixture packages under testdata name themselves this way). The
// walked packages and the extras all become analysis targets.
func LoadAll(root string, extra []string) (*Program, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		// Build-constraint evaluation: the host platform's tags hold;
		// optional feature tags (locusinvariants) are off, matching the
		// default build the analyzers gate.
		tags:    map[string]bool{runtime.GOOS: true, runtime.GOARCH: true, "gc": true},
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		failed:  make(map[string]error),
	}
	paths, err := walkPackages(root, module)
	if err != nil {
		return nil, err
	}
	paths = append(paths, extra...)
	prog := &Program{Fset: fset, Module: module, Root: root, ByPath: l.pkgs}
	seen := make(map[string]bool)
	var le *LoadError
	for _, p := range paths {
		if seen[p] {
			continue
		}
		seen[p] = true
		pkg, err := l.Import(p)
		if err != nil {
			// Keep loading the remaining targets so one broken package
			// reports alongside — not instead of — the others.
			if le == nil {
				le = &LoadError{}
			}
			le.Packages = append(le.Packages, PackageError{Path: p, Err: err.Error()})
			continue
		}
		prog.Targets = append(prog.Targets, l.pkgs[pkg.Path()])
	}
	if le != nil {
		return nil, le
	}
	sort.Slice(prog.Targets, func(i, j int) bool { return prog.Targets[i].Path < prog.Targets[j].Path })
	return prog, nil
}

// modulePath reads the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// walkPackages lists the import paths of all package directories under
// root, skipping testdata, hidden, and VCS directories.
func walkPackages(root, module string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, module)
				} else {
					out = append(out, module+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	return out, err
}

// Import implements types.Importer: module-local paths load from
// source, everything else goes to the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if err, ok := l.failed[path]; ok {
		return nil, err
	}
	if path != l.module && !strings.HasPrefix(path, l.module+"/") {
		return l.std.Import(path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")))
	files, err := l.parseDir(dir)
	if err != nil {
		l.failed[path] = err
		return nil, err
	}
	if len(files) == 0 {
		err := fmt.Errorf("no buildable Go files in %s", dir)
		l.failed[path] = err
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	// The default checker stops at the first error, which is exactly the
	// "first error per package" LoadError reports.
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		l.failed[path] = err
		return nil, err
	}
	l.pkgs[path] = &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	return tpkg, nil
}

// parseDir parses the non-test .go files of dir that survive build
// constraint evaluation, in file-name order.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if l.includeFile(f) {
			files = append(files, f)
		}
	}
	return files, nil
}

// includeFile evaluates a file's //go:build constraint (if any) against
// the loader's tag set.
func (l *loader) includeFile(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed constraint: let the real build complain
			}
			return expr.Eval(func(tag string) bool { return l.tags[tag] })
		}
	}
	return true
}
