package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses one function declaration and returns its body.
func parseBody(t *testing.T, fn string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", "package x\n"+fn, 0)
	if err != nil {
		t.Fatalf("parsing test function: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function declaration in test source")
	return nil
}

// atomString finds the first atom in a block list matching pred.
func blockWithAssign(g *funcCFG, name string) *cfgBlock {
	for _, blk := range g.blocks {
		for _, a := range blk.atoms {
			as, ok := a.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == name {
				return blk
			}
		}
	}
	return nil
}

func TestCFGDiamondDominators(t *testing.T) {
	t.Parallel()
	body := parseBody(t, `
func f(a bool) int {
	x := 0
	if a {
		y := 1
		_ = y
	} else {
		z := 2
		_ = z
	}
	w := 3
	return w
}`)
	g := buildCFG(body, nil)
	dom := g.dominators()

	thenB := blockWithAssign(g, "y")
	elseB := blockWithAssign(g, "z")
	joinB := blockWithAssign(g, "w")
	if thenB == nil || elseB == nil || joinB == nil {
		t.Fatal("expected then/else/join blocks with their assignments")
	}
	// The entry dominates everything reachable.
	for _, blk := range []*cfgBlock{thenB, elseB, joinB, g.exit} {
		if !dom[blk][g.entry] {
			t.Errorf("entry should dominate block %d", blk.idx)
		}
	}
	// Neither branch dominates the join — control can take the other arm.
	if dom[joinB][thenB] || dom[joinB][elseB] {
		t.Error("a single branch arm must not dominate the join")
	}
	// The join dominates the exit: every path funnels through it.
	if !dom[g.exit][joinB] {
		t.Error("join block should dominate the exit")
	}
}

// TestCFGForwardMayUnion checks the may-union at a join: a fact
// generated in one branch is live at the join and at exit even though
// the other branch never generated it.
func TestCFGForwardMayUnion(t *testing.T) {
	t.Parallel()
	body := parseBody(t, `
func f(a bool) int {
	x := 0
	if a {
		y := 1
		_ = y
	}
	w := 3
	return w
}`)
	g := buildCFG(body, nil)
	genBlock := blockWithAssign(g, "y")
	if genBlock == nil {
		t.Fatal("missing gen block")
	}
	const fact = "from-then-branch"
	in := g.forwardMay(func(b *cfgBlock, in factSet) factSet {
		out := in.clone()
		if b == genBlock {
			out[fact] = true
		}
		return out
	}, nil)
	if !in[g.exit][fact] {
		t.Error("fact generated on one branch should reach exit (may-analysis)")
	}
	joinB := blockWithAssign(g, "w")
	if joinB == nil || !in[joinB][fact] {
		t.Error("fact should be live at the join block")
	}
}

// TestCFGForwardMayEdgeFilter checks that an edge filter kills a fact
// on a specific branch edge, the mechanism behind the `if err != nil`
// refinement.
func TestCFGForwardMayEdgeFilter(t *testing.T) {
	t.Parallel()
	body := parseBody(t, `
func f(err error) int {
	x := 0
	if err != nil {
		y := 1
		_ = y
	}
	w := 3
	return w
}`)
	g := buildCFG(body, nil)
	entryB := blockWithAssign(g, "x")
	errB := blockWithAssign(g, "y")
	joinB := blockWithAssign(g, "w")
	if entryB == nil || errB == nil || joinB == nil {
		t.Fatal("missing expected blocks")
	}
	const fact = "alloc"
	in := g.forwardMay(func(b *cfgBlock, in factSet) factSet {
		out := in.clone()
		if b == entryB {
			out[fact] = true
		}
		return out
	}, func(e cfgEdge, k factKey) bool {
		// Drop the fact on the error-handling (condition-true) edge.
		return !(k == factKey(fact) && e.kind == edgeCondTrue)
	})
	if in[errB][fact] {
		t.Error("edge filter should keep the fact out of the error branch")
	}
	if !in[joinB][fact] {
		t.Error("fact should survive along the fall-through edge to the join")
	}
}

// TestCFGLoopBackEdge checks that facts flow around a loop back edge to
// reach atoms earlier in the loop body on the second iteration.
func TestCFGLoopBackEdge(t *testing.T) {
	t.Parallel()
	body := parseBody(t, `
func f(n int) int {
	t := 0
	for i := 0; i < n; i++ {
		b := i
		_ = b
	}
	w := t
	return w
}`)
	g := buildCFG(body, nil)
	loopB := blockWithAssign(g, "b")
	if loopB == nil {
		t.Fatal("missing loop body block")
	}
	const fact = "loop-born"
	in := g.forwardMay(func(b *cfgBlock, in factSet) factSet {
		out := in.clone()
		if b == loopB {
			out[fact] = true
		}
		return out
	}, nil)
	// The fact generated in the loop body must flow around the back edge
	// and be live at the loop body's own entry on re-iteration.
	if !in[loopB][fact] {
		t.Error("fact should reach the loop body entry via the back edge")
	}
	if !in[g.exit][fact] {
		t.Error("fact should escape the loop to the exit")
	}
}

// TestCFGPanicSealsPath checks that a diverging call ends its path: a
// fact live before panic never reaches the exit through that path.
func TestCFGPanicSealsPath(t *testing.T) {
	t.Parallel()
	body := parseBody(t, `
func f(a bool) int {
	x := 0
	if a {
		y := 1
		_ = y
		panic("boom")
	}
	w := 3
	return w
}`)
	isPanic := func(call *ast.CallExpr) bool {
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	g := buildCFG(body, isPanic)
	panicB := blockWithAssign(g, "y")
	if panicB == nil {
		t.Fatal("missing panic block")
	}
	const fact = "doomed"
	in := g.forwardMay(func(b *cfgBlock, in factSet) factSet {
		out := in.clone()
		if b == panicB {
			out[fact] = true
		}
		return out
	}, nil)
	if in[g.exit][fact] {
		t.Error("fact generated on a panicking path must not reach the exit")
	}
}
