package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// This file is the interprocedural summary tier: per-function fact sets
// richer than the one-bit closures of callsummary.go, computed bottom-up
// over the shared call graph and composed at call sites by the CFG
// dataflow analyzers.
//
// Three summaries are computed in one pass over the module:
//
//   - wire: the function may perform a wire send — a transport exchange
//     (Config.OrderEffects) directly or through any statically
//     resolvable callee. The effect is order-observable: every send
//     bumps a per-(from,to,method) occurrence counter that the fault
//     plane keys its drop/dup/delay decisions on, so the ORDER in which
//     a group of sends happens is part of the deterministic schedule
//     the chaos replay contract pins. maporder composes this fact at
//     map-range sites.
//
//   - sentinel: the function may return a raw transport sentinel
//     (Config.SentinelVars — netsim.ErrUnreachable, ErrTimeout, the
//     crash variants, fs.ErrNoCSS...) in an error result without
//     passing one of the designated wrap funnels
//     (Config.SentinelFunnels). This is a true interprocedural
//     dataflow: each function's CFG is walked with a taint analysis
//     (funnels launder, `err != nil` refinement kills on the nil edge),
//     and because a callee's summary feeds its callers the whole map is
//     iterated to a fixpoint. sentinelerr composes this fact at the
//     return statements of exported API functions.
//
//   - atomicParams: per-parameter facts — parameter i's pointee is
//     accessed with sync/atomic operations, directly or by a callee the
//     pointer is forwarded to. atomiccounter composes this at call
//     sites to decide whether `&x.field` escaping into a helper is an
//     atomic access or a plain one.
//
// The summary table is built once per Config and shared by every
// analyzer that asks for it; Config.SummaryCacheStats exposes the
// build/hit counts (`locus-vet -stats` reports the hit rate).
type summaries struct {
	graph *callGraph
	// wire marks functions that may perform an order-observable wire
	// send, transitively.
	wire map[*types.Func]bool
	// sentinel marks functions that may return a raw transport sentinel
	// unwrapped in an error result, transitively.
	sentinel map[*types.Func]bool
	// atomicParams marks, per function, the parameter indices whose
	// pointee is accessed via sync/atomic (directly or forwarded).
	atomicParams map[*types.Func]map[int]bool
}

// SummaryCacheStats reports how the shared interprocedural summary
// table behaved under this Config: builds is the number of full
// bottom-up computations (at most one per Config), hits the number of
// analyzer requests served from the cache.
func (cfg *Config) SummaryCacheStats() (builds, hits int) {
	cfg.mu.Lock()
	defer cfg.mu.Unlock()
	return cfg.summaryBuilds, cfg.summaryHits
}

// summariesFor returns the interprocedural summary table for prog,
// building it on first use and serving every later analyzer from the
// cache.
func (cfg *Config) summariesFor(prog *Program) *summaries {
	cfg.mu.Lock()
	if cfg.summary != nil && cfg.summaryProg == prog {
		cfg.summaryHits++
		s := cfg.summary
		cfg.mu.Unlock()
		return s
	}
	cfg.mu.Unlock()
	s := buildSummaries(prog, cfg)
	cfg.mu.Lock()
	cfg.summary = s
	cfg.summaryProg = prog
	cfg.summaryBuilds++
	cfg.mu.Unlock()
	return s
}

func buildSummaries(prog *Program, cfg *Config) *summaries {
	s := &summaries{
		wire:         make(map[*types.Func]bool),
		sentinel:     make(map[*types.Func]bool),
		atomicParams: make(map[*types.Func]map[int]bool),
	}
	// Direct facts are seeded during the single call-graph walk; the
	// calls are still recorded as callees so the transitive closures
	// compose.
	wireSeeds := make(map[*types.Func]map[int]bool)
	type atomicFwd struct {
		caller *types.Func
		callee *types.Func
		// argParam maps callee parameter index -> caller parameter index
		// for pointer params forwarded verbatim.
		argParam map[int]int
	}
	var fwds []atomicFwd
	s.graph = buildCallGraph(prog, func(pkg *Package, fn *types.Func, call *ast.CallExpr) bool {
		if _, ok := matchMustCheck(pkg.Info, call, cfg.OrderEffects); ok {
			if wireSeeds[fn] == nil {
				wireSeeds[fn] = make(map[int]bool)
			}
			wireSeeds[fn][0] = true
		}
		if isAtomicCall(pkg.Info, call) {
			for _, arg := range call.Args {
				if idx, ok := paramIndexOf(pkg.Info, fn, arg); ok {
					if s.atomicParams[fn] == nil {
						s.atomicParams[fn] = make(map[int]bool)
					}
					s.atomicParams[fn][idx] = true
				}
			}
			return false
		}
		// Record verbatim pointer-param forwarding for the atomicParams
		// fixpoint: caller param i passed as callee arg j.
		if callee := funcFor(pkg.Info, call); callee != nil {
			var m map[int]int
			for j, arg := range call.Args {
				if idx, ok := paramIndexOf(pkg.Info, fn, arg); ok {
					if m == nil {
						m = make(map[int]int)
					}
					m[j] = idx
				}
			}
			if m != nil {
				fwds = append(fwds, atomicFwd{caller: fn, callee: callee, argParam: m})
			}
		}
		return false
	})
	// The effect methods themselves are wire (their bodies do the send
	// through internal machinery the specs don't name).
	for fn := range s.graph.bodies {
		if funcMatchesSpec(fn, cfg.OrderEffects) {
			if wireSeeds[fn] == nil {
				wireSeeds[fn] = make(map[int]bool)
			}
			wireSeeds[fn][0] = true
		}
	}
	s.graph.fixpointSets(wireSeeds)
	for fn, set := range wireSeeds {
		if set[0] {
			s.wire[fn] = true
		}
	}

	// atomicParams fixpoint: a caller param forwarded into a callee's
	// atomic param is itself atomic.
	for changed := true; changed; {
		changed = false
		for _, f := range fwds {
			for _, target := range s.graph.resolveTargets(f.callee) {
				for j, i := range f.argParam {
					if s.atomicParams[target][j] && !s.atomicParams[f.caller][i] {
						if s.atomicParams[f.caller] == nil {
							s.atomicParams[f.caller] = make(map[int]bool)
						}
						s.atomicParams[f.caller][i] = true
						changed = true
					}
				}
			}
		}
	}

	if len(cfg.SentinelVars) > 0 {
		s.buildSentinel(prog, cfg)
	}
	return s
}

// ---------------------------------------------------------------------
// Sentinel-return summary.

// buildSentinel iterates the per-function taint analysis to a global
// fixpoint: a function's summary depends on its callees' summaries, so
// the whole map is recomputed until nothing changes (bounded by the
// call-graph depth; the repository's graphs converge in 3-4 rounds).
func (s *summaries) buildSentinel(prog *Program, cfg *Config) {
	for changed := true; changed; {
		changed = false
		for fn, fb := range s.graph.bodies {
			if s.sentinel[fn] {
				continue
			}
			if s.sentinelReturns(fb, fn, cfg, nil) {
				s.sentinel[fn] = true
				changed = true
			}
		}
	}
}

// sentinelTaint is the per-function taint pass state.
type sentinelTaint struct {
	s   *summaries
	cfg *Config
	pkg *Package
	// sig is the analyzed function's signature (named error results
	// make bare returns taint-carriers).
	sig *types.Signature
}

// sentinelReturns runs the CFG taint analysis over one function body
// and reports whether any return statement can carry a raw sentinel.
// report, if non-nil, is invoked for each such return (the sentinelerr
// analyzer's composition point); the summary builder passes nil.
func (s *summaries) sentinelReturns(fb *funcBody, fn *types.Func, cfg *Config, report func(ret *ast.ReturnStmt, expr ast.Expr)) bool {
	t := &sentinelTaint{s: s, cfg: cfg, pkg: fb.pkg}
	if sig, ok := fn.Type().(*types.Signature); ok {
		t.sig = sig
	}
	g := buildCFG(fb.body, nil)
	in := g.forwardMay(t.transfer, t.edgeFilter)

	tainted := false
	for _, blk := range g.blocks {
		facts := in[blk].clone()
		for _, atom := range blk.atoms {
			if ret, ok := atom.(*ast.ReturnStmt); ok {
				for _, e := range t.returnedErrorExprs(ret) {
					if t.taintedExpr(e, facts) {
						tainted = true
						if report != nil {
							report(ret, e)
						}
					}
				}
			}
			facts = t.apply(atom, facts)
		}
	}
	return tainted
}

// returnedErrorExprs lists the error-typed expressions a return
// statement yields; a bare return yields the named error results.
func (t *sentinelTaint) returnedErrorExprs(ret *ast.ReturnStmt) []ast.Expr {
	var out []ast.Expr
	if len(ret.Results) == 0 {
		if t.sig == nil {
			return nil
		}
		res := t.sig.Results()
		for i := 0; i < res.Len(); i++ {
			v := res.At(i)
			if v.Name() != "" && isErrorType(v.Type()) {
				// A synthetic node carrying the named-result object;
				// taintedExpr checks its fact directly (there is no AST
				// identifier to resolve through Uses).
				out = append(out, &namedResultExpr{obj: v})
			}
		}
		return out
	}
	for _, e := range ret.Results {
		tv := t.pkg.Info.TypeOf(e)
		if tv == nil {
			continue
		}
		if isErrorType(tv) {
			out = append(out, e)
			continue
		}
		// `return m.call(...)`: a single multi-result call feeding the
		// return tuple — include the call if any element is an error.
		if tup, ok := tv.(*types.Tuple); ok && len(ret.Results) == 1 {
			for i := 0; i < tup.Len(); i++ {
				if isErrorType(tup.At(i).Type()) {
					out = append(out, e)
					break
				}
			}
		}
	}
	return out
}

// namedResultExpr is a synthetic expression node carrying a named
// result object (never type-checked, only inspected by taintedExpr).
type namedResultExpr struct {
	ast.Ident
	obj *types.Var
}

// transfer applies a block's atoms to the incoming fact set.
func (t *sentinelTaint) transfer(b *cfgBlock, in factSet) factSet {
	out := in.clone()
	for _, atom := range b.atoms {
		out = t.apply(atom, out)
	}
	return out
}

// apply processes one atom: assignments gen or kill taint on
// error-typed locals.
func (t *sentinelTaint) apply(atom ast.Node, facts factSet) factSet {
	as, ok := atom.(*ast.AssignStmt)
	if !ok {
		return facts
	}
	out := facts.clone()
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// v, err := call(): the call's taint lands on every error LHS.
		taint := t.taintedExpr(as.Rhs[0], facts)
		for _, lhs := range as.Lhs {
			t.assignTo(lhs, taint, out)
		}
		return out
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			t.assignTo(lhs, t.taintedExpr(as.Rhs[i], facts), out)
		}
	}
	return out
}

func (t *sentinelTaint) assignTo(lhs ast.Expr, taint bool, facts factSet) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := t.pkg.Info.Defs[id]
	if obj == nil {
		obj = t.pkg.Info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || !isErrorType(v.Type()) {
		return
	}
	if taint {
		facts[v] = true
	} else {
		delete(facts, v)
	}
}

// taintedExpr reports whether evaluating e may yield a raw sentinel
// given the current facts.
func (t *sentinelTaint) taintedExpr(e ast.Expr, facts factSet) bool {
	switch x := ast.Unparen(e).(type) {
	case *namedResultExpr:
		return facts[x.obj]
	case *ast.Ident:
		if obj, ok := t.pkg.Info.Uses[x].(*types.Var); ok {
			if facts[obj] {
				return true
			}
			return t.isSentinelVar(obj)
		}
		return false
	case *ast.SelectorExpr:
		if obj, ok := t.pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return t.isSentinelVar(obj)
		}
		return false
	case *ast.CallExpr:
		return t.taintedCall(x, facts)
	}
	return false
}

// taintedCall classifies a call's error result: funnels launder,
// transport sources and sentinel-summary callees taint, and wrapping
// helpers (fmt.Errorf with a tainted operand) keep the sentinel
// `errors.Is`-reachable so the taint survives.
func (t *sentinelTaint) taintedCall(call *ast.CallExpr, facts factSet) bool {
	if _, ok := matchMustCheck(t.pkg.Info, call, t.cfg.SentinelFunnels); ok {
		return false
	}
	if _, ok := matchMustCheck(t.pkg.Info, call, t.cfg.SentinelSources); ok {
		return true
	}
	if callee := funcFor(t.pkg.Info, call); callee != nil {
		if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf" {
			// Only %w keeps an operand `errors.Is`-reachable; a sentinel
			// flattened through %v or %s leaves the chain. With a constant
			// format the taint follows the %w operands exactly; otherwise
			// any tainted operand taints conservatively.
			if len(call.Args) > 0 {
				if format, ok := constantString(t.pkg.Info, call.Args[0]); ok {
					if idxs, parsed := wrapOperandIndexes(format); parsed {
						for _, i := range idxs {
							if i+1 < len(call.Args) && t.taintedExpr(call.Args[i+1], facts) {
								return true
							}
						}
						return false
					}
				}
			}
			for _, arg := range call.Args {
				if t.taintedExpr(arg, facts) {
					return true
				}
			}
			return false
		}
		for _, target := range t.s.graph.resolveTargets(callee) {
			if t.s.sentinel[target] {
				return true
			}
		}
	}
	return false
}

// edgeFilter refines facts on branches: the nil edge of an `err != nil`
// test kills err's taint (a nil error carries no sentinel), and the
// true edge of `errors.Is(err, SomeNonSentinel)` proves the error is a
// classified application error, not a raw transport failure.
func (t *sentinelTaint) edgeFilter(e cfgEdge, k factKey) bool {
	if e.cond == nil || e.kind == edgeSeq {
		return true
	}
	v, ok := k.(*types.Var)
	if !ok {
		return true
	}
	cond := ast.Unparen(e.cond)
	if bin, ok := cond.(*ast.BinaryExpr); ok {
		var errSide ast.Expr
		if isNilIdent(bin.Y) {
			errSide = bin.X
		} else if isNilIdent(bin.X) {
			errSide = bin.Y
		}
		if errSide != nil && t.exprIsVar(errSide, v) {
			// err == nil true-edge and err != nil false-edge are the
			// "no failure" paths.
			if (bin.Op.String() == "==" && e.kind == edgeCondTrue) ||
				(bin.Op.String() == "!=" && e.kind == edgeCondFalse) {
				return false
			}
		}
		return true
	}
	if call, ok := cond.(*ast.CallExpr); ok && e.kind == edgeCondTrue && len(call.Args) == 2 {
		if fn := funcFor(t.pkg.Info, call); fn != nil && fn.Name() == "Is" &&
			fn.Pkg() != nil && fn.Pkg().Path() == "errors" {
			if t.exprIsVar(call.Args[0], v) && !t.taintedExpr(call.Args[1], nil) {
				return false
			}
		}
	}
	return true
}

func (t *sentinelTaint) exprIsVar(e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	return t.pkg.Info.Uses[id] == v
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (t *sentinelTaint) isSentinelVar(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	for _, spec := range t.cfg.SentinelVars {
		if v.Name() == spec.Name && hasPathSuffix(v.Pkg().Path(), spec.PkgSuffix) {
			return true
		}
	}
	return false
}

// constantString returns e's constant string value, if it has one.
func constantString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// wrapOperandIndexes returns the 0-based operand positions consumed by
// %w verbs in a fmt format string. parsed is false when the format uses
// features the scanner doesn't model (explicit argument indexes), in
// which case the caller falls back to the conservative rule.
func wrapOperandIndexes(format string) (idxs []int, parsed bool) {
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// Flags, width, precision; each '*' consumes an operand.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.ContainsRune("+-# .0123456789", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == 'w' {
			idxs = append(idxs, arg)
		}
		arg++
	}
	return idxs, true
}

// ---------------------------------------------------------------------
// Atomic-call recognition (shared with atomiccounter).

// isAtomicCall reports whether call is a sync/atomic package function
// (AddInt64, LoadUint32, StoreInt64, SwapPointer, CompareAndSwap...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := funcFor(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// funcMatchesSpec reports whether fn itself is one of the named specs
// (the call-site matcher's twin, for seeding the effect methods).
func funcMatchesSpec(fn *types.Func, specs []MethodSpec) bool {
	if fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for _, spec := range specs {
		if fn.Name() != spec.Name || !hasPathSuffix(fn.Pkg().Path(), spec.PkgSuffix) {
			continue
		}
		if spec.Recv == "" {
			if sig.Recv() == nil {
				return true
			}
			continue
		}
		if sig.Recv() != nil && typeMatches(sig.Recv().Type(), spec.PkgSuffix, spec.Recv) {
			return true
		}
	}
	return false
}

// paramIndexOf resolves arg to a parameter of fn (by identity), for
// the pointer-forwarding facts.
func paramIndexOf(info *types.Info, fn *types.Func, arg ast.Expr) (int, bool) {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i, true
		}
	}
	return 0, false
}
