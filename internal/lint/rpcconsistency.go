package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// RPCConsistencyAnalyzer cross-checks the protocol method namespace:
// the method-string constants (protocol.go and friends), the handlers
// registered for them, the wrapper call sites that invoke them, and
// the at-most-once classification of the mutating ones.
//
// Protocol drift is the scale killer PAPERS.md's Lustre retrospective
// calls out: a method constant with no handler fails at the first
// 1000-site fan-out, a raw string literal silently forks the
// namespace, and a mutating two-way method missing from the dedup set
// replays its mutation under message loss. The checks:
//
//   - every method constant (a string constant whose value carries an
//     RPCMethodPrefixes prefix) is registered by exactly one
//     RPCRegister call and invoked by at least one RPCInvoke call;
//   - registration and invocation sites name the constant — a raw
//     string literal is a finding even when the spelling matches;
//   - in a package with an RPCMutatingVar set, every method invoked
//     through a two-way wrapper is either a key of that set or listed
//     in Config.RPCIdempotent, and every key of the set is a declared
//     constant naming a registered method.
func RPCConsistencyAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "rpcconsistency",
		Doc:  "method constants, handler registrations, wrapper call sites, and dedup classification must agree",
		Run:  runRPCConsistency,
	}
}

// rpcMethod accumulates everything known about one method string.
type rpcMethod struct {
	value      string
	constPos   token.Position // declaration of the constant ("" value if none)
	hasConst   bool
	registered []token.Position
	invoked    []token.Position
	twoWay     []token.Position // invocations through a two-way wrapper
	mutating   bool             // key of the dedup set
}

func runRPCConsistency(prog *Program, cfg *Config) []Finding {
	if len(cfg.RPCMethodPrefixes) == 0 {
		return nil
	}
	methods := make(map[string]*rpcMethod)
	get := func(v string) *rpcMethod {
		m := methods[v]
		if m == nil {
			m = &rpcMethod{value: v}
			methods[v] = m
		}
		return m
	}
	var out []Finding
	sups := make(map[*Package]*suppressions)
	sup := func(pkg *Package) *suppressions {
		s := sups[pkg]
		if s == nil {
			s = suppressionsFor(prog, pkg, cfg)
			sups[pkg] = s
		}
		return s
	}
	report := func(pkg *Package, pos token.Position, msg string) {
		if sup(pkg).allowed(pos, "rpcconsistency") {
			return
		}
		out = append(out, Finding{Pos: pos, Analyzer: "rpcconsistency", Message: msg})
	}

	// mutatingByPkg remembers which packages declare a dedup set.
	mutatingByPkg := make(map[*Package]bool)

	for _, pkg := range prog.Targets {
		// Pass 1: constants and the dedup set.
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				switch gd.Tok {
				case token.CONST:
					for _, spec := range gd.Specs {
						vs := spec.(*ast.ValueSpec)
						for _, name := range vs.Names {
							obj, ok := pkg.Info.Defs[name].(*types.Const)
							if !ok || obj.Val().Kind() != constant.String {
								continue
							}
							v := constant.StringVal(obj.Val())
							if !hasRPCPrefix(v, cfg.RPCMethodPrefixes) {
								continue
							}
							m := get(v)
							m.hasConst = true
							m.constPos = prog.Fset.Position(name.Pos())
						}
					}
				case token.VAR:
					if cfg.RPCMutatingVar == "" {
						continue
					}
					for _, spec := range gd.Specs {
						vs := spec.(*ast.ValueSpec)
						for i, name := range vs.Names {
							if name.Name != cfg.RPCMutatingVar || i >= len(vs.Values) {
								continue
							}
							lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
							if !ok {
								continue
							}
							mutatingByPkg[pkg] = true
							for _, el := range lit.Elts {
								kv, ok := el.(*ast.KeyValueExpr)
								if !ok {
									continue
								}
								pos := prog.Fset.Position(kv.Key.Pos())
								v, named := stringConstValue(pkg, kv.Key)
								if v == "" {
									continue
								}
								if !named {
									report(pkg, pos, fmt.Sprintf("dedup set %s keys %q with a raw string; name the method constant", cfg.RPCMutatingVar, v))
								}
								get(v).mutating = true
							}
						}
					}
				}
			}
		}
	}

	// Pass 2: registration and invocation sites.
	for _, pkg := range prog.Targets {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				isReg := matchesSpecs(pkg.Info, call, cfg.RPCRegister)
				isInv := matchesSpecs(pkg.Info, call, cfg.RPCInvoke)
				if !isReg && !isInv {
					return true
				}
				arg := methodStringArg(pkg, call)
				if arg == nil {
					return true
				}
				pos := prog.Fset.Position(arg.Pos())
				v, named := stringConstValue(pkg, arg)
				if v == "" || !hasRPCPrefix(v, cfg.RPCMethodPrefixes) {
					// Non-constant or out-of-namespace method expressions
					// (tests invent ad-hoc methods) are out of scope.
					return true
				}
				if !named {
					report(pkg, pos, fmt.Sprintf("uses raw method string %q; name the protocol constant so the namespace stays greppable", v))
				}
				m := get(v)
				if isReg {
					m.registered = append(m.registered, pos)
				}
				if isInv {
					m.invoked = append(m.invoked, pos)
					if matchesSpecs(pkg.Info, call, cfg.RPCTwoWay) && mutatingByPkg[pkg] {
						m.twoWay = append(m.twoWay, pos)
					}
				}
				return true
			})
		}
	}

	// Pass 3: cross-checks, reported at the constant's declaration.
	keys := make([]string, 0, len(methods))
	for v := range methods {
		keys = append(keys, v)
	}
	sort.Strings(keys)
	for _, v := range keys {
		m := methods[v]
		if !m.hasConst {
			continue // raw-string uses already reported in place
		}
		pkg := pkgForPosition(prog, m.constPos)
		if pkg == nil {
			continue
		}
		switch {
		case len(m.registered) == 0:
			report(pkg, m.constPos, fmt.Sprintf("method %q has no registered handler; a call to it fails at every site", v))
		case len(m.registered) > 1:
			report(pkg, m.constPos, fmt.Sprintf("method %q is registered %d times; the last registration silently wins", v, len(m.registered)))
		}
		if len(m.invoked) == 0 {
			report(pkg, m.constPos, fmt.Sprintf("method %q is never invoked through a protocol wrapper; dead protocol surface", v))
		}
		if len(m.twoWay) > 0 && !m.mutating && !contains(cfg.RPCIdempotent, v) {
			report(pkg, m.constPos, fmt.Sprintf("two-way method %q is neither in the dedup set nor declared idempotent; a retry replays its effect", v))
		}
		if m.mutating && len(m.registered) == 0 {
			report(pkg, m.constPos, fmt.Sprintf("dedup set lists %q but no handler is registered for it", v))
		}
	}
	return out
}

func hasRPCPrefix(v string, prefixes []string) bool {
	for _, p := range prefixes {
		if len(v) > len(p) && v[:len(p)] == p {
			return true
		}
	}
	return false
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}

// matchesSpecs reports whether the call resolves to any of the specs.
func matchesSpecs(info *types.Info, call *ast.CallExpr, specs []MethodSpec) bool {
	_, ok := matchMustCheck(info, call, specs)
	return ok
}

// methodStringArg returns the call's first argument of type string —
// the method name in every transport and wrapper signature.
func methodStringArg(pkg *Package, call *ast.CallExpr) ast.Expr {
	for _, arg := range call.Args {
		t := pkg.Info.TypeOf(arg)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			return arg
		}
	}
	return nil
}

// stringConstValue evaluates a constant string expression and reports
// whether it is spelled as a named constant reference.
func stringConstValue(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	v := constant.StringVal(tv.Value)
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, isConst := pkg.Info.Uses[x].(*types.Const)
		return v, isConst
	case *ast.SelectorExpr:
		_, isConst := pkg.Info.Uses[x.Sel].(*types.Const)
		return v, isConst
	}
	return v, false
}

// pkgForPosition finds the target package owning a file position.
func pkgForPosition(prog *Program, pos token.Position) *Package {
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			if prog.Fset.Position(f.Pos()).Filename == pos.Filename {
				return pkg
			}
		}
	}
	return nil
}
