package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicCounterAnalyzer enforces all-or-nothing atomicity per field: a
// struct field accessed through sync/atomic anywhere must be accessed
// that way everywhere, transitively through helpers the field's
// address is forwarded to.
//
// Mixing `atomic.AddInt64(&s.n, 1)` on one path with a plain `s.n++`
// (or a bare read in a log line) on another is a data race the race
// detector only catches when both paths run in one test. Here the
// interprocedural tier makes the check transitive: the per-parameter
// atomicParams summary (summary.go) marks helper parameters whose
// pointee is atomically accessed, so `&s.n` handed to such a helper is
// a sanctioned atomic site, while the same address handed to an
// unclassified function — or any direct selector use — is flagged.
//
// Fields typed as sync/atomic values (atomic.Int64 and friends) are
// exempt by construction: their only access path is already atomic.
func AtomicCounterAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "atomiccounter",
		Doc:  "flag plain accesses to fields that are accessed atomically elsewhere",
		Run:  runAtomicCounter,
	}
}

func runAtomicCounter(prog *Program, cfg *Config) []Finding {
	if len(cfg.AtomicPackages) == 0 {
		return nil
	}
	sum := cfg.summariesFor(prog)

	// Pass 1: find the atomically-accessed fields and remember each
	// sanctioned selector node (the x.f under &x.f at an atomic site).
	atomicAt := make(map[*types.Var]token.Position)
	sanctioned := make(map[ast.Node]bool)
	mark := func(pkg *Package, arg ast.Expr) {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return
		}
		sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			return
		}
		f := fieldOf(pkg, sel)
		if f == nil {
			return
		}
		if _, seen := atomicAt[f]; !seen {
			atomicAt[f] = prog.Fset.Position(un.Pos())
		}
		sanctioned[sel] = true
	}
	forEachScoped(prog, cfg.AtomicPackages, func(pkg *Package, file *ast.File) {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isAtomicCall(pkg.Info, call) {
				for _, arg := range call.Args {
					mark(pkg, arg)
				}
				return true
			}
			callee := funcFor(pkg.Info, call)
			if callee == nil {
				return true
			}
			for _, target := range sum.graph.resolveTargets(callee) {
				ap := sum.atomicParams[target]
				for j, arg := range call.Args {
					if ap[j] {
						mark(pkg, arg)
					}
				}
			}
			return true
		})
	})
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: every other selector use of an atomic field is a plain —
	// racing — access.
	var out []Finding
	forEachScoped(prog, cfg.AtomicPackages, func(pkg *Package, file *ast.File) {
		sup := suppressionsFor(prog, pkg, cfg)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			f := fieldOf(pkg, sel)
			if f == nil {
				return true
			}
			at, isAtomic := atomicAt[f]
			if !isAtomic {
				return true
			}
			pos := prog.Fset.Position(sel.Pos())
			if sup.allowed(pos, "atomiccounter") {
				return true
			}
			out = append(out, Finding{
				Pos:      pos,
				Analyzer: "atomiccounter",
				Message: fmt.Sprintf("field %s is accessed atomically at %s:%d but plainly here; a field atomic anywhere must be atomic everywhere",
					f.Name(), at.Filename, at.Line),
			})
			return true
		})
	})
	return out
}

// forEachScoped visits every file of every target package matching the
// scope suffixes.
func forEachScoped(prog *Program, scope []string, visit func(pkg *Package, file *ast.File)) {
	for _, pkg := range prog.Targets {
		if !pkgInScope(pkg, scope) {
			continue
		}
		for _, file := range pkg.Files {
			visit(pkg, file)
		}
	}
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}
