package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// forbiddenTimeFuncs are the wall-clock entry points protocol packages
// must not reach for. time.After and time.Tick additionally anchor
// real-time scheduling that the simulation can't account for.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "use the netsim simulated clock (Network.Clock) instead",
	"Sleep":     "use simclock.Clock.Backoff or charge simulated cost instead",
	"After":     "real-time timers desynchronize the simulated cost model",
	"Tick":      "real-time tickers desynchronize the simulated cost model",
	"NewTicker": "real-time tickers desynchronize the simulated cost model",
	"NewTimer":  "real-time timers desynchronize the simulated cost model",
}

// SimClockAnalyzer forbids wall-clock time in protocol packages.
//
// The LOCUS reproduction measures protocol cost in simulated
// microseconds charged per message and disk access ([GOLD83]-style cost
// accounting). A wall-clock read in a protocol package either leaks
// host timing into deterministic partition/merge tests or silently
// diverges from the counted cost model. internal/simclock is the one
// sanctioned bridge to real sleeping, and it is audited separately.
func SimClockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "simclock",
		Doc:  "forbid wall-clock time.Now/Sleep/After/Tick/NewTicker/NewTimer in protocol packages",
		Run:  runSimClock,
	}
}

func runSimClock(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range prog.Targets {
		if !suffixMatchesAny(pkg.Path, cfg.ProtocolPackages) {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				reason, bad := forbiddenTimeFuncs[sel.Sel.Name]
				if !bad {
					return true
				}
				ident, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[ident].(*types.PkgName)
				if !ok || pn.Imported().Path() != "time" {
					return true
				}
				pos := prog.Fset.Position(sel.Pos())
				if sup.allowed(pos, "simclock") {
					return true
				}
				out = append(out, Finding{
					Pos:      pos,
					Analyzer: "simclock",
					Message: fmt.Sprintf("wall-clock time.%s in protocol package %s: %s",
						sel.Sel.Name, pkg.Types.Name(), reason),
				})
				return true
			})
		}
	}
	return out
}

func suffixMatchesAny(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if hasPathSuffix(path, s) {
			return true
		}
	}
	return false
}
