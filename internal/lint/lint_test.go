package lint

import (
	"errors"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture packages under testdata/src seed one deliberate violation
// per `// want "regexp"` comment. They are loaded as extra targets on
// top of the real module so analyzer behavior is tested against the
// same whole-program view locus-vet uses.
var fixtureLeaves = []string{
	"simclock_f", "unchecked_f", "lockorder_f", "panic_f", "rawcall_f",
	"pageleak_f", "inodealias_f", "gojoin_f", "rpcconsist_f", "blockinglock_f",
	"maporder_f", "sentinelerr_f", "vvmutation_f", "atomiccounter_f",
	"staleallow_f",
}

var (
	progOnce sync.Once
	prog     *Program
	progErr  error
)

// sharedProgram loads the module plus all fixtures exactly once; the
// source type-check is the expensive part of every test here.
func sharedProgram(t *testing.T) *Program {
	t.Helper()
	progOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			progErr = err
			return
		}
		module, err := modulePath(root)
		if err != nil {
			progErr = err
			return
		}
		var extras []string
		for _, leaf := range fixtureLeaves {
			extras = append(extras, module+"/internal/lint/testdata/src/"+leaf)
		}
		prog, progErr = LoadAll(root, extras)
	})
	if progErr != nil {
		t.Fatalf("loading program: %v", progErr)
	}
	return prog
}

func fixturePkg(t *testing.T, p *Program, leaf string) *Package {
	t.Helper()
	for path, pkg := range p.ByPath {
		if strings.HasSuffix(path, "/testdata/src/"+leaf) {
			return pkg
		}
	}
	t.Fatalf("fixture package %s not loaded", leaf)
	return nil
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRe = regexp.MustCompile(`//\s*want "([^"]+)"`)

// wantsIn collects the `// want` expectations of a fixture package.
func wantsIn(t *testing.T, p *Program, pkg *Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := p.Fset.Position(c.Pos())
				out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// checkFixture runs one analyzer with a fixture config and diffs its
// findings in the fixture package against the `// want` expectations.
func checkFixture(t *testing.T, analyzer *Analyzer, cfg *Config, leaf string) {
	t.Helper()
	p := sharedProgram(t)
	pkg := fixturePkg(t, p, leaf)
	wants := wantsIn(t, p, pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", leaf)
	}
	for _, f := range analyzer.Run(p, cfg) {
		if filepath.Dir(f.Pos.Filename) != pkg.Dir {
			continue // findings outside the fixture are other tests' business
		}
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestSimClockFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{ProtocolPackages: []string{"simclock_f"}}
	checkFixture(t, SimClockAnalyzer(), cfg, "simclock_f")
}

func TestUncheckedCallFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{MustCheck: []MethodSpec{
		{PkgSuffix: "unchecked_f", Recv: "Conn", Name: "Call"},
		{PkgSuffix: "unchecked_f", Recv: "Conn", Name: "Cast"},
	}}
	checkFixture(t, UncheckedCallAnalyzer(), cfg, "unchecked_f")
}

func TestLockOrderFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{LockHierarchy: []LockClass{
		{PkgSuffix: "lockorder_f", Type: "Outer"},
		{PkgSuffix: "lockorder_f", Type: "Middle"},
		{PkgSuffix: "lockorder_f", Type: "Inner"},
	}}
	checkFixture(t, LockOrderAnalyzer(), cfg, "lockorder_f")
}

func TestRawCallFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		RawCallWrapped: []string{"rawcall_f"},
		RawCallTransport: []MethodSpec{
			{PkgSuffix: "rawcall_f", Recv: "Node", Name: "Call"},
			{PkgSuffix: "rawcall_f", Recv: "Node", Name: "CallSeq"},
			{PkgSuffix: "rawcall_f", Recv: "Node", Name: "Cast"},
		},
	}
	checkFixture(t, RawCallAnalyzer(), cfg, "rawcall_f")
}

func TestPanicDisciplineFixture(t *testing.T) {
	t.Parallel()
	checkFixture(t, PanicDisciplineAnalyzer(), DefaultConfig(), "panic_f")
}

func TestPageLeakFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		PageAlloc: []MethodSpec{
			{PkgSuffix: "pageleak_f", Recv: "Container", Name: "WritePage"},
			{PkgSuffix: "pageleak_f", Recv: "Container", Name: "AllocInode"},
		},
		FreshFuncs: []string{"Clone"},
	}
	checkFixture(t, PageLeakAnalyzer(), cfg, "pageleak_f")
}

func TestInodeAliasFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		AliasTypes:        []TypeSpec{{PkgSuffix: "inodealias_f", Type: "Inode"}},
		AliasCloneMethods: []string{"Clone"},
		AliasPackages:     []string{"inodealias_f"},
	}
	checkFixture(t, InodeAliasAnalyzer(), cfg, "inodealias_f")
}

func TestGoroutineJoinFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		GoJoinPackages: []string{"gojoin_f"},
		JoinFields:     []string{"active"},
	}
	checkFixture(t, GoroutineJoinAnalyzer(), cfg, "gojoin_f")
}

func TestRPCConsistencyFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		RPCMethodPrefixes: []string{"rpx."},
		RPCRegister:       []MethodSpec{{PkgSuffix: "rpcconsist_f", Recv: "Node", Name: "Handle"}},
		RPCInvoke: []MethodSpec{
			{PkgSuffix: "rpcconsist_f", Recv: "Conn", Name: "Call"},
			{PkgSuffix: "rpcconsist_f", Recv: "Conn", Name: "Cast"},
		},
		RPCTwoWay:      []MethodSpec{{PkgSuffix: "rpcconsist_f", Recv: "Conn", Name: "Call"}},
		RPCMutatingVar: "mutating",
		RPCIdempotent:  []string{"rpx.ping"},
	}
	checkFixture(t, RPCConsistencyAnalyzer(), cfg, "rpcconsist_f")
}

func TestBlockingLockFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		BlockingCalls: []MethodSpec{{PkgSuffix: "blockinglock_f", Recv: "Node", Name: "Call"}},
		BlockingGuard: []LockClass{{PkgSuffix: "blockinglock_f", Type: "Kernel"}},
	}
	checkFixture(t, BlockingLockAnalyzer(), cfg, "blockinglock_f")
}

func TestMapOrderFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		MapOrderPackages: []string{"maporder_f"},
		OrderEffects: []MethodSpec{
			{PkgSuffix: "maporder_f", Recv: "Node", Name: "Call"},
			{PkgSuffix: "maporder_f", Recv: "Node", Name: "Cast"},
		},
	}
	checkFixture(t, MapOrderAnalyzer(), cfg, "maporder_f")
}

func TestSentinelErrFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{
		SentinelAPIPackages: []string{"sentinelerr_f"},
		SentinelVars:        []VarSpec{{PkgSuffix: "sentinelerr_f", Name: "ErrGone"}},
		SentinelFunnels:     []MethodSpec{{PkgSuffix: "sentinelerr_f", Name: "wrapErr"}},
	}
	checkFixture(t, SentinelErrAnalyzer(), cfg, "sentinelerr_f")
}

func TestVVMutationFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{VVTypes: []TypeSpec{{PkgSuffix: "vvmutation_f", Type: "VV"}}}
	checkFixture(t, VVMutationAnalyzer(), cfg, "vvmutation_f")
}

func TestAtomicCounterFixture(t *testing.T) {
	t.Parallel()
	cfg := &Config{AtomicPackages: []string{"atomiccounter_f"}}
	checkFixture(t, AtomicCounterAnalyzer(), cfg, "atomiccounter_f")
}

// TestSummaryCacheIsShared pins the summary engine's caching contract:
// the analyzers that compose interprocedural facts share one table per
// Config — one build, the rest hits.
func TestSummaryCacheIsShared(t *testing.T) {
	t.Parallel()
	p := sharedProgram(t)
	cfg := DefaultConfig()
	for _, a := range []*Analyzer{MapOrderAnalyzer(), SentinelErrAnalyzer(), AtomicCounterAnalyzer()} {
		a.Run(p, cfg)
	}
	builds, hits := cfg.SummaryCacheStats()
	if builds != 1 {
		t.Errorf("summary table built %d times for one Config, want 1", builds)
	}
	if hits != 2 {
		t.Errorf("summary cache hits = %d, want 2", hits)
	}
}

// TestRepositoryIsClean is the lint gate inside the test suite: the
// production configuration must report nothing on the real module, so
// `go test ./...` alone catches regressions even when locus-vet is not
// run directly.
func TestRepositoryIsClean(t *testing.T) {
	t.Parallel()
	p := sharedProgram(t)
	testdata := string(filepath.Separator) + "testdata" + string(filepath.Separator)
	cfg := DefaultConfig()
	for _, f := range Run(p, cfg, Analyzers()) {
		if strings.Contains(f.Pos.Filename, testdata) {
			continue
		}
		t.Errorf("repository not lint-clean: %s", f)
	}
	// Every allow directive in production code must carry a reason; an
	// unaudited suppression is itself a finding.
	for _, f := range AllowPolicyFindings(p) {
		if strings.Contains(f.Pos.Filename, testdata) {
			continue
		}
		t.Errorf("unauditable allow directive: %s", f)
	}
	// ...and must suppress a live finding: a directive nothing hides is
	// obsolete or mislocated (staleallow). Fixture directives fire only
	// under their fixture configs, so testdata is excluded here too.
	for _, f := range StaleAllowFindings(p, cfg) {
		if strings.Contains(f.Pos.Filename, testdata) {
			continue
		}
		t.Errorf("stale allow directive: %s", f)
	}
}

// TestStaleAllowAudit is the staleallow fixture test: after running the
// analyzer its directives name, the directive that suppressed a real
// finding stays quiet and the one that suppressed nothing is reported.
func TestStaleAllowAudit(t *testing.T) {
	t.Parallel()
	p := sharedProgram(t)
	pkg := fixturePkg(t, p, "staleallow_f")
	cfg := &Config{VVTypes: []TypeSpec{{PkgSuffix: "staleallow_f", Type: "VV"}}}
	if fs := VVMutationAnalyzer().Run(p, cfg); len(fs) != 0 {
		for _, f := range fs {
			if filepath.Dir(f.Pos.Filename) == pkg.Dir {
				t.Errorf("fixture's live directive did not suppress: %s", f)
			}
		}
	}
	var inFixture []Finding
	for _, f := range StaleAllowFindings(p, cfg) {
		if filepath.Dir(f.Pos.Filename) == pkg.Dir {
			inFixture = append(inFixture, f)
		}
	}
	if len(inFixture) != 1 {
		t.Fatalf("stale-allow audit reported %d directives in the fixture, want exactly 1: %v", len(inFixture), inFixture)
	}
	got := inFixture[0]
	if got.Analyzer != "staleallow" || !strings.Contains(got.Message, "suppresses no finding") {
		t.Errorf("unexpected stale-allow finding: %s", got)
	}
	// The flagged directive is the one whose reason says so.
	for _, a := range CollectAllows(p) {
		if a.Pos.Filename == got.Pos.Filename && a.Pos.Line == got.Pos.Line {
			if !strings.Contains(a.Reason, "suppresses nothing") {
				t.Errorf("audit flagged the wrong directive: %s (reason %q)", got, a.Reason)
			}
			return
		}
	}
	t.Errorf("stale-allow finding at %s does not sit on a directive line", got.Pos)
}

// TestLegacyNolintIsPolicyFinding pins the retirement of the
// grandfather clause: every surviving `//nolint:errcheck` comment is a
// vet-allow policy finding directing the author to the audited
// spelling, and none survive outside the lint fixtures.
func TestLegacyNolintIsPolicyFinding(t *testing.T) {
	t.Parallel()
	p := sharedProgram(t)
	testdata := string(filepath.Separator) + "testdata" + string(filepath.Separator)
	found := false
	for _, f := range AllowPolicyFindings(p) {
		if !strings.Contains(f.Message, "nolint:errcheck") {
			continue
		}
		if !strings.Contains(f.Pos.Filename, testdata) {
			t.Errorf("legacy //nolint:errcheck directive in production code: %s", f)
			continue
		}
		if strings.HasSuffix(f.Pos.Filename, "unchecked_f.go") {
			found = true
			if !strings.Contains(f.Message, "migrate to `//locus:vet-allow uncheckedcall <reason>`") {
				t.Errorf("legacy finding does not point at the migration path: %s", f)
			}
		}
	}
	if !found {
		t.Error("the unchecked_f fixture's //nolint:errcheck line produced no policy finding; the grandfather clause is back")
	}
}

// TestLoadSurfacesTypeErrors exercises the load-failure path: a package
// that fails to type-check must produce a structured LoadError naming
// the package and its first error, never a silent skip.
func TestLoadSurfacesTypeErrors(t *testing.T) {
	t.Parallel()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	module, err := modulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	brokenPath := module + "/internal/lint/testdata/src/broken_f"
	_, err = LoadAll(root, []string{brokenPath})
	if err == nil {
		t.Fatal("LoadAll succeeded with a package that cannot type-check")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("LoadAll error is %T, want *LoadError: %v", err, err)
	}
	if len(le.Packages) != 1 {
		t.Fatalf("LoadError lists %d packages, want 1: %+v", len(le.Packages), le.Packages)
	}
	pe := le.Packages[0]
	if pe.Path != brokenPath {
		t.Errorf("failure path = %q, want %q", pe.Path, brokenPath)
	}
	if !strings.Contains(pe.Err, "undefinedIdentifier") {
		t.Errorf("failure error %q does not mention the undefined identifier", pe.Err)
	}
}

// TestLoadErrorAggregatesAllBrokenPackages pins the multi-package
// aggregation contract: with several broken targets, the loader
// attempts every one and the LoadError lists each with its own first
// error — one broken package must not mask another.
func TestLoadErrorAggregatesAllBrokenPackages(t *testing.T) {
	t.Parallel()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	module, err := modulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	broken := module + "/internal/lint/testdata/src/broken_f"
	broken2 := module + "/internal/lint/testdata/src/broken2_f"
	_, err = LoadAll(root, []string{broken, broken2})
	if err == nil {
		t.Fatal("LoadAll succeeded with two packages that cannot type-check")
	}
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("LoadAll error is %T, want *LoadError: %v", err, err)
	}
	if len(le.Packages) != 2 {
		t.Fatalf("LoadError lists %d packages, want 2: %+v", len(le.Packages), le.Packages)
	}
	wantErrs := map[string]string{
		broken:  "undefinedIdentifier",
		broken2: "anotherMissingName",
	}
	for _, pe := range le.Packages {
		ident, ok := wantErrs[pe.Path]
		if !ok {
			t.Errorf("unexpected package in LoadError: %+v", pe)
			continue
		}
		if !strings.Contains(pe.Err, ident) {
			t.Errorf("%s reported %q, want mention of %q", pe.Path, pe.Err, ident)
		}
		delete(wantErrs, pe.Path)
	}
	for path := range wantErrs {
		t.Errorf("broken package %s missing from LoadError", path)
	}
	if !strings.Contains(le.Error(), "2 packages") {
		t.Errorf("LoadError summary %q does not state the aggregate count", le.Error())
	}
}

func TestLoadAllCoversModule(t *testing.T) {
	t.Parallel()
	p := sharedProgram(t)
	for _, pkgPath := range []string{"internal/netsim", "internal/fs", "internal/storage"} {
		found := false
		for _, tgt := range p.Targets {
			if hasPathSuffix(tgt.Path, pkgPath) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected %s among analysis targets", pkgPath)
		}
	}
}
