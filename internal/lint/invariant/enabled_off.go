//go:build !locusinvariants

package invariant

// Enabled reports whether runtime invariant assertions are compiled in.
const Enabled = false
