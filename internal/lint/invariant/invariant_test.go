package invariant

import "testing"

// TestAssertf exercises both build flavors: with the locusinvariants
// tag a violated assertion must panic; without it Assertf must be a
// no-op even for false conditions.
func TestAssertf(t *testing.T) {
	t.Parallel()
	Assertf(true, "true condition must never fire (enabled=%v)", Enabled)

	defer func() {
		r := recover()
		if Enabled && r == nil {
			t.Fatalf("assertions enabled but violated Assertf did not panic")
		}
		if !Enabled && r != nil {
			t.Fatalf("assertions disabled but Assertf panicked: %v", r)
		}
	}()
	Assertf(false, "seeded violation %d", 42)
}
