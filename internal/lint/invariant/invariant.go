// Package invariant is the build-tag-gated runtime assertion layer for
// the LOCUS simulation substrate.
//
// The protocol packages rest on invariants the paper states but the
// code can only enforce by convention: version vectors only move
// forward along propagation (§4.2), a commit installs a version that
// strictly dominates the one it replaces (§2.3.6), a committed inode
// references only allocated pages, and a shadow page is never freed
// while a committed inode still points at it. Violations of these are
// bugs, not environmental failures — so they are asserted, not
// returned as errors.
//
// Assertions compile to nothing by default. Building with
//
//	go build -tags locusinvariants ./...
//	go test  -tags locusinvariants ./...
//
// turns them on: Enabled becomes true and Assertf panics on a violated
// condition. Expensive checks (anything that scans a table) must be
// guarded by `if invariant.Enabled { ... }` at the call site so the
// compiler removes them entirely from untagged builds.
//
// This package is the one place in the repository where the
// panicdiscipline analyzer (internal/lint) permits unconditional
// panics: an assertion failure means in-memory state no longer
// satisfies the protocol's correctness conditions, and continuing
// would corrupt durable state.
package invariant

import "fmt"

// Assertf panics with a formatted message if cond is false and the
// locusinvariants build tag is set. Without the tag it compiles to a
// no-op (Enabled is a false constant, so the branch is eliminated).
func Assertf(cond bool, format string, args ...any) {
	if Enabled && !cond {
		panic("invariant violation: " + fmt.Sprintf(format, args...))
	}
}
