package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// BlockingLockAnalyzer forbids blocking on concurrent progress while
// holding one of the BlockingGuard mutexes.
//
// A network exchange (Node.Call and the retrying wrappers above it) or
// a simulated-clock Backoff parks the caller until some other
// goroutine makes progress — and on a loaded site that other goroutine
// is frequently the handler that needs the very mutex the caller is
// holding. That is the self-deadlock shape lockvalid.go works around
// at runtime by carefully releasing k.mu before probing; this analyzer
// makes the discipline static: no path may reach a blocking primitive,
// directly or through any statically resolvable callee, while a guard
// class mutex is held.
//
// Call effects are the fixpoint of the call graph (callsummary.go):
// a function "may block" if it calls a BlockingCalls primitive or any
// function that transitively does. The per-body walk mirrors
// lockorder's held-set pass, including its sticky treatment of
// deferred Unlocks. Function literals are separate roots with an empty
// held-set (they run as goroutines).
func BlockingLockAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "blockinglock",
		Doc:  "no simulated-clock wait or network exchange while holding a guard mutex",
		Run:  runBlockingLock,
	}
}

func runBlockingLock(prog *Program, cfg *Config) []Finding {
	if len(cfg.BlockingCalls) == 0 || len(cfg.BlockingGuard) == 0 {
		return nil
	}
	// mayBlock: single-bit summary closed over the call graph.
	mayBlock := make(map[*types.Func]map[int]bool)
	graph := buildCallGraph(prog, func(pkg *Package, fn *types.Func, call *ast.CallExpr) bool {
		if _, ok := matchMustCheck(pkg.Info, call, cfg.BlockingCalls); ok {
			if mayBlock[fn] == nil {
				mayBlock[fn] = make(map[int]bool)
			}
			mayBlock[fn][0] = true
		}
		return false // still record the callee for transitive effects
	})
	graph.fixpointSets(mayBlock)

	var out []Finding
	sups := make(map[*Package]*suppressions)
	for _, fb := range graph.bodies {
		sup := sups[fb.pkg]
		if sup == nil {
			sup = suppressionsFor(prog, fb.pkg, cfg)
			sups[fb.pkg] = sup
		}
		pkg, fset := fb.pkg, prog.Fset
		held := make(map[int]token.Pos)
		sticky := make(map[int]bool)
		ast.Inspect(fb.body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				if class, op, ok := lockOpOn(pkg, st.Call, cfg.BlockingGuard); ok && (op == "Unlock" || op == "RUnlock") {
					sticky[class] = true
				}
				return false
			case *ast.CallExpr:
				if class, op, ok := lockOpOn(pkg, st, cfg.BlockingGuard); ok {
					switch op {
					case "Lock", "RLock":
						held[class] = st.Pos()
					case "Unlock", "RUnlock":
						if !sticky[class] {
							delete(held, class)
						}
					}
					return true
				}
				if len(held) == 0 {
					return true
				}
				direct := false
				if _, ok := matchMustCheck(pkg.Info, st, cfg.BlockingCalls); ok {
					direct = true
				}
				transitive := false
				if !direct {
					if callee := funcFor(pkg.Info, st); callee != nil {
						for _, target := range graph.resolveTargets(callee) {
							if mayBlock[target][0] {
								transitive = true
								break
							}
						}
					}
				}
				if !direct && !transitive {
					return true
				}
				for class, hpos := range held {
					pos := fset.Position(st.Pos())
					if sup.allowed(pos, "blockinglock") {
						continue
					}
					verb := "blocks on concurrent progress"
					if transitive {
						verb = "may transitively block on concurrent progress"
					}
					out = append(out, Finding{
						Pos:      pos,
						Analyzer: "blockinglock",
						Message: fmt.Sprintf("%s while holding %s (acquired at %s); the unblocking handler may need that mutex",
							verb, cfg.BlockingGuard[class].String(), fset.Position(hpos)),
					})
				}
				return true
			}
			return true
		})
	}
	return out
}
