package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// InodeAliasAnalyzer enforces the Clone-at-the-boundary discipline for
// shared metadata pointers.
//
// The simulated network passes message payloads by pointer, so an
// *storage.Inode pulled out of an RPC response aliases the sender's
// copy — often a pointer straight into the remote kernel's in-core
// state. Mutating it, or forwarding it into another response where a
// third site will mutate it, silently corrupts replica state that no
// version vector records (the bug class behind the defensive Clone in
// handlePullOpen). The rule: a decoded alias may be read, but must be
// Cloned before it is mutated or before it escapes into another
// message, a return value, long-lived structure, or goroutine.
//
// A value is tainted when it is produced by a field read off a type
// assertion (`resp.(*pullOpenResp).Ino`) yielding an AliasTypes
// pointer. Taint is tracked through local identifiers with the forward
// may-analysis on the CFG; reassigning the identifier from a Clone (or
// any other call) kills the taint. Findings fire on:
//
//   - mutation through the alias (store into a field or element),
//   - escape: returned, placed in a composite literal, stored into a
//     non-local structure, sent on a channel, or referenced from a `go`
//     statement.
//
// Plain call arguments, field reads, and captures by synchronously
// invoked helper closures are not escapes: handlers legitimately read
// decoded metadata in place.
func InodeAliasAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "inodealias",
		Doc:  "Clone RPC-decoded inode pointers before mutating them or passing them on",
		Run:  runInodeAlias,
	}
}

type inodeAlias struct {
	prog *Program
	cfg  *Config
	pkg  *Package
	sup  *suppressions

	bodyPos, bodyEnd token.Pos
	findings         []Finding
	// reported dedups findings per position.
	reported map[string]bool
}

// decodeRootFact marks an identifier bound to a type-asserted message
// (`r := resp.(*ssOpenResp)`); alias-typed field reads off it are
// taint sources just like the inline `resp.(*T).Ino` shape.
type decodeRootFact struct{ obj types.Object }

func runInodeAlias(prog *Program, cfg *Config) []Finding {
	var out []Finding
	for _, pkg := range prog.Targets {
		if !pkgInScope(pkg, cfg.AliasPackages) {
			continue
		}
		sup := suppressionsFor(prog, pkg, cfg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				out = append(out, analyzeInodeAliasBody(prog, cfg, pkg, sup, fn.Body)...)
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						out = append(out, analyzeInodeAliasBody(prog, cfg, pkg, sup, lit.Body)...)
					}
					return true
				})
			}
		}
	}
	return out
}

func analyzeInodeAliasBody(prog *Program, cfg *Config, pkg *Package, sup *suppressions, body *ast.BlockStmt) []Finding {
	a := &inodeAlias{
		prog:     prog,
		cfg:      cfg,
		pkg:      pkg,
		sup:      sup,
		bodyPos:  body.Pos(),
		bodyEnd:  body.End(),
		reported: make(map[string]bool),
	}
	g := buildCFG(body, nil)
	in := g.forwardMay(a.transfer, nil)
	// transfer records findings as a side effect; forwardMay visits every
	// reachable block at least once, and `reported` dedups revisits.
	_ = in
	return a.findings
}

// transfer both propagates taint facts (keys are types.Object) and
// reports misuse of live taints and of direct taint-source expressions.
func (a *inodeAlias) transfer(b *cfgBlock, in factSet) factSet {
	out := in.clone()
	for _, atom := range b.atoms {
		a.checkAtom(atom, out)
		a.updateAtom(atom, out)
	}
	return out
}

// updateAtom gens and kills taint facts.
func (a *inodeAlias) updateAtom(atom ast.Node, out factSet) {
	as, ok := atom.(*ast.AssignStmt)
	if !ok {
		return
	}
	for i, lhs := range as.Lhs {
		obj := a.identObj(lhs)
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 && i == 0 {
			rhs = as.Rhs[0] // x, ok := m[k] / v, err := call()
		}
		if rhs == nil {
			continue
		}
		switch {
		case a.taintSource(rhs, out):
			out[factKey(obj)] = true
			delete(out, factKey(decodeRootFact{obj}))
		case a.taintedExpr(rhs, out):
			// Alias of an alias: x := ino.
			out[factKey(obj)] = true
			delete(out, factKey(decodeRootFact{obj}))
		case a.decodeSource(rhs):
			// r := resp.(*ssOpenResp): r roots future decode reads.
			out[factKey(decodeRootFact{obj})] = true
			delete(out, factKey(obj))
		default:
			// Reassigned from anything else (Clone, fresh fetch, nil):
			// the identifier no longer aliases the decode.
			delete(out, factKey(obj))
			delete(out, factKey(decodeRootFact{obj}))
		}
	}
}

// decodeSource recognizes a type assertion binding (`resp.(*T)`).
func (a *inodeAlias) decodeSource(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.TypeAssertExpr)
	return ok
}

// checkAtom reports mutation/escape of tainted values within one atom.
func (a *inodeAlias) checkAtom(atom ast.Node, facts factSet) {
	switch st := atom.(type) {
	case *ast.AssignStmt:
		for i, lhs := range st.Lhs {
			// Mutation through the alias: ino.F = v, ino.Pages[i] = v.
			if !isPlainIdent(lhs) {
				root := exprRoot(lhs)
				if a.taintedExpr(root, facts) || a.mutatesThroughSource(lhs, facts) {
					a.report(lhs.Pos(), "mutates an RPC-decoded %s without Clone; the sender's copy is aliased")
				}
			}
			// Escape by storing a taint into a foreign structure.
			var rhs ast.Expr
			if len(st.Rhs) == len(st.Lhs) {
				rhs = st.Rhs[i]
			} else if len(st.Rhs) == 1 {
				rhs = st.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			if isPlainIdent(lhs) {
				continue // pure aliasing, tracked by updateAtom
			}
			rootObj := a.identObj(exprRoot(lhs))
			local := rootObj != nil && a.isLocal(rootObj)
			if !local && (a.escapingTaint(rhs, facts)) {
				a.report(rhs.Pos(), "stores an RPC-decoded %s into shared state without Clone")
			}
		}
		for _, rhs := range st.Rhs {
			a.checkCompositeEscape(rhs, facts)
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if a.escapingTaint(r, facts) {
				a.report(r.Pos(), "returns an RPC-decoded %s without Clone; the callee and sender now share it")
			}
			a.checkCompositeEscape(r, facts)
		}
	case *ast.SendStmt:
		if a.escapingTaint(st.Value, facts) {
			a.report(st.Value.Pos(), "sends an RPC-decoded %s without Clone")
		}
		a.checkCompositeEscape(st.Value, facts)
	case *ast.GoStmt:
		if a.mentionsTaint(st, facts) {
			a.report(st.Pos(), "shares an RPC-decoded %s with a goroutine without Clone")
		}
	case *ast.ExprStmt:
		a.checkCompositeEscape(st.X, facts)
	case ast.Expr:
		a.checkCompositeEscape(st, facts)
	}
}

// escapingTaint reports whether e is itself a tainted value: a tainted
// identifier or a direct taint-source expression (not a Clone of one).
func (a *inodeAlias) escapingTaint(e ast.Expr, facts factSet) bool {
	e = ast.Unparen(e)
	if obj := a.identObj(e); obj != nil {
		return facts[factKey(obj)]
	}
	return a.taintSource(e, facts)
}

// mutatesThroughSource reports whether an assignment target dereferences
// an alias-typed taint-source subexpression (resp.(*T).Ino.Size = v or
// r.Ino.Pages[i] = v for a decode root r).
func (a *inodeAlias) mutatesThroughSource(lhs ast.Expr, facts factSet) bool {
	found := false
	ast.Inspect(lhs, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && a.taintSource(e, facts) {
			found = true
		}
		return !found
	})
	return found
}

// checkCompositeEscape flags tainted values used as composite-literal
// elements — the `&openResp{Ino: r.Ino}` shape that forwards a decoded
// pointer into the next response.
func (a *inodeAlias) checkCompositeEscape(e ast.Expr, facts factSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A synchronously invoked helper closure may read captured
			// taints; concurrent sharing is caught at the go statement.
			return false
		}
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if a.escapingTaint(v, facts) {
				a.report(v.Pos(), "forwards an RPC-decoded %s into a composite literal without Clone")
			}
		}
		return true
	})
}

// taintSource recognizes the decode shape: a field selection producing
// an AliasTypes pointer whose base involves a type assertion — inline
// (`resp.(*T).Ino`) or through a decode-root identifier
// (`r := resp.(*T); ... r.Ino`).
func (a *inodeAlias) taintSource(e ast.Expr, facts factSet) bool {
	e = ast.Unparen(e)
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := a.pkg.Info.TypeOf(sel)
	if t == nil || !a.aliasType(t) {
		return false
	}
	if obj := a.identObj(sel.X); obj != nil && facts[factKey(decodeRootFact{obj})] {
		return true
	}
	hasAssert := false
	ast.Inspect(sel.X, func(n ast.Node) bool {
		if _, ok := n.(*ast.TypeAssertExpr); ok {
			hasAssert = true
			return false
		}
		return true
	})
	return hasAssert
}

func (a *inodeAlias) aliasType(t types.Type) bool {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	for _, spec := range a.cfg.AliasTypes {
		if typeMatches(ptr.Elem(), spec.PkgSuffix, spec.Type) {
			return true
		}
	}
	return false
}

// taintedExpr reports whether e is a tainted identifier.
func (a *inodeAlias) taintedExpr(e ast.Expr, facts factSet) bool {
	obj := a.identObj(e)
	return obj != nil && facts[factKey(obj)]
}

func (a *inodeAlias) mentionsTaint(n ast.Node, facts factSet) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if obj := a.identObj(id); obj != nil && facts[factKey(obj)] {
				found = true
			}
		}
		return !found
	})
	return found
}

func (a *inodeAlias) report(pos token.Pos, msgFmt string) {
	p := a.prog.Fset.Position(pos)
	key := p.String()
	if a.reported[key] || a.sup.allowed(p, "inodealias") {
		return
	}
	a.reported[key] = true
	name := "inode"
	if len(a.cfg.AliasTypes) > 0 {
		name = a.cfg.AliasTypes[0].Type
	}
	a.findings = append(a.findings, Finding{
		Pos:      p,
		Analyzer: "inodealias",
		Message:  fmt.Sprintf(msgFmt, name),
	})
}

func (a *inodeAlias) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := a.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return a.pkg.Info.Uses[id]
}

func (a *inodeAlias) isLocal(obj types.Object) bool {
	return obj.Pos() >= a.bodyPos && obj.Pos() <= a.bodyEnd
}

// pkgInScope reports whether a package matches any of the suffixes.
func pkgInScope(pkg *Package, suffixes []string) bool {
	for _, s := range suffixes {
		if hasPathSuffix(pkg.Path, s) {
			return true
		}
	}
	return false
}
