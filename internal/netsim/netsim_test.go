package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func twoSites(t *testing.T) (*Network, *Node, *Node) {
	t.Helper()
	nw := New(DefaultCosts())
	t.Cleanup(nw.Close)
	a := nw.AddSite(1)
	b := nw.AddSite(2)
	return nw, a, b
}

func TestCallRoundTrip(t *testing.T) {
	t.Parallel()
	_, a, b := twoSites(t)
	b.Handle("echo", func(from SiteID, p any) (any, error) {
		if from != 1 {
			t.Errorf("from = %d, want 1", from)
		}
		return p.(string) + "!", nil
	})
	v, err := a.Call(2, "echo", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if v != "hi!" {
		t.Fatalf("got %v", v)
	}
}

func TestCallCountsTwoMessages(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	b.Handle("op", func(SiteID, any) (any, error) { return nil, nil })
	before := nw.Stats()
	if _, err := a.Call(2, "op", nil); err != nil {
		t.Fatal(err)
	}
	d := nw.Stats().Sub(before)
	if d.Msgs != 2 {
		t.Fatalf("Call produced %d messages, want 2 (request+response)", d.Msgs)
	}
	if d.ByMethod["op"] != 2 {
		t.Fatalf("ByMethod[op] = %d, want 2", d.ByMethod["op"])
	}
}

func TestCastCountsOneMessage(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	got := make(chan string, 1)
	b.Handle("note", func(_ SiteID, p any) (any, error) {
		got <- p.(string)
		return nil, nil
	})
	before := nw.Stats()
	if err := a.Cast(2, "note", "page"); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "page" {
			t.Fatalf("payload = %q", s)
		}
	case <-time.After(time.Second):
		t.Fatal("cast not delivered")
	}
	d := nw.Stats().Sub(before)
	if d.Msgs != 1 {
		t.Fatalf("Cast produced %d messages, want 1", d.Msgs)
	}
}

func TestLocalCallZeroMessages(t *testing.T) {
	t.Parallel()
	nw, a, _ := twoSites(t)
	a.Handle("op", func(SiteID, any) (any, error) { return 7, nil })
	before := nw.Stats()
	v, err := a.Call(1, "op", nil)
	if err != nil || v != 7 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	d := nw.Stats().Sub(before)
	if d.Msgs != 0 {
		t.Fatalf("local call produced %d messages, want 0", d.Msgs)
	}
	if d.CPUUs != nw.Cost().LocalCall {
		t.Fatalf("local call CPU = %d, want %d", d.CPUUs, nw.Cost().LocalCall)
	}
}

func TestNestedRemoteService(t *testing.T) {
	t.Parallel()
	// US -> CSS -> SS nesting as in the open protocol (Figure 2).
	nw := New(DefaultCosts())
	defer nw.Close()
	us := nw.AddSite(1)
	css := nw.AddSite(2)
	ss := nw.AddSite(3)
	ss.Handle("storage", func(SiteID, any) (any, error) { return "data", nil })
	css.Handle("open", func(SiteID, any) (any, error) {
		return css.Call(3, "storage", nil)
	})
	before := nw.Stats()
	v, err := us.Call(2, "open", nil)
	if err != nil || v != "data" {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if d := nw.Stats().Sub(before); d.Msgs != 4 {
		t.Fatalf("general open flow = %d messages, want 4", d.Msgs)
	}
}

func TestUnreachableAfterPartition(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	b.Handle("op", func(SiteID, any) (any, error) { return nil, nil })
	nw.PartitionGroups([]SiteID{1}, []SiteID{2})
	_, err := a.Call(2, "op", nil)
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	nw.HealAll()
	if _, err := a.Call(2, "op", nil); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestInFlightCallFailsOnLinkBreak(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	started := make(chan struct{})
	release := make(chan struct{})
	b.Handle("slow", func(SiteID, any) (any, error) {
		close(started)
		<-release
		return "late", nil
	})
	errc := make(chan error, 1)
	go func() {
		_, err := a.Call(2, "slow", nil)
		errc <- err
	}()
	<-started
	nw.SetLink(1, 2, false)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCircuitClosed) {
			t.Fatalf("err = %v, want ErrCircuitClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("call did not fail after circuit break")
	}
	close(release)
}

func TestInFlightCallFailsOnServerCrash(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	started := make(chan struct{})
	release := make(chan struct{})
	b.Handle("slow", func(SiteID, any) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	errc := make(chan error, 1)
	go func() {
		_, err := a.Call(2, "slow", nil)
		errc <- err
	}()
	<-started
	nw.Crash(2)
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCircuitClosed) {
			t.Fatalf("err = %v, want ErrCircuitClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("call did not fail after crash")
	}
	close(release)
	if _, err := a.Call(2, "slow", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to crashed site = %v, want ErrUnreachable", err)
	}
}

func TestCrashRunsCallbackAndRestartRejoins(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var crashed, restarted bool
	var mu sync.Mutex
	b.OnCrash(func() { mu.Lock(); crashed = true; mu.Unlock() })
	b.OnRestart(func() { mu.Lock(); restarted = true; mu.Unlock() })
	b.Handle("op", func(SiteID, any) (any, error) { return nil, nil })
	nw.Crash(2)
	mu.Lock()
	if !crashed {
		t.Fatal("OnCrash not run")
	}
	mu.Unlock()
	nw.Restart(2)
	mu.Lock()
	if !restarted {
		t.Fatal("OnRestart not run")
	}
	mu.Unlock()
	if _, err := a.Call(2, "op", nil); err != nil {
		t.Fatalf("call after restart: %v", err)
	}
}

func TestLinkDownNotification(t *testing.T) {
	t.Parallel()
	nw, a, _ := twoSites(t)
	ch := make(chan SiteID, 1)
	a.OnLinkDown(func(peer SiteID) { ch <- peer })
	nw.SetLink(1, 2, false)
	select {
	case p := <-ch:
		if p != 2 {
			t.Fatalf("peer = %d, want 2", p)
		}
	case <-time.After(time.Second):
		t.Fatal("no link-down notification")
	}
}

func TestNoHandler(t *testing.T) {
	t.Parallel()
	_, a, _ := twoSites(t)
	_, err := a.Call(2, "nope", nil)
	if !errors.Is(err, ErrNoHandler) {
		t.Fatalf("err = %v, want ErrNoHandler", err)
	}
}

func TestCastOrderPreserved(t *testing.T) {
	t.Parallel()
	_, a, b := twoSites(t)
	const n = 100
	got := make([]int, 0, n)
	done := make(chan struct{})
	b.Handle("seq", func(_ SiteID, p any) (any, error) {
		got = append(got, p.(int)) // casts are serviced inline by the dispatcher: no race
		if len(got) == n {
			close(done)
		}
		return nil, nil
	})
	for i := 0; i < n; i++ {
		if err := a.Cast(2, "seq", i); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestCastBeforeCallOrdering(t *testing.T) {
	t.Parallel()
	// A Cast followed by a Call from the same peer must be serviced in
	// order: the write-then-close sequence of §2.3.5 depends on it.
	_, a, b := twoSites(t)
	var mu sync.Mutex
	var log []string
	b.Handle("write", func(SiteID, any) (any, error) {
		mu.Lock()
		log = append(log, "write")
		mu.Unlock()
		return nil, nil
	})
	b.Handle("close", func(SiteID, any) (any, error) {
		mu.Lock()
		log = append(log, "close")
		mu.Unlock()
		return nil, nil
	})
	for i := 0; i < 50; i++ {
		mu.Lock()
		log = log[:0]
		mu.Unlock()
		if err := a.Cast(2, "write", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Call(2, "close", nil); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		if len(log) != 2 || log[0] != "write" || log[1] != "close" {
			t.Fatalf("iteration %d: order %v", i, log)
		}
		mu.Unlock()
	}
}

func TestPartitionGroupsIsolatesUnmentioned(t *testing.T) {
	t.Parallel()
	nw := New(DefaultCosts())
	defer nw.Close()
	for i := 1; i <= 4; i++ {
		nw.AddSite(SiteID(i))
	}
	nw.PartitionGroups([]SiteID{1, 2}, []SiteID{3})
	cases := []struct {
		a, b SiteID
		want bool
	}{
		{1, 2, true}, {1, 3, false}, {1, 4, false}, {3, 4, false}, {2, 3, false},
	}
	for _, c := range cases {
		if got := nw.Connected(c.a, c.b); got != c.want {
			t.Errorf("Connected(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPropertyPartitionGroupsTransitive(t *testing.T) {
	t.Parallel()
	// Within any group connectivity is an equivalence relation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nw := New(DefaultCosts())
		defer nw.Close()
		const n = 8
		for i := 1; i <= n; i++ {
			nw.AddSite(SiteID(i))
		}
		var g1, g2 []SiteID
		for i := 1; i <= n; i++ {
			switch r.Intn(3) {
			case 0:
				g1 = append(g1, SiteID(i))
			case 1:
				g2 = append(g2, SiteID(i))
			}
		}
		nw.PartitionGroups(g1, g2)
		for a := 1; a <= n; a++ {
			for b := 1; b <= n; b++ {
				for c := 1; c <= n; c++ {
					if nw.Connected(SiteID(a), SiteID(b)) && nw.Connected(SiteID(b), SiteID(c)) &&
						!nw.Connected(SiteID(a), SiteID(c)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCallsStress(t *testing.T) {
	t.Parallel()
	nw := New(DefaultCosts())
	defer nw.Close()
	const n = 6
	nodes := make([]*Node, n+1)
	for i := 1; i <= n; i++ {
		nodes[i] = nw.AddSite(SiteID(i))
		nodes[i].Handle("add", func(_ SiteID, p any) (any, error) {
			return p.(int) + 1, nil
		})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 300)
	for w := 0; w < 50; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := nodes[1+w%n]
			dst := SiteID(1 + (w+1)%n)
			for i := 0; i < 20; i++ {
				v, err := src.Call(dst, "add", i)
				if err != nil {
					errs <- err
					return
				}
				if v != i+1 {
					errs <- fmt.Errorf("got %v want %d", v, i+1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDuplicateSitePanics(t *testing.T) {
	t.Parallel()
	nw := New(DefaultCosts())
	defer nw.Close()
	nw.AddSite(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate site")
		}
	}()
	nw.AddSite(1)
}

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestByteAccountingUsesSizer(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	b.Handle("op", func(SiteID, any) (any, error) { return nil, nil })
	before := nw.Stats()
	if _, err := a.Call(2, "op", sized{4096}); err != nil {
		t.Fatal(err)
	}
	d := nw.Stats().Sub(before)
	if d.Bytes < 4096 {
		t.Fatalf("bytes = %d, want >= 4096", d.Bytes)
	}
}
