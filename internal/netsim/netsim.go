// Package netsim simulates the network substrate LOCUS ran on: a set of
// sites connected by a fully-connected (within a partition) message
// layer with virtual-circuit semantics.
//
// The LOCUS paper (§5.1) describes the low-level transport as a
// collection of virtual circuits delivering messages between sites in
// order; a lost message closes the circuit, and circuit failure removes
// the peer from the local site's view of the partition. netsim
// reproduces exactly those semantics in-process:
//
//   - Call implements the specialized request/response protocols of
//     §2.3 ("There are no other messages involved; no acknowledgements,
//     flow control or any other underlying mechanism"): one request
//     message, one response message.
//   - Cast implements one-way messages with low-level acknowledgement
//     only (the write protocol of §2.3.5): one message on the wire.
//   - Breaking a link (or crashing a site) aborts in-flight exchanges
//     across it with ErrCircuitClosed and notifies both endpoints, which
//     is what triggers the reconfiguration protocols of §5.
//
// All traffic is metered (message counts per method, bytes, simulated
// CPU microseconds) so the benchmark harness can regenerate the paper's
// protocol costs without real hardware.
//
// The send path is lock-free: connectivity lives in an immutable
// copy-on-write snapshot (one atomic load per exchange), counters are
// plain atomics, and pending request/response exchanges are tracked
// per-node. Network.mu is only taken by topology mutations (AddSite,
// SetLink, Crash, Restart, Close), which republish the snapshot.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/lint/invariant"
	"repro/internal/simclock"
	"repro/internal/vclock"
)

// SiteID identifies a site. It aliases vclock.SiteID so version vectors
// and the transport agree on site naming.
type SiteID = vclock.SiteID

// Errors returned by the transport.
var (
	// ErrUnreachable reports that no virtual circuit can be opened to
	// the destination: it is down or in a different partition.
	ErrUnreachable = errors.New("netsim: site unreachable")
	// ErrCircuitClosed reports that the virtual circuit failed while an
	// exchange was in flight; the caller cannot know whether the remote
	// operation happened.
	ErrCircuitClosed = errors.New("netsim: virtual circuit closed")
	// ErrNoHandler reports that the destination has no handler bound
	// for the requested method.
	ErrNoHandler = errors.New("netsim: no handler for method")
	// ErrSiteDown reports an operation on a crashed site.
	ErrSiteDown = errors.New("netsim: site is down")
	// ErrTimeout reports that a message was lost on the wire and the
	// circuit reset after the timeout (§5.1: "a lost message closes the
	// circuit"). Unlike ErrUnreachable the destination may well be up;
	// the exchange is worth retrying after a backoff.
	ErrTimeout = errors.New("netsim: timed out (message lost, circuit reset)")
	// ErrCrashed reports that the destination site is down (crashed),
	// as opposed to partitioned away. It wraps ErrUnreachable so
	// existing errors.Is(err, ErrUnreachable) call sites keep treating
	// it as "no circuit", while retry policy can tell the cases apart.
	ErrCrashed = fmt.Errorf("%w: site crashed", ErrUnreachable)
)

// Handler services one inbound message. from is the requesting site.
// For Cast messages the returned value is discarded.
type Handler func(from SiteID, payload any) (any, error)

// Sizer lets a payload report its approximate wire size in bytes for
// byte accounting. Payloads that do not implement Sizer are charged
// defaultWireSize.
type Sizer interface{ WireSize() int }

// ImmutablePayload marks a payload (request, cast, or response) whose
// referenced buffers will never be mutated after the send. The
// simulated network passes payloads by reference; by default a careful
// receiver must therefore copy any []byte it wants to retain, in case
// the sender reuses the buffer. A payload declaring ImmutablePayload
// waives that: the receiver may alias its buffers indefinitely without
// copying (zero-copy handoff). Senders must guarantee the buffers are
// frozen — in this codebase that is the shadow-page rule (committed
// page buffers are never rewritten) plus the storage layer's shared-
// page tracking (a buffer served zero-copy is never recycled through
// the page pool).
type ImmutablePayload interface{ ImmutablePayload() }

const (
	defaultWireSize = 200 // bytes charged for an unsized payload
	headerWireSize  = 64  // bytes charged per message for headers
)

// CostModel assigns simulated CPU microseconds to primitive operations.
// The defaults are calibrated so the headline ratios reported in the
// paper hold (remote page access ≈ 2× the CPU of local access —
// §2.2.1 footnote): a local page access costs PageCPU and a remote one
// costs PageCPU at the storage site plus 2×MsgCPU of protocol work.
type CostModel struct {
	MsgCPU    int64 // CPU to build+send or receive+decode one message
	PerKBCPU  int64 // additional CPU per KB of payload moved
	LocalCall int64 // CPU of a purely local kernel procedure call
	PageCPU   int64 // CPU of buffer management + copy for one page
	DiskUs    int64 // latency of one disk page transfer
}

// DefaultCosts is the calibrated cost model used by the benchmarks.
func DefaultCosts() CostModel {
	return CostModel{
		MsgCPU:    500,
		PerKBCPU:  100,
		LocalCall: 50,
		PageCPU:   1000,
		DiskUs:    15000,
	}
}

// Stats accumulates network-wide traffic and simulated cost counters.
// Charging cost also advances the network's simulated clock, so virtual
// time moves exactly as fast as simulated work is done. All counters
// are atomics: charging an exchange takes no lock.
type Stats struct {
	clock   *simclock.Clock
	msgs    atomic.Int64
	bytes   atomic.Int64
	cpuUs   atomic.Int64
	diskUs  atomic.Int64
	casts   atomic.Int64
	calls   atomic.Int64
	dropped atomic.Int64
	// byMeth maps method name -> *atomic.Int64 message count.
	byMeth sync.Map

	// Using-site page-cache and readahead effectiveness counters,
	// charged by the fs layer (§2.2.1 kernel buffer management).
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	cacheInvals atomic.Int64
	raSent      atomic.Int64
	raUsed      atomic.Int64

	// Bulk-propagation counters, charged by the fs layer: windows of
	// physical pages shipped by the windowed pull protocol
	// (fs.pullopen piggyback + fs.pullpages).
	pullWins  atomic.Int64
	pullPages atomic.Int64

	// Lease-layer counters, charged by the fs layer: delegations and
	// writer leases granted by a CSS, leases recalled by revocation
	// callbacks, and batched revoke rounds (one round per writer
	// transition, however many delegates it recalls).
	leasesGranted  atomic.Int64
	leasesRevoked  atomic.Int64
	batchedRevokes atomic.Int64

	// Fault-plane counters: messages lost/duplicated/delayed by
	// injected faults, and virtual-circuit resets (in-flight exchanges
	// aborted by teardown or fault timeout).
	fltDropped atomic.Int64
	fltDuped   atomic.Int64
	fltDelayed atomic.Int64
	resets     atomic.Int64

	// §5.6 failure-action cleanup counters, charged by the proc and
	// txn layers when a partition change or crash forces resource
	// teardown: orphaned-child notices (SIGPARENTERR/SIGCHILDERR),
	// pipe endpoints torn down (EOF/broken delivered), transactions
	// aborted by partition, and cross-partition signals queued,
	// replayed after merge, or expired (target definitively dead).
	orphanNotices atomic.Int64
	pipeTeardowns atomic.Int64
	txnPartAborts atomic.Int64
	sigsQueued    atomic.Int64
	sigsReplayed  atomic.Int64
	sigsExpired   atomic.Int64
}

// Snapshot is an immutable copy of the counters at a point in time.
type Snapshot struct {
	Msgs     int64
	Bytes    int64
	ByMethod map[string]int64
	CPUUs    int64
	DiskUs   int64
	Casts    int64
	Calls    int64
	Dropped  int64

	// CacheHits/CacheMisses count using-site page-cache lookups;
	// CacheInvals counts pages discarded by commit/propagation
	// invalidation.
	CacheHits   int64
	CacheMisses int64
	CacheInvals int64
	// RAPagesSent counts pages piggybacked on read responses by
	// streaming readahead; RAPagesUsed counts those later served to a
	// reader (readahead efficiency = used/sent).
	RAPagesSent int64
	RAPagesUsed int64

	// PullWindowsSent counts bulk-propagation windows shipped by the
	// windowed pull protocol; PullPagesSent counts the physical pages
	// they carried (pages per window = PullPagesSent/PullWindowsSent).
	PullWindowsSent int64
	PullPagesSent   int64

	// LeasesGranted counts read delegations and writer leases granted
	// by a CSS; LeasesRevoked counts leases recalled by revocation
	// callbacks; BatchedRevokes counts batched revoke rounds (leases
	// revoked per round = LeasesRevoked/BatchedRevokes).
	LeasesGranted  int64
	LeasesRevoked  int64
	BatchedRevokes int64

	// MsgsDropped/MsgsDuped/MsgsDelayed count messages lost,
	// duplicated, and delayed by the fault plane; CircuitResets counts
	// virtual-circuit failures observed by in-flight exchanges
	// (topology teardown and fault-induced timeouts).
	MsgsDropped   int64
	MsgsDuped     int64
	MsgsDelayed   int64
	CircuitResets int64

	// §5.6 failure-action cleanup counters. OrphanNotices counts
	// SIGPARENTERR/SIGCHILDERR orphan notifications generated by
	// partition-change cleanup; PipeTeardowns counts pipe endpoints
	// forcibly resolved (EOF or broken) after losing their far site;
	// TxnPartitionAborts counts transactions aborted because a locked
	// file's storage site left the partition; SignalsQueued/
	// SignalsReplayed/SignalsExpired track cross-partition signal
	// delivery (queued at the sender, replayed after merge, or dropped
	// because the target process is definitively dead).
	OrphanNotices      int64
	PipeTeardowns      int64
	TxnPartitionAborts int64
	SignalsQueued      int64
	SignalsReplayed    int64
	SignalsExpired     int64
}

func (s *Stats) snapshot() Snapshot {
	by := make(map[string]int64)
	s.byMeth.Range(func(k, v any) bool {
		by[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return Snapshot{
		Msgs: s.msgs.Load(), Bytes: s.bytes.Load(), ByMethod: by,
		CPUUs: s.cpuUs.Load(), DiskUs: s.diskUs.Load(),
		Casts: s.casts.Load(), Calls: s.calls.Load(), Dropped: s.dropped.Load(),
		CacheHits: s.cacheHits.Load(), CacheMisses: s.cacheMisses.Load(),
		CacheInvals: s.cacheInvals.Load(),
		RAPagesSent: s.raSent.Load(), RAPagesUsed: s.raUsed.Load(),
		PullWindowsSent: s.pullWins.Load(), PullPagesSent: s.pullPages.Load(),
		LeasesGranted: s.leasesGranted.Load(), LeasesRevoked: s.leasesRevoked.Load(),
		BatchedRevokes: s.batchedRevokes.Load(),
		MsgsDropped: s.fltDropped.Load(), MsgsDuped: s.fltDuped.Load(),
		MsgsDelayed: s.fltDelayed.Load(), CircuitResets: s.resets.Load(),
		OrphanNotices: s.orphanNotices.Load(), PipeTeardowns: s.pipeTeardowns.Load(),
		TxnPartitionAborts: s.txnPartAborts.Load(),
		SignalsQueued:      s.sigsQueued.Load(),
		SignalsReplayed:    s.sigsReplayed.Load(), SignalsExpired: s.sigsExpired.Load(),
	}
}

func (s *Stats) methCounter(method string) *atomic.Int64 {
	if c, ok := s.byMeth.Load(method); ok {
		return c.(*atomic.Int64)
	}
	c, _ := s.byMeth.LoadOrStore(method, new(atomic.Int64))
	return c.(*atomic.Int64)
}

// chargeExchange records one protocol exchange — n wire messages of the
// given method (2 for a Call, 1 for a Cast), the payload bytes, and the
// protocol CPU — in one lock-free pass, and advances virtual time.
func (s *Stats) chargeExchange(method string, n, bytes, cpu int64, call bool) {
	s.msgs.Add(n)
	s.bytes.Add(bytes)
	s.methCounter(method).Add(n)
	if call {
		s.calls.Add(1)
	} else {
		s.casts.Add(1)
	}
	s.cpuUs.Add(cpu)
	s.tick(cpu)
}

// chargeResponse meters a data-carrying Call response (only payloads
// implementing Sizer — page transfers — are charged; control responses
// ride in the per-message header allowance charged at send time).
func (s *Stats) chargeResponse(bytes, cpu int64) {
	s.bytes.Add(bytes)
	s.cpuUs.Add(cpu)
	s.tick(cpu)
}

// AddCPU charges simulated CPU microseconds and advances virtual time.
func (s *Stats) AddCPU(us int64) {
	s.cpuUs.Add(us)
	s.tick(us)
}

// AddDisk charges simulated disk microseconds and advances virtual
// time.
func (s *Stats) AddDisk(us int64) {
	s.diskUs.Add(us)
	s.tick(us)
}

// AddCacheHit records a page served from a using-site page cache.
func (s *Stats) AddCacheHit() { s.cacheHits.Add(1) }

// AddCacheMiss records a using-site page-cache lookup that missed.
func (s *Stats) AddCacheMiss() { s.cacheMisses.Add(1) }

// AddCacheInvals records n pages discarded by cache invalidation.
func (s *Stats) AddCacheInvals(n int) { s.cacheInvals.Add(int64(n)) }

// AddReadaheadSent records n pages piggybacked by streaming readahead.
func (s *Stats) AddReadaheadSent(n int) { s.raSent.Add(int64(n)) }

// AddReadaheadUsed records n readahead pages later served to a reader.
func (s *Stats) AddReadaheadUsed(n int) { s.raUsed.Add(int64(n)) }

// AddPullWindow records one bulk-propagation window carrying n physical
// pages.
func (s *Stats) AddPullWindow(n int) {
	s.pullWins.Add(1)
	s.pullPages.Add(int64(n))
}

// AddLeaseGranted records one read delegation or writer lease granted
// by a CSS.
func (s *Stats) AddLeaseGranted() { s.leasesGranted.Add(1) }

// AddLeasesRevoked records n leases recalled by revocation callbacks.
func (s *Stats) AddLeasesRevoked(n int) { s.leasesRevoked.Add(int64(n)) }

// AddBatchedRevoke records one batched revoke round.
func (s *Stats) AddBatchedRevoke() { s.batchedRevokes.Add(1) }

// AddOrphanNotices records n SIGPARENTERR/SIGCHILDERR orphan notices
// generated by §5.6 partition-change cleanup.
func (s *Stats) AddOrphanNotices(n int) { s.orphanNotices.Add(int64(n)) }

// AddPipeTeardowns records n pipe endpoints forcibly resolved (EOF or
// broken) after losing their far site.
func (s *Stats) AddPipeTeardowns(n int) { s.pipeTeardowns.Add(int64(n)) }

// AddTxnPartitionAborts records n transactions aborted because a locked
// file's storage site left the partition.
func (s *Stats) AddTxnPartitionAborts(n int) { s.txnPartAborts.Add(int64(n)) }

// AddSignalsQueued records one cross-partition signal queued at the
// sender for replay after merge.
func (s *Stats) AddSignalsQueued() { s.sigsQueued.Add(1) }

// AddSignalsReplayed records n queued signals delivered after merge.
func (s *Stats) AddSignalsReplayed(n int) { s.sigsReplayed.Add(int64(n)) }

// AddSignalsExpired records n queued signals dropped because the target
// process is definitively dead.
func (s *Stats) AddSignalsExpired(n int) { s.sigsExpired.Add(int64(n)) }

// addDropped counts a message lost to a closed circuit.
func (s *Stats) addDropped() { s.dropped.Add(1) }

// addFaultDrop counts a message lost to injected loss; the caller's
// circuit resets after timeoutUs of virtual time.
func (s *Stats) addFaultDrop(timeoutUs int64) {
	s.fltDropped.Add(1)
	s.resets.Add(1)
	s.tick(timeoutUs)
}

// addFaultDup counts a duplicated message.
func (s *Stats) addFaultDup() { s.fltDuped.Add(1) }

// addFaultDelay counts a delayed message and advances virtual time by
// the injected latency.
func (s *Stats) addFaultDelay(us int64) {
	s.fltDelayed.Add(1)
	s.tick(us)
}

// addReset counts an in-flight exchange aborted by circuit teardown.
func (s *Stats) addReset() { s.resets.Add(1) }

// tick advances the simulated clock, when one is attached.
func (s *Stats) tick(us int64) {
	if s.clock != nil {
		s.clock.Advance(us)
	}
}

// Sub returns the counter deltas between a later snapshot b and s.
func (b Snapshot) Sub(a Snapshot) Snapshot {
	by := make(map[string]int64)
	for k, v := range b.ByMethod {
		if d := v - a.ByMethod[k]; d != 0 {
			by[k] = d
		}
	}
	return Snapshot{
		Msgs: b.Msgs - a.Msgs, Bytes: b.Bytes - a.Bytes, ByMethod: by,
		CPUUs: b.CPUUs - a.CPUUs, DiskUs: b.DiskUs - a.DiskUs,
		Casts: b.Casts - a.Casts, Calls: b.Calls - a.Calls,
		Dropped:   b.Dropped - a.Dropped,
		CacheHits: b.CacheHits - a.CacheHits, CacheMisses: b.CacheMisses - a.CacheMisses,
		CacheInvals: b.CacheInvals - a.CacheInvals,
		RAPagesSent: b.RAPagesSent - a.RAPagesSent, RAPagesUsed: b.RAPagesUsed - a.RAPagesUsed,
		PullWindowsSent: b.PullWindowsSent - a.PullWindowsSent,
		PullPagesSent:   b.PullPagesSent - a.PullPagesSent,
		LeasesGranted:   b.LeasesGranted - a.LeasesGranted,
		LeasesRevoked:   b.LeasesRevoked - a.LeasesRevoked,
		BatchedRevokes:  b.BatchedRevokes - a.BatchedRevokes,
		MsgsDropped: b.MsgsDropped - a.MsgsDropped, MsgsDuped: b.MsgsDuped - a.MsgsDuped,
		MsgsDelayed: b.MsgsDelayed - a.MsgsDelayed, CircuitResets: b.CircuitResets - a.CircuitResets,
		OrphanNotices: b.OrphanNotices - a.OrphanNotices,
		PipeTeardowns: b.PipeTeardowns - a.PipeTeardowns,
		TxnPartitionAborts: b.TxnPartitionAborts - a.TxnPartitionAborts,
		SignalsQueued:      b.SignalsQueued - a.SignalsQueued,
		SignalsReplayed:    b.SignalsReplayed - a.SignalsReplayed,
		SignalsExpired:     b.SignalsExpired - a.SignalsExpired,
	}
}

// connView is an immutable snapshot of the topology: the sites that
// exist, which are up, and which links carry a circuit. The send path
// reads it with a single atomic load; topology mutations rebuild and
// republish it under Network.mu.
type connView struct {
	nodes map[SiteID]*Node
	up    map[SiteID]bool
	link  map[SiteID]map[SiteID]bool
}

func (v *connView) connected(a, b SiteID) bool {
	if v == nil || !v.up[a] || !v.up[b] {
		return false
	}
	if a == b {
		return true
	}
	return v.link[a][b]
}

// Network is the simulated internetwork: a set of sites and a symmetric
// connectivity relation. The high-level LOCUS protocols assume the
// network is transitively connected within a partition (§5.1); the
// helpers PartitionGroups and HealAll maintain that invariant, while
// SetLink allows deliberately non-transitive configurations for testing
// the partition protocol.
type Network struct {
	// mu guards the canonical topology maps below; the hot send path
	// never takes it (it reads the conn snapshot instead).
	mu    sync.Mutex
	nodes map[SiteID]*Node
	// link[a][b] reports a working circuit path between a and b.
	link map[SiteID]map[SiteID]bool
	up   map[SiteID]bool

	// conn is the published copy-on-write topology snapshot.
	conn atomic.Pointer[connView]

	stats Stats
	clock *simclock.Clock
	cost  CostModel

	callSeq atomic.Int64
	// active counts messages enqueued but not yet fully handled, for
	// Quiesce.
	active atomic.Int64

	// faults is the installed fault plane; nil (the default) costs one
	// atomic load per exchange and injects nothing.
	faults atomic.Pointer[Faults]
	// dedupOff disables the callee-side at-most-once dedup tables
	// (chaos regression testing only).
	dedupOff atomic.Bool
	// trace, when set, observes every remote send in issue order; the
	// determinism tests use it to capture the wire schedule two runs
	// must reproduce byte for byte.
	trace atomic.Pointer[func(from, to SiteID, method string)]
}

// New creates an empty network with the given cost model.
func New(cost CostModel) *Network {
	nw := &Network{
		nodes: make(map[SiteID]*Node),
		link:  make(map[SiteID]map[SiteID]bool),
		up:    make(map[SiteID]bool),
		clock: simclock.New(),
		cost:  cost,
	}
	nw.stats.clock = nw.clock
	nw.publishLocked()
	return nw
}

// publishLocked rebuilds and publishes the connectivity snapshot from
// the canonical maps. Callers hold nw.mu. Teardown paths must publish
// before scanning pending tables (see Call's recheck).
func (nw *Network) publishLocked() {
	v := &connView{
		nodes: make(map[SiteID]*Node, len(nw.nodes)),
		up:    make(map[SiteID]bool, len(nw.up)),
		link:  make(map[SiteID]map[SiteID]bool, len(nw.link)),
	}
	for id, n := range nw.nodes {
		v.nodes[id] = n
	}
	for id, u := range nw.up {
		v.up[id] = u
	}
	for a, row := range nw.link {
		cp := make(map[SiteID]bool, len(row))
		for b, ok := range row {
			cp[b] = ok
		}
		v.link[a] = cp
	}
	nw.conn.Store(v)
}

func (nw *Network) view() *connView { return nw.conn.Load() }

// Cost returns the network's cost model.
func (nw *Network) Cost() CostModel { return nw.cost }

// Clock returns the network's simulated clock. It advances as simulated
// cost (CPU, disk, messages) is charged; protocol layers use it instead
// of the wall clock for timestamps and backoff waits.
func (nw *Network) Clock() *simclock.Clock { return nw.clock }

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Snapshot { return nw.stats.snapshot() }

// Meter charges CPU/disk cost directly (used by the storage layer).
func (nw *Network) Meter() *Stats { return &nw.stats }

// CostUs returns the total charged simulated cost (CPU + disk virtual
// microseconds) so far. Unlike Clock().NowUs() it moves only on
// deterministic charges, never on idle-wait Backoff escalations, so
// deltas of CostUs replay byte-identically for a deterministic
// schedule — the workload engine's latency histograms depend on that.
func (nw *Network) CostUs() int64 {
	return nw.stats.cpuUs.Load() + nw.stats.diskUs.Load()
}

// AddSite creates and starts a node for site id, fully connected to all
// existing sites. Adding an existing id panics: site identity is
// configuration, not runtime data.
func (nw *Network) AddSite(id SiteID) *Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if _, dup := nw.nodes[id]; dup {
		// invariant: site identity is configuration, not runtime data;
		// a duplicate id is a programming error, not a recoverable state.
		panic(fmt.Sprintf("netsim: duplicate site %d", id))
	}
	n := &Node{
		id:       id,
		nw:       nw,
		handlers: make(map[string]Handler),
		pending:  make(map[int64]*pendingCall),
		dedup:    make(map[SiteID]map[int64]*dedupEntry),
		inbox:    msgQueue{notify: make(chan struct{}, 1)},
		quit:     make(chan struct{}),
	}
	nw.nodes[id] = n
	nw.up[id] = true
	nw.link[id] = make(map[SiteID]bool)
	for other := range nw.nodes {
		if other != id {
			nw.link[id][other] = true
			nw.link[other][id] = true
		}
	}
	nw.publishLocked()
	go n.dispatch() //locus:vet-allow goroutinejoin per-node message pump: exits when Close closes quit, and Quiesce accounts for every message it services via the active counter
	return n
}

// Node returns the node for a site, or nil if it was never added.
func (nw *Network) Node(id SiteID) *Node {
	if v := nw.view(); v != nil {
		return v.nodes[id]
	}
	return nil
}

// Quiesce blocks until no message is queued or being handled anywhere
// in the network. It lets deterministic tests and benchmarks wait out
// the asynchronous one-way traffic (commit notifications, writes)
// before asserting on state.
func (nw *Network) Quiesce() {
	for i := 0; ; i++ {
		active := nw.active.Load()
		invariant.Assertf(active >= 0, "netsim: active message count %d < 0", active)
		if active == 0 {
			return
		}
		nw.clock.Backoff(i)
	}
}

// Close stops all node dispatch loops. The network is unusable after.
func (nw *Network) Close() {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	for _, n := range nw.nodes {
		select {
		case <-n.quit:
		default:
			close(n.quit)
		}
	}
}

// Sites returns all site ids ever added, in ascending order.
func (nw *Network) Sites() []SiteID {
	v := nw.view()
	out := make([]SiteID, 0, len(v.nodes))
	for id := range v.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connected reports whether a working circuit exists between a and b.
// A site is always connected to itself while it is up.
func (nw *Network) Connected(a, b SiteID) bool {
	return nw.view().connected(a, b)
}

// Up reports whether the site is running (not crashed).
func (nw *Network) Up(id SiteID) bool {
	v := nw.view()
	return v != nil && v.up[id]
}

// SetLink sets the (symmetric) connectivity between two sites. Taking a
// link down closes the virtual circuit: in-flight exchanges across it
// fail and both endpoints' OnLinkDown callbacks fire.
func (nw *Network) SetLink(a, b SiteID, up bool) {
	nw.mu.Lock()
	was := nw.link[a][b]
	nw.link[a][b] = up
	nw.link[b][a] = up
	// Publish the new view before scanning pending calls: a racing Call
	// either sees the disconnect in its post-registration recheck or has
	// already registered its pending call where the scan finds it.
	nw.publishLocked()
	na, nb := nw.nodes[a], nw.nodes[b]
	nw.mu.Unlock()

	if was && !up {
		var fail []*pendingCall
		if na != nil {
			fail = append(fail, na.takePendingTo(b)...)
		}
		if nb != nil {
			fail = append(fail, nb.takePendingTo(a)...)
		}
		for _, p := range fail {
			nw.stats.addReset()
			p.fail(ErrCircuitClosed)
		}
		if na != nil {
			na.notifyLinkDown(b)
		}
		if nb != nil {
			nb.notifyLinkDown(a)
		}
	}
}

// PartitionGroups reconfigures connectivity so each group is a fully
// connected clique and no circuits cross groups. Sites not mentioned in
// any group are isolated. Circuit-close notifications fire for every
// severed pair.
func (nw *Network) PartitionGroups(groups ...[]SiteID) {
	group := make(map[SiteID]int)
	for gi, g := range groups {
		for _, s := range g {
			group[s] = gi + 1
		}
	}
	ids := nw.Sites()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			ga, oka := group[a]
			gb, okb := group[b]
			nw.SetLink(a, b, oka && okb && ga == gb)
		}
	}
}

// HealAll restores full connectivity among all up sites.
func (nw *Network) HealAll() {
	ids := nw.Sites()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			nw.SetLink(a, b, true)
		}
	}
}

// Crash takes a site down abruptly: every circuit to it closes and
// in-flight exchanges fail, exactly as when "hosts crash" in §2.3.3.
// The node's OnCrash callback runs so upper layers can discard in-core
// state (incore inodes, process table, tokens).
func (nw *Network) Crash(id SiteID) {
	nw.mu.Lock()
	if !nw.up[id] {
		nw.mu.Unlock()
		return
	}
	nw.up[id] = false
	nw.publishLocked() // before the pending scan; see SetLink
	n := nw.nodes[id]
	// Fail circuits and fire link-down callbacks in site order: the
	// failure schedule is visible to the layers above and must replay
	// identically for a pinned seed.
	ids := make([]SiteID, 0, len(nw.nodes))
	for other := range nw.nodes {
		if other != id {
			ids = append(ids, other)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var peers []SiteID
	others := make([]*Node, 0, len(ids))
	for _, other := range ids {
		others = append(others, nw.nodes[other])
		if nw.link[id][other] {
			peers = append(peers, other)
		}
	}
	nw.mu.Unlock()

	var fail []*pendingCall
	if n != nil {
		fail = append(fail, n.takeAllPending()...)
	}
	for _, on := range others {
		fail = append(fail, on.takePendingTo(id)...)
	}
	for _, p := range fail {
		nw.stats.addReset()
		p.fail(ErrCircuitClosed)
	}
	if n != nil {
		n.runCrash()
	}
	for _, peer := range peers {
		if pn := nw.Node(peer); pn != nil {
			pn.notifyLinkDown(id)
		}
	}
}

// Restart brings a crashed site back up. Its physical links are as they
// were configured before the crash (a rebooted machine rejoins the
// wire); the merge protocol is responsible for re-admitting it to a
// logical partition.
func (nw *Network) Restart(id SiteID) {
	nw.mu.Lock()
	if nw.up[id] {
		nw.mu.Unlock()
		return
	}
	nw.up[id] = true
	nw.publishLocked()
	n := nw.nodes[id]
	nw.mu.Unlock()
	if n != nil {
		n.runRestart()
	}
}

func payloadBytes(p any) int64 {
	if s, ok := p.(Sizer); ok {
		return int64(s.WireSize()) + headerWireSize
	}
	return defaultWireSize + headerWireSize
}

type msgKind int

const (
	kindRequest msgKind = iota
	kindOneWay
)

type envelope struct {
	kind    msgKind
	from    SiteID
	method  string
	payload any
	callID  int64
	// seq is the caller's at-most-once request sequence number; 0 means
	// the request is idempotent and exempt from dedup. It rides in the
	// per-message header allowance (no extra wire bytes).
	seq int64
	// action carries a callee-side scripted fault (response drop or
	// crash-before-reply) decided at send time.
	action FaultAction
	// tracked marks a duplicate request delivery counted in
	// Network.active (no caller blocks on it, so Quiesce must).
	tracked bool
}

type pendingCall struct {
	from, to SiteID
	once     sync.Once
	done     chan callResult
}

type callResult struct {
	value any
	err   error
}

func (p *pendingCall) fail(err error) {
	p.once.Do(func() { p.done <- callResult{err: err} })
}

func (p *pendingCall) succeed(v any, err error) {
	p.once.Do(func() { p.done <- callResult{value: v, err: err} })
}

// Node is one site's attachment to the network. Upper layers register
// handlers by method name and issue Calls and Casts; the paper's kernel
// message analysis/dispatch loop (Figure 1) is the dispatch goroutine.
type Node struct {
	id SiteID
	nw *Network

	mu        sync.Mutex
	handlers  map[string]Handler
	onLink    func(peer SiteID)
	onCrash   []func()
	onRestart []func()

	// pendMu guards pending: the request/response exchanges this node
	// originated that are still in flight. Keeping the registry per-node
	// keeps circuit teardown scans off the send path of other nodes.
	pendMu  sync.Mutex
	pending map[int64]*pendingCall

	// seqGen issues this node's at-most-once request sequence numbers.
	seqGen atomic.Int64

	// dedupMu guards the callee-side at-most-once tables: completed (or
	// in-flight) responses for seq-tagged requests, keyed per caller.
	// The tables are volatile kernel state — a crash clears them, which
	// is exactly the paper's model (a rebooted site has no memory of
	// pre-crash exchanges; reconciliation handles the rest).
	dedupMu sync.Mutex
	dedup   map[SiteID]map[int64]*dedupEntry

	inbox msgQueue
	quit  chan struct{}
}

// msgQueue is a node's inbound message queue. Senders append under the
// mutex and nudge the cap-1 notify channel; the dispatch pump swaps the
// whole pending slice out and services it as a batch, so delivering N
// queued messages costs one wakeup instead of N channel receives. Two
// slices double-buffer: the batch being serviced and the slice being
// appended to never share a backing array.
type msgQueue struct {
	mu      sync.Mutex
	pending []*envelope
	stopped bool
	notify  chan struct{}
}

// push enqueues one envelope. It reports false — without enqueueing —
// once the node's pump has stopped (network closed), mirroring the old
// behavior of a send racing a closed quit channel.
func (q *msgQueue) push(env *envelope) bool {
	q.mu.Lock()
	if q.stopped {
		q.mu.Unlock()
		return false
	}
	q.pending = append(q.pending, env)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default: // pump already has a wakeup pending
	}
	return true
}

// swap hands the accumulated batch to the pump, recycling the pump's
// previous batch slice as the new pending buffer.
func (q *msgQueue) swap(spent []*envelope) []*envelope {
	q.mu.Lock()
	batch := q.pending
	q.pending = spent[:0]
	q.mu.Unlock()
	return batch
}

// stop marks the queue dead and returns whatever was still pending so
// the pump can settle the active-message accounting for undelivered
// envelopes.
func (q *msgQueue) stop() []*envelope {
	q.mu.Lock()
	q.stopped = true
	rest := q.pending
	q.pending = nil
	q.mu.Unlock()
	return rest
}

// dedupEntry caches the outcome of one seq-tagged request. A retry that
// arrives while the original is still executing waits on done rather
// than re-running the handler.
type dedupEntry struct {
	done  chan struct{}
	value any
	err   error
}

// dedupWindow bounds the per-caller dedup table: entries more than this
// many sequence numbers behind the newest are evicted (the caller's
// bounded retry budget guarantees it never retries that far back).
const dedupWindow = 1024

// ID returns the node's site id.
func (n *Node) ID() SiteID { return n.id }

// Network returns the network this node is attached to.
func (n *Node) Network() *Network { return n.nw }

// Handle binds a handler for a method name. Handlers may issue nested
// Calls (the CSS does so to reach an SS during open).
func (n *Node) Handle(method string, h Handler) {
	n.mu.Lock()
	n.handlers[method] = h
	n.mu.Unlock()
}

// OnLinkDown registers a callback invoked (asynchronously) whenever the
// virtual circuit to peer closes. The reconfiguration layer uses this
// to trigger the partition protocol.
func (n *Node) OnLinkDown(f func(peer SiteID)) {
	n.mu.Lock()
	n.onLink = f
	n.mu.Unlock()
}

// OnCrash registers a callback run when this site crashes; upper layers
// discard volatile state there. Multiple layers may register; callbacks
// run in registration order.
func (n *Node) OnCrash(f func()) {
	n.mu.Lock()
	n.onCrash = append(n.onCrash, f)
	n.mu.Unlock()
}

// OnRestart registers a callback run when this site restarts. Multiple
// layers may register; callbacks run in registration order.
func (n *Node) OnRestart(f func()) {
	n.mu.Lock()
	n.onRestart = append(n.onRestart, f)
	n.mu.Unlock()
}

func (n *Node) handler(method string) Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handlers[method]
}

func (n *Node) notifyLinkDown(peer SiteID) {
	n.mu.Lock()
	f := n.onLink
	n.mu.Unlock()
	if f != nil {
		n.nw.active.Add(1)
		go func() {
			defer n.nw.active.Add(-1)
			f(peer)
		}()
	}
}

func (n *Node) runCrash() {
	// The dedup tables are volatile kernel state: a crashed site
	// forgets every exchange it ever served. Retries of pre-crash
	// requests re-run after restart, and the reconciliation layer is
	// what makes that safe (§4).
	n.dedupMu.Lock()
	n.dedup = make(map[SiteID]map[int64]*dedupEntry)
	n.dedupMu.Unlock()
	n.mu.Lock()
	fs := append([]func(){}, n.onCrash...)
	n.mu.Unlock()
	for _, f := range fs {
		f()
	}
}

func (n *Node) runRestart() {
	n.mu.Lock()
	fs := append([]func(){}, n.onRestart...)
	n.mu.Unlock()
	for _, f := range fs {
		f()
	}
}

// registerPending records an in-flight call originated by this node.
func (n *Node) registerPending(id int64, p *pendingCall) {
	n.pendMu.Lock()
	n.pending[id] = p
	n.pendMu.Unlock()
}

// takePending removes and returns the in-flight call with the given id,
// or nil if a circuit teardown already claimed it.
func (n *Node) takePending(id int64) *pendingCall {
	n.pendMu.Lock()
	p := n.pending[id]
	delete(n.pending, id)
	n.pendMu.Unlock()
	return p
}

// takePendingTo removes and returns all in-flight calls from this node
// to peer (circuit teardown).
func (n *Node) takePendingTo(peer SiteID) []*pendingCall {
	n.pendMu.Lock()
	var out []*pendingCall
	for _, id := range sortedPendingIDs(n.pending) {
		if p := n.pending[id]; p.to == peer {
			out = append(out, p)
			delete(n.pending, id)
		}
	}
	n.pendMu.Unlock()
	return out
}

// takeAllPending removes and returns every in-flight call from this
// node (site crash).
func (n *Node) takeAllPending() []*pendingCall {
	n.pendMu.Lock()
	out := make([]*pendingCall, 0, len(n.pending))
	for _, id := range sortedPendingIDs(n.pending) {
		out = append(out, n.pending[id])
		delete(n.pending, id)
	}
	n.pendMu.Unlock()
	return out
}

// sortedPendingIDs returns the pending-call ids in issue order so a
// teardown wakes blocked callers in the order their calls went out.
func sortedPendingIDs(pending map[int64]*pendingCall) []int64 {
	ids := make([]int64, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NextSeq issues a fresh at-most-once request sequence number for this
// node. A retried request reuses the sequence number of its first
// transmission so the callee's dedup table can recognize it.
func (n *Node) NextSeq() int64 { return n.seqGen.Add(1) }

// unreachable builds the typed no-circuit error for a destination: a
// crashed site yields ErrCrashed (retry after it restarts may succeed),
// a partitioned or unknown one ErrUnreachable.
func (v *connView) unreachable(from, to SiteID) error {
	if _, known := v.nodes[to]; known && !v.up[to] {
		return fmt.Errorf("%w: %d -> %d", ErrCrashed, from, to)
	}
	return fmt.Errorf("%w: %d -> %d", ErrUnreachable, from, to)
}

// Call performs a request/response exchange with site to: exactly two
// messages on the wire (request, response), or zero when to == n.ID()
// (a local procedure call, as when "the local site is the CSS, only a
// procedure call is needed" — §2.3.3).
func (n *Node) Call(to SiteID, method string, payload any) (any, error) {
	return n.CallSeq(to, method, payload, 0)
}

// CallSeq is Call with an at-most-once sequence number. seq != 0 tags a
// mutating request: the callee caches the response keyed (caller, seq)
// and a retransmission with the same seq returns the cached response
// instead of re-running the handler. seq == 0 marks the request
// idempotent (reads), exempt from dedup.
func (n *Node) CallSeq(to SiteID, method string, payload any, seq int64) (any, error) {
	if to == n.id {
		if !n.nw.Up(n.id) {
			return nil, ErrSiteDown
		}
		h := n.handler(method)
		if h == nil {
			return nil, fmt.Errorf("%w: %s at site %d", ErrNoHandler, method, to)
		}
		n.nw.stats.AddCPU(n.nw.cost.LocalCall)
		return h(n.id, payload)
	}

	nw := n.nw
	view := nw.view()
	if !view.connected(n.id, to) {
		return nil, view.unreachable(n.id, to)
	}
	dest := view.nodes[to]
	if tr := nw.trace.Load(); tr != nil {
		(*tr)(n.id, to, method)
	}

	// Roll the fault plane before committing any accounting. The
	// decision covers the whole exchange: request loss is resolved
	// here, callee-side actions ride on the envelope.
	var dec decision
	if f := nw.faults.Load(); f != nil {
		dec = f.decide(n.id, to, method, true)
		if dec.delayUs > 0 {
			nw.stats.addFaultDelay(dec.delayUs)
		}
		if dec.action == FaultDropRequest {
			// The request went onto the wire and vanished: one message
			// charged, circuit resets after the timeout.
			bytes := payloadBytes(payload)
			nw.stats.chargeExchange(method, 1, bytes, nw.cost.MsgCPU+bytes*nw.cost.PerKBCPU/1024, true)
			nw.stats.addFaultDrop(f.timeoutUs())
			return nil, fmt.Errorf("%w: %s %d -> %d", ErrTimeout, method, n.id, to)
		}
	}

	callID := nw.callSeq.Add(1)
	p := &pendingCall{from: n.id, to: to, done: make(chan callResult, 1)}
	n.registerPending(callID, p)
	// Recheck connectivity after registering: teardown publishes its new
	// view before scanning pending tables, so either we observe the
	// disconnect here, or the scan observes our registration and fails
	// it. Without the recheck a call could slip between a teardown's
	// connectivity flip and its pending scan and hang forever.
	if !nw.view().connected(n.id, to) {
		if n.takePending(callID) != nil {
			return nil, nw.view().unreachable(n.id, to)
		}
		// The teardown claimed the pending call; it delivers the failure.
		res := <-p.done
		return res.value, res.err
	}

	// A Call is two wire messages: the request and the response.
	bytes := payloadBytes(payload) + headerWireSize
	nw.stats.chargeExchange(method, 2, bytes, 2*nw.cost.MsgCPU+bytes*nw.cost.PerKBCPU/1024, true)

	// A duplicated request means two envelopes race to serve and answer;
	// whichever responds first unblocks the caller, so Quiesce must track
	// both (the loser's serve can outlive the exchange).
	env := &envelope{kind: kindRequest, from: n.id, method: method, payload: payload, callID: callID, seq: seq,
		action: dec.action, tracked: dec.action == FaultDupRequest}
	if env.tracked {
		nw.active.Add(1)
	}
	if !dest.inbox.push(env) {
		if env.tracked {
			nw.active.Add(-1)
		}
		n.takePending(callID)
		return nil, fmt.Errorf("%w: %d -> %d", ErrUnreachable, n.id, to)
	}
	if dec.action == FaultDupRequest {
		// One extra request message on the wire; the callee sees the
		// same (seq, callID) twice. Without dedup the handler runs
		// twice — the hazard the at-most-once table exists to absorb.
		nw.stats.msgs.Add(1)
		nw.stats.methCounter(method).Add(1)
		nw.stats.addFaultDup()
		dupEnv := *env
		nw.active.Add(1)
		if !dest.inbox.push(&dupEnv) {
			nw.active.Add(-1)
		}
	}

	res := <-p.done
	return res.value, res.err
}

// Cast sends a one-way message: one message on the wire, delivered in
// order with respect to other traffic from this node to the same peer,
// with only a low-level acknowledgement (modeled as free, per the write
// protocol footnote in §2.3.5). Delivery is not confirmed to the
// caller beyond circuit liveness at send time.
func (n *Node) Cast(to SiteID, method string, payload any) error {
	if to == n.id {
		h := n.handler(method)
		if h == nil {
			return fmt.Errorf("%w: %s at site %d", ErrNoHandler, method, to)
		}
		n.nw.stats.AddCPU(n.nw.cost.LocalCall)
		_, err := h(n.id, payload)
		return err
	}
	nw := n.nw
	view := nw.view()
	if !view.connected(n.id, to) {
		return view.unreachable(n.id, to)
	}
	dest := view.nodes[to]
	if tr := nw.trace.Load(); tr != nil {
		(*tr)(n.id, to, method)
	}
	bytes := payloadBytes(payload)
	nw.stats.chargeExchange(method, 1, bytes, nw.cost.MsgCPU+bytes*nw.cost.PerKBCPU/1024, false)

	var dup bool
	if f := nw.faults.Load(); f != nil {
		dec := f.decide(n.id, to, method, false)
		if dec.delayUs > 0 {
			nw.stats.addFaultDelay(dec.delayUs)
		}
		switch dec.action {
		case FaultDropRequest, FaultDropResponse:
			// The message is gone. The low-level acknowledgement of
			// §2.3.5 never arrives, so the sender does learn the
			// circuit reset and may retransmit.
			nw.stats.addFaultDrop(f.timeoutUs())
			return fmt.Errorf("%w: %s %d -> %d", ErrTimeout, method, n.id, to)
		case FaultDupRequest:
			dup = true
		}
	}

	env := &envelope{kind: kindOneWay, from: n.id, method: method, payload: payload}
	nw.active.Add(1)
	if !dest.inbox.push(env) {
		nw.active.Add(-1)
		return fmt.Errorf("%w: %d -> %d", ErrUnreachable, n.id, to)
	}
	if dup {
		nw.stats.msgs.Add(1)
		nw.stats.methCounter(method).Add(1)
		nw.stats.addFaultDup()
		nw.active.Add(1)
		if !dest.inbox.push(env) {
			nw.active.Add(-1)
		}
	}
	return nil
}

// dispatch is the node's kernel network-message loop. One wakeup
// drains the entire pending queue in slice batches (instead of one
// channel receive — and one scheduler round trip — per message), then
// services each envelope in arrival order: one-way messages inline
// (preserving circuit ordering relative to later requests from the
// same peer), requests in their own goroutine because servicing may
// require nested remote service.
func (n *Node) dispatch() {
	var batch []*envelope
	for {
		select {
		case <-n.quit:
			// Settle accounting for anything still queued: those
			// envelopes are lost with the network, and the sender
			// already counted them in active.
			for _, env := range n.inbox.stop() {
				if env.kind == kindOneWay || env.tracked {
					n.nw.active.Add(-1)
				}
			}
			return
		case <-n.inbox.notify:
		}
		for {
			batch = n.inbox.swap(batch)
			if len(batch) == 0 {
				break
			}
			for i, env := range batch {
				n.deliver(env)
				batch[i] = nil
			}
		}
	}
}

// deliver services one inbound envelope on the dispatch pump.
func (n *Node) deliver(env *envelope) {
	if !n.nw.Connected(env.from, n.id) {
		// The circuit closed while the message was queued:
		// it is lost, and for a request the caller was
		// already failed by the circuit teardown.
		n.nw.stats.addDropped()
		if env.kind == kindOneWay || env.tracked {
			n.nw.active.Add(-1)
		}
		return
	}
	switch env.kind {
	case kindOneWay:
		if h := n.handler(env.method); h != nil {
			h(env.from, env.payload) // error unchecked by design: one-way: no reply path
		}
		n.nw.active.Add(-1)
	case kindRequest:
		if env.tracked {
			go func() { //locus:vet-allow goroutinejoin the matching active.Add(1) ran at the send site when the fault plane marked this delivery tracked; the deferred Add(-1) is its join half, drained by Quiesce
				defer n.nw.active.Add(-1)
				n.serve(env)
			}()
		} else {
			go n.serve(env) //locus:vet-allow goroutinejoin the requester's pending-exchange entry joins the reply, and circuit teardown fails the pending call, so nothing waits on this goroutine after close
		}
	}
}

func (n *Node) serve(env *envelope) {
	v, err := n.apply(env)

	if env.action == FaultCrashBeforeReply {
		// Scripted fault: the operation is applied (durably, if the
		// handler committed) but the callee dies before the response
		// goes out. Crash teardown fails the caller's pending exchange
		// with ErrCircuitClosed — the caller cannot know whether the
		// operation happened, which is the whole point.
		n.nw.Crash(n.id)
		return
	}

	// Deliver the response through the caller's pending registry; if the
	// circuit closed meanwhile the pending call was already failed and
	// removed, so the response is dropped, as on a real circuit.
	caller := n.nw.Node(env.from)
	if caller == nil {
		return
	}
	p := caller.takePending(env.callID)
	if p == nil {
		return
	}
	if env.action == FaultDropResponse {
		// The response went onto the wire and vanished; the caller's
		// circuit resets after its timeout. The handler ran — a retry
		// with the same seq is what the dedup table absorbs.
		timeout := int64(defaultTimeoutUs)
		if f := n.nw.faults.Load(); f != nil {
			timeout = f.timeoutUs()
		}
		n.nw.stats.addFaultDrop(timeout)
		p.fail(fmt.Errorf("%w: %s response %d -> %d", ErrTimeout, env.method, n.id, env.from))
		return
	}
	if !n.nw.Connected(n.id, p.from) {
		p.fail(ErrCircuitClosed)
		return
	}
	if err == nil {
		// Data-carrying responses (page transfers) are byte-metered; the
		// response header was charged with the request.
		if sz, ok := v.(Sizer); ok {
			bytes := int64(sz.WireSize())
			n.nw.stats.chargeResponse(bytes, bytes*n.nw.cost.PerKBCPU/1024)
		}
	}
	p.succeed(v, err)
}

// apply runs the handler for a request exactly once per (caller, seq):
// seq-tagged requests consult the callee-side dedup table, so a
// retransmission returns the cached outcome of the original execution
// (at-most-once), and a duplicate arriving mid-execution waits for the
// original instead of racing it.
func (n *Node) apply(env *envelope) (any, error) {
	h := n.handler(env.method)
	if h == nil {
		return nil, fmt.Errorf("%w: %s at site %d", ErrNoHandler, env.method, n.id)
	}
	if env.seq == 0 || n.nw.dedupOff.Load() {
		return h(env.from, env.payload)
	}
	n.dedupMu.Lock()
	tbl := n.dedup[env.from]
	if tbl == nil {
		tbl = make(map[int64]*dedupEntry)
		n.dedup[env.from] = tbl
	}
	if e, ok := tbl[env.seq]; ok {
		n.dedupMu.Unlock()
		<-e.done
		return e.value, e.err
	}
	e := &dedupEntry{done: make(chan struct{})}
	tbl[env.seq] = e
	if len(tbl) > dedupWindow {
		// Callers' retry budgets are bounded, so anything this far
		// behind the newest sequence number can never be retried.
		floor := env.seq - dedupWindow
		for s := range tbl {
			if s < floor {
				delete(tbl, s)
			}
		}
	}
	n.dedupMu.Unlock()
	e.value, e.err = h(env.from, env.payload)
	close(e.done)
	return e.value, e.err
}
