// Fault-injection plane for netsim.
//
// The LOCUS protocols are explicitly designed to survive a lossy
// transport without low-level acknowledgements: "a lost message closes
// the circuit" (§5.1), and every problem-oriented protocol in §2.3 must
// recover from the circuit reset that follows. The fault plane is the
// adversary that exercises those paths: a deterministic, seeded source
// of message drops, duplications, and bounded virtual-time delays, plus
// scripted fault points ("drop the 3rd commit request from site 2",
// "crash the callee after the handler ran but before the response was
// sent").
//
// Determinism: every probabilistic decision is a pure function of
// (seed, from, to, method, occurrence#), where occurrence# counts the
// sends between that (from, to, method) triple. Replaying the same
// workload against the same seed reproduces the same faults, message
// for message — which is what lets the chaos harness print a seed as a
// complete repro.
//
// A nil fault plane (the default) costs one atomic load per exchange;
// an enabled-but-zero-rate plane makes no decisions and injects
// nothing, so protocol message counts are bit-identical to a faultless
// network (pinned by internal/fs/protocolcost_test.go).
package netsim

import (
	"fmt"
	"sync"
)

// FaultAction is a scripted fault applied to one specific message.
type FaultAction int

const (
	// FaultNone is the zero action: no scripted fault.
	FaultNone FaultAction = iota
	// FaultDropRequest drops the request on the wire; the caller times
	// out with ErrTimeout and the virtual circuit resets.
	FaultDropRequest
	// FaultDropResponse delivers the request and runs the handler, then
	// drops the response; the caller times out with ErrTimeout. This is
	// the classic at-most-once hazard: the operation happened, the
	// caller cannot know it.
	FaultDropResponse
	// FaultDupRequest delivers the request twice (one extra wire
	// message). Without callee-side dedup the handler runs twice.
	FaultDupRequest
	// FaultCrashBeforeReply crashes the callee after the handler has
	// run (the operation is applied, durably if the handler committed)
	// but before the response is sent. The caller observes
	// ErrCircuitClosed from the crash teardown.
	FaultCrashBeforeReply
)

func (a FaultAction) String() string {
	switch a {
	case FaultNone:
		return "none"
	case FaultDropRequest:
		return "drop-request"
	case FaultDropResponse:
		return "drop-response"
	case FaultDupRequest:
		return "dup-request"
	case FaultCrashBeforeReply:
		return "crash-before-reply"
	}
	return fmt.Sprintf("FaultAction(%d)", int(a))
}

// AnySite is the wildcard for FaultPoint.From / FaultPoint.To.
// (Site ids are 1-based everywhere in this repo.)
const AnySite SiteID = 0

// FaultPoint scripts one fault at an exact protocol moment: the Nth
// send matching (From, To, Method) suffers Action. Each point keeps its
// own match counter and fires exactly once.
type FaultPoint struct {
	From   SiteID // AnySite matches any sender
	To     SiteID // AnySite matches any destination
	Method string // "" matches any method
	Nth    int    // 1-based; 0 means 1st
	Action FaultAction
}

func (p FaultPoint) matches(from, to SiteID, method string) bool {
	if p.From != AnySite && p.From != from {
		return false
	}
	if p.To != AnySite && p.To != to {
		return false
	}
	return p.Method == "" || p.Method == method
}

// FaultRates are probabilistic per-message fault probabilities. A
// message is first rolled for drop, then (if kept) for duplication,
// then for delay; each roll is an independent hash of the message
// coordinates.
type FaultRates struct {
	Drop       float64 // P(message lost); Call requests and responses roll independently
	Dup        float64 // P(request delivered twice)
	Delay      float64 // P(message delayed)
	DelayMaxUs int64   // delay is uniform in [1, DelayMaxUs] virtual µs
}

func (r FaultRates) zero() bool {
	return r.Drop == 0 && r.Dup == 0 && r.Delay == 0
}

// FaultConfig configures the fault plane.
type FaultConfig struct {
	Seed uint64
	// Rates applies to every directed link without an override.
	Rates FaultRates
	// Links overrides Rates for specific directed (from, to) pairs.
	Links map[[2]SiteID]FaultRates
	// Points are scripted one-shot faults, checked before the
	// probabilistic rates.
	Points []FaultPoint
	// TimeoutUs is the virtual time a caller burns discovering a lost
	// message (the circuit-reset timeout). Defaults to 5000µs.
	TimeoutUs int64
}

const defaultTimeoutUs = 5000

// Faults is an installed fault plane. All decision state (occurrence
// counters, per-point fire state) lives here, not in the Network, so
// tests can swap planes without disturbing traffic counters.
type Faults struct {
	cfg FaultConfig

	mu     sync.Mutex
	occ    map[occKey]uint64 // per-(from,to,method) send counter
	pocc   []int             // per-point match counters
	pfired []bool            // per-point fired flags
}

type occKey struct {
	from, to SiteID
	method   string
}

func newFaults(cfg FaultConfig) *Faults {
	if cfg.TimeoutUs <= 0 {
		cfg.TimeoutUs = defaultTimeoutUs
	}
	return &Faults{
		cfg:    cfg,
		occ:    make(map[occKey]uint64),
		pocc:   make([]int, len(cfg.Points)),
		pfired: make([]bool, len(cfg.Points)),
	}
}

// timeoutUs is the virtual cost of discovering a lost message.
func (f *Faults) timeoutUs() int64 { return f.cfg.TimeoutUs }

func (f *Faults) rates(from, to SiteID) FaultRates {
	if r, ok := f.cfg.Links[[2]SiteID{from, to}]; ok {
		return r
	}
	return f.cfg.Rates
}

// decision is the fault plan for one exchange, computed at send time
// and (for callee-side actions) stamped onto the envelope.
type decision struct {
	action  FaultAction // FaultNone for the common path
	delayUs int64       // >0: charge this much virtual latency
}

// decide rolls the fate of one send. It is the only entry point on the
// hot path and is called with the plane already known non-nil.
func (f *Faults) decide(from, to SiteID, method string, isCall bool) decision {
	f.mu.Lock()
	k := occKey{from, to, method}
	f.occ[k]++
	occ := f.occ[k]

	// Scripted points take priority and fire exactly once.
	for i := range f.cfg.Points {
		p := &f.cfg.Points[i]
		if f.pfired[i] || !p.matches(from, to, method) {
			continue
		}
		f.pocc[i]++
		nth := p.Nth
		if nth <= 0 {
			nth = 1
		}
		if f.pocc[i] == nth {
			f.pfired[i] = true
			f.mu.Unlock()
			return decision{action: p.Action}
		}
	}
	r := f.rates(from, to)
	f.mu.Unlock()

	if r.zero() {
		return decision{}
	}
	var d decision
	if roll(f.cfg.Seed, k, occ, 1) < r.Drop {
		d.action = FaultDropRequest
	} else if isCall && roll(f.cfg.Seed, k, occ, 2) < r.Drop {
		// The response is a wire message too; it rolls independently.
		d.action = FaultDropResponse
	} else if roll(f.cfg.Seed, k, occ, 3) < r.Dup {
		d.action = FaultDupRequest
	}
	if r.Delay > 0 && roll(f.cfg.Seed, k, occ, 4) < r.Delay {
		d.delayUs = 1 + int64(hash(f.cfg.Seed, k, occ, 5)%uint64(max64(r.DelayMaxUs, 1)))
	}
	return d
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// hash mixes the message coordinates with the seed (splitmix64
// finalizer). Pure function: same inputs, same fault, any goroutine
// interleaving.
func hash(seed uint64, k occKey, occ uint64, salt uint64) uint64 {
	h := seed
	h ^= uint64(k.from) * 0x9e3779b97f4a7c15
	h ^= uint64(k.to) * 0xbf58476d1ce4e5b9
	for i := 0; i < len(k.method); i++ {
		h = h*1099511628211 ^ uint64(k.method[i])
	}
	h ^= occ<<17 ^ salt<<1
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// roll maps the hash to [0, 1).
func roll(seed uint64, k occKey, occ uint64, salt uint64) float64 {
	return float64(hash(seed, k, occ, salt)>>11) / float64(1<<53)
}

// EnableFaults installs a fault plane built from cfg and returns it.
// Passing a zero-rate, point-free config arms the plane without
// injecting anything (the zero-overhead off position verified by the
// protocol-cost tests).
func (nw *Network) EnableFaults(cfg FaultConfig) *Faults {
	f := newFaults(cfg)
	nw.faults.Store(f)
	return f
}

// DisableFaults removes the fault plane entirely.
func (nw *Network) DisableFaults() { nw.faults.Store(nil) }

// SetDedup toggles the callee-side at-most-once dedup tables
// network-wide. They are on by default; chaos regression tests switch
// them off to prove the harness catches retried-mutation replay.
func (nw *Network) SetDedup(on bool) { nw.dedupOff.Store(!on) }

// SetTrace installs fn as the wire-send observer (nil uninstalls). fn
// runs once per remote exchange at send time, in issue order; the
// deterministic-replay tests capture wire schedules through it. fn must
// be fast and must not call back into the network.
func (nw *Network) SetTrace(fn func(from, to SiteID, method string)) {
	if fn == nil {
		nw.trace.Store(nil)
		return
	}
	nw.trace.Store(&fn)
}
