package netsim

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestScriptedDropRequestTimesOut(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var served atomic.Int64
	b.Handle("commit", func(SiteID, any) (any, error) {
		served.Add(1)
		return "ok", nil
	})
	nw.EnableFaults(FaultConfig{
		Points: []FaultPoint{{From: 1, To: 2, Method: "commit", Nth: 1, Action: FaultDropRequest}},
	})

	before := nw.Stats()
	clk0 := nw.Clock().NowUs()
	_, err := a.Call(2, "commit", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped request: err = %v, want ErrTimeout", err)
	}
	if errors.Is(err, ErrUnreachable) {
		t.Fatalf("ErrTimeout must be distinct from ErrUnreachable, got %v", err)
	}
	if served.Load() != 0 {
		t.Fatalf("handler ran %d times for a dropped request", served.Load())
	}
	d := nw.Stats().Sub(before)
	if d.MsgsDropped != 1 || d.CircuitResets != 1 {
		t.Fatalf("MsgsDropped=%d CircuitResets=%d, want 1/1", d.MsgsDropped, d.CircuitResets)
	}
	if d.Msgs != 1 {
		t.Fatalf("a dropped request charges %d messages, want 1 (sent, never answered)", d.Msgs)
	}
	if nw.Clock().NowUs() <= clk0 {
		t.Fatal("timeout did not advance virtual time")
	}
	// The point fired once; the retry goes through.
	if v, err := a.Call(2, "commit", nil); err != nil || v != "ok" {
		t.Fatalf("retry after scripted drop: v=%v err=%v", v, err)
	}
	// The pending table is not stranded.
	a.pendMu.Lock()
	n := len(a.pending)
	a.pendMu.Unlock()
	if n != 0 {
		t.Fatalf("caller pending table has %d stranded entries", n)
	}
}

func TestDropResponseDedupReturnsCachedOutcome(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var served atomic.Int64
	b.Handle("commit", func(SiteID, any) (any, error) {
		served.Add(1)
		return "applied", nil
	})
	nw.EnableFaults(FaultConfig{
		Points: []FaultPoint{{From: 1, To: 2, Method: "commit", Nth: 1, Action: FaultDropResponse}},
	})

	seq := a.NextSeq()
	_, err := a.CallSeq(2, "commit", nil, seq)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped response: err = %v, want ErrTimeout", err)
	}
	if served.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1 (applied before response loss)", served.Load())
	}
	// Retry with the same seq: at-most-once — the cached response comes
	// back and the handler does not run again.
	v, err := a.CallSeq(2, "commit", nil, seq)
	if err != nil || v != "applied" {
		t.Fatalf("retry: v=%v err=%v, want cached 'applied'", v, err)
	}
	if served.Load() != 1 {
		t.Fatalf("handler ran %d times after retry, want 1 (dedup)", served.Load())
	}
}

func TestDedupOffReplaysMutation(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var served atomic.Int64
	b.Handle("commit", func(SiteID, any) (any, error) {
		served.Add(1)
		return nil, nil
	})
	nw.EnableFaults(FaultConfig{
		Points: []FaultPoint{{Method: "commit", Nth: 1, Action: FaultDropResponse}},
	})
	nw.SetDedup(false)

	seq := a.NextSeq()
	if _, err := a.CallSeq(2, "commit", nil, seq); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if _, err := a.CallSeq(2, "commit", nil, seq); err != nil {
		t.Fatal(err)
	}
	if served.Load() != 2 {
		t.Fatalf("with dedup off the retry must re-run the handler: ran %d times, want 2", served.Load())
	}
}

func TestDupRequestDedupAbsorbsDuplicate(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var served atomic.Int64
	b.Handle("mkdir", func(SiteID, any) (any, error) {
		served.Add(1)
		return nil, nil
	})
	nw.EnableFaults(FaultConfig{
		Points: []FaultPoint{{Method: "mkdir", Nth: 1, Action: FaultDupRequest}},
	})

	before := nw.Stats()
	if _, err := a.CallSeq(2, "mkdir", nil, a.NextSeq()); err != nil {
		t.Fatal(err)
	}
	nw.Quiesce()
	d := nw.Stats().Sub(before)
	if d.MsgsDuped != 1 {
		t.Fatalf("MsgsDuped = %d, want 1", d.MsgsDuped)
	}
	if d.Msgs != 3 {
		t.Fatalf("duplicated call charged %d messages, want 3 (2 requests + response)", d.Msgs)
	}
	if served.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1 (dedup absorbed the duplicate)", served.Load())
	}
}

func TestDupRequestWithoutSeqRunsTwice(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var served atomic.Int64
	b.Handle("read", func(SiteID, any) (any, error) {
		served.Add(1)
		return nil, nil
	})
	nw.EnableFaults(FaultConfig{
		Points: []FaultPoint{{Method: "read", Nth: 1, Action: FaultDupRequest}},
	})
	if _, err := a.Call(2, "read", nil); err != nil {
		t.Fatal(err)
	}
	nw.Quiesce()
	if served.Load() != 2 {
		t.Fatalf("seq-less duplicate ran handler %d times, want 2 (idempotent reads are exempt from dedup)", served.Load())
	}
}

// TestCrashBeforeReplyMidCall is the white-box mid-call crash test: a
// scripted fault point crashes the callee after the request is applied
// but before the response is sent. The caller must get a typed error
// (ErrCircuitClosed — it cannot know whether the operation happened)
// and its pending table must not be stranded.
func TestCrashBeforeReplyMidCall(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var applied atomic.Int64
	b.Handle("commit", func(SiteID, any) (any, error) {
		applied.Add(1)
		return "ok", nil
	})
	nw.EnableFaults(FaultConfig{
		Points: []FaultPoint{{From: 1, To: 2, Method: "commit", Nth: 1, Action: FaultCrashBeforeReply}},
	})

	_, err := a.Call(2, "commit", nil)
	if !errors.Is(err, ErrCircuitClosed) {
		t.Fatalf("mid-call crash: err = %v, want ErrCircuitClosed", err)
	}
	if applied.Load() != 1 {
		t.Fatalf("operation applied %d times, want 1 (crash is after apply)", applied.Load())
	}
	if nw.Up(2) {
		t.Fatal("callee should be down after FaultCrashBeforeReply")
	}
	a.pendMu.Lock()
	stranded := len(a.pending)
	a.pendMu.Unlock()
	if stranded != 0 {
		t.Fatalf("caller pending table stranded %d entries after mid-call crash", stranded)
	}
	// Restarted callee lost its dedup table (volatile state).
	nw.Restart(2)
	b.dedupMu.Lock()
	entries := len(b.dedup)
	b.dedupMu.Unlock()
	if entries != 0 {
		t.Fatalf("dedup table survived a crash: %d caller tables", entries)
	}
}

func TestErrCrashedDistinctFromUnreachable(t *testing.T) {
	t.Parallel()
	nw, a, _ := twoSites(t)
	nw.Crash(2)
	_, err := a.Call(2, "op", nil)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("call to crashed site: err = %v, want ErrCrashed", err)
	}
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("ErrCrashed must wrap ErrUnreachable for existing call sites, got %v", err)
	}
	if err := a.Cast(2, "op", nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("cast to crashed site: err = %v, want ErrCrashed", err)
	}

	nw.Restart(2)
	nw.SetLink(1, 2, false)
	_, err = a.Call(2, "op", nil)
	if !errors.Is(err, ErrUnreachable) || errors.Is(err, ErrCrashed) {
		t.Fatalf("call across cut link: err = %v, want plain ErrUnreachable (not ErrCrashed)", err)
	}
}

func TestCastDropReturnsTimeout(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var served atomic.Int64
	b.Handle("write", func(SiteID, any) (any, error) {
		served.Add(1)
		return nil, nil
	})
	nw.EnableFaults(FaultConfig{
		Points: []FaultPoint{{Method: "write", Nth: 2, Action: FaultDropRequest}},
	})
	if err := a.Cast(2, "write", nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Cast(2, "write", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("2nd cast: err = %v, want ErrTimeout", err)
	}
	nw.Quiesce()
	if served.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", served.Load())
	}
}

func TestProbabilisticFaultsAreDeterministic(t *testing.T) {
	t.Parallel()
	run := func(seed uint64) Snapshot {
		nw := New(DefaultCosts())
		defer nw.Close()
		a := nw.AddSite(1)
		b := nw.AddSite(2)
		b.Handle("op", func(SiteID, any) (any, error) { return nil, nil })
		nw.EnableFaults(FaultConfig{
			Seed:  seed,
			Rates: FaultRates{Drop: 0.2, Dup: 0.1, Delay: 0.3, DelayMaxUs: 500},
		})
		for i := 0; i < 200; i++ {
			a.Call(2, "op", nil)                 //nolint:errcheck // fault outcomes are the data
			a.Cast(2, "op", nil)                 //nolint:errcheck
			a.CallSeq(2, "op", nil, a.NextSeq()) //nolint:errcheck
		}
		nw.Quiesce()
		return nw.Stats()
	}
	s1, s2 := run(42), run(42)
	if s1.MsgsDropped != s2.MsgsDropped || s1.MsgsDuped != s2.MsgsDuped ||
		s1.MsgsDelayed != s2.MsgsDelayed || s1.Msgs != s2.Msgs {
		t.Fatalf("same seed, different faults: %+v vs %+v", s1, s2)
	}
	if s1.MsgsDropped == 0 || s1.MsgsDuped == 0 || s1.MsgsDelayed == 0 {
		t.Fatalf("rates 0.2/0.1/0.3 over 600 sends produced no faults: %+v", s1)
	}
	s3 := run(43)
	if s3.MsgsDropped == s1.MsgsDropped && s3.MsgsDuped == s1.MsgsDuped && s3.MsgsDelayed == s1.MsgsDelayed {
		t.Fatal("different seeds produced identical fault pattern (suspicious)")
	}
}

func TestPerLinkRatesOverrideGlobal(t *testing.T) {
	t.Parallel()
	nw := New(DefaultCosts())
	t.Cleanup(nw.Close)
	a := nw.AddSite(1)
	b := nw.AddSite(2)
	c := nw.AddSite(3)
	h := func(SiteID, any) (any, error) { return nil, nil }
	b.Handle("op", h)
	c.Handle("op", h)
	// Global loss is total, but the 1->3 link is overridden clean.
	nw.EnableFaults(FaultConfig{
		Seed:  7,
		Rates: FaultRates{Drop: 1},
		Links: map[[2]SiteID]FaultRates{{1, 3}: {}},
	})
	if _, err := a.Call(2, "op", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("1->2 should drop: %v", err)
	}
	if _, err := a.Call(3, "op", nil); err != nil {
		t.Fatalf("1->3 is overridden clean: %v", err)
	}
}

func TestDisabledFaultPlaneIsZeroOverhead(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	b.Handle("op", func(SiteID, any) (any, error) { return nil, nil })

	baseline := nw.Stats()
	if _, err := a.CallSeq(2, "op", nil, a.NextSeq()); err != nil {
		t.Fatal(err)
	}
	noPlane := nw.Stats().Sub(baseline)

	// Armed but zero-rate, point-free: message accounting must be
	// bit-identical, and no fault counters move.
	nw.EnableFaults(FaultConfig{Seed: 99})
	before := nw.Stats()
	if _, err := a.CallSeq(2, "op", nil, a.NextSeq()); err != nil {
		t.Fatal(err)
	}
	armed := nw.Stats().Sub(before)
	if armed.Msgs != noPlane.Msgs || armed.Bytes != noPlane.Bytes || armed.ByMethod["op"] != noPlane.ByMethod["op"] {
		t.Fatalf("armed-but-disabled plane changed accounting: %+v vs %+v", armed, noPlane)
	}
	if armed.MsgsDropped != 0 || armed.MsgsDuped != 0 || armed.MsgsDelayed != 0 || armed.CircuitResets != 0 {
		t.Fatalf("disabled plane injected faults: %+v", armed)
	}
}

func TestTeardownCountsCircuitResets(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	b.Handle("slow", func(SiteID, any) (any, error) {
		close(entered)
		<-release
		return nil, nil
	})
	before := nw.Stats()
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(2, "slow", nil)
		done <- err
	}()
	<-entered
	nw.SetLink(1, 2, false)
	if err := <-done; !errors.Is(err, ErrCircuitClosed) {
		t.Fatalf("err = %v, want ErrCircuitClosed", err)
	}
	close(release)
	if d := nw.Stats().Sub(before); d.CircuitResets != 1 {
		t.Fatalf("CircuitResets = %d, want 1", d.CircuitResets)
	}
}
