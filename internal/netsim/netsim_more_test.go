package netsim

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestQuiesceWaitsForCasts(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	var mu sync.Mutex
	handled := 0
	b.Handle("slowcast", func(SiteID, any) (any, error) {
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		handled++
		mu.Unlock()
		return nil, nil
	})
	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Cast(2, "slowcast", nil); err != nil {
			t.Fatal(err)
		}
	}
	nw.Quiesce()
	mu.Lock()
	defer mu.Unlock()
	if handled != n {
		t.Fatalf("Quiesce returned with %d/%d casts handled", handled, n)
	}
}

func TestCastToUnreachableFailsImmediately(t *testing.T) {
	t.Parallel()
	nw, a, _ := twoSites(t)
	nw.SetLink(1, 2, false)
	if err := a.Cast(2, "x", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestCallFromCrashedSiteFails(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	b.Handle("op", func(SiteID, any) (any, error) { return nil, nil })
	nw.Crash(1)
	if _, err := a.Call(2, "op", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call from crashed site: %v", err)
	}
	// Even a self-call fails while down.
	a.Handle("self", func(SiteID, any) (any, error) { return nil, nil })
	if _, err := a.Call(1, "self", nil); !errors.Is(err, ErrSiteDown) {
		t.Fatalf("self call while down: %v", err)
	}
}

func TestHandlerErrorPropagatesToCaller(t *testing.T) {
	t.Parallel()
	sentinel := errors.New("application failure")
	_, a, b := twoSites(t)
	b.Handle("fail", func(SiteID, any) (any, error) { return nil, sentinel })
	_, err := a.Call(2, "fail", nil)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the handler's error value", err)
	}
}

func TestStatsByMethodAndBytes(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	b.Handle("m1", func(SiteID, any) (any, error) { return nil, nil })
	b.Handle("m2", func(SiteID, any) (any, error) { return nil, nil })
	before := nw.Stats()
	for i := 0; i < 3; i++ {
		if _, err := a.Call(2, "m1", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Cast(2, "m2", nil); err != nil {
		t.Fatal(err)
	}
	nw.Quiesce()
	d := nw.Stats().Sub(before)
	if d.ByMethod["m1"] != 6 || d.ByMethod["m2"] != 1 {
		t.Fatalf("ByMethod = %v", d.ByMethod)
	}
	if d.Calls != 3 || d.Casts != 1 {
		t.Fatalf("calls=%d casts=%d", d.Calls, d.Casts)
	}
	if d.Bytes <= 0 || d.CPUUs <= 0 {
		t.Fatalf("bytes=%d cpu=%d", d.Bytes, d.CPUUs)
	}
}

func TestDroppedMessagesCounted(t *testing.T) {
	t.Parallel()
	nw, a, b := twoSites(t)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	b.Handle("block", func(SiteID, any) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil, nil
	})
	// Queue a cast behind a blocking request so it is still in the
	// inbox when the circuit breaks.
	go a.Call(2, "block", nil) //nolint:errcheck // will fail with circuit closed
	<-started
	if err := a.Cast(2, "late", nil); err != nil {
		t.Fatal(err)
	}
	nw.SetLink(1, 2, false)
	close(release)
	nw.Quiesce()
	if d := nw.Stats(); d.Dropped == 0 {
		t.Fatalf("expected dropped messages, got %+v", d)
	}
}

func TestRestartIdempotentAndCrashIdempotent(t *testing.T) {
	t.Parallel()
	nw, _, _ := twoSites(t)
	nw.Crash(2)
	nw.Crash(2) // no panic
	nw.Restart(2)
	nw.Restart(2) // no panic
	if !nw.Up(2) {
		t.Fatal("site 2 should be up")
	}
}

func TestConnectedSemantics(t *testing.T) {
	t.Parallel()
	nw, _, _ := twoSites(t)
	if !nw.Connected(1, 1) {
		t.Fatal("self-connectivity while up")
	}
	nw.Crash(1)
	if nw.Connected(1, 1) || nw.Connected(1, 2) {
		t.Fatal("crashed site must not be connected to anything")
	}
}
