package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/lint/invariant"
)

// Page-buffer pool. Every data page in the system is exactly PageSize
// bytes, and the simulator's hot paths (WritePage shadow allocation,
// ReadPage copies served to local readers) used to allocate a fresh
// 4 KB slice per call — the dominant allocation source under a
// million-op workload. The pool recycles those buffers.
//
// Ownership rules (the pool is safe only because these are narrow):
//
//   - GetPageBuf returns a zeroed PageSize buffer owned exclusively by
//     the caller.
//   - PutPageBuf may be called only by the buffer's exclusive owner,
//     after which the buffer must never be touched again. Callers that
//     cannot prove exclusive ownership simply don't Put — the buffer
//     falls to the garbage collector, which is always correct.
//   - Buffers that have been aliased across the network (zero-copy
//     page serves, US cache entries) are never Put; the container
//     tracks those via the shared-page set (see ReadPageShared).
//
// Under -tags locusinvariants every buffer is filled with a poison
// pattern on Put and checked on Get, so a write-after-free (a stale
// owner scribbling on a recycled buffer) panics instead of silently
// corrupting an unrelated page.

// pagePoisonByte fills pooled buffers between Put and Get under the
// locusinvariants build tag.
const pagePoisonByte = 0xDB

// pagePool stores *[PageSize]byte (not []byte) so Put/Get don't
// allocate a slice header per interface conversion. New hands back a
// poisoned page under invariants so Get's check holds uniformly.
var pagePool = sync.Pool{New: func() any { return newPoisonedPage() }}

// Pool hit accounting (profiling and tests; monotonically increasing).
var (
	pagePoolGets atomic.Int64
	pagePoolPuts atomic.Int64
	pagePoolNews atomic.Int64
)

func newPoisonedPage() *[PageSize]byte {
	pagePoolNews.Add(1)
	p := new([PageSize]byte)
	if invariant.Enabled {
		for i := range p {
			p[i] = pagePoisonByte
		}
	}
	return p
}

// GetPageBuf returns a zeroed PageSize-byte buffer from the pool. The
// caller owns it exclusively until PutPageBuf (or forever, if it never
// Puts).
func GetPageBuf() []byte {
	pagePoolGets.Add(1)
	p := pagePool.Get().(*[PageSize]byte)
	if invariant.Enabled {
		for i, b := range p {
			invariant.Assertf(b == pagePoisonByte,
				"storage: pooled page buffer corrupted at byte %d (0x%02x): write-after-free on a recycled page", i, b)
		}
		*p = [PageSize]byte{}
	}
	return p[:]
}

// PutPageBuf returns an exclusively owned page buffer to the pool. The
// buffer must be exactly PageSize bytes (anything else is quietly left
// to the GC) and must not be used after the call.
func PutPageBuf(buf []byte) {
	if len(buf) != PageSize || cap(buf) < PageSize {
		return
	}
	pagePoolPuts.Add(1)
	p := (*[PageSize]byte)(buf)
	if invariant.Enabled {
		for i := range p {
			p[i] = pagePoisonByte
		}
	} else {
		*p = [PageSize]byte{}
	}
	pagePool.Put(p)
}

// PagePoolStats reports cumulative pool traffic: buffers handed out,
// buffers returned, and fresh allocations (pool misses). gets-news is
// the number of recycled hand-outs.
func PagePoolStats() (gets, puts, news int64) {
	return pagePoolGets.Load(), pagePoolPuts.Load(), pagePoolNews.Load()
}
