// Package storage simulates the per-site disk substrate of LOCUS: the
// physical containers (packs) that store subsets of a logical
// filegroup's files, their disk inodes and data pages, and the
// shadow-page mechanism that makes file commit atomic (§2.3.6 of the
// paper).
//
// A container is deliberately dumb: it knows nothing about the network,
// replication, or synchronization. Those live in internal/fs. What the
// container guarantees is exactly what the paper's commit mechanism
// needs:
//
//   - data pages are immutable once written (writes allocate new
//     physical pages — shadow pages);
//   - the only mutation of durable state is CommitInode, which
//     atomically replaces a file's disk inode (and releases any pages
//     no longer referenced);
//   - a crash loses nothing that was committed and everything that was
//     not.
//
// The inode number space of a filegroup is partitioned across its
// containers so every pack can allocate inodes while partitioned
// (§2.3.7: "the entire inode space of a filegroup is partitioned so
// that each physical container for the filegroup has a collection of
// inode numbers that it can allocate").
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/lint/invariant"
	"repro/internal/vclock"
)

// FilegroupID names a logical filegroup (the paper's term for a Unix
// filesystem).
type FilegroupID int

// InodeNum is a file descriptor (inode) number within a filegroup. The
// pair <FilegroupID, InodeNum> is a file's globally unique low-level
// name (§2.2.2).
type InodeNum int64

// PageNo is a logical page index within a file.
type PageNo int32

// PhysPage is a physical page id within one container.
type PhysPage int64

// PageSize is the size of one data page in bytes (VAX-era 4 KB).
const PageSize = 4096

// FileID is the globally unique low-level name of a file:
// <logical filegroup number, inode number>.
type FileID struct {
	FG    FilegroupID
	Inode InodeNum
}

func (f FileID) String() string { return fmt.Sprintf("<%d,%d>", f.FG, f.Inode) }

// FileType tags every file; the recovery software uses the type to pick
// a merge strategy (§4.3).
type FileType int

const (
	// TypeRegular is an untyped data file: conflicts are reported to
	// the owner, not auto-merged.
	TypeRegular FileType = iota
	// TypeDirectory is a naming-catalog directory: auto-merged.
	TypeDirectory
	// TypeMailbox is a user mailbox: auto-merged after directories.
	TypeMailbox
	// TypeDatabase is a database file: conflicts are reported up to a
	// recovery/merge manager rather than to the user.
	TypeDatabase
	// TypeHiddenDir is a hidden directory used for context-sensitive
	// (per machine type) naming (§2.4.1).
	TypeHiddenDir
	// TypeDevice is a device special file.
	TypeDevice
	// TypePipe is a named pipe (FIFO).
	TypePipe
)

// String returns the type name used in listings and conflict mail.
func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDirectory:
		return "directory"
	case TypeMailbox:
		return "mailbox"
	case TypeDatabase:
		return "database"
	case TypeHiddenDir:
		return "hidden-directory"
	case TypeDevice:
		return "device"
	case TypePipe:
		return "pipe"
	default:
		return fmt.Sprintf("FileType(%d)", int(t))
	}
}

// Errors returned by the container.
var (
	ErrNoInode      = errors.New("storage: no such inode")
	ErrNoPage       = errors.New("storage: no such page")
	ErrInodeSpace   = errors.New("storage: inode allocation space exhausted")
	ErrInodeExists  = errors.New("storage: inode already exists")
	ErrOutOfRange   = errors.New("storage: inode outside this container's allocation range")
	ErrFileDeleted  = errors.New("storage: file is deleted")
	ErrBadPageIndex = errors.New("storage: logical page index out of range")
	// ErrBadRange reports a container configured with an invalid inode
	// allocation range.
	ErrBadRange = errors.New("storage: bad inode allocation range")
	// ErrDupContainer reports a second container registered for the same
	// filegroup at one site (LOCUS packs are one-per-site).
	ErrDupContainer = errors.New("storage: duplicate container for filegroup")
)

// Inode is a file descriptor. The container hands out deep copies; the
// filesystem layer keeps an in-core copy that accumulates shadow pages
// and is installed atomically by CommitInode.
type Inode struct {
	Num   InodeNum
	Type  FileType
	Size  int64
	Pages []PhysPage // logical page -> physical page, PhysPageNil if hole
	// VV is the copy's version vector; bumped on every commit at the
	// committing site.
	VV vclock.VV
	// Owner is the file owner (conflict mail recipient).
	Owner string
	// Mode holds Unix permission bits.
	Mode uint16
	// Nlink counts directory links to the file.
	Nlink int
	// Sites lists the packs intended to store a copy of this file (the
	// CSS "has a list of packs which store the file" — §2.3.3). It is
	// part of the disk inode and travels with every copy.
	Sites []vclock.SiteID
	// Deleted marks a delete tombstone: the inode is retained until
	// every pack storing the file has seen the delete (§2.3.7).
	Deleted bool
	// Conflict marks the copy as in unresolved version conflict;
	// normal opens fail until reconciliation or manual resolution
	// (§4.6).
	Conflict bool
	// Annotations carries small typed metadata (e.g. hidden-directory
	// context names, device ids). Kept string->string to stay simple.
	Annotations map[string]string
}

// PhysPageNil marks a hole (unallocated logical page).
const PhysPageNil PhysPage = 0

// NPages returns the number of logical pages the file occupies.
func (ino *Inode) NPages() int { return len(ino.Pages) }

// Clone returns a deep copy of the inode.
func (ino *Inode) Clone() *Inode {
	c := *ino
	c.Pages = append([]PhysPage(nil), ino.Pages...)
	c.Sites = append([]vclock.SiteID(nil), ino.Sites...)
	c.VV = ino.VV.Copy()
	if ino.Annotations != nil {
		c.Annotations = make(map[string]string, len(ino.Annotations))
		for k, v := range ino.Annotations {
			c.Annotations[k] = v
		}
	}
	return &c
}

// Meter abstracts the simulated cost accounting so storage can charge
// disk and CPU time without importing the network package's concrete
// types. A nil meter is valid and charges nothing.
type Meter interface {
	AddCPU(us int64)
	AddDisk(us int64)
}

// Costs are the simulated costs of container primitives.
type Costs struct {
	DiskUs  int64 // one page transfer to/from the storage medium
	PageCPU int64 // buffer management + copy CPU for one page
}

// Container is one physical container of a logical filegroup stored at
// one site. It stores a subset of the filegroup's files (§2.2.2: "any
// physical container is incomplete; it stores only a subset of the
// files in the subtree to which it corresponds").
type Container struct {
	mu sync.Mutex

	fg   FilegroupID
	site vclock.SiteID

	inodes map[InodeNum]*Inode
	pages  map[PhysPage][]byte
	// shared marks pages whose internal buffer has been handed out by
	// ReadPageShared (zero-copy network serve). A shared buffer may be
	// aliased by a remote page cache, so freeing the page must drop the
	// buffer to the garbage collector instead of recycling it through
	// the page pool — recycling would let a new writer scribble over
	// bytes a concurrent reader is still copying.
	shared map[PhysPage]bool
	// reserved tracks numbers handed out by AllocInode but not yet
	// committed, so reallocation never double-issues a live number.
	reserved map[InodeNum]bool

	nextPage PhysPage

	// Partitioned inode allocation range [lo, hi], inclusive.
	lo, hi, next InodeNum

	meter Meter
	costs Costs
}

// NewContainer creates a container for filegroup fg at the given site
// with the inode allocation range [lo, hi].
func NewContainer(fg FilegroupID, site vclock.SiteID, lo, hi InodeNum, meter Meter, costs Costs) (*Container, error) {
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("%w: [%d,%d] for filegroup %d at site %d", ErrBadRange, lo, hi, fg, site)
	}
	return &Container{
		fg:       fg,
		site:     site,
		inodes:   make(map[InodeNum]*Inode),
		pages:    make(map[PhysPage][]byte),
		shared:   make(map[PhysPage]bool),
		reserved: make(map[InodeNum]bool),
		// PhysPage 0 is PhysPageNil; start allocation at 1.
		nextPage: 1,
		lo:       lo, hi: hi, next: lo,
		meter: meter,
		costs: costs,
	}, nil
}

// MustContainer is NewContainer panicking on a bad range (test and
// benchmark setup with literal, known-good ranges).
func MustContainer(fg FilegroupID, site vclock.SiteID, lo, hi InodeNum, meter Meter, costs Costs) *Container {
	c, err := NewContainer(fg, site, lo, hi, meter, costs)
	if err != nil {
		panic(err)
	}
	return c
}

// FG returns the filegroup this container belongs to.
func (c *Container) FG() FilegroupID { return c.fg }

// Site returns the site storing this container.
func (c *Container) Site() vclock.SiteID { return c.site }

// InodeRange returns the container's private inode allocation range.
func (c *Container) InodeRange() (lo, hi InodeNum) { return c.lo, c.hi }

func (c *Container) chargeDisk() {
	if c.meter != nil {
		c.meter.AddDisk(c.costs.DiskUs)
		c.meter.AddCPU(c.costs.PageCPU)
	}
}

// AllocInode allocates a fresh inode number from this container's
// private range, reusing numbers whose files were dropped ("the inode
// can be reallocated by the site which has control of that inode" —
// §2.3.7). The inode is not durable until CommitInode.
func (c *Container) AllocInode() (InodeNum, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	span := int64(c.hi - c.lo + 1)
	for i := int64(0); i < span; i++ {
		n := c.lo + InodeNum((int64(c.next-c.lo)+i)%span)
		_, used := c.inodes[n]
		if !used && !c.reserved[n] {
			c.reserved[n] = true
			c.next = n + 1
			if c.next > c.hi {
				c.next = c.lo
			}
			return n, nil
		}
	}
	return 0, fmt.Errorf("%w: filegroup %d site %d", ErrInodeSpace, c.fg, c.site)
}

// Owns reports whether the inode number lies in this container's
// allocation range, i.e. whether this pack is "the site which has
// control of that inode" for reallocation purposes (§2.3.7).
func (c *Container) Owns(n InodeNum) bool { return n >= c.lo && n <= c.hi }

// HasInode reports whether the container stores a copy of the file
// (including delete tombstones).
func (c *Container) HasInode(n InodeNum) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.inodes[n]
	return ok
}

// GetInode returns a deep copy of the file's disk inode.
func (c *Container) GetInode(n InodeNum) (*Inode, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ino, ok := c.inodes[n]
	if !ok {
		return nil, fmt.Errorf("%w: %d in filegroup %d at site %d", ErrNoInode, n, c.fg, c.site)
	}
	return ino.Clone(), nil
}

// ListInodes returns the numbers of all stored inodes, ascending.
func (c *Container) ListInodes() []InodeNum {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]InodeNum, 0, len(c.inodes))
	for n := range c.inodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReadPage returns the contents of a physical page. The returned slice
// is a copy (pages on disk are immutable), drawn from the page pool:
// the caller owns it exclusively and may release it with PutPageBuf
// once done.
func (c *Container) ReadPage(p PhysPage) ([]byte, error) {
	c.mu.Lock()
	data, ok := c.pages[p]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d at site %d", ErrNoPage, p, c.site)
	}
	c.chargeDisk()
	out := GetPageBuf()
	copy(out, data)
	return out[:len(data)], nil
}

// ReadPageShared returns the container's internal buffer for a physical
// page without copying. The buffer is immutable (shadow-page writes
// allocate new physical pages, never touch old ones) and remains valid
// even after the page is freed: serving it marks the page shared, and
// freeing a shared page drops its buffer to the GC instead of recycling
// it. Used by the network serve path so a remote page read costs zero
// allocations and zero copies at the storage site.
func (c *Container) ReadPageShared(p PhysPage) ([]byte, error) {
	c.mu.Lock()
	data, ok := c.pages[p]
	if ok {
		c.shared[p] = true
	}
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d at site %d", ErrNoPage, p, c.site)
	}
	c.chargeDisk()
	return data, nil
}

// releasePageLocked frees one physical page, recycling its buffer
// through the page pool unless the buffer has been shared out by
// ReadPageShared (then it must survive for any aliasing reader and is
// left to the GC). Caller holds c.mu.
func (c *Container) releasePageLocked(p PhysPage) {
	if p == PhysPageNil {
		return
	}
	buf, ok := c.pages[p]
	if !ok {
		return
	}
	delete(c.pages, p)
	if c.shared[p] {
		delete(c.shared, p)
		return
	}
	PutPageBuf(buf)
}

// ReadLogicalPage reads logical page pn of the committed file ino.
// Holes read as zero pages.
func (c *Container) ReadLogicalPage(n InodeNum, pn PageNo) ([]byte, error) {
	c.mu.Lock()
	ino, ok := c.inodes[n]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrNoInode, n)
	}
	if int(pn) < 0 || int(pn) >= len(ino.Pages) {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: page %d of %d-page file %d", ErrBadPageIndex, pn, len(ino.Pages), n)
	}
	pp := ino.Pages[pn]
	c.mu.Unlock()
	if pp == PhysPageNil {
		c.chargeDisk()
		return GetPageBuf(), nil
	}
	return c.ReadPage(pp)
}

// WritePage writes data to a freshly allocated shadow page and returns
// its physical page id. The page becomes reachable (and protected from
// reclamation) only when an inode referencing it is committed; until
// then it can be released with FreePages on abort.
func (c *Container) WritePage(data []byte) (PhysPage, error) {
	if len(data) > PageSize {
		return 0, fmt.Errorf("storage: page data %d bytes exceeds page size %d", len(data), PageSize)
	}
	buf := GetPageBuf()
	copy(buf, data)
	c.mu.Lock()
	p := c.nextPage
	c.nextPage++
	c.pages[p] = buf
	c.mu.Unlock()
	c.chargeDisk()
	return p, nil
}

// FreePages releases physical pages (used on abort for shadow pages and
// by CommitInode for superseded pages). Freeing PhysPageNil or an
// already-free page is a no-op.
func (c *Container) FreePages(pp ...PhysPage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if invariant.Enabled {
		// A shadow page becomes protected the moment a committed inode
		// references it; freeing such a page would corrupt a committed
		// version (§2.3.6's atomicity rests on this).
		referenced := c.referencedPagesLocked()
		for _, p := range pp {
			invariant.Assertf(p == PhysPageNil || !referenced[p],
				"storage: freeing page %d still referenced by a committed inode (fg %d site %d)", p, c.fg, c.site)
		}
	}
	for _, p := range pp {
		c.releasePageLocked(p)
	}
}

// referencedPagesLocked returns the set of physical pages referenced by
// any committed inode. Caller holds c.mu. Used only by invariant
// checks.
func (c *Container) referencedPagesLocked() map[PhysPage]bool {
	ref := make(map[PhysPage]bool)
	for _, ino := range c.inodes {
		for _, p := range ino.Pages {
			if p != PhysPageNil {
				ref[p] = true
			}
		}
	}
	return ref
}

// CommitInode atomically installs the in-core inode as the file's disk
// inode: "The atomic commit operation consists merely of moving the
// incore inode information to the disk inode" (§2.3.6). Pages
// referenced by the previous disk inode but not by the new one are
// released. The container stores a deep copy, so the caller may keep
// mutating its in-core inode afterwards.
// Ownership (Owns) governs only allocation, not storage: a replica of a
// file created at another pack is committed here with the same inode
// number, so CommitInode accepts any inode number.
func (c *Container) CommitInode(ino *Inode) error {
	clone := ino.Clone()
	c.mu.Lock()
	defer c.mu.Unlock()
	if invariant.Enabled {
		// The inode being installed must reference only allocated pages:
		// the commit "renames" shadow pages into the file, it never
		// conjures them (§2.3.6).
		for i, p := range clone.Pages {
			_, ok := c.pages[p]
			invariant.Assertf(p == PhysPageNil || ok,
				"storage: committing inode %d with unallocated page %d at logical index %d (fg %d site %d)",
				clone.Num, p, i, c.fg, c.site)
		}
	}
	old := c.inodes[ino.Num]
	c.inodes[ino.Num] = clone
	delete(c.reserved, ino.Num)
	if old != nil {
		kept := make(map[PhysPage]bool, len(clone.Pages))
		for _, p := range clone.Pages {
			kept[p] = true
		}
		for _, p := range old.Pages {
			if p != PhysPageNil && !kept[p] {
				c.releasePageLocked(p)
			}
		}
	}
	if c.meter != nil {
		// One disk write for the inode itself.
		c.meter.AddDisk(c.costs.DiskUs)
		c.meter.AddCPU(c.costs.PageCPU / 4)
	}
	return nil
}

// DropInode removes an inode and all its pages entirely (used when a
// delete tombstone has been seen by all packs and the inode number is
// reallocated, and by tests).
func (c *Container) DropInode(n InodeNum) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ino, ok := c.inodes[n]
	if !ok {
		return
	}
	for _, p := range ino.Pages {
		c.releasePageLocked(p)
	}
	delete(c.inodes, n)
	delete(c.reserved, n)
}

// PageCount returns the number of allocated physical pages (for leak
// checks in tests).
func (c *Container) PageCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pages)
}

// Store is all the containers a single site hosts, keyed by filegroup.
type Store struct {
	mu         sync.Mutex
	site       vclock.SiteID
	containers map[FilegroupID]*Container
}

// NewStore creates an empty store for a site.
func NewStore(site vclock.SiteID) *Store {
	return &Store{site: site, containers: make(map[FilegroupID]*Container)}
}

// Site returns the owning site.
func (s *Store) Site() vclock.SiteID { return s.site }

// AddContainer registers a container for a filegroup. One container per
// filegroup per site, as in LOCUS packs.
func (s *Store) AddContainer(c *Container) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.containers[c.fg]; dup {
		return fmt.Errorf("%w: %d at site %d", ErrDupContainer, c.fg, s.site)
	}
	s.containers[c.fg] = c
	return nil
}

// Container returns the site's container for a filegroup, or nil if
// this site stores no pack of that filegroup.
func (s *Store) Container(fg FilegroupID) *Container {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.containers[fg]
}

// Filegroups lists the filegroups this site stores packs for,
// ascending.
func (s *Store) Filegroups() []FilegroupID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]FilegroupID, 0, len(s.containers))
	for fg := range s.containers {
		out = append(out, fg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
