package storage

import (
	"bytes"
	"testing"

	"repro/internal/lint/invariant"
)

func TestPageBufGetZeroed(t *testing.T) {
	for i := 0; i < 8; i++ {
		buf := GetPageBuf()
		if len(buf) != PageSize {
			t.Fatalf("GetPageBuf length %d, want %d", len(buf), PageSize)
		}
		for j, b := range buf {
			if b != 0 {
				t.Fatalf("GetPageBuf returned dirty buffer: byte %d = 0x%02x", j, b)
			}
		}
		for j := range buf {
			buf[j] = 0xAA
		}
		PutPageBuf(buf)
	}
}

func TestPutPageBufScrubs(t *testing.T) {
	buf := GetPageBuf()
	for i := range buf {
		buf[i] = 0x55
	}
	PutPageBuf(buf)
	// After Put the buffer is either poisoned (invariants build) or
	// zeroed (normal build) — in neither case does payload survive.
	want := byte(0)
	if invariant.Enabled {
		want = pagePoisonByte
	}
	for i, b := range buf {
		if b != want {
			t.Fatalf("byte %d after Put = 0x%02x, want 0x%02x", i, b, want)
		}
	}
}

func TestPutPageBufRejectsOddSizes(t *testing.T) {
	_, puts0, _ := PagePoolStats()
	PutPageBuf(make([]byte, PageSize-1))
	PutPageBuf(nil)
	_, puts1, _ := PagePoolStats()
	if puts1 != puts0 {
		t.Fatalf("pool accepted non-PageSize buffers: puts %d -> %d", puts0, puts1)
	}
}

func TestPagePoolStatsAdvance(t *testing.T) {
	gets0, puts0, _ := PagePoolStats()
	buf := GetPageBuf()
	PutPageBuf(buf)
	gets1, puts1, _ := PagePoolStats()
	if gets1 <= gets0 || puts1 <= puts0 {
		t.Fatalf("pool stats did not advance: gets %d->%d puts %d->%d", gets0, gets1, puts0, puts1)
	}
}

// TestPoolPoisonCatchesWriteAfterFree proves the locusinvariants build
// detects a stale owner scribbling on a returned buffer. sync.Pool does
// not guarantee which buffer a Get returns, so the test hunts for its
// corrupted buffer for a bounded number of Gets and skips if the pool
// dropped it.
func TestPoolPoisonCatchesWriteAfterFree(t *testing.T) {
	if !invariant.Enabled {
		t.Skip("needs -tags locusinvariants")
	}
	buf := GetPageBuf()
	PutPageBuf(buf)
	buf[17] = 0x42 // write-after-free

	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("Get returned the corrupted buffer without panicking")
		}
	}()
	for i := 0; i < 64; i++ {
		got := GetPageBuf()
		if &got[0] == &buf[0] {
			// Reaching here means Get handed the corrupted buffer back
			// without the poison check firing.
			t.Fatalf("poison check missed the corruption")
		}
	}
	t.Skip("pool dropped the corrupted buffer before it was re-issued")
}

// TestReadPageSharedSurvivesFree pins the zero-copy aliasing contract:
// a buffer handed out by ReadPageShared keeps its contents even after
// the page is freed and recycled, because shared pages are never
// returned to the pool.
func TestReadPageSharedSurvivesFree(t *testing.T) {
	c := MustContainer(1, 1, 1, 100, nil, Costs{})
	payload := bytes.Repeat([]byte{0xC3}, PageSize)
	pp, err := c.WritePage(payload)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := c.ReadPageShared(pp)
	if err != nil {
		t.Fatal(err)
	}
	c.FreePages(pp)
	// Churn the pool: if the shared buffer had been recycled, these
	// writes would scribble over it.
	for i := 0; i < 8; i++ {
		b := GetPageBuf()
		for j := range b {
			b[j] = 0x11
		}
		PutPageBuf(b)
	}
	if !bytes.Equal(shared, payload) {
		t.Fatalf("shared buffer mutated after FreePages: first byte 0x%02x", shared[0])
	}
}

// TestReadPageExclusiveCopy pins ReadPage's contract: the returned
// buffer is a caller-owned copy, independent of the stored page.
func TestReadPageExclusiveCopy(t *testing.T) {
	c := MustContainer(1, 1, 1, 100, nil, Costs{})
	pp, err := c.WritePage([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.ReadPage(pp)
	if err != nil {
		t.Fatal(err)
	}
	a[0] = 99
	b, err := c.ReadPage(pp)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 1 {
		t.Fatalf("ReadPage copy aliases stored page: got %d", b[0])
	}
	PutPageBuf(a)
	PutPageBuf(b)
}
