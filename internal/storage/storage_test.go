package storage

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func newTestContainer() *Container {
	return MustContainer(1, 1, 1, 1000, nil, Costs{})
}

func TestAllocInodeSequentialAndBounded(t *testing.T) {
	c := MustContainer(1, 1, 10, 12, nil, Costs{})
	for want := InodeNum(10); want <= 12; want++ {
		n, err := c.AllocInode()
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("AllocInode = %d, want %d", n, want)
		}
	}
	if _, err := c.AllocInode(); !errors.Is(err, ErrInodeSpace) {
		t.Fatalf("err = %v, want ErrInodeSpace", err)
	}
}

func TestOwns(t *testing.T) {
	c := MustContainer(1, 1, 100, 199, nil, Costs{})
	if !c.Owns(100) || !c.Owns(199) {
		t.Fatal("range endpoints must be owned")
	}
	if c.Owns(99) || c.Owns(200) {
		t.Fatal("out-of-range inodes must not be owned")
	}
}

func TestCommitThenGetRoundTrip(t *testing.T) {
	c := newTestContainer()
	n, _ := c.AllocInode()
	p, err := c.WritePage([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	ino := &Inode{Num: n, Type: TypeRegular, Size: 5, Pages: []PhysPage{p},
		VV: vclock.New().Bump(1), Owner: "alice", Mode: 0644, Nlink: 1}
	if err := c.CommitInode(ino); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetInode(n)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 5 || got.Owner != "alice" || got.Type != TypeRegular {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	data, err := c.ReadLogicalPage(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[:5], []byte("hello")) {
		t.Fatalf("page data = %q", data[:5])
	}
}

func TestGetInodeReturnsCopy(t *testing.T) {
	c := newTestContainer()
	n, _ := c.AllocInode()
	ino := &Inode{Num: n, VV: vclock.New()}
	if err := c.CommitInode(ino); err != nil {
		t.Fatal(err)
	}
	got, _ := c.GetInode(n)
	got.Size = 999
	got.VV.Bump(3)
	again, _ := c.GetInode(n)
	if again.Size != 0 || again.VV.Get(3) != 0 {
		t.Fatal("GetInode must return an independent copy")
	}
}

func TestShadowPagesOldDataIntactUntilCommit(t *testing.T) {
	// §2.3.6: modifying a page allocates a new physical page; the old
	// information stays intact until commit.
	c := newTestContainer()
	n, _ := c.AllocInode()
	p0, _ := c.WritePage([]byte("version-1"))
	committed := &Inode{Num: n, Size: 9, Pages: []PhysPage{p0}, VV: vclock.New()}
	if err := c.CommitInode(committed); err != nil {
		t.Fatal(err)
	}

	// In-core modification: shadow page for logical page 0.
	incore := committed.Clone()
	shadow, _ := c.WritePage([]byte("version-2"))
	incore.Pages[0] = shadow

	// Old data still readable through the committed inode.
	data, _ := c.ReadLogicalPage(n, 0)
	if !bytes.Equal(data[:9], []byte("version-1")) {
		t.Fatalf("committed data changed before commit: %q", data[:9])
	}

	// Abort: free the shadow page; committed state untouched.
	c.FreePages(shadow)
	data, _ = c.ReadLogicalPage(n, 0)
	if !bytes.Equal(data[:9], []byte("version-1")) {
		t.Fatalf("abort damaged committed data: %q", data[:9])
	}
	if _, err := c.ReadPage(shadow); !errors.Is(err, ErrNoPage) {
		t.Fatalf("shadow page not freed: %v", err)
	}
}

func TestCommitReleasesSupersededPages(t *testing.T) {
	c := newTestContainer()
	n, _ := c.AllocInode()
	p0, _ := c.WritePage([]byte("old"))
	if err := c.CommitInode(&Inode{Num: n, Size: 3, Pages: []PhysPage{p0}, VV: vclock.New()}); err != nil {
		t.Fatal(err)
	}
	shadow, _ := c.WritePage([]byte("new"))
	if err := c.CommitInode(&Inode{Num: n, Size: 3, Pages: []PhysPage{shadow}, VV: vclock.New()}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadPage(p0); !errors.Is(err, ErrNoPage) {
		t.Fatalf("superseded page not released: %v", err)
	}
	data, _ := c.ReadLogicalPage(n, 0)
	if !bytes.Equal(data[:3], []byte("new")) {
		t.Fatalf("data = %q", data[:3])
	}
	if got := c.PageCount(); got != 1 {
		t.Fatalf("PageCount = %d, want 1", got)
	}
}

func TestHolesReadAsZeros(t *testing.T) {
	c := newTestContainer()
	n, _ := c.AllocInode()
	p1, _ := c.WritePage([]byte("x"))
	ino := &Inode{Num: n, Size: PageSize + 1, Pages: []PhysPage{PhysPageNil, p1}, VV: vclock.New()}
	if err := c.CommitInode(ino); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadLogicalPage(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range data {
		if b != 0 {
			t.Fatal("hole must read as zeros")
		}
	}
}

func TestReadLogicalPageOutOfRange(t *testing.T) {
	c := newTestContainer()
	n, _ := c.AllocInode()
	if err := c.CommitInode(&Inode{Num: n, VV: vclock.New()}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadLogicalPage(n, 0); !errors.Is(err, ErrBadPageIndex) {
		t.Fatalf("err = %v, want ErrBadPageIndex", err)
	}
	if _, err := c.ReadLogicalPage(n, -1); !errors.Is(err, ErrBadPageIndex) {
		t.Fatalf("err = %v, want ErrBadPageIndex", err)
	}
}

func TestWritePageTooLarge(t *testing.T) {
	c := newTestContainer()
	if _, err := c.WritePage(make([]byte, PageSize+1)); err == nil {
		t.Fatal("expected error for oversized page")
	}
}

func TestDropInodeFreesEverything(t *testing.T) {
	c := newTestContainer()
	n, _ := c.AllocInode()
	p, _ := c.WritePage([]byte("data"))
	if err := c.CommitInode(&Inode{Num: n, Size: 4, Pages: []PhysPage{p}, VV: vclock.New()}); err != nil {
		t.Fatal(err)
	}
	c.DropInode(n)
	if _, err := c.GetInode(n); !errors.Is(err, ErrNoInode) {
		t.Fatalf("err = %v, want ErrNoInode", err)
	}
	if c.PageCount() != 0 {
		t.Fatalf("PageCount = %d, want 0", c.PageCount())
	}
}

func TestListInodesSorted(t *testing.T) {
	c := newTestContainer()
	for i := 0; i < 5; i++ {
		n, _ := c.AllocInode()
		if err := c.CommitInode(&Inode{Num: n, VV: vclock.New()}); err != nil {
			t.Fatal(err)
		}
	}
	got := c.ListInodes()
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestStoreContainerLookup(t *testing.T) {
	s := NewStore(3)
	c1 := MustContainer(1, 3, 1, 10, nil, Costs{})
	c2 := MustContainer(2, 3, 1, 10, nil, Costs{})
	s.AddContainer(c1)
	s.AddContainer(c2)
	if s.Container(1) != c1 || s.Container(2) != c2 {
		t.Fatal("container lookup failed")
	}
	if s.Container(9) != nil {
		t.Fatal("missing filegroup must return nil")
	}
	fgs := s.Filegroups()
	if len(fgs) != 2 || fgs[0] != 1 || fgs[1] != 2 {
		t.Fatalf("Filegroups = %v", fgs)
	}
}

func TestStoreDuplicateContainerRejected(t *testing.T) {
	s := NewStore(3)
	if err := s.AddContainer(MustContainer(1, 3, 1, 10, nil, Costs{})); err != nil {
		t.Fatal(err)
	}
	err := s.AddContainer(MustContainer(1, 3, 11, 20, nil, Costs{}))
	if !errors.Is(err, ErrDupContainer) {
		t.Fatalf("duplicate AddContainer = %v, want ErrDupContainer", err)
	}
}

func TestNewContainerBadRange(t *testing.T) {
	if _, err := NewContainer(1, 1, 0, 10, nil, Costs{}); !errors.Is(err, ErrBadRange) {
		t.Fatalf("lo=0 accepted: %v", err)
	}
	if _, err := NewContainer(1, 1, 10, 9, nil, Costs{}); !errors.Is(err, ErrBadRange) {
		t.Fatalf("hi<lo accepted: %v", err)
	}
}

func TestInodeCloneIndependence(t *testing.T) {
	ino := &Inode{Num: 1, Pages: []PhysPage{1, 2}, VV: vclock.New().Bump(1),
		Annotations: map[string]string{"k": "v"}}
	c := ino.Clone()
	c.Pages[0] = 99
	c.VV.Bump(2)
	c.Annotations["k"] = "w"
	if ino.Pages[0] != 1 || ino.VV.Get(2) != 0 || ino.Annotations["k"] != "v" {
		t.Fatal("Clone must be deep")
	}
}

// Property: partitioned inode ranges at different packs never collide.
func TestPropertyInodeRangesDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nPacks := 2 + r.Intn(4)
		const span = 100
		var containers []*Container
		for i := 0; i < nPacks; i++ {
			lo := InodeNum(i*span + 1)
			containers = append(containers, MustContainer(1, vclock.SiteID(i+1), lo, lo+span-1, nil, Costs{}))
		}
		seen := make(map[InodeNum]bool)
		for _, c := range containers {
			for j := 0; j < 1+r.Intn(20); j++ {
				n, err := c.AllocInode()
				if err != nil {
					return false
				}
				if seen[n] {
					return false // collision across packs
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: commit/abort never corrupts committed data (crash-consistency
// invariant behind §2.3.6: "one is always left with either the original
// file or a completely changed file but never with a partially made
// change").
func TestPropertyCommitAbortAtomicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := newTestContainer()
		n, _ := c.AllocInode()
		content := byte('a')
		page := bytes.Repeat([]byte{content}, 64)
		p, _ := c.WritePage(page)
		if err := c.CommitInode(&Inode{Num: n, Size: 64, Pages: []PhysPage{p}, VV: vclock.New()}); err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			next := byte('a' + 1 + r.Intn(20))
			shadow, _ := c.WritePage(bytes.Repeat([]byte{next}, 64))
			if r.Intn(2) == 0 {
				// Commit: new content becomes visible.
				if err := c.CommitInode(&Inode{Num: n, Size: 64, Pages: []PhysPage{shadow}, VV: vclock.New()}); err != nil {
					return false
				}
				content = next
			} else {
				// Abort: shadow freed, old content intact.
				c.FreePages(shadow)
			}
			got, err := c.ReadLogicalPage(n, 0)
			if err != nil {
				return false
			}
			for _, b := range got[:64] {
				if b != content {
					return false
				}
			}
			if c.PageCount() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
