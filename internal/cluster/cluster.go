// Package cluster assembles a complete simulated LOCUS network: the
// netsim substrate, one filesystem kernel per site, formatting, and
// convenience controls for partitioning, crashing, and settling
// background propagation. It is the common harness for integration
// tests, examples, and the benchmark suite.
package cluster

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// SiteID re-exports the site identifier type.
type SiteID = fs.SiteID

// Cluster is a running simulated LOCUS network.
type Cluster struct {
	Net     *netsim.Network
	Kernels map[SiteID]*fs.Kernel
	Cfg     *fs.Config
	sites   []SiteID
}

// Options configures cluster construction.
type Options struct {
	// Costs is the simulated cost model; zero value means
	// netsim.DefaultCosts().
	Costs netsim.CostModel
}

// SimpleConfig builds a one-filegroup configuration replicated across
// nSites sites (site ids 1..n), mounted at "/". Each pack gets a
// 1e6-wide inode allocation range.
func SimpleConfig(nSites int) *fs.Config {
	packs := make([]fs.PackDesc, nSites)
	for i := 0; i < nSites; i++ {
		packs[i] = fs.PackDesc{
			Site: SiteID(i + 1),
			Lo:   storage.InodeNum(i*1_000_000 + 1),
			Hi:   storage.InodeNum((i + 1) * 1_000_000),
		}
	}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{{FG: 1, MountPath: "/", Packs: packs}})
	if err != nil {
		// invariant: a generated single-filegroup config is valid by
		// construction; NewConfig rejecting it is a programming error.
		panic(err)
	}
	return cfg
}

// New builds and formats a cluster from a configuration. All sites
// named by any pack are created; the first pack of each filegroup
// formats the root.
func New(cfg *fs.Config, opts Options) (*Cluster, error) {
	costs := opts.Costs
	if costs == (netsim.CostModel{}) {
		costs = netsim.DefaultCosts()
	}
	nw := netsim.New(costs)
	cl := &Cluster{Net: nw, Kernels: make(map[SiteID]*fs.Kernel), Cfg: cfg}
	seen := map[SiteID]bool{}
	for _, d := range cfg.Filegroups {
		for _, p := range d.Packs {
			if !seen[p.Site] {
				seen[p.Site] = true
				cl.sites = append(cl.sites, p.Site)
			}
		}
	}
	for _, s := range cl.sites {
		node := nw.AddSite(s)
		k, err := fs.BootSite(node, cfg, nw.Meter(), storage.Costs{
			DiskUs:  costs.DiskUs,
			PageCPU: costs.PageCPU,
		})
		if err != nil {
			nw.Close()
			return nil, err
		}
		cl.Kernels[s] = k
	}
	if err := fs.Format(cl.Kernels, cfg); err != nil {
		nw.Close()
		return nil, err
	}
	return cl, nil
}

// MustNew is New, panicking on error (test/bench setup).
func MustNew(cfg *fs.Config, opts Options) *Cluster {
	cl, err := New(cfg, opts)
	if err != nil {
		panic(err)
	}
	return cl
}

// Simple builds an n-site single-filegroup cluster.
func Simple(n int) *Cluster { return MustNew(SimpleConfig(n), Options{}) }

// Close shuts the network down.
func (c *Cluster) Close() { c.Net.Close() }

// K returns the kernel for a site.
func (c *Cluster) K(s SiteID) *fs.Kernel { return c.Kernels[s] }

// Sites returns all site ids in ascending order.
func (c *Cluster) Sites() []SiteID { return append([]SiteID(nil), c.sites...) }

// Settle drains every kernel's propagation queue until the whole
// network is quiescent. Returns the number of propagation pulls
// completed.
func (c *Cluster) Settle() int {
	total := 0
	for pass := 0; pass < 100; pass++ {
		c.Net.Quiesce()
		n := 0
		for _, k := range c.Kernels {
			n += k.DrainPropagation()
		}
		total += n
		if n == 0 {
			c.Net.Quiesce()
			pending := 0
			for _, k := range c.Kernels {
				pending += k.PendingPropagations()
			}
			if pending == 0 {
				return total
			}
		}
	}
	return total
}

// Partition splits the network into groups and installs the matching
// partition view in every kernel (what the reconfiguration protocols of
// internal/topology do automatically; tests drive it directly for
// determinism).
func (c *Cluster) Partition(groups ...[]SiteID) {
	c.Net.PartitionGroups(groups...)
	for _, g := range groups {
		for _, s := range g {
			if k := c.Kernels[s]; k != nil {
				k.CleanupAfterPartitionChange(g)
			}
		}
	}
}

// Heal restores full connectivity and installs the full-membership view
// everywhere. Reconciliation (internal/recon) must run afterwards to
// merge divergent copies; stalled propagations are requeued.
func (c *Cluster) Heal() {
	c.Net.HealAll()
	var up []SiteID
	for _, s := range c.sites {
		if c.Net.Up(s) {
			up = append(up, s)
		}
	}
	for _, s := range up {
		k := c.Kernels[s]
		k.CleanupAfterPartitionChange(up)
		k.RequeueStalledPropagations()
	}
}

// Crash takes a site down; surviving kernels get the shrunken view.
func (c *Cluster) Crash(s SiteID) {
	c.Net.Crash(s)
	var up []SiteID
	for _, x := range c.sites {
		if c.Net.Up(x) {
			up = append(up, x)
		}
	}
	for _, x := range up {
		c.Kernels[x].CleanupAfterPartitionChange(up)
	}
}

// Restart brings a crashed site back and rejoins it to the full
// partition (in-core state at the site was lost with the crash; its
// disk survived).
func (c *Cluster) Restart(s SiteID) {
	c.Net.Restart(s)
	c.Heal()
}

// String describes the cluster briefly.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{%d sites, %d filegroups}", len(c.sites), len(c.Cfg.Filegroups))
}
