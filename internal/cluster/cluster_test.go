package cluster_test

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs"
	"repro/internal/storage"
)

func TestSimpleConfigShape(t *testing.T) {
	cfg := cluster.SimpleConfig(4)
	d, ok := cfg.FG(1)
	if !ok || len(d.Packs) != 4 {
		t.Fatalf("config: %+v ok=%v", d, ok)
	}
	// Disjoint inode ranges.
	for i := 0; i < 3; i++ {
		if d.Packs[i].Hi >= d.Packs[i+1].Lo {
			t.Fatalf("pack ranges overlap: %+v", d.Packs)
		}
	}
	if fg, ok := cfg.MountAt("/"); !ok || fg != 1 {
		t.Fatalf("mount: %v %v", fg, ok)
	}
}

func TestClusterLifecycle(t *testing.T) {
	c := cluster.Simple(3)
	defer c.Close()
	if len(c.Sites()) != 3 {
		t.Fatalf("sites: %v", c.Sites())
	}
	k := c.K(1)
	f, err := k.Create(fs.DefaultCred("u"), "/x", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n := c.Settle(); n == 0 {
		t.Fatal("expected propagation pulls")
	}
	// Partition + heal round trip keeps state coherent.
	c.Partition([]cluster.SiteID{1, 2}, []cluster.SiteID{3})
	if got := c.K(3).Partition(); len(got) != 1 {
		t.Fatalf("site 3 view: %v", got)
	}
	c.Heal()
	c.Settle()
	g, err := c.K(3).Open(fs.DefaultCred("u"), "/x", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close() //nolint:errcheck
	d, err := g.ReadAll()
	if err != nil || string(d) != "y" {
		t.Fatalf("read %q %v", d, err)
	}
}

func TestCrashRestartLifecycle(t *testing.T) {
	c := cluster.Simple(2)
	defer c.Close()
	c.Crash(2)
	if c.Net.Up(2) {
		t.Fatal("site 2 should be down")
	}
	if got := c.K(1).Partition(); len(got) != 1 {
		t.Fatalf("survivor view: %v", got)
	}
	c.Restart(2)
	if got := c.K(1).Partition(); len(got) != 2 {
		t.Fatalf("after restart: %v", got)
	}
}
