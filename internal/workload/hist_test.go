package workload

import "testing"

// TestBucketBoundaries pins the exact bucket layout: linear unit
// buckets through 31, then 16 log-linear sub-buckets per octave.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v     int64
		idx   int
		upper int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{17, 17, 17},
		{31, 31, 31},
		{32, 32, 33}, // first log-linear bucket: [32,33]
		{33, 32, 33},
		{34, 33, 35},
		{63, 47, 63},
		{64, 48, 67}, // [64,67]
		{67, 48, 67},
		{68, 49, 71},
		{1024, 112, 1087}, // [1024,1087]: width 64 = 6.25% of 1024
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
		if got := bucketUpper(c.idx); got != c.upper {
			t.Errorf("bucketUpper(%d) = %d, want %d", c.idx, got, c.upper)
		}
	}
	// Round trip: every value's bucket upper bound is >= the value and
	// within 6.25% above it (for v >= 32).
	for v := int64(0); v < 100000; v += 7 {
		up := bucketUpper(bucketIndex(v))
		if up < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
		if v >= 32 && float64(up-v) > 0.0625*float64(v)+1 {
			t.Fatalf("bucket width at %d too wide: upper %d", v, up)
		}
	}
}

// TestQuantilesKnownDistribution checks p50/p95/p99 against a known
// population: values 1..1000 recorded once each.
func TestQuantilesKnownDistribution(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Exact ranks: p50 -> 500, p95 -> 950, p99 -> 990. The histogram
	// reports the holding bucket's upper bound, within 6.25% above.
	for _, c := range []struct {
		q    float64
		want int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}, {1.0, 1000}} {
		got := h.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.0625+1 {
			t.Errorf("q%.2f = %d, want in [%d, %.0f]", c.q, got, c.want, float64(c.want)*1.0625+1)
		}
	}
	if h.Max() != 1000 {
		t.Errorf("max = %d, want 1000", h.Max())
	}
	if m := h.Mean(); m < 500.4 || m > 500.6 {
		t.Errorf("mean = %v, want 500.5", m)
	}
}

// TestQuantileSkewed: 99 fast ops and 1 slow op — p99 must see the
// slow one's bucket, p50 the fast one's.
func TestQuantileSkewed(t *testing.T) {
	var h Hist
	for i := 0; i < 99; i++ {
		h.Record(10)
	}
	h.Record(100000)
	if got := h.Quantile(0.50); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("p99 = %d, want 10 (rank 99 of 100 is still fast)", got)
	}
	if got := h.Quantile(1.0); got < 100000 {
		t.Errorf("p100 = %d, want >= 100000", got)
	}
}

// TestHistDeterminism: same samples in different order produce
// identical quantiles (histograms are order-free).
func TestHistDeterminism(t *testing.T) {
	var a, b Hist
	r1 := newRNG(42)
	var vs []int64
	for i := 0; i < 10000; i++ {
		vs = append(vs, int64(r1.intn(1_000_000)))
	}
	for _, v := range vs {
		a.Record(v)
	}
	for i := len(vs) - 1; i >= 0; i-- {
		b.Record(vs[i])
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("q%v differs: %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
	if a.Mean() != b.Mean() || a.Max() != b.Max() || a.Count() != b.Count() {
		t.Fatal("summary stats differ across orderings")
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	for v := int64(0); v < 1000; v++ {
		if v%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(&b)
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merged q%v = %d, want %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.Count() != all.Count() || a.Max() != all.Max() {
		t.Fatal("merged summary stats wrong")
	}
}
