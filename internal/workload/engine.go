package workload

import (
	"container/heap"
	"fmt"
	"strings"

	"repro/internal/storage"
	"repro/locus"
)

// Op is one workload operation kind.
type Op int

const (
	// OpRead reads a whole file (open/read/close protocol, US cache in
	// play).
	OpRead Op = iota
	// OpWrite rewrites an existing file in place (modify open, write
	// protocol, commit-on-close).
	OpWrite
	// OpBuild is the build-style create-write-commit-rename sequence: a
	// fresh temporary is written and committed, then renamed over the
	// target (unlinking the old version first — LOCUS rename does not
	// replace).
	OpBuild
	// OpReadDir lists the tenant's directory.
	OpReadDir
	// OpStat stats a file (CSS open synchronization without data
	// transfer).
	OpStat

	nOps = int(OpStat) + 1
)

var opNames = [nOps]string{"read", "write", "build", "readdir", "stat"}

func (o Op) String() string { return opNames[o] }

// Mix is a tenant's op mix as integer weights (any scale).
type Mix struct {
	Name string
	// Weights per op, indexed by Op.
	Weights [nOps]int
}

// The three canonical tenant profiles.
var (
	// ScanHeavy models readers: mostly whole-file reads with directory
	// scans (source browsing, grep-style load).
	ScanHeavy = Mix{Name: "scan-heavy", Weights: [nOps]int{70, 5, 0, 15, 10}}
	// EditHeavy models writers: rewrite-in-place dominates (editor
	// save loops).
	EditHeavy = Mix{Name: "edit-heavy", Weights: [nOps]int{30, 55, 5, 5, 5}}
	// BuildStyle models build systems: create-write-commit-rename of
	// derived files plus rereads of inputs.
	BuildStyle = Mix{Name: "build", Weights: [nOps]int{30, 5, 45, 10, 10}}
)

// pick draws an op from the mix.
func (m *Mix) pick(r *rng) Op {
	total := 0
	for _, w := range m.Weights {
		total += w
	}
	v := r.intn(total)
	for op, w := range m.Weights {
		if v < w {
			return Op(op)
		}
		v -= w
	}
	return OpRead
}

// TenantSpec describes one tenant: a population of files and a fleet
// of actors (simulated processes) hammering them.
type TenantSpec struct {
	Name   string
	Mix    Mix
	Actors int // concurrent simulated processes
	Ops    int // total ops the tenant issues, spread across actors
	Files  int // file population size
	// FilePages is the seeded size of each file in 4 KB pages
	// (default 1).
	FilePages int
	// ZipfS is the popularity skew exponent (default 1.1; 0 = uniform
	// — note the zero value means "default", pass a negative value for
	// truly uniform).
	ZipfS float64
}

// Config configures a workload run.
type Config struct {
	Seed    uint64
	Tenants []TenantSpec
	// ThinkMaxUs bounds the uniform virtual think time an actor waits
	// between ops (default 1000 µs). Think time shapes interleaving
	// only; it never burns wall clock.
	ThinkMaxUs int64
	// SkipQuiesce leaves asynchronous traffic (write casts, commit
	// notifications) in flight between ops instead of draining the
	// network after every op. The chaos plane sets it: chaos owns the
	// schedule and injects faults between steps. Deterministic-counter
	// runs leave it false.
	SkipQuiesce bool
	// Alive, when set, gates each actor on its home site being up: an
	// actor whose site fails the predicate is rescheduled without
	// issuing or consuming op budget. The chaos plane supplies its
	// topology model here — an op issued from a crashed site would
	// retry against a network that will never answer.
	Alive func(locus.SiteID) bool
}

// DefaultTenants returns the canonical 3-tenant mix (scan-heavy,
// edit-heavy, build-style) scaled to the given per-tenant actor and op
// counts over a population of files per tenant.
func DefaultTenants(actors, ops, files int) []TenantSpec {
	return []TenantSpec{
		{Name: "scan", Mix: ScanHeavy, Actors: actors, Ops: ops, Files: files, ZipfS: 1.1},
		{Name: "edit", Mix: EditHeavy, Actors: actors, Ops: ops, Files: files, ZipfS: 1.1},
		{Name: "build", Mix: BuildStyle, Actors: actors, Ops: ops, Files: files, ZipfS: 1.1},
	}
}

// actor is one simulated tenant process.
type actor struct {
	id     int // global actor index (heap tie-break, RNG stream, names)
	tenant int
	site   locus.SiteID
	sess   *locus.Session
	rng    rng
	next   int64  // virtual schedule time (µs)
	left   int    // ops remaining
	seq    int    // per-actor op sequence, names temporaries
	page   []byte // reusable write payload (WriteFile copies out of it)
}

// actorHeap orders actors by (virtual time, actor id) — the total
// order that makes the interleaving a pure function of the seed.
type actorHeap []*actor

func (h actorHeap) Len() int { return len(h) }
func (h actorHeap) Less(i, j int) bool {
	if h[i].next != h[j].next {
		return h[i].next < h[j].next
	}
	return h[i].id < h[j].id
}
func (h actorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *actorHeap) Push(x any)        { *h = append(*h, x.(*actor)) }
func (h *actorHeap) Pop() any {
	old := *h
	n := len(old)
	a := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return a
}

// Result carries the deterministic outcome of a run. Everything in it
// is a pure function of the seed: op and error counters, simulated
// time, and simclock-tick latency quantiles. Wall-clock throughput is
// deliberately absent — callers time Run themselves.
type Result struct {
	Ops      int64
	Errors   int64
	OpCount  [nOps]int64
	OpErrs   [nOps]int64
	Tenant   []TenantResult
	// SimUs is the simulated cost charged over the run (CPU + disk
	// virtual µs — the deterministic component of the sim clock; idle
	// Backoff advances are excluded so the value replays exactly).
	SimUs int64
	Lat   Hist // per-op latency in charged simulated µs
}

// TenantResult is one tenant's slice of the counters.
type TenantResult struct {
	Name string
	Ops  int64
	Errs int64
}

// OpsPerSimSec returns throughput against the simulated clock.
func (r *Result) OpsPerSimSec() float64 {
	if r.SimUs <= 0 {
		return 0
	}
	return float64(r.Ops) * 1e6 / float64(r.SimUs)
}

// CounterTable renders every deterministic counter as text. Two runs
// with the same seed produce byte-identical tables — E16 pins this.
func (r *Result) CounterTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%d errors=%d sim_us=%d\n", r.Ops, r.Errors, r.SimUs)
	for op := 0; op < nOps; op++ {
		fmt.Fprintf(&b, "op %s n=%d err=%d\n", opNames[op], r.OpCount[op], r.OpErrs[op])
	}
	for _, t := range r.Tenant {
		fmt.Fprintf(&b, "tenant %s ops=%d err=%d\n", t.Name, t.Ops, t.Errs)
	}
	fmt.Fprintf(&b, "lat_us p50=%d p95=%d p99=%d max=%d\n",
		r.Lat.Quantile(0.50), r.Lat.Quantile(0.95), r.Lat.Quantile(0.99), r.Lat.Max())
	return b.String()
}

// Engine drives one workload over a live cluster.
type Engine struct {
	cfg       Config
	c         *locus.Cluster
	actors    []*actor
	heap      actorHeap
	zipfs     []*Zipf
	res       Result
	costStart int64
	ready     bool
}

// New validates the config and binds the engine to a cluster. Actors
// are assigned to sites round-robin in actor order.
func New(c *locus.Cluster, cfg Config) (*Engine, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("workload: no tenants configured")
	}
	if cfg.ThinkMaxUs == 0 {
		cfg.ThinkMaxUs = 1000
	}
	e := &Engine{cfg: cfg, c: c}
	sites := c.Sites()
	id := 0
	for ti := range cfg.Tenants {
		t := &cfg.Tenants[ti]
		if t.Actors <= 0 || t.Ops <= 0 || t.Files <= 0 {
			return nil, fmt.Errorf("workload: tenant %q needs positive actors/ops/files", t.Name)
		}
		if t.FilePages == 0 {
			t.FilePages = 1
		}
		if t.ZipfS == 0 {
			t.ZipfS = 1.1
		}
		e.res.Tenant = append(e.res.Tenant, TenantResult{Name: t.Name})
		for i := 0; i < t.Actors; i++ {
			sid := sites[id%len(sites)]
			a := &actor{
				id:     id,
				tenant: ti,
				site:   sid,
				sess:   c.Site(sid).Login(fmt.Sprintf("%s-%d", t.Name, i)),
				rng:    newRNG(mixSeed(cfg.Seed, uint64(id))),
				left:   t.Ops / t.Actors,
			}
			if i < t.Ops%t.Actors {
				a.left++
			}
			// Stagger start times so actors don't lockstep.
			a.next = int64(a.rng.intn(int(cfg.ThinkMaxUs) + 1))
			id++
			if a.left > 0 {
				e.actors = append(e.actors, a)
			}
		}
	}
	return e, nil
}

// dir returns a tenant's directory path.
func (e *Engine) dir(ti int) string { return "/w/" + e.cfg.Tenants[ti].Name }

// file returns tenant file rank i's path.
func (e *Engine) file(ti, i int) string {
	return fmt.Sprintf("%s/f%04d", e.dir(ti), i)
}

// Setup creates the tenant directories and seeds the file populations.
// It must run before Step/Run, on a healthy cluster (setup errors are
// fatal, unlike op errors, which are workload results).
func (e *Engine) Setup() error {
	if e.ready {
		return nil
	}
	admin := e.c.Site(e.c.Sites()[0]).Login("workload-setup")
	if err := admin.Mkdir("/w"); err != nil {
		return fmt.Errorf("workload setup: %w", err)
	}
	for ti, t := range e.cfg.Tenants {
		if err := admin.Mkdir(e.dir(ti)); err != nil {
			return fmt.Errorf("workload setup %s: %w", t.Name, err)
		}
		content := make([]byte, t.FilePages*storage.PageSize)
		for i := range content {
			content[i] = byte(ti + i)
		}
		for i := 0; i < t.Files; i++ {
			if err := admin.WriteFile(e.file(ti, i), content); err != nil {
				return fmt.Errorf("workload setup %s f%d: %w", t.Name, i, err)
			}
		}
	}
	e.c.Network().Quiesce()
	e.c.Settle()
	heap.Init(&e.heap)
	for _, a := range e.actors {
		heap.Push(&e.heap, a)
	}
	e.costStart = e.c.Network().CostUs()
	e.ready = true
	return nil
}

// Step issues the single next op in the deterministic schedule,
// returning false once every actor has exhausted its budget. Op
// failures are recorded, not returned: under fault injection (the
// chaos plane) ops are expected to fail.
func (e *Engine) Step() bool {
	if !e.ready || e.heap.Len() == 0 {
		return false
	}
	a := heap.Pop(&e.heap).(*actor)
	if e.cfg.Alive != nil && !e.cfg.Alive(a.site) {
		// The actor's site is down: skip its turn without consuming op
		// budget so it resumes once the site restarts. The reschedule
		// draw comes from the actor's own RNG, keeping the schedule a
		// pure function of (seed, topology history).
		a.next += 1 + int64(a.rng.intn(int(e.cfg.ThinkMaxUs)+1))
		heap.Push(&e.heap, a)
		return true
	}
	t := &e.cfg.Tenants[a.tenant]
	op := t.Mix.pick(&a.rng)
	nw := e.c.Network()

	// Latency is the charged simulated cost of the op (CostUs), not a
	// raw clock delta: the clock also moves on scheduling-dependent
	// Backoff escalations, and those would leak wall-clock jitter into
	// a table that must replay byte-identically.
	start := nw.CostUs()
	err := e.issue(a, t, op)
	if !e.cfg.SkipQuiesce {
		// Drain async traffic (write casts, commit notifications) so
		// the next op observes a settled network: this is what makes
		// message counters and cache behavior schedule-independent.
		nw.Quiesce()
	}
	lat := nw.CostUs() - start

	e.res.Ops++
	e.res.OpCount[op]++
	e.res.Tenant[a.tenant].Ops++
	e.res.Lat.Record(lat)
	e.res.SimUs = nw.CostUs() - e.costStart
	if err != nil {
		e.res.Errors++
		e.res.OpErrs[op]++
		e.res.Tenant[a.tenant].Errs++
	}

	a.seq++
	a.left--
	if a.left > 0 {
		a.next += lat + 1 + int64(a.rng.intn(int(e.cfg.ThinkMaxUs)+1))
		heap.Push(&e.heap, a)
	}
	return true
}

// fillPage returns the actor's reusable one-page write payload filled
// with b. Session writes copy the payload before returning (local SS)
// or before casting (remote SS), so reuse across ops is safe.
func (a *actor) fillPage(b byte) []byte {
	if a.page == nil {
		a.page = make([]byte, storage.PageSize)
	}
	for i := range a.page {
		a.page[i] = b
	}
	return a.page
}

// issue performs one op against the actor's session.
func (e *Engine) issue(a *actor, t *TenantSpec, op Op) error {
	zipf := e.zipfFor(a.tenant)
	switch op {
	case OpRead:
		_, err := a.sess.ReadFile(e.file(a.tenant, zipf.Sample(&a.rng)))
		return err
	case OpWrite:
		target := e.file(a.tenant, zipf.Sample(&a.rng))
		return a.sess.WriteFile(target, a.fillPage(byte(a.id+a.seq)))
	case OpBuild:
		target := e.file(a.tenant, zipf.Sample(&a.rng))
		// One tmp name per actor, reused every build (like real build
		// tools). Reuse also keeps the directory's tombstone set bounded
		// by the actor count instead of growing by one per build op —
		// with per-op unique names a million-op run makes every later
		// directory update quadratically slower.
		tmp := fmt.Sprintf("%s/.tmp-%d", e.dir(a.tenant), a.id)
		if err := a.sess.WriteFile(tmp, a.fillPage(byte(a.id^a.seq))); err != nil {
			return err
		}
		// Unlink may legitimately fail (target already replaced, or
		// gone after a faulted earlier build); the rename below surfaces
		// any real failure.
		_ = a.sess.Unlink(target)
		return a.sess.Rename(tmp, target)
	case OpReadDir:
		_, err := a.sess.ReadDir(e.dir(a.tenant))
		return err
	case OpStat:
		_, err := a.sess.Stat(e.file(a.tenant, zipf.Sample(&a.rng)))
		return err
	}
	return nil
}

// zipfFor lazily builds per-tenant popularity tables (shared across
// the tenant's actors; sampling takes the actor's RNG).
func (e *Engine) zipfFor(ti int) *Zipf {
	if e.zipfs == nil {
		e.zipfs = make([]*Zipf, len(e.cfg.Tenants))
	}
	if e.zipfs[ti] == nil {
		e.zipfs[ti] = NewZipf(e.cfg.Tenants[ti].Files, e.cfg.Tenants[ti].ZipfS)
	}
	return e.zipfs[ti]
}

// Run executes the whole schedule: Setup if needed, every Step, and a
// final drain. It returns the deterministic Result.
func (e *Engine) Run() (*Result, error) {
	if err := e.Setup(); err != nil {
		return nil, err
	}
	for e.Step() {
	}
	e.c.Network().Quiesce()
	e.c.Settle()
	return &e.res, nil
}

// Result returns the counters accumulated so far (chaos interleavings
// read it mid-run).
func (e *Engine) Result() *Result { return &e.res }
