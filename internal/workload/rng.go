// Package workload is a seeded, deterministic multi-tenant workload
// engine for the LOCUS simulation. It drives thousands of simulated
// tenant processes against a live cluster — Zipf-distributed file
// popularity, per-tenant op mixes — with every scheduling decision
// derived from the seed, so two runs with the same seed replay the
// same ops in the same order and produce byte-identical counters.
//
// The engine is a discrete-event simulator, not a goroutine fleet:
// actors are interleaved by a virtual-time heap on a single issuing
// thread, and the network is drained after every mutating op, so op
// counts, message counts, and simulated-clock latencies are pure
// functions of the seed. Wall-clock throughput is measured by callers
// (cmd/locus-bench, cmd/benchdiff) around Run; no wall-clock value
// ever enters a Result.
package workload

// rng is a splitmix64 pseudo-random stream. Each actor owns one,
// seeded from (engine seed, actor id), so actors draw independent,
// reproducible streams regardless of interleaving. splitmix64 is used
// instead of math/rand to pin the exact sequence across Go versions.
type rng struct{ state uint64 }

func newRNG(seed uint64) rng { return rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n). n must be > 0.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float64v returns a uniform float64 in [0, 1).
func (r *rng) float64v() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// mixSeed derives a child stream seed from a parent seed and an index
// (splitmix64 finalizer over the pair — cheap, well-distributed).
func mixSeed(seed uint64, idx uint64) uint64 {
	z := seed ^ (idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
