package workload

import "math/bits"

// Hist is a fixed-bucket log-linear latency histogram (HDR-style):
// values 0..31 land in exact unit buckets, larger values in 16
// sub-buckets per power of two, giving <= 6.25% relative error with a
// few hundred fixed buckets. Recording a million samples is two array
// increments per sample and quantiles never sort anything, so the
// histogram is safe on the workload engine's hot path and its output
// is deterministic.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // sub-buckets per octave
	// histBuckets covers every int64: exponents histSubBits..63 each
	// contribute histSub buckets on top of the 2*histSub linear ones.
	histBuckets = 2*histSub + (63-histSubBits)*histSub
)

// Hist's zero value is ready to use.
type Hist struct {
	buckets [histBuckets]int64
	count   int64
	sum     int64
	max     int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits+1
	shift := uint(exp - histSubBits)
	sub := int((u >> shift) & (histSub - 1))
	return (exp-histSubBits-1)*histSub + sub + 2*histSub
}

// bucketUpper returns the largest value stored in bucket i (the
// inverse of bucketIndex); quantiles report this upper bound.
func bucketUpper(i int) int64 {
	if i < 2*histSub {
		return int64(i)
	}
	exp := (i-2*histSub)/histSub + histSubBits + 1
	sub := (i - 2*histSub) % histSub
	shift := uint(exp - histSubBits)
	return int64(uint64(histSub+sub+1)<<shift - 1)
}

// Record adds one sample. Negative samples clamp to zero (the sim
// clock never runs backward; the clamp keeps a bad caller harmless).
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.count }

// Mean returns the exact arithmetic mean of the samples (the sum is
// tracked exactly; only quantiles are bucketed).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded sample, exactly.
func (h *Hist) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-th quantile (0 < q <= 1):
// the upper edge of the bucket holding the sample of rank
// ceil(q*count), clamped to the exact observed maximum so a high
// quantile never reports a value larger than any sample. Within-bucket
// error is bounded by the log-linear bucket width (<= 6.25%). Returns
// 0 on an empty histogram.
func (h *Hist) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	upper := bucketUpper(histBuckets - 1)
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			upper = bucketUpper(i)
			break
		}
	}
	if upper > h.max {
		upper = h.max
	}
	return upper
}

// Merge adds other's samples into h (exact: buckets add; max takes the
// larger).
func (h *Hist) Merge(other *Hist) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
