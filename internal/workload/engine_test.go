package workload

import (
	"strings"
	"testing"

	"repro/locus"
)

func run(t *testing.T, seed uint64, actors, ops, files int) (*Result, string) {
	t.Helper()
	c, err := locus.Simple(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	eng, err := New(c, Config{Seed: seed, Tenants: DefaultTenants(actors, ops, files)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, res.CounterTable()
}

// TestEngineDeterminism is the engine's core guarantee: two runs with
// the same seed on fresh clusters produce byte-identical counter
// tables — op counts, error counts, simulated time, and latency
// quantiles all replay exactly.
func TestEngineDeterminism(t *testing.T) {
	_, t1 := run(t, 7, 5, 400, 20)
	_, t2 := run(t, 7, 5, 400, 20)
	if t1 != t2 {
		t.Fatalf("same seed, different counter tables:\n--- run 1\n%s--- run 2\n%s", t1, t2)
	}
}

// TestEngineSeedSensitivity: a different seed must actually change the
// schedule (otherwise the determinism test proves nothing).
func TestEngineSeedSensitivity(t *testing.T) {
	_, t1 := run(t, 1, 4, 200, 10)
	_, t2 := run(t, 2, 4, 200, 10)
	if t1 == t2 {
		t.Fatal("seeds 1 and 2 produced identical tables — schedule is not seed-derived")
	}
}

// TestEngineRuns checks the workload completes its op budget and the
// result is internally consistent.
func TestEngineRuns(t *testing.T) {
	res, table := run(t, 11, 6, 300, 15)
	if res.Ops != 3*300 {
		t.Fatalf("ops = %d, want %d", res.Ops, 3*300)
	}
	var sum int64
	for _, n := range res.OpCount {
		sum += n
	}
	if sum != res.Ops {
		t.Fatalf("op counts sum %d != ops %d", sum, res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("healthy cluster produced %d op errors:\n%s", res.Errors, table)
	}
	if res.Lat.Count() != res.Ops {
		t.Fatalf("latency samples %d != ops %d", res.Lat.Count(), res.Ops)
	}
	if res.SimUs <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	if res.OpsPerSimSec() <= 0 {
		t.Fatal("ops/sim-sec not positive")
	}
	if !strings.Contains(table, "lat_us p50=") {
		t.Fatalf("counter table missing quantiles:\n%s", table)
	}
	for _, tr := range res.Tenant {
		if tr.Ops != 300 {
			t.Fatalf("tenant %s ran %d ops, want 300", tr.Name, tr.Ops)
		}
	}
}

// TestEngineStepAPI drives the engine one op at a time (the chaos
// plane's interface) and confirms Step exhausts exactly the budget.
func TestEngineStepAPI(t *testing.T) {
	c, err := locus.Simple(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	eng, err := New(c, Config{Seed: 3, Tenants: []TenantSpec{
		{Name: "solo", Mix: EditHeavy, Actors: 3, Ops: 50, Files: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Step() {
		t.Fatal("Step before Setup should refuse")
	}
	if err := eng.Setup(); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for eng.Step() {
		steps++
	}
	if steps != 50 {
		t.Fatalf("Step ran %d ops, want 50", steps)
	}
	if eng.Result().Ops != 50 {
		t.Fatalf("result ops = %d", eng.Result().Ops)
	}
}
