package workload

import (
	"math"
	"testing"
)

// TestZipfPinnedDraws pins the first draws of the canonical seeds so
// any change to the RNG, the seed derivation, or the CDF construction
// is caught as a determinism break, not discovered as an experiment
// diff.
func TestZipfPinnedDraws(t *testing.T) {
	want := map[uint64][]int{
		1:  {2, 19, 5, 61, 5, 0, 42, 17, 0, 45, 25, 0},
		7:  {4, 3, 41, 1, 0, 4, 6, 0, 91, 1, 99, 10},
		11: {50, 0, 0, 0, 42, 89, 21, 0, 0, 7, 2, 9},
	}
	for _, seed := range []uint64{1, 7, 11} {
		r := newRNG(mixSeed(seed, 0))
		z := NewZipf(100, 1.1)
		for i, w := range want[seed] {
			if got := z.Sample(&r); got != w {
				t.Errorf("seed %d draw %d = %d, want %d", seed, i, got, w)
			}
		}
	}
}

// TestZipfSkew sanity-checks the shape: rank 0 is the most popular and
// the head dominates.
func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.1)
	r := newRNG(123)
	counts := make([]int, 1000)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[z.Sample(&r)]++
	}
	if counts[0] < counts[1] || counts[0] < counts[10] || counts[0] < counts[100] {
		t.Fatalf("rank 0 not most popular: %d vs %d/%d/%d", counts[0], counts[1], counts[10], counts[100])
	}
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/draws < 0.5 {
		t.Fatalf("top 10%% of ranks drew only %.1f%% of samples — not skewed", 100*float64(head)/draws)
	}
}

// TestZipfUniform: non-positive exponent degenerates to uniform.
func TestZipfUniform(t *testing.T) {
	z := NewZipf(10, -1)
	r := newRNG(5)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Sample(&r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-10000) > 600 {
			t.Fatalf("uniform rank %d drew %d of 100000", i, c)
		}
	}
}

// TestZipfDeterminismAcrossRuns: two samplers with the same seed
// produce the same long sequence.
func TestZipfDeterminismAcrossRuns(t *testing.T) {
	z1, z2 := NewZipf(500, 1.1), NewZipf(500, 1.1)
	r1, r2 := newRNG(mixSeed(7, 3)), newRNG(mixSeed(7, 3))
	for i := 0; i < 50000; i++ {
		if a, b := z1.Sample(&r1), z2.Sample(&r2); a != b {
			t.Fatalf("draw %d differs: %d vs %d", i, a, b)
		}
	}
}
