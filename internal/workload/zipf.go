package workload

import (
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s — the classic file-popularity skew (a few hot files
// take most of the traffic). Implemented as a precomputed CDF plus
// binary search rather than math/rand's rejection sampler so the draw
// sequence is a stable function of the seed across Go releases.
type Zipf struct {
	cdf []float64 // cdf[i] = P(rank <= i), cdf[n-1] == 1
}

// NewZipf builds a sampler over n ranks with exponent s. n must be
// >= 1; s <= 0 degenerates to uniform.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		if s <= 0 {
			sum += 1
		} else {
			sum += 1 / math.Pow(float64(i+1), s)
		}
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // exact upper fence despite float rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one rank using r's next uniform variate.
func (z *Zipf) Sample(r *rng) int {
	u := r.float64v()
	return sort.SearchFloat64s(z.cdf, u)
}
