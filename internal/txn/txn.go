// Package txn implements the LOCUS nested transaction facility the
// paper cites as [MEUL83] ("a full implementation of nested
// transactions"): transactions bind a set of file updates together so
// they commit or abort as a unit, subtransactions can commit into or
// abort out of their parent independently, and partition changes abort
// the affected transaction subtrees ("Distributed Transaction: abort
// all related subtransactions in partition" — §5.6).
//
// The implementation builds directly on the filesystem's atomic
// single-file commit (§2.3.6): a transaction accumulates buffered
// updates and acquires each touched file's network-wide modify lock at
// first touch (the CSS's single-writer policy is the lock manager);
// top-level commit flushes every buffer through the shadow-page commit
// while still holding all locks, then releases them. Subtransaction
// commit merges its buffers into the parent; subtransaction abort
// discards them, leaving the parent's view intact.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/fs"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// SiteID aliases the shared site identifier.
type SiteID = vclock.SiteID

// Errors returned by transaction operations.
var (
	// ErrDone: operation on a committed or aborted transaction.
	ErrDone = errors.New("txn: transaction already completed")
	// ErrChildActive: commit/abort with an uncompleted subtransaction.
	ErrChildActive = errors.New("txn: subtransaction still active")
	// ErrAborted: the transaction was aborted (possibly by partition
	// cleanup) and cannot commit.
	ErrAborted = errors.New("txn: transaction aborted")
	// ErrConflictLock: another transaction (or plain process) holds the
	// modify lock on a touched file.
	ErrConflictLock = errors.New("txn: file locked by another writer")
)

// State is a transaction's lifecycle state.
type State int

// Transaction states.
const (
	Active State = iota
	Committed
	Aborted
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Manager coordinates transactions at one site.
type Manager struct {
	kernel *fs.Kernel

	mu     sync.Mutex
	nextID int
	active map[int]*Txn // top-level transactions
}

// NewManager creates a transaction manager bound to a site's kernel.
func NewManager(kernel *fs.Kernel) *Manager {
	return &Manager{kernel: kernel, active: make(map[int]*Txn)}
}

// lockedFile is a file whose network-wide modify lock this transaction
// tree holds, with the committed base content.
type lockedFile struct {
	handle *fs.File
	base   []byte
	// created marks files this transaction created (abort unlinks).
	created bool
	path    string
}

// Txn is a (possibly nested) transaction.
type Txn struct {
	mgr    *Manager
	id     int
	depth  int
	parent *Txn
	cred   *fs.Cred

	mu       sync.Mutex
	state    State
	children int
	// buffers holds this level's view of touched file contents (copy
	// on first touch from the parent's view or the committed base).
	buffers map[storage.FileID][]byte
	// locks lives only on the top-level transaction: every file whose
	// modify lock the tree holds.
	locks map[storage.FileID]*lockedFile
}

// Begin starts a top-level transaction.
func (m *Manager) Begin(cred *fs.Cred) *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	t := &Txn{
		mgr: m, id: m.nextID, cred: cred,
		buffers: make(map[storage.FileID][]byte),
		locks:   make(map[storage.FileID]*lockedFile),
	}
	m.active[t.id] = t
	return t
}

// Begin starts a subtransaction.
func (t *Txn) Begin() (*Txn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return nil, ErrDone
	}
	t.children++
	return &Txn{
		mgr: t.mgr, id: t.id, depth: t.depth + 1, parent: t, cred: t.cred,
		buffers: make(map[storage.FileID][]byte),
	}, nil
}

// State returns the transaction state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *Txn) root() *Txn {
	r := t
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// touch ensures the transaction tree holds the file's lock and this
// level has a buffer for it, creating the file if create is set.
func (t *Txn) touch(path string, create bool) (storage.FileID, error) {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return storage.FileID{}, ErrDone
	}
	t.mu.Unlock()

	root := t.root()
	k := t.mgr.kernel

	// Resolve (or create) and lock at the root.
	root.mu.Lock()
	var id storage.FileID
	var lf *lockedFile
	for fid, l := range root.locks {
		if l.path == path {
			id, lf = fid, l
			break
		}
	}
	root.mu.Unlock()

	if lf == nil {
		var handle *fs.File
		var isCreate bool
		if _, err := k.Resolve(t.cred, path); errors.Is(err, fs.ErrNotFound) && create {
			f, err := k.Create(t.cred, path, storage.TypeRegular, 0644)
			if err != nil {
				return storage.FileID{}, err
			}
			handle, isCreate = f, true
		} else if err != nil {
			return storage.FileID{}, err
		} else {
			f, err := k.Open(t.cred, path, fs.ModeModify)
			if err != nil {
				if errors.Is(err, fs.ErrBusy) {
					return storage.FileID{}, fmt.Errorf("%w: %s", ErrConflictLock, path)
				}
				return storage.FileID{}, err
			}
			handle = f
		}
		base, err := handle.ReadAll()
		if err != nil {
			handle.Close() //locus:vet-allow uncheckedcall abandoning the lock
			return storage.FileID{}, err
		}
		id = handle.ID()
		lf = &lockedFile{handle: handle, base: base, created: isCreate, path: path}
		root.mu.Lock()
		root.locks[id] = lf
		root.mu.Unlock()
	}

	// Ensure a buffer at this level: copy from the nearest ancestor's
	// view, or the committed base.
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.buffers[id]; !ok {
		t.buffers[id] = append([]byte(nil), t.viewLocked(id, lf)...)
	}
	return id, nil
}

// viewLocked returns the nearest buffered view of the file above this
// level (t.mu held; ancestors locked hand-over-hand is unnecessary
// because a parent cannot run concurrently with its active child in
// this API).
func (t *Txn) viewLocked(id storage.FileID, lf *lockedFile) []byte {
	for anc := t.parent; anc != nil; anc = anc.parent {
		if b, ok := anc.buffers[id]; ok {
			return b
		}
	}
	return lf.base
}

// ReadFile returns the transaction's view of a file.
func (t *Txn) ReadFile(path string) ([]byte, error) {
	// A pure read inside the transaction still takes the write lock in
	// this implementation (conservative two-phase locking at file
	// granularity).
	id, err := t.touch(path, false)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.buffers[id]...), nil
}

// WriteFile replaces the file's content in the transaction's view.
func (t *Txn) WriteFile(path string, data []byte) error {
	id, err := t.touch(path, false)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buffers[id] = append([]byte(nil), data...)
	return nil
}

// CreateFile creates a file within the transaction and sets its
// content. Abort of the (sub)tree unlinks it again.
func (t *Txn) CreateFile(path string, data []byte) error {
	id, err := t.touch(path, true)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buffers[id] = append([]byte(nil), data...)
	return nil
}

// AppendFile appends to the transaction's view of the file.
func (t *Txn) AppendFile(path string, data []byte) error {
	id, err := t.touch(path, false)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buffers[id] = append(t.buffers[id], data...)
	return nil
}

// Commit completes the transaction. A subtransaction's buffers merge
// into its parent (visible there, still undoable by the parent); the
// top-level commit flushes every touched file through the atomic
// shadow-page commit and releases all locks.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return ErrDone
	}
	if t.children > 0 {
		t.mu.Unlock()
		return ErrChildActive
	}
	t.mu.Unlock()

	if t.parent != nil {
		t.parent.mu.Lock()
		t.mu.Lock()
		for id, buf := range t.buffers {
			t.parent.buffers[id] = buf
		}
		t.state = Committed
		t.parent.children--
		t.mu.Unlock()
		t.parent.mu.Unlock()
		return nil
	}

	// Top level: flush while holding every lock, then release.
	t.mu.Lock()
	if t.state != Active { // re-check: partition cleanup may have aborted us
		t.mu.Unlock()
		return ErrAborted
	}
	locks := t.locks
	buffers := t.buffers
	t.state = Committed
	t.mu.Unlock()

	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for id, lf := range locks {
		if buf, dirty := buffers[id]; dirty {
			if err := lf.handle.WriteAll(buf); err != nil {
				keep(err)
			} else {
				keep(lf.handle.Commit())
			}
		}
		keep(lf.handle.Close())
	}
	t.mgr.mu.Lock()
	delete(t.mgr.active, t.id)
	t.mgr.mu.Unlock()
	return firstErr
}

// Abort undoes the transaction: a subtransaction's buffers are
// discarded (the parent's view is untouched); a top-level abort reverts
// every touched file and releases all locks. Files created inside the
// aborted scope are unlinked.
func (t *Txn) Abort() error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return ErrDone
	}
	t.state = Aborted
	t.mu.Unlock()

	if t.parent != nil {
		t.parent.mu.Lock()
		t.parent.children--
		t.parent.mu.Unlock()
		return nil
	}
	return t.releaseAborted()
}

// releaseAborted rolls back and releases a top-level transaction.
func (t *Txn) releaseAborted() error {
	k := t.mgr.kernel
	t.mu.Lock()
	locks := t.locks
	t.locks = map[storage.FileID]*lockedFile{}
	t.mu.Unlock()
	var firstErr error
	for _, lf := range locks {
		if err := lf.handle.Abort(); err != nil && firstErr == nil && !errors.Is(err, fs.ErrStale) {
			firstErr = err
		}
		lf.handle.Close() //locus:vet-allow uncheckedcall releasing
		if lf.created {
			if err := k.Unlink(t.cred, lf.path); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	t.mgr.mu.Lock()
	delete(t.mgr.active, t.id)
	t.mgr.mu.Unlock()
	return firstErr
}

// CleanupAfterPartitionChange aborts every active transaction that
// touched a file whose storage site left the partition — the
// "Distributed Transaction: abort all related subtransactions in
// partition" row of the §5.6 cleanup table. Returns the number of
// transactions aborted.
func (m *Manager) CleanupAfterPartitionChange(newPartition []SiteID) int {
	in := make(map[SiteID]bool, len(newPartition))
	for _, s := range newPartition {
		in[s] = true
	}
	m.mu.Lock()
	var doomed []*Txn
	for _, t := range m.active {
		t.mu.Lock()
		for _, lf := range t.locks {
			if lf.handle.Stale() || !in[lf.handle.SS()] {
				doomed = append(doomed, t)
				break
			}
		}
		t.mu.Unlock()
	}
	m.mu.Unlock()

	for _, t := range doomed {
		t.mu.Lock()
		if t.state == Active {
			t.state = Aborted
			t.mu.Unlock()
			t.releaseAborted() // error unchecked by design: best-effort rollback during failure handling
		} else {
			t.mu.Unlock()
		}
	}
	if len(doomed) > 0 {
		m.kernel.Node().Network().Meter().AddTxnPartitionAborts(len(doomed))
	}
	return len(doomed)
}

// CrashLocal discards every active transaction when this site crashes
// (§5.6): the buffered updates and the lock table are volatile and die
// with the site. No rollback RPCs are attempted — the modify locks are
// reclaimed by the filesystem's own crash cleanup at the surviving
// sites. Registered via netsim.OnCrash in the cluster wiring.
func (m *Manager) CrashLocal() {
	m.mu.Lock()
	active := m.active
	m.active = make(map[int]*Txn)
	m.mu.Unlock()
	for _, t := range active {
		t.mu.Lock()
		if t.state == Active {
			t.state = Aborted
		}
		t.locks = map[storage.FileID]*lockedFile{}
		t.mu.Unlock()
	}
}

// ActiveCount reports the number of live top-level transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}
