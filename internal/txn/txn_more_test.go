package txn_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs"
	"repro/internal/txn"
)

func TestConcurrentTransactionsDisjointFiles(t *testing.T) {
	c := cluster.Simple(3)
	defer c.Close()
	for i := 0; i < 9; i++ {
		seed(t, c.K(1), fmt.Sprintf("/t%d", i), "0")
	}
	c.Settle()
	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := txn.NewManager(c.K(fs.SiteID(1 + i%3)))
			tx := m.Begin(cred())
			if err := tx.WriteFile(fmt.Sprintf("/t%d", i), []byte("done")); err != nil {
				errs <- err
				return
			}
			if err := tx.Commit(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	c.Settle()
	for i := 0; i < 9; i++ {
		if got := read(t, c.K(2), fmt.Sprintf("/t%d", i)); got != "done" {
			t.Errorf("t%d = %q", i, got)
		}
	}
}

func TestSiblingSubtransactions(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	seed(t, c.K(1), "/ledger", "")
	m := txn.NewManager(c.K(1))
	root := m.Begin(cred())
	// Three sibling subtransactions, sequentially (siblings may not
	// run concurrently against the same file in this model).
	for i := 0; i < 3; i++ {
		sub, err := root.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := sub.AppendFile("/ledger", []byte(fmt.Sprintf("entry %d\n", i))); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// The middle one aborts; its entry must vanish.
			if err := sub.Abort(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := sub.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := root.Commit(); err != nil {
		t.Fatal(err)
	}
	got := read(t, c.K(1), "/ledger")
	if got != "entry 0\nentry 2\n" {
		t.Fatalf("ledger = %q", got)
	}
}

func TestTxnCreateVisibleOnlyAfterTopCommit(t *testing.T) {
	c := cluster.Simple(2)
	defer c.Close()
	m := txn.NewManager(c.K(1))
	tx := m.Begin(cred())
	if err := tx.CreateFile("/staged", []byte("data")); err != nil {
		t.Fatal(err)
	}
	c.Settle() // propagate the name; the content stays uncommitted
	// The file exists in the catalog (created via the normal create
	// path) but its content commits with the transaction; concurrent
	// writers are excluded by the held lock.
	if _, err := c.K(2).Open(cred(), "/staged", fs.ModeModify); !errors.Is(err, fs.ErrBusy) {
		t.Fatalf("concurrent modify open: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	if got := read(t, c.K(2), "/staged"); got != "data" {
		t.Fatalf("staged = %q", got)
	}
}

func TestAbortOfDeepSubtreeViaParent(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	seed(t, c.K(1), "/f", "base")
	m := txn.NewManager(c.K(1))
	t0 := m.Begin(cred())
	t1, _ := t0.Begin()
	t2, _ := t1.Begin()
	if err := t2.WriteFile("/f", []byte("deep change")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Everything committed up to t0; t0 aborts the lot.
	if err := t0.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := read(t, c.K(1), "/f"); got != "base" {
		t.Fatalf("f = %q", got)
	}
	if m.ActiveCount() != 0 {
		t.Fatal("leaked transaction")
	}
}

func TestBeginOnCompletedTxnFails(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	m := txn.NewManager(c.K(1))
	tx := m.Begin(cred())
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Begin(); !errors.Is(err, txn.ErrDone) {
		t.Fatalf("err = %v", err)
	}
}

func TestLockHeldAcrossSubtransactions(t *testing.T) {
	// The file lock acquired by a subtransaction belongs to the tree:
	// after the sub commits, a competing external writer still cannot
	// open the file until the top level finishes.
	c := cluster.Simple(2)
	defer c.Close()
	seed(t, c.K(1), "/f", "x")
	c.Settle()
	m := txn.NewManager(c.K(1))
	root := m.Begin(cred())
	sub, _ := root.Begin()
	if err := sub.WriteFile("/f", []byte("sub")); err != nil {
		t.Fatal(err)
	}
	if err := sub.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.K(2).Open(cred(), "/f", fs.ModeModify); !errors.Is(err, fs.ErrBusy) {
		t.Fatalf("external writer during txn: %v", err)
	}
	if err := root.Commit(); err != nil {
		t.Fatal(err)
	}
	f, err := c.K(2).Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatalf("after commit: %v", err)
	}
	f.Close() //nolint:errcheck
}

func TestPartitionCleanupLeavesUnrelatedTxns(t *testing.T) {
	c := cluster.Simple(3)
	defer c.Close()
	seed(t, c.K(1), "/local", "a")
	seed(t, c.K(1), "/remote", "b")
	if err := c.K(1).SetReplication(cred(), "/local", []fs.SiteID{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.K(1).SetReplication(cred(), "/remote", []fs.SiteID{3}); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	m := txn.NewManager(c.K(1))
	safe := m.Begin(cred())
	if err := safe.WriteFile("/local", []byte("safe")); err != nil {
		t.Fatal(err)
	}
	doomed := m.Begin(cred())
	if err := doomed.WriteFile("/remote", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	c.Partition([]fs.SiteID{1, 2}, []fs.SiteID{3})
	if n := m.CleanupAfterPartitionChange([]fs.SiteID{1, 2}); n != 1 {
		t.Fatalf("cleanup aborted %d, want 1", n)
	}
	if safe.State() != txn.Active || doomed.State() != txn.Aborted {
		t.Fatalf("safe=%v doomed=%v", safe.State(), doomed.State())
	}
	if err := safe.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := read(t, c.K(2), "/local"); got != "safe" {
		t.Fatalf("local = %q", got)
	}
}
