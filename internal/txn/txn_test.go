package txn_test

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fs"
	"repro/internal/storage"
	"repro/internal/txn"
)

func cred() *fs.Cred { return fs.DefaultCred("tester") }

func seed(t *testing.T, k *fs.Kernel, path, data string) {
	t.Helper()
	f, err := k.Create(cred(), path, storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte(data)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, k *fs.Kernel, path string) string {
	t.Helper()
	f, err := k.Open(cred(), path, fs.ModeRead)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close() //nolint:errcheck
	b, err := f.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCommitMakesAllChangesVisible(t *testing.T) {
	c := cluster.Simple(2)
	defer c.Close()
	seed(t, c.K(1), "/a", "a0")
	seed(t, c.K(1), "/b", "b0")
	c.Settle()

	m := txn.NewManager(c.K(1))
	tx := m.Begin(cred())
	if err := tx.WriteFile("/a", []byte("a1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteFile("/b", []byte("b1")); err != nil {
		t.Fatal(err)
	}
	// Outside the transaction nothing is visible yet.
	if got := read(t, c.K(2), "/a"); got != "a0" {
		t.Fatalf("uncommitted change visible: %q", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	if read(t, c.K(2), "/a") != "a1" || read(t, c.K(2), "/b") != "b1" {
		t.Fatal("committed changes not visible")
	}
	if m.ActiveCount() != 0 {
		t.Fatal("transaction leaked")
	}
}

func TestAbortUndoesEverything(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	seed(t, c.K(1), "/a", "orig")

	m := txn.NewManager(c.K(1))
	tx := m.Begin(cred())
	if err := tx.WriteFile("/a", []byte("scribble")); err != nil {
		t.Fatal(err)
	}
	if err := tx.CreateFile("/new", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := read(t, c.K(1), "/a"); got != "orig" {
		t.Fatalf("abort left %q", got)
	}
	if _, err := c.K(1).Stat(cred(), "/new"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("created file survived abort: %v", err)
	}
}

func TestNestedCommitIntoParentThenParentAbort(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	seed(t, c.K(1), "/f", "base")

	m := txn.NewManager(c.K(1))
	parent := m.Begin(cred())
	sub, err := parent.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.WriteFile("/f", []byte("sub-change")); err != nil {
		t.Fatal(err)
	}
	if err := sub.Commit(); err != nil {
		t.Fatal(err)
	}
	// The subtransaction's change is visible in the parent...
	v, err := parent.ReadFile("/f")
	if err != nil || string(v) != "sub-change" {
		t.Fatalf("parent view %q, %v", v, err)
	}
	// ...but the parent can still abort it all.
	if err := parent.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := read(t, c.K(1), "/f"); got != "base" {
		t.Fatalf("parent abort left %q", got)
	}
}

func TestNestedAbortKeepsParentView(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	seed(t, c.K(1), "/f", "base")

	m := txn.NewManager(c.K(1))
	parent := m.Begin(cred())
	if err := parent.WriteFile("/f", []byte("parent-change")); err != nil {
		t.Fatal(err)
	}
	sub, err := parent.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.WriteFile("/f", []byte("sub-change")); err != nil {
		t.Fatal(err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	v, err := parent.ReadFile("/f")
	if err != nil || string(v) != "parent-change" {
		t.Fatalf("parent view after sub abort: %q, %v", v, err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := read(t, c.K(1), "/f"); got != "parent-change" {
		t.Fatalf("final content %q", got)
	}
}

func TestDeepNesting(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	seed(t, c.K(1), "/f", "0")

	m := txn.NewManager(c.K(1))
	t0 := m.Begin(cred())
	t1, _ := t0.Begin()
	t2, _ := t1.Begin()
	t3, _ := t2.Begin()
	if err := t3.WriteFile("/f", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	for _, tx := range []*txn.Txn{t3, t2, t1, t0} {
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := read(t, c.K(1), "/f"); got != "deep" {
		t.Fatalf("content %q", got)
	}
}

func TestCommitWithActiveChildRefused(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	m := txn.NewManager(c.K(1))
	parent := m.Begin(cred())
	sub, _ := parent.Begin()
	if err := parent.Commit(); !errors.Is(err, txn.ErrChildActive) {
		t.Fatalf("err = %v, want ErrChildActive", err)
	}
	if err := sub.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := parent.Commit(); !errors.Is(err, txn.ErrDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestTransactionIsolationViaLocks(t *testing.T) {
	c := cluster.Simple(2)
	defer c.Close()
	seed(t, c.K(1), "/f", "base")
	c.Settle()

	m1 := txn.NewManager(c.K(1))
	m2 := txn.NewManager(c.K(2))
	t1 := m1.Begin(cred())
	if err := t1.WriteFile("/f", []byte("t1")); err != nil {
		t.Fatal(err)
	}
	// A concurrent transaction at another site cannot touch the file.
	t2 := m2.Begin(cred())
	if err := t2.WriteFile("/f", []byte("t2")); !errors.Is(err, txn.ErrConflictLock) {
		t.Fatalf("err = %v, want ErrConflictLock", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// After t1 releases, t2 can proceed.
	if err := t2.WriteFile("/f", []byte("t2")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	c.Settle()
	if got := read(t, c.K(1), "/f"); got != "t2" {
		t.Fatalf("content %q", got)
	}
}

func TestPartitionAbortsTransactionsTouchingLostSites(t *testing.T) {
	// §5.6 cleanup table, "Distributed Transaction" row.
	c := cluster.Simple(3)
	defer c.Close()
	seed(t, c.K(1), "/remote-only", "base")
	if err := c.K(1).SetReplication(cred(), "/remote-only", []fs.SiteID{3}); err != nil {
		t.Fatal(err)
	}
	c.Settle()

	m2 := txn.NewManager(c.K(2))
	tx := m2.Begin(cred())
	if err := tx.WriteFile("/remote-only", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Site 3 — the storage site — leaves the partition.
	c.Partition([]fs.SiteID{1, 2}, []fs.SiteID{3})
	if n := m2.CleanupAfterPartitionChange([]fs.SiteID{1, 2}); n != 1 {
		t.Fatalf("cleanup aborted %d transactions, want 1", n)
	}
	if tx.State() != txn.Aborted {
		t.Fatalf("state = %v, want Aborted", tx.State())
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrDone) {
		t.Fatalf("commit of aborted txn: %v", err)
	}
	// The doomed update never became visible.
	c.Heal()
	c.Settle()
	if got := read(t, c.K(3), "/remote-only"); got != "base" {
		t.Fatalf("content %q, want base", got)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	c := cluster.Simple(1)
	defer c.Close()
	seed(t, c.K(1), "/f", "v0")
	m := txn.NewManager(c.K(1))
	tx := m.Begin(cred())
	if err := tx.AppendFile("/f", []byte("+v1")); err != nil {
		t.Fatal(err)
	}
	v, err := tx.ReadFile("/f")
	if err != nil || string(v) != "v0+v1" {
		t.Fatalf("view %q, %v", v, err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}
