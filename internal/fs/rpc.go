package fs

// At-most-once RPC wrappers over the netsim transport.
//
// The paper's problem-oriented protocols carry no low-level
// acknowledgements (§2.3): when a message is lost the virtual circuit
// resets and the *operation* level must recover. These wrappers are
// that recovery: a bounded retry loop driven by the simulated clock's
// backoff, with mutating requests tagged by a per-site sequence number
// so the callee's dedup table makes retries at-most-once (a commit
// whose response was lost must not commit twice; a create must not
// allocate two inodes).
//
// Error taxonomy the wrappers enforce for callers:
//   - netsim.ErrTimeout:      message lost, retried here; surfaces only
//                             after the budget is exhausted.
//   - netsim.ErrUnreachable:  no circuit (partition) — not retried; the
//                             partition/merge protocols own recovery.
//   - netsim.ErrCrashed:      destination down — not retried; wraps
//                             ErrUnreachable.
//   - netsim.ErrCircuitClosed: circuit died mid-exchange — not retried
//                             blindly (the operation may have applied);
//                             cleanup (§5.6) decides per resource.

import (
	"errors"

	"repro/internal/netsim"
)

// rpcRetryBudget bounds transmissions per logical request. With the
// fault plane's default timeout this bounds the virtual time one
// exchange can burn before its error surfaces.
const rpcRetryBudget = 8

// mutating lists the methods that change remote state and therefore
// must be deduplicated when retried. Reads (mRead, mGetVV, mPullOpen,
// mReadPhys, mPullPages, mListInodes) stay seq-less: they are
// idempotent reads of immutable snapshot pages, and exempting them
// keeps page payloads out of the dedup tables.
var mutating = map[string]bool{
	mOpen:         true, // installs CSS lock-table + SS serving state
	mSSOpen:       true, // installs SS serving state
	mCommit:       true, // bumps the version vector, commits the shadow inode
	mClose:        true, // tears down serving state
	mSSClose:      true, // releases the CSS lock entry
	mCreate:       true, // allocates a FileID
	mSSCreate:     true, // durably commits the birth inode
	mResolveShip:  true, // may perform dirops at the shipped-to site
	mLeaseRevoke:  true, // tears down lease state at the holder
	mLeaseRelease: true, // removes the CSS delegate record
}

// call is the kernel's RPC entry point: Node.Call with LOCUS retry
// semantics. Mutating methods get a fresh at-most-once sequence number
// that all retransmissions share.
func (k *Kernel) call(to SiteID, method string, payload any) (any, error) {
	var seq int64
	if mutating[method] {
		seq = k.node.NextSeq()
	}
	clk := k.node.Network().Clock()
	var err error
	for attempt := 0; attempt < rpcRetryBudget; attempt++ {
		var v any
		v, err = k.node.CallSeq(to, method, payload, seq) //locusvet:allow rawcall // the one legitimate raw transport use in fs
		if err == nil || !errors.Is(err, netsim.ErrTimeout) {
			return v, err
		}
		clk.Backoff(attempt)
	}
	return nil, err
}

// cast is the kernel's one-way send with retry. Every fs one-way
// (mWrite with absolute page content, mPropNotify, mSetAttr with
// absolute values, mMarkConflict) is idempotent, so retransmission
// needs no dedup.
func (k *Kernel) cast(to SiteID, method string, payload any) error {
	clk := k.node.Network().Clock()
	var err error
	for attempt := 0; attempt < rpcRetryBudget; attempt++ {
		err = k.node.Cast(to, method, payload) //locusvet:allow rawcall // see call
		if err == nil || !errors.Is(err, netsim.ErrTimeout) {
			return err
		}
		clk.Backoff(attempt)
	}
	return err
}
