package fs

// Deep filesystem check ("locus-fsck"): the global structural
// invariants the chaos harness asserts after every run, exposed as a
// library so the fsck command and tests share one implementation.
//
// The checks encode what the paper's machinery guarantees once a
// partition history has been fully healed and reconciled (§4):
//
//   - no shadow page leaks: every physical page a container stores is
//     referenced by some committed inode (shadow pages are either
//     committed or freed — §2.3.6);
//   - no orphan inodes: every live file is reachable from its
//     filegroup root through live directory entries (a half-created
//     file whose directory entry was lost to a replayed or abandoned
//     create is exactly the damage at-most-once dedup prevents);
//   - no dangling entries: every live directory entry names an inode
//     that exists, live, at some pack;
//   - directories decode (naming catalogs are never torn — §2.3.4);
//   - converged (optional, post-merge): all copies of a file carry
//     equal version vectors and identical content, and no copy is in
//     unresolved conflict.

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/format"
	"repro/internal/storage"
)

// FsckFinding is one violation discovered by FsckCluster.
type FsckFinding struct {
	Site SiteID
	ID   storage.FileID
	Kind string // page-leak | orphan-inode | dangling-entry | corrupt-directory | vv-divergence | content-divergence | conflict | stranded-lease
	Msg  string
}

func (f FsckFinding) String() string {
	return fmt.Sprintf("site %d %v %s: %s", f.Site, f.ID, f.Kind, f.Msg)
}

// FsckOptions selects which invariant families to check.
type FsckOptions struct {
	// Converged additionally requires every file's copies to agree
	// (equal VVs, identical bytes, no conflict flags). Only valid after
	// a full heal + merge + reconcile + settle; mid-history the copies
	// legitimately diverge.
	Converged bool
}

// FsckCluster runs the deep check across all kernels of a cluster and
// returns every violation found (nil means clean).
func FsckCluster(kernels []*Kernel, opts FsckOptions) []FsckFinding {
	var out []FsckFinding

	// inode copies by file id, and decoded directories by file id.
	type copyAt struct {
		site SiteID
		k    *Kernel
		ino  *storage.Inode
	}
	copies := make(map[storage.FileID][]copyAt)
	dirs := make(map[storage.FileID]*format.Directory)
	fgs := make(map[storage.FilegroupID]bool)

	for _, k := range kernels {
		for _, fg := range k.store.Filegroups() {
			fgs[fg] = true
			c := k.store.Container(fg)
			referenced := make(map[storage.PhysPage]bool)
			for _, num := range c.ListInodes() {
				ino, err := c.GetInode(num)
				if err != nil {
					continue
				}
				id := storage.FileID{FG: fg, Inode: num}
				copies[id] = append(copies[id], copyAt{site: k.site, k: k, ino: ino})
				for _, p := range ino.Pages {
					if p != storage.PhysPageNil {
						referenced[p] = true
					}
				}
				if ino.Deleted {
					continue
				}
				if ino.Type == storage.TypeDirectory || ino.Type == storage.TypeHiddenDir {
					data, err := readWholeLocal(c, ino)
					if err != nil {
						out = append(out, FsckFinding{Site: k.site, ID: id, Kind: "corrupt-directory",
							Msg: fmt.Sprintf("unreadable directory content: %v", err)})
						continue
					}
					d, err := format.DecodeDir(data)
					if err != nil {
						out = append(out, FsckFinding{Site: k.site, ID: id, Kind: "corrupt-directory",
							Msg: fmt.Sprintf("undecodable directory: %v", err)})
						continue
					}
					if dirs[id] == nil {
						dirs[id] = d
					} else {
						// Union entries across copies so reachability is
						// judged against everything any site links.
						for _, e := range d.Entries {
							if _, ok := dirs[id].LookupAny(e.Name); !ok {
								dirs[id].PutRaw(e)
							}
						}
					}
				}
			}
			// Shadow-page leak: stored pages not referenced by any
			// committed inode of this container.
			if leak := c.PageCount() - len(referenced); leak > 0 {
				out = append(out, FsckFinding{Site: k.site, Kind: "page-leak",
					ID:  storage.FileID{FG: fg},
					Msg: fmt.Sprintf("%d stored physical pages not referenced by any committed inode", leak)})
			}
		}
	}

	// Reachability: BFS each filegroup from its root over live entries
	// of the unioned directory copies.
	reachable := make(map[storage.FileID]bool)
	fgList := make([]storage.FilegroupID, 0, len(fgs))
	for fg := range fgs {
		fgList = append(fgList, fg)
	}
	sort.Slice(fgList, func(i, j int) bool { return fgList[i] < fgList[j] })
	for _, fg := range fgList {
		root := storage.FileID{FG: fg, Inode: RootInode}
		queue := []storage.FileID{root}
		reachable[root] = true
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			d := dirs[id]
			if d == nil {
				continue
			}
			for _, e := range d.Live() {
				child := storage.FileID{FG: fg, Inode: e.Inode}
				if !reachable[child] {
					reachable[child] = true
					queue = append(queue, child)
				}
				// Dangling entry: the named inode is live nowhere.
				live := false
				for _, cp := range copies[child] {
					if !cp.ino.Deleted {
						live = true
						break
					}
				}
				if !live {
					out = append(out, FsckFinding{Site: copies[id][0].site, ID: id, Kind: "dangling-entry",
						Msg: fmt.Sprintf("live entry %q names inode %d, which is live at no site", e.Name, e.Inode)})
				}
			}
		}
	}

	// Orphans and (optionally) convergence, in deterministic order.
	ids := make([]storage.FileID, 0, len(copies))
	for id := range copies {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].FG != ids[j].FG {
			return ids[i].FG < ids[j].FG
		}
		return ids[i].Inode < ids[j].Inode
	})
	for _, id := range ids {
		cps := copies[id]
		liveSites := make([]SiteID, 0, len(cps))
		for _, cp := range cps {
			if !cp.ino.Deleted {
				liveSites = append(liveSites, cp.site)
			}
		}
		if len(liveSites) > 0 && !reachable[id] {
			out = append(out, FsckFinding{Site: liveSites[0], ID: id, Kind: "orphan-inode",
				Msg: fmt.Sprintf("live %v inode (nlink=%d, owner=%s, size=%d, vv=%v, sites=%v) unreachable from the filegroup root",
					cps[0].ino.Type, cps[0].ino.Nlink, cps[0].ino.Owner, cps[0].ino.Size, cps[0].ino.VV, liveSites)})
		}
		if !opts.Converged {
			continue
		}
		var ref copyAt
		for _, cp := range cps {
			if cp.ino.Conflict {
				out = append(out, FsckFinding{Site: cp.site, ID: id, Kind: "conflict",
					Msg: "copy still flagged as unresolved conflict after reconciliation"})
			}
			if cp.ino.Deleted {
				continue
			}
			if ref.k == nil {
				ref = cp
				continue
			}
			if !cp.ino.VV.Equal(ref.ino.VV) {
				out = append(out, FsckFinding{Site: cp.site, ID: id, Kind: "vv-divergence",
					Msg: fmt.Sprintf("VV %v at site %d != %v at site %d", cp.ino.VV, cp.site, ref.ino.VV, ref.site)})
				continue
			}
			a, errA := readWholeLocal(ref.k.store.Container(id.FG), ref.ino)
			b, errB := readWholeLocal(cp.k.store.Container(id.FG), cp.ino)
			if errA != nil || errB != nil || !bytes.Equal(a, b) {
				out = append(out, FsckFinding{Site: cp.site, ID: id, Kind: "content-divergence",
					Msg: fmt.Sprintf("equal VV %v but content differs between sites %d and %d", cp.ino.VV, ref.site, cp.site)})
			}
		}
	}

	// Stranded leases: every lease held at a using site must be backed
	// by the matching record at the file's CSS. The dangerous direction
	// is a holder the CSS no longer tracks — it would serve stale reads
	// (or squat the writer slot) unsupervised, since no revoke round
	// will ever visit it. The reverse direction (a CSS record with no
	// holder) is self-healing — the next conflicting open revokes it
	// and the holder answers Released — so it is not flagged.
	byID := make(map[SiteID]*Kernel, len(kernels))
	for _, k := range kernels {
		byID[k.site] = k
	}
	for _, k := range kernels {
		held := k.Leases()
		hids := make([]storage.FileID, 0, len(held))
		for id := range held {
			hids = append(hids, id)
		}
		sort.Slice(hids, func(i, j int) bool {
			if hids[i].FG != hids[j].FG {
				return hids[i].FG < hids[j].FG
			}
			return hids[i].Inode < hids[j].Inode
		})
		for _, id := range hids {
			mode := held[id]
			css, err := k.CSSOf(id.FG)
			if err != nil {
				out = append(out, FsckFinding{Site: k.site, ID: id, Kind: "stranded-lease",
					Msg: fmt.Sprintf("%v lease held with no CSS reachable in the partition", mode)})
				continue
			}
			ck := byID[css]
			if ck == nil {
				continue // CSS outside the checked set; nothing to compare against
			}
			ck.mu.Lock()
			ok := false
			if e := ck.cssState[id]; e != nil {
				if mode == ModeModify {
					ok = e.writerUS == k.site
				} else {
					_, ok = e.delegates[k.site]
				}
			}
			ck.mu.Unlock()
			if !ok {
				out = append(out, FsckFinding{Site: k.site, ID: id, Kind: "stranded-lease",
					Msg: fmt.Sprintf("%v lease held at site %d but CSS site %d has no matching record", mode, k.site, css)})
			}
		}
	}
	return out
}

// readWholeLocal reads a file's committed content from the local
// container (no network, no serving state).
func readWholeLocal(c *storage.Container, ino *storage.Inode) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("fs: no local container")
	}
	var buf []byte
	for pn := 0; pn < ino.NPages(); pn++ {
		pg, err := c.ReadLogicalPage(ino.Num, storage.PageNo(pn))
		if err != nil {
			return nil, err
		}
		buf = append(buf, pg...)
	}
	if int64(len(buf)) > ino.Size {
		buf = buf[:ino.Size]
	}
	return buf, nil
}
