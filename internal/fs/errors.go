package fs

import "errors"

// Errors returned by filesystem system calls. They mirror the failure
// modes the paper calls out: synchronization refusals at the CSS, no
// reachable storage site, unresolved version conflicts, and plain Unix
// naming errors.
var (
	// ErrNotFound: no live entry by that name.
	ErrNotFound = errors.New("fs: no such file or directory")
	// ErrExists: create of a name that already exists.
	ErrExists = errors.New("fs: file exists")
	// ErrNotDir: a pathname component is not a directory.
	ErrNotDir = errors.New("fs: not a directory")
	// ErrIsDir: data operation on a directory opened without intent.
	ErrIsDir = errors.New("fs: is a directory")
	// ErrBusy: the CSS synchronization policy refused the open (a
	// second simultaneous open for modification).
	ErrBusy = errors.New("fs: file busy (synchronization policy refused open)")
	// ErrNoStorageSite: no reachable pack in this partition stores an
	// up-to-date copy.
	ErrNoStorageSite = errors.New("fs: no available storage site")
	// ErrNoCSS: no pack site of the filegroup is in this partition, so
	// no current synchronization site exists.
	ErrNoCSS = errors.New("fs: filegroup has no CSS in this partition")
	// ErrConflict: the copy is marked in version conflict; normal opens
	// fail until reconciled (§4.6).
	ErrConflict = errors.New("fs: file is in version conflict; reconcile first")
	// ErrStale: the served copy became unavailable and no substitute of
	// the same version could be found.
	ErrStale = errors.New("fs: open file lost its storage site")
	// ErrClosed: operation on a closed file handle.
	ErrClosed = errors.New("fs: file handle is closed")
	// ErrReadOnly: write through a read-mode handle.
	ErrReadOnly = errors.New("fs: file not open for modification")
	// ErrBadName: illegal pathname component.
	ErrBadName = errors.New("fs: invalid pathname")
	// ErrNotEmpty: removing a non-empty directory.
	ErrNotEmpty = errors.New("fs: directory not empty")
	// ErrCrossFilegroup: hard links must stay within one filegroup.
	ErrCrossFilegroup = errors.New("fs: link across filegroups")
	// ErrDeleted: operation on a file whose inode is a delete tombstone.
	ErrDeleted = errors.New("fs: file has been deleted")
)
