package fs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// BootSite builds the storage for one site per the configuration and
// returns its filesystem kernel attached to the node. meter may be nil.
// A misconfigured pack (bad inode range, duplicate filegroup) is a
// configuration error, not a crash.
func BootSite(node *netsim.Node, cfg *Config, meter storage.Meter, costs storage.Costs) (*Kernel, error) {
	store := storage.NewStore(node.ID())
	for _, d := range cfg.Filegroups {
		for _, p := range d.Packs {
			if p.Site != node.ID() {
				continue
			}
			c, err := storage.NewContainer(d.FG, p.Site, p.Lo, p.Hi, meter, costs)
			if err != nil {
				return nil, fmt.Errorf("fs: booting site %d: %w", node.ID(), err)
			}
			if err := store.AddContainer(c); err != nil {
				return nil, fmt.Errorf("fs: booting site %d: %w", node.ID(), err)
			}
		}
	}
	return NewKernel(node, store, cfg), nil
}

// Format initializes a freshly booted set of kernels: it writes each
// filegroup's root directory to all of its packs and creates the
// mount-point directories in parent filegroups. Kernels must cover
// every pack site in the configuration.
func Format(kernels map[SiteID]*Kernel, cfg *Config) error {
	// 1. Root directories, replicated at every pack with a vector
	// stamped at the first pack (the filegroup's birth site).
	for _, d := range cfg.Filegroups {
		first := d.Packs[0].Site
		root := &storage.Inode{
			Num:   RootInode,
			Type:  storage.TypeDirectory,
			Owner: "root",
			Mode:  0755,
			Nlink: 1,
			Sites: d.PackSites(),
			VV:    vclock.New().Bump(first),
		}
		for _, p := range d.Packs {
			k := kernels[p.Site]
			if k == nil {
				return fmt.Errorf("fs: no kernel for pack site %d of filegroup %d", p.Site, d.FG)
			}
			c := k.container(d.FG)
			if c == nil {
				return fmt.Errorf("fs: site %d has no container for filegroup %d", p.Site, d.FG)
			}
			if c.HasInode(RootInode) {
				continue // already formatted
			}
			if err := c.CommitInode(root); err != nil {
				return err
			}
		}
	}

	// 2. Mount-point directories, shortest paths first so parents exist.
	mounts := make([]FilegroupDesc, 0, len(cfg.Filegroups))
	for _, d := range cfg.Filegroups {
		if d.MountPath != "/" {
			mounts = append(mounts, d)
		}
	}
	sort.Slice(mounts, func(i, j int) bool {
		return strings.Count(mounts[i].MountPath, "/") < strings.Count(mounts[j].MountPath, "/")
	})
	cred := DefaultCred("root")
	for _, d := range mounts {
		// Any kernel can drive the creation; use the mounted
		// filegroup's first pack site.
		k := kernels[d.Packs[0].Site]
		if _, err := k.Resolve(cred, d.MountPath); err == nil {
			continue // mount point already resolves (through the mount)
		}
		if err := k.Mkdir(cred, d.MountPath, 0755); err != nil {
			return fmt.Errorf("fs: creating mount point %s: %w", d.MountPath, err)
		}
	}
	return nil
}
