package fs

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

func testCache() *pageCache { return newPageCache(&netsim.Stats{}) }

func fid(n storage.InodeNum) storage.FileID {
	return storage.FileID{FG: 1, Inode: n}
}

func pageBytes(b byte) []byte {
	p := make([]byte, storage.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestPageCacheHitRequiresVVAtLeastHandleVV(t *testing.T) {
	pc := testCache()
	v1 := vclock.New().Bump(1)
	v2 := v1.Copy().Bump(2)

	pc.put(fid(1), 0, pageBytes('a'), storage.PageSize, v1, false)

	// A handle that synchronized on v1 is served the v1 page.
	if data, size, ok := pc.get(fid(1), 0, v1); !ok || size != storage.PageSize || data[0] != 'a' {
		t.Fatalf("get(v1) = %v,%d,%v; want hit", data != nil, size, ok)
	}
	// A handle that synchronized on v2 must NOT be served the v1 page;
	// the stale entry is evicted.
	if _, _, ok := pc.get(fid(1), 0, v2); ok {
		t.Fatal("stale v1 page served to a handle synchronized on v2")
	}
	if pc.len() != 0 {
		t.Fatalf("stale entry not evicted: len=%d", pc.len())
	}
	// A v2 page serves both a v2 handle and an older v1 handle (newer
	// than the open's sync point is allowed; older never is).
	pc.put(fid(1), 0, pageBytes('b'), storage.PageSize, v2, false)
	if _, _, ok := pc.get(fid(1), 0, v2); !ok {
		t.Fatal("v2 page should serve v2 handle")
	}
	if _, _, ok := pc.get(fid(1), 0, v1); !ok {
		t.Fatal("v2 page should serve v1 handle")
	}
}

func TestPageCacheNeverCachesUncommitted(t *testing.T) {
	pc := testCache()
	pc.put(fid(1), 0, pageBytes('w'), storage.PageSize, nil, false)
	if pc.len() != 0 {
		t.Fatal("in-core (nil-VV) page must not be cached")
	}
}

func TestPageCacheInvalidateFile(t *testing.T) {
	pc := testCache()
	v1 := vclock.New().Bump(1)
	for pn := storage.PageNo(0); pn < 4; pn++ {
		pc.put(fid(1), pn, pageBytes('a'), 4*storage.PageSize, v1, false)
		pc.put(fid(2), pn, pageBytes('b'), 4*storage.PageSize, v1, false)
	}
	if n := pc.invalidateFile(fid(1)); n != 4 {
		t.Fatalf("invalidateFile dropped %d pages, want 4", n)
	}
	if _, _, ok := pc.get(fid(1), 0, v1); ok {
		t.Fatal("invalidated page still served")
	}
	if _, _, ok := pc.get(fid(2), 0, v1); !ok {
		t.Fatal("other file's pages must survive invalidation")
	}
}

func TestPageCacheLRUEviction(t *testing.T) {
	pc := testCache()
	v1 := vclock.New().Bump(1)
	for i := 0; i < cacheCapPages+8; i++ {
		pc.put(fid(storage.InodeNum(i+1)), 0, pageBytes('x'), storage.PageSize, v1, false)
	}
	if pc.len() != cacheCapPages {
		t.Fatalf("cache holds %d pages, cap is %d", pc.len(), cacheCapPages)
	}
	// The oldest entries were evicted; the newest survive.
	if _, _, ok := pc.get(fid(1), 0, v1); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	if _, _, ok := pc.get(fid(storage.InodeNum(cacheCapPages+8)), 0, v1); !ok {
		t.Fatal("newest entry should still be cached")
	}
}

func TestPageCacheDisableFlushesAndBypasses(t *testing.T) {
	pc := testCache()
	v1 := vclock.New().Bump(1)
	pc.put(fid(1), 0, pageBytes('a'), storage.PageSize, v1, false)
	pc.setEnabled(false)
	if pc.len() != 0 {
		t.Fatal("disabling must flush the cache")
	}
	pc.put(fid(1), 0, pageBytes('a'), storage.PageSize, v1, false)
	if pc.len() != 0 {
		t.Fatal("disabled cache must not accept pages")
	}
}

// TestMergePartialPageCopies is the regression test for the WriteAt
// partial-page merge: the fetched page may alias a cached committed
// page, so the merge must never mutate its input in place.
func TestMergePartialPageCopies(t *testing.T) {
	old := bytes.Repeat([]byte{'o'}, storage.PageSize)
	orig := append([]byte(nil), old...)
	merged := mergePartialPage(old, 100, []byte("NEW"))
	if !bytes.Equal(old, orig) {
		t.Fatal("mergePartialPage mutated the source page in place")
	}
	want := append([]byte(nil), orig...)
	copy(want[100:], "NEW")
	if !bytes.Equal(merged, want) {
		t.Fatal("mergePartialPage produced wrong contents")
	}
	if len(merged) != storage.PageSize {
		t.Fatalf("merged page is %d bytes, want %d", len(merged), storage.PageSize)
	}
}
