package fs

import (
	"fmt"
	"sort"

	"repro/internal/lint/invariant"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// pageSpan computes the logical pages covering [off, off+n).
func pageSpan(off int64, n int) (first, last storage.PageNo) {
	first = storage.PageNo(off / storage.PageSize)
	last = storage.PageNo((off + int64(n) - 1) / storage.PageSize)
	return first, last
}

// ReadAt reads up to len(p) bytes at offset off, returning the count
// read. Reads past end of file return a short count (0 at or past EOF).
// Data is fetched page-at-a-time: locally through the container, or
// with the two-message network read protocol of §2.3.3.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if f.stale {
		return 0, fmt.Errorf("%w: %v", ErrStale, f.id)
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, fmt.Errorf("fs: negative offset %d", off)
	}
	// For the writer, EOF is the in-core size this handle maintains;
	// for readers it is discovered from the SS per page.
	size := f.ino.Size
	total := 0
	for total < len(p) {
		cur := off + int64(total)
		if cur >= size && f.mode == ModeModify {
			break
		}
		pn := storage.PageNo(cur / storage.PageSize)
		data, ssSize, owned, err := f.fetchPage(pn)
		if err != nil {
			return total, err
		}
		size = ssSize
		if f.mode != ModeModify {
			f.ino.Size = ssSize
		}
		if cur >= size {
			if owned {
				storage.PutPageBuf(data)
			}
			break
		}
		pageOff := int(cur % storage.PageSize)
		avail := int64(len(data)) - int64(pageOff)
		if rem := size - (cur - int64(pageOff)); rem < int64(len(data)) {
			avail = rem - int64(pageOff)
		}
		if avail <= 0 {
			if owned {
				storage.PutPageBuf(data)
			}
			break
		}
		n := copy(p[total:], data[pageOff:int64(pageOff)+avail])
		if owned {
			// The page was copied into the caller's buffer; recycle the
			// exclusively owned fetch buffer.
			storage.PutPageBuf(data)
		}
		total += n
		if n == 0 {
			break
		}
	}
	return total, nil
}

// fetchPage returns one logical page and the file size at the SS.
// Remote committed reads consult the using-site page cache first
// (§2.2.1 buffer management); a miss runs the two-message read protocol
// of §2.3.3 with adaptive streaming readahead, depositing the piggy-
// backed pages into the cache for the sequential reads that follow.
//
// The returned owned flag reports buffer ownership: a locally served
// page is an exclusive pooled copy the caller must release with
// storage.PutPageBuf once it has copied the bytes out; a remote or
// cached page aliases an immutable shared buffer (readResp declares
// netsim.ImmutablePayload) and must never be released.
func (f *File) fetchPage(pn storage.PageNo) (data []byte, size int64, owned bool, err error) {
	k := f.k
	incore := f.mode == ModeModify
	if f.ss == k.site {
		data, size, _, err := k.localPage(f.id, pn, incore, f.us, false)
		return data, size, true, err
	}
	if incore {
		// The writer reads its own in-core (shadowed) state at the SS;
		// uncommitted data never enters the committed-page cache.
		resp, err := k.call(f.ss, mRead, &readReq{ID: f.id, Page: pn, Incore: true})
		if err != nil {
			return nil, 0, false, err
		}
		r := resp.(*readResp)
		return r.Data, r.Size, false, nil
	}

	// Track sequentiality: the window doubles while the reader keeps
	// advancing page by page and resets on a seek.
	sequential := pn == f.raNext
	f.raNext = pn + 1
	cached := k.cache.isEnabled()
	if f.readahead && cached {
		if !sequential {
			f.raWindow = 0
		} else if f.raWindow == 0 {
			f.raWindow = 1
		} else if f.raWindow < RAMax {
			f.raWindow *= 2
			if f.raWindow > RAMax {
				f.raWindow = RAMax
			}
		}
	}

	if cached {
		if data, size, ok := k.cache.get(f.id, pn, f.ino.VV); ok {
			return data, size, false, nil
		}
	}

	req := &readReq{ID: f.id, Page: pn}
	if f.readahead && cached {
		req.Readahead = f.raWindow
	}
	resp, err := k.call(f.ss, mRead, req)
	if err != nil {
		return nil, 0, false, err
	}
	r := resp.(*readResp)
	k.cache.put(f.id, pn, r.Data, r.Size, r.VV, false)
	for i, extra := range r.Extra {
		k.cache.put(f.id, pn+1+storage.PageNo(i), extra, r.Size, r.VV, true)
	}
	return r.Data, r.Size, false, nil
}

// zeroPage is the page served for holes on the zero-copy path. It is
// immutable by the same contract as every shared page buffer: all
// receivers copy out of served pages, none write into them.
var zeroPage = make([]byte, storage.PageSize)

// localPage serves a page at the storage site: from the writer's
// in-core (shadowed) inode when incore is set and the requester is the
// writer, otherwise from the committed disk inode. The returned version
// vector is the committed version served, or nil for in-core state
// (which must never be cached as committed).
//
// shared selects buffer ownership. With shared=false the returned page
// is an exclusive pooled copy the caller owns (and may release with
// storage.PutPageBuf). With shared=true — the network serve path — the
// container's internal buffer is returned without copying; it is
// immutable (shadow pages are never rewritten) and is protected from
// pool recycling by the container's shared-page tracking, so it may be
// shipped in an ImmutablePayload response and aliased by remote caches.
func (k *Kernel) localPage(id storage.FileID, pn storage.PageNo, incore bool, us SiteID, shared bool) ([]byte, int64, vclock.VV, error) {
	c := k.container(id.FG)
	if c == nil {
		return nil, 0, nil, fmt.Errorf("%w: %v at site %d", ErrNoStorageSite, id, k.site)
	}
	var ino *storage.Inode
	fromIncore := false
	if incore {
		k.mu.Lock()
		sv := k.ssState[id]
		if sv != nil && sv.writerUS == us && sv.incore != nil {
			ino = sv.incore.Clone()
			fromIncore = true
		}
		k.mu.Unlock()
	}
	if ino == nil {
		var err error
		ino, err = c.GetInode(id.Inode)
		if err != nil {
			return nil, 0, nil, err
		}
	}
	var vv vclock.VV
	if !fromIncore {
		vv = ino.VV
	}
	if int(pn) >= len(ino.Pages) || ino.Pages[pn] == storage.PhysPageNil {
		if shared {
			return zeroPage, ino.Size, vv, nil
		}
		return storage.GetPageBuf(), ino.Size, vv, nil
	}
	pp := ino.Pages[pn]
	var data []byte
	var err error
	if shared {
		data, err = c.ReadPageShared(pp)
	} else {
		data, err = c.ReadPage(pp)
	}
	if err != nil {
		return nil, 0, nil, err
	}
	return data, ino.Size, vv, nil
}

func (k *Kernel) handleRead(from SiteID, p any) (any, error) {
	req := p.(*readReq)
	data, size, vv, err := k.localPage(req.ID, req.Page, req.Incore, from, true)
	if err != nil {
		return nil, err
	}
	resp := &readResp{Data: data, Size: size, VV: vv}
	// Streaming readahead: piggyback the following pages while the
	// reader is sequential. Bounds are checked before fetching so no
	// disk time is charged for pages past end of file.
	n := req.Readahead
	if n > RAMax {
		n = RAMax
	}
	for i := 1; i <= n; i++ {
		next := req.Page + storage.PageNo(i)
		if int64(next)*storage.PageSize >= size {
			break
		}
		extra, _, _, err := k.localPage(req.ID, next, req.Incore, from, true)
		if err != nil {
			break // serve what we have; the US fetches the rest on demand
		}
		resp.Extra = append(resp.Extra, extra)
	}
	if len(resp.Extra) > 0 {
		k.meter().AddReadaheadSent(len(resp.Extra))
	}
	return resp, nil
}

// WriteAt writes p at offset off through a modify-mode handle. Whole
// pages are shipped with the one-message write protocol (§2.3.5);
// partial pages are first read with the read protocol, merged, and
// shipped whole.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if f.stale {
		return 0, fmt.Errorf("%w: %v", ErrStale, f.id)
	}
	if f.mode != ModeModify {
		return 0, ErrReadOnly
	}
	if len(p) == 0 {
		return 0, nil
	}
	if off < 0 {
		return 0, fmt.Errorf("fs: negative offset %d", off)
	}
	total := 0
	for total < len(p) {
		cur := off + int64(total)
		pn := storage.PageNo(cur / storage.PageSize)
		pageOff := int(cur % storage.PageSize)
		n := storage.PageSize - pageOff
		if n > len(p)-total {
			n = len(p) - total
		}
		var page []byte
		var merged bool
		if pageOff == 0 && n == storage.PageSize {
			// Entire page changes: no read needed (§2.3.5).
			page = p[total : total+n]
		} else {
			// Partial page: read-merge-write.
			old, _, owned, err := f.fetchPage(pn)
			if err != nil {
				return total, err
			}
			page = mergePartialPage(old, pageOff, p[total:total+n])
			merged = true
			if owned {
				storage.PutPageBuf(old)
			}
		}
		newSize := f.ino.Size
		if end := cur + int64(n); end > newSize {
			newSize = end
		}
		err := f.sendWrite(pn, page, newSize)
		if merged {
			// sendWrite never retains the page (the local SS copies it
			// into a shadow page synchronously; the remote path ships a
			// private copy), so the merge buffer recycles.
			storage.PutPageBuf(page)
		}
		if err != nil {
			return total, err
		}
		f.ino.Size = newSize
		f.dirty[pn] = true
		total += n
	}
	return total, nil
}

// mergePartialPage returns a fresh pooled page holding old with src
// written at off. The fetched page may alias a cached committed page
// (or the SS's committed page buffer on a local open); merging must
// never mutate it in place. The caller owns the returned buffer.
func mergePartialPage(old []byte, off int, src []byte) []byte {
	page := storage.GetPageBuf()[:len(old)]
	copy(page, old)
	copy(page[off:], src)
	return page
}

// Append writes p at the current end of file.
func (f *File) Append(p []byte) (int, error) { return f.WriteAt(p, f.ino.Size) }

func (f *File) sendWrite(pn storage.PageNo, page []byte, size int64) error {
	k := f.k
	if f.ss == k.site {
		// Local SS: applyWrite copies the data into a pooled shadow-page
		// buffer before returning, so the caller's buffer crosses without
		// a defensive copy.
		_, err := k.applyWrite(k.site, &writeReq{ID: f.id, Page: pn, Data: page, Size: size})
		return err
	}
	// Remote SS: the cast is delivered asynchronously and the caller may
	// reuse its buffer the moment we return, so ship a private copy.
	req := &writeReq{ID: f.id, Page: pn, Data: append([]byte(nil), page...), Size: size}
	return k.cast(f.ss, mWrite, req)
}

// applyWrite is the SS side of the write protocol: allocate a shadow
// page, install it in the in-core inode. "The entire shadow page
// mechanism is implemented at the SS and is transparent to the US"
// (§2.3.6).
func (k *Kernel) applyWrite(from SiteID, req *writeReq) (any, error) {
	c := k.container(req.ID.FG)
	if c == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoStorageSite, req.ID)
	}
	k.mu.Lock()
	sv := k.ssState[req.ID]
	if sv == nil || sv.writerUS != from || sv.incore == nil {
		k.mu.Unlock()
		// The modify open is gone (e.g. cleaned up after a partition
		// change); the one-way write is dropped, and the US will learn
		// at commit/close.
		return nil, nil
	}
	ino := sv.incore
	if req.Data == nil {
		// Truncate: shrink the page table, freeing shadow pages past
		// the new end (committed pages are freed only by commit).
		nPages := int((req.Size + storage.PageSize - 1) / storage.PageSize)
		var drop []storage.PhysPage
		for i := nPages; i < len(ino.Pages); i++ {
			if pp := ino.Pages[i]; pp != storage.PhysPageNil && !sv.committedPages[pp] {
				drop = append(drop, pp)
			}
		}
		ino.Pages = ino.Pages[:min(nPages, len(ino.Pages))]
		ino.Size = req.Size
		sv.truncated = true
		k.mu.Unlock()
		c.FreePages(drop...)
		return nil, nil
	}
	k.mu.Unlock()

	// If this logical page was already shadowed during this modify
	// session, reuse the shadow page in place (§2.3.6: "After the first
	// time the page is modified, it is marked as being a shadow page
	// and reused in place").
	k.mu.Lock()
	var reuse storage.PhysPage
	if int(req.Page) < len(ino.Pages) {
		if pp := ino.Pages[req.Page]; pp != storage.PhysPageNil && !sv.committedPages[pp] {
			reuse = pp
		}
	}
	k.mu.Unlock()

	pp, err := c.WritePage(req.Data)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.ssState[req.ID] != sv || sv.writerUS != from {
		// Serving state torn down while we wrote: discard the page.
		c.FreePages(pp)
		return nil, nil
	}
	for int(req.Page) >= len(ino.Pages) {
		ino.Pages = append(ino.Pages, storage.PhysPageNil)
	}
	ino.Pages[req.Page] = pp
	if reuse != storage.PhysPageNil {
		c.FreePages(reuse)
	}
	ino.Size = req.Size
	sv.dirty[req.Page] = true
	return nil, nil
}

func (k *Kernel) handleWrite(from SiteID, p any) (any, error) {
	return k.applyWrite(from, p.(*writeReq))
}

// Truncate sets the file size (shrinking drops whole pages past the new
// end). Implemented as an in-core inode update committed like any other
// modification.
func (f *File) Truncate(size int64) error {
	if f.closed {
		return ErrClosed
	}
	if f.mode != ModeModify {
		return ErrReadOnly
	}
	if size < 0 {
		return fmt.Errorf("fs: negative size %d", size)
	}
	// Data == nil marks a truncate in the write protocol.
	k := f.k
	req := &writeReq{ID: f.id, Page: 0, Data: nil, Size: size}
	var err error
	if f.ss == k.site {
		_, err = k.applyWrite(k.site, req)
	} else {
		err = k.cast(f.ss, mWrite, req)
	}
	if err != nil {
		return err
	}
	f.ino.Size = size
	f.dirty[0] = true
	return nil
}

// Commit atomically commits all changes made through this handle since
// the last commit (§2.3.6). On return the new version is durable at
// the SS and propagation to the other storage sites has been scheduled.
func (f *File) Commit() error {
	return f.commitOrAbort(false)
}

// Abort undoes all changes back to the previous commit point.
func (f *File) Abort() error {
	return f.commitOrAbort(true)
}

func (f *File) commitOrAbort(abort bool) error {
	if f.closed {
		return ErrClosed
	}
	if f.stale {
		return fmt.Errorf("%w: %v", ErrStale, f.id)
	}
	if f.mode != ModeModify {
		return ErrReadOnly
	}
	k := f.k
	req := &commitReq{ID: f.id, US: f.us, Abort: abort}
	var resp any
	var err error
	if f.ss == k.site {
		resp, err = k.handleCommit(k.site, req)
	} else {
		resp, err = k.call(f.ss, mCommit, req)
	}
	if err != nil {
		return err
	}
	r := resp.(*commitResp)
	f.ino.VV = r.VV.Copy()
	// The committed image changed (or, on abort, reverted): any pages
	// this US cached for the file are out of date.
	k.cache.invalidateFile(f.id)
	if abort {
		// Reload the committed inode image.
		f.refreshFromSS()
	}
	f.dirty = make(map[storage.PageNo]bool)
	return nil
}

func (f *File) refreshFromSS() {
	k := f.k
	if f.ss == k.site {
		if c := k.container(f.id.FG); c != nil {
			if ino, err := c.GetInode(f.id.Inode); err == nil {
				f.ino = ino
			}
		}
		return
	}
	if resp, err := k.call(f.ss, mPullOpen, &pullOpenReq{ID: f.id}); err == nil {
		f.ino = resp.(*pullOpenResp).Ino.Clone()
	}
}

// handleCommit is the SS side of commit/abort. Commit installs the
// in-core inode as the disk inode (atomic), bumps the version vector at
// this site, and notifies the file's other storage sites and the CSS
// (§2.3.6). Abort discards the in-core state and frees shadow pages.
func (k *Kernel) handleCommit(from SiteID, p any) (any, error) {
	req := p.(*commitReq)
	c := k.container(req.ID.FG)
	if c == nil {
		return nil, fmt.Errorf("%w: %v", ErrNoStorageSite, req.ID)
	}
	k.mu.Lock()
	sv := k.ssState[req.ID]
	if sv == nil || sv.writerUS != from || sv.incore == nil {
		k.mu.Unlock()
		return nil, fmt.Errorf("%w: no modify open of %v from site %d", ErrStale, req.ID, from)
	}
	if req.Abort {
		// Free shadow pages; keep serving state for further writes.
		var drop []storage.PhysPage
		for _, pp := range sv.incore.Pages {
			if pp != storage.PhysPageNil && !sv.committedPages[pp] {
				drop = append(drop, pp)
			}
		}
		k.mu.Unlock()
		c.FreePages(drop...)
		ino, err := c.GetInode(req.ID.Inode)
		if err != nil {
			return nil, err
		}
		k.mu.Lock()
		sv.incore = ino.Clone()
		sv.committedPages = pageSet(ino.Pages)
		sv.dirty = make(map[storage.PageNo]bool)
		k.mu.Unlock()
		return &commitResp{VV: ino.VV.Copy()}, nil
	}

	// Commit: bump the version vector at this (storage) site and move
	// the in-core inode to the disk inode.
	sv.incore.VV = sv.incore.VV.Copy().Bump(k.site)
	ino := sv.incore.Clone()
	var pages []storage.PageNo
	if !sv.truncated {
		pages = make([]storage.PageNo, 0, len(sv.dirty))
		for pn := range sv.dirty {
			pages = append(pages, pn)
		}
		// The page list rides the commit notifications; keep its order
		// independent of map iteration.
		sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	}
	sv.dirty = make(map[storage.PageNo]bool)
	sv.truncated = false
	k.mu.Unlock()

	if invariant.Enabled {
		// A commit must install a version that strictly dominates the
		// committed one it replaces: the in-core inode started from the
		// committed image and was just bumped at this site (§2.3.6), and
		// the single-writer lock excludes concurrent committers.
		if prev, err := c.GetInode(req.ID.Inode); err == nil {
			invariant.Assertf(ino.VV.Compare(prev.VV) == vclock.Dominates,
				"fs: commit of %v would install %v over non-dominated committed %v", req.ID, ino.VV, prev.VV)
		}
	}
	if err := c.CommitInode(ino); err != nil {
		return nil, err
	}

	k.mu.Lock()
	sv.committedPages = pageSet(ino.Pages)
	k.mu.Unlock()

	k.notifyCommit(req.ID, ino, pages)
	return &commitResp{VV: ino.VV.Copy()}, nil
}

// notifyCommit sends the one-way commit notifications: to every other
// storage site of the file so they pull the new version, and to the
// CSS so its latest-version knowledge stays current.
func (k *Kernel) notifyCommit(id storage.FileID, ino *storage.Inode, pages []storage.PageNo) {
	note := &propNotify{
		ID: id, VV: ino.VV.Copy(), Origin: k.site,
		Pages: pages, Sites: ino.Sites,
		InodeOnly: pages != nil && len(pages) == 0,
	}
	if ino.Deleted {
		note.Pages = nil // deletes always ship the whole (empty) state
	}
	sent := map[SiteID]bool{k.site: true}
	for _, s := range ino.Sites {
		if !sent[s] && k.inPartition(s) {
			sent[s] = true
			k.cast(s, mPropNotify, note) //locus:vet-allow uncheckedcall unreachable peers pull at merge
		}
	}
	if css, err := k.CSSOf(id.FG); err == nil && !sent[css] {
		k.cast(css, mPropNotify, note) //locus:vet-allow uncheckedcall see above
	}
	// The committing site applies its own notification locally (updates
	// CSS knowledge if this site is the CSS; the pull is a no-op since
	// our copy is the new version).
	k.applyPropNotify(k.site, note)
}

// Close closes the handle. Closing a modify handle first commits
// outstanding changes ("closing a file commits it" — §2.3.6), then
// runs the 4-message close protocol of §2.3.3 so the SS and CSS can
// deallocate in-core state. Internal opens close with no messages.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	k := f.k
	defer func() {
		k.mu.Lock()
		f.closed = true
		delete(k.openFiles, f)
		k.mu.Unlock()
	}()

	if f.stale {
		return nil // error already delivered through the descriptor
	}
	if f.mode == ModeModify && len(f.dirty) > 0 {
		if err := f.Commit(); err != nil {
			return err
		}
	}
	if f.internal {
		return nil
	}
	if (f.delegated || f.leased) && k.closeUnderLease(f) {
		// Zero wire messages: a delegated reader holds no serving
		// state, and a leased writer's commit is already durable — the
		// serving state stays live for the next local open and the CSS
		// recalls it with fs.leaserevoke when a conflicting open needs
		// it.
		return nil
	}
	req := &closeReq{ID: f.id, US: f.us, Mode: f.mode}
	var err error
	if f.ss == k.site {
		_, err = k.handleClose(k.site, req)
	} else {
		_, err = k.call(f.ss, mClose, req)
	}
	return err
}

// handleClose is the SS side of the close protocol: release serving
// state, then inform the CSS (the response ordering fixes the reopen
// race described in the paper's close footnote).
func (k *Kernel) handleClose(from SiteID, p any) (any, error) {
	req := p.(*closeReq)
	k.mu.Lock()
	sv := k.ssState[req.ID]
	var freed []storage.PhysPage
	if sv != nil {
		if req.Mode == ModeModify && sv.writerUS == from {
			// Uncommitted changes at close are discarded (the US
			// commits before closing in the normal path).
			if sv.incore != nil {
				for _, pp := range sv.incore.Pages {
					if pp != storage.PhysPageNil && !sv.committedPages[pp] {
						freed = append(freed, pp)
					}
				}
			}
			sv.writerUS = vclock.NoSite
			sv.incore = nil
			sv.committedPages = nil
			sv.dirty = nil
		} else if req.Mode == ModeRead {
			if sv.readers[from] > 1 {
				sv.readers[from]--
			} else {
				delete(sv.readers, from)
			}
		}
		if sv.writerUS == vclock.NoSite && len(sv.readers) == 0 {
			delete(k.ssState, req.ID)
		}
	}
	k.mu.Unlock()
	if len(freed) > 0 {
		if c := k.container(req.ID.FG); c != nil {
			c.FreePages(freed...)
		}
	}

	// Tell the CSS so it can deallocate in-core state and update
	// synchronization information; we respond to the US only after the
	// CSS has answered, closing the reopen race.
	css, err := k.CSSOf(req.ID.FG)
	if err != nil {
		return nil, nil // no CSS in partition: nothing to tell
	}
	screq := &ssCloseReq{ID: req.ID, SS: k.site, US: from, Mode: req.Mode}
	if c := k.container(req.ID.FG); c != nil {
		if ino, err := c.GetInode(req.ID.Inode); err == nil {
			screq.VV = ino.VV
			screq.Sites = ino.Sites
		}
	}
	if css == k.site {
		return k.handleSSClose(k.site, screq)
	}
	if _, err := k.call(css, mSSClose, screq); err != nil {
		return nil, nil // CSS unreachable: partition cleanup will fix the lock table
	}
	return nil, nil
}

// handleSSClose is the CSS side of the close protocol.
func (k *Kernel) handleSSClose(_ SiteID, p any) (any, error) {
	req := p.(*ssCloseReq)
	k.mu.Lock()
	defer k.mu.Unlock()
	e := k.cssState[req.ID]
	if e == nil {
		return nil, nil
	}
	// Absorb the closing SS's version knowledge before releasing any
	// lock, so the next open synchronizes against the new version even
	// if the commit notification cast is still in flight.
	if req.VV != nil && req.VV.Compare(e.latestVV) == vclock.Dominates {
		e.latestVV = req.VV.Copy()
		if req.Sites != nil {
			e.sites = append([]SiteID(nil), req.Sites...)
		}
	}
	if req.Mode == ModeModify && e.writerUS == req.US {
		e.writerUS = vclock.NoSite
		e.writerSS = vclock.NoSite
	} else if req.Mode == ModeRead {
		if e.readers[req.US] > 1 {
			e.readers[req.US]--
		} else {
			delete(e.readers, req.US)
			delete(e.readerSS, req.US)
		}
	}
	return nil, nil
}

// ReadAll reads the whole file through the handle.
func (f *File) ReadAll() ([]byte, error) {
	size := f.ino.Size
	buf := make([]byte, size)
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// WriteAll truncates the file to exactly p and leaves it uncommitted.
func (f *File) WriteAll(p []byte) error {
	if err := f.Truncate(0); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	_, err := f.WriteAt(p, 0)
	return err
}
