// Package fs implements the LOCUS distributed filesystem (§2 of the
// paper): a single network-wide naming tree built from replicated
// filegroups, with transparent remote access through the three logical
// sites of every file operation — using site (US), storage site (SS)
// and current synchronization site (CSS) — atomic file commit via
// shadow pages, pull-based update propagation, and context-sensitive
// hidden directories.
//
// Each participating machine runs a Kernel, which owns that site's
// containers (internal/storage) and its attachment to the network
// (internal/netsim). All inter-site interaction uses the specialized
// message protocols of §2.3; their message counts match the paper
// (general open 4, read 2, write 1, close 4) and are verified by tests.
package fs

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// SiteID aliases the shared site identifier type.
type SiteID = vclock.SiteID

// OpenMode says what an open intends. LOCUS synchronization policy
// (§2.3.1) is enforced per-mode at the CSS.
type OpenMode int

const (
	// ModeRead opens for reading committed data.
	ModeRead OpenMode = iota
	// ModeModify opens for modification; at most one such open per
	// file network-wide (the default LOCUS policy used in the paper's
	// examples).
	ModeModify
	// ModeInternal is an internal unsynchronized read used by pathname
	// searching (§2.3.4): no global lock is taken at the CSS.
	ModeInternal
)

func (m OpenMode) String() string {
	switch m {
	case ModeRead:
		return "read"
	case ModeModify:
		return "modify"
	case ModeInternal:
		return "internal"
	default:
		return fmt.Sprintf("OpenMode(%d)", int(m))
	}
}

// PackDesc describes one physical container of a filegroup.
type PackDesc struct {
	Site SiteID
	// Lo, Hi bound the pack's private inode allocation range.
	Lo, Hi storage.InodeNum
}

// FilegroupDesc describes a logical filegroup: where it is mounted in
// the global tree and which sites hold physical containers.
type FilegroupDesc struct {
	FG storage.FilegroupID
	// MountPath is "/" for the root filegroup, otherwise the absolute
	// path where this filegroup's root directory is attached.
	MountPath string
	Packs     []PackDesc
}

// PackSites returns the pack sites in declaration order.
func (d FilegroupDesc) PackSites() []SiteID {
	out := make([]SiteID, len(d.Packs))
	for i, p := range d.Packs {
		out[i] = p.Site
	}
	return out
}

// RootInode is the inode number of every filegroup's root directory.
const RootInode storage.InodeNum = 1

// Config is the replicated filesystem configuration: the logical mount
// table plus pack placement. The paper keeps this state replicated at
// all sites (§2.1) and requires the mount hierarchy to be the same
// everywhere (§5.1); we model that by sharing one immutable Config.
type Config struct {
	Filegroups []FilegroupDesc

	mountByPath map[string]storage.FilegroupID
	byFG        map[storage.FilegroupID]FilegroupDesc
}

// NewConfig validates and indexes a filesystem configuration. Exactly
// one filegroup must be mounted at "/".
func NewConfig(fgs []FilegroupDesc) (*Config, error) {
	c := &Config{
		Filegroups:  fgs,
		mountByPath: make(map[string]storage.FilegroupID),
		byFG:        make(map[storage.FilegroupID]FilegroupDesc),
	}
	root := false
	for _, d := range fgs {
		if len(d.Packs) == 0 {
			return nil, fmt.Errorf("fs: filegroup %d has no packs", d.FG)
		}
		if _, dup := c.byFG[d.FG]; dup {
			return nil, fmt.Errorf("fs: duplicate filegroup %d", d.FG)
		}
		if _, dup := c.mountByPath[d.MountPath]; dup {
			return nil, fmt.Errorf("fs: duplicate mount path %q", d.MountPath)
		}
		if d.MountPath == "/" {
			root = true
		}
		c.byFG[d.FG] = d
		c.mountByPath[d.MountPath] = d.FG
	}
	if !root {
		return nil, fmt.Errorf("fs: no filegroup mounted at /")
	}
	return c, nil
}

// FG returns the descriptor for a filegroup.
func (c *Config) FG(fg storage.FilegroupID) (FilegroupDesc, bool) {
	d, ok := c.byFG[fg]
	return d, ok
}

// MountAt returns the filegroup mounted at an absolute path, if any.
func (c *Config) MountAt(path string) (storage.FilegroupID, bool) {
	fg, ok := c.mountByPath[path]
	return fg, ok
}

// Cred is the per-process context a system call executes under. It
// carries the paper's inherited per-process state: the default number
// of copies for created files (§2.3.7) and the hidden-directory context
// list (§2.4.1).
type Cred struct {
	// User is the requesting user (owner of created files; conflict
	// mail recipient).
	User string
	// NCopies is the inherited default replication factor for created
	// files; the effective factor is min(NCopies, parent directory's).
	// Zero means "inherit the parent directory's factor".
	NCopies int
	// HiddenCtx is the per-process context for hidden directories,
	// tried in order (e.g. ["vax", "generic"]).
	HiddenCtx []string
}

// DefaultCred returns a usable credential for user u.
func DefaultCred(u string) *Cred { return &Cred{User: u} }

// ssServe is SS-side state for one file with at least one remote or
// local open being served from this storage site.
type ssServe struct {
	id storage.FileID
	// incore is the in-core inode: for a writer it accumulates shadow
	// pages; for readers it is a snapshot of the committed inode.
	incore *storage.Inode
	// committedPages remembers the committed page table at open time so
	// abort can release only true shadow pages.
	committedPages map[storage.PhysPage]bool
	writerUS       SiteID // NoSite when no open-for-modify in progress
	dirty          map[storage.PageNo]bool
	truncated      bool           // a truncate happened: propagate the whole file
	readers        map[SiteID]int // US -> open count being served
}

// cssEntry is CSS-side synchronization state for one file: the lock
// table entry rebuilt on reconfiguration (§5.6).
type cssEntry struct {
	id       storage.FileID
	writerUS SiteID         // site with the single open-for-modify
	writerSS SiteID         // storage site serving that writer
	readers  map[SiteID]int // US -> count of read opens
	readerSS map[SiteID]SiteID
	// latestVV is the most current version the CSS knows of (§2.3.1:
	// the CSS "must have knowledge of ... what the most current
	// version of the file is").
	latestVV vclock.VV
	sites    []SiteID // packs storing the file, from the disk inode
	// delegates maps using sites holding a read delegation to the VV it
	// was stamped with. A delegate is not in readers: it opens, reads,
	// and closes locally, and the CSS only hears from it again on a
	// revoke round or a voluntary release.
	delegates map[SiteID]vclock.VV
}

// propTask is one queued propagation pull (§2.3.6: "A queue of
// propagation requests is kept by the kernel at each site and a kernel
// process services the queue").
type propTask struct {
	id     storage.FileID
	vv     vclock.VV
	origin SiteID
	pages  []storage.PageNo // nil = whole file
	// drop marks a replica-retirement task: this pack is no longer in
	// the file's storage-site list, and may discard its copy once every
	// listed site holds the current version ("a move of an object is
	// equivalent to an add followed by a delete of an object copy" —
	// §2.2.1).
	drop  bool
	sites []SiteID
	// staged maps origin physical page -> local shadow page already
	// transferred for the source version stagedVV. A pull that fails
	// mid-transfer parks its windows here so the retry resumes without
	// re-sending them; the pages become durable when the final
	// CommitInode references them, and are freed when the task dies or
	// the source version moves on. Guarded by Kernel.mu.
	staged   map[storage.PhysPage]storage.PhysPage
	stagedVV vclock.VV
}

// Kernel is the filesystem half of one site's operating system.
type Kernel struct {
	site  SiteID
	node  *netsim.Node
	store *storage.Store
	cfg   *Config

	mu sync.Mutex
	// partition is the sorted set of sites this kernel believes are in
	// its partition (maintained by the reconfiguration layer).
	partition []SiteID
	// open state
	ssState  map[storage.FileID]*ssServe
	cssState map[storage.FileID]*cssEntry
	// pendingProp marks files with propagations queued but not yet
	// pulled in; pathname searching must not trust the local copy then.
	pendingProp map[storage.FileID]*propTask
	propQueue   []storage.FileID
	// stalledProp holds pulls whose origin left the partition; they are
	// requeued when a merge restores connectivity.
	stalledProp []*propTask
	// propStop terminates the background propagation daemon, when one
	// is running.
	propStop chan struct{}
	// propWG joins the daemon goroutine: StopPropagationDaemon returns
	// only after the daemon has fully exited, so no drain can mutate
	// kernel state after a caller tears the site down.
	propWG sync.WaitGroup
	// openFiles tracks US-side open handles for cleanup on partition
	// change.
	openFiles map[*File]bool
	// openSerial numbers handles as they register, giving cleanup a
	// total iteration order (two handles on one file are otherwise
	// indistinguishable and map order is random).
	openSerial uint64
	// inflightOpens counts modify opens this site has requested but not
	// yet recorded in openFiles, so a lock-table validation probe
	// (mProbeOpen) arriving between the CSS's grant and our receipt of
	// the response does not mistake the open for a stale lock.
	inflightOpens map[storage.FileID]int
	// leases is the US-side lease table: files this site may re-open,
	// read, and close locally without contacting the CSS (read
	// delegations and held writer leases).
	leases map[storage.FileID]*usLease
	// leaseDropped remembers files whose lease was revoked before the
	// grant arrived (the two travel on independent exchanges); the
	// late grant is declined instead of installing a lease the CSS no
	// longer tracks.
	leaseDropped map[storage.FileID]bool

	// mail delivers system notification mail (wired by the recon
	// layer); nil-safe.
	mail func(user, subject, body string)

	// cache is the using-site page cache of committed pages (§2.2.1).
	cache *pageCache
	// dirs caches decoded directory content by (file, version vector)
	// so pathname searching does not re-parse an unchanged directory on
	// every component of every path (see dircache.go).
	dirs dirCache

	// Ablation switches (benchmarks only; production behavior is both
	// enabled, as in LOCUS).
	noOpenOpt     bool // disable the §2.3.3 US-is-SS / CSS-is-SS shortcuts
	noLocalSearch bool // disable the §2.3.4 local unsynchronized search
	noBulkPull    bool // disable the windowed fs.pullpages propagation protocol
	// noLeases disables the lease/intent layer. Unlike the other
	// switches this one defaults *on* (leases off): the paper's
	// protocol, and every pinned message count derived from it, is the
	// lease-free one. SetLeases(true) opts a kernel in.
	noLeases bool
	// pathShip enables the §2.3.4 "ship partial pathnames" strategy.
	pathShip bool
	// propWorkers bounds the parallel pull-worker pool DrainPropagation
	// runs; pulls are partitioned by (origin, filegroup) so distinct
	// origins overlap while per-file ordering is preserved.
	propWorkers int
}

// SetOpenOptimizations enables/disables the two §2.3.3 open-protocol
// optimizations (ablation benchmarks; enabled by default).
func (k *Kernel) SetOpenOptimizations(on bool) {
	k.mu.Lock()
	k.noOpenOpt = !on
	k.mu.Unlock()
}

// SetLocalSearchFastPath enables/disables the zero-message local
// directory search of §2.3.4 (ablation benchmarks; enabled by default).
func (k *Kernel) SetLocalSearchFastPath(on bool) {
	k.mu.Lock()
	k.noLocalSearch = !on
	k.mu.Unlock()
}

// SetBulkPull enables/disables the windowed bulk-pull propagation
// protocol (ablation benchmarks; enabled by default). Disabled,
// pullFile pays the original one-fs.readphys-exchange-per-page cost,
// so the old protocol economics stay pinnable.
func (k *Kernel) SetBulkPull(on bool) {
	k.mu.Lock()
	k.noBulkPull = !on
	k.mu.Unlock()
}

// SetPropagationWorkers bounds the parallel pull-worker pool used by
// DrainPropagation (n < 1 means serial). The default is
// defaultPropWorkers.
func (k *Kernel) SetPropagationWorkers(n int) {
	if n < 1 {
		n = 1
	}
	k.mu.Lock()
	k.propWorkers = n
	k.mu.Unlock()
}

// SetPageCache enables/disables the using-site page cache (ablation
// benchmarks; enabled by default, as the paper's US buffer management
// is — §2.2.1). Disabling flushes it; streaming readahead deposits
// into the cache and is therefore inert while it is off.
func (k *Kernel) SetPageCache(on bool) { k.cache.setEnabled(on) }

// meter returns the network-wide cost meter (cache/readahead counters).
func (k *Kernel) meter() *netsim.Stats { return k.node.Network().Meter() }

// NewKernel creates the filesystem kernel for one site and registers
// its network handlers. The initial partition view is all sites of all
// packs in the configuration (a fully-up network).
func NewKernel(node *netsim.Node, store *storage.Store, cfg *Config) *Kernel {
	k := &Kernel{
		site:          node.ID(),
		node:          node,
		store:         store,
		cfg:           cfg,
		ssState:       make(map[storage.FileID]*ssServe),
		cssState:      make(map[storage.FileID]*cssEntry),
		pendingProp:   make(map[storage.FileID]*propTask),
		openFiles:     make(map[*File]bool),
		inflightOpens: make(map[storage.FileID]int),
		leases:        make(map[storage.FileID]*usLease),
		leaseDropped:  make(map[storage.FileID]bool),
		propWorkers:   defaultPropWorkers,
		noLeases:      true, // lease layer is opt-in (SetLeases)
	}
	k.cache = newPageCache(node.Network().Meter())
	seen := map[SiteID]bool{}
	for _, d := range cfg.Filegroups {
		for _, p := range d.Packs {
			if !seen[p.Site] {
				seen[p.Site] = true
				k.partition = append(k.partition, p.Site)
			}
		}
	}
	if !seen[k.site] {
		k.partition = append(k.partition, k.site)
	}
	sort.Slice(k.partition, func(i, j int) bool { return k.partition[i] < k.partition[j] })
	k.registerHandlers()
	node.OnCrash(k.crashLocal)
	return k
}

// crashLocal discards all volatile kernel state when this site
// crashes: in-core inodes, lock tables, open files, queued pulls. The
// disk (storage.Store) survives, which is exactly the commit
// mechanism's guarantee.
func (k *Kernel) crashLocal() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for f := range k.openFiles {
		f.stale = true
		f.closed = true
	}
	k.openFiles = make(map[*File]bool)
	k.inflightOpens = make(map[storage.FileID]int)
	k.ssState = make(map[storage.FileID]*ssServe)
	k.cssState = make(map[storage.FileID]*cssEntry)
	k.leases = make(map[storage.FileID]*usLease)
	k.leaseDropped = make(map[storage.FileID]bool)
	// Shadow pages staged by interrupted pulls are durable but
	// unreferenced; reclaim them the way a reboot-time fsck would, or
	// they leak when the queue state dies with the crash.
	for _, t := range k.pendingProp {
		k.freeStagedLocked(t)
	}
	for _, t := range k.stalledProp {
		k.freeStagedLocked(t)
	}
	k.pendingProp = make(map[storage.FileID]*propTask)
	k.propQueue = nil
	k.stalledProp = nil
	k.partition = []SiteID{k.site}
	if k.propStop != nil {
		close(k.propStop)
		k.propStop = nil
	}
	k.cache.purge()
}

// Site returns this kernel's site id.
func (k *Kernel) Site() SiteID { return k.site }

// Store exposes the site's storage (reconciliation reads through it).
func (k *Kernel) Store() *storage.Store { return k.store }

// Config returns the shared filesystem configuration.
func (k *Kernel) Config() *Config { return k.cfg }

// Node returns the site's network attachment.
func (k *Kernel) Node() *netsim.Node { return k.node }

// SetMailer installs the delivery function for system notification
// mail (conflict reports). A nil mailer discards mail.
func (k *Kernel) SetMailer(f func(user, subject, body string)) {
	k.mu.Lock()
	k.mail = f
	k.mu.Unlock()
}

func (k *Kernel) sendMail(user, subject, body string) {
	k.mu.Lock()
	f := k.mail
	k.mu.Unlock()
	if f != nil {
		f(user, subject, body)
	}
}

// SetPartition installs a new partition view (sorted copy). The
// reconfiguration layer calls this after the partition/merge protocols
// agree on membership.
func (k *Kernel) SetPartition(sites []SiteID) {
	s := append([]SiteID(nil), sites...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k.mu.Lock()
	k.partition = s
	k.mu.Unlock()
}

// Partition returns the kernel's current partition view (sorted copy).
func (k *Kernel) Partition() []SiteID {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]SiteID(nil), k.partition...)
}

func (k *Kernel) inPartition(s SiteID) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.inPartitionLocked(s)
}

func (k *Kernel) inPartitionLocked(s SiteID) bool {
	for _, x := range k.partition {
		if x == s {
			return true
		}
	}
	return false
}

// DebugLocks renders the kernel's serve/lock state (test diagnostics).
func (k *Kernel) DebugLocks() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	s := fmt.Sprintf("site %d:", k.site)
	for id, sv := range k.ssState {
		s += fmt.Sprintf(" ss[%v]{writer=%d readers=%v}", id, sv.writerUS, sv.readers)
	}
	for id, e := range k.cssState {
		s += fmt.Sprintf(" css[%v]{writer=%d@%d readers=%v vv=%v}", id, e.writerUS, e.writerSS, e.readers, e.latestVV)
	}
	s += fmt.Sprintf(" open=%d", len(k.openFiles))
	return s
}

// CSSOf returns the current synchronization site for a filegroup: the
// lowest-numbered pack site present in this kernel's partition. Every
// kernel in a partition computes the same answer from the same view,
// which is how "there is only one CSS for any given filegroup in any
// set of communicating sites" (§2.3.1) is maintained.
func (k *Kernel) CSSOf(fg storage.FilegroupID) (SiteID, error) {
	d, ok := k.cfg.FG(fg)
	if !ok {
		return 0, fmt.Errorf("fs: unknown filegroup %d", fg)
	}
	var best SiteID
	for _, p := range d.Packs {
		if k.inPartition(p.Site) && (best == 0 || p.Site < best) {
			best = p.Site
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("%w: filegroup %d", ErrNoCSS, fg)
	}
	return best, nil
}

// packSitesInPartition returns the filegroup's pack sites that are in
// the current partition, in pack declaration order.
func (k *Kernel) packSitesInPartition(fg storage.FilegroupID) []SiteID {
	d, ok := k.cfg.FG(fg)
	if !ok {
		return nil
	}
	var out []SiteID
	for _, p := range d.Packs {
		if k.inPartition(p.Site) {
			out = append(out, p.Site)
		}
	}
	return out
}

// container returns this site's container for fg, or nil.
func (k *Kernel) container(fg storage.FilegroupID) *storage.Container {
	return k.store.Container(fg)
}

// File is a US-side open file handle (the in-core inode plus open
// bookkeeping). It is not safe for concurrent use by multiple
// goroutines without external synchronization — matching a Unix file
// descriptor, whose sharing semantics the process layer provides via
// the token scheme (§3.2).
type File struct {
	k    *Kernel
	id   storage.FileID
	mode OpenMode
	us   SiteID
	ss   SiteID
	css  SiteID
	ino  *storage.Inode // in-core inode copy at the US
	// dirty tracks logical pages modified through this handle.
	dirty  map[storage.PageNo]bool
	closed bool
	// internal marks pathname-search opens (no CSS lock held).
	internal bool
	// stale is set when the handle's storage site was lost to a
	// partition change and no substitute copy could be found; the
	// paper's cleanup table calls this "set error in local file
	// descriptor" (§5.6).
	stale bool
	// delegated marks a read handle opened under a held read
	// delegation: it was built from the lease's frozen inode snapshot,
	// holds no CSS lock entry and no SS serving state, and its close is
	// pure local bookkeeping.
	delegated bool
	// leased marks a modify handle opened under this site's writer
	// lease: its close commits as usual but skips the wire close,
	// leaving the SS serving state and CSS writer slot in place for the
	// next local open.
	leased bool
	// readahead enables adaptive streaming readahead (§2.3.3): the SS
	// piggybacks up to raWindow following pages on each read response,
	// deposited into the using-site page cache.
	readahead bool
	// raNext is the page a sequential reader would fetch next; raWindow
	// is the current readahead window (doubles on sequential access up
	// to RAMax, resets on a seek).
	raNext   storage.PageNo
	raWindow int
	// serial is the handle's registration number (see Kernel.openSerial).
	serial uint64
}

// registerOpenLocked records an open handle for partition cleanup and
// stamps its serial. Caller holds k.mu.
func (k *Kernel) registerOpenLocked(f *File) {
	k.openSerial++
	f.serial = k.openSerial
	k.openFiles[f] = true
}

// SetReadahead enables adaptive streaming readahead for this handle
// (off by default so message accounting stays exact).
func (f *File) SetReadahead(on bool) {
	f.readahead = on
	if !on {
		f.raWindow = 0
	}
}

// Stale reports whether the handle lost its storage site to a failure.
func (f *File) Stale() bool { return f.stale }

// ID returns the file's globally unique low-level name.
func (f *File) ID() storage.FileID { return f.id }

// Mode returns the open mode.
func (f *File) Mode() OpenMode { return f.mode }

// SS returns the storage site currently serving this open.
func (f *File) SS() SiteID { return f.ss }

// Size returns the file size seen by this handle.
func (f *File) Size() int64 { return f.ino.Size }

// Type returns the file type.
func (f *File) Type() storage.FileType { return f.ino.Type }

// Inode returns a snapshot of the handle's in-core inode.
func (f *File) Inode() *storage.Inode { return f.ino.Clone() }
