package fs_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/fs"
)

func TestPropagationDaemonDrivesReplication(t *testing.T) {
	c := newCluster(t, 3)
	for _, k := range c.kernels {
		k.StartPropagationDaemon(time.Millisecond)
		defer k.StopPropagationDaemon()
	}
	writeFile(t, c.kernels[1], "/f", []byte("auto"))

	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := true
		for s := fs.SiteID(1); s <= 3; s++ {
			f, err := c.kernels[s].Open(cred(), "/f", fs.ModeRead)
			if err != nil {
				ok = false
				break
			}
			d, err := f.ReadAll()
			f.Close() //nolint:errcheck
			if err != nil || string(d) != "auto" || f.SS() != s {
				ok = false
				break
			}
		}
		if ok {
			return // every site serves its own current copy
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon did not replicate /f to all sites")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPropagationDaemonIdempotentStartStop(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	k.StartPropagationDaemon(time.Millisecond)
	k.StartPropagationDaemon(time.Millisecond) // no double start
	k.StopPropagationDaemon()
	k.StopPropagationDaemon() // no double close panic
}

// TestStopPropagationDaemonJoins is the runtime regression test for the
// daemon-join fix: StopPropagationDaemon must not return while the
// daemon goroutine can still be running a drain. Many start/stop cycles
// amplify any leak into a visible goroutine-count rise; the goroutinejoin
// analyzer (TestRepositoryIsClean in internal/lint) guards the same
// propWG wiring statically.
func TestStopPropagationDaemonJoins(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		k.StartPropagationDaemon(time.Millisecond)
		k.StopPropagationDaemon()
	}
	// Every stop joined its daemon, so no cycle can leave a goroutine
	// behind; allow a little slack for runtime helpers.
	if n := runtime.NumGoroutine(); n > base+3 {
		t.Fatalf("goroutines grew from %d to %d across start/stop cycles: daemon not joined", base, n)
	}
}
