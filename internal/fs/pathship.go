package fs

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/format"
	"repro/internal/storage"
)

// Pathname shipping: §2.3.4 closes with "Another strategy for pathname
// searching is to ship partial pathnames to foreign sites so they can
// do the expansion locally, avoiding remote directory opens and network
// transmission of directory pages. Such a solution is being
// investigated but is more complex in the general case because the SS
// for each intermediate directory could be different."
//
// This file implements that strategy as an opt-in feature
// (SetPathShipping). The using site walks components locally for as
// long as the directories are stored locally; when it gets stuck it
// ships the remaining components to the filegroup's CSS, which expands
// as many as *it* can locally and returns the progress; any component
// neither site can expand locally falls back to the paper's standard
// remote-directory-read walk for that one step. The complexity the
// paper warns about — each intermediate directory possibly having a
// different SS — is exactly what the per-hop fallback handles.

const mResolveShip = "fs.resolvepath"

// SetPathShipping enables shipping partial pathnames to remote sites
// during resolution (off by default; the default walk matches the
// paper's deployed system).
func (k *Kernel) SetPathShipping(on bool) {
	k.mu.Lock()
	k.pathShip = on
	k.mu.Unlock()
}

type resolveShipReq struct {
	Start     storage.FileID
	StartPath string // absolute path of Start (mount-table context)
	Comps     []string
	HiddenCtx []string
}

type resolveShipResp struct {
	Consumed int
	Cur      storage.FileID
	CurPath  string
	// Final is set when the last consumed component completed the walk.
	Final *Resolved
}

func (k *Kernel) handleResolveShip(_ SiteID, p any) (any, error) {
	req := p.(*resolveShipReq)
	cred := &Cred{HiddenCtx: req.HiddenCtx}
	consumed, cur, curPath, final, err := k.walkLocal(cred, req.Start, req.StartPath, req.Comps)
	if err != nil {
		return nil, err
	}
	return &resolveShipResp{Consumed: consumed, Cur: cur, CurPath: curPath, Final: final}, nil
}

// localDir decodes a directory wholly from the local container, or
// reports false if this site cannot serve it authoritatively (not
// stored here, pending propagation, conflicted).
func (k *Kernel) localDir(id storage.FileID) (*format.Directory, *storage.Inode, bool) {
	c := k.container(id.FG)
	if c == nil || !c.HasInode(id.Inode) {
		return nil, nil, false
	}
	k.mu.Lock()
	_, pending := k.pendingProp[id]
	k.mu.Unlock()
	if pending {
		return nil, nil, false
	}
	ino, err := c.GetInode(id.Inode)
	if err != nil || ino.Deleted || ino.Conflict {
		return nil, nil, false
	}
	if ino.Type != storage.TypeDirectory && ino.Type != storage.TypeHiddenDir {
		return nil, nil, false
	}
	if d, ok := k.dirs.get(id, ino.VV); ok {
		return d, ino, true
	}
	raw := make([]byte, 0, ino.Size)
	for pn := range ino.Pages {
		data, err := c.ReadLogicalPage(id.Inode, storage.PageNo(pn))
		if err != nil {
			return nil, nil, false
		}
		raw = append(raw, data...)
	}
	if int64(len(raw)) > ino.Size {
		raw = raw[:ino.Size]
	}
	d, err := format.DecodeDir(raw)
	if err != nil {
		return nil, nil, false
	}
	k.dirs.put(id, ino.VV, d)
	return d, ino, true
}

// localInode fetches an inode if committed locally and clean.
func (k *Kernel) localInode(id storage.FileID) (*storage.Inode, bool) {
	c := k.container(id.FG)
	if c == nil || !c.HasInode(id.Inode) {
		return nil, false
	}
	k.mu.Lock()
	_, pending := k.pendingProp[id]
	k.mu.Unlock()
	if pending {
		return nil, false
	}
	ino, err := c.GetInode(id.Inode)
	if err != nil || ino.Deleted {
		return nil, false
	}
	return ino, true
}

// walkLocal consumes as many leading components as this site can
// expand from purely local, current directory copies. It returns how
// many components were consumed, the position reached, and — when the
// walk completed — the final resolution.
func (k *Kernel) walkLocal(cred *Cred, cur storage.FileID, curPath string, comps []string) (int, storage.FileID, string, *Resolved, error) {
	consumed := 0
	for consumed < len(comps) {
		comp := comps[consumed]
		escaped := strings.HasSuffix(comp, HiddenEscape)
		name := strings.TrimSuffix(comp, HiddenEscape)

		d, parentIno, ok := k.localDir(cur)
		if !ok {
			return consumed, cur, curPath, nil, nil // stuck: not local
		}
		e, found := d.Lookup(name)
		if !found {
			return consumed, cur, curPath, nil,
				fmt.Errorf("%w: %q in %s", ErrNotFound, name, pathSoFar(curPath))
		}
		child := storage.FileID{FG: cur.FG, Inode: e.Inode}
		nextPath := curPath + "/" + name
		if fg, mounted := k.cfg.MountAt(nextPath); mounted {
			child = storage.FileID{FG: fg, Inode: RootInode}
		}
		childIno, ok := k.localInode(child)
		if !ok {
			return consumed, cur, curPath, nil, nil // child inode not local: stuck
		}
		typ := childIno.Type
		res := &Resolved{ID: child, Parent: cur, Name: name,
			ParentSites: append([]SiteID(nil), parentIno.Sites...), Type: typ}

		if typ == storage.TypeHiddenDir && !escaped {
			hd, hIno, ok := k.localDir(child)
			if !ok {
				return consumed, cur, curPath, nil, nil
			}
			var he format.DirEntry
			hit := false
			for _, ctx := range cred.HiddenCtx {
				if cand, okc := hd.Lookup(ctx); okc {
					he, hit = cand, true
					break
				}
			}
			if !hit {
				return consumed, cur, curPath, nil,
					fmt.Errorf("%w: no context match in hidden directory %s", ErrNotFound, nextPath)
			}
			sub := storage.FileID{FG: child.FG, Inode: he.Inode}
			subIno, ok := k.localInode(sub)
			if !ok {
				return consumed, cur, curPath, nil, nil
			}
			typ = subIno.Type
			res = &Resolved{ID: sub, Parent: child, Name: he.Name,
				ParentSites: append([]SiteID(nil), hIno.Sites...), Type: typ}
			child = sub
		}

		consumed++
		curPath = nextPath
		if consumed == len(comps) {
			return consumed, child, curPath, res, nil
		}
		if typ != storage.TypeDirectory && typ != storage.TypeHiddenDir {
			return consumed, child, curPath, nil, fmt.Errorf("%w: %s", ErrNotDir, curPath)
		}
		cur = child
	}
	return consumed, cur, curPath, nil, nil
}

// resolveShipped is the shipping-enabled pathname search.
func (k *Kernel) resolveShipped(cred *Cred, path string) (*Resolved, error) {
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur, err := k.rootID()
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		return &Resolved{ID: cur, Name: "/", ParentSites: k.fgSites(cur.FG), Type: storage.TypeDirectory}, nil
	}
	curPath := ""
	i := 0
	for i < len(comps) {
		// Phase 1: walk locally as far as possible.
		consumed, nc, np, final, err := k.walkLocal(cred, cur, curPath, comps[i:])
		if err != nil {
			return nil, err
		}
		i += consumed
		cur, curPath = nc, np
		if final != nil && i == len(comps) {
			return final, nil
		}
		if i >= len(comps) {
			break
		}

		// Phase 2: ship the remaining components to the filegroup's
		// CSS for local expansion there.
		css, err := k.CSSOf(cur.FG)
		if err != nil {
			return nil, err
		}
		if css != k.site {
			resp, err := k.call(css, mResolveShip, &resolveShipReq{
				Start: cur, StartPath: curPath, Comps: comps[i:], HiddenCtx: cred.HiddenCtx,
			})
			if err != nil && !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrNotDir) {
				return nil, err
			}
			if err != nil {
				return nil, err // authoritative naming error from remote walk
			}
			r := resp.(*resolveShipResp)
			if r.Consumed > 0 {
				i += r.Consumed
				cur, curPath = r.Cur, r.CurPath
				if r.Final != nil && i == len(comps) {
					return r.Final, nil
				}
				continue
			}
		}

		// Phase 3: neither we nor the CSS store this directory — do a
		// single standard remote-read step (the paper's base strategy).
		res, next, err := k.slowStep(cred, cur, curPath, comps[i])
		if err != nil {
			return nil, err
		}
		i++
		cur, curPath = res.ID, next
		if i == len(comps) {
			return res, nil
		}
		if res.Type != storage.TypeDirectory && res.Type != storage.TypeHiddenDir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, curPath)
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
}

// slowStep expands one component with remote directory reads (the
// deployed LOCUS strategy), returning the resolution and the new
// current path.
func (k *Kernel) slowStep(cred *Cred, cur storage.FileID, curPath, comp string) (*Resolved, string, error) {
	escaped := strings.HasSuffix(comp, HiddenEscape)
	name := strings.TrimSuffix(comp, HiddenEscape)
	d, parentIno, err := k.readDirByID(cur)
	if err != nil {
		return nil, "", err
	}
	e, ok := d.Lookup(name)
	if !ok {
		return nil, "", fmt.Errorf("%w: %q in %s", ErrNotFound, name, pathSoFar(curPath))
	}
	child := storage.FileID{FG: cur.FG, Inode: e.Inode}
	nextPath := curPath + "/" + name
	if fg, mounted := k.cfg.MountAt(nextPath); mounted {
		child = storage.FileID{FG: fg, Inode: RootInode}
	}
	typ, err := k.statType(child)
	if err != nil {
		return nil, "", err
	}
	res := &Resolved{ID: child, Parent: cur, Name: name, ParentSites: parentIno.Sites, Type: typ}
	if typ == storage.TypeHiddenDir && !escaped {
		hd, _, err := k.readDirByID(child)
		if err != nil {
			return nil, "", err
		}
		var he format.DirEntry
		hit := false
		for _, ctx := range cred.HiddenCtx {
			if cand, okc := hd.Lookup(ctx); okc {
				he, hit = cand, true
				break
			}
		}
		if !hit {
			return nil, "", fmt.Errorf("%w: no context match in hidden directory %s", ErrNotFound, nextPath)
		}
		sub := storage.FileID{FG: child.FG, Inode: he.Inode}
		typ, err = k.statType(sub)
		if err != nil {
			return nil, "", err
		}
		res = &Resolved{ID: sub, Parent: child, Name: he.Name,
			ParentSites: k.fileSites(child), Type: typ}
	}
	return res, nextPath, nil
}
