package fs_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// testCluster is a minimal harness local to the fs tests (the shared
// one in internal/cluster depends on fs and would cycle in-package).
type testCluster struct {
	net     *netsim.Network
	kernels map[fs.SiteID]*fs.Kernel
	cfg     *fs.Config
}

func newCluster(t *testing.T, nSites int) *testCluster {
	t.Helper()
	packs := make([]fs.PackDesc, nSites)
	for i := 0; i < nSites; i++ {
		packs[i] = fs.PackDesc{Site: fs.SiteID(i + 1),
			Lo: storage.InodeNum(i*1000 + 1), Hi: storage.InodeNum((i + 1) * 1000)}
	}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{{FG: 1, MountPath: "/", Packs: packs}})
	if err != nil {
		t.Fatal(err)
	}
	return newClusterCfg(t, cfg)
}

func mustBoot(t *testing.T, node *netsim.Node, cfg *fs.Config, meter storage.Meter) *fs.Kernel {
	t.Helper()
	k, err := fs.BootSite(node, cfg, meter, storage.Costs{})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func newClusterCfg(t *testing.T, cfg *fs.Config) *testCluster {
	t.Helper()
	nw := netsim.New(netsim.DefaultCosts())
	t.Cleanup(nw.Close)
	c := &testCluster{net: nw, kernels: make(map[fs.SiteID]*fs.Kernel), cfg: cfg}
	seen := map[fs.SiteID]bool{}
	for _, d := range cfg.Filegroups {
		for _, p := range d.Packs {
			if !seen[p.Site] {
				seen[p.Site] = true
				c.kernels[p.Site] = mustBoot(t, nw.AddSite(p.Site), cfg, nw.Meter())
			}
		}
	}
	if err := fs.Format(c.kernels, cfg); err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *testCluster) settle(t *testing.T) {
	t.Helper()
	for pass := 0; pass < 50; pass++ {
		c.net.Quiesce()
		n := 0
		for _, k := range c.kernels {
			n += k.DrainPropagation()
		}
		if n == 0 {
			c.net.Quiesce()
			pending := 0
			for _, k := range c.kernels {
				pending += k.PendingPropagations()
			}
			if pending == 0 {
				return
			}
		}
	}
	msg := ""
	for _, k := range c.kernels {
		msg += k.DebugPendingPropagations()
	}
	t.Fatalf("cluster did not settle: %s", msg)
}

func (c *testCluster) partition(groups ...[]fs.SiteID) {
	c.net.PartitionGroups(groups...)
	for _, g := range groups {
		for _, s := range g {
			c.kernels[s].CleanupAfterPartitionChange(g)
		}
	}
}

func (c *testCluster) heal() {
	c.net.HealAll()
	var all []fs.SiteID
	for s := range c.kernels {
		if c.net.Up(s) {
			all = append(all, s)
		}
	}
	for _, s := range all {
		c.kernels[s].CleanupAfterPartitionChange(all)
		c.kernels[s].RequeueStalledPropagations()
	}
}

func cred() *fs.Cred { return fs.DefaultCred("tester") }

func writeFile(t *testing.T, k *fs.Kernel, path string, data []byte) {
	t.Helper()
	f, err := k.Create(cred(), path, storage.TypeRegular, 0644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if len(data) > 0 {
		if _, err := f.WriteAt(data, 0); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func readFile(t *testing.T, k *fs.Kernel, path string) []byte {
	t.Helper()
	f, err := k.Open(cred(), path, fs.ModeRead)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close() //nolint:errcheck
	data, err := f.ReadAll()
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return data
}

func TestCreateWriteReadLocal(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	writeFile(t, k, "/hello.txt", []byte("hello, LOCUS"))
	got := readFile(t, k, "/hello.txt")
	if !bytes.Equal(got, []byte("hello, LOCUS")) {
		t.Fatalf("read back %q", got)
	}
}

func TestTransparentRemoteAccess(t *testing.T) {
	// Location transparency (§2.1): the same calls work regardless of
	// where the file is stored.
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("made at site 1"))
	c.settle(t)
	for s := fs.SiteID(1); s <= 3; s++ {
		got := readFile(t, c.kernels[s], "/f")
		if !bytes.Equal(got, []byte("made at site 1")) {
			t.Fatalf("site %d read %q", s, got)
		}
	}
}

func TestMultiPageFile(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[2]
	data := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KiB = 4 pages
	writeFile(t, k, "/big", data)
	got := readFile(t, c.kernels[1], "/big")
	if !bytes.Equal(got, data) {
		t.Fatalf("multi-page read mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestPartialPageOverwrite(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	writeFile(t, k, "/f", []byte("aaaaaaaaaa"))
	f, err := k.Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("BB"), 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, k, "/f")
	if string(got) != "aaaBBaaaaa" {
		t.Fatalf("got %q", got)
	}
}

func TestCommitAbortSemantics(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	writeFile(t, k, "/f", []byte("original"))

	f, err := k.Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("scribbled")); err != nil {
		t.Fatal(err)
	}
	// Uncommitted changes are invisible to readers.
	if got := readFile(t, k, "/f"); string(got) != "original" {
		t.Fatalf("reader saw uncommitted data: %q", got)
	}
	// Writer sees its own changes.
	own, err := f.ReadAll()
	if err != nil || string(own) != "scribbled" {
		t.Fatalf("writer read %q, %v", own, err)
	}
	if err := f.Abort(); err != nil {
		t.Fatal(err)
	}
	own, err = f.ReadAll()
	if err != nil || string(own) != "original" {
		t.Fatalf("after abort writer read %q, %v", own, err)
	}
	if err := f.WriteAll([]byte("final")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, k, "/f"); string(got) != "final" {
		t.Fatalf("after commit read %q", got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleWriterPolicy(t *testing.T) {
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("x"))
	c.settle(t)

	f1, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.kernels[3].Open(cred(), "/f", fs.ModeModify); !errors.Is(err, fs.ErrBusy) {
		t.Fatalf("second modify open: err = %v, want ErrBusy", err)
	}
	// Readers are still admitted while the writer is active.
	r, err := c.kernels[3].Open(cred(), "/f", fs.ModeRead)
	if err != nil {
		t.Fatalf("concurrent read open: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	// Lock released: modify open succeeds now.
	f2, err := c.kernels[3].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatalf("after close: %v", err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPropagationBringsReplicasUpToDate(t *testing.T) {
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("v1"))
	c.settle(t)

	// Every pack should now store identical copies with equal vectors.
	var vv0 string
	for s := fs.SiteID(1); s <= 3; s++ {
		ino, err := c.kernels[s].Stat(cred(), "/f")
		if err != nil {
			t.Fatalf("site %d stat: %v", s, err)
		}
		if s == 1 {
			vv0 = ino.VV.String()
		} else if ino.VV.String() != vv0 {
			t.Fatalf("site %d vector %v != site 1 %v", s, ino.VV, vv0)
		}
	}

	// Update at site 2; settle; all read v2.
	f, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	for s := fs.SiteID(1); s <= 3; s++ {
		if got := readFile(t, c.kernels[s], "/f"); string(got) != "v2" {
			t.Fatalf("site %d read %q", s, got)
		}
	}
}

func TestPageLevelPropagation(t *testing.T) {
	// Only modified pages travel when the base copy is current.
	c := newCluster(t, 2)
	data := bytes.Repeat([]byte{'a'}, 3*storage.PageSize)
	writeFile(t, c.kernels[1], "/f", data)
	c.settle(t)

	f, err := c.kernels[1].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{'b'}, storage.PageSize), storage.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	before := c.net.Stats()
	c.settle(t)
	d := c.net.Stats().Sub(before)
	// The pull should transfer ~1 page, not 3. With bulk pull the one
	// modified page rides the fs.pullopen piggyback window, so the
	// whole pull is a single exchange and no separate page reads occur.
	if d.ByMethod["fs.readphys"] != 0 || d.ByMethod["fs.pullpages"] != 0 {
		t.Fatalf("page-level propagation used separate page reads, want piggyback only: %v", d.ByMethod)
	}
	if d.PullPagesSent != 1 {
		t.Fatalf("page-level propagation transferred %d pages, want 1 (only the modified page): %v", d.PullPagesSent, d.ByMethod)
	}
	got := readFile(t, c.kernels[2], "/f")
	want := append(append(bytes.Repeat([]byte{'a'}, storage.PageSize),
		bytes.Repeat([]byte{'b'}, storage.PageSize)...), bytes.Repeat([]byte{'a'}, storage.PageSize)...)
	if !bytes.Equal(got, want) {
		t.Fatal("page-level propagation produced wrong content")
	}
}

func TestMkdirReadDirUnlink(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	if err := k.Mkdir(cred(), "/dir", 0755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, k, "/dir/a", []byte("a"))
	writeFile(t, k, "/dir/b", []byte("b"))
	ents, err := k.ReadDir(cred(), "/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "a" || ents[1].Name != "b" {
		t.Fatalf("ReadDir = %+v", ents)
	}
	// Non-empty directory refuses unlink.
	if err := k.Unlink(cred(), "/dir"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("unlink non-empty dir: %v", err)
	}
	if err := k.Unlink(cred(), "/dir/a"); err != nil {
		t.Fatal(err)
	}
	if err := k.Unlink(cred(), "/dir/b"); err != nil {
		t.Fatal(err)
	}
	if err := k.Unlink(cred(), "/dir"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stat(cred(), "/dir"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("stat removed dir: %v", err)
	}
}

func TestUnlinkPropagatesAndGC(t *testing.T) {
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", bytes.Repeat([]byte{'x'}, storage.PageSize*2))
	c.settle(t)
	if err := c.kernels[2].Unlink(cred(), "/f"); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	for s := fs.SiteID(1); s <= 3; s++ {
		if _, err := c.kernels[s].Open(cred(), "/f", fs.ModeRead); !errors.Is(err, fs.ErrNotFound) {
			t.Fatalf("site %d open deleted file: %v", s, err)
		}
	}
	// GC reclaims the tombstone once all packs saw the delete.
	total := 0
	for s := fs.SiteID(1); s <= 3; s++ {
		total += c.kernels[s].CollectGarbage()
	}
	if total != 1 {
		t.Fatalf("CollectGarbage reclaimed %d inodes, want 1", total)
	}
}

func TestCreateExistsFails(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	writeFile(t, k, "/f", nil)
	if _, err := k.Create(cred(), "/f", storage.TypeRegular, 0644); !errors.Is(err, fs.ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestResolveErrors(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	writeFile(t, k, "/file", []byte("x"))
	cases := []struct {
		path string
		want error
	}{
		{"/missing", fs.ErrNotFound},
		{"/file/below", fs.ErrNotDir},
		{"relative", fs.ErrBadName},
		{"/..", fs.ErrBadName},
	}
	for _, tc := range cases {
		if _, err := k.Resolve(cred(), tc.path); !errors.Is(err, tc.want) {
			t.Errorf("Resolve(%q) = %v, want %v", tc.path, err, tc.want)
		}
	}
}

func TestLinkAndRename(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	writeFile(t, k, "/f", []byte("data"))
	if err := k.Link(cred(), "/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, k, "/g"); string(got) != "data" {
		t.Fatalf("link read %q", got)
	}
	ino, _ := k.Stat(cred(), "/f")
	if ino.Nlink != 2 {
		t.Fatalf("Nlink = %d, want 2", ino.Nlink)
	}
	// Unlink one name: file persists under the other.
	if err := k.Unlink(cred(), "/f"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, k, "/g"); string(got) != "data" {
		t.Fatalf("after unlink, read %q", got)
	}
	// Rename.
	if err := k.Rename(cred(), "/g", "/h"); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Stat(cred(), "/g"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("old name still resolves: %v", err)
	}
	if got := readFile(t, k, "/h"); string(got) != "data" {
		t.Fatalf("renamed read %q", got)
	}
}

func TestChmodChownPropagate(t *testing.T) {
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/f", []byte("x"))
	c.settle(t)
	if err := c.kernels[1].Chmod(cred(), "/f", 0600); err != nil {
		t.Fatal(err)
	}
	if err := c.kernels[1].Chown(cred(), "/f", "alice"); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	ino, err := c.kernels[2].Stat(cred(), "/f")
	if err != nil {
		t.Fatal(err)
	}
	if ino.Mode != 0600 || ino.Owner != "alice" {
		t.Fatalf("site 2 sees mode %o owner %q", ino.Mode, ino.Owner)
	}
}

func TestHiddenDirectories(t *testing.T) {
	// §2.4.1: /bin/who is a hidden directory with per-machine-type load
	// modules; resolution substitutes the process context.
	c := newCluster(t, 2)
	k := c.kernels[1]
	if err := k.Mkdir(cred(), "/bin", 0755); err != nil {
		t.Fatal(err)
	}
	if err := k.MkHidden(cred(), "/bin/who", 0755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, k, "/bin/who@@/vax", []byte("VAX load module"))
	writeFile(t, k, "/bin/who@@/pdp11", []byte("PDP-11 load module"))

	vaxCred := &fs.Cred{User: "u", HiddenCtx: []string{"vax"}}
	pdpCred := &fs.Cred{User: "u", HiddenCtx: []string{"pdp11"}}
	noCred := &fs.Cred{User: "u"}

	f, err := k.Open(vaxCred, "/bin/who", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := f.ReadAll()
	f.Close() //nolint:errcheck
	if string(data) != "VAX load module" {
		t.Fatalf("vax context read %q", data)
	}
	f, err = k.Open(pdpCred, "/bin/who", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = f.ReadAll()
	f.Close() //nolint:errcheck
	if string(data) != "PDP-11 load module" {
		t.Fatalf("pdp11 context read %q", data)
	}
	// No context: the open fails rather than returning an arbitrary
	// version.
	if _, err := k.Open(noCred, "/bin/who", fs.ModeRead); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("no-context open: %v", err)
	}
	// Escape: list the hidden directory itself.
	ents, err := k.ReadDir(cred(), "/bin/who@@")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "pdp11" || ents[1].Name != "vax" {
		t.Fatalf("escaped ReadDir = %+v", ents)
	}
	// Context falls through the list in order.
	fallCred := &fs.Cred{User: "u", HiddenCtx: []string{"cray", "vax"}}
	f, err = k.Open(fallCred, "/bin/who", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = f.ReadAll()
	f.Close() //nolint:errcheck
	if string(data) != "VAX load module" {
		t.Fatalf("fallback context read %q", data)
	}
}

func TestMultipleFilegroupsAndMounts(t *testing.T) {
	packs1 := []fs.PackDesc{{Site: 1, Lo: 1, Hi: 1000}, {Site: 2, Lo: 1001, Hi: 2000}}
	packs2 := []fs.PackDesc{{Site: 2, Lo: 1, Hi: 1000}, {Site: 3, Lo: 1001, Hi: 2000}}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{
		{FG: 1, MountPath: "/", Packs: packs1},
		{FG: 2, MountPath: "/usr", Packs: packs2},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newClusterCfg(t, cfg)
	k1 := c.kernels[1]
	// A file under /usr lives in filegroup 2, stored at sites 2,3 —
	// but naming is fully transparent from site 1.
	writeFile(t, k1, "/usr/f", []byte("cross-filegroup"))
	c.settle(t)
	r, err := k1.Resolve(cred(), "/usr/f")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID.FG != 2 {
		t.Fatalf("file created in filegroup %d, want 2", r.ID.FG)
	}
	if got := readFile(t, c.kernels[3], "/usr/f"); string(got) != "cross-filegroup" {
		t.Fatalf("site 3 read %q", got)
	}
	// Hard links across the mount fail.
	writeFile(t, k1, "/rootfile", nil)
	if err := k1.Link(cred(), "/rootfile", "/usr/lnk"); !errors.Is(err, fs.ErrCrossFilegroup) {
		t.Fatalf("cross-fg link: %v", err)
	}
}

func TestReplicationFactorPlacement(t *testing.T) {
	c := newCluster(t, 4)
	// NCopies=2: file should be placed at exactly 2 sites, the creating
	// site first.
	cr := &fs.Cred{User: "u", NCopies: 2}
	f, err := c.kernels[3].Create(cr, "/twocopy", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ino, err := c.kernels[3].Stat(cred(), "/twocopy")
	if err != nil {
		t.Fatal(err)
	}
	if len(ino.Sites) != 2 {
		t.Fatalf("Sites = %v, want 2 entries", ino.Sites)
	}
	if ino.Sites[0] != 3 {
		t.Fatalf("local site first: Sites = %v", ino.Sites)
	}
}

func TestStaleReplicaRefusesToServe(t *testing.T) {
	// A pack holding an old version must refuse to act as SS (§2.3.3).
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("v1"))
	c.settle(t)

	// Site 3 misses the v2 update (isolated), then the writer's sites
	// stay up: readers must get v2, never v1.
	c.partition([]fs.SiteID{1, 2}, []fs.SiteID{3})
	f, err := c.kernels[1].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	c.heal()
	// Before site 3 pulls, a read from site 3 must be served by a
	// current site (1 or 2), not its own stale copy.
	g, err := c.kernels[3].Open(cred(), "/f", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	data, err := g.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("stale partition read %q, want v2", data)
	}
	if g.SS() == 3 {
		t.Fatalf("stale copy at site 3 served the open")
	}
	g.Close() //nolint:errcheck
}

func TestOpenMessageCountMatrix(t *testing.T) {
	// Figure 2 / §2.3.3: the open protocol costs depend on which of
	// US/CSS/SS coincide. CSS is site 1 (lowest pack site).
	c := newCluster(t, 3)
	// fileA stored only at site 3: the CSS never stores it.
	writeFile(t, c.kernels[1], "/a", []byte("A"))
	if err := c.kernels[1].SetReplication(cred(), "/a", []fs.SiteID{3}); err != nil {
		t.Fatal(err)
	}
	// fileB stored at sites 1 and 3.
	writeFile(t, c.kernels[1], "/b", []byte("B"))
	if err := c.kernels[1].SetReplication(cred(), "/b", []fs.SiteID{1, 3}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	ra, err := c.kernels[1].Resolve(cred(), "/a")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.kernels[1].Resolve(cred(), "/b")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		id       storage.FileID
		us       fs.SiteID
		wantMsgs int64
		wantSS   fs.SiteID
	}{
		// US=2, CSS=1, SS=3 all distinct: the general protocol of
		// Figure 2 — 4 messages.
		{"general-4msg", ra.ID, 2, 4, 3},
		// US=3 stores the latest version: the CSS selects the US as SS
		// and "just responds appropriately" — 2 messages.
		{"us-is-ss-2msg", rb.ID, 3, 2, 3},
		// CSS stores the latest and US doesn't: CSS picks itself as SS
		// "without any message overhead" — 2 messages.
		{"css-is-ss-2msg", rb.ID, 2, 2, 1},
		// US=CSS=SS=1: the entire open is local — 0 messages.
		{"all-local-0msg", rb.ID, 1, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := c.net.Stats()
			g, err := c.kernels[tc.us].OpenID(tc.id, fs.ModeRead)
			if err != nil {
				t.Fatal(err)
			}
			d := c.net.Stats().Sub(before)
			if d.Msgs != tc.wantMsgs {
				t.Fatalf("open from site %d: %d messages, want %d (%v)", tc.us, d.Msgs, tc.wantMsgs, d.ByMethod)
			}
			if g.SS() != tc.wantSS {
				t.Fatalf("open from site %d chose SS %d, want %d", tc.us, g.SS(), tc.wantSS)
			}
			g.Close() //nolint:errcheck
		})
	}
}

func TestReadWriteCloseMessageCounts(t *testing.T) {
	// §2.3.3/.5: network read = 2 messages, write = 1 message, close of
	// a remotely stored file = 4 messages (US, SS, CSS all distinct).
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", bytes.Repeat([]byte{'x'}, storage.PageSize))
	if err := c.kernels[1].SetReplication(cred(), "/f", []fs.SiteID{3}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	// US=2; CSS=1; the only current pack is 3 after replication change.
	g, err := c.kernels[2].Open(cred(), "/f", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if g.SS() != 3 {
		t.Fatalf("SS = %d, want 3", g.SS())
	}
	before := c.net.Stats()
	buf := make([]byte, 100)
	if _, err := g.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	d := c.net.Stats().Sub(before)
	if d.Msgs != 2 {
		t.Fatalf("read: %d messages, want 2 (%v)", d.Msgs, d.ByMethod)
	}
	before = c.net.Stats()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	d = c.net.Stats().Sub(before)
	if d.Msgs != 4 {
		t.Fatalf("close: %d messages, want 4 (%v)", d.Msgs, d.ByMethod)
	}

	// Write: one message per full-page write.
	w, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	before = c.net.Stats()
	if _, err := w.WriteAt(bytes.Repeat([]byte{'y'}, storage.PageSize), 0); err != nil {
		t.Fatal(err)
	}
	d = c.net.Stats().Sub(before)
	if d.Msgs != 1 {
		t.Fatalf("write: %d messages, want 1 (%v)", d.Msgs, d.ByMethod)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanupModifyOpenOnSSLoss(t *testing.T) {
	// §5.6 table: remote resource in use locally, file open for update
	// -> discard pages, set error in local file descriptor.
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("v1"))
	if err := c.kernels[1].SetReplication(cred(), "/f", []fs.SiteID{3}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	w, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if w.SS() != 3 {
		t.Fatalf("SS = %d, want 3", w.SS())
	}
	if err := w.WriteAll([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	// Site 3 (the SS) is cut off before commit.
	c.partition([]fs.SiteID{1, 2}, []fs.SiteID{3})
	if !w.Stale() {
		t.Fatal("modify handle not marked stale after SS loss")
	}
	if _, err := w.WriteAt([]byte("x"), 0); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("write after SS loss: %v", err)
	}
	if err := w.Commit(); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("commit after SS loss: %v", err)
	}
	w.Close() //nolint:errcheck

	// The uncommitted version never becomes visible anywhere.
	c.heal()
	c.settle(t)
	if got := readFile(t, c.kernels[3], "/f"); string(got) != "v1" {
		t.Fatalf("after heal read %q, want v1", got)
	}
}

func TestCleanupReadOpenFailsOverToOtherCopy(t *testing.T) {
	// §5.6 table: file open for read -> internal close, attempt to
	// reopen at another site with the same version.
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("stable"))
	c.settle(t)

	r, err := c.kernels[2].Open(cred(), "/f", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	lostSS := r.SS()
	if lostSS == 2 {
		t.Skipf("open chose local copy; cannot exercise failover")
	}
	// Cut off the serving SS; sites 2 and the remaining pack stay
	// connected.
	var rest []fs.SiteID
	for s := fs.SiteID(1); s <= 3; s++ {
		if s != lostSS {
			rest = append(rest, s)
		}
	}
	c.partition(rest, []fs.SiteID{lostSS})
	if r.Stale() {
		t.Fatal("read handle should have failed over, not gone stale")
	}
	if r.SS() == lostSS {
		t.Fatal("handle still points at the lost SS")
	}
	data, err := r.ReadAll()
	if err != nil || string(data) != "stable" {
		t.Fatalf("read after failover: %q, %v", data, err)
	}
	r.Close() //nolint:errcheck
}

func TestConflictDetectionOnPartitionedUpdate(t *testing.T) {
	// §4.2: copies modified in different partitions are in conflict
	// after merge; normal opens fail until reconciled.
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/f", []byte("base"))
	c.settle(t)

	c.partition([]fs.SiteID{1}, []fs.SiteID{2})
	for s := fs.SiteID(1); s <= 2; s++ {
		f, err := c.kernels[s].Open(cred(), "/f", fs.ModeModify)
		if err != nil {
			t.Fatalf("site %d open during partition: %v", s, err)
		}
		if err := f.WriteAll([]byte(fmt.Sprintf("from-site-%d", s))); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	c.heal()
	c.settle(t)

	// Any open in the merged partition now reports the conflict.
	_, err := c.kernels[1].Open(cred(), "/f", fs.ModeRead)
	if !errors.Is(err, fs.ErrConflict) {
		t.Fatalf("open of conflicted file: %v, want ErrConflict", err)
	}
}

func TestAvailabilityDuringPartition(t *testing.T) {
	// §4.1: a replicated file remains updatable in every partition that
	// stores a copy.
	c := newCluster(t, 4)
	writeFile(t, c.kernels[1], "/f", []byte("base"))
	c.settle(t)
	c.partition([]fs.SiteID{1, 2}, []fs.SiteID{3, 4})
	for _, s := range []fs.SiteID{2, 4} {
		f, err := c.kernels[s].Open(cred(), "/f", fs.ModeModify)
		if err != nil {
			t.Fatalf("site %d: %v", s, err)
		}
		if err := f.WriteAll([]byte("update")); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoCSSWhenNoPackInPartition(t *testing.T) {
	packs := []fs.PackDesc{{Site: 1, Lo: 1, Hi: 1000}, {Site: 2, Lo: 1001, Hi: 2000}}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{{FG: 1, MountPath: "/", Packs: packs}})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.New(netsim.DefaultCosts())
	t.Cleanup(nw.Close)
	kernels := map[fs.SiteID]*fs.Kernel{
		1: mustBoot(t, nw.AddSite(1), cfg, nil),
		2: mustBoot(t, nw.AddSite(2), cfg, nil),
	}
	// Site 3 stores no pack at all.
	k3 := mustBoot(t, nw.AddSite(3), cfg, nil)
	if err := fs.Format(kernels, cfg); err != nil {
		t.Fatal(err)
	}
	// With packs reachable, site 3 can use the filesystem.
	f, err := k3.Create(fs.DefaultCred("u"), "/f", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Cut site 3 off from both packs: no CSS reachable.
	nw.PartitionGroups([]fs.SiteID{1, 2}, []fs.SiteID{3})
	k3.CleanupAfterPartitionChange([]fs.SiteID{3})
	if _, err := k3.Open(fs.DefaultCred("u"), "/f", fs.ModeRead); !errors.Is(err, fs.ErrNoCSS) {
		t.Fatalf("open with no CSS: %v", err)
	}
}

func TestCrashDuringModifyLeavesCommittedVersion(t *testing.T) {
	// The shadow-page commit guarantee across a real crash: "one is
	// always left with either the original file or a completely changed
	// file" (§2.3.6).
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/f", []byte("committed"))
	c.settle(t)

	w, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if w.SS() != 2 {
		// Local copy exists at 2 after settle, so SS should be 2.
		t.Fatalf("SS = %d, want 2", w.SS())
	}
	if err := w.WriteAll([]byte("never committed")); err != nil {
		t.Fatal(err)
	}
	c.net.Crash(2)
	c.kernels[1].CleanupAfterPartitionChange([]fs.SiteID{1})
	c.net.Restart(2)
	for _, s := range []fs.SiteID{1, 2} {
		c.kernels[s].CleanupAfterPartitionChange([]fs.SiteID{1, 2})
	}
	if got := readFile(t, c.kernels[2], "/f"); string(got) != "committed" {
		t.Fatalf("after crash read %q, want committed", got)
	}
}

func TestTruncate(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	writeFile(t, k, "/f", bytes.Repeat([]byte{'z'}, storage.PageSize*2+100))
	f, err := k.Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, k, "/f")
	if string(got) != "zzzzzzzzzz" {
		t.Fatalf("after truncate read %q", got)
	}
	c.settle(t)
	got2 := readFile(t, c.kernels[2], "/f")
	if !bytes.Equal(got, got2) {
		t.Fatalf("truncate did not propagate: %q vs %q", got, got2)
	}
}

func TestReadAcrossEOFAndSparse(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	f, err := k.Create(cred(), "/sparse", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	// Write only page 2; pages 0-1 are holes.
	if _, err := f.WriteAt([]byte("tail"), int64(2*storage.PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data := readFile(t, k, "/sparse")
	if len(data) != 2*storage.PageSize+4 {
		t.Fatalf("size = %d", len(data))
	}
	for _, b := range data[:2*storage.PageSize] {
		if b != 0 {
			t.Fatal("hole not zero-filled")
		}
	}
	if string(data[2*storage.PageSize:]) != "tail" {
		t.Fatalf("tail = %q", data[2*storage.PageSize:])
	}
	// Reading past EOF returns 0.
	g, err := k.Open(cred(), "/sparse", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close() //nolint:errcheck
	n, err := g.ReadAt(make([]byte, 10), g.Size()+100)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF: n=%d err=%v", n, err)
	}
}
