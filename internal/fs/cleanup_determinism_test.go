package fs_test

// The cleanup procedure's wire schedule must be a pure function of the
// cluster state: CleanupAfterPartitionChange iterates the open-file,
// serving, and synchronization tables — all Go maps — and acts on the
// wire per entry (reopenElsewhere is a remote open). Iterating those
// maps raw would make the failover ORDER depend on the runtime's map
// hash seed, silently breaking the chaos plane's promise that a seed
// replays byte-identically. These tests pin the fix: two identical runs
// must produce byte-identical cleanup wire schedules.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// runPartitionCleanupSchedule builds a fresh cluster whose packless
// site 1 holds a spread of remote read handles served by site 2, drops
// site 2 from the partition, and returns the wire schedule site 1's
// cleanup produced while failing the handles over to site 3.
func runPartitionCleanupSchedule(t *testing.T) []string {
	t.Helper()
	packs := []fs.PackDesc{{Site: 2, Lo: 1, Hi: 1000}, {Site: 3, Lo: 1001, Hi: 2000}}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{{FG: 1, MountPath: "/", Packs: packs}})
	if err != nil {
		t.Fatal(err)
	}
	nw := netsim.New(netsim.DefaultCosts())
	t.Cleanup(nw.Close)
	k1 := mustBoot(t, nw.AddSite(1), cfg, nil)
	packKernels := map[fs.SiteID]*fs.Kernel{
		2: mustBoot(t, nw.AddSite(2), cfg, nil),
		3: mustBoot(t, nw.AddSite(3), cfg, nil),
	}
	if err := fs.Format(packKernels, cfg); err != nil {
		t.Fatal(err)
	}
	c := &testCluster{net: nw, cfg: cfg, kernels: map[fs.SiteID]*fs.Kernel{
		1: k1, 2: packKernels[2], 3: packKernels[3],
	}}

	// Open the handles before propagation replicates the files: every
	// handle is then served remotely by the pack that stored the create.
	var open []*fs.File
	for i := 0; i < 5; i++ {
		path := fmt.Sprintf("/f%d", i)
		writeFile(t, k1, path, []byte("payload"))
		f, err := k1.Open(cred(), path, fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		open = append(open, f)
	}
	// A second handle on one file: only the registration serial can
	// order the two.
	f, err := k1.Open(cred(), "/f0", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	open = append(open, f)

	// Replicate so site 3 holds the same versions, then lose the
	// serving site.
	c.settle(t)
	var servedBy2 int
	for _, f := range open {
		if f.SS() == 2 {
			servedBy2++
		}
	}
	if servedBy2 < 2 {
		t.Fatalf("only %d handles served by site 2; the schedule assertion needs several failovers", servedBy2)
	}
	nw.PartitionGroups([]fs.SiteID{1, 3}, []fs.SiteID{2})

	var sched []string
	nw.SetTrace(func(from, to netsim.SiteID, method string) {
		sched = append(sched, fmt.Sprintf("%d->%d %s", from, to, method))
	})
	rep := k1.CleanupAfterPartitionChange([]fs.SiteID{1, 3})
	nw.SetTrace(nil)
	if rep.ReadOpensReopened < 2 {
		t.Fatalf("cleanup reopened %d read handles, want >= 2: %+v", rep.ReadOpensReopened, rep)
	}
	for _, f := range open {
		f.Close() //nolint:errcheck
	}
	return sched
}

// TestPartitionCleanupScheduleDeterministic is the double-run check:
// the same cluster history must yield the same cleanup wire schedule,
// message for message. Before openFiles iteration was ordered this
// flaked with the map hash seed.
func TestPartitionCleanupScheduleDeterministic(t *testing.T) {
	a := runPartitionCleanupSchedule(t)
	b := runPartitionCleanupSchedule(t)
	if len(a) == 0 {
		t.Fatal("cleanup produced no wire sends; the schedule assertion is vacuous")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("cleanup wire schedules differ across identical runs:\nrun 1:\n  %s\nrun 2:\n  %s",
			strings.Join(a, "\n  "), strings.Join(b, "\n  "))
	}
}

// TestCommitPageListSorted pins the io.go side of the same property:
// the dirty-page list riding the commit notifications is sorted, not
// map-ordered.
func TestCommitPageListSorted(t *testing.T) {
	c := newCluster(t, 2)
	f, err := c.kernels[1].Create(cred(), "/big", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty several pages in a scattered order.
	for _, pn := range []int{4, 0, 2, 3, 1} {
		if _, err := f.WriteAt([]byte("x"), int64(pn)*storage.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	// The committed copy propagated page-complete to site 2; a garbled
	// page list would have dropped or duplicated pulls.
	got := readFile(t, c.kernels[2], "/big")
	if len(got) != 4*storage.PageSize+1 {
		t.Fatalf("replica length %d, want %d", len(got), 4*storage.PageSize+1)
	}
}
