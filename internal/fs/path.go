package fs

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/format"
	"repro/internal/storage"
)

// HiddenEscape is the suffix that makes a hidden directory visible in a
// pathname so "they can be examined and specific entries manipulated"
// (§2.4.1 rule d). "/bin/who" resolves through the process context;
// "/bin/who@@/vax" names the vax entry explicitly.
const HiddenEscape = "@@"

// Resolved is the result of pathname searching: the file's low-level
// name plus where its directory entry lives.
type Resolved struct {
	ID storage.FileID
	// Parent is the directory holding the final entry (zero for a
	// filegroup root).
	Parent storage.FileID
	// Name is the final pathname component (after hidden-context
	// substitution, the substituted entry name).
	Name string
	// ParentSites is the parent directory's storage-site list, needed
	// by the create placement rules.
	ParentSites []SiteID
	// Type is the resolved file's type.
	Type storage.FileType
}

// splitPath normalizes an absolute path into components.
func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: %q is not absolute", ErrBadName, path)
	}
	var comps []string
	for _, c := range strings.Split(path, "/") {
		if c == "" || c == "." {
			continue
		}
		name := strings.TrimSuffix(c, HiddenEscape)
		if !format.ValidName(name) {
			return nil, fmt.Errorf("%w: component %q", ErrBadName, c)
		}
		comps = append(comps, c)
	}
	return comps, nil
}

// rootID returns the low-level name of the tree root.
func (k *Kernel) rootID() (storage.FileID, error) {
	fg, ok := k.cfg.MountAt("/")
	if !ok {
		return storage.FileID{}, fmt.Errorf("fs: no root filegroup")
	}
	return storage.FileID{FG: fg, Inode: RootInode}, nil
}

// readDirByID reads and decodes a directory through an internal
// unsynchronized open (§2.3.4). The returned Directory may be shared
// with the kernel's directory cache and must not be mutated.
func (k *Kernel) readDirByID(id storage.FileID) (*format.Directory, *storage.Inode, error) {
	f, err := k.OpenID(id, ModeInternal)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //locus:vet-allow uncheckedcall internal close is local bookkeeping
	if f.ino.Type != storage.TypeDirectory && f.ino.Type != storage.TypeHiddenDir {
		return nil, nil, fmt.Errorf("%w: %v is %v", ErrNotDir, id, f.ino.Type)
	}
	ino := f.ino.Clone()
	if d, ok := k.dirs.get(id, ino.VV); ok {
		return d, ino, nil
	}
	raw, err := f.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	d, err := format.DecodeDir(raw)
	if err != nil {
		return nil, nil, err
	}
	k.dirs.put(id, ino.VV, d)
	return d, ino, nil
}

// statType returns a file's type via an internal open. A conflicted
// file still has a type: pathname searching must be able to name it so
// the resolution tools can operate on it.
func (k *Kernel) statType(id storage.FileID) (storage.FileType, error) {
	f, err := k.OpenID(id, ModeInternal)
	if err != nil {
		if errors.Is(err, ErrConflict) {
			if best, _, found := k.ProbeSummary(id); found {
				return best.Type, nil
			}
		}
		return 0, err
	}
	t := f.ino.Type
	f.Close() //locus:vet-allow uncheckedcall internal close
	return t, nil
}

// Resolve performs pathname searching (§2.3.4): starting at the root,
// each directory is opened with an internal unsynchronized read and
// searched for the next component; mount points switch filegroups, and
// hidden directories are expanded through the per-process context
// (§2.4.1) unless the component carries the escape suffix.
func (k *Kernel) Resolve(cred *Cred, path string) (*Resolved, error) {
	k.mu.Lock()
	ship := k.pathShip
	k.mu.Unlock()
	if ship {
		return k.resolveShipped(cred, path)
	}
	comps, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	cur, err := k.rootID()
	if err != nil {
		return nil, err
	}
	if len(comps) == 0 {
		sites := k.fgSites(cur.FG)
		return &Resolved{ID: cur, Name: "/", ParentSites: sites, Type: storage.TypeDirectory}, nil
	}

	curPath := ""
	var res *Resolved
	for i, comp := range comps {
		escaped := strings.HasSuffix(comp, HiddenEscape)
		name := strings.TrimSuffix(comp, HiddenEscape)

		d, parentIno, err := k.readDirByID(cur)
		if err != nil {
			return nil, err
		}
		e, ok := d.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q in %s", ErrNotFound, name, pathSoFar(curPath))
		}
		child := storage.FileID{FG: cur.FG, Inode: e.Inode}
		curPath = curPath + "/" + name

		// Mount crossing: an entry covered by a mounted filegroup
		// resolves to that filegroup's root.
		if fg, mounted := k.cfg.MountAt(curPath); mounted {
			child = storage.FileID{FG: fg, Inode: RootInode}
		}

		typ, err := k.statType(child)
		if err != nil {
			return nil, err
		}

		// Hidden directory: substitute the per-process context entry
		// unless escaped (§2.4.1 rule c).
		if typ == storage.TypeHiddenDir && !escaped {
			hd, _, err := k.readDirByID(child)
			if err != nil {
				return nil, err
			}
			var he format.DirEntry
			found := false
			for _, ctx := range cred.HiddenCtx {
				if cand, ok := hd.Lookup(ctx); ok {
					he, found = cand, true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("%w: no context match in hidden directory %s (context %v)",
					ErrNotFound, curPath, cred.HiddenCtx)
			}
			parent := child
			child = storage.FileID{FG: parent.FG, Inode: he.Inode}
			typ, err = k.statType(child)
			if err != nil {
				return nil, err
			}
			res = &Resolved{ID: child, Parent: parent, Name: he.Name,
				ParentSites: k.fileSites(parent), Type: typ}
		} else {
			res = &Resolved{ID: child, Parent: cur, Name: name,
				ParentSites: parentIno.Sites, Type: typ}
		}

		if i < len(comps)-1 {
			if typ != storage.TypeDirectory && typ != storage.TypeHiddenDir {
				return nil, fmt.Errorf("%w: %s", ErrNotDir, curPath)
			}
			cur = child
		}
	}
	return res, nil
}

func pathSoFar(p string) string {
	if p == "" {
		return "/"
	}
	return p
}

// ResolveParent resolves everything but the last component, returning
// the parent directory and the (possibly nonexistent) final name. The
// final name must not carry the hidden escape.
func (k *Kernel) ResolveParent(cred *Cred, path string) (parent storage.FileID, name string, parentSites []SiteID, err error) {
	comps, err := splitPath(path)
	if err != nil {
		return storage.FileID{}, "", nil, err
	}
	if len(comps) == 0 {
		return storage.FileID{}, "", nil, fmt.Errorf("%w: cannot operate on /", ErrBadName)
	}
	last := comps[len(comps)-1]
	if strings.HasSuffix(last, HiddenEscape) {
		last = strings.TrimSuffix(last, HiddenEscape)
	}
	dirPath := "/" + strings.Join(trimEscapes(comps[:len(comps)-1]), "/")
	r, err := k.Resolve(cred, dirPath)
	if err != nil {
		return storage.FileID{}, "", nil, err
	}
	if r.Type != storage.TypeDirectory && r.Type != storage.TypeHiddenDir {
		return storage.FileID{}, "", nil, fmt.Errorf("%w: %s", ErrNotDir, dirPath)
	}
	return r.ID, last, k.fileSites(r.ID), nil
}

func trimEscapes(comps []string) []string {
	return comps // escapes are preserved; Resolve handles them
}

// fgSites returns a filegroup's configured pack sites.
func (k *Kernel) fgSites(fg storage.FilegroupID) []SiteID {
	d, ok := k.cfg.FG(fg)
	if !ok {
		return nil
	}
	return d.PackSites()
}

// fileSites returns a file's storage-site list via an internal open.
func (k *Kernel) fileSites(id storage.FileID) []SiteID {
	f, err := k.OpenID(id, ModeInternal)
	if err != nil {
		return nil
	}
	sites := append([]SiteID(nil), f.ino.Sites...)
	f.Close() //locus:vet-allow uncheckedcall internal close
	return sites
}
