package fs

import (
	"sync"

	"repro/internal/format"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// dirCache caches decoded directory content keyed by file and version
// vector. Pathname searching (§2.3.4) opens and decodes a directory for
// every component of every path; under a steady workload the same few
// directories are decoded millions of times while changing rarely. The
// version vector is bumped on every commit, and two copies with equal
// vectors are identical by construction (conflicting copies compare
// concurrent, merge results dominate both inputs), so (FileID, VV)
// names directory content exactly: a hit can skip the page read and
// decode entirely, and a stale entry simply misses.
//
// Cached *format.Directory values are shared between callers and MUST
// be treated as read-only. The mutation path (updateDir) decodes its
// own private copy, and refreshes the cache with the mutated directory
// only after the commit assigns it a new version vector.
//
// The cache holds decoded form only; the page-level protocols and the
// US page cache are unaffected, so disk/network byte accounting still
// reflects first reads and every post-update re-read.
const dirCacheCap = 512

type dirCacheEntry struct {
	vv  vclock.VV
	dir *format.Directory
}

type dirCache struct {
	mu sync.Mutex
	m  map[storage.FileID]dirCacheEntry
}

// get returns the cached decode of id's content at exactly version vv.
func (c *dirCache) get(id storage.FileID, vv vclock.VV) (*format.Directory, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[id]
	if !ok || !e.vv.Equal(vv) {
		return nil, false
	}
	return e.dir, true
}

// put installs the decoded directory for id at version vv. The caller
// yields ownership: d must not be mutated after put. When the cache
// fills it is dropped wholesale — deterministic, and directories are
// few enough that refilling is cheap.
func (c *dirCache) put(id storage.FileID, vv vclock.VV, d *format.Directory) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil || len(c.m) >= dirCacheCap {
		c.m = make(map[storage.FileID]dirCacheEntry, 16)
	}
	c.m[id] = dirCacheEntry{vv: vv.Copy(), dir: d}
}
