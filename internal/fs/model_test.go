package fs_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/fs"
	"repro/internal/storage"
)

// Model-based testing: drive a random sequence of system calls against
// the distributed filesystem (all sites fully connected, settling after
// each mutation) and against a trivial in-memory reference model. The
// distributed system must agree with the model at every step from every
// site — network transparency means the distribution is unobservable.

type modelFS struct {
	files map[string][]byte // path -> content (regular files)
	dirs  map[string]bool   // path -> exists
}

func newModelFS() *modelFS {
	return &modelFS{files: map[string][]byte{}, dirs: map[string]bool{"/": true}}
}

func parentOf(p string) string {
	for i := len(p) - 1; i > 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "/"
}

func (m *modelFS) create(p string, data []byte) error {
	if !m.dirs[parentOf(p)] {
		return fs.ErrNotFound
	}
	if m.dirs[p] || m.files[p] != nil {
		return fs.ErrExists
	}
	m.files[p] = append([]byte(nil), data...)
	return nil
}

func (m *modelFS) update(p string, data []byte) error {
	if m.files[p] == nil {
		return fs.ErrNotFound
	}
	m.files[p] = append([]byte(nil), data...)
	return nil
}

func (m *modelFS) mkdir(p string) error {
	if !m.dirs[parentOf(p)] {
		return fs.ErrNotFound
	}
	if m.dirs[p] || m.files[p] != nil {
		return fs.ErrExists
	}
	m.dirs[p] = true
	return nil
}

func (m *modelFS) unlink(p string) error {
	if m.files[p] != nil {
		delete(m.files, p)
		return nil
	}
	if m.dirs[p] {
		for q := range m.files {
			if parentOf(q) == p {
				return fs.ErrNotEmpty
			}
		}
		for q := range m.dirs {
			if q != p && parentOf(q) == p {
				return fs.ErrNotEmpty
			}
		}
		delete(m.dirs, p)
		return nil
	}
	return fs.ErrNotFound
}

func (m *modelFS) rename(old, new string) error {
	if !m.dirs[parentOf(new)] {
		return fs.ErrNotFound
	}
	if m.dirs[new] || m.files[new] != nil {
		return fs.ErrExists
	}
	if m.files[old] != nil {
		m.files[new] = m.files[old]
		delete(m.files, old)
		return nil
	}
	if m.dirs[old] {
		// Directory rename: move the subtree.
		m.dirs[new] = true
		delete(m.dirs, old)
		oldPrefix := old + "/"
		for q, v := range m.files {
			if len(q) > len(oldPrefix) && q[:len(oldPrefix)] == oldPrefix {
				m.files[new+q[len(old):]] = v
				delete(m.files, q)
			}
		}
		for q := range m.dirs {
			if len(q) > len(oldPrefix) && q[:len(oldPrefix)] == oldPrefix {
				m.dirs[new+q[len(old):]] = true
				delete(m.dirs, q)
			}
		}
		return nil
	}
	return fs.ErrNotFound
}

func (m *modelFS) list(p string) ([]string, error) {
	if !m.dirs[p] {
		return nil, fs.ErrNotFound
	}
	var out []string
	add := func(q string) {
		if parentOf(q) == p && q != "/" {
			out = append(out, q[len(p):])
		}
	}
	for q := range m.files {
		add(q)
	}
	for q := range m.dirs {
		add(q)
	}
	for i := range out {
		out[i] = trimSlash(out[i])
	}
	sort.Strings(out)
	return out, nil
}

func trimSlash(s string) string {
	if len(s) > 0 && s[0] == '/' {
		return s[1:]
	}
	return s
}

func sameErrClass(a, b error) bool {
	classes := []error{fs.ErrNotFound, fs.ErrExists, fs.ErrNotEmpty, fs.ErrBadName}
	for _, c := range classes {
		if errors.Is(a, c) || errors.Is(b, c) {
			return errors.Is(a, c) == errors.Is(b, c)
		}
	}
	return (a == nil) == (b == nil)
}

func TestModelBasedRandomOperations(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := newClusterQ(t, 3)
		defer c.net.Close()
		model := newModelFS()

		dirs := []string{"/"}
		var files []string
		pick := func(ss []string) string { return ss[r.Intn(len(ss))] }
		newName := func() string { return fmt.Sprintf("n%02d", r.Intn(20)) }
		join := func(dir, name string) string {
			if dir == "/" {
				return "/" + name
			}
			return dir + "/" + name
		}

		for step := 0; step < 30; step++ {
			k := c.kernels[fs.SiteID(1+r.Intn(3))]
			switch r.Intn(6) {
			case 0: // create file
				p := join(pick(dirs), newName())
				data := []byte(fmt.Sprintf("content-%d", step))
				var realErr error
				if fh, err := k.Create(cred(), p, storage.TypeRegular, 0644); err != nil {
					realErr = err
				} else {
					if err := fh.WriteAll(data); err != nil {
						return false
					}
					if err := fh.Close(); err != nil {
						return false
					}
				}
				modelErr := model.create(p, data)
				if !sameErrClass(realErr, modelErr) {
					t.Logf("seed %d step %d create %s: real=%v model=%v", seed, step, p, realErr, modelErr)
					return false
				}
				if modelErr == nil {
					files = append(files, p)
				}
			case 1: // update file
				if len(files) == 0 {
					continue
				}
				p := pick(files)
				data := []byte(fmt.Sprintf("update-%d", step))
				var realErr error
				if fh, err := k.Open(cred(), p, fs.ModeModify); err != nil {
					realErr = err
				} else {
					if err := fh.WriteAll(data); err != nil {
						return false
					}
					if err := fh.Close(); err != nil {
						return false
					}
				}
				modelErr := model.update(p, data)
				if !sameErrClass(realErr, modelErr) {
					t.Logf("seed %d step %d update %s: real=%v model=%v", seed, step, p, realErr, modelErr)
					return false
				}
			case 2: // mkdir
				p := join(pick(dirs), newName())
				realErr := k.Mkdir(cred(), p, 0755)
				modelErr := model.mkdir(p)
				if !sameErrClass(realErr, modelErr) {
					t.Logf("seed %d step %d mkdir %s: real=%v model=%v", seed, step, p, realErr, modelErr)
					return false
				}
				if modelErr == nil {
					dirs = append(dirs, p)
				}
			case 3: // unlink
				var p string
				if len(files) > 0 && r.Intn(2) == 0 {
					p = pick(files)
				} else {
					p = join(pick(dirs), newName())
				}
				realErr := k.Unlink(cred(), p)
				modelErr := model.unlink(p)
				if !sameErrClass(realErr, modelErr) {
					t.Logf("seed %d step %d unlink %s: real=%v model=%v", seed, step, p, realErr, modelErr)
					return false
				}
			case 4: // rename a file
				if len(files) == 0 {
					continue
				}
				old := pick(files)
				new := join(pick(dirs), newName())
				realErr := k.Rename(cred(), old, new)
				modelErr := model.rename(old, new)
				if !sameErrClass(realErr, modelErr) {
					t.Logf("seed %d step %d rename %s->%s: real=%v model=%v", seed, step, old, new, realErr, modelErr)
					return false
				}
			case 5: // read everything and compare from a random site
				// handled by the verification below
			}
			c.settleQ()

			// Verify all model files readable with identical content
			// from a random site.
			vk := c.kernels[fs.SiteID(1+r.Intn(3))]
			for p, want := range model.files {
				fh, err := vk.Open(cred(), p, fs.ModeRead)
				if err != nil {
					t.Logf("seed %d step %d verify open %s: %v", seed, step, p, err)
					return false
				}
				got, err := fh.ReadAll()
				fh.Close() //nolint:errcheck
				if err != nil || !bytes.Equal(got, want) {
					t.Logf("seed %d step %d verify %s: got %q want %q (%v)", seed, step, p, got, want, err)
					return false
				}
			}
			// Verify a random directory listing.
			d := pick(dirs)
			wantList, err := model.list(d)
			if err == nil {
				ents, err := vk.ReadDir(cred(), d)
				if err != nil {
					t.Logf("seed %d step %d list %s: %v", seed, step, d, err)
					return false
				}
				var gotList []string
				for _, e := range ents {
					gotList = append(gotList, e.Name)
				}
				sort.Strings(gotList)
				if fmt.Sprint(gotList) != fmt.Sprint(wantList) {
					t.Logf("seed %d step %d list %s: got %v want %v", seed, step, d, gotList, wantList)
					return false
				}
			}

			// Refresh live name lists from the model.
			files = files[:0]
			for p := range model.files {
				files = append(files, p)
			}
			sort.Strings(files)
			dirs = dirs[:1]
			for p := range model.dirs {
				if p != "/" {
					dirs = append(dirs, p)
				}
			}
			sort.Strings(dirs[1:])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// newClusterQ / settleQ: quiet variants without testing.T fatals (for
// use inside quick.Check closures).
func newClusterQ(t *testing.T, n int) *testCluster {
	t.Helper()
	return newCluster(t, n)
}

func (c *testCluster) settleQ() {
	for pass := 0; pass < 50; pass++ {
		c.net.Quiesce()
		n := 0
		for _, k := range c.kernels {
			n += k.DrainPropagation()
		}
		if n == 0 {
			c.net.Quiesce()
			pending := 0
			for _, k := range c.kernels {
				pending += k.PendingPropagations()
			}
			if pending == 0 {
				return
			}
		}
	}
}
