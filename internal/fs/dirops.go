package fs

import (
	"errors"
	"fmt"

	"repro/internal/format"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// Open opens a file by pathname (§2.3.3). Open for modification
// requires the CSS to grant the single-writer lock.
func (k *Kernel) Open(cred *Cred, path string, mode OpenMode) (*File, error) {
	r, err := k.Resolve(cred, path)
	if err != nil {
		return nil, err
	}
	return k.OpenID(r.ID, mode)
}

// Stat returns a snapshot of a file's inode by pathname.
func (k *Kernel) Stat(cred *Cred, path string) (*storage.Inode, error) {
	r, err := k.Resolve(cred, path)
	if err != nil {
		return nil, err
	}
	f, err := k.OpenID(r.ID, ModeInternal)
	if err != nil {
		return nil, err
	}
	defer f.Close() //locus:vet-allow uncheckedcall internal close
	return f.Inode(), nil
}

// ReadDir lists the live entries of a directory.
func (k *Kernel) ReadDir(cred *Cred, path string) ([]format.DirEntry, error) {
	r, err := k.Resolve(cred, path)
	if err != nil {
		return nil, err
	}
	d, _, err := k.readDirByID(r.ID)
	if err != nil {
		return nil, err
	}
	return d.Live(), nil
}

// updateDir applies a mutation to a directory through the standard
// open-for-modify / commit machinery, so directory updates replicate
// and synchronize exactly like file updates. Directory entry updates
// are short kernel-internal critical sections; when another site holds
// the directory's writer lock the kernel sleeps and retries on behalf
// of the process (§2.3.2: "the kernel ... can sleep on behalf of the
// process") rather than failing the user's create/unlink with EBUSY.
func (k *Kernel) updateDir(id storage.FileID, mutate func(*format.Directory) error) error {
	f, err := k.openDirForUpdate(id)
	if err != nil {
		return err
	}
	defer f.Close() //locus:vet-allow uncheckedcall commit already happened or failed below
	var d *format.Directory
	if cached, ok := k.dirs.get(id, f.ino.VV); ok {
		// Start from the cached decode of exactly this version; the
		// clone keeps the cached copy immutable while we mutate.
		d = cached.Clone()
	} else {
		raw, err := f.ReadAll()
		if err != nil {
			return err
		}
		d, err = format.DecodeDir(raw)
		if err != nil {
			return err
		}
	}
	if err := mutate(d); err != nil {
		f.Abort() //locus:vet-allow uncheckedcall best-effort rollback
		return err
	}
	if err := f.WriteAll(format.EncodeDir(d)); err != nil {
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	// Commit assigned the new content its version vector; hand the
	// already-decoded directory to the cache so the next pathname search
	// does not re-parse what we just wrote. d is not touched again here.
	k.dirs.put(id, f.ino.VV, d)
	return nil
}

// openDirForUpdate opens a directory for modification, retrying while
// another updater briefly holds the writer lock. (Transient
// no-storage-site windows are retried inside OpenID itself.) The wait
// goes through the simulated clock's backoff so the kernel never
// consults the wall clock (the simclock analyzer enforces this).
func (k *Kernel) openDirForUpdate(id storage.FileID) (*File, error) {
	clock := k.node.Network().Clock()
	var err error
	for attempt := 0; attempt < 4000; attempt++ {
		var f *File
		f, err = k.OpenID(id, ModeModify)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, ErrBusy) {
			return nil, err
		}
		clock.Backoff(attempt)
	}
	return nil, err
}

// dirInsert adds a live entry, failing if the name exists.
func (k *Kernel) dirInsert(dir storage.FileID, name string, ino storage.InodeNum) error {
	return k.updateDir(dir, func(d *format.Directory) error {
		if _, exists := d.Lookup(name); exists {
			return fmt.Errorf("%w: %q", ErrExists, name)
		}
		d.Insert(name, ino)
		return nil
	})
}

// dirRemove tombstones an entry, recording the file's delete-time
// version vector.
func (k *Kernel) dirRemove(dir storage.FileID, name string, delVV vclock.VV) error {
	return k.updateDir(dir, func(d *format.Directory) error {
		if !d.Remove(name, delVV) {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil
	})
}

// effectiveNCopies applies §2.3.7: "the initial replication factor of a
// file is the minimum of the user settable number-of-copies variable
// and the replication factor of the parent directory".
func effectiveNCopies(cred *Cred, parentSites []SiteID) int {
	n := cred.NCopies
	if n <= 0 || n > len(parentSites) {
		n = len(parentSites)
	}
	return n
}

// Create creates a regular (or typed) file at path and returns it open
// for modification. The caller must Close (or Commit) it.
func (k *Kernel) Create(cred *Cred, path string, typ storage.FileType, mode uint16) (*File, error) {
	parent, name, parentSites, err := k.ResolveParent(cred, path)
	if err != nil {
		return nil, err
	}
	d, _, err := k.readDirByID(parent)
	if err != nil {
		return nil, err
	}
	if _, exists := d.Lookup(name); exists {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	f, err := k.CreateID(parent.FG, typ, cred, mode, effectiveNCopies(cred, parentSites), parentSites)
	if err != nil {
		return nil, err
	}
	if err := k.dirInsert(parent, name, f.id.Inode); err != nil {
		// Roll the create back: mark the orphan inode deleted.
		f.setAttr(&setAttrReq{ID: f.id, Nlink: 0, Mode: -1, SetDeleted: true})
		f.Commit() //locus:vet-allow uncheckedcall rollback
		f.Close()  //locus:vet-allow uncheckedcall rollback
		return nil, err
	}
	return f, nil
}

// Mkdir creates an ordinary directory.
func (k *Kernel) Mkdir(cred *Cred, path string, mode uint16) error {
	f, err := k.Create(cred, path, storage.TypeDirectory, mode)
	if err != nil {
		return err
	}
	return f.Close()
}

// MkHidden creates a hidden directory for context-sensitive naming
// (§2.4.1). Populate it with per-context entries (e.g. "vax",
// "pdp11") via Create on escaped paths: "/bin/who@@/vax".
func (k *Kernel) MkHidden(cred *Cred, path string, mode uint16) error {
	f, err := k.Create(cred, path, storage.TypeHiddenDir, mode)
	if err != nil {
		return err
	}
	return f.Close()
}

// Mkfifo creates a named pipe in the catalog; the process layer
// provides its cross-network semantics (§2.4.2).
func (k *Kernel) Mkfifo(cred *Cred, path string, mode uint16) error {
	f, err := k.Create(cred, path, storage.TypePipe, mode)
	if err != nil {
		return err
	}
	return f.Close()
}

// Annotation keys for device special files.
const (
	// DevSiteAnnotation records the site hosting the device.
	DevSiteAnnotation = "dev.site"
	// DevNameAnnotation records the driver name at the hosting site.
	DevNameAnnotation = "dev.name"
)

// Mknod creates a device special file bound to a driver at a hosting
// site. "LOCUS provides for transparent use of remote devices" —
// §2.4.2: the catalog names the device; the process layer routes I/O
// to the hosting site.
func (k *Kernel) Mknod(cred *Cred, path string, host SiteID, devName string, mode uint16) error {
	f, err := k.Create(cred, path, storage.TypeDevice, mode)
	if err != nil {
		return err
	}
	err = f.setAttr(&setAttrReq{
		ID: f.id, Nlink: -1, Mode: -1,
		Annotations: map[string]string{
			DevSiteAnnotation: fmt.Sprintf("%d", host),
			DevNameAnnotation: devName,
		},
	})
	if err != nil {
		f.Close() //locus:vet-allow uncheckedcall abandoning
		return err
	}
	return f.Close()
}

// setAttr ships a descriptive inode change to the SS (one-way, like the
// write protocol) and records it in the local in-core image.
func (f *File) setAttr(req *setAttrReq) error {
	k := f.k
	var err error
	if f.ss == k.site {
		_, err = k.handleSetAttr(k.site, req)
	} else {
		err = k.cast(f.ss, mSetAttr, req)
	}
	if err != nil {
		return err
	}
	applyAttr(f.ino, req)
	f.dirty[0] = true
	return nil
}

func applyAttr(ino *storage.Inode, req *setAttrReq) {
	if req.Nlink >= 0 {
		ino.Nlink = req.Nlink
	}
	if req.Mode >= 0 {
		ino.Mode = uint16(req.Mode)
	}
	if req.Owner != "" {
		ino.Owner = req.Owner
	}
	if req.SetDeleted {
		ino.Deleted = true
		ino.Pages = nil
		ino.Size = 0
	}
	if req.Sites != nil {
		ino.Sites = append([]SiteID(nil), req.Sites...)
	}
	if req.Annotations != nil {
		if ino.Annotations == nil {
			ino.Annotations = make(map[string]string, len(req.Annotations))
		}
		for k, v := range req.Annotations {
			ino.Annotations[k] = v
		}
	}
}

func (k *Kernel) handleSetAttr(from SiteID, p any) (any, error) {
	req := p.(*setAttrReq)
	k.mu.Lock()
	defer k.mu.Unlock()
	sv := k.ssState[req.ID]
	if sv == nil || sv.writerUS != from || sv.incore == nil {
		return nil, nil // modify open gone; drop like a late write
	}
	if req.SetDeleted {
		// Data pages are released at commit; mark for whole-state prop.
		sv.truncated = true
	}
	applyAttr(sv.incore, req)
	sv.dirty[0] = true
	return nil, nil
}

// Chmod changes permission bits — an inode-only modification
// propagated without data pages (§2.3.6).
func (k *Kernel) Chmod(cred *Cred, path string, mode uint16) error {
	return k.attrOp(cred, path, &setAttrReq{Nlink: -1, Mode: int32(mode)})
}

// Chown changes the file owner.
func (k *Kernel) Chown(cred *Cred, path string, owner string) error {
	return k.attrOp(cred, path, &setAttrReq{Nlink: -1, Mode: -1, Owner: owner})
}

// SetReplication changes the file's storage-site list. New sites pull
// a copy at the next propagation; dropped sites stop receiving updates
// ("a move of an object is equivalent to an add followed by a delete of
// an object copy" — §2.2.1).
func (k *Kernel) SetReplication(cred *Cred, path string, sites []SiteID) error {
	if len(sites) == 0 {
		return fmt.Errorf("%w: empty site list", ErrBadName)
	}
	return k.attrOp(cred, path, &setAttrReq{Nlink: -1, Mode: -1, Sites: sites})
}

func (k *Kernel) attrOp(cred *Cred, path string, req *setAttrReq) error {
	f, err := k.Open(cred, path, ModeModify)
	if err != nil {
		return err
	}
	defer f.Close() //locus:vet-allow uncheckedcall commit below is the real barrier
	req.ID = f.id
	if err := f.setAttr(req); err != nil {
		return err
	}
	return f.Commit()
}

// Unlink removes a name. When the link count drops to zero the file
// itself is deleted: the US "marks the inode and does a commit" and
// the other storage sites release their pages as the delete propagates
// (§2.3.7). Directories must be empty.
func (k *Kernel) Unlink(cred *Cred, path string) error {
	r, err := k.Resolve(cred, path)
	if err != nil {
		return err
	}
	if r.Parent == (storage.FileID{}) {
		return fmt.Errorf("%w: cannot unlink a filegroup root", ErrBadName)
	}
	if r.Type == storage.TypeDirectory || r.Type == storage.TypeHiddenDir {
		d, _, err := k.readDirByID(r.ID)
		if err != nil {
			return err
		}
		if len(d.Live()) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, path)
		}
	}

	f, err := k.OpenID(r.ID, ModeModify)
	if err != nil {
		return err
	}
	nlink := f.ino.Nlink
	var delVV vclock.VV
	if nlink > 1 {
		err = f.setAttr(&setAttrReq{ID: f.id, Nlink: nlink - 1, Mode: -1})
	} else {
		err = f.setAttr(&setAttrReq{ID: f.id, Nlink: 0, Mode: -1, SetDeleted: true})
	}
	if err != nil {
		f.Close() //locus:vet-allow uncheckedcall nothing more to do
		return err
	}
	if err := f.Commit(); err != nil {
		f.Close() //locus:vet-allow uncheckedcall see above
		return err
	}
	delVV = f.ino.VV.Copy()
	if err := f.Close(); err != nil {
		return err
	}
	return k.dirRemove(r.Parent, r.Name, delVV)
}

// Link adds a hard link newpath referring to oldpath's file. Links
// cannot cross filegroup boundaries.
func (k *Kernel) Link(cred *Cred, oldpath, newpath string) error {
	r, err := k.Resolve(cred, oldpath)
	if err != nil {
		return err
	}
	parent, name, _, err := k.ResolveParent(cred, newpath)
	if err != nil {
		return err
	}
	if parent.FG != r.ID.FG {
		return fmt.Errorf("%w: %s -> %s", ErrCrossFilegroup, newpath, oldpath)
	}
	f, err := k.OpenID(r.ID, ModeModify)
	if err != nil {
		return err
	}
	if err := f.setAttr(&setAttrReq{ID: f.id, Nlink: f.ino.Nlink + 1, Mode: -1}); err != nil {
		f.Close() //locus:vet-allow uncheckedcall abandoning
		return err
	}
	if err := f.Commit(); err != nil {
		f.Close() //locus:vet-allow uncheckedcall abandoning
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := k.dirInsert(parent, name, r.ID.Inode); err != nil {
		// Roll back the link count.
		if g, e2 := k.OpenID(r.ID, ModeModify); e2 == nil {
			g.setAttr(&setAttrReq{ID: g.id, Nlink: g.ino.Nlink - 1, Mode: -1}) // error unchecked by design: rollback
			g.Commit()                                                         //locus:vet-allow uncheckedcall rollback
			g.Close()                                                          //locus:vet-allow uncheckedcall rollback
		}
		return err
	}
	return nil
}

// Rename moves a name within one filegroup: the new entry is inserted
// and the old removed; the file's inode is untouched.
func (k *Kernel) Rename(cred *Cred, oldpath, newpath string) error {
	r, err := k.Resolve(cred, oldpath)
	if err != nil {
		return err
	}
	newParent, newName, _, err := k.ResolveParent(cred, newpath)
	if err != nil {
		return err
	}
	if newParent.FG != r.ID.FG {
		return fmt.Errorf("%w: rename %s -> %s", ErrCrossFilegroup, oldpath, newpath)
	}
	if err := k.dirInsert(newParent, newName, r.ID.Inode); err != nil {
		return err
	}
	// Removing the old name is not a file delete: no delete VV applies;
	// use the file's current vector so a tombstone survives merges.
	f, err := k.OpenID(r.ID, ModeInternal)
	var vv vclock.VV
	if err == nil {
		vv = f.ino.VV.Copy()
		f.Close() //locus:vet-allow uncheckedcall internal close
	} else {
		vv = vclock.New()
	}
	if err := k.dirRemove(r.Parent, r.Name, vv); err != nil {
		// Roll back the insert.
		k.dirRemove(newParent, newName, vv) // error unchecked by design: rollback
		return err
	}
	return nil
}
