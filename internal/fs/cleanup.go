package fs

import (
	"sort"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// CleanupReport summarizes the actions the cleanup procedure took,
// mirroring the failure-action table of §5.6.
type CleanupReport struct {
	// ModifyOpensAborted counts US-side modify handles whose SS was
	// lost: "Discard pages, set error in local file descriptor".
	ModifyOpensAborted int
	// ReadOpensReopened counts read handles transparently switched to
	// another storage site holding the same version: "Internal close,
	// attempt to reopen at other site".
	ReadOpensReopened int
	// ReadOpensLost counts read handles with no substitute copy.
	ReadOpensLost int
	// ServesDiscarded counts SS-side serving states for lost using
	// sites: "Discard pages, close file and abort updates".
	ServesDiscarded int
	// LocksReleased counts CSS lock-table records for lost sites.
	LocksReleased int
	// LeasesReclaimed counts leases and delegate records discarded by
	// the conservative merge rule: after a partition change the merged
	// version vector may no longer support a lease's stamp, so all of
	// them are released (idle writer leases perform their deferred
	// close; read delegations are returned to the CSS best-effort).
	LeasesReclaimed int
}

// CleanupAfterPartitionChange installs a new partition view and runs
// the cleanup procedure of §5.6: every resource in use across a lost
// circuit is released or failed over, on both the local and remote
// sides, before normal operation resumes.
func (k *Kernel) CleanupAfterPartitionChange(newPartition []SiteID) CleanupReport {
	k.SetPartition(newPartition)
	in := make(map[SiteID]bool, len(newPartition))
	for _, s := range newPartition {
		in[s] = true
	}
	var rep CleanupReport

	// --- Lease layer: discard every held lease (§5.6 applied to the
	// lease table — leases are reclaimed exactly like lock-table
	// records). Releasing is best-effort: an unreachable CSS or SS runs
	// its own cleanup, which drops the matching records for sites
	// outside *its* partition.
	k.mu.Lock()
	var heldLeases []*usLease
	for _, l := range k.leases {
		heldLeases = append(heldLeases, l)
	}
	k.leases = make(map[storage.FileID]*usLease)
	k.leaseDropped = make(map[storage.FileID]bool)
	k.mu.Unlock()
	sort.Slice(heldLeases, func(i, j int) bool {
		a, b := heldLeases[i].id, heldLeases[j].id
		if a.FG != b.FG {
			return a.FG < b.FG
		}
		return a.Inode < b.Inode
	})
	for _, l := range heldLeases {
		k.releaseLease(l)
		rep.LeasesReclaimed++
	}

	// --- US side: open files whose storage site left the partition.
	// The failover order is part of the deterministic replay schedule
	// (reopenElsewhere sends on the wire), so iterate handles in
	// (file, registration) order, never raw map order.
	k.mu.Lock()
	var affected []*File
	for f := range k.openFiles {
		if !in[f.ss] && f.ss != k.site {
			affected = append(affected, f)
		}
	}
	k.mu.Unlock()
	sort.Slice(affected, func(i, j int) bool {
		a, b := affected[i], affected[j]
		if a.id.FG != b.id.FG {
			return a.id.FG < b.id.FG
		}
		if a.id.Inode != b.id.Inode {
			return a.id.Inode < b.id.Inode
		}
		return a.serial < b.serial
	})
	for _, f := range affected {
		switch {
		case f.internal:
			// Internal opens hold no remote state; nothing to do.
		case f.mode == ModeModify:
			// Updates in progress are lost with the storage site.
			k.mu.Lock()
			f.stale = true
			f.dirty = make(map[storage.PageNo]bool)
			k.mu.Unlock()
			rep.ModifyOpensAborted++
		default: // ModeRead
			if k.reopenElsewhere(f) {
				rep.ReadOpensReopened++
			} else {
				k.mu.Lock()
				f.stale = true
				k.mu.Unlock()
				rep.ReadOpensLost++
			}
		}
	}

	// --- SS side: serving state for using sites that are gone.
	k.mu.Lock()
	type drop struct {
		id    storage.FileID
		pages []storage.PhysPage
	}
	var drops []drop
	for _, id := range sortedFileIDs(k.ssState) {
		sv := k.ssState[id]
		if sv.writerUS != vclock.NoSite && !in[sv.writerUS] {
			var freed []storage.PhysPage
			if sv.incore != nil {
				for _, pp := range sv.incore.Pages {
					if pp != storage.PhysPageNil && !sv.committedPages[pp] {
						freed = append(freed, pp)
					}
				}
			}
			sv.writerUS = vclock.NoSite
			sv.incore = nil
			sv.committedPages = nil
			sv.dirty = nil
			drops = append(drops, drop{id: id, pages: freed})
			rep.ServesDiscarded++
		}
		for _, us := range sortedSiteIDs(sv.readers) {
			if !in[us] {
				delete(sv.readers, us)
				rep.ServesDiscarded++
			}
		}
		if sv.writerUS == vclock.NoSite && len(sv.readers) == 0 {
			delete(k.ssState, id)
		}
	}

	// --- CSS side: rebuild the lock table. Entries for filegroups we
	// no longer synchronize are dropped; records naming lost sites are
	// released.
	for _, id := range sortedFileIDs(k.cssState) {
		e := k.cssState[id]
		css, err := k.cssOfLocked(id.FG)
		if err != nil || css != k.site {
			delete(k.cssState, id)
			continue
		}
		// Conservative merge rule, CSS side: all delegate records are
		// discarded (the in-partition holders discard their own copies
		// in their cleanup; out-of-partition holders cannot be revoked).
		if n := len(e.delegates); n > 0 {
			e.delegates = nil
			rep.LeasesReclaimed += n
		}
		if e.writerUS == vclock.NoSite && len(e.readers) == 0 {
			// No ongoing opens: drop the entry so the first open after
			// the change rebuilds it by polling the packs now in the
			// partition — the lock-table reconstruction of §5.6, which
			// is also what detects cross-partition version conflicts.
			delete(k.cssState, id)
			continue
		}
		if e.writerUS != vclock.NoSite && !in[e.writerUS] {
			e.writerUS = vclock.NoSite
			e.writerSS = vclock.NoSite
			rep.LocksReleased++
		}
		if e.writerSS != vclock.NoSite && !in[e.writerSS] {
			// The storage site serving the writer is gone; the writer's
			// own cleanup aborts its handle.
			e.writerUS = vclock.NoSite
			e.writerSS = vclock.NoSite
			rep.LocksReleased++
		}
		for _, us := range sortedSiteIDs(e.readers) {
			if !in[us] || !in[e.readerSS[us]] {
				delete(e.readers, us)
				delete(e.readerSS, us)
				rep.LocksReleased++
			}
		}
	}
	k.mu.Unlock()

	for _, d := range drops {
		if c := k.container(d.id.FG); c != nil && len(d.pages) > 0 {
			c.FreePages(d.pages...)
		}
	}
	return rep
}

// sortedFileIDs returns m's keys in (filegroup, inode) order so state
// sweeps act in a seed-replayable order.
func sortedFileIDs[V any](m map[storage.FileID]V) []storage.FileID {
	ids := make([]storage.FileID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].FG != ids[j].FG {
			return ids[i].FG < ids[j].FG
		}
		return ids[i].Inode < ids[j].Inode
	})
	return ids
}

// sortedSiteIDs returns m's keys in ascending site order.
func sortedSiteIDs[V any](m map[SiteID]V) []SiteID {
	sites := make([]SiteID, 0, len(m))
	for s := range m {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}

// cssOfLocked is CSSOf without taking k.mu (caller holds it).
func (k *Kernel) cssOfLocked(fg storage.FilegroupID) (SiteID, error) {
	d, ok := k.cfg.FG(fg)
	if !ok {
		return 0, ErrNoCSS
	}
	inPart := func(s SiteID) bool {
		for _, x := range k.partition {
			if x == s {
				return true
			}
		}
		return false
	}
	var best SiteID
	for _, p := range d.Packs {
		if inPart(p.Site) && (best == 0 || p.Site < best) {
			best = p.Site
		}
	}
	if best == 0 {
		return 0, ErrNoCSS
	}
	return best, nil
}

// reopenElsewhere tries to substitute another storage site holding the
// same version of the file for a read handle whose SS vanished ("If a
// process loses contact with a file it was reading remotely, the
// system will attempt to reopen a different copy of the same version"
// — §5.1).
func (k *Kernel) reopenElsewhere(f *File) bool {
	g, err := k.OpenID(f.id, ModeRead)
	if err != nil {
		return false
	}
	// Same version required: the paper substitutes only equal versions
	// for a continuing read.
	if !g.ino.VV.Equal(f.ino.VV) {
		g.Close() //locus:vet-allow uncheckedcall substitute rejected
		return false
	}
	f.ss = g.ss
	f.ino = g.ino
	// Transfer the registration made by g to f and retire g silently.
	k.mu.Lock()
	delete(k.openFiles, g)
	g.closed = true
	k.mu.Unlock()
	return true
}
