package fs_test

import (
	"errors"
	"testing"

	"repro/internal/fs"
	"repro/internal/netsim"
)

// TestStrandedWriterLockReclaimedOnOpen is the regression test for the
// lock leak the chaos harness found: a close whose mSSClose message is
// lost to the network (with no partition change, so §5.6 cleanup never
// runs) used to strand the CSS writer record forever, refusing every
// later open for modification. The CSS must validate the recorded
// holder on refusal and reclaim the stale lock.
func TestStrandedWriterLockReclaimedOnOpen(t *testing.T) {
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("v1"))
	c.settle(t)

	// Site 3 opens for modify; its copy is current, so it serves itself
	// (SS = 3). CSS for the root filegroup is site 1.
	w, err := c.kernels[3].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if w.SS() != 3 {
		t.Fatalf("SS = %d, want 3 (self-serve)", w.SS())
	}

	// Every message from 3 to the CSS is lost: handleClose's mSSClose
	// exhausts its retries, the error is swallowed (the US cannot act on
	// it), and the CSS writer record is stranded.
	c.net.EnableFaults(netsim.FaultConfig{
		Seed:  1,
		Links: map[[2]fs.SiteID]netsim.FaultRates{{3, 1}: {Drop: 1}},
	})
	if err := w.Close(); err != nil {
		t.Fatalf("close with lost mSSClose: %v", err)
	}
	c.net.DisableFaults()

	// A later open for modification from another site must reclaim the
	// stale lock (probe site 3, find no live handle) instead of
	// refusing with ErrBusy forever.
	g, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatalf("open after stranded lock: %v", err)
	}
	if err := g.WriteAll([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	if got := readFile(t, c.kernels[1], "/f"); string(got) != "v2" {
		t.Fatalf("after reclaim read %q, want v2", got)
	}
}

// TestStrandedWriterLockReclaimedBySameSite covers the self-probe path:
// the site whose own close was lost must be able to reclaim its own
// stale lock — its new open's in-flight record must not count as
// evidence that the old handle is still alive.
func TestStrandedWriterLockReclaimedBySameSite(t *testing.T) {
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("v1"))
	if err := c.kernels[1].SetReplication(cred(), "/f", []fs.SiteID{3}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	// US = 2, SS = 3 (only copy), CSS = 1.
	w, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if w.SS() != 3 {
		t.Fatalf("SS = %d, want 3", w.SS())
	}

	// The close itself is lost on the wire: the US sees a timeout, and
	// both the SS serving state and the CSS writer record are stranded.
	c.net.EnableFaults(netsim.FaultConfig{
		Seed:  1,
		Links: map[[2]fs.SiteID]netsim.FaultRates{{2, 3}: {Drop: 1}},
	})
	if err := w.Close(); !errors.Is(err, netsim.ErrTimeout) {
		t.Fatalf("close over dead link: %v, want ErrTimeout", err)
	}
	c.net.DisableFaults()

	// The same site reopens: the CSS probes the recorded holder (site 2
	// itself); the probing open's own in-flight record is excluded, the
	// stale lock is reclaimed and the SS serving state revoked.
	g, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatalf("reopen after lost close: %v", err)
	}
	if err := g.WriteAll([]byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	if got := readFile(t, c.kernels[2], "/f"); string(got) != "v2" {
		t.Fatalf("after reclaim read %q, want v2", got)
	}
}
