package fs

// Lease/intent layer: collapse the per-open CSS round trip.
//
// LOCUS routes every open and close through the CSS (§2.3.3), which the
// pinned protocol costs make explicit: 4 messages per open, 4 per
// close. That is the scaling bottleneck for hot files. Following the
// Lustre intent-lock design, the open request already carries the
// caller's intent (OpenMode), and the CSS reply piggybacks a lease:
//
//   - A read open with no writer present is answered with a *read
//     delegation*: a VV-stamped grant letting the US re-open, read
//     (through its page cache), and close the file locally — zero wire
//     messages — for as long as the delegation is valid. The CSS
//     records the delegate instead of a per-open reader entry, and the
//     polled SS installs no reader serving state (committed pages are
//     served statelessly anyway).
//
//   - A modify open is answered with an exclusive *writer lease*: the
//     close commits as usual but skips the 4-message close protocol,
//     leaving the SS serving state and the CSS writer slot in place so
//     the next local modify open costs zero wire messages.
//
// Revocation is the VV-stamped fs.leaserevoke callback, pushed through
// the ordinary at-most-once RPC wrappers. A modify open recalls all
// read delegations in one *batched* round (one round per writer
// transition, however many delegates exist) and recalls a previous
// writer lease with a single callback whose response carries the
// holder's committed VV — the lease-layer analogue of the close
// protocol's VV piggyback, folded into the lock table before the
// conflicting open proceeds.
//
// Failure handling reuses the existing reclaim machinery: a crashed
// holder loses its lease table with the rest of its volatile state and
// the CSS record self-heals on the next revoke (no lease, no live
// handle → released); partition changes drop all leases and delegate
// records on both sides (CleanupAfterPartitionChange), exactly like
// lock-table records; a propagation notification whose VV dominates a
// delegation's stamp invalidates it.
//
// The layer is strictly opt-in: noLeases defaults to true, and with
// SetLeases(false) every pinned message count of the paper's protocol
// is reproduced exactly (protocolcost_test.go re-pins this).

import (
	"sort"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// usLease is a lease held at the using site: a read delegation or a
// writer lease for one file.
type usLease struct {
	id   storage.FileID
	mode OpenMode // ModeRead: read delegation; ModeModify: writer lease
	// vv is the committed version the lease serves locally: the grant
	// stamp for a delegation, refreshed at each close for a writer
	// lease.
	vv    vclock.VV
	sites []SiteID
	ss    SiteID // storage site serving opens under this lease
	css   SiteID // grantor
	// ino is the committed inode snapshot local re-opens are built from.
	ino *storage.Inode
	// opens counts live local handles opened under the lease.
	opens int
}

// SetLeases enables/disables the lease/intent layer for this kernel.
// Unlike the other ablation switches the layer defaults *off*: the
// paper's protocol (and every message count pinned from it) is the
// lease-free one. Disabling releases all held leases: read delegations
// are returned to the CSS and writer leases perform their deferred
// close, so the cluster drops back to exactly the legacy protocol
// state.
func (k *Kernel) SetLeases(on bool) {
	k.mu.Lock()
	k.noLeases = !on
	var drop []*usLease
	if !on {
		for _, l := range k.leases {
			drop = append(drop, l)
		}
		k.leases = make(map[storage.FileID]*usLease)
	}
	k.mu.Unlock()
	sort.Slice(drop, func(i, j int) bool {
		a, b := drop[i].id, drop[j].id
		if a.FG != b.FG {
			return a.FG < b.FG
		}
		return a.Inode < b.Inode
	})
	for _, l := range drop {
		k.releaseLease(l)
	}
}

func (k *Kernel) leasesEnabled() bool {
	k.mu.Lock()
	on := !k.noLeases
	k.mu.Unlock()
	return on
}

// releaseLease voluntarily returns one lease. A read delegation is
// returned to the CSS with fs.leaserelease; a writer lease performs
// the deferred legacy close (which carries the committed VV to the CSS
// exactly like any close) — unless a live local handle still uses the
// lease, in which case that handle's own close will run the legacy
// protocol now that the lease record is gone.
func (k *Kernel) releaseLease(l *usLease) {
	if l.mode == ModeModify {
		k.mu.Lock()
		live := false
		for f := range k.openFiles {
			if f.id == l.id && f.mode == ModeModify && !f.closed && !f.stale {
				live = true
				break
			}
		}
		k.mu.Unlock()
		if live {
			return
		}
		req := &closeReq{ID: l.id, US: k.site, Mode: ModeModify}
		if l.ss == k.site {
			k.handleClose(k.site, req) // error unchecked by design: best-effort deferred close; partition cleanup reclaims on failure
			return
		}
		k.call(l.ss, mClose, req) //locus:vet-allow uncheckedcall best-effort deferred close; partition cleanup reclaims on failure
		return
	}
	req := &leaseReleaseReq{ID: l.id, US: k.site}
	if l.css == k.site {
		k.handleLeaseRelease(k.site, req) // error unchecked by design: release of a local delegation cannot fail
		return
	}
	k.call(l.css, mLeaseRelease, req) //locus:vet-allow uncheckedcall best-effort return; the CSS record self-heals on its next revoke round
}

// handleLeaseRelease is the CSS side of a voluntary delegation return.
func (k *Kernel) handleLeaseRelease(_ SiteID, p any) (any, error) {
	req := p.(*leaseReleaseReq)
	k.mu.Lock()
	if e := k.cssState[req.ID]; e != nil {
		delete(e.delegates, req.US)
	}
	k.mu.Unlock()
	return nil, nil
}

// handleLeaseRevoke is the holder side of the revocation callback. A
// writer-lease revoke doubles as the lock-table validation probe: a
// live (or in-flight) modify handle refuses the revoke and the
// conflicting open fails busy, exactly as the legacy probeWriterOpen
// path would have refused. Releasing returns the holder's committed
// VV so the CSS can fold the final writer state into its lock table.
func (k *Kernel) handleLeaseRevoke(_ SiteID, p any) (any, error) {
	req := p.(*leaseRevokeReq)
	k.mu.Lock()
	if req.Mode == ModeModify {
		floor := 0
		if req.SelfProbe {
			floor = 1
		}
		if k.inflightOpens[req.ID] > floor {
			k.mu.Unlock()
			return &leaseRevokeResp{}, nil
		}
		for f := range k.openFiles {
			if f.id == req.ID && f.mode == ModeModify && !f.closed && !f.stale {
				k.mu.Unlock()
				return &leaseRevokeResp{}, nil
			}
		}
	}
	l := k.leases[req.ID]
	if l != nil && l.mode == req.Mode {
		delete(k.leases, req.ID)
	} else {
		l = nil
		// Remember the revoke so a grant still in flight to this site
		// is declined when it arrives (the grant and the revoke travel
		// on independent exchanges and may be reordered).
		k.leaseDropped[req.ID] = true
	}
	k.mu.Unlock()

	resp := &leaseRevokeResp{Released: true}
	switch {
	case l != nil:
		resp.VV = l.vv.Copy()
		resp.Sites = append([]SiteID(nil), l.sites...)
	default:
		if r := k.localGetVV(req.ID); r.Has {
			resp.VV = r.VV.Copy()
			resp.Sites = append([]SiteID(nil), r.Sites...)
		}
	}
	return resp, nil
}

// revokeWriterLease recalls the writer lease (or validates a stale
// writer record) at holder on behalf of a conflicting open. It returns
// true when the writer slot may be reclaimed: the holder released the
// lease (its committed VV has been absorbed) and the serving state it
// left at ssHolder has been torn down. An unreachable holder counts as
// still holding, exactly like the legacy probe.
func (k *Kernel) revokeWriterLease(id storage.FileID, e *cssEntry, holder, ssHolder SiteID, selfProbe bool) bool {
	req := &leaseRevokeReq{ID: id, Mode: ModeModify, SelfProbe: selfProbe}
	var resp *leaseRevokeResp
	if holder == k.site {
		r, err := k.handleLeaseRevoke(k.site, req)
		if err != nil {
			return false
		}
		resp = r.(*leaseRevokeResp)
	} else {
		r, err := k.call(holder, mLeaseRevoke, req)
		if err != nil {
			return false
		}
		resp = r.(*leaseRevokeResp)
	}
	if !resp.Released {
		return false
	}
	k.meter().AddLeasesRevoked(1)
	k.mu.Lock()
	if resp.VV != nil && resp.VV.Compare(e.latestVV) == vclock.Dominates {
		e.latestVV = resp.VV.Copy()
		if resp.Sites != nil {
			e.sites = append([]SiteID(nil), resp.Sites...)
		}
	}
	k.mu.Unlock()
	if ssHolder != vclock.NoSite {
		// Tear down the serving state the skipped close left behind.
		rreq := &revokeServeReq{ID: id, US: holder}
		if ssHolder == k.site {
			k.handleRevokeServe(k.site, rreq) // error unchecked by design: best effort: the SS validates the writer itself on the next open
		} else {
			k.call(ssHolder, mRevokeServe, rreq) //locus:vet-allow uncheckedcall best effort: the SS validates the writer itself on the next open
		}
	}
	return true
}

// revokeDelegates runs one batched revoke round over every read
// delegation of e except the opener's own (the opener discarded its
// local record before contacting the CSS, so its entry is just
// dropped). However many delegates exist, one writer transition
// triggers exactly one round. Unreachable delegates are dropped
// without an answer: a partitioned delegate reads stale committed data
// until its own partition-change cleanup fires, which LOCUS partition
// semantics already permit.
func (k *Kernel) revokeDelegates(id storage.FileID, e *cssEntry, except SiteID) {
	k.mu.Lock()
	var targets []SiteID
	for us := range e.delegates {
		if us != except {
			targets = append(targets, us)
		}
	}
	e.delegates = nil
	k.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, us := range targets {
		req := &leaseRevokeReq{ID: id, Mode: ModeRead}
		if us == k.site {
			k.handleLeaseRevoke(k.site, req) // error unchecked by design: read-delegation revokes always release
			continue
		}
		k.call(us, mLeaseRevoke, req) //locus:vet-allow uncheckedcall unreachable delegates are reclaimed by partition cleanup
	}
	k.meter().AddLeasesRevoked(len(targets))
	k.meter().AddBatchedRevoke()
}

// recordLease installs a granted lease at the using site. The grant is
// declined when the layer was switched off while the open was in
// flight, or when a revoke overtook the grant (leaseDropped).
func (k *Kernel) recordLease(id storage.FileID, mode OpenMode, g *leaseGrant, ss, css SiteID, ino *storage.Inode) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.noLeases || k.leaseDropped[id] {
		delete(k.leaseDropped, id)
		return false
	}
	k.leases[id] = &usLease{
		id:    id,
		mode:  mode,
		vv:    g.VV.Copy(),
		sites: append([]SiteID(nil), g.Sites...),
		ss:    ss,
		css:   css,
		ino:   ino.Clone(),
		opens: 1,
	}
	return true
}

// openUnderLease serves an open locally under a held lease, with zero
// wire messages: any mode under this site's writer lease, read mode
// under a read delegation. It returns nil when the open must go to the
// CSS (no lease, layer off, or a delegation being upgraded to modify —
// in which case the delegation is discarded first, since the CSS will
// drop its record when the modify open arrives).
func (k *Kernel) openUnderLease(id storage.FileID, mode OpenMode) *File {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.noLeases {
		return nil
	}
	l := k.leases[id]
	if l == nil {
		return nil
	}
	if l.mode == ModeRead && mode == ModeModify {
		// Upgrade: the delegation cannot serve a writer. Drop it; the
		// CSS drops its own record as part of granting the writer.
		delete(k.leases, id)
		return nil
	}
	if mode != ModeRead && mode != ModeModify {
		return nil // internal opens take the unsynchronized path
	}
	if mode == ModeModify && l.mode != ModeModify {
		return nil
	}
	f := &File{
		k: k, id: id, mode: mode, us: k.site, ss: l.ss, css: l.css,
		ino:   l.ino.Clone(),
		dirty: make(map[storage.PageNo]bool),
	}
	if mode == ModeModify {
		f.leased = true
	} else {
		f.delegated = true
	}
	l.opens++
	k.registerOpenLocked(f)
	return f
}

// closeUnderLease finishes the close of a handle that was opened under
// a lease (delegated reader or leased writer) with zero wire messages.
// It reports false when the lease is gone — revoked or released while
// the handle was open — and the caller must fall back to the legacy
// close protocol so the serving state is actually torn down.
func (k *Kernel) closeUnderLease(f *File) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	l := k.leases[f.id]
	if f.delegated {
		// A delegated reader holds no serving state and no CSS lock
		// entry: its close is pure local bookkeeping even if the lease
		// was revoked while it read its frozen snapshot.
		if l != nil && l.opens > 0 {
			l.opens--
		}
		return true
	}
	if l == nil || l.mode != ModeModify {
		return false
	}
	if l.opens > 0 {
		l.opens--
	}
	// Refresh the snapshot the next local open is built from: the
	// handle committed before closing, so f.ino carries the newest
	// committed version.
	l.ino = f.ino.Clone()
	l.vv = f.ino.VV.Copy()
	return true
}

// dropLeaseIfStale discards a read delegation whose stamp a newer
// committed version has overtaken (propagation notifications carry the
// new VV). Writer leases are not dropped here: the writer itself is
// the source of new versions.
func (k *Kernel) dropLeaseIfStale(id storage.FileID, vv vclock.VV) {
	k.mu.Lock()
	if l := k.leases[id]; l != nil && l.mode == ModeRead && vv.Compare(l.vv) == vclock.Dominates {
		delete(k.leases, id)
	}
	k.mu.Unlock()
}

// Leases reports the files this kernel currently holds leases for
// (fsck and tests).
func (k *Kernel) Leases() map[storage.FileID]OpenMode {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[storage.FileID]OpenMode, len(k.leases))
	for id, l := range k.leases {
		out[id] = l.mode
	}
	return out
}

// Delegates reports the read delegations this kernel has granted as
// CSS, per file (fsck and tests).
func (k *Kernel) Delegates() map[storage.FileID][]SiteID {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[storage.FileID][]SiteID)
	for id, e := range k.cssState {
		if len(e.delegates) == 0 {
			continue
		}
		sites := make([]SiteID, 0, len(e.delegates))
		for us := range e.delegates {
			sites = append(sites, us)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		out[id] = sites
	}
	return out
}
