package fs_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/fs"
	"repro/internal/storage"
)

func TestConcurrentWritersDifferentFilesAcrossSites(t *testing.T) {
	c := newCluster(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			k := c.kernels[fs.SiteID(1+w%4)]
			path := fmt.Sprintf("/file-%02d", w)
			f, err := k.Create(cred(), path, storage.TypeRegular, 0644)
			if err != nil {
				errs <- fmt.Errorf("%s create: %w", path, err)
				return
			}
			for i := 0; i < 5; i++ {
				if err := f.WriteAll([]byte(fmt.Sprintf("%s rev %d", path, i))); err != nil {
					errs <- err
					return
				}
				if err := f.Commit(); err != nil {
					errs <- err
					return
				}
			}
			if err := f.Close(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	c.settle(t)
	for w := 0; w < 16; w++ {
		got := readFile(t, c.kernels[fs.SiteID(1+(w+2)%4)], fmt.Sprintf("/file-%02d", w))
		want := fmt.Sprintf("/file-%02d rev 4", w)
		if string(got) != want {
			t.Errorf("file %d: %q want %q", w, got, want)
		}
	}
}

func TestConcurrentReadersDuringModify(t *testing.T) {
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("committed-v1"))
	c.settle(t)

	w, err := c.kernels[1].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll([]byte("uncommitted")); err != nil {
		t.Fatal(err)
	}
	// Many concurrent readers across sites must all see committed data.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := c.kernels[fs.SiteID(1+i%3)]
			f, err := k.Open(cred(), "/f", fs.ModeRead)
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
				return
			}
			defer f.Close() //nolint:errcheck
			d, err := f.ReadAll()
			if err != nil || string(d) != "committed-v1" {
				t.Errorf("reader %d saw %q, %v", i, d, err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil { // commits "uncommitted"
		t.Fatal(err)
	}
}

func TestNestedMounts(t *testing.T) {
	packs := func(s fs.SiteID) []fs.PackDesc {
		return []fs.PackDesc{{Site: s, Lo: 1, Hi: 1000}}
	}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{
		{FG: 1, MountPath: "/", Packs: packs(1)},
		{FG: 2, MountPath: "/a", Packs: packs(2)},
		{FG: 3, MountPath: "/a/b", Packs: packs(3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newClusterCfg(t, cfg)
	writeFile(t, c.kernels[1], "/a/b/deep", []byte("nested"))
	c.settle(t)
	r, err := c.kernels[3].Resolve(cred(), "/a/b/deep")
	if err != nil {
		t.Fatal(err)
	}
	if r.ID.FG != 3 {
		t.Fatalf("deep file in fg %d, want 3", r.ID.FG)
	}
	if got := readFile(t, c.kernels[2], "/a/b/deep"); string(got) != "nested" {
		t.Fatalf("read %q", got)
	}
	// The intermediate mounted fg works too.
	writeFile(t, c.kernels[1], "/a/mid", []byte("m"))
	r, err = c.kernels[1].Resolve(cred(), "/a/mid")
	if err != nil || r.ID.FG != 2 {
		t.Fatalf("mid: %+v %v", r, err)
	}
}

func TestRenameDirectoryKeepsSubtree(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	if err := k.Mkdir(cred(), "/old", 0755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, k, "/old/child", []byte("x"))
	if err := k.Rename(cred(), "/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, k, "/new/child"); string(got) != "x" {
		t.Fatalf("read %q", got)
	}
	if _, err := k.Stat(cred(), "/old"); !errors.Is(err, fs.ErrNotFound) {
		t.Fatalf("old name: %v", err)
	}
	c.settle(t)
	if got := readFile(t, c.kernels[2], "/new/child"); string(got) != "x" {
		t.Fatalf("site 2 read %q", got)
	}
}

func TestRenameOntoExistingNameFails(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	writeFile(t, k, "/a", []byte("a"))
	writeFile(t, k, "/b", []byte("b"))
	if err := k.Rename(cred(), "/a", "/b"); !errors.Is(err, fs.ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	// Nothing was damaged.
	if got := readFile(t, k, "/b"); string(got) != "b" {
		t.Fatalf("b = %q", got)
	}
}

func TestInodeExhaustion(t *testing.T) {
	packs := []fs.PackDesc{{Site: 1, Lo: 1, Hi: 5}}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{{FG: 1, MountPath: "/", Packs: packs}})
	if err != nil {
		t.Fatal(err)
	}
	c := newClusterCfg(t, cfg)
	k := c.kernels[1]
	// Root uses inode 1; four remain.
	made := 0
	for i := 0; i < 10; i++ {
		f, err := k.Create(cred(), fmt.Sprintf("/f%d", i), storage.TypeRegular, 0644)
		if err != nil {
			if !errors.Is(err, storage.ErrInodeSpace) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		made++
	}
	if made != 4 {
		t.Fatalf("created %d files before exhaustion, want 4", made)
	}
	// Unlink + GC frees a slot.
	if err := k.Unlink(cred(), "/f0"); err != nil {
		t.Fatal(err)
	}
	if n := k.CollectGarbage(); n != 1 {
		t.Fatalf("gc = %d", n)
	}
	f, err := k.Create(cred(), "/reborn", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatalf("create after gc: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHiddenDirNestedUnderHidden(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	if err := k.MkHidden(cred(), "/cmd", 0755); err != nil {
		t.Fatal(err)
	}
	// Each context entry is itself a directory containing a binary.
	if err := k.Mkdir(cred(), "/cmd@@/vax", 0755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, k, "/cmd@@/vax/run", []byte("vax binary"))
	vax := &fs.Cred{User: "u", HiddenCtx: []string{"vax"}}
	// "/cmd/run" expands through the hidden directory to /cmd@@/vax/run.
	f, err := k.Open(vax, "/cmd/run", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := f.ReadAll()
	f.Close() //nolint:errcheck
	if string(d) != "vax binary" {
		t.Fatalf("read %q", d)
	}
}

func TestAbortReleasesShadowPagesNoLeak(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	writeFile(t, k, "/f", bytes.Repeat([]byte{'x'}, storage.PageSize))
	cont := k.Store().Container(1)
	base := cont.PageCount()
	f, err := k.Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := f.WriteAt(bytes.Repeat([]byte{byte('a' + i)}, storage.PageSize), int64(i)*storage.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := cont.PageCount(); got != base {
		t.Fatalf("page count %d after abort, want %d (no shadow leak)", got, base)
	}
}

func TestCloseWithoutCommitDiscardsNothingCommitted(t *testing.T) {
	// Close auto-commits dirty pages; but a handle that wrote then
	// aborted, then closed, leaves the old version.
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/f", []byte("keep"))
	f, err := c.kernels[1].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("discard")); err != nil {
		t.Fatal(err)
	}
	if err := f.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, c.kernels[1], "/f"); string(got) != "keep" {
		t.Fatalf("got %q", got)
	}
}

func TestSecondOpenAfterCommitSeesNewSize(t *testing.T) {
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/f", []byte("12345"))
	c.settle(t)
	f, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAll([]byte("123456789")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := c.kernels[2].Open(cred(), "/f", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close() //nolint:errcheck
	d, err := g.ReadAll()
	if err != nil || len(d) != 9 {
		t.Fatalf("read %d bytes, %v", len(d), err)
	}
}

func TestManyFilesGCAfterMassUnlink(t *testing.T) {
	c := newCluster(t, 3)
	k := c.kernels[1]
	const n = 30
	for i := 0; i < n; i++ {
		writeFile(t, k, fmt.Sprintf("/f%02d", i), []byte("data"))
	}
	c.settle(t)
	for i := 0; i < n; i++ {
		if err := k.Unlink(cred(), fmt.Sprintf("/f%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	c.settle(t)
	total := 0
	for _, kk := range c.kernels {
		total += kk.CollectGarbage()
	}
	if total != n {
		t.Fatalf("gc reclaimed %d, want %d", total, n)
	}
	ents, err := k.ReadDir(cred(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("root still lists %v", ents)
	}
}

func TestGCDeferredWhileSiteUnreachable(t *testing.T) {
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("x"))
	c.settle(t)
	c.partition([]fs.SiteID{1, 2}, []fs.SiteID{3})
	if err := c.kernels[1].Unlink(cred(), "/f"); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	// Site 3 has not seen the delete: GC must hold off.
	if n := c.kernels[1].CollectGarbage(); n != 0 {
		t.Fatalf("gc reclaimed %d with a pack unreachable, want 0", n)
	}
	c.heal()
	c.settle(t)
	// The first GC pass after heal discovers site 3's stale live copy
	// and schedules the tombstone pull; after it lands, collection
	// succeeds.
	if n := c.kernels[1].CollectGarbage(); n != 0 {
		t.Fatalf("first gc after heal = %d, want 0 (nudge only)", n)
	}
	c.settle(t)
	if n := c.kernels[1].CollectGarbage(); n != 1 {
		t.Fatalf("gc after tombstone propagation = %d, want 1", n)
	}
}

func TestStatAndReadDirOnMountPoint(t *testing.T) {
	packs1 := []fs.PackDesc{{Site: 1, Lo: 1, Hi: 1000}}
	packs2 := []fs.PackDesc{{Site: 1, Lo: 1, Hi: 1000}}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{
		{FG: 1, MountPath: "/", Packs: packs1},
		{FG: 2, MountPath: "/mnt", Packs: packs2},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newClusterCfg(t, cfg)
	k := c.kernels[1]
	writeFile(t, k, "/mnt/inside", []byte("z"))
	ino, err := k.Stat(cred(), "/mnt")
	if err != nil {
		t.Fatal(err)
	}
	if ino.Num != fs.RootInode {
		t.Fatalf("mount point stat resolves inode %d, want filegroup root", ino.Num)
	}
	ents, err := k.ReadDir(cred(), "/mnt")
	if err != nil || len(ents) != 1 || ents[0].Name != "inside" {
		t.Fatalf("ReadDir(/mnt) = %v, %v", ents, err)
	}
}

func TestWriteAtSparseThenTruncateGrow(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	f, err := k.Create(cred(), "/s", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("end"), 3*storage.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(storage.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("tail"), storage.PageSize-2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, k, "/s")
	if int64(len(got)) != storage.PageSize+2 {
		t.Fatalf("size %d", len(got))
	}
	if string(got[storage.PageSize-2:]) != "tail" {
		t.Fatalf("tail = %q", got[storage.PageSize-2:])
	}
}

func TestVersionVectorGrowthAcrossSites(t *testing.T) {
	// Updates committed at different storage sites bump different
	// vector entries.
	c := newCluster(t, 3)
	writeFile(t, c.kernels[1], "/f", []byte("v0"))
	c.settle(t)
	for _, s := range []fs.SiteID{2, 3, 1} {
		f, err := c.kernels[s].Open(cred(), "/f", fs.ModeModify)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.WriteAll([]byte(fmt.Sprintf("from %d", s))); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		c.settle(t)
	}
	ino, err := c.kernels[1].Stat(cred(), "/f")
	if err != nil {
		t.Fatal(err)
	}
	// Each site served as SS at least once (US==SS because copies are
	// everywhere after settle).
	for s := fs.SiteID(1); s <= 3; s++ {
		if ino.VV.Get(s) == 0 {
			t.Fatalf("vector %v missing site %d", ino.VV, s)
		}
	}
}

func TestOpenModifyWhileWriterAtAnotherSiteThenRetry(t *testing.T) {
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/f", []byte("x"))
	c.settle(t)
	w1, err := c.kernels[1].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	// 20 denied attempts do not corrupt lock state.
	for i := 0; i < 20; i++ {
		if _, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify); !errors.Is(err, fs.ErrBusy) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if err := w1.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
}
