package fs_test

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"repro/internal/fs"
	"repro/internal/storage"
)

// leaseCluster builds the standard 4-site lease fixture: /pin stored at
// sites 3 and 4 (CSS = 1, site 2 a pure using site), leases enabled
// everywhere after the setup writes so no setup lease lingers.
func leaseCluster(t *testing.T) (*testCluster, storage.FileID) {
	t.Helper()
	c := newCluster(t, 4)
	writeFile(t, c.kernels[3], "/pin", bytes.Repeat([]byte{'p'}, storage.PageSize))
	if err := c.kernels[3].SetReplication(cred(), "/pin", []fs.SiteID{3, 4}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	for _, k := range c.kernels {
		k.SetLeases(true)
	}
	r, err := c.kernels[2].Resolve(cred(), "/pin")
	if err != nil {
		t.Fatal(err)
	}
	return c, r.ID
}

func fsckAll(t *testing.T, c *testCluster, converged bool) []fs.FsckFinding {
	t.Helper()
	var sites []fs.SiteID
	for s := range c.kernels {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	kernels := make([]*fs.Kernel, 0, len(sites))
	for _, s := range sites {
		kernels = append(kernels, c.kernels[s])
	}
	return fs.FsckCluster(kernels, fs.FsckOptions{Converged: converged})
}

func openClose(t *testing.T, k *fs.Kernel, id storage.FileID, mode fs.OpenMode) {
	t.Helper()
	f, err := k.OpenID(id, mode)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseHolderCrashDuringRevoke crashes a delegation holder right
// before the batched revoke round must recall it: the revoke to the
// dead site is dropped without an answer, the writer proceeds, and the
// post-heal cluster converges with no stranded lease records — the
// crash wiped the holder's volatile lease table, and the CSS dropped
// its delegate records as part of the revoke round.
func TestLeaseHolderCrashDuringRevoke(t *testing.T) {
	c, id := leaseCluster(t)

	// Delegations at sites 2 and 4.
	openClose(t, c.kernels[2], id, fs.ModeRead)
	openClose(t, c.kernels[4], id, fs.ModeRead)
	if got := len(c.kernels[1].Delegates()[id]); got != 2 {
		t.Fatalf("CSS records %d delegates, want 2", got)
	}

	// Site 2 dies holding its delegation; the writer's revoke round
	// finds it unreachable and proceeds without an answer.
	c.net.Crash(2)
	w, err := c.kernels[3].OpenID(id, fs.ModeModify)
	if err != nil {
		t.Fatalf("modify open with a crashed delegate: %v", err)
	}
	if _, err := w.WriteAt(bytes.Repeat([]byte{'n'}, storage.PageSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(c.kernels[1].Delegates()[id]); got != 0 {
		t.Fatalf("CSS still records %d delegates after the revoke round", got)
	}

	// Heal: restart the crashed site, run the §5.6 cleanup everywhere,
	// settle propagation.
	c.net.Restart(2)
	all := []fs.SiteID{1, 2, 3, 4}
	for _, s := range all {
		c.kernels[s].CleanupAfterPartitionChange(all)
	}
	c.settle(t)

	if got := readFile(t, c.kernels[2], "/pin"); !bytes.Equal(got, bytes.Repeat([]byte{'n'}, storage.PageSize)) {
		t.Fatalf("post-heal read at the crashed site did not see the writer's commit")
	}
	if findings := fsckAll(t, c, true); len(findings) != 0 {
		t.Fatalf("fsck after holder crash: %v", findings)
	}
}

// TestWriterLeaseUnreachableHolderRefusesThenCleanupReclaims pins the
// two halves of writer-lease failure handling: while the holder is
// merely unreachable (no topology change observed), the revoke gets no
// answer and the conflicting open must fail busy — we cannot tell a
// dead holder from a slow one; once the partition change is processed,
// the §5.6 cleanup reclaims the lease like any lock-table record and
// the open succeeds.
func TestWriterLeaseUnreachableHolderRefusesThenCleanupReclaims(t *testing.T) {
	c, id := leaseCluster(t)

	// Writer lease at site 2 (leased close keeps it).
	w, err := c.kernels[2].OpenID(id, fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt(bytes.Repeat([]byte{'m'}, storage.PageSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if c.kernels[2].Leases()[id] != fs.ModeModify {
		t.Fatal("site 2 holds no writer lease after the leased close")
	}

	c.net.Crash(2)
	// No cleanup has run yet: the holder is unreachable, the revoke is
	// unanswered, and unreachable counts as still holding.
	if _, err := c.kernels[4].OpenID(id, fs.ModeModify); !errors.Is(err, fs.ErrBusy) {
		t.Fatalf("modify open with unreachable lease holder: %v, want ErrBusy", err)
	}

	// The partition protocol observes the change: cleanup reclaims the
	// writer slot for the lost site and the open proceeds.
	for _, s := range []fs.SiteID{1, 3, 4} {
		c.kernels[s].CleanupAfterPartitionChange([]fs.SiteID{1, 3, 4})
	}
	w2, err := c.kernels[4].OpenID(id, fs.ModeModify)
	if err != nil {
		t.Fatalf("modify open after cleanup: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// Heal. The restarted site lost its lease table with the rest of
	// its volatile state; nothing may be stranded.
	c.net.Restart(2)
	all := []fs.SiteID{1, 2, 3, 4}
	for _, s := range all {
		c.kernels[s].CleanupAfterPartitionChange(all)
	}
	c.settle(t)
	if findings := fsckAll(t, c, true); len(findings) != 0 {
		t.Fatalf("fsck after writer-holder crash: %v", findings)
	}
}

// TestPartitionMergeDiscardsLeases pins the conservative merge rule:
// a partition change discards every lease and delegate record on both
// sides (CleanupReport.LeasesReclaimed counts them), and the holder's
// next open renegotiates from the lock table instead of serving a
// possibly stale snapshot.
func TestPartitionMergeDiscardsLeases(t *testing.T) {
	c, id := leaseCluster(t)

	openClose(t, c.kernels[2], id, fs.ModeRead)
	if c.kernels[2].Leases()[id] != fs.ModeRead {
		t.Fatal("site 2 holds no read delegation")
	}

	// Partition site 2 away. Its own cleanup reclaims the held lease;
	// the CSS side discards the delegate record.
	c.partition([]fs.SiteID{1, 3, 4}, []fs.SiteID{2})
	if n := len(c.kernels[2].Leases()); n != 0 {
		t.Fatalf("site 2 still holds %d lease(s) after partition cleanup", n)
	}
	if n := len(c.kernels[1].Delegates()); n != 0 {
		t.Fatalf("CSS still records %d delegate file(s) after partition cleanup", n)
	}

	// Majority side writes a new version while 2 is away.
	w, err := c.kernels[3].OpenID(id, fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt(bytes.Repeat([]byte{'z'}, storage.PageSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	c.heal()
	c.settle(t)
	if got := readFile(t, c.kernels[2], "/pin"); !bytes.Equal(got, bytes.Repeat([]byte{'z'}, storage.PageSize)) {
		t.Fatalf("post-merge read at the partitioned site did not see the new version")
	}
	if findings := fsckAll(t, c, true); len(findings) != 0 {
		t.Fatalf("fsck after merge: %v", findings)
	}
}

// TestFsckFlagsStrandedLease guards the fsck check itself: a lease held
// at a using site with no matching CSS record is the dangerous
// direction (the holder would serve stale reads unsupervised), and the
// deep check must report it.
func TestFsckFlagsStrandedLease(t *testing.T) {
	c, id := leaseCluster(t)

	openClose(t, c.kernels[2], id, fs.ModeRead)

	// Strand it: wipe the CSS record from behind the holder's back (the
	// damage a lost cleanup or a buggy merge would leave).
	c.kernels[1].SetLeases(false)
	c.kernels[1].SetLeases(true)
	// SetLeases only drops the CSS's own held leases; force the
	// delegate record away via a partition change the holder never
	// observes.
	c.kernels[1].CleanupAfterPartitionChange([]fs.SiteID{1, 3, 4})
	c.net.HealAll()

	findings := fsckAll(t, c, false)
	found := false
	for _, f := range findings {
		if f.Kind == "stranded-lease" && f.Site == 2 && f.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("fsck did not flag the stranded lease at site 2: %v", findings)
	}
}
