package fs

import (
	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// The page-carrying responses are served zero-copy from committed
// storage buffers and declare so to the transport.
var (
	_ netsim.ImmutablePayload = (*readResp)(nil)
	_ netsim.ImmutablePayload = (*pullOpenResp)(nil)
	_ netsim.ImmutablePayload = (*pullPagesResp)(nil)
)

// Network method names. The protocols are the paper's specialized
// kernel-to-kernel exchanges (§2.3.3–§2.3.7): no general-purpose RPC
// layers, no extra acknowledgements.
const (
	// mOpen is US → CSS: the OPEN request of Figure 2.
	mOpen = "fs.open"
	// mSSOpen is CSS → SS: "request for storage site" of Figure 2.
	mSSOpen = "fs.ssopen"
	// mRead is US → SS: "request for page x of file y".
	mRead = "fs.read"
	// mWrite is US → SS (one-way): "Write logical page x in file y".
	mWrite = "fs.write"
	// mCommit is US → SS: commit or abort the in-core changes.
	mCommit = "fs.commit"
	// mClose is US → SS: first message of the 4-message close protocol.
	mClose = "fs.close"
	// mSSClose is SS → CSS: second message of the close protocol.
	mSSClose = "fs.ssclose"
	// mCreate is US → CSS: create a new file (placeholder for inode).
	mCreate = "fs.create"
	// mSSCreate is CSS → SS: allocate the inode at the birth pack.
	mSSCreate = "fs.sscreate"
	// mPropNotify is SS → {other packs, CSS} (one-way): a new version
	// exists; bring your copy up to date by pulling.
	mPropNotify = "fs.propnotify"
	// mPullOpen is puller → origin: internal open returning a committed
	// inode snapshot for propagation.
	mPullOpen = "fs.pullopen"
	// mReadPhys is puller → origin: read an immutable physical page of
	// the snapshot (shadow paging makes this torn-write-free).
	mReadPhys = "fs.readphys"
	// mPullPages is puller → origin: read a window of up to PullWindow
	// immutable physical pages of the snapshot in one exchange (the
	// bulk half of pipelined propagation).
	mPullPages = "fs.pullpages"
	// mGetVV asks a pack for its committed version vector of a file
	// (lock-table rebuild, garbage collection, reconciliation).
	mGetVV = "fs.getvv"
	// mSetAttr is US → SS (one-way): descriptive inode change.
	mSetAttr = "fs.setattr"
	// mProbeOpen is CSS/SS → US: lock-table validation (§5.6 applied on
	// demand) — does the using site still hold a live modify handle?
	mProbeOpen = "fs.probeopen"
	// mRevokeServe is CSS → SS: discard serving state for a writer whose
	// handle is gone (its close was lost to the network).
	mRevokeServe = "fs.revokeserve"
	// mLeaseRevoke is CSS → lease holder: a VV-stamped callback demanding
	// a read delegation or writer lease back (the Lustre-style intent
	// lock revocation). The holder answers with its committed version so
	// the CSS can fold the writer's final state into its lock table
	// before granting the conflicting open.
	mLeaseRevoke = "fs.leaserevoke"
	// mLeaseRelease is US → CSS: voluntary return of a lease (ablation
	// switch-off, or a delegate upgrading itself to a writer).
	mLeaseRelease = "fs.leaserelease"
)

type openReq struct {
	ID   storage.FileID
	Mode OpenMode
	US   SiteID
	// USVV is the version vector of the copy stored at the US, if any
	// (the first optimization of §2.3.3: "in its message to the CSS,
	// the US includes the version vector of the copy of the file it
	// stores").
	USVV vclock.VV
}

type openResp struct {
	SS  SiteID
	Ino *storage.Inode
	// ServeReady reports that the serving state already exists at the
	// SS (the CSS installed it, either at itself or via the SS poll);
	// only when the CSS selects the US itself must the US install its
	// own serving state.
	ServeReady bool
	// Delegation, when non-nil, piggybacks a lease on the open reply:
	// the US may re-open, read, and close this file locally without
	// contacting the CSS for as long as the lease is held (read
	// delegation on a read open; exclusive writer lease on a modify
	// open). Only granted when the lease layer is enabled.
	Delegation *leaseGrant
}

type ssOpenReq struct {
	ID   storage.FileID
	Mode OpenMode
	US   SiteID
	// NeedVV is the latest version known to the CSS; the polled site
	// refuses to serve if its copy is older (§2.3.3: "If they do not
	// yet store the latest version, they refuse to act as a storage
	// site").
	NeedVV vclock.VV
	// Delegated marks the poll of a read open that will be answered
	// with a read delegation: the SS returns its inode snapshot but
	// installs no reader serving state, because the delegate reads
	// committed pages (which need none) and closes locally.
	Delegated bool
}

type ssOpenResp struct {
	Ino *storage.Inode
}

// RAMax caps the number of extra pages a storage site piggybacks on one
// read response (the streaming-readahead window limit).
const RAMax = 8

type readReq struct {
	ID   storage.FileID
	Page storage.PageNo
	// Incore asks for the writer's in-core (shadowed) state; only the
	// US holding the modify open sends this.
	Incore bool
	// Readahead asks the SS to piggyback up to this many following
	// logical pages on the response ("readahead is useful in the case
	// of sequential behavior, both at the SS, as well as across the
	// network" — §2.3.3). The US grows it while the access pattern
	// stays sequential and resets it on a seek; the SS clamps it to
	// RAMax and to end of file.
	Readahead int
	// Hint is "a guess as to where the incore inode information is
	// stored at the SS" (§2.3.3); the simulation keys by FileID, so the
	// hint is carried for fidelity but not needed for correctness.
	Hint int
}

type readResp struct {
	Data []byte
	Size int64 // current file size at the SS
	// VV is the committed version vector the page was served from (nil
	// for in-core reads); the US cache tags entries with it.
	VV vclock.VV
	// Extra carries logical pages Page+1, Page+2, ... when readahead
	// was requested; it never extends past end of file.
	Extra [][]byte
}

// WireSize makes page transfers charge realistic byte counts.
func (r *readResp) WireSize() int {
	n := len(r.Data) + 32
	for _, e := range r.Extra {
		n += len(e)
	}
	return n
}

// ImmutablePayload declares the zero-copy handoff contract
// (netsim.ImmutablePayload): Data and Extra alias the storage site's
// committed page buffers, which shadow paging never rewrites and the
// shared-page tracking never recycles, so the US page cache may retain
// them without copying.
func (r *readResp) ImmutablePayload() {}

type writeReq struct {
	ID   storage.FileID
	Page storage.PageNo
	Data []byte
	// Size is the file size after this write as seen by the US.
	Size int64
}

// WireSize charges the page payload.
func (w *writeReq) WireSize() int { return len(w.Data) + 32 }

type commitReq struct {
	ID    storage.FileID
	US    SiteID
	Abort bool
}

type commitResp struct {
	VV vclock.VV
}

type closeReq struct {
	ID   storage.FileID
	US   SiteID
	Mode OpenMode
}

type ssCloseReq struct {
	ID   storage.FileID
	SS   SiteID
	US   SiteID
	Mode OpenMode
	// VV is the SS's committed version vector at close time. Carrying
	// it on the close protocol is what lets the CSS "alter state data
	// which might affect its next synchronization policy decision"
	// (§2.3.3) *before* the writer lock is released — otherwise a
	// racing open could be granted against a stale latest-version
	// record (the reopen race the paper's close-protocol footnote
	// describes).
	VV vclock.VV
	// Sites is the storage-site list at close time (replication may
	// have changed during the open).
	Sites []SiteID
}

type probeOpenReq struct {
	ID storage.FileID
	// SelfProbe marks a validation performed on behalf of a new open
	// from the probed site itself; that open's own in-flight record
	// must not count as evidence that the recorded holder is alive,
	// or a site could never reclaim its own stale lock.
	SelfProbe bool
}

type probeOpenResp struct {
	// Open reports a live or in-flight modify handle for the file at
	// the probed using site.
	Open bool
}

type revokeServeReq struct {
	ID storage.FileID
	// US is the writer whose serving state is to be discarded; a
	// revoke for any other writer is ignored (the state was already
	// reclaimed and possibly re-acquired).
	US SiteID
}

// leaseGrant is the VV-stamped lease piggybacked on an open reply. The
// stamp freezes the version the holder may serve locally: a propagation
// notification carrying a dominating VV invalidates the delegation.
type leaseGrant struct {
	VV    vclock.VV
	Sites []SiteID
}

type leaseRevokeReq struct {
	ID storage.FileID
	// Mode says what is being recalled: ModeRead for a delegate entry
	// in a batched round, ModeModify for the writer lease. A writer
	// revoke doubles as the lock-table validation probe, so a live
	// modify handle at the holder refuses it.
	Mode OpenMode
	// SelfProbe marks a writer revoke performed on behalf of a new
	// open from the probed site itself (see probeOpenReq.SelfProbe).
	SelfProbe bool
}

type leaseRevokeResp struct {
	// Released reports the lease is gone; false means a live modify
	// handle still holds it and the revoking open must fail busy.
	Released bool
	// VV/Sites are the holder's committed version and storage-site list
	// at release time — the writer-lease analogue of the close
	// protocol's VV piggyback, folded into the CSS lock table before
	// the conflicting open proceeds.
	VV    vclock.VV
	Sites []SiteID
}

type leaseReleaseReq struct {
	ID storage.FileID
	US SiteID
}

type createReq struct {
	FG    storage.FilegroupID
	Type  storage.FileType
	US    SiteID
	Owner string
	Mode  uint16
	// NCopies is the effective replication factor (already min'ed with
	// the parent directory's factor by the US).
	NCopies int
	// ParentSites is the parent directory's storage-site list; initial
	// placement is constrained to it (§2.3.7 rule a).
	ParentSites []SiteID
}

type createResp struct {
	ID  storage.FileID
	SS  SiteID
	Ino *storage.Inode
}

type ssCreateReq struct {
	FG    storage.FilegroupID
	Type  storage.FileType
	Owner string
	Mode  uint16
	Sites []SiteID
	US    SiteID
}

type ssCreateResp struct {
	Ino *storage.Inode
}

type propNotify struct {
	ID storage.FileID
	VV vclock.VV
	// Origin is the committing SS holding the new version.
	Origin SiteID
	// Pages lists the modified logical pages, or nil meaning the whole
	// file (§2.3.6: the commit message "can indicate ... which explicit
	// logical pages were modified").
	Pages []storage.PageNo
	// InodeOnly indicates only descriptive information changed
	// (ownership, permissions), not data.
	InodeOnly bool
	// Sites is the file's storage-site list so packs that should hold
	// a new replica know to pull it.
	Sites []SiteID
}

// PullWindow caps the number of physical pages one bulk-pull message
// carries (the fs.pullopen piggyback and each fs.pullpages exchange).
const PullWindow = 8

type pullOpenReq struct {
	ID storage.FileID
	// Window asks the origin to piggyback the first min(Window,
	// PullWindow) data pages of the snapshot on the response — the bulk
	// fast path, which collapses the first pull round trip into the
	// open itself. Zero means inode only: the legacy per-page protocol,
	// internal refreshes, and pull resumes (which must not re-transfer
	// pages already staged at the puller).
	Window int
	// Need optionally restricts the piggybacked window to these logical
	// pages (the commit notification's modified-page list); nil means
	// any data page. Pages the puller turns out to lack beyond this
	// list are fetched by the follow-up windows.
	Need []storage.PageNo
}

type pullOpenResp struct {
	Ino *storage.Inode // committed snapshot, physical page table included
	// FirstPhys/First are the piggybacked first window: First[i] holds
	// the contents of physical page FirstPhys[i] of the snapshot's page
	// table. Empty when no window was requested (or the file is a
	// tombstone).
	FirstPhys []storage.PhysPage
	First     [][]byte
}

// WireSize charges only the piggybacked window (page bytes plus a
// 32-byte per-page descriptor, like readResp); the inode snapshot
// itself rides in the per-message default allowance exactly as it did
// before the bulk protocol, so the windowless exchange stays
// byte-identical to the legacy pin.
func (r *pullOpenResp) WireSize() int {
	n := 0
	for _, p := range r.First {
		n += len(p) + 32
	}
	return n
}

// ImmutablePayload: First aliases the origin's committed page buffers
// (see readResp.ImmutablePayload); pullers copy each page into their
// own container via WritePage.
func (r *pullOpenResp) ImmutablePayload() {}

type readPhysReq struct {
	FG   storage.FilegroupID
	Phys storage.PhysPage
}

type pullPagesReq struct {
	FG storage.FilegroupID
	// Phys names the snapshot physical pages of this window, at most
	// PullWindow of them.
	Phys []storage.PhysPage
}

type pullPagesResp struct {
	// Pages[i] holds the contents of request page Phys[i].
	Pages [][]byte
}

// WireSize makes bulk page windows charge realistic byte counts.
func (r *pullPagesResp) WireSize() int {
	n := 0
	for _, p := range r.Pages {
		n += len(p) + 32
	}
	return n
}

// ImmutablePayload: Pages aliases the origin's committed page buffers
// (see readResp.ImmutablePayload).
func (r *pullPagesResp) ImmutablePayload() {}

// setAttrReq updates descriptive inode information in the writer's
// in-core inode (ownership, permissions, link count, deletion). It is
// the "just inode information ... changed and no data" case of §2.3.6.
type setAttrReq struct {
	ID storage.FileID
	// Nlink, Mode: negative means unchanged.
	Nlink int
	Mode  int32
	// Owner: empty means unchanged.
	Owner string
	// SetDeleted marks the inode as a delete tombstone.
	SetDeleted bool
	// Sites: nil means unchanged (replication factor changes).
	Sites []SiteID
	// Annotations: nil means unchanged; entries merge into the inode's
	// annotation map (device bindings, context labels).
	Annotations map[string]string
}

type getVVReq struct {
	ID storage.FileID
}

type getVVResp struct {
	Has     bool
	VV      vclock.VV
	Deleted bool
	Sites   []SiteID
	Type    storage.FileType
}
