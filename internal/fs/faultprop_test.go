package fs_test

// Propagation under the fault plane: a lost bulk-pull window must
// leave the old coherent committed copy at the puller (§2.3.6 — the
// pull commits via the standard shadow-page mechanism, so a failure
// mid-transfer changes nothing), and the retry must resume the
// transfer without re-sending windows that already landed.

import (
	"bytes"
	"testing"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
)

func TestPullWindowLossLeavesOldCopyThenResumes(t *testing.T) {
	c := newCluster(t, 2)
	const pages = 20
	oldData := bytes.Repeat([]byte{'o'}, pages*storage.PageSize)
	writeFile(t, c.kernels[1], "/f", oldData)
	c.settle(t)
	r, err := c.kernels[1].Resolve(cred(), "/f")
	if err != nil {
		t.Fatal(err)
	}
	pack2 := c.kernels[2].Store().Container(r.ID.FG)
	oldIno, err := pack2.GetInode(r.ID.Inode)
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite every page at site 1; the commit notification queues a
	// 20-page pull at site 2: an 8-page window piggybacked on the open,
	// then fs.pullpages windows of 8 and 4.
	newData := bytes.Repeat([]byte{'n'}, pages*storage.PageSize)
	w, err := c.kernels[1].OpenID(r.ID, fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt(newData, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c.net.Quiesce()

	// Drop the second fs.pullpages window and every at-most-once retry
	// of it (sends 2..9 of the method on the 2→1 link: the retry budget
	// is 8 transmissions), so the pull genuinely fails after the first
	// window landed. Each point keeps its own match counter and a
	// firing point ends that send's scan, so eight Nth=2 points fire on
	// eight consecutive matching sends starting at the second.
	var pts []netsim.FaultPoint
	for i := 0; i < 8; i++ {
		pts = append(pts, netsim.FaultPoint{From: 2, To: 1, Method: "fs.pullpages", Nth: 2, Action: netsim.FaultDropRequest})
	}
	c.net.EnableFaults(netsim.FaultConfig{Seed: 1, Points: pts})
	if n := c.kernels[2].DrainPropagation(); n != 0 {
		t.Fatalf("pull succeeded through a dead window: %d", n)
	}
	c.net.Quiesce()
	c.net.DisableFaults()

	// The interrupted pull must not have touched the committed copy:
	// same version vector, same readable bytes, no conflict.
	ino, err := pack2.GetInode(r.ID.Inode)
	if err != nil {
		t.Fatal(err)
	}
	if !ino.VV.Equal(oldIno.VV) || ino.Conflict {
		t.Fatalf("interrupted pull disturbed the committed copy: vv=%v (want %v) conflict=%v", ino.VV, oldIno.VV, ino.Conflict)
	}
	for i, pp := range ino.Pages {
		data, err := pack2.ReadPage(pp)
		if err != nil {
			t.Fatalf("old copy page %d unreadable after interrupted pull: %v", i, err)
		}
		if !bytes.Equal(data, oldData[i*storage.PageSize:(i+1)*storage.PageSize]) {
			t.Fatalf("old copy page %d corrupted after interrupted pull", i)
		}
	}

	// The retry resumes: the open is re-sent windowless (the 16 pages
	// that already landed are staged locally and must not travel
	// again), and only the missing 4-page window crosses the wire.
	before := c.net.Stats()
	if n := c.kernels[2].DrainPropagation(); n != 1 {
		t.Fatalf("resumed pull drained %d files, want 1: %s", n, c.kernels[2].DebugPendingPropagations())
	}
	c.net.Quiesce()
	d := c.net.Stats().Sub(before)
	if d.ByMethod["fs.pullopen"] != 2 || d.ByMethod["fs.pullpages"] != 2 || d.ByMethod["fs.readphys"] != 0 {
		t.Fatalf("resume traffic = %v, want exactly one pullopen and one pullpages exchange", d.ByMethod)
	}
	if d.PullWindowsSent != 1 || d.PullPagesSent != 4 {
		t.Fatalf("resume sent %d windows / %d pages, want 1 window with the 4 missing pages", d.PullWindowsSent, d.PullPagesSent)
	}

	// The replica is current, and no shadow pages leaked from either
	// the dropped window or the staged resume bookkeeping.
	ino, err = pack2.GetInode(r.ID.Inode)
	if err != nil {
		t.Fatal(err)
	}
	for i, pp := range ino.Pages {
		data, err := pack2.ReadPage(pp)
		if err != nil {
			t.Fatalf("new copy page %d unreadable: %v", i, err)
		}
		if !bytes.Equal(data, newData[i*storage.PageSize:(i+1)*storage.PageSize]) {
			t.Fatalf("new copy page %d has stale content", i)
		}
	}
	var kernels []*fs.Kernel
	for _, k := range c.kernels {
		kernels = append(kernels, k)
	}
	if findings := fs.FsckCluster(kernels, fs.FsckOptions{Converged: true}); len(findings) != 0 {
		t.Fatalf("fsck after resumed pull: %v", findings)
	}
}
