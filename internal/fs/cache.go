package fs

import (
	"container/list"
	"sync"

	"repro/internal/netsim"
	"repro/internal/storage"
	"repro/internal/vclock"
)

// cacheCapPages bounds the per-kernel using-site page cache. The paper
// sizes US buffer management by the kernel buffer pool (§2.2.1); we use
// a fixed page budget (4 MB at 4 KB pages).
const cacheCapPages = 1024

// pageKey names one committed logical page network-wide.
type pageKey struct {
	id storage.FileID
	pn storage.PageNo
}

// pageEnt is one cached committed page. vv is the committed version
// vector of the file when the page was fetched; size the file size at
// that version. prefetched marks pages deposited by streaming readahead
// that have not yet been served (readahead efficiency accounting).
type pageEnt struct {
	key        pageKey
	data       []byte
	size       int64
	vv         vclock.VV
	prefetched bool
}

// pageCache is the per-kernel using-site page cache of committed pages
// (§2.2.1: "network buffer management" at the US is what lets remote
// access approach local cost). It is an LRU keyed by (FileID, PageNo),
// guarded by version vector: a lookup only hits when the cached page's
// committed version reflects at least every update the opening handle
// synchronized on, so a US never serves a page older than the version
// its open synchronized on. Invalidation happens on commit through this
// US, on an incoming commit notification (§2.3.6), and on modify-open.
type pageCache struct {
	mu      sync.Mutex
	enabled bool
	ents    map[pageKey]*list.Element
	lru     *list.List // front = most recently used
	stats   *netsim.Stats
}

func newPageCache(stats *netsim.Stats) *pageCache {
	return &pageCache{
		enabled: true,
		ents:    make(map[pageKey]*list.Element),
		lru:     list.New(),
		stats:   stats,
	}
}

func (pc *pageCache) setEnabled(on bool) {
	pc.mu.Lock()
	pc.enabled = on
	if !on {
		pc.ents = make(map[pageKey]*list.Element)
		pc.lru.Init()
	}
	pc.mu.Unlock()
}

func (pc *pageCache) isEnabled() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.enabled
}

// get returns the cached page when it is present and at least as new as
// needVV, the version the reading handle's open synchronized on.
func (pc *pageCache) get(id storage.FileID, pn storage.PageNo, needVV vclock.VV) ([]byte, int64, bool) {
	pc.mu.Lock()
	el, ok := pc.ents[pageKey{id, pn}]
	if ok {
		e := el.Value.(*pageEnt)
		if e.vv != nil && e.vv.DominatesOrEqual(needVV) {
			pc.lru.MoveToFront(el)
			if e.prefetched {
				e.prefetched = false
				pc.stats.AddReadaheadUsed(1)
			}
			data, size := e.data, e.size
			pc.mu.Unlock()
			pc.stats.AddCacheHit()
			return data, size, true
		}
		// Stale for this handle: a newer version was committed elsewhere
		// and the open synchronized on it. Drop the entry; the fresh
		// fetch will repopulate it.
		pc.removeLocked(el)
		pc.stats.AddCacheInvals(1)
	}
	pc.mu.Unlock()
	pc.stats.AddCacheMiss()
	return nil, 0, false
}

// put deposits a committed page fetched from a storage site (directly
// or via readahead piggyback). vv is the committed version served.
// data is retained without copying: readResp declares
// netsim.ImmutablePayload, so the buffer aliases the SS's committed
// page image, which shadow paging never rewrites and the shared-page
// tracking keeps out of the page pool. Cache entries are therefore
// never released to the pool either — eviction just drops the
// reference.
func (pc *pageCache) put(id storage.FileID, pn storage.PageNo, data []byte, size int64, vv vclock.VV, prefetched bool) {
	if vv == nil {
		return // uncommitted (in-core) data is never cached
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if !pc.enabled {
		return
	}
	key := pageKey{id, pn}
	if el, ok := pc.ents[key]; ok {
		e := el.Value.(*pageEnt)
		e.data, e.size, e.vv, e.prefetched = data, size, vv.Copy(), prefetched
		pc.lru.MoveToFront(el)
		return
	}
	pc.ents[key] = pc.lru.PushFront(&pageEnt{key: key, data: data, size: size, vv: vv.Copy(), prefetched: prefetched})
	for pc.lru.Len() > cacheCapPages {
		pc.removeLocked(pc.lru.Back())
	}
}

// invalidateFile drops every cached page of id, returning the count
// dropped. Called on commit, modify-open, and commit notification so a
// stale read through an existing handle is impossible after the local
// kernel learns of a new version.
func (pc *pageCache) invalidateFile(id storage.FileID) int {
	pc.mu.Lock()
	var drop []*list.Element
	for key, el := range pc.ents { //locus:vet-allow maporder removal set; no order-observable effect
		if key.id == id {
			drop = append(drop, el)
		}
	}
	for _, el := range drop {
		pc.removeLocked(el)
	}
	n := len(drop)
	pc.mu.Unlock()
	if n > 0 {
		pc.stats.AddCacheInvals(n)
	}
	return n
}

// purge empties the cache (site crash: all volatile state is lost).
func (pc *pageCache) purge() {
	pc.mu.Lock()
	pc.ents = make(map[pageKey]*list.Element)
	pc.lru.Init()
	pc.mu.Unlock()
}

// len returns the number of cached pages (tests).
func (pc *pageCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.lru.Len()
}

func (pc *pageCache) removeLocked(el *list.Element) {
	e := el.Value.(*pageEnt)
	pc.lru.Remove(el)
	delete(pc.ents, e.key)
}
