package fs

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// This file is the kernel interface used by the reconciliation layer
// (internal/recon): enumeration of a pack's inodes, raw access to a
// specific pack's copy of a file (normal opens refuse conflicted
// copies; reconciliation must read them), and the privileged commit
// that installs a merged result with an explicitly chosen version
// vector.

const (
	mListInodes   = "fs.listinodes"
	mMarkConflict = "fs.markconflict"
)

// InodeSummary describes one committed inode at one pack.
type InodeSummary struct {
	// Site is the pack site this summary came from (set by the probe
	// helpers; zero when implicit from context).
	Site     SiteID
	Num      storage.InodeNum
	Type     storage.FileType
	VV       vclock.VV
	Size     int64
	Deleted  bool
	Conflict bool
	Nlink    int
	Owner    string
	Sites    []SiteID
}

type listInodesReq struct {
	FG storage.FilegroupID
}

type listInodesResp struct {
	Inodes []InodeSummary
}

type markConflictReq struct {
	ID storage.FileID
}

func (k *Kernel) registerReconHandlers() {
	k.node.Handle(mListInodes, k.handleListInodes)
	k.node.Handle(mMarkConflict, k.handleMarkConflict)
}

// ListLocalInodes enumerates the committed inodes of this site's pack
// for a filegroup.
func (k *Kernel) ListLocalInodes(fg storage.FilegroupID) []InodeSummary {
	c := k.container(fg)
	if c == nil {
		return nil
	}
	var out []InodeSummary
	for _, num := range c.ListInodes() {
		ino, err := c.GetInode(num)
		if err != nil {
			continue
		}
		out = append(out, InodeSummary{
			Num: num, Type: ino.Type, VV: ino.VV, Size: ino.Size,
			Deleted: ino.Deleted, Conflict: ino.Conflict,
			Nlink: ino.Nlink, Owner: ino.Owner,
			Sites: append([]SiteID(nil), ino.Sites...),
		})
	}
	return out
}

func (k *Kernel) handleListInodes(_ SiteID, p any) (any, error) {
	req := p.(*listInodesReq)
	return &listInodesResp{Inodes: k.ListLocalInodes(req.FG)}, nil
}

// ListInodesAt enumerates a (possibly remote) pack's inodes.
func (k *Kernel) ListInodesAt(site SiteID, fg storage.FilegroupID) ([]InodeSummary, error) {
	if site == k.site {
		return k.ListLocalInodes(fg), nil
	}
	resp, err := k.call(site, mListInodes, &listInodesReq{FG: fg})
	if err != nil {
		return nil, err
	}
	return resp.(*listInodesResp).Inodes, nil
}

// FetchCopyFrom reads a specific pack's committed copy of a file — the
// inode and full content — regardless of conflict markings. This is
// the reconciliation read path (normal opens would refuse).
func (k *Kernel) FetchCopyFrom(site SiteID, id storage.FileID) (*storage.Inode, []byte, error) {
	var ino *storage.Inode
	if site == k.site {
		c := k.container(id.FG)
		if c == nil {
			return nil, nil, fmt.Errorf("%w: %v at %d", ErrNotFound, id, site)
		}
		var err error
		ino, err = c.GetInode(id.Inode)
		if err != nil {
			return nil, nil, err
		}
	} else {
		resp, err := k.call(site, mPullOpen, &pullOpenReq{ID: id})
		if err != nil {
			return nil, nil, err
		}
		ino = resp.(*pullOpenResp).Ino
	}
	if ino.Deleted {
		return ino.Clone(), nil, nil
	}
	data := make([]byte, 0, ino.Size)
	for _, pp := range ino.Pages {
		var page []byte
		var owned bool
		if pp == storage.PhysPageNil {
			page = zeroPage
		} else if site == k.site {
			var err error
			page, err = k.container(id.FG).ReadPage(pp)
			if err != nil {
				return nil, nil, err
			}
			owned = true
		} else {
			resp, err := k.call(site, mReadPhys, &readPhysReq{FG: id.FG, Phys: pp})
			if err != nil {
				return nil, nil, err
			}
			page = resp.(*readResp).Data
		}
		data = append(data, page...)
		if owned {
			storage.PutPageBuf(page)
		}
	}
	if int64(len(data)) > ino.Size {
		data = data[:ino.Size]
	}
	return ino.Clone(), data, nil
}

// ReconcileCommit installs a merged version of a file at this site's
// pack with the given inode metadata (including the merged, bumped
// version vector) and content, then notifies the file's other storage
// sites so they pull the reconciled version through the ordinary
// propagation path.
func (k *Kernel) ReconcileCommit(id storage.FileID, ino *storage.Inode, content []byte) error {
	c := k.container(id.FG)
	if c == nil {
		return fmt.Errorf("%w: site %d stores no pack of %d", ErrNoStorageSite, k.site, id.FG)
	}
	newIno := ino.Clone()
	newIno.Num = id.Inode
	newIno.Conflict = false
	newIno.Pages = nil
	if !newIno.Deleted {
		newIno.Size = int64(len(content))
		for off := 0; off < len(content); off += storage.PageSize {
			end := off + storage.PageSize
			if end > len(content) {
				end = len(content)
			}
			pp, err := c.WritePage(content[off:end])
			if err != nil {
				// Pages written by earlier iterations are reachable only
				// through newIno, which is being abandoned: free them or
				// they linger until the next garbage collection.
				c.FreePages(newIno.Pages...)
				return err
			}
			newIno.Pages = append(newIno.Pages, pp)
		}
	} else {
		newIno.Size = 0
	}
	if err := c.CommitInode(newIno); err != nil {
		c.FreePages(newIno.Pages...)
		return err
	}
	k.notifyCommit(id, newIno, nil)
	return nil
}

// MarkConflict marks every reachable copy of a file as being in
// unresolved version conflict, "so normal attempts to access them
// fail" (§4.6). The marking preserves each copy's version vector.
func (k *Kernel) MarkConflict(id storage.FileID, sites []SiteID) {
	for _, s := range sites {
		if s == k.site {
			k.handleMarkConflict(k.site, &markConflictReq{ID: id}) // error unchecked by design: local marking cannot fail usefully
			continue
		}
		if k.inPartition(s) {
			k.cast(s, mMarkConflict, &markConflictReq{ID: id}) //locus:vet-allow uncheckedcall unreachable packs marked at next merge
		}
	}
}

func (k *Kernel) handleMarkConflict(_ SiteID, p any) (any, error) {
	req := p.(*markConflictReq)
	c := k.container(req.ID.FG)
	if c == nil || !c.HasInode(req.ID.Inode) {
		return nil, nil
	}
	ino, err := c.GetInode(req.ID.Inode)
	if err != nil || ino.Conflict {
		return nil, nil
	}
	ino.Conflict = true
	return nil, c.CommitInode(ino)
}

// SchedulePullAt enqueues ordinary propagation pulls of a file at the
// given sites, naming origin as the holder of the version vv. The
// reconciliation layer uses this when version vectors show plain
// staleness rather than conflict.
func (k *Kernel) SchedulePullAt(sites []SiteID, id storage.FileID, vv vclock.VV, origin SiteID) {
	note := &propNotify{ID: id, VV: vv.Copy(), Origin: origin, Sites: sites}
	for _, s := range sites {
		if s == origin {
			continue
		}
		if s == k.site {
			k.applyPropNotify(k.site, note)
		} else if k.inPartition(s) {
			k.cast(s, mPropNotify, note) //locus:vet-allow uncheckedcall unreachable sites retry at next merge
		}
	}
}

// ProbeSummary polls the filegroup's packs in this partition for their
// copies of a file and returns the dominant copy's summary (merging is
// the caller's business if vectors conflict; the second return reports
// whether any pair was concurrent).
func (k *Kernel) ProbeSummary(id storage.FileID) (best InodeSummary, conflict, found bool) {
	for _, s := range k.packSitesInPartition(id.FG) {
		var r getVVResp
		if s == k.site {
			r = k.localGetVV(id)
		} else {
			resp, err := k.call(s, mGetVV, &getVVReq{ID: id})
			if err != nil {
				continue
			}
			r = *resp.(*getVVResp)
		}
		if !r.Has {
			continue
		}
		cur := InodeSummary{Site: s, Num: id.Inode, Type: r.Type, VV: r.VV, Deleted: r.Deleted, Sites: r.Sites}
		switch {
		case !found:
			best, found = cur, true
		default:
			switch cur.VV.Compare(best.VV) {
			case vclock.Dominates:
				best = cur
			case vclock.Concurrent:
				conflict = true
			}
		}
	}
	return best, conflict, found
}

// ProbeAll returns every reachable pack's copy summary for a file,
// keyed by site.
func (k *Kernel) ProbeAll(id storage.FileID) map[SiteID]InodeSummary {
	out := make(map[SiteID]InodeSummary)
	for _, s := range k.packSitesInPartition(id.FG) {
		var r getVVResp
		if s == k.site {
			r = k.localGetVV(id)
		} else {
			resp, err := k.call(s, mGetVV, &getVVReq{ID: id})
			if err != nil {
				continue
			}
			r = *resp.(*getVVResp)
		}
		if r.Has {
			out[s] = InodeSummary{Site: s, Num: id.Inode, Type: r.Type, VV: r.VV, Deleted: r.Deleted, Sites: r.Sites}
		}
	}
	return out
}

// ClearConflict removes the conflict marking from the local copy (used
// by the manual resolution tool after the user picks a version).
func (k *Kernel) ClearConflict(id storage.FileID) error {
	c := k.container(id.FG)
	if c == nil {
		return fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	ino, err := c.GetInode(id.Inode)
	if err != nil {
		return err
	}
	ino.Conflict = false
	return c.CommitInode(ino)
}
