package fs_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fs"
	"repro/internal/storage"
)

func TestSplitPathNormalization(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	writeFile(t, k, "/f", []byte("x"))
	// Redundant slashes and "." components are ignored.
	for _, p := range []string{"/f", "//f", "/./f", "/f/", "///f//"} {
		if _, err := k.Resolve(cred(), p); err != nil {
			t.Errorf("Resolve(%q): %v", p, err)
		}
	}
	// ".." is rejected (no parent traversal in the 1983 system either).
	if _, err := k.Resolve(cred(), "/a/../f"); !errors.Is(err, fs.ErrBadName) {
		t.Errorf("dotdot: %v", err)
	}
	// Root itself resolves.
	r, err := k.Resolve(cred(), "/")
	if err != nil || r.Type != storage.TypeDirectory {
		t.Errorf("root: %+v %v", r, err)
	}
}

func TestLongPathComponentsAndNames(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	long := strings.Repeat("x", 200)
	writeFile(t, k, "/"+long, []byte("long"))
	if got := readFile(t, k, "/"+long); string(got) != "long" {
		t.Fatalf("long name read %q", got)
	}
	// Deep nesting.
	path := ""
	for i := 0; i < 12; i++ {
		path += "/d"
		if err := k.Mkdir(cred(), path, 0755); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(t, k, path+"/leaf", []byte("deep"))
	if got := readFile(t, k, path+"/leaf"); string(got) != "deep" {
		t.Fatalf("deep read %q", got)
	}
}

func TestCSSIndependencePerFilegroup(t *testing.T) {
	// Each filegroup has its own CSS: the lowest pack site in the
	// partition for that filegroup.
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{
		{FG: 1, MountPath: "/", Packs: []fs.PackDesc{{Site: 1, Lo: 1, Hi: 1000}, {Site: 2, Lo: 1001, Hi: 2000}}},
		{FG: 2, MountPath: "/b", Packs: []fs.PackDesc{{Site: 3, Lo: 1, Hi: 1000}, {Site: 2, Lo: 1001, Hi: 2000}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newClusterCfg(t, cfg)
	c.settle(t) // let the formatted mount-point entries replicate
	k := c.kernels[2]
	if css, _ := k.CSSOf(1); css != 1 {
		t.Fatalf("CSS(fg1) = %d", css)
	}
	if css, _ := k.CSSOf(2); css != 2 {
		t.Fatalf("CSS(fg2) = %d", css)
	}
	// Cut site 1 off: fg1's CSS migrates to 2; fg2 unchanged.
	c.partition([]fs.SiteID{2, 3}, []fs.SiteID{1})
	if css, _ := k.CSSOf(1); css != 2 {
		t.Fatalf("CSS(fg1) after partition = %d", css)
	}
	if css, _ := k.CSSOf(2); css != 2 {
		t.Fatalf("CSS(fg2) after partition = %d", css)
	}
	// fg2 files stay fully usable in the majority partition.
	writeFile(t, k, "/b/ok", []byte("usable"))
	c.settle(t)
	if got := readFile(t, c.kernels[3], "/b/ok"); string(got) != "usable" {
		t.Fatalf("read %q", got)
	}
}

func TestResolveParentOfRootRejected(t *testing.T) {
	c := newCluster(t, 1)
	if _, _, _, err := c.kernels[1].ResolveParent(cred(), "/"); !errors.Is(err, fs.ErrBadName) {
		t.Fatalf("err = %v", err)
	}
	if err := c.kernels[1].Unlink(cred(), "/"); !errors.Is(err, fs.ErrBadName) {
		t.Fatalf("unlink root: %v", err)
	}
}

func TestInvalidCreateNames(t *testing.T) {
	c := newCluster(t, 1)
	k := c.kernels[1]
	for _, p := range []string{"relative", "/..", "/."} {
		if _, err := k.Create(cred(), p, storage.TypeRegular, 0644); !errors.Is(err, fs.ErrBadName) {
			t.Errorf("Create(%q) = %v", p, err)
		}
	}
}
