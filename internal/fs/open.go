package fs

import (
	"errors"
	"fmt"

	"repro/internal/storage"
	"repro/internal/vclock"
)

// registerHandlers binds this kernel's network protocol handlers.
func (k *Kernel) registerHandlers() {
	k.node.Handle(mOpen, k.handleOpen)
	k.node.Handle(mSSOpen, k.handleSSOpen)
	k.node.Handle(mRead, k.handleRead)
	k.node.Handle(mWrite, k.handleWrite)
	k.node.Handle(mCommit, k.handleCommit)
	k.node.Handle(mClose, k.handleClose)
	k.node.Handle(mSSClose, k.handleSSClose)
	k.node.Handle(mCreate, k.handleCreate)
	k.node.Handle(mSSCreate, k.handleSSCreate)
	k.node.Handle(mPropNotify, k.handlePropNotify)
	k.node.Handle(mPullOpen, k.handlePullOpen)
	k.node.Handle(mReadPhys, k.handleReadPhys)
	k.node.Handle(mPullPages, k.handlePullPages)
	k.node.Handle(mGetVV, k.handleGetVV)
	k.node.Handle(mSetAttr, k.handleSetAttr)
	k.node.Handle(mResolveShip, k.handleResolveShip)
	k.node.Handle(mProbeOpen, k.handleProbeOpen)
	k.node.Handle(mRevokeServe, k.handleRevokeServe)
	k.node.Handle(mLeaseRevoke, k.handleLeaseRevoke)
	k.node.Handle(mLeaseRelease, k.handleLeaseRelease)
	k.registerReconHandlers()
}

// localGetVV reads the local committed copy's version information.
func (k *Kernel) localGetVV(id storage.FileID) getVVResp {
	c := k.container(id.FG)
	if c == nil || !c.HasInode(id.Inode) {
		return getVVResp{}
	}
	ino, err := c.GetInode(id.Inode)
	if err != nil {
		return getVVResp{}
	}
	return getVVResp{Has: true, VV: ino.VV, Deleted: ino.Deleted, Sites: ino.Sites, Type: ino.Type}
}

func (k *Kernel) handleGetVV(_ SiteID, p any) (any, error) {
	req := p.(*getVVReq)
	r := k.localGetVV(req.ID)
	return &r, nil
}

// buildCSSEntry constructs the CSS lock-table entry for a file by
// polling the filegroup's packs in this partition for their committed
// version vectors — the "reconstruct the lock table ... from the
// information remaining in the partition" step of §5.6, run lazily on
// first use. Returns ErrConflict if the partition holds mutually
// inconsistent copies (reconciliation must run first).
func (k *Kernel) buildCSSEntry(id storage.FileID) (*cssEntry, error) {
	var latest vclock.VV
	var sites []SiteID
	found := false
	deleted := false
	for _, s := range k.packSitesInPartition(id.FG) {
		var r getVVResp
		if s == k.site {
			r = k.localGetVV(id)
		} else {
			resp, err := k.call(s, mGetVV, &getVVReq{ID: id})
			if err != nil {
				continue // unreachable pack: proceed with what we have
			}
			r = *resp.(*getVVResp)
		}
		if !r.Has {
			continue
		}
		switch {
		case !found:
			latest, sites, deleted, found = r.VV.Copy(), r.Sites, r.Deleted, true
		default:
			switch r.VV.Compare(latest) {
			case vclock.Dominates:
				latest, sites, deleted = r.VV.Copy(), r.Sites, r.Deleted
			case vclock.Concurrent:
				return nil, fmt.Errorf("%w: %v", ErrConflict, id)
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, id)
	}
	if deleted {
		return nil, fmt.Errorf("%w: %v", ErrDeleted, id)
	}
	e := &cssEntry{
		id:       id,
		readers:  make(map[SiteID]int),
		readerSS: make(map[SiteID]SiteID),
		latestVV: latest,
		sites:    sites,
	}
	k.mu.Lock()
	if old := k.cssState[id]; old != nil {
		e = old // raced with a concurrent build; keep the first
	} else {
		k.cssState[id] = e
	}
	k.mu.Unlock()
	return e, nil
}

func (k *Kernel) cssEntryFor(id storage.FileID) (*cssEntry, error) {
	k.mu.Lock()
	e := k.cssState[id]
	k.mu.Unlock()
	if e != nil {
		return e, nil
	}
	return k.buildCSSEntry(id)
}

// handleOpen is the CSS function of the open protocol (Figure 2). It
// enforces the synchronization policy (a single simultaneous open for
// modification), selects a storage site holding the latest version,
// and records the open in the lock table.
func (k *Kernel) handleOpen(_ SiteID, p any) (any, error) {
	req := p.(*openReq)
	e, err := k.cssEntryFor(req.ID)
	if err != nil {
		return nil, err
	}

	// Policy check + writer reservation.
	k.mu.Lock()
	leasesOn := !k.noLeases
	if req.Mode == ModeModify {
		if holder := e.writerUS; holder != vclock.NoSite {
			ssHolder := e.writerSS
			k.mu.Unlock()
			// Before refusing, validate the record. Under leases the
			// revocation callback recalls the holder's writer lease (or
			// proves a live handle); without them, a close lost to the
			// network (with no partition change to trigger §5.6 cleanup)
			// strands the writer slot forever otherwise.
			var reclaimed bool
			if leasesOn {
				reclaimed = k.revokeWriterLease(req.ID, e, holder, ssHolder, holder == req.US)
			} else {
				reclaimed = k.writerVanished(req.ID, holder, ssHolder, holder == req.US)
			}
			if !reclaimed {
				return nil, fmt.Errorf("%w: %v open for modification at site %d", ErrBusy, req.ID, holder)
			}
			k.mu.Lock()
			if e.writerUS == holder {
				e.writerUS = vclock.NoSite
				e.writerSS = vclock.NoSite
			}
			if h := e.writerUS; h != vclock.NoSite {
				// Someone else claimed the slot while we validated.
				k.mu.Unlock()
				return nil, fmt.Errorf("%w: %v open for modification at site %d", ErrBusy, req.ID, h)
			}
		}
		e.writerUS = req.US
	}
	// Under leases a recorded writer hides the newest committed version
	// from the lock table (its close was skipped), and its presence
	// blocks read delegations. A read open first tries to recall the
	// writer lease — an idle writer releases in one revoke exchange and
	// the read proceeds with full delegation economics. A refused
	// revoke means the writer handle is genuinely live: the read is
	// then served through the writer's SS (the commit point), where the
	// §2.3.3 shortcuts are unsafe and no delegation is granted.
	pollFirst := vclock.NoSite
	if leasesOn && req.Mode != ModeModify && e.writerUS != vclock.NoSite {
		holder, ssHolder := e.writerUS, e.writerSS
		if req.Mode == ModeRead && holder != req.US {
			k.mu.Unlock()
			revoked := k.revokeWriterLease(req.ID, e, holder, ssHolder, false)
			k.mu.Lock()
			if revoked && e.writerUS == holder {
				e.writerUS = vclock.NoSite
				e.writerSS = vclock.NoSite
			}
		}
		if e.writerUS != vclock.NoSite {
			pollFirst = e.writerSS
		}
	}
	latest := e.latestVV.Copy()
	sites := append([]SiteID(nil), e.sites...)
	k.mu.Unlock()

	if req.Mode == ModeModify && leasesOn {
		// Recall every outstanding read delegation in one batched round
		// before the writer proceeds (the opener's own record, if any,
		// is dropped without a callback).
		k.revokeDelegates(req.ID, e, req.US)
	}
	// wantDelegate: answer this read open with a read delegation
	// piggybacked on the reply (zero extra messages).
	wantDelegate := leasesOn && req.Mode == ModeRead && pollFirst == vclock.NoSite

	rollback := func() {
		if req.Mode == ModeModify {
			k.mu.Lock()
			if e.writerUS == req.US {
				e.writerUS = vclock.NoSite
				e.writerSS = vclock.NoSite
			}
			k.mu.Unlock()
		}
	}

	// register records the open in the lock table and returns the lease
	// to piggyback on the reply, if any. The delegation decision is
	// re-checked under the lock: if a writer claimed the slot while
	// this open was being served, the US is recorded as a plain reader
	// and no lease is granted.
	register := func(ss SiteID) *leaseGrant {
		if req.Mode == ModeInternal {
			return nil // unsynchronized: no lock-table record
		}
		k.mu.Lock()
		defer k.mu.Unlock()
		if req.Mode == ModeModify {
			e.writerSS = ss
			if !leasesOn {
				return nil
			}
			k.meter().AddLeaseGranted()
			return &leaseGrant{VV: e.latestVV.Copy(), Sites: append([]SiteID(nil), e.sites...)}
		}
		if wantDelegate && e.writerUS == vclock.NoSite {
			if e.delegates == nil {
				e.delegates = make(map[SiteID]vclock.VV)
			}
			e.delegates[req.US] = e.latestVV.Copy()
			k.meter().AddLeaseGranted()
			return &leaseGrant{VV: e.latestVV.Copy(), Sites: append([]SiteID(nil), e.sites...)}
		}
		e.readers[req.US]++
		e.readerSS[req.US] = ss
		return nil
	}

	k.mu.Lock()
	noOpt := k.noOpenOpt
	k.mu.Unlock()

	// Optimization 1 (§2.3.3): the US's own copy is the latest — tell
	// it to serve itself; no storage-site message needed.
	if !noOpt && pollFirst == vclock.NoSite && req.USVV != nil && req.USVV.DominatesOrEqual(latest) && containsSite(sites, req.US) {
		return &openResp{SS: req.US, Delegation: register(req.US)}, nil
	}

	// Optimization 2: the CSS itself stores the latest version.
	if r := k.localGetVV(req.ID); !noOpt && pollFirst == vclock.NoSite && r.Has && !r.Deleted && r.VV.DominatesOrEqual(latest) {
		// A delegated read installs no serving state: committed pages
		// are served statelessly and the delegate closes locally.
		if !wantDelegate {
			if err := k.setupServe(req.ID, req.Mode, req.US); err != nil {
				rollback()
				return nil, err
			}
		}
		ino, err := k.container(req.ID.FG).GetInode(req.ID.Inode)
		if err != nil {
			rollback()
			return nil, err
		}
		return &openResp{SS: k.site, Ino: ino, ServeReady: true, Delegation: register(k.site)}, nil
	}

	// General case: poll potential storage sites (§2.3.3: "The
	// potential sites are polled to see if they will act as storage
	// sites"). A read under a held writer lease polls the writer's SS
	// first — the commit point holds the newest committed version.
	order := sites
	if pollFirst != vclock.NoSite {
		order = append([]SiteID{pollFirst}, sites...)
	}
	polled := map[SiteID]bool{}
	for _, cand := range order {
		if polled[cand] {
			continue
		}
		polled[cand] = true
		if !noOpt && pollFirst == vclock.NoSite && (cand == k.site || cand == req.US) {
			continue // both already ruled out above
		}
		if !k.inPartition(cand) {
			continue // unreachable
		}
		if cand == k.site {
			// CSS as SS through the local handler (ablation path, or a
			// read forced onto the writer's SS).
			if !wantDelegate {
				if err := k.setupServe(req.ID, req.Mode, req.US); err != nil {
					continue
				}
			}
			ino, err := k.container(req.ID.FG).GetInode(req.ID.Inode)
			if err != nil {
				continue
			}
			return &openResp{SS: k.site, Ino: ino, ServeReady: true, Delegation: register(k.site)}, nil
		}
		resp, err := k.call(cand, mSSOpen, &ssOpenReq{ID: req.ID, Mode: req.Mode, US: req.US, NeedVV: latest, Delegated: wantDelegate})
		if err != nil {
			continue
		}
		r := resp.(*ssOpenResp)
		// Clone at the boundary: the decoded inode aliases the SS's
		// reply (in-memory transport passes pointers), and the US will
		// treat the returned inode as its own in-core copy.
		return &openResp{SS: cand, Ino: r.Ino.Clone(), ServeReady: true, Delegation: register(cand)}, nil
	}
	rollback()
	return nil, fmt.Errorf("%w: %v (latest %v)", ErrNoStorageSite, req.ID, latest)
}

// handleSSOpen is the SS function: verify our copy is current, set up
// serving state, and return the disk inode information.
func (k *Kernel) handleSSOpen(_ SiteID, p any) (any, error) {
	req := p.(*ssOpenReq)
	c := k.container(req.ID.FG)
	if c == nil || !c.HasInode(req.ID.Inode) {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, req.ID)
	}
	ino, err := c.GetInode(req.ID.Inode)
	if err != nil {
		return nil, err
	}
	if !ino.VV.DominatesOrEqual(req.NeedVV) {
		// Our copy is out of date: refuse to act as storage site.
		return nil, fmt.Errorf("%w: site %d stores %v, need %v", ErrNoStorageSite, k.site, ino.VV, req.NeedVV)
	}
	if !req.Delegated {
		// A delegated read installs no reader serving state: committed
		// pages are served statelessly and the delegate closes locally.
		if err := k.setupServe(req.ID, req.Mode, req.US); err != nil {
			return nil, err
		}
	}
	return &ssOpenResp{Ino: ino}, nil
}

// setupServe installs SS-side serving state for an open. Internal
// (unsynchronized) opens take no serving state.
func (k *Kernel) setupServe(id storage.FileID, mode OpenMode, us SiteID) error {
	if mode == ModeInternal {
		return nil
	}
	c := k.container(id.FG)
	if c == nil {
		return fmt.Errorf("%w: site %d stores no pack of filegroup %d", ErrNoStorageSite, k.site, id.FG)
	}
	ino, err := c.GetInode(id.Inode)
	if err != nil {
		return err
	}
	if ino.Deleted {
		return fmt.Errorf("%w: %v", ErrDeleted, id)
	}
	if ino.Conflict {
		return fmt.Errorf("%w: %v", ErrConflict, id)
	}
	k.mu.Lock()
	if mode == ModeModify {
		if sv := k.ssState[id]; sv != nil && sv.writerUS != vclock.NoSite {
			holder := sv.writerUS
			k.mu.Unlock()
			// Validate before refusing (see lockvalid.go): a lost close
			// leaves serving state for a writer that no longer exists.
			if k.probeWriterOpen(id, holder, holder == us) {
				return fmt.Errorf("%w: %v already being modified", ErrBusy, id)
			}
			k.revokeServeLocal(id, holder)
			k.mu.Lock()
		}
	}
	defer k.mu.Unlock()
	sv := k.ssState[id]
	if sv == nil {
		sv = &ssServe{id: id, readers: make(map[SiteID]int)}
		k.ssState[id] = sv
	}
	if mode == ModeModify {
		if sv.writerUS != vclock.NoSite {
			return fmt.Errorf("%w: %v already being modified", ErrBusy, id)
		}
		sv.writerUS = us
		sv.incore = ino.Clone()
		sv.committedPages = pageSet(ino.Pages)
		sv.dirty = make(map[storage.PageNo]bool)
	} else {
		sv.readers[us]++
	}
	return nil
}

func pageSet(pages []storage.PhysPage) map[storage.PhysPage]bool {
	s := make(map[storage.PhysPage]bool, len(pages))
	for _, p := range pages {
		if p != storage.PhysPageNil {
			s[p] = true
		}
	}
	return s
}

func containsSite(ss []SiteID, s SiteID) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// OpenID opens a file by its globally unique low-level name. Most
// callers use Open (pathname) instead; benchmarks and pathname
// searching use OpenID directly.
//
// A failure with ErrNoStorageSite is retried on the simulated clock's
// backoff: under concurrent cross-site updates the CSS's poll can
// momentarily find no usable storage site — the replica holding the
// just-committed version is still busy serving its committing writer,
// and every other replica is one propagation pull away from current —
// and that window closes as soon as the async propagations land. In a
// partition that genuinely holds no current copy the retries burn out
// and the error surfaces as before, just later; retries consume no
// charged simulated cost and send no messages unless they run, so
// settled deterministic runs are unaffected.
func (k *Kernel) OpenID(id storage.FileID, mode OpenMode) (*File, error) {
	clock := k.node.Network().Clock()
	var err error
	for attempt := 0; attempt < 2000; attempt++ {
		var f *File
		f, err = k.openIDOnce(id, mode)
		if err == nil {
			return f, nil
		}
		if !errors.Is(err, ErrNoStorageSite) {
			return nil, err
		}
		clock.Backoff(attempt)
	}
	return nil, err
}

func (k *Kernel) openIDOnce(id storage.FileID, mode OpenMode) (*File, error) {
	// Internal unsynchronized read fast path (§2.3.4): a locally stored
	// directory with no pending propagations is searched without
	// informing the CSS.
	if mode == ModeInternal {
		k.mu.Lock()
		noLocal := k.noLocalSearch
		k.mu.Unlock()
		if !noLocal {
			if f := k.tryLocalInternal(id); f != nil {
				return f, nil
			}
		}
	}
	// Lease fast path: a held writer lease serves any open, a read
	// delegation serves read opens — zero wire messages, no CSS round
	// trip (the point of the lease layer).
	if mode != ModeInternal {
		if f := k.openUnderLease(id, mode); f != nil {
			if mode == ModeModify {
				k.cache.invalidateFile(id)
			}
			return f, nil
		}
	}
	css, err := k.CSSOf(id.FG)
	if err != nil {
		return nil, err
	}
	if mode == ModeModify {
		// Mark the open in flight so a lock-table validation probe racing
		// the CSS's response does not reclaim the grant (lockvalid.go).
		k.mu.Lock()
		k.inflightOpens[id]++
		k.mu.Unlock()
		defer func() {
			k.mu.Lock()
			if k.inflightOpens[id] <= 1 {
				delete(k.inflightOpens, id)
			} else {
				k.inflightOpens[id]--
			}
			k.mu.Unlock()
		}()
	}
	var usvv vclock.VV
	if c := k.container(id.FG); c != nil {
		if ino, err := c.GetInode(id.Inode); err == nil && !ino.Deleted && !ino.Conflict {
			usvv = ino.VV
		}
	}
	resp, err := k.call(css, mOpen, &openReq{ID: id, Mode: mode, US: k.site, USVV: usvv})
	if err != nil {
		return nil, err
	}
	r := resp.(*openResp)
	if mode == ModeModify {
		// The file is about to change through this US; cached committed
		// pages must not survive into the modify session.
		k.cache.invalidateFile(id)
	}
	f := &File{
		k: k, id: id, mode: mode, us: k.site, ss: r.SS, css: css,
		dirty:    make(map[storage.PageNo]bool),
		internal: mode == ModeInternal,
	}
	// A read open answered with a delegation holds no serving state
	// anywhere; don't install any locally either.
	delegatedRead := r.Delegation != nil && mode == ModeRead
	if r.SS == k.site {
		// We are our own storage site. Unless the CSS already installed
		// the serving state (it did when this site is also the CSS and
		// selected itself) or the open is a delegated read, set it up
		// now.
		if !r.ServeReady && !delegatedRead {
			if err := k.setupServe(id, mode, k.site); err != nil {
				k.releaseCSSLock(css, id, mode)
				return nil, err
			}
		}
		ino, err := k.container(id.FG).GetInode(id.Inode)
		if err != nil {
			k.releaseCSSLock(css, id, mode)
			return nil, err
		}
		f.ino = ino
	} else {
		f.ino = r.Ino.Clone()
	}
	if r.Delegation != nil && k.recordLease(id, mode, r.Delegation, r.SS, css, f.ino) {
		if mode == ModeModify {
			f.leased = true
		} else {
			f.delegated = true
		}
	}
	k.mu.Lock()
	k.registerOpenLocked(f)
	k.mu.Unlock()
	return f, nil
}

// releaseCSSLock undoes a CSS open registration after a local failure
// to finish the open (so the lock table does not leak a phantom open).
func (k *Kernel) releaseCSSLock(css SiteID, id storage.FileID, mode OpenMode) {
	if mode == ModeInternal {
		return
	}
	req := &ssCloseReq{ID: id, SS: k.site, US: k.site, Mode: mode}
	if css == k.site {
		k.handleSSClose(k.site, req) // error unchecked by design: best-effort release
		return
	}
	k.call(css, mSSClose, req) //locus:vet-allow uncheckedcall best-effort release
}

// tryLocalInternal returns a zero-message internal handle when the
// local committed copy is safe to use.
func (k *Kernel) tryLocalInternal(id storage.FileID) *File {
	c := k.container(id.FG)
	if c == nil || !c.HasInode(id.Inode) {
		return nil
	}
	k.mu.Lock()
	_, pending := k.pendingProp[id]
	k.mu.Unlock()
	if pending {
		return nil
	}
	ino, err := c.GetInode(id.Inode)
	if err != nil || ino.Deleted || ino.Conflict {
		return nil
	}
	f := &File{
		k: k, id: id, mode: ModeInternal, us: k.site, ss: k.site,
		ino: ino, dirty: make(map[storage.PageNo]bool), internal: true,
	}
	k.mu.Lock()
	k.registerOpenLocked(f)
	k.mu.Unlock()
	return f
}

// handleCreate is the CSS side of file creation (§2.3.7): choose the
// initial storage sites, have the birth pack allocate an inode from its
// private pool, and register the creating US as the writer.
func (k *Kernel) handleCreate(_ SiteID, p any) (any, error) {
	req := p.(*createReq)
	sites, birth, err := k.chooseStorageSites(req)
	if err != nil {
		return nil, err
	}
	var ino *storage.Inode
	screq := &ssCreateReq{FG: req.FG, Type: req.Type, Owner: req.Owner, Mode: req.Mode, Sites: sites, US: req.US}
	if birth == k.site {
		r, err := k.handleSSCreate(k.site, screq)
		if err != nil {
			return nil, err
		}
		ino = r.(*ssCreateResp).Ino
	} else {
		r, err := k.call(birth, mSSCreate, screq)
		if err != nil {
			return nil, err
		}
		ino = r.(*ssCreateResp).Ino
	}
	id := storage.FileID{FG: req.FG, Inode: ino.Num}
	e := &cssEntry{
		id:       id,
		writerUS: req.US,
		writerSS: birth,
		readers:  make(map[SiteID]int),
		readerSS: make(map[SiteID]SiteID),
		latestVV: ino.VV.Copy(),
		sites:    sites,
	}
	k.mu.Lock()
	k.cssState[id] = e
	k.mu.Unlock()
	// Clone at the boundary: ino aliases the birth SS's reply (or its
	// local handler result); the creating US mutates its copy as the
	// in-core inode of the open file.
	return &createResp{ID: id, SS: birth, Ino: ino.Clone()}, nil
}

// chooseStorageSites applies the placement algorithm of §2.3.7:
// (a) every storage site must store the parent directory;
// (b) the creating process's local site is used first if possible;
// (c) then the parent directory's site order, currently inaccessible
// sites chosen last.
func (k *Kernel) chooseStorageSites(req *createReq) (sites []SiteID, birth SiteID, err error) {
	n := req.NCopies
	if n < 1 {
		n = 1
	}
	var order []SiteID
	if containsSite(req.ParentSites, req.US) {
		order = append(order, req.US)
	}
	var unreachable []SiteID
	for _, s := range req.ParentSites {
		if s == req.US {
			continue
		}
		if k.inPartition(s) {
			order = append(order, s)
		} else {
			unreachable = append(unreachable, s)
		}
	}
	order = append(order, unreachable...)
	if len(order) == 0 {
		return nil, 0, fmt.Errorf("%w: no candidate storage sites", ErrNoStorageSite)
	}
	if n > len(order) {
		n = len(order)
	}
	sites = order[:n]
	for _, s := range sites {
		if k.inPartition(s) {
			return sites, s, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: no accessible birth site", ErrNoStorageSite)
}

// handleSSCreate allocates the inode at the birth pack and commits the
// empty file so it is durable before any data is written.
func (k *Kernel) handleSSCreate(_ SiteID, p any) (any, error) {
	req := p.(*ssCreateReq)
	c := k.container(req.FG)
	if c == nil {
		return nil, fmt.Errorf("%w: site %d has no pack of filegroup %d", ErrNoStorageSite, k.site, req.FG)
	}
	num, err := c.AllocInode()
	if err != nil {
		return nil, err
	}
	ino := &storage.Inode{
		Num:   num,
		Type:  req.Type,
		Owner: req.Owner,
		Mode:  req.Mode,
		Nlink: 1,
		Sites: req.Sites,
		VV:    vclock.New().Bump(k.site),
	}
	if err := c.CommitInode(ino); err != nil {
		return nil, err
	}
	id := storage.FileID{FG: req.FG, Inode: num}
	if err := k.setupServe(id, ModeModify, req.US); err != nil {
		return nil, err
	}
	// Announce the birth so the other chosen storage sites replicate
	// the file even if it is never written (an empty directory, say).
	k.notifyCommit(id, ino, nil)
	return &ssCreateResp{Ino: ino.Clone()}, nil
}

// CreateID creates a new file in a filegroup (the caller links it into
// a directory separately). ncopies is the effective replication factor
// and parentSites the parent directory's storage sites.
func (k *Kernel) CreateID(fg storage.FilegroupID, typ storage.FileType, cred *Cred,
	mode uint16, ncopies int, parentSites []SiteID) (*File, error) {
	css, err := k.CSSOf(fg)
	if err != nil {
		return nil, err
	}
	resp, err := k.call(css, mCreate, &createReq{
		FG: fg, Type: typ, US: k.site, Owner: cred.User, Mode: mode,
		NCopies: ncopies, ParentSites: parentSites,
	})
	if err != nil {
		return nil, err
	}
	r := resp.(*createResp)
	f := &File{
		k: k, id: r.ID, mode: ModeModify, us: k.site, ss: r.SS, css: css,
		ino: r.Ino.Clone(), dirty: make(map[storage.PageNo]bool),
	}
	k.mu.Lock()
	k.registerOpenLocked(f)
	k.mu.Unlock()
	return f, nil
}
