package fs

// White-box propagation tests: the pull-open handler sits on the
// in-process transport, where a returned pointer aliases origin state
// unless the handler clones it.

import (
	"bytes"
	"testing"

	"repro/internal/netsim"
	"repro/internal/storage"
)

// bootSolo brings up a one-site cluster for direct handler calls.
func bootSolo(t *testing.T) *Kernel {
	t.Helper()
	nw := netsim.New(netsim.DefaultCosts())
	t.Cleanup(nw.Close)
	cfg, err := NewConfig([]FilegroupDesc{{FG: 1, MountPath: "/",
		Packs: []PackDesc{{Site: 1, Lo: 1, Hi: 1000}}}})
	if err != nil {
		t.Fatal(err)
	}
	k, err := BootSite(nw.AddSite(1), cfg, nw.Meter(), storage.Costs{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Format(map[SiteID]*Kernel{1: k}, cfg); err != nil {
		t.Fatal(err)
	}
	return k
}

// TestHandlePullOpenClonesInode is the regression test for the pull
// handler returning the origin's inode by pointer: a puller rewrites
// the page table of the inode it receives, and without a defensive
// Clone at the handler boundary that rewrite would corrupt the
// origin's committed state through the in-process transport.
func TestHandlePullOpenClonesInode(t *testing.T) {
	k := bootSolo(t)
	cr := DefaultCred("tester")
	f, err := k.Create(cr, "/f", storage.TypeRegular, 0644)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{'x'}, 2*storage.PageSize)
	if _, err := f.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := k.Resolve(cr, "/f")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := k.handlePullOpen(1, &pullOpenReq{ID: r.ID, Window: PullWindow})
	if err != nil {
		t.Fatal(err)
	}
	por := resp.(*pullOpenResp)
	if len(por.First) != 2 || len(por.FirstPhys) != 2 {
		t.Fatalf("piggyback window has %d/%d pages, want 2/2", len(por.First), len(por.FirstPhys))
	}
	// Do what a puller does: rewrite the received inode's page table
	// (and, for good measure, its version vector).
	for i := range por.Ino.Pages {
		por.Ino.Pages[i] = storage.PhysPage(7777 + i)
	}
	por.Ino.VV.Bump(9)
	por.Ino.Size = 1

	c := k.container(r.ID.FG)
	ino, err := c.GetInode(r.ID.Inode)
	if err != nil {
		t.Fatal(err)
	}
	for i, pp := range ino.Pages {
		if pp == storage.PhysPage(7777+i) {
			t.Fatalf("puller-side mutation reached the origin's committed page table: %v", ino.Pages)
		}
	}
	if ino.VV[9] != 0 || ino.Size != int64(len(want)) {
		t.Fatalf("puller-side mutation reached the origin's committed inode: vv=%v size=%d", ino.VV, ino.Size)
	}
	if got := readFileAt(t, k, cr, "/f", len(want)); !bytes.Equal(got, want) {
		t.Fatal("origin content corrupted by puller-side mutation")
	}
}

func readFileAt(t *testing.T, k *Kernel, cr *Cred, path string, n int) []byte {
	t.Helper()
	f, err := k.Open(cr, path, ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf
}
