package fs_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fs"
	"repro/internal/storage"
)

func TestStreamingReadaheadCutsSequentialReadMessages(t *testing.T) {
	c := newCluster(t, 2)
	data := bytes.Repeat([]byte{'s'}, 8*storage.PageSize)
	writeFile(t, c.kernels[1], "/seq", data)
	if err := c.kernels[1].SetReplication(cred(), "/seq", []fs.SiteID{1}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	scan := func(readahead bool) (msgs, reads int64) {
		f, err := c.kernels[2].Open(cred(), "/seq", fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close() //nolint:errcheck
		f.SetReadahead(readahead)
		before := c.net.Stats()
		buf := make([]byte, storage.PageSize)
		for pn := 0; pn < 8; pn++ {
			if _, err := f.ReadAt(buf, int64(pn)*storage.PageSize); err != nil {
				t.Fatal(err)
			}
		}
		d := c.net.Stats().Sub(before)
		return d.Msgs, d.ByMethod["fs.read"]
	}

	// Baseline: no US cache, no readahead — the pure §2.3.3 protocol.
	c.kernels[2].SetPageCache(false)
	plain, _ := scan(false)
	if plain != 16 {
		t.Fatalf("plain sequential scan = %d msgs, want 16 (2/page)", plain)
	}
	c.kernels[2].SetPageCache(true)

	// Streaming readahead: the window doubles on sequential hits
	// (1 extra at page 0, 4 at page 2, and page 7 is the last page), so
	// the 8-page scan takes 3 exchanges = 6 messages.
	ra, raReads := scan(true)
	if ra != 6 || raReads != 6 {
		t.Fatalf("streaming readahead scan = %d msgs (%d fs.read), want 6 (3 exchanges)", ra, raReads)
	}
	if plain < 2*ra {
		t.Fatalf("readahead reduction %d -> %d msgs is under 2x", plain, ra)
	}

	// Second sequential pass through a fresh handle: every page is
	// served from the using-site cache with zero mRead calls.
	warm, warmReads := scan(false)
	if warmReads != 0 || warm != 0 {
		t.Fatalf("warm re-read = %d msgs (%d fs.read), want 0 (all from US cache)", warm, warmReads)
	}

	// Content correctness through the cache + readahead path.
	f, err := c.kernels[2].Open(cred(), "/seq", fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck
	f.SetReadahead(true)
	got, err := f.ReadAll()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("readahead content mismatch (%d vs %d bytes), err=%v", len(got), len(data), err)
	}
}

func TestReadaheadWriterSeesOwnWrites(t *testing.T) {
	c := newCluster(t, 2)
	writeFile(t, c.kernels[1], "/f", bytes.Repeat([]byte{'a'}, 2*storage.PageSize))
	if err := c.kernels[1].SetReplication(cred(), "/f", []fs.SiteID{1}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	w, err := c.kernels[2].Open(cred(), "/f", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close() //nolint:errcheck
	w.SetReadahead(true)
	buf := make([]byte, 4)
	if _, err := w.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteAt([]byte("ZZZZ"), storage.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := w.ReadAt(buf, storage.PageSize); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ZZZZ" {
		t.Fatalf("writer read %q through readahead handle, want ZZZZ", buf)
	}
}

// TestPageCacheInvalidatedByRemoteCommit asserts the single-system-
// image guarantee of the using-site cache: once another US commits a
// new version, a fresh open must see the new data — a stale read from
// the cache is impossible because its entries are version-guarded.
func TestPageCacheInvalidatedByRemoteCommit(t *testing.T) {
	c := newCluster(t, 3)
	oldData := bytes.Repeat([]byte{'1'}, 2*storage.PageSize)
	writeFile(t, c.kernels[1], "/inv", oldData)
	if err := c.kernels[1].SetReplication(cred(), "/inv", []fs.SiteID{1}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	readAll := func() ([]byte, int64) {
		f, err := c.kernels[3].Open(cred(), "/inv", fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close() //nolint:errcheck
		before := c.net.Stats()
		got, err := f.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return got, c.net.Stats().Sub(before).ByMethod["fs.read"]
	}

	// Warm site 3's cache, then prove a re-read is served from it.
	if got, _ := readAll(); !bytes.Equal(got, oldData) {
		t.Fatal("initial read returned wrong data")
	}
	if _, reads := readAll(); reads != 0 {
		t.Fatalf("re-read used %d fs.read messages, want 0 (US cache)", reads)
	}

	// Another US commits a new version.
	newData := bytes.Repeat([]byte{'2'}, 2*storage.PageSize)
	w, err := c.kernels[2].Open(cred(), "/inv", fs.ModeModify)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteAll(newData); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	// Site 3's next open synchronizes on the new version; its cached v1
	// pages are stale and must not be served.
	got, reads := readAll()
	if !bytes.Equal(got, newData) {
		t.Fatalf("stale read after remote commit: got %q... want %q...", got[:8], newData[:8])
	}
	if reads == 0 {
		t.Fatal("new version was not fetched from the SS (cache served stale pages?)")
	}
	// And the refreshed pages are cached for the next reader.
	if _, reads := readAll(); reads != 0 {
		t.Fatalf("re-read of new version used %d fs.read messages, want 0", reads)
	}
}

func TestPathShippingResolvesRemoteTreeInOneExchange(t *testing.T) {
	// A deep tree stored only at site 1; site 2 resolves it.
	packs := []fs.PackDesc{{Site: 1, Lo: 1, Hi: 1000}, {Site: 2, Lo: 1001, Hi: 2000}}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{{FG: 1, MountPath: "/", Packs: packs}})
	if err != nil {
		t.Fatal(err)
	}
	c := newClusterCfg(t, cfg)
	k1, k2 := c.kernels[1], c.kernels[2]
	for _, d := range []string{"/a", "/a/b", "/a/b/c", "/a/b/c/d"} {
		if err := k1.Mkdir(cred(), d, 0755); err != nil {
			t.Fatal(err)
		}
		if err := k1.SetReplication(cred(), d, []fs.SiteID{1}); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(t, k1, "/a/b/c/d/leaf", []byte("deep"))
	if err := k1.SetReplication(cred(), "/a/b/c/d/leaf", []fs.SiteID{1}); err != nil {
		t.Fatal(err)
	}
	if err := k1.SetReplication(cred(), "/", []fs.SiteID{1}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)

	// Baseline: remote walk.
	before := c.net.Stats()
	r1, err := k2.Resolve(cred(), "/a/b/c/d/leaf")
	if err != nil {
		t.Fatal(err)
	}
	plainMsgs := c.net.Stats().Sub(before).Msgs

	// Shipped: CSS (site 1) stores the whole tree, so one exchange
	// resolves everything.
	k2.SetPathShipping(true)
	before = c.net.Stats()
	r2, err := k2.Resolve(cred(), "/a/b/c/d/leaf")
	if err != nil {
		t.Fatal(err)
	}
	shipMsgs := c.net.Stats().Sub(before).Msgs

	if r1.ID != r2.ID || r2.Type != storage.TypeRegular {
		t.Fatalf("shipped resolution differs: %+v vs %+v", r1, r2)
	}
	if shipMsgs != 2 {
		t.Fatalf("shipped resolve = %d msgs, want 2 (one exchange)", shipMsgs)
	}
	if plainMsgs <= shipMsgs {
		t.Fatalf("plain walk (%d msgs) should cost more than shipping (%d)", plainMsgs, shipMsgs)
	}
}

func TestPathShippingMatchesPlainResolutionEverywhere(t *testing.T) {
	// Equivalence check across a mixed tree (local dirs, remote dirs,
	// hidden dirs, mounts).
	packs1 := []fs.PackDesc{{Site: 1, Lo: 1, Hi: 1000}, {Site: 2, Lo: 1001, Hi: 2000}}
	packs2 := []fs.PackDesc{{Site: 2, Lo: 1, Hi: 1000}}
	cfg, err := fs.NewConfig([]fs.FilegroupDesc{
		{FG: 1, MountPath: "/", Packs: packs1},
		{FG: 2, MountPath: "/vol", Packs: packs2},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := newClusterCfg(t, cfg)
	k1 := c.kernels[1]
	if err := k1.Mkdir(cred(), "/bin", 0755); err != nil {
		t.Fatal(err)
	}
	if err := k1.MkHidden(cred(), "/bin/tool", 0755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, k1, "/bin/tool@@/vax", []byte("vax tool"))
	writeFile(t, k1, "/vol/data", []byte("mounted"))
	c.settle(t)

	hidden := &fs.Cred{User: "u", HiddenCtx: []string{"vax"}}
	paths := []struct {
		p    string
		cred *fs.Cred
	}{
		{"/bin", cred()},
		{"/bin/tool", hidden},
		{"/bin/tool@@", cred()},
		{"/bin/tool@@/vax", cred()},
		{"/vol", cred()},
		{"/vol/data", cred()},
	}
	for _, k := range []*fs.Kernel{k1, c.kernels[2]} {
		for _, tc := range paths {
			plain, err1 := k.Resolve(tc.cred, tc.p)
			k.SetPathShipping(true)
			shipped, err2 := k.Resolve(tc.cred, tc.p)
			k.SetPathShipping(false)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("site %d %s: plain err=%v shipped err=%v", k.Site(), tc.p, err1, err2)
			}
			if err1 == nil && (plain.ID != shipped.ID || plain.Type != shipped.Type) {
				t.Fatalf("site %d %s: plain %+v shipped %+v", k.Site(), tc.p, plain, shipped)
			}
		}
		// Errors agree too.
		k.SetPathShipping(true)
		_, errShip := k.Resolve(cred(), "/bin/missing")
		k.SetPathShipping(false)
		if !errors.Is(errShip, fs.ErrNotFound) {
			t.Fatalf("site %d: shipped missing-name error = %v", k.Site(), errShip)
		}
	}
}

func TestMknodAnnotations(t *testing.T) {
	c := newCluster(t, 2)
	k := c.kernels[1]
	if err := k.Mknod(cred(), "/dev-lp", 2, "lineprinter", 0666); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	ino, err := c.kernels[2].Stat(cred(), "/dev-lp")
	if err != nil {
		t.Fatal(err)
	}
	if ino.Type != storage.TypeDevice {
		t.Fatalf("type = %v", ino.Type)
	}
	if ino.Annotations[fs.DevSiteAnnotation] != "2" || ino.Annotations[fs.DevNameAnnotation] != "lineprinter" {
		t.Fatalf("annotations = %v", ino.Annotations)
	}
}
