package fs_test

import (
	"bytes"
	"testing"

	"repro/internal/fs"
	"repro/internal/netsim"
	"repro/internal/storage"
)

// TestLeaseProtocolCostsPinned pins the wire message counts of the
// lease/intent layer, the exact economics the layer exists for:
//
//   - first read open piggybacks a delegation on the ordinary 4-message
//     open (zero extra messages);
//   - every later open/read/close of the delegated file is site-local
//     (zero wire messages — the per-open CSS round trip is gone);
//   - a conflicting modify open recalls all outstanding delegations in
//     exactly one batched revoke round (2 messages per delegate);
//   - the leased writer's close commits but skips the 4-message close
//     protocol entirely, and its repeat modify opens are free;
//   - a later read open recalls the idle writer lease with a single
//     revoke exchange and delegation economics resume.
//
// Counts are pinned with the fault plane armed at zero rates, like the
// legacy pins: the at-most-once plumbing under fs.leaserevoke and
// fs.leaserelease must add no wire traffic of its own.
func TestLeaseProtocolCostsPinned(t *testing.T) {
	c := newCluster(t, 4) // CSS = site 1
	c.net.EnableFaults(netsim.FaultConfig{Seed: 1})
	writeFile(t, c.kernels[3], "/pin", bytes.Repeat([]byte{'p'}, 2*storage.PageSize))
	// Store the file at sites 3 and 4 only: the CSS (1) holds no copy
	// and site 2 is purely a using site (same layout the legacy pins
	// use, so the deltas are directly comparable).
	if err := c.kernels[3].SetReplication(cred(), "/pin", []fs.SiteID{3, 4}); err != nil {
		t.Fatal(err)
	}
	c.settle(t)
	// Enable leases only now: the setup writes above must not leave a
	// writer lease parked on the file before the measured sequence.
	for _, k := range c.kernels {
		k.SetLeases(true)
	}
	r, err := c.kernels[2].Resolve(cred(), "/pin")
	if err != nil {
		t.Fatal(err)
	}

	delta := func(op func()) netsim.Snapshot {
		before := c.net.Stats()
		op()
		c.net.Quiesce()
		return c.net.Stats().Sub(before)
	}
	check := func(what string, d netsim.Snapshot, msgs int64, byMeth map[string]int64, granted, revoked, rounds int64) {
		t.Helper()
		if d.Msgs != msgs {
			t.Errorf("%s: %d wire messages, want %d (%v)", what, d.Msgs, msgs, d.ByMethod)
		}
		for m, n := range byMeth {
			if d.ByMethod[m] != n {
				t.Errorf("%s: %d %s messages, want %d", what, d.ByMethod[m], m, n)
			}
		}
		if d.LeasesGranted != granted || d.LeasesRevoked != revoked || d.BatchedRevokes != rounds {
			t.Errorf("%s: granted=%d revoked=%d rounds=%d, want %d/%d/%d",
				what, d.LeasesGranted, d.LeasesRevoked, d.BatchedRevokes, granted, revoked, rounds)
		}
		if d.MsgsDropped != 0 || d.MsgsDuped != 0 || d.MsgsDelayed != 0 || d.CircuitResets != 0 {
			t.Errorf("%s: fault counters moved on a fault-free network: dropped=%d duped=%d delayed=%d resets=%d",
				what, d.MsgsDropped, d.MsgsDuped, d.MsgsDelayed, d.CircuitResets)
		}
	}

	// First read open (US=2, CSS=1, SS=3 or 4): the ordinary 4-message
	// open, with the read delegation piggybacked on the reply for free.
	var f *fs.File
	d := delta(func() {
		f, err = c.kernels[2].OpenID(r.ID, fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
	})
	check("first open(read)", d, 4, map[string]int64{"fs.open": 2, "fs.ssopen": 2}, 1, 0, 0)

	// Cold read still pays the two-message exchange of §2.3.3.
	buf := make([]byte, storage.PageSize)
	d = delta(func() {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	})
	check("read page (cold)", d, 2, map[string]int64{"fs.read": 2}, 0, 0, 0)

	// Close of a delegated handle: pure local bookkeeping.
	d = delta(func() {
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
	check("close under delegation", d, 0, nil, 0, 0, 0)

	// The steady state the layer buys: open, re-read (US cache, still
	// valid under the delegation's VV stamp), close — zero messages.
	d = delta(func() {
		g, err := c.kernels[2].OpenID(r.ID, fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
	})
	check("reopen+read+close under delegation", d, 0, nil, 0, 0, 0)

	// A second using site gets its own delegation the same way.
	g4, err := c.kernels[4].OpenID(r.ID, fs.ModeRead)
	if err != nil {
		t.Fatal(err)
	}
	if err := g4.Close(); err != nil {
		t.Fatal(err)
	}

	// Conflicting modify open at site 3 (its own SS): one batched round
	// recalls both delegations — 2 messages per remote delegate — and
	// the writer lease rides back on the open reply.
	var w *fs.File
	d = delta(func() {
		w, err = c.kernels[3].OpenID(r.ID, fs.ModeModify)
		if err != nil {
			t.Fatal(err)
		}
	})
	check("open(modify), 2 delegates out", d, 6,
		map[string]int64{"fs.open": 2, "fs.leaserevoke": 4}, 1, 2, 1)

	// Write and commit cost exactly what they always cost — here the
	// writer is its own SS, so only the commit notifications (one to
	// the other replica, one to the CSS) hit the wire.
	d = delta(func() {
		if _, err := w.WriteAt(bytes.Repeat([]byte{'q'}, storage.PageSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	})
	check("write+commit under writer lease", d, 2,
		map[string]int64{"fs.propnotify": 2}, 0, 0, 0)

	// The leased writer's close skips the 4-message close protocol.
	d = delta(func() {
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
	check("close under writer lease", d, 0, nil, 0, 0, 0)

	// Repeat modify opens at the leaseholder are free.
	d = delta(func() {
		w2, err := c.kernels[3].OpenID(r.ID, fs.ModeModify)
		if err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
	})
	check("reopen(modify) under writer lease", d, 0, nil, 0, 0, 0)

	// A read open elsewhere recalls the idle writer lease with a single
	// revoke exchange (which also tears down the serving state the
	// skipped close left at the writer's SS), then proceeds as an
	// ordinary delegated open.
	d = delta(func() {
		f2, err := c.kernels[2].OpenID(r.ID, fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		if err := f2.Close(); err != nil {
			t.Fatal(err)
		}
	})
	if d.ByMethod["fs.leaserevoke"] != 2 {
		t.Errorf("read after writer: %d fs.leaserevoke messages, want 2 (single recall of the idle writer lease)",
			d.ByMethod["fs.leaserevoke"])
	}
	if d.LeasesGranted != 1 || d.LeasesRevoked != 1 {
		t.Errorf("read after writer: granted=%d revoked=%d, want 1/1", d.LeasesGranted, d.LeasesRevoked)
	}

	// And the delegation economics have resumed.
	d = delta(func() {
		f3, err := c.kernels[2].OpenID(r.ID, fs.ModeRead)
		if err != nil {
			t.Fatal(err)
		}
		if err := f3.Close(); err != nil {
			t.Fatal(err)
		}
	})
	check("reopen after writer transition", d, 0, nil, 0, 0, 0)
}
